package taxitrace

// Benchmark harness: one bench per paper table and figure plus the
// ablations called out in DESIGN.md. Absolute timings are not the
// paper's subject; the benches exist so that every reported artifact
// has a one-command regeneration path (go test -bench Table3, etc.)
// and so the ablations quantify the design choices.

import (
	"context"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/clean"
	"repro/internal/coach"
	"repro/internal/digiroad"
	"repro/internal/experiments"
	"repro/internal/geo"
	"repro/internal/mapmatch"
	"repro/internal/obs"
	"repro/internal/odselect"
	"repro/internal/roadnet"
	"repro/internal/routes"
	"repro/internal/segment"
	"repro/internal/trace"
)

var (
	benchOnce sync.Once
	benchEnv  *experiments.Env
	benchErr  error
)

func benchEnvironment(b *testing.B) *experiments.Env {
	b.Helper()
	benchOnce.Do(func() {
		benchEnv, benchErr = experiments.NewEnv(experiments.EnvConfig{
			Seed: 42, Cars: 4, TripsPerCar: 60, GateRunFraction: 0.25,
		})
	})
	if benchErr != nil {
		b.Fatalf("bench env: %v", benchErr)
	}
	return benchEnv
}

// --- Tables ---

func BenchmarkTable1GraphBuild(b *testing.B) {
	city := digiroad.SynthesizeOulu(digiroad.SynthConfig{Seed: 42})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := roadnet.Build(city.DB)
		if err != nil {
			b.Fatal(err)
		}
		_ = g.JunctionPairs()
	}
}

func BenchmarkTable2Segmentation(b *testing.B) {
	env := benchEnvironment(b)
	raw := env.P.Gen.CarTrips(1)
	cleaned := clean.Trips(clean.RepairAll(raw, clean.Config{}))
	rules := segment.DefaultRules()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		segment.SplitAll(cleaned, rules, nil)
	}
}

func BenchmarkTable3ODFunnel(b *testing.B) {
	env := benchEnvironment(b)
	segs := env.Res.Cars[0].Segments
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.P.Selector.Run(1, segs)
	}
}

func BenchmarkTable4Summaries(b *testing.B) {
	env := benchEnvironment(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Table4(env)
	}
}

func BenchmarkTable5CellStats(b *testing.B) {
	env := benchEnvironment(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Table5(env)
	}
}

// --- Figures ---

func BenchmarkFigure3SpeedMap(b *testing.B) {
	env := benchEnvironment(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure3(env, 1)
	}
}

func BenchmarkFigure4Directions(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure4(env, 1)
	}
}

func BenchmarkFigure5Seasons(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure5(env, 1)
	}
}

func BenchmarkFigure6CellMap(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure6(env)
	}
}

func BenchmarkFigure7QQ(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure7(env)
	}
}

func BenchmarkFigure8Intercepts(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure8(env)
	}
}

func BenchmarkFigure9BLUPMap(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure9(env)
	}
}

func BenchmarkFigure10Weather(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure10(env)
	}
}

func BenchmarkSeasonalDeltas(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.SeasonalDeltas(env)
	}
}

// --- Pipeline stages end-to-end ---

func BenchmarkPipelinePerCar(b *testing.B) {
	env := benchEnvironment(b)
	raw := env.P.Gen.CarTrips(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.P.ProcessContext(context.Background(), 2, raw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelinePerCarObsOverhead is the observability overhead
// gate: the BenchmarkPipelinePerCar workload run twice under identical
// conditions — once with a nil registry (every metric operation a no-op
// branch) and once with a live obs.Registry recording stage spans,
// kept/dropped counters and router-cache gauges. Each variant builds
// its own environment so cache warmth and heap footprint match; the
// instrumented run must stay within ~2 % of the no-op one.
// results/BENCH_pipeline.json tracks the pair.
func BenchmarkPipelinePerCarObsOverhead(b *testing.B) {
	run := func(b *testing.B, reg *obs.Registry) {
		env, err := experiments.NewEnv(experiments.EnvConfig{
			Seed: 42, Cars: 4, TripsPerCar: 60, GateRunFraction: 0.25,
			Metrics: reg,
		})
		if err != nil {
			b.Fatal(err)
		}
		raw := env.P.Gen.CarTrips(2)
		runtime.GC()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := env.P.ProcessContext(context.Background(), 2, raw); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("noop", func(b *testing.B) { run(b, nil) })
	b.Run("instrumented", func(b *testing.B) { run(b, obs.NewRegistry()) })
}

func BenchmarkGridAnalysisLMM(b *testing.B) {
	env := benchEnvironment(b)
	recs := env.Res.Transitions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := env.P.GridAnalysis(recs); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md) ---

// BenchmarkAblationOrderingRepair compares the paper's min-distance
// ordering repair against a naive timestamp-only sort.
func BenchmarkAblationOrderingRepair(b *testing.B) {
	env := benchEnvironment(b)
	raw := env.P.Gen.CarTrips(3)
	b.Run("min-distance", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			clean.RepairAll(raw, clean.Config{})
		}
	})
	b.Run("timestamp-only", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, t := range raw {
				pts := append([]trace.RoutePoint(nil), t.Points...)
				sort.SliceStable(pts, func(a, c int) bool { return pts[a].Time.Before(pts[c].Time) })
				_ = trace.PathLength(pts)
			}
		}
	})
}

// matcherTestTraces builds noisy traces over the bench city for the
// matcher ablation.
func matcherTestTraces(env *experiments.Env, n int) [][]trace.RoutePoint {
	rng := rand.New(rand.NewSource(7))
	g := env.P.Graph
	var out [][]trace.RoutePoint
	t0 := time.Date(2013, 2, 1, 9, 0, 0, 0, time.UTC)
	for len(out) < n {
		from := roadnet.NodeID(rng.Intn(len(g.Nodes)))
		to := roadnet.NodeID(rng.Intn(len(g.Nodes)))
		path, err := g.ShortestPath(from, to, nil)
		if err != nil || path.Length < 800 {
			continue
		}
		geom := path.Geometry()
		var pts []trace.RoutePoint
		i := 0
		for d := 0.0; d <= geom.Length(); d += 70 {
			p := geom.PointAt(d)
			pts = append(pts, trace.RoutePoint{
				PointID: i + 1, TripID: int64(len(out) + 1),
				Pos:  geo.V(p.X+rng.NormFloat64()*4, p.Y+rng.NormFloat64()*4),
				Time: t0.Add(time.Duration(i) * 10 * time.Second),
			})
			i++
		}
		out = append(out, pts)
	}
	return out
}

// BenchmarkAblationMatchers compares the incremental matcher (with and
// without direction hints) against the HMM baseline.
func BenchmarkAblationMatchers(b *testing.B) {
	env := benchEnvironment(b)
	traces := matcherTestTraces(env, 20)
	run := func(b *testing.B, match func([]trace.RoutePoint)) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			match(traces[i%len(traces)])
		}
	}
	b.Run("incremental-hints", func(b *testing.B) {
		m := mapmatch.NewIncremental(env.P.Graph, mapmatch.DefaultConfig())
		run(b, func(pts []trace.RoutePoint) { m.Match(pts) })
	})
	b.Run("incremental-nohints", func(b *testing.B) {
		cfg := mapmatch.DefaultConfig()
		cfg.UseDirectionHints = false
		m := mapmatch.NewIncremental(env.P.Graph, cfg)
		run(b, func(pts []trace.RoutePoint) { m.Match(pts) })
	})
	b.Run("hmm", func(b *testing.B) {
		m := mapmatch.NewHMM(env.P.Graph, mapmatch.HMMConfig{})
		run(b, func(pts []trace.RoutePoint) { m.Match(pts) })
	})
}

// BenchmarkAblationThickness sweeps the thick-geometry width of the OD
// gates.
func BenchmarkAblationThickness(b *testing.B) {
	env := benchEnvironment(b)
	segs := env.Res.Cars[0].Segments
	for _, width := range []float64{60, 150, 300} {
		width := width
		b.Run(widthName(width), func(b *testing.B) {
			sel, err := odselect.NewSelector([]odselect.Gate{
				odselect.NewGate("T", env.P.City.GateT, width),
				odselect.NewGate("S", env.P.City.GateS, width),
				odselect.NewGate("L", env.P.City.GateL, width),
			}, odselect.Config{CentralArea: env.P.City.CentralArea})
			if err != nil {
				b.Fatal(err)
			}
			accepted := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f, _ := sel.Run(1, segs)
				accepted = f.PostFiltered
			}
			b.ReportMetric(float64(accepted), "accepted")
		})
	}
}

func widthName(w float64) string {
	switch w {
	case 60:
		return "width60m"
	case 150:
		return "width150m"
	default:
		return "width300m"
	}
}

// BenchmarkAblationSpatialIndex compares R-tree candidate lookup with a
// linear scan over all edges.
func BenchmarkAblationSpatialIndex(b *testing.B) {
	env := benchEnvironment(b)
	g := env.P.Graph
	rng := rand.New(rand.NewSource(3))
	queries := make([]geo.XY, 256)
	for i := range queries {
		queries[i] = geo.V(rng.Float64()*3000-1500, rng.Float64()*2400-1200)
	}
	b.Run("rtree", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.EdgesNear(queries[i%len(queries)], 60)
		}
	})
	b.Run("linear", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q := queries[i%len(queries)]
			for e := range g.Edges {
				if g.Edges[e].Geom.DistanceTo(q) <= 60 {
					_ = e
				}
			}
		}
	})
}

// --- Routing engine ---

// routerBenchPairs picks random connected node pairs over the bench
// city, reused by the router micro-benchmarks.
func routerBenchPairs(b *testing.B, g *roadnet.Graph, n int) [][2]roadnet.NodeID {
	b.Helper()
	r := roadnet.NewRouter(g, roadnet.RouterOptions{PathCachePaths: -1})
	rng := rand.New(rand.NewSource(19))
	pairs := make([][2]roadnet.NodeID, 0, n)
	for len(pairs) < n {
		from := roadnet.NodeID(rng.Intn(len(g.Nodes)))
		to := roadnet.NodeID(rng.Intn(len(g.Nodes)))
		if _, err := r.ShortestPath(from, to, roadnet.DistanceWeight); err != nil {
			continue
		}
		pairs = append(pairs, [2]roadnet.NodeID{from, to})
	}
	return pairs
}

// BenchmarkShortestPath measures uncached point-to-point routing
// (bidirectional Dijkstra on pooled scratch).
func BenchmarkShortestPath(b *testing.B) {
	env := benchEnvironment(b)
	g := env.P.Graph
	pairs := routerBenchPairs(b, g, 64)
	r := roadnet.NewRouter(g, roadnet.RouterOptions{PathCachePaths: -1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		if _, err := r.ShortestPath(p[0], p[1], roadnet.DistanceWeight); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShortestPathCached measures the same queries answered from
// the sharded LRU path cache.
func BenchmarkShortestPathCached(b *testing.B) {
	env := benchEnvironment(b)
	g := env.P.Graph
	pairs := routerBenchPairs(b, g, 64)
	r := roadnet.NewRouter(g, roadnet.RouterOptions{})
	for _, p := range pairs { // warm the cache
		if _, err := r.ShortestPath(p[0], p[1], roadnet.DistanceWeight); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		if _, err := r.ShortestPath(p[0], p[1], roadnet.DistanceWeight); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	s := r.CacheStats()
	b.ReportMetric(float64(s.Hits)/float64(s.Hits+s.Misses), "hit-rate")
}

// BenchmarkShortestDistancesBatch measures the HMM matcher's one-to-many
// primitive: a pooled batch of bounded Dijkstra trees plus lookups.
func BenchmarkShortestDistancesBatch(b *testing.B) {
	env := benchEnvironment(b)
	g := env.P.Graph
	pairs := routerBenchPairs(b, g, 64)
	r := roadnet.NewRouter(g, roadnet.RouterOptions{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		batch := r.NewDistanceBatch(roadnet.DistanceWeight, 800)
		batch.AddSource(p[0])
		batch.AddSource(p[1])
		batch.Dist(p[0], p[1])
		batch.Dist(p[1], p[0])
		batch.Release()
	}
}

// BenchmarkCleanRepair isolates the cleaning stage.
func BenchmarkCleanRepair(b *testing.B) {
	env := benchEnvironment(b)
	raw := env.P.Gen.CarTrips(4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clean.RepairAll(raw, clean.Config{})
	}
}

// BenchmarkRouteClustering measures the eco-routing variant clustering
// over one direction's matched geometries.
func BenchmarkRouteClustering(b *testing.B) {
	env := benchEnvironment(b)
	var items []routes.Item
	for i, rec := range env.Res.Transitions() {
		items = append(items, routes.Item{ID: i, Geom: rec.Match.Geometry})
	}
	if len(items) == 0 {
		b.Skip("no transitions")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := routes.ClusterRoutes(items, routes.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoachAnalyze measures the Driving Coach per-trip analysis.
func BenchmarkCoachAnalyze(b *testing.B) {
	env := benchEnvironment(b)
	recs := env.Res.Transitions()
	if len(recs) == 0 {
		b.Skip("no transitions")
	}
	c := coach.New(env.P.Graph)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Analyze(recs[i%len(recs)])
	}
}
