// Command tracegen generates a synthetic taxi-trace dataset over the
// synthetic city and writes it as CSV (one route point per row, in
// arrival order, with the transmission corruption the cleaning stage
// repairs) and/or the compact binary trace format, plus the road
// database as a second CSV.
//
// Usage:
//
//	tracegen [-cars N] [-trips N] [-seed N] [-traces FILE] [-map FILE] [-format csv|binary|both]
package main

import (
	"bufio"
	"flag"
	"log"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/digiroad"
	"repro/internal/roadnet"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")
	cars := flag.Int("cars", 7, "number of simulated taxis")
	trips := flag.Int("trips", 60, "engine-on trips per taxi")
	seed := flag.Int64("seed", 42, "master random seed")
	tracesOut := flag.String("traces", "traces.csv", "route-point trace output (extension adjusted to the format)")
	format := flag.String("format", "csv", "trace output format: csv, binary, or both")
	mapOut := flag.String("map", "digiroad.csv", "road database CSV output")
	geoJSON := flag.String("geojson", "", "optional GeoJSON output prefix: writes <prefix>-map.geojson and <prefix>-trips.geojson")
	flag.Parse()
	wantCSV, wantBinary := false, false
	switch *format {
	case "csv":
		wantCSV = true
	case "binary":
		wantBinary = true
	case "both":
		wantCSV, wantBinary = true, true
	default:
		log.Fatalf("unknown -format %q (want csv, binary, or both)", *format)
	}

	city := digiroad.SynthesizeOulu(digiroad.SynthConfig{Seed: *seed})
	graph, err := roadnet.Build(city.DB)
	if err != nil {
		log.Fatal(err)
	}
	gen, err := tracegen.New(city, graph, tracegen.Config{
		Seed: *seed, Cars: *cars, TripsPerCar: *trips,
	})
	if err != nil {
		log.Fatal(err)
	}
	fleet := gen.Fleet()
	points := 0
	for _, t := range fleet {
		points += len(t.Points)
	}
	log.Printf("simulated %d trips, %d route points", len(fleet), points)

	if wantCSV {
		path := withExt(*tracesOut, ".csv", wantBinary)
		if err := writeFile(path, func(w *bufio.Writer) error {
			return trace.WriteCSV(w, fleet, city.DB.Proj)
		}); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", path)
	}
	if wantBinary {
		// Never write binary into a .csv-named file (the default
		// -traces value): swap the extension.
		path := withExt(*tracesOut, ".bin", wantCSV || filepath.Ext(*tracesOut) == ".csv")
		if err := writeFile(path, func(w *bufio.Writer) error {
			return trace.WriteBinary(w, fleet, city.DB.Proj)
		}); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", path)
	}

	if err := writeFile(*mapOut, func(w *bufio.Writer) error {
		return city.DB.WriteCSV(w)
	}); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%d elements, %d objects)", *mapOut,
		city.DB.NumElements(), city.DB.NumObjects())

	if *geoJSON != "" {
		if err := writeFile(*geoJSON+"-map.geojson", func(w *bufio.Writer) error {
			return city.DB.WriteGeoJSON(w)
		}); err != nil {
			log.Fatal(err)
		}
		if err := writeFile(*geoJSON+"-trips.geojson", func(w *bufio.Writer) error {
			return trace.WriteGeoJSON(w, fleet, city.DB.Proj)
		}); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s-map.geojson and %s-trips.geojson", *geoJSON, *geoJSON)
	}
}

// withExt forces path's extension when both formats are written (so
// -format=both -traces=x.csv yields x.csv and x.bin); a single-format
// run keeps the user's path untouched.
func withExt(path, ext string, both bool) string {
	if !both {
		return path
	}
	return strings.TrimSuffix(path, filepath.Ext(path)) + ext
}

func writeFile(path string, write func(*bufio.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if err := write(w); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
