// Command tracegen generates a synthetic taxi-trace dataset over the
// synthetic city and writes it as CSV (one route point per row, in
// arrival order, with the transmission corruption the cleaning stage
// repairs) and/or the compact binary trace format, plus the road
// database as a second CSV.
//
// With -firehose the same fleet is instead replayed as a streaming
// point firehose against a running ingest server (taxiflow
// -ingest-addr): the trips are flattened to per-point events in event
// time, optionally shuffled within bounded windows to exercise the
// out-of-orderness buffer, POSTed to /v1/ingest (NDJSON, or the binary
// framing with -format binary) and the stream is closed so the
// server's snapshot seals.
//
// Usage:
//
//	tracegen [-cars N] [-trips N] [-seed N] [-traces FILE] [-map FILE] [-format csv|binary|both]
//	tracegen [-cars N] [-trips N] [-seed N] -firehose http://HOST:PORT/v1/ingest
//	         [-shuffle-window N] [-no-close] [-format binary] [-retries N]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/digiroad"
	"repro/internal/ingest"
	"repro/internal/roadnet"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")
	cars := flag.Int("cars", 7, "number of simulated taxis")
	trips := flag.Int("trips", 60, "engine-on trips per taxi")
	seed := flag.Int64("seed", 42, "master random seed")
	tracesOut := flag.String("traces", "traces.csv", "route-point trace output (extension adjusted to the format)")
	format := flag.String("format", "csv", "trace output format: csv, binary, or both")
	mapOut := flag.String("map", "digiroad.csv", "road database CSV output")
	geoJSON := flag.String("geojson", "", "optional GeoJSON output prefix: writes <prefix>-map.geojson and <prefix>-trips.geojson")
	firehose := flag.String("firehose", "", "replay the fleet as a point firehose against this ingest URL (e.g. http://localhost:8080/v1/ingest) instead of writing files")
	shuffleWindow := flag.Int("shuffle-window", 0, "with -firehose: permute events within windows of this many points (bounded out-of-orderness; 0 keeps event order)")
	shuffleSpan := flag.Duration("shuffle-span", 20*time.Second, "with -shuffle-window: cap a window's event-time span (keep below the server's -lateness)")
	noClose := flag.Bool("no-close", false, "with -firehose: leave the stream open (skip POST …/close)")
	retries := flag.Int("retries", 5, "with -firehose: attempts per request; transport errors and 5xx retry with backoff, 4xx fails fast")
	flag.Parse()
	wantCSV, wantBinary := false, false
	switch *format {
	case "csv":
		wantCSV = true
	case "binary":
		wantBinary = true
	case "both":
		wantCSV, wantBinary = true, true
	default:
		log.Fatalf("unknown -format %q (want csv, binary, or both)", *format)
	}

	city := digiroad.SynthesizeOulu(digiroad.SynthConfig{Seed: *seed})
	graph, err := roadnet.Build(city.DB)
	if err != nil {
		log.Fatal(err)
	}
	gen, err := tracegen.New(city, graph, tracegen.Config{
		Seed: *seed, Cars: *cars, TripsPerCar: *trips,
	})
	if err != nil {
		log.Fatal(err)
	}
	fleet := gen.Fleet()
	points := 0
	for _, t := range fleet {
		points += len(t.Points)
	}
	log.Printf("simulated %d trips, %d route points", len(fleet), points)

	if *firehose != "" {
		if err := runFirehose(*firehose, fleet, city, *seed, *shuffleWindow, shuffleSpan.Milliseconds(), wantBinary, !*noClose, *retries); err != nil {
			log.Fatal(err)
		}
		return
	}

	if wantCSV {
		path := withExt(*tracesOut, ".csv", wantBinary)
		if err := writeFile(path, func(w *bufio.Writer) error {
			return trace.WriteCSV(w, fleet, city.DB.Proj)
		}); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", path)
	}
	if wantBinary {
		// Never write binary into a .csv-named file (the default
		// -traces value): swap the extension.
		path := withExt(*tracesOut, ".bin", wantCSV || filepath.Ext(*tracesOut) == ".csv")
		if err := writeFile(path, func(w *bufio.Writer) error {
			return trace.WriteBinary(w, fleet, city.DB.Proj)
		}); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", path)
	}

	if err := writeFile(*mapOut, func(w *bufio.Writer) error {
		return city.DB.WriteCSV(w)
	}); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%d elements, %d objects)", *mapOut,
		city.DB.NumElements(), city.DB.NumObjects())

	if *geoJSON != "" {
		if err := writeFile(*geoJSON+"-map.geojson", func(w *bufio.Writer) error {
			return city.DB.WriteGeoJSON(w)
		}); err != nil {
			log.Fatal(err)
		}
		if err := writeFile(*geoJSON+"-trips.geojson", func(w *bufio.Writer) error {
			return trace.WriteGeoJSON(w, fleet, city.DB.Proj)
		}); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s-map.geojson and %s-trips.geojson", *geoJSON, *geoJSON)
	}
}

// runFirehose flattens the fleet to per-point events in event-time
// order, optionally applies the bounded in-window shuffle, streams the
// body to the ingest URL (NDJSON, or the binary point framing when the
// caller asked for -format binary) and finally closes the stream. Both
// POSTs retry transport errors (connection refused while the server is
// still coming up) and 5xx with doubling backoff, bounded by attempts;
// a 4xx is a caller bug and fails fast.
func runFirehose(url string, fleet []*trace.Trip, city *digiroad.City, seed int64,
	window int, spanCapMs int64, binaryBody, closeStream bool, attempts int) error {
	byCar := map[int][]*trace.Trip{}
	for _, t := range fleet {
		byCar[t.CarID] = append(byCar[t.CarID], t)
	}
	pts := ingest.FleetPoints(byCar, city.DB.Proj)
	if window > 1 {
		span := ingest.ShuffleWindows(pts, window, spanCapMs, seed)
		log.Printf("shuffled within windows of %d points (max in-window span %dms)", window, span)
	}

	contentType := "application/x-ndjson"
	if binaryBody {
		contentType = "application/octet-stream"
	}
	// The streaming body is consumed by each attempt, so the retry loop
	// gets a body factory: every attempt pipes a fresh encoding.
	body, err := postRetry(url, contentType, attempts, func() io.Reader {
		pr, pw := io.Pipe()
		go func() {
			var err error
			if binaryBody {
				err = ingest.WriteBinary(pw, pts)
			} else {
				err = ingest.WriteNDJSON(pw, pts)
			}
			pw.CloseWithError(err)
		}()
		return pr
	})
	if err != nil {
		return fmt.Errorf("firehose: %w", err)
	}
	log.Printf("firehose: sent %d points: %s", len(pts), body)

	if closeStream {
		body, err := postRetry(strings.TrimRight(url, "/")+"/close", "application/json", attempts, nil)
		if err != nil {
			return fmt.Errorf("firehose close: %w", err)
		}
		log.Printf("firehose: closed stream: %s", body)
	}
	return nil
}

// postRetry POSTs with bounded retries: transport errors and 5xx back
// off (250ms doubling, capped at 2s) and try again, any other non-200
// fails fast. makeBody builds a fresh request body per attempt (nil
// for an empty body); the response body is returned trimmed.
func postRetry(url, contentType string, attempts int, makeBody func() io.Reader) (string, error) {
	if attempts < 1 {
		attempts = 1
	}
	backoff := 250 * time.Millisecond
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		var reqBody io.Reader
		if makeBody != nil {
			reqBody = makeBody()
		}
		resp, err := http.Post(url, contentType, reqBody)
		if err == nil {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			text := strings.TrimSpace(string(body))
			if resp.StatusCode == http.StatusOK {
				return text, nil
			}
			lastErr = fmt.Errorf("%s replied %s: %s", url, resp.Status, text)
			if resp.StatusCode < 500 {
				return "", lastErr // 4xx: not a server hiccup, retrying can't help
			}
		} else {
			lastErr = err
		}
		if attempt == attempts {
			break
		}
		log.Printf("firehose: attempt %d/%d failed (%v), retrying in %s", attempt, attempts, lastErr, backoff)
		time.Sleep(backoff)
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
	return "", fmt.Errorf("giving up after %d attempts: %w", attempts, lastErr)
}

// withExt forces path's extension when both formats are written (so
// -format=both -traces=x.csv yields x.csv and x.bin); a single-format
// run keeps the user's path untouched.
func withExt(path, ext string, both bool) string {
	if !both {
		return path
	}
	return strings.TrimSuffix(path, filepath.Ext(path)) + ext
}

func writeFile(path string, write func(*bufio.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if err := write(w); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
