// Command taxiflow runs the full pipeline end to end — synthetic city,
// simulated fleet, cleaning, segmentation, OD selection, map-matching,
// attribute fetching, grid aggregation and mixed-model fitting — and
// prints a stage-by-stage account of what happened to the data.
//
// Usage:
//
//	taxiflow [-cars N] [-trips N] [-seed N] [-gatefrac F] [-v]
//	         [-workers N] [-max-failures N] [-retries N]
//	         [-metrics out.json] [-debug-addr :6060] [-serve-addr :8080]
//	         [-report report.json] [-trace-out trace.json] [-trace-sample F]
//	         [-log-level info] [-log-format text|json]
//
// The fleet runs on the fault-tolerant runner: per-car failures are
// isolated and summarised in a failed-car table instead of aborting
// the run, -max-failures bounds the error budget, -workers bounds the
// worker pool, and Ctrl-C cancels the run promptly while keeping the
// results already computed.
//
// Every run is instrumented through internal/obs: per-stage timing and
// kept/dropped counters are printed in the end-of-run summary, -metrics
// writes the full JSON snapshot, and -debug-addr serves /metrics
// (Prometheus text format), /debug/vars (JSON) and /debug/pprof/ (live
// profiling) for the duration of the run.
//
// Observability of the data itself: every run keeps a drop-reason
// ledger (the lineage table printed in the summary; in = out +
// Σ dropped per stage, conservation-checked), -report writes it as a
// validated JSON run report (see cmd/lineagecheck), -trace-out records
// per-car span trees and exports Chrome trace_event JSON loadable in
// Perfetto, -trace-sample traces a deterministic fraction of cars, and
// -log-level/-log-format stream structured logs (log/slog) to stderr.
//
// -serve-addr additionally mounts the serving layer (internal/sink +
// internal/serve): cars stream into an incremental aggregation as they
// complete, and GET /v1/snapshot, /v1/grid, /v1/cells/{id}, /v1/od and
// /v1/od/{from}-{to} answer with epoch-consistent JSON — during the
// run (partial fleet) and after it (sealed final snapshot, identical
// to the batch aggregation). GET /v1/predict?from=x,y&to=x,y&t=H
// routes over the learned per-edge travel-time profiles (-predict-k
// tunes the shrinkage prior) and GET /v1/anomalies z-scores the
// current epoch against a rolling reference (-anomaly-alpha,
// -anomaly-z). With -serve-addr the process keeps serving after the
// summary until interrupted.
//
// Cluster mode (internal/cluster) splits the fleet across processes:
// -cluster-coordinator serves the merged /v1 view and the worker
// control endpoints on -serve-addr, while -cluster-worker N runs shard
// N's slice of the fleet (hash(car) mod -cluster-shards) and reports to
// -cluster-coord. The merged sealed snapshot is value-identical to a
// single-node run over the same flags.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"math"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"text/tabwriter"
	"time"

	"repro"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/obs"
	"repro/internal/predict"
	"repro/internal/render"
	"repro/internal/report"
	"repro/internal/serve"
	"repro/internal/sink"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("taxiflow: ")
	cars := flag.Int("cars", 4, "number of simulated taxis")
	trips := flag.Int("trips", 60, "engine-on trips per taxi")
	seed := flag.Int64("seed", 42, "master random seed")
	gateFrac := flag.Float64("gatefrac", 0.25, "share of runs between OD gates")
	workers := flag.Int("workers", 0, "fleet runner worker pool size (0 = GOMAXPROCS)")
	maxFailures := flag.Int("max-failures", 0, "error budget: failed cars tolerated before aborting (0 = unlimited, -1 = abort on first)")
	retries := flag.Int("retries", 1, "per-car attempts for retryable errors")
	tracesIn := flag.String("traces", "", "optional route-point trace file (CSV or binary, from cmd/tracegen; format sniffed) to process instead of simulating; must match -seed")
	layoutFlag := flag.String("layout", "auto", "point-storage layout for the hot path: auto, columnar, or legacy")
	svgOut := flag.String("svg", "", "optional SVG output: the accepted transitions' speed map")
	metricsOut := flag.String("metrics", "", "optional JSON metrics snapshot written at exit")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. :6060, :0 for ephemeral)")
	serveAddr := flag.String("serve-addr", "", "serve the /v1 query API (plus the debug surface) on this address and keep serving after the run until interrupted")
	ingestAddr := flag.String("ingest-addr", "", "event-time streaming mode: accept a point firehose on POST /v1/ingest (plus the /v1 query API) on this address instead of running the batch fleet; Ctrl-C to exit")
	clusterCoordinator := flag.Bool("cluster-coordinator", false, "cluster mode: merge worker partials and serve the global /v1 view on -serve-addr instead of running a pipeline")
	clusterWorker := flag.Int("cluster-worker", -1, "cluster mode: run this shard (0-based, < -cluster-shards) of the fleet and report to -cluster-coord")
	clusterShards := flag.Int("cluster-shards", 0, "cluster mode: number of shards the fleet is split into")
	clusterCoord := flag.String("cluster-coord", "", "cluster mode: coordinator base URL a worker registers with (e.g. http://127.0.0.1:8600)")
	nodeID := flag.String("node-id", "", "cluster mode: node name for registration and /v1/healthz (default coordinator / worker-<shard>)")
	lateness := flag.Duration("lateness", 30*time.Second, "with -ingest-addr: allowed event-time lateness (out-of-orderness bound)")
	idleTimeout := flag.Duration("idle-timeout", 10*time.Minute, "with -ingest-addr: event-time silence after which a car stops holding the watermark back")
	predictK := flag.Float64("predict-k", predict.DefaultShrinkK, "travel-time predictor shrinkage weight: thin edge profiles are pulled toward the fleet-wide pace ratio with this prior strength (negative = raw per-edge paces)")
	anomalyAlpha := flag.Float64("anomaly-alpha", 0, "anomaly detector EW reference smoothing factor in (0,1] (0 = package default)")
	anomalyZ := flag.Float64("anomaly-z", 0, "anomaly detector |z| flag threshold (0 = package default)")
	checkOn := flag.Bool("check", false, "validate pipeline invariants at every stage boundary (check_violations_total metrics)")
	checkStrict := flag.Bool("check-strict", false, "like -check, but an invariant violation fails the offending car")
	reportOut := flag.String("report", "", "write the run report (lineage table, stage timings, fleet summary) as JSON at exit")
	traceOut := flag.String("trace-out", "", "record per-car span trees and write them as Chrome trace_event JSON (Perfetto-loadable) at exit")
	traceSample := flag.Float64("trace-sample", 1.0, "fraction of cars to trace (deterministic per -seed)")
	logLevel := flag.String("log-level", "", "emit structured logs to stderr at this level (debug, info, warn, error; empty disables)")
	logFormat := flag.String("log-format", "text", "structured log encoding: text or json")
	verbose := flag.Bool("v", false, "print per-transition details")
	flag.Parse()

	layout, err := taxitrace.ParseLayout(*layoutFlag)
	if err != nil {
		log.Fatal(err)
	}
	logger, err := newLogger(*logLevel, *logFormat)
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	reg := obs.NewRegistry()
	if *debugAddr != "" {
		srv, err := obs.ServeDebug(*debugAddr, reg)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Printf("debug server: http://%s/metrics /debug/vars /debug/pprof/\n", srv.Addr)
	}

	if *clusterCoordinator && *clusterWorker >= 0 {
		log.Fatal("-cluster-coordinator and -cluster-worker are mutually exclusive")
	}

	// The lineage ledger always runs (its cost is a handful of atomic
	// adds per car); the tracer only when an export was requested.
	lin := taxitrace.NewLineage(reg)
	var tracer *taxitrace.Tracer
	if *traceOut != "" {
		tracer = taxitrace.NewTracer(taxitrace.TracerConfig{
			Capacity:       1 << 16,
			SampleFraction: *traceSample,
			Seed:           *seed,
		})
	}

	start := time.Now()
	p, err := taxitrace.New(taxitrace.Config{
		Layout:   layout,
		CitySeed: *seed,
		Fleet: tracegen.Config{
			Seed:            *seed,
			Cars:            *cars,
			TripsPerCar:     *trips,
			GateRunFraction: *gateFrac,
		},
		Workers:     *workers,
		MaxFailures: *maxFailures,
		MaxAttempts: *retries,
		Metrics:     reg,
		Tracer:      tracer,
		Lineage:     lin,
		Log:         logger,
		Check:       taxitrace.CheckConfig{Enabled: *checkOn, Strict: *checkStrict},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("city: %d traffic elements, %d point objects\n",
		p.City.DB.NumElements(), p.City.DB.NumObjects())
	fmt.Printf("network: %s\n", p.Graph.Stats())

	// Every serving mode mounts the prediction layer over the same
	// deterministic road network the pipeline (or, for the coordinator,
	// its workers) computed from -seed.
	predictor := predict.NewPredictor(p.Graph, p.Router).WithMetrics(reg)
	predictor.ShrinkK = *predictK
	detector := predict.NewAnomalyDetector(predict.AnomalyConfig{
		Alpha: *anomalyAlpha, ZThreshold: *anomalyZ,
	}).WithMetrics(reg)

	// The coordinator never runs the fleet — workers do. It merges their
	// partial snapshots into the global serving view and answers the /v1
	// query API (prediction included) on it until interrupted.
	if *clusterCoordinator {
		if err := runClusterCoordinator(ctx, reg, logger, predictor, detector,
			*serveAddr, *clusterShards, *maxFailures, *nodeID); err != nil {
			log.Fatal(err)
		}
		return
	}

	// With -cluster-worker the process owns one shard of the fleet: it
	// runs the full pipeline over its hash-assigned cars, publishes
	// partial snapshots for the coordinator to pull, and exits once its
	// sealed epoch has been folded into the merged serving view.
	if *clusterWorker >= 0 {
		if err := runClusterWorker(ctx, p, reg, lin, logger, predictor, detector,
			*clusterWorker, *clusterShards, *cars, *clusterCoord, *serveAddr, *nodeID); err != nil {
			log.Fatal(err)
		}
		printLineageTable(lin)
		if *metricsOut != "" {
			if err := writeMetrics(reg, *metricsOut); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s\n", *metricsOut)
		}
		fmt.Printf("\ndone in %s\n", time.Since(start).Round(time.Millisecond))
		return
	}

	// With -ingest-addr the process is a streaming server: points
	// arrive over HTTP (e.g. from tracegen -firehose), per-car state
	// machines clean and segment them online, and the watermark closes
	// trips into the sink — the batch fleet never runs.
	if *ingestAddr != "" {
		if err := runIngestServer(ctx, p, reg, lin, logger, predictor, detector,
			*ingestAddr, *lateness, *idleTimeout,
			taxitrace.CheckConfig{Enabled: *checkOn, Strict: *checkStrict}); err != nil {
			log.Fatal(err)
		}
		printLineageTable(lin)
		if *metricsOut != "" {
			if err := writeMetrics(reg, *metricsOut); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s\n", *metricsOut)
		}
		fmt.Printf("\ndone in %s\n", time.Since(start).Round(time.Millisecond))
		return
	}

	// With -serve-addr, completed cars stream into the incremental
	// aggregation sink and the query API answers on the same listener
	// as the debug surface — mid-run snapshots are partial but always
	// epoch-consistent.
	var snk *sink.Sink
	var apiSrv *obs.DebugServer
	if *serveAddr != "" {
		g, err := sink.GridForPipeline(p)
		if err != nil {
			log.Fatal(err)
		}
		if snk, err = sink.New(sink.Config{
			Grid:    g,
			Metrics: reg,
			Gates:   p.Selector.GateNames(),
			Check:   taxitrace.CheckConfig{Enabled: *checkOn, Strict: *checkStrict},
			Log:     logger,
		}); err != nil {
			log.Fatal(err)
		}
		mux := reg.DebugMux()
		serve.Mount(mux, serve.NewAPI(snk, reg).WithLogger(logger).WithLineage(lin).
			WithPredictor(predictor).WithAnomalies(detector))
		if apiSrv, err = obs.Serve(*serveAddr, mux); err != nil {
			log.Fatal(err)
		}
		// Graceful: drain in-flight /v1 requests (bounded) on the way out
		// rather than snapping their connections.
		defer func() {
			if err := apiSrv.Shutdown(5 * time.Second); err != nil {
				log.Printf("query API shutdown: %v", err)
			}
		}()
		fmt.Printf("query API: http://%s/v1/snapshot /v1/healthz /v1/lineage /v1/grid /v1/od /v1/predict /v1/anomalies (+debug surface)\n", apiSrv.Addr)
	}

	var res *taxitrace.Result
	switch {
	case *tracesIn != "":
		res, err = processTraces(ctx, p, *tracesIn)
		if snk != nil && res != nil {
			snk.AbsorbResult(res)
		}
	case snk != nil:
		res, err = p.RunObserved(ctx, snk.AbsorbEvent)
	default:
		res, err = p.RunContext(ctx)
	}
	if snk != nil {
		final := snk.Seal()
		fmt.Printf("serving sealed snapshot: epoch %d, %d cars, %d cells, %d directions\n",
			final.Epoch, final.CarsIngested, len(final.Cells), len(final.OD))
		if cerr := snk.CheckErr(); cerr != nil {
			log.Printf("sink invariant violation: %v", cerr)
		}
	}
	if err != nil {
		printFailedCars(err)
		if len(res.Cars) == 0 {
			log.Fatal(err)
		}
		log.Printf("continuing with partial results: %d/%d cars", len(res.Cars), *cars)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "car\traw trips\treordered\tsegments\tfiltered\ttransitions\tcentre\taccepted")
	for _, cr := range res.Cars {
		f := cr.Funnel
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			cr.Car, cr.RawTrips, cr.CleanStats.Reordered,
			f.TripSegments, f.Filtered, f.Transitions, f.WithinCentre, f.PostFiltered)
	}
	w.Flush()

	recs := res.Transitions()
	fmt.Printf("\naccepted transitions: %d, measured point speeds: %d\n",
		len(recs), len(taxitrace.PointSpeeds(recs)))
	if *verbose {
		for _, rec := range recs {
			fmt.Printf("  %s %s: %.2f km in %.1f min, low %.0f%%, normal %.0f%%, "+
				"%d lights, %d junctions, %.0f ml\n",
				rec.Transition.Key(), rec.Direction(), rec.RouteDistKm,
				rec.RouteTimeH*60, rec.LowSpeedPct, rec.NormalSpeedPct,
				rec.Attrs.TrafficLights, rec.Attrs.Junctions, rec.FuelMl)
			fmt.Printf("    segment: %s\n", trace.ComputeStats(rec.Transition.Seg))
		}
	}

	agg, lmm, err := p.GridAnalysis(recs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngrid: %d non-empty %d m cells\n", agg.NumNonEmpty(), int(agg.Grid.CellM))
	fmt.Printf("mixed model: mu=%.2f km/h, sigma_a=%.2f, sigma=%.2f (REML over %d observations)\n",
		lmm.Mu, math.Sqrt(lmm.SigmaA2), math.Sqrt(lmm.Sigma2), lmm.NObs)
	blups := lmm.BLUPs()
	mn, mx := blups[0], blups[0]
	for _, v := range blups {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	fmt.Printf("cell intercepts (BLUP): %.2f .. %.2f km/h across %d cells\n", mn, mx, len(blups))

	if *svgOut != "" {
		if err := writeSpeedMap(p, recs, *svgOut); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *svgOut)
	}

	snap := reg.Snapshot()
	printStageTable(snap)
	printLineageTable(lin)
	printCacheStats(p)
	printRunnerStats(snap)

	if *metricsOut != "" {
		if err := writeMetrics(reg, *metricsOut); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *metricsOut)
	}
	if *reportOut != "" {
		rep := report.Build(reg, lin, report.Options{
			Params: map[string]string{
				"cars":     fmt.Sprint(*cars),
				"trips":    fmt.Sprint(*trips),
				"seed":     fmt.Sprint(*seed),
				"gatefrac": fmt.Sprint(*gateFrac),
				"layout":   *layoutFlag,
				"workers":  fmt.Sprint(*workers),
				"retries":  fmt.Sprint(*retries),
			},
			Duration: time.Since(start),
		})
		if err := report.Validate(&rep); err != nil {
			log.Fatalf("run report failed validation: %v", err)
		}
		if err := report.WriteFile(*reportOut, &rep); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *reportOut)
	}
	if tracer != nil {
		if err := writeTrace(tracer, *traceOut); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d spans retained, %d overwritten)\n",
			*traceOut, tracer.Len(), tracer.Dropped())
	}
	fmt.Printf("\ndone in %s\n", time.Since(start).Round(time.Millisecond))

	if apiSrv != nil && ctx.Err() == nil {
		fmt.Printf("query API still serving on http://%s/v1/ — Ctrl-C to exit\n", apiSrv.Addr)
		<-ctx.Done()
	}
}

// stageAccounting maps each instrumented stage onto the counters shown
// as kept/dropped in the summary table (counter names from
// internal/core's pipelineMetrics).
var stageAccounting = map[string]struct{ kept, dropped []string }{
	"simulate": {kept: []string{"pipeline_simulate_trips"}},
	"clean":    {kept: []string{"pipeline_clean_trips"}, dropped: []string{"pipeline_clean_points_dropped"}},
	"segment": {
		kept:    []string{"pipeline_segment_kept"},
		dropped: []string{"pipeline_segment_dropped_short", "pipeline_segment_dropped_long"},
	},
	"odselect": {kept: []string{"pipeline_odselect_accepted"}, dropped: []string{"pipeline_odselect_rejected"}},
	"mapmatch": {kept: []string{"pipeline_mapmatch_matched"}, dropped: []string{"pipeline_mapmatch_dropped"}},
	"mapattr":  {kept: []string{"pipeline_mapattr_routes"}},
	"grid":     {kept: []string{"pipeline_grid_points"}},
	"lmm":      {},
}

// printStageTable renders the per-stage timing and kept/dropped account
// of the run from the metrics snapshot.
func printStageTable(snap obs.Snapshot) {
	fmt.Printf("\nstage timings (per-stage spans across all cars):\n")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "stage\tcalls\ttotal\tp50\tp99\tkept\tdropped")
	stages := append(append([]string{}, core.StageNames...), "lmm")
	for _, stage := range stages {
		h, ok := snap.Histograms["pipeline_"+stage+"_duration_seconds"]
		if !ok || h.Count == 0 {
			continue
		}
		acct := stageAccounting[stage]
		fmt.Fprintf(w, "%s\t%d\t%s\t%s\t%s\t%s\t%s\n",
			stage, h.Count,
			fmtSeconds(h.Sum), fmtSeconds(h.P50), fmtSeconds(h.P99),
			sumCounters(snap, acct.kept), sumCounters(snap, acct.dropped))
	}
	if h, ok := snap.Histograms["pipeline_car_duration_seconds"]; ok && h.Count > 0 {
		fmt.Fprintf(w, "per car\t%d\t%s\t%s\t%s\t\t\n",
			h.Count, fmtSeconds(h.Sum), fmtSeconds(h.P50), fmtSeconds(h.P99))
	}
	w.Flush()
}

// runClusterCoordinator runs the process as the cluster's merge/serve
// node: workers register, heartbeat and publish partials against it,
// and the /v1 query API answers on the merged view. Run returns when
// the fleet seals (then the process keeps serving until interrupted)
// or when the worker-loss budget is spent.
func runClusterCoordinator(ctx context.Context, reg *obs.Registry, logger *slog.Logger,
	predictor *predict.Predictor, detector *predict.AnomalyDetector,
	addr string, shards, maxFailures int, nodeID string) error {
	if addr == "" {
		return errors.New("-cluster-coordinator requires -serve-addr")
	}
	if nodeID == "" {
		nodeID = "coordinator"
	}
	start := time.Now()
	coord, err := cluster.NewCoordinator(cluster.CoordinatorConfig{
		NumShards:   shards,
		MaxFailures: maxFailures,
		Metrics:     reg,
		Log:         logger,
	})
	if err != nil {
		return err
	}
	mux := reg.DebugMux()
	coord.RegisterHandlers(mux)
	serve.Mount(mux, serve.NewAPI(coord, reg).
		WithLogger(logger).
		WithNode("coordinator", nodeID).
		WithCluster(coord.WorkerHealth).
		WithLineageSnapshot(coord.LineageSnapshot).
		WithPredictor(predictor).
		WithAnomalies(detector))
	srv, err := obs.Serve(addr, mux)
	if err != nil {
		return err
	}
	defer func() {
		if err := srv.Shutdown(5 * time.Second); err != nil {
			log.Printf("coordinator shutdown: %v", err)
		}
	}()
	fmt.Printf("cluster coordinator %s: %d shards, control endpoints at http://%s/v1/cluster/\n",
		nodeID, shards, srv.Addr)
	fmt.Printf("query API (merged view): http://%s/v1/snapshot /v1/healthz /v1/lineage /v1/grid /v1/od /v1/predict /v1/anomalies\n", srv.Addr)

	switch err := coord.Run(ctx); {
	case err == nil: // every shard sealed and merged
	case errors.Is(err, context.Canceled):
		log.Printf("coordinator interrupted before the fleet sealed")
		return nil
	case errors.Is(err, taxitrace.ErrBudgetExceeded):
		printLineageSnapshot(coord.LineageSnapshot())
		return fmt.Errorf("cluster aborted: %v", err)
	default:
		return err
	}
	snap := coord.Snapshot()
	fmt.Printf("serving sealed snapshot: epoch %d, %d cars, %d cells, %d directions\n",
		snap.Epoch, snap.CarsIngested, len(snap.Cells), len(snap.OD))
	printLineageSnapshot(coord.LineageSnapshot())
	fmt.Printf("\nfleet sealed in %s\n", time.Since(start).Round(time.Millisecond))
	if ctx.Err() == nil {
		fmt.Printf("query API still serving on http://%s/v1/ — Ctrl-C to exit\n", srv.Addr)
		<-ctx.Done()
	}
	return nil
}

// runClusterWorker runs the process as one shard of the cluster. The
// worker's own /v1 query API (its shard-local view) shares the
// listener with the partial endpoint the coordinator pulls.
func runClusterWorker(ctx context.Context, p *taxitrace.Pipeline, reg *obs.Registry,
	lin *taxitrace.Lineage, logger *slog.Logger,
	predictor *predict.Predictor, detector *predict.AnomalyDetector,
	shard, shards, cars int, coordURL, addr, id string) error {
	mux := reg.DebugMux()
	w, err := cluster.NewWorker(cluster.WorkerConfig{
		ID:          id,
		Shard:       shard,
		NumShards:   shards,
		Cars:        cars,
		Coordinator: coordURL,
		Addr:        addr,
		Pipeline:    p,
		Mux:         mux,
		Log:         logger,
	})
	if err != nil {
		return err
	}
	serve.Mount(mux, serve.NewAPI(w, reg).
		WithLogger(logger).
		WithLineage(lin).
		WithNode("worker", w.ID()).
		WithPredictor(predictor).
		WithAnomalies(detector))
	fmt.Printf("cluster worker %s: shard %d/%d (%d of %d cars), coordinator %s\n",
		w.ID(), shard, shards, len(w.Cars()), cars, coordURL)
	if err := w.Run(ctx); err != nil {
		return err
	}
	final := w.Snapshot()
	fmt.Printf("shard sealed and merged by coordinator: epoch %d, %d cars, %d cells, %d directions\n",
		final.Epoch, final.CarsIngested, len(final.Cells), len(final.OD))
	return nil
}

// printLineageTable renders the drop-reason ledger: the per-stage
// conservation rows (in = out + Σ dropped-by-reason) and the most
// lossy cars.
func printLineageTable(lin *taxitrace.Lineage) {
	printLineageSnapshot(lin.Snapshot(5))
	if err := lin.Check(); err != nil {
		log.Printf("LINEAGE CONSERVATION VIOLATED: %v", err)
	}
}

// printLineageSnapshot renders an already-captured lineage table — the
// live ledger's, or the coordinator's merged one.
func printLineageSnapshot(snap obs.LineageSnapshot) {
	if len(snap.Stages) == 0 {
		return
	}
	fmt.Printf("\ndata lineage (per stage, in = out + dropped):\n")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "stage\tunit\tin\tout\tdropped\treasons")
	for _, st := range snap.Stages {
		var reasons []string
		for _, r := range st.Reasons {
			reasons = append(reasons, fmt.Sprintf("%s:%d", r.Reason, r.N))
		}
		fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%d\t%s\n",
			st.Stage, st.Unit, st.In, st.Out, st.Dropped, strings.Join(reasons, " "))
	}
	w.Flush()
	if len(snap.TopDroppedCars) > 0 {
		var parts []string
		for _, c := range snap.TopDroppedCars {
			parts = append(parts, fmt.Sprintf("car %d (%d)", c.Car, c.Dropped))
		}
		fmt.Printf("most dropped-from cars: %s\n", strings.Join(parts, ", "))
	}
	if !snap.Conserved {
		log.Printf("LINEAGE CONSERVATION VIOLATED (see stage rows above)")
	}
}

// newLogger builds the structured logger the -log-level/-log-format
// flags request; an empty level disables logging (nil logger).
func newLogger(level, format string) (*slog.Logger, error) {
	if level == "" {
		return nil, nil
	}
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %v", level, err)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("bad -log-format %q (want text or json)", format)
	}
}

// writeTrace exports the tracer's retained spans as Chrome trace_event
// JSON (loadable in Perfetto and chrome://tracing).
func writeTrace(tr *taxitrace.Tracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteTraceEvent(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// printFailedCars renders the per-car failure table from a RunContext
// error, plus the run-level condition (budget abort, cancellation).
func printFailedCars(err error) {
	failed := taxitrace.FailedCars(err)
	if len(failed) > 0 {
		fmt.Printf("\nfailed cars (%d):\n", len(failed))
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "car\tstage\tattempts\terror")
		for _, ce := range failed {
			stage := ce.Stage
			if stage == "" {
				stage = "-"
			}
			fmt.Fprintf(w, "%d\t%s\t%d\t%v\n", ce.Car, stage, ce.Attempts, ce.Err)
		}
		w.Flush()
	}
	switch {
	case errors.Is(err, taxitrace.ErrBudgetExceeded):
		log.Printf("run aborted early: failure budget exceeded (see -max-failures)")
	case errors.Is(err, context.Canceled):
		log.Printf("run cancelled")
	}
}

// printCacheStats surfaces the shared routing engine's path-cache
// counters in the end-of-run summary.
func printCacheStats(p *taxitrace.Pipeline) {
	s := p.Router.CacheStats()
	fmt.Printf("router cache: %d hits / %d misses (%.1f%% hit rate), %d paths cached, %d evictions\n",
		s.Hits, s.Misses, 100*s.HitRate(), s.Entries, s.Evictions)
}

// printRunnerStats surfaces the fleet runner's outcome counters (the
// CSV path bypasses the runner, so the line is omitted when idle).
func printRunnerStats(snap obs.Snapshot) {
	ok := snap.Counters["runner_cars_ok"]
	failed := snap.Counters["runner_cars_failed"]
	if ok == 0 && failed == 0 {
		return
	}
	fmt.Printf("fleet runner: %d cars ok, %d failed, %d retries, %d skipped\n",
		ok, failed, snap.Counters["runner_cars_retried"], snap.Counters["runner_cars_skipped"])
}

// sumCounters totals the named counters; "" when the stage has no such
// account.
func sumCounters(snap obs.Snapshot, names []string) string {
	if len(names) == 0 {
		return ""
	}
	var total uint64
	for _, n := range names {
		total += snap.Counters[n]
	}
	return fmt.Sprintf("%d", total)
}

// fmtSeconds renders a duration measured in seconds at ms resolution.
func fmtSeconds(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(10 * time.Microsecond).String()
}

// writeMetrics dumps the registry's JSON snapshot to path.
func writeMetrics(reg *obs.Registry, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeSpeedMap renders the accepted transitions' point speeds over the
// network.
func writeSpeedMap(p *taxitrace.Pipeline, recs []*taxitrace.TransitionRecord, path string) error {
	c := render.NewCanvas(p.City.StudyArea, 1000)
	for i := range p.Graph.Edges {
		c.Polyline(p.Graph.Edges[i].Geom, "#dddddd", 1)
	}
	for _, rec := range recs {
		for _, sp := range taxitrace.TransitionSpeedPoints(rec) {
			c.Circle(sp.Pos, 2, render.SpeedColor(sp.SpeedKmh, 60))
		}
	}
	c.SpeedLegend(60)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := c.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runIngestServer runs the process as an event-time streaming server:
// the sink, the ingest engine and the /v1 API (query + firehose) share
// one listener, a wall-clock tick keeps the watermark advancing on
// slow streams, and interruption closes the engine so the final
// snapshot seals before the summary prints.
func runIngestServer(ctx context.Context, p *taxitrace.Pipeline, reg *obs.Registry,
	lin *taxitrace.Lineage, logger *slog.Logger,
	predictor *predict.Predictor, detector *predict.AnomalyDetector, addr string,
	lateness, idleTimeout time.Duration, check taxitrace.CheckConfig) error {
	g, err := sink.GridForPipeline(p)
	if err != nil {
		return err
	}
	snk, err := sink.New(sink.Config{
		Grid:    g,
		Metrics: reg,
		Gates:   p.Selector.GateNames(),
		Check:   check,
		Log:     logger,
	})
	if err != nil {
		return err
	}
	eng, err := ingest.New(ingest.Config{
		Pipeline:        p,
		Sink:            snk,
		AllowedLateness: lateness,
		IdleTimeout:     idleTimeout,
		Metrics:         reg,
		Lineage:         lin,
		Log:             logger,
	})
	if err != nil {
		return err
	}
	mux := reg.DebugMux()
	serve.Mount(mux, serve.NewAPI(snk, reg).WithLogger(logger).WithLineage(lin).WithIngest(eng).
		WithPredictor(predictor).WithAnomalies(detector))
	srv, err := obs.Serve(addr, mux)
	if err != nil {
		return err
	}
	// Graceful: let an in-flight firehose POST finish (bounded) before
	// the listener goes away, so a producer mid-stream sees a clean
	// response instead of a reset.
	defer func() {
		if err := srv.Shutdown(5 * time.Second); err != nil {
			log.Printf("ingest server shutdown: %v", err)
		}
	}()
	fmt.Printf("streaming ingest: POST http://%s/v1/ingest (NDJSON or TAXIPNTB binary), POST /v1/ingest/close to seal\n", srv.Addr)
	fmt.Printf("query API: http://%s/v1/snapshot /v1/healthz /v1/lineage /v1/grid /v1/od /v1/predict /v1/anomalies (+debug surface)\n", srv.Addr)
	fmt.Printf("watermark: lateness %s, idle timeout %s — Ctrl-C to exit\n", lateness, idleTimeout)

	// Slow or stalled streams would otherwise only flush on the
	// admission cadence; a wall tick forces watermark recomputation.
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			eng.Close()
			st := eng.Stats()
			final := snk.Snapshot()
			fmt.Printf("\ningest: %d received, %d admitted, %d trips closed, %d dropped\n",
				st.Received, st.Admitted, st.ClosedTrips, st.Received-st.Admitted)
			fmt.Printf("final snapshot: epoch %d, %d cars, %d cells, %d directions\n",
				final.Epoch, final.CarsIngested, len(final.Cells), len(final.OD))
			if cerr := snk.CheckErr(); cerr != nil {
				log.Printf("sink invariant violation: %v", cerr)
			}
			return nil
		case <-tick.C:
			eng.Advance()
		}
	}
}

// processTraces loads externally recorded trips (e.g. written by
// cmd/tracegen against the same city seed) and runs the processing
// stages over them, grouped by car. The file format — CSV or the
// binary trace format — is sniffed from the leading bytes. Like
// RunContext, a bad car is isolated: its error is joined into the
// returned error while the remaining cars' results are kept.
func processTraces(ctx context.Context, p *taxitrace.Pipeline, path string) (*taxitrace.Result, error) {
	res := &taxitrace.Result{}
	f, err := os.Open(path)
	if err != nil {
		return res, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	read := trace.ReadCSV
	if head, err := br.Peek(8); err == nil && string(head) == "TAXITRCB" {
		read = trace.ReadBinary
	}
	trips, err := read(br, p.City.DB.Proj)
	if err != nil {
		return res, err
	}
	byCar := map[int][]*trace.Trip{}
	for _, t := range trips {
		byCar[t.CarID] = append(byCar[t.CarID], t)
	}
	cars := make([]int, 0, len(byCar))
	for car := range byCar {
		cars = append(cars, car)
	}
	sort.Ints(cars)
	var errs []error
	for _, car := range cars {
		if err := ctx.Err(); err != nil {
			errs = append(errs, err)
			break
		}
		cr, err := p.ProcessContext(ctx, car, byCar[car])
		if err != nil {
			errs = append(errs, &taxitrace.CarError{Car: car, Attempts: 1, Err: err})
			continue
		}
		res.Cars = append(res.Cars, cr)
	}
	return res, errors.Join(errs...)
}
