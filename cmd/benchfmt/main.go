// Command benchfmt converts `go test -bench` output on stdin into the
// JSON snapshot schema used under results/ (see BENCH_pipeline.json):
// one entry per benchmark with the median ns/op across -count
// repetitions plus median B/op and allocs/op.
//
// Usage:
//
//	go test -run xxx -bench . -benchmem -count=5 . | \
//	    benchfmt -snapshot 2026-08-06 -command "..." > results/BENCH_x.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

type entry struct {
	Name          string  `json:"name"`
	NsPerOpMedian float64 `json:"ns_per_op_median"`
	BytesPerOp    int64   `json:"bytes_per_op"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
	// Extra holds medians of any custom b.ReportMetric units beyond the
	// standard three (e.g. the serve benches' p50-ns / p99-ns latency
	// quantiles under concurrent load).
	Extra map[string]float64 `json:"extra,omitempty"`
	Notes string             `json:"notes"`
}

type snapshot struct {
	Snapshot   string  `json:"snapshot"`
	Command    string  `json:"command"`
	Goos       string  `json:"goos"`
	Goarch     string  `json:"goarch"`
	CPU        string  `json:"cpu"`
	Benchmarks []entry `json:"benchmarks"`
}

// procSuffix is the trailing -GOMAXPROCS go test appends to benchmark
// names; stripped so snapshots diff cleanly across machines.
var procSuffix = regexp.MustCompile(`-\d+$`)

type samples struct {
	ns     []float64
	bytes  []float64
	allocs []float64
	extra  map[string][]float64
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchfmt: ")
	snapDate := flag.String("snapshot", "", "snapshot date (YYYY-MM-DD)")
	command := flag.String("command", "", "command line that produced the input")
	notes := flag.String("notes", "", "notes attached to every benchmark entry")
	flag.Parse()

	out := snapshot{Snapshot: *snapDate, Command: *command}
	byName := map[string]*samples{}
	var order []string

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			out.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			out.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			out.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			name, vals, err := parseBenchLine(line)
			if err != nil {
				log.Fatalf("%v: %s", err, line)
			}
			s := byName[name]
			if s == nil {
				s = &samples{}
				byName[name] = s
				order = append(order, name)
			}
			s.ns = append(s.ns, vals["ns/op"])
			s.bytes = append(s.bytes, vals["B/op"])
			s.allocs = append(s.allocs, vals["allocs/op"])
			for unit, v := range vals {
				switch unit {
				case "ns/op", "B/op", "allocs/op":
				default:
					if s.extra == nil {
						s.extra = map[string][]float64{}
					}
					s.extra[unit] = append(s.extra[unit], v)
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if len(order) == 0 {
		log.Fatal("no benchmark lines on stdin")
	}

	for _, name := range order {
		s := byName[name]
		note := *notes
		if note != "" {
			note = fmt.Sprintf("%s; median of %d runs", note, len(s.ns))
		} else {
			note = fmt.Sprintf("median of %d runs", len(s.ns))
		}
		e := entry{
			Name:          name,
			NsPerOpMedian: median(s.ns),
			BytesPerOp:    int64(median(s.bytes)),
			AllocsPerOp:   int64(median(s.allocs)),
			Notes:         note,
		}
		for unit, vs := range s.extra {
			if e.Extra == nil {
				e.Extra = map[string]float64{}
			}
			e.Extra[unit] = median(vs)
		}
		out.Benchmarks = append(out.Benchmarks, e)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		log.Fatal(err)
	}
}

// parseBenchLine splits one result line into the benchmark name (minus
// the -GOMAXPROCS suffix) and its value-per-unit pairs, e.g.
//
//	BenchmarkX/sub-16  3  41234567 ns/op  1024 B/op  12 allocs/op
func parseBenchLine(line string) (string, map[string]float64, error) {
	f := strings.Fields(line)
	if len(f) < 4 || len(f)%2 != 0 {
		return "", nil, fmt.Errorf("malformed benchmark line")
	}
	name := procSuffix.ReplaceAllString(f[0], "")
	vals := map[string]float64{}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return "", nil, fmt.Errorf("bad value %q", f[i])
		}
		vals[f[i+1]] = v
	}
	return name, vals, nil
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}
