// Command experiments regenerates every table and figure of the
// paper's evaluation section and writes them under an output directory:
// one .txt per table/figure with the printed rows/series, plus the SVG
// map and chart artifacts.
//
// Usage:
//
//	experiments [-out DIR] [-scale small|medium|paper] [-seed N]
//	            [-metrics out.json] [-debug-addr :6060]
//
// -debug-addr serves /metrics (Prometheus), /debug/vars (JSON snapshot)
// and /debug/pprof/ for the duration of the run, so paper-scale
// regenerations can be profiled live; -metrics writes the final JSON
// metrics snapshot.
package main

import (
	"flag"
	"fmt"
	"html"
	"log"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	out := flag.String("out", "experiments-out", "output directory")
	scale := flag.String("scale", "medium", "data volume: small, medium or paper")
	seed := flag.Int64("seed", 42, "master random seed")
	ablations := flag.Bool("ablations", false, "also run the ablation studies and the eco-routing/hotspot extensions")
	workers := flag.Int("workers", 0, "fleet runner worker pool size (0 = GOMAXPROCS)")
	maxFailures := flag.Int("max-failures", -1, "error budget before the fleet run aborts (-1 = abort on first failure; experiments need the full fleet)")
	metricsOut := flag.String("metrics", "", "optional JSON metrics snapshot written at exit")
	reportOut := flag.String("report", "", "write the run report (lineage table, stage timings, fleet summary) as JSON at exit")
	logLevel := flag.String("log-level", "", "emit structured logs to stderr at this level (debug, info, warn, error; empty disables)")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address")
	flag.Parse()

	var logger *slog.Logger
	if *logLevel != "" {
		var lvl slog.Level
		if err := lvl.UnmarshalText([]byte(*logLevel)); err != nil {
			log.Fatalf("bad -log-level %q: %v", *logLevel, err)
		}
		logger = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}))
	}

	reg := obs.NewRegistry()
	lin := obs.NewLineage(reg)
	if *debugAddr != "" {
		srv, err := obs.ServeDebug(*debugAddr, reg)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		log.Printf("debug server: http://%s/metrics /debug/vars /debug/pprof/", srv.Addr)
	}

	var cfg experiments.EnvConfig
	switch *scale {
	case "small":
		cfg = experiments.SmallScale()
	case "medium":
		cfg = experiments.EnvConfig{Seed: 42, Cars: 4, TripsPerCar: 60, GateRunFraction: 0.25}
	case "paper":
		cfg = experiments.PaperScale()
	default:
		log.Fatalf("unknown scale %q (want small, medium or paper)", *scale)
	}
	cfg.Seed = *seed
	cfg.Metrics = reg
	cfg.Workers = *workers
	cfg.MaxFailures = *maxFailures
	cfg.Lineage = lin
	cfg.Log = logger

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	log.Printf("building environment (%d cars x %d trips, seed %d)...", cfg.Cars, cfg.TripsPerCar, cfg.Seed)
	env, err := experiments.NewEnv(cfg)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("pipeline complete in %s", time.Since(start).Round(time.Millisecond))

	reports := experiments.All(env)
	if *ablations {
		reports = append(reports, experiments.Ablations(env)...)
		reports = append(reports, experiments.Extensions(env)...)
	}
	for _, r := range reports {
		txt := filepath.Join(*out, r.ID+".txt")
		body := "# " + r.Title + "\n\n" + r.Text
		if err := os.WriteFile(txt, []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
		for _, a := range r.Artifacts {
			if err := os.WriteFile(filepath.Join(*out, a.Name), a.Data, 0o644); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("==== %s\n%s\n", r.Title, r.Text)
	}
	if err := os.WriteFile(filepath.Join(*out, "index.html"), indexHTML(reports), 0o644); err != nil {
		log.Fatal(err)
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := reg.WriteJSON(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote metrics snapshot to %s", *metricsOut)
	}
	if err := lin.Check(); err != nil {
		log.Fatalf("lineage conservation violated: %v", err)
	}
	if *reportOut != "" {
		rep := report.Build(reg, lin, report.Options{
			Params: map[string]string{
				"scale": *scale,
				"seed":  fmt.Sprint(*seed),
				"cars":  fmt.Sprint(cfg.Cars),
				"trips": fmt.Sprint(cfg.TripsPerCar),
			},
			Duration: time.Since(start),
		})
		if err := report.Validate(&rep); err != nil {
			log.Fatalf("run report failed validation: %v", err)
		}
		if err := report.WriteFile(*reportOut, &rep); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote run report to %s", *reportOut)
	}
	log.Printf("wrote results to %s in %s", *out, time.Since(start).Round(time.Millisecond))
}

// indexHTML renders a single browsable page over all reports: the
// printed rows inline, the SVG figures embedded.
func indexHTML(reports []*experiments.Report) []byte {
	var b strings.Builder
	b.WriteString(`<!DOCTYPE html><html><head><meta charset="utf-8">` +
		`<title>taxitrace experiments</title><style>` +
		`body{font-family:sans-serif;max-width:1100px;margin:2em auto;padding:0 1em}` +
		`pre{background:#f6f6f6;padding:1em;overflow-x:auto}` +
		`img{max-width:100%;border:1px solid #ddd;margin:0.5em 0}` +
		`nav a{margin-right:1em}` +
		"</style></head><body>\n<h1>taxitrace — paper tables and figures</h1>\n<nav>")
	for _, r := range reports {
		fmt.Fprintf(&b, `<a href="#%s">%s</a>`, r.ID, html.EscapeString(r.ID))
	}
	b.WriteString("</nav>\n")
	for _, r := range reports {
		fmt.Fprintf(&b, `<h2 id="%s">%s</h2>`+"\n", r.ID, html.EscapeString(r.Title))
		fmt.Fprintf(&b, "<pre>%s</pre>\n", html.EscapeString(r.Text))
		for _, a := range r.Artifacts {
			fmt.Fprintf(&b, `<p><img src="%s" alt="%s"></p>`+"\n",
				html.EscapeString(a.Name), html.EscapeString(a.Name))
		}
	}
	b.WriteString("</body></html>\n")
	return []byte(b.String())
}
