// Command coach runs the Driving Coach analysis over a fleet: per-trip
// eco scores (worst offenders listed), per-direction route-variant
// comparison, and a fleet-level summary. With -traces it analyses a
// recorded CSV dataset (written by cmd/tracegen against the same seed);
// otherwise it simulates a fleet.
//
// Usage:
//
//	coach [-cars N] [-trips N] [-seed N] [-traces FILE] [-worst N]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"text/tabwriter"

	"repro"
	"repro/internal/coach"
	"repro/internal/routes"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("coach: ")
	cars := flag.Int("cars", 3, "number of simulated taxis")
	trips := flag.Int("trips", 50, "engine-on trips per taxi")
	seed := flag.Int64("seed", 42, "master random seed")
	tracesIn := flag.String("traces", "", "optional route-point CSV to analyse instead of simulating")
	worst := flag.Int("worst", 3, "how many least efficient trips to detail")
	flag.Parse()

	p, err := taxitrace.New(taxitrace.Config{
		CitySeed: *seed,
		Fleet: tracegen.Config{
			Seed: *seed, Cars: *cars, TripsPerCar: *trips, GateRunFraction: 0.3,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	var res *taxitrace.Result
	if *tracesIn != "" {
		res, err = processCSV(ctx, p, *tracesIn)
	} else {
		res, err = p.RunContext(ctx)
	}
	if err != nil {
		log.Fatal(err)
	}
	recs := res.Transitions()
	if len(recs) == 0 {
		log.Fatal("no transitions to analyse")
	}

	c := coach.New(p.Graph)
	reports := make([]coach.TripReport, len(recs))
	var scores, fuelPerKm []float64
	for i, rec := range recs {
		reports[i] = c.Analyze(rec)
		scores = append(scores, reports[i].EcoScore)
		fuelPerKm = append(fuelPerKm, reports[i].FuelPerKm)
	}
	fmt.Printf("fleet: %d analysed trips\n", len(reports))
	fmt.Printf("eco score:   %s\n", stats.Summarize(scores))
	fmt.Printf("fuel per km: %s\n", stats.Summarize(fuelPerKm))

	sort.Slice(reports, func(i, j int) bool { return reports[i].EcoScore < reports[j].EcoScore })
	n := *worst
	if n > len(reports) {
		n = len(reports)
	}
	fmt.Printf("\n%d least efficient trips:\n", n)
	for _, r := range reports[:n] {
		fmt.Printf("  score %3.0f  %s %s: %.2f km, %.0f ml, idle %.0f%%, low %.0f%%, detour %.2f\n",
			r.EcoScore, r.Key, r.Direction, r.DistanceKm, r.FuelMl,
			r.IdlePct, r.LowSpeedPct, r.DetourFactor)
		for _, s := range r.Suggestions {
			fmt.Printf("    - %s\n", s)
		}
	}

	options, err := coach.CompareRoutes(recs, routes.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nroute variants (eco-best per direction marked *):")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "dir\tvariant\ttrips\tfuel(ml)\ttime(min)\tlow%")
	for _, o := range options {
		if o.Trips < 2 && !o.EcoBest {
			continue // keep the table readable
		}
		mark := ""
		if o.EcoBest {
			mark = "*"
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%.0f%s\t%.1f\t%.1f\n",
			o.Direction, o.Variant, o.Trips, o.MeanFuelMl, mark, o.MeanTimeMin, o.MeanLowPct)
	}
	w.Flush()
}

// processCSV loads recorded trips and runs them through the pipeline.
func processCSV(ctx context.Context, p *taxitrace.Pipeline, path string) (*taxitrace.Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	trips, err := trace.ReadCSV(f, p.City.DB.Proj)
	if err != nil {
		return nil, err
	}
	byCar := map[int][]*trace.Trip{}
	for _, t := range trips {
		byCar[t.CarID] = append(byCar[t.CarID], t)
	}
	carIDs := make([]int, 0, len(byCar))
	for car := range byCar {
		carIDs = append(carIDs, car)
	}
	sort.Ints(carIDs)
	res := &taxitrace.Result{}
	for _, car := range carIDs {
		cr, err := p.ProcessContext(ctx, car, byCar[car])
		if err != nil {
			return nil, err
		}
		res.Cars = append(res.Cars, cr)
	}
	return res, nil
}
