// Command lineagecheck validates the observability artifacts a
// taxiflow run writes — the CI gate for the lineage contract.
//
// Usage:
//
//	lineagecheck -report report.json [-trace trace.json] [-min-cars N]
//
// It re-validates the run report against the versioned schema
// (internal/report.Validate), re-checks the lineage conservation
// invariant (every stage: in = out + Σ dropped-by-reason), optionally
// requires a minimum fleet size, and — when -trace is given — parses
// the Chrome trace_event export and checks it is structurally sound
// (non-empty traceEvents with names, timestamps and complete-event
// durations), i.e. that Perfetto/chrome://tracing will load it.
// Any violation exits non-zero with a one-line diagnosis.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lineagecheck: ")
	reportIn := flag.String("report", "", "run report to validate (required)")
	traceIn := flag.String("trace", "", "optional Chrome trace_event export to validate")
	minCars := flag.Int("min-cars", 0, "minimum cars_ok the report must account for")
	flag.Parse()
	if *reportIn == "" {
		flag.Usage()
		os.Exit(2)
	}

	r, err := report.ReadFile(*reportIn)
	if err != nil {
		log.Fatal(err)
	}
	if got := int(r.Fleet.CarsOK); got < *minCars {
		log.Fatalf("%s: %d cars ok, want at least %d", *reportIn, got, *minCars)
	}
	var dropped uint64
	for _, st := range r.Lineage.Stages {
		dropped += st.Dropped
	}
	fmt.Printf("report ok: %d stages conserved, %d cars ok, %d units dropped across stages\n",
		len(r.Lineage.Stages), r.Fleet.CarsOK, dropped)

	if *traceIn != "" {
		n, err := checkTrace(*traceIn)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace ok: %d events\n", n)
	}
}

// traceEvent mirrors the fields every Chrome trace_event record must
// carry to render.
type traceEvent struct {
	Name  string   `json:"name"`
	Phase string   `json:"ph"`
	TsUs  *float64 `json:"ts"`
	DurUs *float64 `json:"dur"`
	PID   *int     `json:"pid"`
	TID   *int     `json:"tid"`
}

func checkTrace(path string) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var doc struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return 0, fmt.Errorf("%s: not valid trace JSON: %v", path, err)
	}
	if len(doc.TraceEvents) == 0 {
		return 0, fmt.Errorf("%s: no traceEvents", path)
	}
	spans := 0
	for i, ev := range doc.TraceEvents {
		if ev.Name == "" || ev.Phase == "" {
			return 0, fmt.Errorf("%s: event %d missing name or ph", path, i)
		}
		if ev.PID == nil || ev.TID == nil {
			return 0, fmt.Errorf("%s: event %d (%s) missing pid/tid", path, i, ev.Name)
		}
		if ev.Phase != "X" {
			continue // metadata and counter events carry no duration
		}
		spans++
		// dur is omitted when zero (a sub-resolution span), so only ts
		// is mandatory on complete events.
		if ev.TsUs == nil {
			return 0, fmt.Errorf("%s: complete event %d (%s) missing ts", path, i, ev.Name)
		}
		if *ev.TsUs < 0 || (ev.DurUs != nil && *ev.DurUs < 0) {
			return 0, fmt.Errorf("%s: complete event %d (%s) has negative ts/dur", path, i, ev.Name)
		}
	}
	if spans == 0 {
		return 0, fmt.Errorf("%s: no complete (ph=X) span events", path)
	}
	return len(doc.TraceEvents), nil
}
