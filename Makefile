# Common development targets for the taxitrace reproduction.

GO ?= go

.PHONY: all build test vet bench race results examples clean help

all: build vet test

help:
	@echo "Targets:"
	@echo "  all      build + vet + test (default)"
	@echo "  build    go build ./..."
	@echo "  vet      go vet ./..."
	@echo "  test     go test ./..."
	@echo "  race     go vet + go test -race ./... (concurrency gate for the"
	@echo "           shared Router: pooled scratch, sharded path cache and"
	@echo "           parallel per-car workers all run under the race detector)"
	@echo "  bench    run every benchmark with -benchmem"
	@echo "  results  regenerate all paper tables/figures into results/"
	@echo "  examples run every example program"
	@echo "  clean    remove scratch output"

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector gate: the pipeline shares one Router (scratch pools,
# path cache) across per-car goroutines, so -race is part of tier-1
# hygiene, not an optional extra.
race:
	$(GO) vet ./...
	$(GO) test -race ./...

# One bench per paper table/figure plus the ablations.
bench:
	$(GO) test -bench=. -benchmem -run xxx ./...

# Regenerate every paper table and figure (plus ablations) into results/.
results:
	$(GO) run ./cmd/experiments -scale paper -ablations -out results

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/odanalysis
	$(GO) run ./examples/mixedmodel
	$(GO) run ./examples/mapmatching
	$(GO) run ./examples/datacleaning
	$(GO) run ./examples/drivingcoach

clean:
	rm -rf experiments-out
