# Common development targets for the taxitrace reproduction.

GO ?= go

.PHONY: all build test vet bench bench-runner bench-serve bench-fleet bench-obs bench-ingest bench-cluster bench-predict race ci fuzz profile results examples clean help

all: build vet test

help:
	@echo "Targets:"
	@echo "  all      build + vet + test (default)"
	@echo "  build    go build ./..."
	@echo "  vet      go vet ./..."
	@echo "  test     go test ./..."
	@echo "  race     go vet + go test -race ./... (concurrency gate for the"
	@echo "           shared Router: pooled scratch, sharded path cache and"
	@echo "           parallel per-car workers all run under the race detector)"
	@echo "  ci       the full gate CI runs: build + vet + test + race"
	@echo "  fuzz     run every native fuzz target for FUZZTIME (default 30s)"
	@echo "           each; seed corpora live in testdata/fuzz/"
	@echo "  bench    run every benchmark with -benchmem"
	@echo "  bench-runner  snapshot fleet-runner perf (batch vs stream at"
	@echo "           1/4/GOMAXPROCS workers) into results/BENCH_runner.json"
	@echo "  bench-serve   snapshot serving-layer perf (sink ingest/merge"
	@echo "           throughput, query latency incl. p50/p99 under"
	@echo "           concurrent load) into results/BENCH_serve.json"
	@echo "  bench-fleet   snapshot fleet-scale perf (1k/10k cars, layout x"
	@echo "           format matrix + ingest microbenches, merged with the"
	@echo "           frozen pre-columnar baseline) into"
	@echo "           results/BENCH_fleet.json; FLEET_CARS=N adds a size"
	@echo "  bench-obs     snapshot observability overhead (obs off vs idle"
	@echo "           tracer+lineage vs fully traced on the 1k-car fleet)"
	@echo "           into results/BENCH_obs.json"
	@echo "  bench-ingest  snapshot streaming-ingest perf (ordered and"
	@echo "           bounded-shuffle firehose replay: points/s + p99"
	@echo "           ingest-to-visible latency, plus NDJSON/binary frame"
	@echo "           decode) into results/BENCH_ingest.json"
	@echo "  bench-cluster snapshot multi-node scaling (1 vs 4 worker"
	@echo "           processes on the paced-feed fleet, cars/s; the 4-shard"
	@echo "           arm must hold >=2.5x the single-node baseline) into"
	@echo "           results/BENCH_cluster.json"
	@echo "  bench-predict snapshot prediction-layer perf (travel-time"
	@echo "           prediction over a 24x24 street grid, free-flow vs"
	@echo "           fully profiled, plus anomaly-report scoring at 100"
	@echo "           and 1000 cells) into results/BENCH_predict.json"
	@echo "  profile  run a large taxiflow workload with -debug-addr and"
	@echo "           capture a 10 s CPU profile into cpu.pprof"
	@echo "  results  regenerate all paper tables/figures into results/"
	@echo "  examples run every example program"
	@echo "  clean    remove scratch output"

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector gate: the pipeline shares one Router (scratch pools,
# path cache) across per-car goroutines, so -race is part of tier-1
# hygiene, not an optional extra.
race:
	$(GO) vet ./...
	$(GO) test -race ./...

# The full gate: what .github/workflows/ci.yml runs on every push/PR.
ci:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./...

# Fuzz smoke: run every native fuzz target for FUZZTIME each. Go allows
# one -fuzz pattern per package invocation, so iterate explicitly. The
# committed corpora under testdata/fuzz/ replay on every plain
# `go test` run; this target additionally explores new inputs.
FUZZTIME ?= 30s
FUZZ_TARGETS = \
	./internal/clean:FuzzRepair \
	./internal/segment:FuzzSplit \
	./internal/grid:FuzzParseCellID \
	./internal/geo:FuzzProjectionRoundTrip \
	./internal/serve:FuzzQueryParsing \
	./internal/ingest:FuzzPointCodec \
	./internal/trace:FuzzReadCSV \
	./internal/trace:FuzzReadBinary \
	./internal/digiroad:FuzzReadCSV \
	./internal/sink:FuzzDecodeSnapshot \
	./internal/cluster:FuzzDecodePartial

fuzz:
	@set -e; for t in $(FUZZ_TARGETS); do \
		pkg=$${t%%:*}; fn=$${t##*:}; \
		echo "== fuzz $$pkg $$fn ($(FUZZTIME)) =="; \
		$(GO) test $$pkg -fuzz="^$$fn\$$" -fuzztime=$(FUZZTIME) -run '^\$$'; \
	done

# Live profiling demo: run a large pipeline workload with the obs debug
# server up and pull a 10 s CPU profile from /debug/pprof/profile while
# it works. Inspect with `go tool pprof cpu.pprof`. The same recipe
# profiles a `make results` run: add -debug-addr to cmd/experiments.
PROFILE_ADDR ?= localhost:6464
profile:
	$(GO) build -o /tmp/taxiflow-profile ./cmd/taxiflow
	/tmp/taxiflow-profile -cars 12 -trips 800 -gatefrac 0.3 -debug-addr $(PROFILE_ADDR) & \
	sleep 2; \
	$(GO) tool pprof -proto -output cpu.pprof "http://$(PROFILE_ADDR)/debug/pprof/profile?seconds=10"; \
	wait
	@echo "wrote cpu.pprof — inspect with: go tool pprof cpu.pprof"

# One bench per paper table/figure plus the ablations.
bench:
	$(GO) test -bench=. -benchmem -run xxx ./...

# Fleet-runner perf trajectory: whole-fleet batch vs stream at 1, 4 and
# GOMAXPROCS workers, medians over 5 repetitions, snapshotted into
# results/BENCH_runner.json via cmd/benchfmt.
bench-runner:
	$(GO) test -run xxx -bench 'BenchmarkFleetRunner' -benchmem -count=5 . \
		| tee /tmp/bench_runner.txt
	$(GO) run ./cmd/benchfmt \
		-snapshot "$$(date +%Y-%m-%d)" \
		-command "go test -run xxx -bench 'BenchmarkFleetRunner' -benchmem -count=5 ." \
		-notes "8-car fleet x 30 trips/car, seed 42, warm router cache" \
		< /tmp/bench_runner.txt > results/BENCH_runner.json
	@echo "wrote results/BENCH_runner.json"

# Serving-layer perf trajectory: sink ingest-merge throughput (single
# and contended writers, publish/merge cost) and query latency per
# endpoint plus p50/p99 under concurrent read+ingest load, medians over
# 5 repetitions, snapshotted into results/BENCH_serve.json.
bench-serve:
	$(GO) test -run xxx -bench 'BenchmarkSink|BenchmarkServe' -benchmem -count=5 \
		./internal/sink/ ./internal/serve/ | tee /tmp/bench_serve.txt
	$(GO) run ./cmd/benchfmt \
		-snapshot "$$(date +%Y-%m-%d)" \
		-command "go test -run xxx -bench 'BenchmarkSink|BenchmarkServe' -benchmem -count=5 ./internal/sink/ ./internal/serve/" \
		-notes "512-car snapshot, 8-point transitions, 4 ingest shards" \
		< /tmp/bench_serve.txt > results/BENCH_serve.json
	@echo "wrote results/BENCH_serve.json"

# Fleet-scale perf trajectory: the cars × layout × format matrix plus
# the per-car ingest microbenches, single-shot runs with medians over 3
# repetitions (one op is a whole fleet). The frozen pre-columnar
# baseline (BenchmarkFleetSeed arms of results/bench_fleet_seed.txt,
# recorded on the seed revision of this workload) is concatenated in
# front so the snapshot carries both sides of the before/after
# comparison. FLEET_CARS=N benchmarks an extra (e.g. 100000) size.
bench-fleet:
	$(GO) test -run xxx -bench '^BenchmarkFleet' -benchmem -benchtime=1x -count=3 . \
		| tee /tmp/bench_fleet.txt
	{ grep '^BenchmarkFleetSeed' results/bench_fleet_seed.txt; cat /tmp/bench_fleet.txt; } \
		| $(GO) run ./cmd/benchfmt \
		-snapshot "$$(date +%Y-%m-%d)" \
		-command "go test -run xxx -bench '^BenchmarkFleet' -benchmem -benchtime=1x -count=3 ." \
		-notes "32-car pool replicated per fleet size, 3 trips/car, seed 42; BenchmarkFleetSeed = frozen pre-columnar baseline (results/bench_fleet_seed.txt)" \
		> results/BENCH_fleet.json
	@echo "wrote results/BENCH_fleet.json"

# Observability overhead: the BenchmarkFleet workload (1000 cars,
# columnar layout, binary ingest) with the obs stack off (nil tracer —
# must stay within 1% of the pre-observability BENCH_fleet.json arm),
# lineage+metrics only, a 10% trace sample, and every car traced.
bench-obs:
	$(GO) test -run xxx -bench '^BenchmarkFleetObs' -benchmem -benchtime=1x -count=5 . \
		| tee /tmp/bench_obs.txt
	$(GO) run ./cmd/benchfmt \
		-snapshot "$$(date +%Y-%m-%d)" \
		-command "go test -run xxx -bench '^BenchmarkFleetObs' -benchmem -benchtime=1x -count=5 ." \
		-notes "1000-car fleet, columnar layout, binary ingest; obs=off (nil tracer, <=1% of pre-observability BENCH_fleet baseline), obs=lineage adds ledger+metrics, obs=sampled traces 10% of cars, obs=traced traces all" \
		< /tmp/bench_obs.txt > results/BENCH_obs.json
	@echo "wrote results/BENCH_obs.json"

# Streaming-ingest perf trajectory: the 32-car differential fixture
# replayed as an event-time firehose (ordered, and shuffled within the
# lateness bound), reporting sustained points/s and the p99
# ingest-to-visible latency, plus the bare NDJSON/binary frame
# decoders; medians over 5 single-shot runs (one op is a whole fleet
# replay) into results/BENCH_ingest.json.
bench-ingest:
	$(GO) test -run xxx -bench '^BenchmarkIngest' -benchmem -benchtime=1x -count=5 \
		./internal/ingest/ | tee /tmp/bench_ingest.txt
	$(GO) run ./cmd/benchfmt \
		-snapshot "$$(date +%Y-%m-%d)" \
		-command "go test -run xxx -bench '^BenchmarkIngest' -benchmem -benchtime=1x -count=5 ./internal/ingest/" \
		-notes "32-car fleet x 3 trips flattened to a point firehose, 30s lateness, watermark every 256 points; ordered vs bounded-shuffle replay through admission/watermark/trip-close into the sink, plus NDJSON vs TAXIPNTB decode" \
		< /tmp/bench_ingest.txt > results/BENCH_ingest.json
	@echo "wrote results/BENCH_ingest.json"

# Multi-node scaling trajectory: the paced-feed fleet (every car
# charges a fixed trace-acquisition latency) run by 1 vs 4 real worker
# OS processes coordinated over localhost HTTP, reporting merged-fleet
# cars/s; medians over 3 single-shot runs (one op is a whole cluster
# lifecycle) into results/BENCH_cluster.json. The 4-shard arm must
# hold >=2.5x the single-node baseline.
bench-cluster:
	$(GO) test -run xxx -bench '^BenchmarkClusterWorkers' -benchtime=1x -count=3 \
		./internal/cluster/ | tee /tmp/bench_cluster.txt
	$(GO) run ./cmd/benchfmt \
		-snapshot "$$(date +%Y-%m-%d)" \
		-command "go test -run xxx -bench '^BenchmarkClusterWorkers' -benchtime=1x -count=3 ./internal/cluster/" \
		-notes "49-car fleet x 4 trips, 200ms paced feed per car; worker processes re-exec the test binary, coordinator pulls+merges partials over localhost HTTP; cars/s is merged-fleet throughput, 4 shards must be >=2.5x 1 shard" \
		< /tmp/bench_cluster.txt > results/BENCH_cluster.json
	@echo "wrote results/BENCH_cluster.json"

# Prediction-layer perf trajectory: one /v1/predict evaluation (profile
# fold + weighted shortest path) on a 24x24 street grid with and
# without learned profiles, and one /v1/anomalies evaluation (score +
# fold) at 100 and 1000 cells; medians over 5 repetitions into
# results/BENCH_predict.json.
bench-predict:
	$(GO) test -run xxx -bench 'BenchmarkPredict|BenchmarkAnomalyReport' -benchmem -count=5 \
		./internal/predict/ | tee /tmp/bench_predict.txt
	$(GO) run ./cmd/benchfmt \
		-snapshot "$$(date +%Y-%m-%d)" \
		-command "go test -run xxx -bench 'BenchmarkPredict|BenchmarkAnomalyReport' -benchmem -count=5 ./internal/predict/" \
		-notes "24x24 grid (1100 edges), 36 km/h, profiles on every edge at 3 rush hours; anomaly reports score+fold 100/1000 cells + 1 OD against a 4-epoch EW reference" \
		< /tmp/bench_predict.txt > results/BENCH_predict.json
	@echo "wrote results/BENCH_predict.json"

# Regenerate every paper table and figure (plus ablations) into results/.
results:
	$(GO) run ./cmd/experiments -scale paper -ablations -out results

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/odanalysis
	$(GO) run ./examples/mixedmodel
	$(GO) run ./examples/mapmatching
	$(GO) run ./examples/datacleaning
	$(GO) run ./examples/binarytraces
	$(GO) run ./examples/drivingcoach

clean:
	rm -rf experiments-out
	rm -f cpu.pprof
