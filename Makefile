# Common development targets for the taxitrace reproduction.

GO ?= go

.PHONY: all build test vet bench results examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# One bench per paper table/figure plus the ablations.
bench:
	$(GO) test -bench=. -benchmem -run xxx ./...

# Regenerate every paper table and figure (plus ablations) into results/.
results:
	$(GO) run ./cmd/experiments -scale paper -ablations -out results

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/odanalysis
	$(GO) run ./examples/mixedmodel
	$(GO) run ./examples/mapmatching
	$(GO) run ./examples/datacleaning
	$(GO) run ./examples/drivingcoach

clean:
	rm -rf experiments-out
