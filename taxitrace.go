// Package taxitrace reproduces "Revealing reliable information from
// taxi traces: from raw data to information discovery" (Keskinarkaus et
// al.): an end-to-end pipeline that turns raw taxi GPS/OBD traces into
// reliable, map-referenced information about city traffic.
//
// The pipeline stages, in paper order:
//
//  1. Map preparation: a road-network graph is reconstructed from
//     Digiroad-style traffic elements; endpoints shared by three or
//     more elements become junctions, and chains between junctions are
//     merged into single edges (Table 1).
//  2. Data cleaning: route-point ordering corrupted in transit is
//     repaired by sorting on both candidate keys (device id and
//     timestamp) and keeping the ordering with the smaller total trip
//     distance; all properties are realigned monotonically.
//  3. Trip segmentation: day-long engine-on trips are split into
//     customer runs with five time-based stop rules (Table 2).
//  4. Origin-Destination selection: segments are matched against
//     thick-geometry gate roads (T, S, L), filtered by crossing angle
//     and the central area, and classified into transitions (Table 3).
//  5. Map-matching: the incremental algorithm with digital-map driving
//     direction hints, with Dijkstra shortest-path gap filling.
//  6. Attribute fetching: traffic lights, junctions, bus stops and
//     pedestrian crossings are counted along each matched route
//     (Table 4).
//  7. Analysis: 200 m grid aggregation (Table 5, Figs 3-6) and a
//     per-cell random-intercept linear mixed model estimated by REML
//     with BLUP predictions (Figs 7-9), plus weather joins (Fig 10).
//
// The proprietary inputs of the paper (Driveco taxi traces, the
// Digiroad national road database, the FMI road weather feed) are
// replaced by deterministic synthetic substrates that exercise the
// same code paths; see DESIGN.md for the substitution arguments.
//
// Quick start:
//
//	p, err := taxitrace.New(taxitrace.Config{CitySeed: 42})
//	if err != nil { ... }
//	res, err := p.RunContext(ctx) // partial results + joined CarErrors on failure
//	recs := res.Transitions()
//	agg, lmm, err := p.GridAnalysis(recs)
//
// Fleet execution is fault tolerant: a car that fails (or panics) is
// isolated as a typed CarError and reported alongside the other cars'
// results; Config.MaxFailures bounds how much failure the run
// tolerates before aborting, and Pipeline.Stream exposes the per-car
// results incrementally as they complete. The execution surface is
// context-first throughout: RunContext, RunCarContext and
// ProcessContext (the historical ctx-free Run/RunCar/Process wrappers
// have been removed), plus Pipeline.AnalyseSegments for callers that
// segment incrementally, such as the event-time ingest layer
// (internal/ingest).
//
// The experiments subpackage (internal/experiments) regenerates every
// table and figure of the paper; cmd/experiments writes them to disk.
package taxitrace

import (
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/obs"
)

// Config assembles one pipeline; the zero value selects the paper's
// settings with a default synthetic city and fleet.
type Config = core.Config

// Pipeline is a ready-to-run reproduction pipeline.
type Pipeline = core.Pipeline

// Layout selects the point-storage layout for the per-car hot path
// (Config.Layout): columnar struct-of-arrays by default, with the
// row-oriented legacy path available for differential testing.
type Layout = core.Layout

// Layout values.
const (
	LayoutAuto     = core.LayoutAuto
	LayoutColumnar = core.LayoutColumnar
	LayoutLegacy   = core.LayoutLegacy
)

// ParseLayout parses a -layout style flag value ("", "auto",
// "columnar", "legacy").
func ParseLayout(s string) (Layout, error) { return core.ParseLayout(s) }

// Result is the full fleet output of Pipeline.Run.
type Result = core.Result

// CarResult is one car's pipeline output (one Table 3 row).
type CarResult = core.CarResult

// CarError is the typed per-car failure record: which car failed, at
// which stage, after how many attempts, and why.
type CarError = core.CarError

// FleetStream is the live stream of per-car outcomes returned by
// Pipeline.Stream: results arrive as cars complete, failures as typed
// CarError events.
type FleetStream = core.FleetStream

// CarEvent is one streamed per-car outcome.
type CarEvent = core.CarEvent

// ErrBudgetExceeded is reported when more cars failed than
// Config.MaxFailures/MaxFailureFrac allow and the run aborted early
// (the partial Result is still returned).
var ErrBudgetExceeded = core.ErrBudgetExceeded

// TransitionRecord is one accepted OD transition with its matched
// route, fetched attributes, and Table 4 metrics.
type TransitionRecord = core.TransitionRecord

// SpeedPoint pairs a position with a measured speed.
type SpeedPoint = core.SpeedPoint

// LowSpeedKmh is the paper's low-speed threshold (10 km/h).
const LowSpeedKmh = core.LowSpeedKmh

// CheckConfig enables the correctness harness (Config.Check): per-stage
// invariant validation at every pipeline stage boundary, with counting
// and strict (fail-the-car) modes. See internal/check.
type CheckConfig = check.Config

// CheckError is the typed strict-mode invariant failure the runner's
// fault path surfaces; errors.As against a failed car's error recovers
// the individual violations.
type CheckError = check.CheckError

// New builds the synthetic city, road graph, fleet generator and all
// processing stages.
func New(cfg Config) (*Pipeline, error) { return core.NewPipeline(cfg) }

// PointSpeeds extracts every measured point speed from the given
// transitions.
func PointSpeeds(recs []*TransitionRecord) []float64 { return core.PointSpeeds(recs) }

// FailedCars extracts the typed per-car failures from an error
// returned by Pipeline.RunContext/Run, sorted by car number.
func FailedCars(err error) []*CarError { return core.FailedCars(err) }

// TransitionSpeedPoints extracts the positioned speeds of one
// transition for map figures.
func TransitionSpeedPoints(rec *TransitionRecord) []SpeedPoint {
	return core.TransitionSpeedPoints(rec)
}

// Tracer records per-car span trees on a fixed-size lock-free ring
// (Config.Tracer); export with WriteTraceEvent (Perfetto /
// chrome://tracing) or WriteNDJSON. A nil Tracer is a no-op.
type Tracer = obs.Tracer

// TracerConfig sizes a Tracer and sets its deterministic per-car
// sampling fraction.
type TracerConfig = obs.TracerConfig

// NewTracer builds a span recorder; see obs.NewTracer.
func NewTracer(cfg TracerConfig) *Tracer { return obs.NewTracer(cfg) }

// Lineage is the run's drop-reason ledger (Config.Lineage): per stage,
// in = out + Σ dropped-by-reason, with per-car drop attribution. A nil
// Lineage is a no-op.
type Lineage = obs.Lineage

// LineageSnapshot is the queryable per-run lineage table.
type LineageSnapshot = obs.LineageSnapshot

// DropReason is a typed cause for discarding a unit of data at a
// pipeline stage (obs.DropSpike, obs.DropTooLong, ...).
type DropReason = obs.DropReason

// NewLineage builds a ledger, mirroring totals into reg when non-nil.
func NewLineage(reg *obs.Registry) *Lineage { return obs.NewLineage(reg) }
