package weather_test

import (
	"fmt"
	"time"

	"repro/internal/weather"
)

func ExampleSeasonOf() {
	d := time.Date(2013, time.January, 20, 12, 0, 0, 0, time.UTC)
	fmt.Println(weather.SeasonOf(d))
	fmt.Println(weather.SeasonOf(d.AddDate(0, 6, 0)))
	// Output:
	// winter
	// summer
}

func ExampleClassifyTemperature() {
	for _, c := range []float64{-15, -3, 4, 18} {
		fmt.Println(weather.ClassifyTemperature(c))
	}
	// Output:
	// <-10C
	// -10..0C
	// 0..10C
	// >10C
}
