package weather

import (
	"testing"
	"time"
)

func TestSeasonOf(t *testing.T) {
	cases := []struct {
		m    time.Month
		want Season
	}{
		{time.January, Winter}, {time.February, Winter}, {time.December, Winter},
		{time.March, Spring}, {time.May, Spring},
		{time.June, Summer}, {time.August, Summer},
		{time.September, Autumn}, {time.November, Autumn},
	}
	for _, c := range cases {
		d := time.Date(2013, c.m, 15, 12, 0, 0, 0, time.UTC)
		if got := SeasonOf(d); got != c.want {
			t.Errorf("SeasonOf(%v) = %v, want %v", c.m, got, c.want)
		}
	}
}

func TestSeasonStrings(t *testing.T) {
	if Winter.String() != "winter" || Spring.String() != "spring" ||
		Summer.String() != "summer" || Autumn.String() != "autumn" {
		t.Fatal("Season.String broken")
	}
	if Season(99).String() == "" {
		t.Fatal("unknown season must stringify")
	}
}

func TestClassifyTemperature(t *testing.T) {
	cases := []struct {
		c    float64
		want TemperatureClass
	}{
		{-25, ClassBelowMinus10}, {-10.001, ClassBelowMinus10},
		{-10, ClassMinus10To0}, {-0.5, ClassMinus10To0},
		{0, Class0To10}, {9.9, Class0To10},
		{10, ClassAbove10}, {25, ClassAbove10},
	}
	for _, c := range cases {
		if got := ClassifyTemperature(c.c); got != c.want {
			t.Errorf("ClassifyTemperature(%f) = %v, want %v", c.c, got, c.want)
		}
	}
	if ClassBelowMinus10.String() != "<-10C" || ClassAbove10.String() != ">10C" {
		t.Fatal("TemperatureClass.String broken")
	}
}

func TestModelDeterministic(t *testing.T) {
	m := DefaultModel(1)
	d := time.Date(2013, 1, 20, 8, 0, 0, 0, time.UTC)
	if m.TemperatureAt(d) != m.TemperatureAt(d) {
		t.Fatal("model not deterministic")
	}
	m2 := DefaultModel(2)
	diff := 0
	for day := 0; day < 60; day++ {
		dd := d.AddDate(0, 0, day)
		if m.TemperatureAt(dd) != m2.TemperatureAt(dd) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds give identical series")
	}
}

func TestModelSeasonalShape(t *testing.T) {
	m := DefaultModel(3)
	var winterSum, summerSum float64
	n := 0
	for day := 0; day < 28; day++ {
		winterSum += m.TemperatureAt(time.Date(2013, 1, 1+day, 12, 0, 0, 0, time.UTC))
		summerSum += m.TemperatureAt(time.Date(2013, 7, 1+day, 12, 0, 0, 0, time.UTC))
		n++
	}
	winter := winterSum / float64(n)
	summer := summerSum / float64(n)
	if winter > -3 || summer < 10 {
		t.Fatalf("implausible Oulu climate: winter %f, summer %f", winter, summer)
	}
	if summer-winter < 15 {
		t.Fatalf("seasonal swing too small: %f", summer-winter)
	}
}

func TestModelClassCoverage(t *testing.T) {
	// Across a year, all four temperature classes should occur at 65N.
	m := DefaultModel(4)
	seen := map[TemperatureClass]bool{}
	start := time.Date(2012, 10, 1, 12, 0, 0, 0, time.UTC)
	for day := 0; day < 365; day++ {
		seen[m.ClassAt(start.AddDate(0, 0, day))] = true
	}
	for c := TemperatureClass(0); c < NumTemperatureClasses; c++ {
		if !seen[c] {
			t.Fatalf("class %v never occurs", c)
		}
	}
}

func TestTemperatureClassStrings(t *testing.T) {
	if ClassMinus10To0.String() != "-10..0C" || Class0To10.String() != "0..10C" {
		t.Fatal("mid-class strings broken")
	}
	if TemperatureClass(99).String() == "" || Season(99).String() == "" {
		t.Fatal("unknown values must stringify")
	}
}
