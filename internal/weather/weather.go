// Package weather provides the seasonal and road-weather substrate the
// paper sources from the FMI road weather model: season classification
// for northern Finland and a deterministic daily temperature model used
// to assign the temperature classes of Fig 10.
package weather

import (
	"fmt"
	"math"
	"time"
)

// Season is a meteorological season.
type Season int

// Seasons (meteorological: winter is Dec-Feb, and so on).
const (
	Winter Season = iota
	Spring
	Summer
	Autumn
)

// String returns the season name.
func (s Season) String() string {
	switch s {
	case Winter:
		return "winter"
	case Spring:
		return "spring"
	case Summer:
		return "summer"
	case Autumn:
		return "autumn"
	default:
		return fmt.Sprintf("Season(%d)", int(s))
	}
}

// SeasonOf classifies a timestamp into a meteorological season.
func SeasonOf(t time.Time) Season {
	switch t.Month() {
	case time.December, time.January, time.February:
		return Winter
	case time.March, time.April, time.May:
		return Spring
	case time.June, time.July, time.August:
		return Summer
	default:
		return Autumn
	}
}

// TemperatureClass buckets air temperature the way Fig 10 does.
type TemperatureClass int

// Temperature classes, coldest first.
const (
	ClassBelowMinus10 TemperatureClass = iota
	ClassMinus10To0
	Class0To10
	ClassAbove10
)

// NumTemperatureClasses is the number of buckets.
const NumTemperatureClasses = 4

// String returns the bucket label as printed in the Fig 10 harness.
func (c TemperatureClass) String() string {
	switch c {
	case ClassBelowMinus10:
		return "<-10C"
	case ClassMinus10To0:
		return "-10..0C"
	case Class0To10:
		return "0..10C"
	case ClassAbove10:
		return ">10C"
	default:
		return fmt.Sprintf("TemperatureClass(%d)", int(c))
	}
}

// ClassifyTemperature buckets a Celsius temperature.
func ClassifyTemperature(celsius float64) TemperatureClass {
	switch {
	case celsius < -10:
		return ClassBelowMinus10
	case celsius < 0:
		return ClassMinus10To0
	case celsius < 10:
		return Class0To10
	default:
		return ClassAbove10
	}
}

// Model is a deterministic daily temperature model for 65°N: an annual
// sinusoid with day-specific pseudo-random deviation. It stands in for
// the FMI road weather model feed.
type Model struct {
	// MeanAnnualC is the annual mean temperature (Oulu: ~2.7 °C).
	MeanAnnualC float64
	// AmplitudeC is the summer-winter half swing (Oulu: ~14 °C).
	AmplitudeC float64
	// NoiseC scales day-to-day deviation (typically 4-6 °C).
	NoiseC float64
	// Seed decorrelates instances.
	Seed int64
}

// DefaultModel returns a model tuned to Oulu's climate.
func DefaultModel(seed int64) *Model {
	return &Model{MeanAnnualC: 2.7, AmplitudeC: 14, NoiseC: 5, Seed: seed}
}

// TemperatureAt returns the modelled air temperature for the given
// time. Deterministic: the same time always yields the same value.
func (m *Model) TemperatureAt(t time.Time) float64 {
	doy := float64(t.YearDay())
	// Coldest around late January (day ~25), warmest late July.
	seasonal := m.MeanAnnualC - m.AmplitudeC*math.Cos(2*math.Pi*(doy-25)/365.25)
	// Deterministic per-day deviation from a hash of the date.
	h := dateHash(t, m.Seed)
	dev := (float64(h%2000)/1000 - 1) * m.NoiseC
	return seasonal + dev
}

// ClassAt returns the temperature class for the given time.
func (m *Model) ClassAt(t time.Time) TemperatureClass {
	return ClassifyTemperature(m.TemperatureAt(t))
}

// dateHash mixes the date and seed with a splitmix64-style finaliser.
func dateHash(t time.Time, seed int64) uint64 {
	y, mo, d := t.Date()
	x := uint64(y)*10000 + uint64(mo)*100 + uint64(d) + uint64(seed)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
