package runner

// FaultInjector forces failures into a fleet run for testing: the
// pipeline calls Inject at the entry of every per-car stage and fails
// that stage with whatever error comes back. An injector may also
// panic (exercising the runner's panic isolation) or sleep (simulating
// a slow car under cancellation). Production runs leave it nil.
type FaultInjector interface {
	// Inject is called before stage work runs for car; a non-nil return
	// fails the stage with that error. Wrap the return in Transient to
	// make the runner retry the car.
	Inject(car int, stage string) error
}

// FaultFunc adapts a plain function to FaultInjector.
type FaultFunc func(car int, stage string) error

// Inject implements FaultInjector.
func (f FaultFunc) Inject(car int, stage string) error { return f(car, stage) }

// Inject is the nil-safe call-site helper: instrumented stages call it
// unconditionally and pay nothing when no injector is configured.
func Inject(fi FaultInjector, car int, stage string) error {
	if fi == nil {
		return nil
	}
	return fi.Inject(car, stage)
}
