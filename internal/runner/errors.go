package runner

import (
	"context"
	"errors"
	"fmt"
)

// ErrBudgetExceeded is reported by Stream.Err when more cars failed
// than the configured error budget allows; the run aborts early but
// every CarResult produced before the abort is still delivered.
var ErrBudgetExceeded = errors.New("runner: failure budget exceeded")

// CarError is the typed per-car failure record: which car failed, at
// which pipeline stage (when the task reported one via StageError),
// after how many attempts, and the underlying cause. It supports
// errors.Is/As against the wrapped cause.
type CarError struct {
	Car      int
	Stage    string // "" when the failing task did not name a stage
	Attempts int
	Err      error
}

// Error renders "runner: car 7 failed at mapmatch after 3 attempts: …".
func (e *CarError) Error() string {
	stage := ""
	if e.Stage != "" {
		stage = " at " + e.Stage
	}
	attempts := ""
	if e.Attempts > 1 {
		attempts = fmt.Sprintf(" after %d attempts", e.Attempts)
	}
	return fmt.Sprintf("runner: car %d failed%s%s: %v", e.Car, stage, attempts, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *CarError) Unwrap() error { return e.Err }

// StageError attributes a failure to a named pipeline stage. Tasks wrap
// their stage-level errors in it so the runner (and the CarError it
// builds) can report where in the funnel a car went bad.
type StageError struct {
	Stage string
	Err   error
}

func (e *StageError) Error() string { return e.Stage + ": " + e.Err.Error() }

// Unwrap exposes the cause to errors.Is/As.
func (e *StageError) Unwrap() error { return e.Err }

// PanicError captures a panic raised by a car task. The runner turns
// panics into ordinary permanent failures so one poisoned car cannot
// take down the whole fleet run.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: task panicked: %v", e.Value)
}

// transientError marks its cause as retryable.
type transientError struct{ err error }

func (t *transientError) Error() string   { return t.err.Error() }
func (t *transientError) Unwrap() error   { return t.err }
func (t *transientError) Retryable() bool { return true }

// Transient marks err as retryable: the runner will re-run the car
// (up to Config.MaxAttempts, with deterministic backoff) instead of
// failing it outright. Pipeline stage errors are permanent unless
// marked — a deterministic pipeline reproduces the same failure on
// every attempt, so only genuinely transient causes (flaky ingest I/O,
// injected faults) should carry the mark.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsRetryable reports whether any error in err's tree implements
// `Retryable() bool` and returns true. Context cancellation and
// deadline errors are never retryable.
func IsRetryable(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if r, ok := err.(interface{ Retryable() bool }); ok {
		return r.Retryable()
	}
	switch x := err.(type) {
	case interface{ Unwrap() error }:
		return IsRetryable(x.Unwrap())
	case interface{ Unwrap() []error }:
		for _, e := range x.Unwrap() {
			if IsRetryable(e) {
				return true
			}
		}
	}
	return false
}

// CarErrors collects every *CarError in err's tree (err is typically
// the errors.Join-ed value returned by a batch collector), sorted by
// car number so reports are deterministic.
func CarErrors(err error) []*CarError {
	var out []*CarError
	collectCarErrors(err, &out)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].Car > out[j].Car; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

func collectCarErrors(err error, out *[]*CarError) {
	if err == nil {
		return
	}
	if ce, ok := err.(*CarError); ok {
		*out = append(*out, ce)
		return
	}
	switch x := err.(type) {
	case interface{ Unwrap() error }:
		collectCarErrors(x.Unwrap(), out)
	case interface{ Unwrap() []error }:
		for _, e := range x.Unwrap() {
			collectCarErrors(e, out)
		}
	}
}
