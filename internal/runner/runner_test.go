package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// collectCars drains a stream and splits outcomes into successful car
// ids and failures.
func collectCars[T any](s *Stream[T]) (ok []int, failed []*CarError, err error) {
	for ev := range s.Events() {
		if ev.Err != nil {
			failed = append(failed, ev.Err)
		} else {
			ok = append(ok, ev.Car)
		}
	}
	return ok, failed, s.Err()
}

func TestRunAllSucceed(t *testing.T) {
	const n = 25
	var inflight, peak atomic.Int64
	cfg := Config{Workers: 4}
	st := Run(context.Background(), cfg, n, func(ctx context.Context, car int) (int, error) {
		cur := inflight.Add(1)
		defer inflight.Add(-1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		return car * car, nil
	})
	var cars []int
	for ev := range st.Events() {
		if ev.Err != nil {
			t.Fatalf("unexpected failure: %v", ev.Err)
		}
		if ev.Result != ev.Car*ev.Car {
			t.Fatalf("car %d: result %d", ev.Car, ev.Result)
		}
		cars = append(cars, ev.Car)
	}
	if err := st.Err(); err != nil {
		t.Fatalf("Err() = %v", err)
	}
	sort.Ints(cars)
	if len(cars) != n || cars[0] != 1 || cars[n-1] != n {
		t.Fatalf("got %d cars %v", len(cars), cars)
	}
	if p := peak.Load(); p > 4 {
		t.Fatalf("worker bound violated: peak inflight %d > 4", p)
	}
}

func TestTransientRetriesWithDeterministicBackoff(t *testing.T) {
	reg := obs.NewRegistry()
	var mu sync.Mutex
	var slept []time.Duration
	cfg := Config{
		Workers:     1,
		MaxAttempts: 4,
		Backoff:     10 * time.Millisecond,
		Metrics:     reg,
		Sleep: func(ctx context.Context, d time.Duration) error {
			mu.Lock()
			slept = append(slept, d)
			mu.Unlock()
			return nil
		},
	}
	fails := map[int]int{1: 2} // car 1 fails twice, then succeeds
	st := Run(context.Background(), cfg, 2, func(ctx context.Context, car int) (string, error) {
		if fails[car] > 0 {
			fails[car]--
			return "", Transient(fmt.Errorf("flaky ingest for car %d", car))
		}
		return "ok", nil
	})
	ok, failed, err := collectCars(st)
	if err != nil || len(failed) != 0 || len(ok) != 2 {
		t.Fatalf("ok=%v failed=%v err=%v", ok, failed, err)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("backoff %d = %v, want %v", i, slept[i], want[i])
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counters["runner_cars_retried"]; got != 2 {
		t.Fatalf("runner_cars_retried = %d, want 2", got)
	}
	if got := snap.Counters["runner_cars_ok"]; got != 2 {
		t.Fatalf("runner_cars_ok = %d, want 2", got)
	}
}

func TestPermanentErrorNotRetried(t *testing.T) {
	var attempts atomic.Int64
	cfg := Config{Workers: 2, MaxAttempts: 5}
	st := Run(context.Background(), cfg, 1, func(ctx context.Context, car int) (int, error) {
		attempts.Add(1)
		return 0, &StageError{Stage: "mapmatch", Err: errors.New("boom")}
	})
	_, failed, err := collectCars(st)
	if err != nil {
		t.Fatalf("Err() = %v (isolated failures must not fail the run)", err)
	}
	if attempts.Load() != 1 {
		t.Fatalf("permanent error retried: %d attempts", attempts.Load())
	}
	if len(failed) != 1 || failed[0].Car != 1 || failed[0].Stage != "mapmatch" {
		t.Fatalf("failed = %+v", failed)
	}
}

func TestPanicIsolation(t *testing.T) {
	cfg := Config{Workers: 2}
	st := Run(context.Background(), cfg, 5, func(ctx context.Context, car int) (int, error) {
		if car == 3 {
			panic("poisoned trace for car 3")
		}
		return car, nil
	})
	ok, failed, err := collectCars(st)
	if err != nil {
		t.Fatalf("Err() = %v", err)
	}
	if len(ok) != 4 {
		t.Fatalf("want 4 survivors, got %v", ok)
	}
	if len(failed) != 1 || failed[0].Car != 3 {
		t.Fatalf("failed = %+v", failed)
	}
	var pe *PanicError
	if !errors.As(failed[0], &pe) {
		t.Fatalf("want PanicError, got %v", failed[0])
	}
	if IsRetryable(failed[0]) {
		t.Fatal("panics must be permanent")
	}
}

func TestBudgetAbortKeepsPartialResults(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := Config{Workers: 1, MaxFailures: 2, Metrics: reg}
	const n = 50
	st := Run(context.Background(), cfg, n, func(ctx context.Context, car int) (int, error) {
		if car%2 == 0 {
			return 0, errors.New("bad car")
		}
		return car, nil
	})
	ok, failed, err := collectCars(st)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("Err() = %v, want ErrBudgetExceeded", err)
	}
	if len(failed) != 3 { // budget 2 tolerated + the one that blew it
		t.Fatalf("failed = %d, want 3", len(failed))
	}
	if len(ok) == 0 || len(ok)+len(failed) >= n {
		t.Fatalf("abort was not early: ok=%d failed=%d", len(ok), len(failed))
	}
	snap := reg.Snapshot()
	if got := snap.Counters["runner_cars_skipped"]; got == 0 {
		t.Fatal("expected skipped cars after the abort")
	}
	if got := snap.Counters["runner_cars_failed"]; got != 3 {
		t.Fatalf("runner_cars_failed = %d, want 3", got)
	}
}

func TestZeroToleranceBudget(t *testing.T) {
	cfg := Config{Workers: 1, MaxFailures: -1}
	st := Run(context.Background(), cfg, 10, func(ctx context.Context, car int) (int, error) {
		if car == 2 {
			return 0, errors.New("bad")
		}
		return car, nil
	})
	_, failed, err := collectCars(st)
	if !errors.Is(err, ErrBudgetExceeded) || len(failed) != 1 {
		t.Fatalf("err=%v failed=%d", err, len(failed))
	}
}

func TestFractionBudget(t *testing.T) {
	if got := (Config{MaxFailureFrac: 0.25}).budget(40); got != 10 {
		t.Fatalf("frac budget = %d, want 10", got)
	}
	if got := (Config{MaxFailures: 3, MaxFailureFrac: 0.5}).budget(40); got != 3 {
		t.Fatalf("stricter-wins budget = %d, want 3", got)
	}
	if got := (Config{}).budget(40); got != -1 {
		t.Fatalf("default budget = %d, want unlimited (-1)", got)
	}
}

// TestCancelDrainsPromptly cancels mid-run and asserts the stream
// closes within a fraction of one task latency, queued cars are
// abandoned, and no worker goroutines are left behind.
func TestCancelDrainsPromptly(t *testing.T) {
	reg := obs.NewRegistry()
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan int, 64)
	const taskLatency = 200 * time.Millisecond
	cfg := Config{Workers: 2, Metrics: reg}
	st := Run(ctx, cfg, 40, func(ctx context.Context, car int) (int, error) {
		started <- car
		select {
		case <-time.After(taskLatency):
			return car, nil
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	})
	<-started // at least one car is in flight
	cancel()
	t0 := time.Now()
	ok, failed, err := collectCars(st)
	drained := time.Since(t0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Err() = %v, want context.Canceled", err)
	}
	if drained > taskLatency {
		t.Fatalf("drain took %v, want < one task latency (%v)", drained, taskLatency)
	}
	// Cancellation-abandoned cars are neither results nor car faults.
	if len(failed) != 0 {
		t.Fatalf("cancelled cars reported as failures: %+v", failed)
	}
	if len(ok) >= 40 {
		t.Fatalf("cancellation did not abandon queued cars: %d results", len(ok))
	}
	// goleak-style check: all runner goroutines must exit.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Fatalf("goroutine leak: %d before, %d after drain", before, g)
	}
	snap := reg.Snapshot()
	if h := snap.Histograms["runner_drain_seconds"]; h.Count != 1 {
		t.Fatalf("runner_drain_seconds count = %d, want 1", h.Count)
	}
	if g := snap.Gauges["runner_inflight"]; g != 0 {
		t.Fatalf("runner_inflight = %v after drain", g)
	}
}

func TestRetryableClassification(t *testing.T) {
	base := errors.New("x")
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{base, false},
		{Transient(base), true},
		{fmt.Errorf("wrap: %w", Transient(base)), true},
		{&StageError{Stage: "clean", Err: Transient(base)}, true},
		{&CarError{Car: 1, Err: Transient(base)}, true},
		{Transient(context.Canceled), false},
		{context.DeadlineExceeded, false},
		{&PanicError{Value: "v"}, false},
	}
	for i, c := range cases {
		if got := IsRetryable(c.err); got != c.want {
			t.Errorf("case %d (%v): IsRetryable = %v, want %v", i, c.err, got, c.want)
		}
	}
}

func TestCarErrorsCollection(t *testing.T) {
	e1 := &CarError{Car: 3, Stage: "segment", Err: errors.New("a")}
	e2 := &CarError{Car: 1, Stage: "clean", Err: errors.New("b")}
	joined := errors.Join(e1, e2, fmt.Errorf("run aborted: %w", ErrBudgetExceeded))
	got := CarErrors(joined)
	if len(got) != 2 || got[0].Car != 1 || got[1].Car != 3 {
		t.Fatalf("CarErrors = %+v", got)
	}
	if !errors.Is(joined, ErrBudgetExceeded) {
		t.Fatal("joined error lost the sentinel")
	}
}

func TestTeeObservesEveryEventBeforeDelivery(t *testing.T) {
	const n = 20
	bad := errors.New("bad car")
	st := Run(context.Background(), Config{Workers: 4}, n, func(ctx context.Context, car int) (int, error) {
		if car%5 == 0 {
			return 0, bad
		}
		return car * 10, nil
	})
	var seen []int
	teed := Tee(st, func(ev Event[int]) { seen = append(seen, ev.Car) })
	ok, failed, err := collectCars(teed)
	if err != nil {
		t.Fatalf("run error: %v", err)
	}
	if len(ok) != 16 || len(failed) != 4 {
		t.Fatalf("ok/failed = %d/%d", len(ok), len(failed))
	}
	// fn runs on the forwarding goroutine, strictly before delivery, so
	// by the time the stream closes it has seen every event exactly once.
	if len(seen) != n {
		t.Fatalf("observer saw %d events, want %d", len(seen), n)
	}
	counts := map[int]int{}
	for _, car := range seen {
		counts[car]++
	}
	for car := 1; car <= n; car++ {
		if counts[car] != 1 {
			t.Fatalf("car %d observed %d times", car, counts[car])
		}
	}
}

func TestTeePropagatesRunError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st := Run(ctx, Config{Workers: 2}, 10, func(ctx context.Context, car int) (int, error) {
		return car, nil
	})
	teed := Tee(st, func(Event[int]) {})
	for range teed.Events() {
	}
	if !errors.Is(teed.Err(), context.Canceled) {
		t.Fatalf("teed Err = %v, want context.Canceled", teed.Err())
	}
}
