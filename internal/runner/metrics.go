package runner

import "repro/internal/obs"

// metrics holds the runner's pre-resolved obs handles. All handles are
// nil (no-ops) when the run is not instrumented.
type metrics struct {
	// runner_cars_ok / runner_cars_failed count terminal per-car
	// outcomes; runner_cars_retried counts retry attempts (a car that
	// succeeds on attempt 3 contributes 2).
	ok, failed, retried *obs.Counter
	// runner_cars_skipped counts cars abandoned by an abort or
	// cancellation before they produced any outcome.
	skipped *obs.Counter
	// runner_inflight is the number of cars being worked on right now.
	inflight *obs.Gauge
	// runner_drain_seconds measures cancellation responsiveness: the
	// time from the run's context being cancelled (or the budget abort)
	// to the last worker going idle.
	drain *obs.Histogram
}

func newMetrics(reg *obs.Registry) metrics {
	return metrics{
		ok:       reg.Counter("runner_cars_ok"),
		failed:   reg.Counter("runner_cars_failed"),
		retried:  reg.Counter("runner_cars_retried"),
		skipped:  reg.Counter("runner_cars_skipped"),
		inflight: reg.Gauge("runner_inflight"),
		drain:    reg.Histogram("runner_drain_seconds"),
	}
}
