// Package runner is the fault-tolerant fleet execution engine: a
// bounded worker pool that runs one task per car and streams results
// back as cars complete, instead of buffering the whole fleet and
// aborting on the first bad vehicle.
//
// The paper's premise is extracting reliable information from
// unreliable per-vehicle data, and real floating-car feeds routinely
// contain vehicles that produce garbage. The runner therefore treats
// per-car failure as data, not as a run-level event:
//
//   - a failed (or panicking) car is captured as a typed *CarError —
//     car, stage, attempts, cause — and reported alongside the other
//     cars' results instead of poisoning the run;
//   - errors marked Transient are retried up to Config.MaxAttempts
//     with deterministic backoff;
//   - a configurable error budget (Config.MaxFailures, count or
//     fraction) bounds how much failure is tolerable before the run
//     aborts early — still delivering every result produced so far;
//   - cancelling the context drains the pool promptly: queued cars are
//     abandoned, in-flight cars see the cancelled context, and the
//     drain time is recorded in runner_drain_seconds.
//
// Typical streaming use:
//
//	st := runner.Run(ctx, cfg, fleet.Cars(), task)
//	for ev := range st.Events() {
//	    if ev.Err != nil { … } else { use(ev.Result) }
//	}
//	err := st.Err() // nil, ErrBudgetExceeded, or ctx error
//
// Consumers must drain Events until it closes; Collect does the loop
// for callers that want the batch shape back.
package runner

import (
	"context"
	"errors"
	"log/slog"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Task executes one car and returns its result. The context is the
// run's context: tasks that can block should honor its cancellation.
type Task[T any] func(ctx context.Context, car int) (T, error)

// Config tunes a fleet run. The zero value selects the defaults: one
// worker per CPU, no retries, unlimited failure budget, no
// instrumentation.
type Config struct {
	// Workers bounds the number of cars processed concurrently
	// (default GOMAXPROCS). The pool owns exactly this many goroutines;
	// a 10k-car fleet never spawns 10k goroutines.
	Workers int

	// MaxFailures is the error budget as an absolute count: the run
	// tolerates up to MaxFailures failed cars and aborts when one more
	// fails. 0 means unlimited (every failure is isolated and
	// reported); negative means zero tolerance (abort on the first
	// failure).
	MaxFailures int

	// MaxFailureFrac expresses the budget as a fraction of the fleet
	// (0 disables): a run over n cars tolerates floor(frac*n) failures.
	// When both MaxFailures and MaxFailureFrac are set the stricter
	// budget wins.
	MaxFailureFrac float64

	// MaxAttempts is the per-car attempt limit for errors marked
	// Transient (default 1, i.e. no retries). Permanent errors are
	// never retried.
	MaxAttempts int

	// Backoff is the base delay before attempt 2; subsequent attempts
	// double it (deterministic exponential backoff, no jitter — runs
	// must be reproducible). Default 0: immediate retry.
	Backoff time.Duration

	// Metrics instruments the run (runner_cars_ok/failed/retried/
	// skipped, runner_inflight, runner_drain_seconds); nil disables.
	Metrics *obs.Registry

	// Log receives structured run-event lines (retries at Warn, the
	// run summary at Info); nil disables logging.
	Log *slog.Logger

	// Sleep implements the retry backoff wait; tests inject a recorder
	// here. Nil selects a timer-based wait that honors ctx.
	Sleep func(ctx context.Context, d time.Duration) error
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 1
	}
	if c.Sleep == nil {
		c.Sleep = sleepCtx
	}
	return c
}

// Budget resolves the effective failure budget for an n-car fleet: the
// number of failures tolerated before the run aborts, or -1 for
// unlimited. Exported so other fleet-shaped loops — notably the
// cluster coordinator's worker-loss accounting — can mirror the
// runner's MaxFailures/MaxFailureFrac semantics exactly instead of
// re-implementing them.
func (c Config) Budget(n int) int { return c.budget(n) }

// budget resolves the effective failure budget for an n-car fleet:
// the number of failures tolerated before abort, or -1 for unlimited.
func (c Config) budget(n int) int {
	b := -1
	if c.MaxFailures > 0 {
		b = c.MaxFailures
	} else if c.MaxFailures < 0 {
		b = 0
	}
	if c.MaxFailureFrac > 0 {
		fb := int(c.MaxFailureFrac * float64(n))
		if b < 0 || fb < b {
			b = fb
		}
	}
	return b
}

// sleepCtx waits d or until ctx is cancelled.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Event is one car's terminal outcome. Exactly one of Result (Err ==
// nil) or Err is meaningful.
type Event[T any] struct {
	Car      int
	Attempts int
	Result   T
	Err      *CarError
}

// Stream is a live fleet run. Events delivers per-car outcomes as cars
// complete (order is completion order, not car order); it closes when
// the run ends. Consumers must drain it.
type Stream[T any] struct {
	events chan Event[T]
	cancel context.CancelFunc
	done   chan struct{}
	err    error // set before done closes
}

// Events returns the outcome channel. It closes after the last worker
// exits; Err is valid from then on.
func (s *Stream[T]) Events() <-chan Event[T] { return s.events }

// Err blocks until the run ends and returns the run-level error: nil
// on a completed run (even one with isolated car failures — those
// arrive as events), ErrBudgetExceeded after an abort, or the
// context's error after cancellation.
func (s *Stream[T]) Err() error {
	<-s.done
	return s.err
}

// Cancel aborts the run: queued cars are abandoned and in-flight cars
// see a cancelled context. Events already produced remain deliverable;
// the stream still closes normally.
func (s *Stream[T]) Cancel() { s.cancel() }

// Tee subscribes fn to a stream: the returned stream delivers exactly
// the events of s, after fn has seen each one. This is the hook live
// consumers (e.g. an aggregation sink feeding a query API) use to
// observe per-car outcomes without taking over the batch collection
// path — fn runs on the tee's forwarding goroutine, so a slow fn
// backpressures the stream instead of racing it. Err and Cancel proxy
// to the source run.
func Tee[T any](s *Stream[T], fn func(Event[T])) *Stream[T] {
	out := &Stream[T]{
		events: make(chan Event[T]),
		cancel: s.cancel,
		done:   make(chan struct{}),
	}
	go func() {
		for ev := range s.events {
			fn(ev)
			out.events <- ev
		}
		out.err = s.Err() // s.done is closed once s.events closes
		close(out.events)
		close(out.done)
	}()
	return out
}

// Collect drains the stream into the batch shape: all events in
// completion order plus the run-level error.
func Collect[T any](s *Stream[T]) ([]Event[T], error) {
	var out []Event[T]
	for ev := range s.Events() {
		out = append(out, ev)
	}
	return out, s.Err()
}

// Run starts a fleet run over cars 1..n and returns immediately with
// the live stream. Workers acquire cars from a queue (never more than
// Config.Workers goroutines), run each with retry/panic isolation, and
// stream outcomes as they complete.
func Run[T any](ctx context.Context, cfg Config, n int, task Task[T]) *Stream[T] {
	return run(ctx, cfg, n, func(i int) int { return i + 1 }, task)
}

// RunList is Run over an explicit car list instead of the dense range
// 1..n — the shape a cluster worker needs, where a shard owns an
// arbitrary subset of the fleet (hash(car) mod N). Semantics are
// identical: same pool, same retries, same error budget (resolved
// against len(cars)).
func RunList[T any](ctx context.Context, cfg Config, cars []int, task Task[T]) *Stream[T] {
	return run(ctx, cfg, len(cars), func(i int) int { return cars[i] }, task)
}

// run is the shared engine: n jobs, with carAt mapping job index
// (0-based) to car id.
func run[T any](ctx context.Context, cfg Config, n int, carAt func(int) int, task Task[T]) *Stream[T] {
	cfg = cfg.withDefaults()
	met := newMetrics(cfg.Metrics)
	runCtx, cancel := context.WithCancel(ctx)
	s := &Stream[T]{
		events: make(chan Event[T]),
		cancel: cancel,
		done:   make(chan struct{}),
	}
	budget := cfg.budget(n)

	var (
		okCount     atomic.Int64
		failCount   atomic.Int64
		budgetBlown atomic.Bool
		cancelledAt atomic.Int64 // unix nanos of the first cancellation, for the drain histogram
	)
	markCancelled := func() {
		cancelledAt.CompareAndSwap(0, time.Now().UnixNano())
	}
	go func() {
		<-runCtx.Done()
		markCancelled()
	}()

	jobs := make(chan int)
	go func() {
		defer close(jobs)
		for i := 0; i < n; i++ {
			select {
			case jobs <- carAt(i):
			case <-runCtx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for car := range jobs {
				if runCtx.Err() != nil {
					return
				}
				met.inflight.Add(1)
				ev := runCar(runCtx, cfg, met, car, task)
				met.inflight.Add(-1)
				if ev.Err != nil && runCtx.Err() != nil && contextual(ev.Err.Err) {
					// The run was cancelled out from under this car; its
					// context error is abandonment, not a car fault.
					continue
				}
				if ev.Err != nil {
					if n := failCount.Add(1); budget >= 0 && n > int64(budget) {
						budgetBlown.Store(true)
						markCancelled()
						cancel()
					}
					met.failed.Inc()
				} else {
					okCount.Add(1)
					met.ok.Inc()
				}
				// Delivery is blocking by contract: consumers drain Events
				// until close, even after cancelling, which is exactly what
				// keeps the stream's memory bounded at Workers in-flight
				// events with no timer games on the drain path.
				s.events <- ev
			}
		}()
	}

	go func() {
		wg.Wait()
		if t0 := cancelledAt.Load(); t0 != 0 {
			met.drain.Observe(time.Since(time.Unix(0, t0)).Seconds())
		}
		if skipped := int64(n) - okCount.Load() - failCount.Load(); skipped > 0 {
			met.skipped.Add(uint64(skipped))
		}
		switch {
		case budgetBlown.Load():
			s.err = ErrBudgetExceeded
		case ctx.Err() != nil:
			s.err = ctx.Err()
		}
		if cfg.Log != nil {
			attrs := []any{
				slog.Int("cars", n),
				slog.Int64("ok", okCount.Load()),
				slog.Int64("failed", failCount.Load()),
				slog.Int64("skipped", int64(n)-okCount.Load()-failCount.Load()),
			}
			if s.err != nil {
				attrs = append(attrs, slog.String("error", s.err.Error()))
			}
			cfg.Log.Info("fleet run finished", attrs...)
		}
		close(s.events)
		close(s.done)
		cancel()
	}()
	return s
}

// runCar executes one car with panic isolation and Transient retries.
// Each attempt runs under a context carrying its attempt number (see
// AttemptOf), so tasks can scope per-attempt observability — mark
// retried attempts retry=true in traces, commit lineage only on the
// final successful attempt — without the runner leaking into their
// signatures.
func runCar[T any](ctx context.Context, cfg Config, met metrics, car int, task Task[T]) Event[T] {
	var lastErr error
	attempts := 0
	for attempt := 1; attempt <= cfg.MaxAttempts; attempt++ {
		if attempt > 1 {
			met.retried.Inc()
			if cfg.Log != nil {
				cfg.Log.Warn("retrying car",
					slog.Int("car", car),
					slog.Int("attempt", attempt),
					slog.String("cause", lastErr.Error()))
			}
			if err := cfg.Sleep(ctx, backoff(cfg.Backoff, attempt)); err != nil {
				lastErr = err
				attempts = attempt - 1
				break
			}
		}
		attempts = attempt
		res, err := runAttempt(withAttempt(ctx, attempt), car, task)
		if err == nil {
			return Event[T]{Car: car, Attempts: attempts, Result: res}
		}
		lastErr = err
		if !IsRetryable(err) || ctx.Err() != nil {
			break
		}
	}
	return Event[T]{Car: car, Attempts: attempts, Err: newCarError(car, attempts, lastErr)}
}

type attemptCtxKey struct{}

// withAttempt stamps the per-attempt context with its 1-based attempt
// number.
func withAttempt(ctx context.Context, attempt int) context.Context {
	return context.WithValue(ctx, attemptCtxKey{}, attempt)
}

// AttemptOf returns the 1-based attempt number the runner stamped on a
// task's context, or 0 when the task is not running under the runner.
// Attempt numbers above 1 identify retries.
func AttemptOf(ctx context.Context) int {
	att, _ := ctx.Value(attemptCtxKey{}).(int)
	return att
}

// runAttempt runs the task once, converting a panic into a permanent
// PanicError.
func runAttempt[T any](ctx context.Context, car int, task Task[T]) (res T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return task(ctx, car)
}

// backoff is the deterministic pre-attempt delay: base before attempt
// 2, doubling each further attempt. No jitter — retried runs must be
// reproducible.
func backoff(base time.Duration, attempt int) time.Duration {
	if base <= 0 || attempt < 2 {
		return 0
	}
	return base << (attempt - 2)
}

// newCarError builds the typed failure record, lifting the stage name
// out of a StageError when the task attributed one.
func newCarError(car, attempts int, err error) *CarError {
	ce := &CarError{Car: car, Attempts: attempts, Err: err}
	var se *StageError
	if errors.As(err, &se) {
		ce.Stage = se.Stage
	}
	return ce
}

// contextual reports whether err is (or wraps) a context cancellation
// or deadline error.
func contextual(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
