package runner

import (
	"context"
	"errors"
	"sort"
	"testing"
)

func TestRunListCoversExactlyTheList(t *testing.T) {
	cars := []int{7, 3, 42, 1000, 11}
	st := RunList(context.Background(), Config{Workers: 2}, cars,
		func(_ context.Context, car int) (int, error) { return car * 2, nil })
	evs, err := Collect(st)
	if err != nil {
		t.Fatal(err)
	}
	var got []int
	for _, ev := range evs {
		if ev.Result != ev.Car*2 {
			t.Fatalf("car %d result %d", ev.Car, ev.Result)
		}
		got = append(got, ev.Car)
	}
	sort.Ints(got)
	want := append([]int(nil), cars...)
	sort.Ints(want)
	if len(got) != len(want) {
		t.Fatalf("ran %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ran %v, want %v", got, want)
		}
	}
}

func TestRunListEmpty(t *testing.T) {
	st := RunList(context.Background(), Config{}, nil,
		func(_ context.Context, car int) (int, error) { return car, nil })
	evs, err := Collect(st)
	if err != nil || len(evs) != 0 {
		t.Fatalf("empty list: %v, %v", evs, err)
	}
}

// TestRunListBudget: the error budget resolves against the list length,
// with the same semantics the dense-range Run applies.
func TestRunListBudget(t *testing.T) {
	cars := []int{2, 4, 6, 8, 10, 12}
	boom := errors.New("boom")
	st := RunList(context.Background(), Config{Workers: 1, MaxFailures: 2}, cars,
		func(_ context.Context, car int) (int, error) { return 0, boom })
	_, err := Collect(st)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
}

func TestBudgetExported(t *testing.T) {
	cases := []struct {
		cfg  Config
		n    int
		want int
	}{
		{Config{}, 100, -1},
		{Config{MaxFailures: 5}, 100, 5},
		{Config{MaxFailures: -1}, 100, 0},
		{Config{MaxFailureFrac: 0.1}, 40, 4},
		{Config{MaxFailures: 10, MaxFailureFrac: 0.05}, 100, 5},
	}
	for _, c := range cases {
		if got := c.cfg.Budget(c.n); got != c.want {
			t.Fatalf("Budget(%d) with %+v = %d, want %d", c.n, c.cfg, got, c.want)
		}
	}
}
