// Package mapattr fetches digital-map attribute data along matched
// routes (paper §IV-F): the number of traffic lights, bus stops,
// pedestrian crossings and junctions a transition passes, which Table 4
// summarises per Origin-Destination direction.
package mapattr

import (
	"repro/internal/digiroad"
	"repro/internal/geo"
	"repro/internal/mapmatch"
	"repro/internal/roadnet"
)

// RouteAttributes is the feature load of one route.
type RouteAttributes struct {
	TrafficLights       int
	BusStops            int
	PedestrianCrossings int
	Junctions           int
	LengthM             float64
}

// Fetcher counts features along route geometries.
type Fetcher struct {
	db    *digiroad.Database
	graph *roadnet.Graph
	// ProximityM is how close a point object must be to the route to
	// count (default 20 m: the object sits on the traversed street).
	ProximityM float64
}

// NewFetcher builds a fetcher. proximityM <= 0 selects 20 m.
func NewFetcher(db *digiroad.Database, graph *roadnet.Graph, proximityM float64) *Fetcher {
	if proximityM <= 0 {
		proximityM = 20
	}
	return &Fetcher{db: db, graph: graph, ProximityM: proximityM}
}

// AlongGeometry counts the features within ProximityM of the route
// chain and the junction nodes it passes.
func (f *Fetcher) AlongGeometry(route geo.Polyline) RouteAttributes {
	attrs := RouteAttributes{LengthM: route.Length()}
	for _, o := range f.db.ObjectsNearLine(route, f.ProximityM, 0) {
		switch o.Kind {
		case digiroad.TrafficLight:
			attrs.TrafficLights++
		case digiroad.BusStop:
			attrs.BusStops++
		case digiroad.PedestrianCrossing:
			attrs.PedestrianCrossings++
		}
	}
	for _, n := range f.graph.JunctionsIn(route.Bounds().Expand(f.ProximityM)) {
		if route.DistanceTo(n.Pos) <= f.ProximityM {
			attrs.Junctions++
		}
	}
	return attrs
}

// ForMatch counts features for a map-matching result, using its
// connected route geometry (so gap-filled stretches contribute their
// features too, exactly as the paper's element-wise fetch does).
func (f *Fetcher) ForMatch(res *mapmatch.Result) RouteAttributes {
	return f.AlongGeometry(res.Geometry)
}
