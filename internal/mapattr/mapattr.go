// Package mapattr fetches digital-map attribute data along matched
// routes (paper §IV-F): the number of traffic lights, bus stops,
// pedestrian crossings and junctions a transition passes, which Table 4
// summarises per Origin-Destination direction.
package mapattr

import (
	"repro/internal/digiroad"
	"repro/internal/geo"
	"repro/internal/mapmatch"
	"repro/internal/roadnet"
)

// RouteAttributes is the feature load of one route.
type RouteAttributes struct {
	TrafficLights       int
	BusStops            int
	PedestrianCrossings int
	Junctions           int
	LengthM             float64
}

// Fetcher counts features along route geometries. It is safe for
// concurrent use: the junction list is computed once at construction
// and only read afterwards.
type Fetcher struct {
	db        *digiroad.Database
	graph     *roadnet.Graph
	junctions []*roadnet.Node
	// ProximityM is how close a point object must be to the route to
	// count (default 20 m: the object sits on the traversed street).
	ProximityM float64
}

// NewFetcher builds a fetcher. proximityM <= 0 selects 20 m.
func NewFetcher(db *digiroad.Database, graph *roadnet.Graph, proximityM float64) *Fetcher {
	if proximityM <= 0 {
		proximityM = 20
	}
	return &Fetcher{db: db, graph: graph, junctions: graph.Junctions(), ProximityM: proximityM}
}

// attrChunkSegs mirrors digiroad's near-line sweep granularity: the
// route is cut into chunks of this many segments and each junction is
// distance-tested only against the chunks whose expanded bounds contain
// it, instead of projecting every in-bbox junction onto the full route.
const attrChunkSegs = 16

// AlongGeometry counts the features within ProximityM of the route
// chain and the junction nodes it passes.
func (f *Fetcher) AlongGeometry(route geo.Polyline) RouteAttributes {
	attrs := RouteAttributes{LengthM: route.Length()}
	fc := f.db.CountObjectsNearLine(route, f.ProximityM)
	attrs.TrafficLights = fc.TrafficLights
	attrs.BusStops = fc.BusStops
	attrs.PedestrianCrossings = fc.PedestrianCrossings

	type chunkRect struct {
		chunk  geo.Polyline
		bounds geo.Rect
	}
	var chunks []chunkRect
	for start := 0; start == 0 || start+1 < len(route); start += attrChunkSegs {
		chunk := route
		if len(route) > attrChunkSegs+1 {
			end := start + attrChunkSegs + 1
			if end > len(route) {
				end = len(route)
			}
			chunk = route[start:end]
		}
		chunks = append(chunks, chunkRect{chunk, chunk.Bounds().Expand(f.ProximityM)})
		if len(chunk) == len(route) {
			break
		}
	}
	for _, n := range f.junctions {
		for _, c := range chunks {
			// A junction within ProximityM of the route is within
			// ProximityM of the chunk holding its nearest segment, and
			// that chunk's expanded bounds contain it — so this accepts
			// exactly the junctions the full-route test accepted.
			if c.bounds.Contains(n.Pos) && c.chunk.DistanceTo(n.Pos) <= f.ProximityM {
				attrs.Junctions++
				break
			}
		}
	}
	return attrs
}

// ForMatch counts features for a map-matching result, using its
// connected route geometry (so gap-filled stretches contribute their
// features too, exactly as the paper's element-wise fetch does).
func (f *Fetcher) ForMatch(res *mapmatch.Result) RouteAttributes {
	return f.AlongGeometry(res.Geometry)
}
