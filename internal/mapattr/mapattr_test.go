package mapattr

import (
	"testing"
	"time"

	"repro/internal/digiroad"
	"repro/internal/geo"
	"repro/internal/mapmatch"
	"repro/internal/roadnet"
	"repro/internal/trace"
)

// corridor builds a 1 km straight street with a side street at x=500,
// plus one of each feature on the corridor and decoys far away.
func corridor(t *testing.T) (*digiroad.Database, *roadnet.Graph) {
	t.Helper()
	db := digiroad.NewDatabase(digiroad.OuluOrigin)
	add := func(coords ...float64) {
		if _, err := db.AddElement(digiroad.TrafficElement{
			Geom: geo.Line(coords...), Class: digiroad.ClassLocal, SpeedLimitKmh: 40,
		}); err != nil {
			t.Fatal(err)
		}
	}
	add(0, 0, 500, 0)
	add(500, 0, 1000, 0)
	add(500, 0, 500, 400) // side street, makes (500,0) a junction
	db.AddObject(digiroad.PointObject{Kind: digiroad.TrafficLight, Pos: geo.V(500, 2)})
	db.AddObject(digiroad.PointObject{Kind: digiroad.BusStop, Pos: geo.V(300, -3)})
	db.AddObject(digiroad.PointObject{Kind: digiroad.PedestrianCrossing, Pos: geo.V(700, 1)})
	// Decoys away from the corridor.
	db.AddObject(digiroad.PointObject{Kind: digiroad.TrafficLight, Pos: geo.V(500, 300)})
	db.AddObject(digiroad.PointObject{Kind: digiroad.BusStop, Pos: geo.V(500, 350)})
	g, err := roadnet.Build(db)
	if err != nil {
		t.Fatal(err)
	}
	return db, g
}

func TestAlongGeometry(t *testing.T) {
	db, g := corridor(t)
	f := NewFetcher(db, g, 0)
	route := geo.Line(0, 0, 1000, 0)
	attrs := f.AlongGeometry(route)
	if attrs.TrafficLights != 1 || attrs.BusStops != 1 || attrs.PedestrianCrossings != 1 {
		t.Fatalf("attrs = %+v", attrs)
	}
	if attrs.Junctions != 1 {
		t.Fatalf("junctions = %d, want 1", attrs.Junctions)
	}
	if attrs.LengthM != 1000 {
		t.Fatalf("length = %f", attrs.LengthM)
	}
}

func TestProximityBound(t *testing.T) {
	db, g := corridor(t)
	tight := NewFetcher(db, g, 1)
	attrs := tight.AlongGeometry(geo.Line(0, 0, 1000, 0))
	// Bus stop sits 3 m off the line: outside a 1 m bound.
	if attrs.BusStops != 0 {
		t.Fatalf("1 m fetcher found bus stop: %+v", attrs)
	}
	wide := NewFetcher(db, g, 500)
	attrs = wide.AlongGeometry(geo.Line(0, 0, 1000, 0))
	// A 500 m bound sweeps in the decoys too.
	if attrs.TrafficLights != 2 || attrs.BusStops != 2 {
		t.Fatalf("wide fetcher: %+v", attrs)
	}
}

func TestForMatch(t *testing.T) {
	db, g := corridor(t)
	m := mapmatch.NewIncremental(g, mapmatch.DefaultConfig())
	t0 := time.Date(2013, 2, 1, 9, 0, 0, 0, time.UTC)
	var pts []trace.RoutePoint
	for i := 0; i <= 10; i++ {
		pts = append(pts, trace.RoutePoint{
			PointID: i + 1, TripID: 1,
			Pos:  geo.V(float64(i)*100, 3),
			Time: t0.Add(time.Duration(i) * 15 * time.Second),
		})
	}
	res, err := m.Match(pts)
	if err != nil {
		t.Fatal(err)
	}
	f := NewFetcher(db, g, 0)
	attrs := f.ForMatch(res)
	if attrs.TrafficLights != 1 || attrs.BusStops != 1 || attrs.PedestrianCrossings != 1 || attrs.Junctions != 1 {
		t.Fatalf("ForMatch attrs = %+v", attrs)
	}
}

func TestEmptyRoute(t *testing.T) {
	db, g := corridor(t)
	f := NewFetcher(db, g, 0)
	attrs := f.AlongGeometry(nil)
	if attrs != (RouteAttributes{}) {
		t.Fatalf("empty route attrs = %+v", attrs)
	}
}
