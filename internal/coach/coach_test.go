package coach

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/routes"
	"repro/internal/tracegen"
)

var (
	envOnce sync.Once
	envP    *core.Pipeline
	envRecs []*core.TransitionRecord
	envErr  error
)

func testData(t *testing.T) (*core.Pipeline, []*core.TransitionRecord) {
	t.Helper()
	envOnce.Do(func() {
		envP, envErr = core.NewPipeline(core.Config{
			CitySeed: 42,
			Fleet: tracegen.Config{
				Seed: 42, Cars: 2, TripsPerCar: 30, GateRunFraction: 0.4,
			},
		})
		if envErr != nil {
			return
		}
		var res *core.Result
		res, envErr = envP.RunContext(context.Background())
		if envErr == nil {
			envRecs = res.Transitions()
		}
	})
	if envErr != nil {
		t.Fatalf("pipeline: %v", envErr)
	}
	if len(envRecs) == 0 {
		t.Fatal("no transitions to coach")
	}
	return envP, envRecs
}

func TestAnalyzePlausible(t *testing.T) {
	p, recs := testData(t)
	c := New(p.Graph)
	for _, rec := range recs {
		r := c.Analyze(rec)
		if r.EcoScore < 0 || r.EcoScore > 100 {
			t.Fatalf("eco score %f out of range", r.EcoScore)
		}
		if r.FuelPerKm < 50 || r.FuelPerKm > 400 {
			t.Fatalf("fuel per km %f implausible", r.FuelPerKm)
		}
		if r.IdlePct < 0 || r.IdlePct > 100 {
			t.Fatalf("idle share %f out of range", r.IdlePct)
		}
		if r.DetourFactor < 1 || r.DetourFactor > 4 {
			t.Fatalf("detour factor %f implausible", r.DetourFactor)
		}
		if len(r.Suggestions) == 0 {
			t.Fatal("no suggestions produced")
		}
		if r.Direction == "" || r.DistanceKm <= 0 {
			t.Fatalf("report incomplete: %+v", r)
		}
	}
}

func TestEcoScoreOrdersTrips(t *testing.T) {
	// A clean trip beats an idle-heavy detour.
	good := TripReport{IdlePct: 2, LowSpeedPct: 12, DetourFactor: 1.02}
	bad := TripReport{IdlePct: 30, LowSpeedPct: 55, DetourFactor: 1.4}
	if ecoScore(good) <= ecoScore(bad) {
		t.Fatalf("scores inverted: %f vs %f", ecoScore(good), ecoScore(bad))
	}
	if ecoScore(good) < 80 {
		t.Fatalf("clean trip scored %f", ecoScore(good))
	}
	if ecoScore(bad) > 40 {
		t.Fatalf("bad trip scored %f", ecoScore(bad))
	}
}

func TestSuggestionsTriggerOnPenalties(t *testing.T) {
	r := TripReport{IdlePct: 25, LowSpeedPct: 50, DetourFactor: 1.3}
	sugg := strings.Join(suggestions(r), " | ")
	for _, frag := range []string{"standing", "below 10 km/h", "longer than the shortest"} {
		if !strings.Contains(sugg, frag) {
			t.Fatalf("missing suggestion %q in %q", frag, sugg)
		}
	}
	clean := suggestions(TripReport{IdlePct: 1, LowSpeedPct: 5, DetourFactor: 1})
	if len(clean) != 1 || !strings.Contains(clean[0], "efficient") {
		t.Fatalf("clean trip suggestions = %v", clean)
	}
}

func TestCompareRoutes(t *testing.T) {
	_, recs := testData(t)
	options, err := CompareRoutes(recs, routes.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(options) == 0 {
		t.Fatal("no route options")
	}
	byDir := map[string][]RouteOption{}
	for _, o := range options {
		byDir[o.Direction] = append(byDir[o.Direction], o)
	}
	for dir, opts := range byDir {
		// Exactly one eco-best per direction.
		best := 0
		total := 0
		for _, o := range opts {
			if o.EcoBest {
				best++
			}
			total += o.Trips
			if o.MeanFuelMl <= 0 || o.MeanDistKm <= 0 {
				t.Fatalf("%s variant %d has empty means: %+v", dir, o.Variant, o)
			}
		}
		if best != 1 {
			t.Fatalf("%s has %d eco-best variants", dir, best)
		}
		// Trips partition the direction's transitions.
		n := 0
		for _, rec := range recs {
			if rec.Direction() == dir {
				n++
			}
		}
		if total != n {
			t.Fatalf("%s variants hold %d trips, direction has %d", dir, total, n)
		}
		// Variants ordered by popularity.
		for i := 1; i < len(opts); i++ {
			if opts[i].Trips > opts[i-1].Trips {
				t.Fatalf("%s variants not ordered by popularity", dir)
			}
		}
	}
}

func TestCompareRoutesEmpty(t *testing.T) {
	options, err := CompareRoutes(nil, routes.Config{})
	if err != nil || len(options) != 0 {
		t.Fatalf("empty input: %v %v", options, err)
	}
}
