// Package coach implements the paper's Driving Coach prototype
// (conclusions, ref [31]): post-driving analysis of trips built on the
// pipeline's preprocessing, map preparation, map-matching and feature
// extraction. It scores individual transitions for fuel-efficient
// driving and compares the route variants drivers actually chose
// between an origin and destination — the eco-routing question of
// Minett et al. [24].
package coach

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/roadnet"
	"repro/internal/routes"
	"repro/internal/trace"
)

// TripReport is the post-driving analysis of one transition.
type TripReport struct {
	Key       trace.Key
	Direction string

	DistanceKm  float64
	DurationMin float64
	FuelMl      float64
	FuelPerKm   float64

	LowSpeedPct float64
	IdlePct     float64 // share of trip time standing (< 1 km/h)
	// DetourFactor is driven distance over the shortest network
	// distance between the matched endpoints (>= ~1).
	DetourFactor float64

	// EcoScore is 0-100, higher is more fuel-efficient driving.
	EcoScore    float64
	Suggestions []string
}

// Coach analyses transitions over one road network.
type Coach struct {
	graph *roadnet.Graph
	rt    *roadnet.Router
}

// New builds a coach over the network's shared routing engine.
func New(graph *roadnet.Graph) *Coach {
	return NewWithRouter(graph.Router())
}

// NewWithRouter builds a coach over an explicit routing engine, so the
// reference-route queries share the pipeline's path cache.
func NewWithRouter(rt *roadnet.Router) *Coach {
	return &Coach{graph: rt.Graph(), rt: rt}
}

// Analyze scores one transition.
func (c *Coach) Analyze(rec *core.TransitionRecord) TripReport {
	r := TripReport{
		Key:         rec.Transition.Key(),
		Direction:   rec.Direction(),
		DistanceKm:  rec.RouteDistKm,
		DurationMin: rec.RouteTimeH * 60,
		FuelMl:      rec.FuelMl,
		LowSpeedPct: rec.LowSpeedPct,
	}
	if r.DistanceKm > 0 {
		r.FuelPerKm = r.FuelMl / r.DistanceKm
	}
	r.IdlePct = idleShare(rec)
	r.DetourFactor = c.detourFactor(rec)
	r.EcoScore = ecoScore(r)
	r.Suggestions = suggestions(r)
	return r
}

// idleShare is the time-weighted share of the transition spent
// standing.
func idleShare(rec *core.TransitionRecord) float64 {
	pts := rec.Transition.Seg.Points
	lo, hi := rec.Transition.FromCross.EntryIndex, rec.Transition.ToCross.ExitIndex
	if lo > hi {
		lo, hi = hi, lo
	}
	span := pts[lo : hi+1]
	var idle, total float64
	for i := 0; i < len(span)-1; i++ {
		dt := span[i+1].Time.Sub(span[i].Time).Seconds()
		if dt <= 0 {
			continue
		}
		total += dt
		if span[i].SpeedKmh < 1 {
			idle += dt
		}
	}
	if total == 0 {
		return 0
	}
	return 100 * idle / total
}

// detourFactor compares the driven route length against the shortest
// network route between the matched endpoints.
func (c *Coach) detourFactor(rec *core.TransitionRecord) float64 {
	geom := rec.Match.Geometry
	if len(geom) < 2 {
		return 1
	}
	from := c.graph.NearestNode(geom[0])
	to := c.graph.NearestNode(geom[len(geom)-1])
	if from == nil || to == nil {
		return 1
	}
	path, err := c.rt.ShortestPath(from.ID, to.ID, roadnet.DistanceWeight)
	if err != nil || path.Length < 100 {
		return 1
	}
	f := geom.Length() / path.Length
	if f < 1 {
		return 1
	}
	return f
}

// ecoScore combines the penalties into a 0-100 score.
func ecoScore(r TripReport) float64 {
	score := 100.0
	// Idling burns fuel for no distance.
	score -= 1.2 * r.IdlePct
	// Low-speed creep is the paper's headline fuel factor.
	score -= 0.5 * math.Max(0, r.LowSpeedPct-10)
	// Detours burn fuel proportionally.
	score -= 60 * (r.DetourFactor - 1)
	if score < 0 {
		score = 0
	}
	return score
}

// suggestions turns the penalties into actionable advice.
func suggestions(r TripReport) []string {
	var out []string
	if r.IdlePct > 12 {
		out = append(out, fmt.Sprintf(
			"%.0f%% of the trip was spent standing; route around signalled corridors or avoid peak hours", r.IdlePct))
	}
	if r.LowSpeedPct > 35 {
		out = append(out, fmt.Sprintf(
			"%.0f%% of trip time below 10 km/h; the crowded centre corridor dominates this route", r.LowSpeedPct))
	}
	if r.DetourFactor > 1.15 {
		out = append(out, fmt.Sprintf(
			"route was %.0f%% longer than the shortest alternative", 100*(r.DetourFactor-1)))
	}
	if len(out) == 0 {
		out = append(out, "efficient trip; no changes suggested")
	}
	return out
}

// RouteOption is one route variant between an OD pair, with the mean
// outcomes of the drivers who took it.
type RouteOption struct {
	Direction   string
	Variant     int // 0 = most driven
	Trips       int
	MeanFuelMl  float64
	MeanTimeMin float64
	MeanLowPct  float64
	MeanDistKm  float64
	// EcoBest marks the variant with the lowest mean fuel for its
	// direction (among variants with >= 2 trips when possible).
	EcoBest bool
}

// CompareRoutes clusters the transitions of each direction into route
// variants and reports their mean fuel, time and low-speed outcomes —
// "comparing the fuel consumption of different routes between an origin
// and destination" [24] on real (free) route choices.
func CompareRoutes(recs []*core.TransitionRecord, cfg routes.Config) ([]RouteOption, error) {
	byDir := map[string][]*core.TransitionRecord{}
	for _, rec := range recs {
		byDir[rec.Direction()] = append(byDir[rec.Direction()], rec)
	}
	dirs := make([]string, 0, len(byDir))
	for d := range byDir {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)

	var out []RouteOption
	for _, dir := range dirs {
		group := byDir[dir]
		items := make([]routes.Item, len(group))
		for i, rec := range group {
			items[i] = routes.Item{ID: i, Geom: rec.Match.Geometry}
		}
		clusters, err := routes.ClusterRoutes(items, cfg)
		if err != nil {
			return nil, fmt.Errorf("coach: clustering %s: %w", dir, err)
		}
		options := make([]RouteOption, len(clusters))
		for v, cl := range clusters {
			opt := RouteOption{Direction: dir, Variant: v, Trips: cl.Size()}
			for _, id := range cl.IDs {
				rec := group[id]
				opt.MeanFuelMl += rec.FuelMl
				opt.MeanTimeMin += rec.RouteTimeH * 60
				opt.MeanLowPct += rec.LowSpeedPct
				opt.MeanDistKm += rec.RouteDistKm
			}
			n := float64(cl.Size())
			opt.MeanFuelMl /= n
			opt.MeanTimeMin /= n
			opt.MeanLowPct /= n
			opt.MeanDistKm /= n
			options[v] = opt
		}
		markEcoBest(options)
		out = append(out, options...)
	}
	return out, nil
}

// markEcoBest flags the lowest-fuel variant, preferring variants with
// at least two trips so a single lucky run does not win.
func markEcoBest(options []RouteOption) {
	best := -1
	for i, o := range options {
		if o.Trips < 2 {
			continue
		}
		if best < 0 || o.MeanFuelMl < options[best].MeanFuelMl {
			best = i
		}
	}
	if best < 0 { // all singletons
		for i, o := range options {
			if best < 0 || o.MeanFuelMl < options[best].MeanFuelMl {
				best = i
			}
		}
	}
	if best >= 0 {
		options[best].EcoBest = true
	}
}
