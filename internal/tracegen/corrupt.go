package tracegen

import (
	"math"
	"math/rand"

	"repro/internal/trace"
)

// corrupt injects the transmission-error modes the paper's cleaning
// stage (§IV-B) must repair:
//
//   - arrival-order shuffling: latency reorders records on the wire, so
//     the stored point slice is no longer in true order (ids and
//     timestamps remain correct);
//
//   - id glitches: the device sequence counter mislabels adjacent
//     points (timestamps remain correct);
//
//   - timestamp jitter: adjacent points carry swapped timestamps (ids
//     remain correct).
//
//   - GPS spikes: occasional positions thrown kilometres off by
//     multipath or a cold receiver, which the cleaning stage's
//     implied-speed filter must drop.
//
// In the two metadata-corruption modes exactly one of the two sort keys
// reconstructs the true path; the paper's min-total-distance rule picks
// it.
func (g *Generator) corrupt(rng *rand.Rand, t *trace.Trip) {
	if len(t.Points) < 4 {
		return
	}
	if rng.Float64() < g.cfg.SpikeRate {
		n := 1 + rng.Intn(2)
		for k := 0; k < n; k++ {
			i := rng.Intn(len(t.Points))
			ang := rng.Float64() * 2 * math.Pi
			r := 2000 + rng.Float64()*8000
			t.Points[i].Pos.X += r * math.Cos(ang)
			t.Points[i].Pos.Y += r * math.Sin(ang)
		}
	}
	// Latency shuffling affects most trips lightly.
	if rng.Float64() < 0.6 {
		shuffleWindows(rng, t.Points, 1+rng.Intn(3))
	}
	if rng.Float64() >= g.cfg.CorruptionRate {
		return
	}
	n := 1 + rng.Intn(2) // corrupted pairs
	if rng.Float64() < 0.5 {
		for k := 0; k < n; k++ {
			i := 1 + rng.Intn(len(t.Points)-2)
			a, b := findByID(t.Points, i), findByID(t.Points, i+1)
			if a >= 0 && b >= 0 {
				t.Points[a].PointID, t.Points[b].PointID = t.Points[b].PointID, t.Points[a].PointID
			}
		}
	} else {
		for k := 0; k < n; k++ {
			i := 1 + rng.Intn(len(t.Points)-2)
			a, b := findByID(t.Points, i), findByID(t.Points, i+1)
			if a >= 0 && b >= 0 {
				t.Points[a].Time, t.Points[b].Time = t.Points[b].Time, t.Points[a].Time
			}
		}
	}
}

// shuffleWindows permutes small windows of the slice in place,
// simulating out-of-order arrival.
func shuffleWindows(rng *rand.Rand, pts []trace.RoutePoint, windows int) {
	for w := 0; w < windows; w++ {
		if len(pts) < 3 {
			return
		}
		start := rng.Intn(len(pts) - 2)
		size := 2 + rng.Intn(2)
		if start+size > len(pts) {
			size = len(pts) - start
		}
		window := pts[start : start+size]
		rng.Shuffle(len(window), func(i, j int) {
			window[i], window[j] = window[j], window[i]
		})
	}
}

func findByID(pts []trace.RoutePoint, id int) int {
	for i := range pts {
		if pts[i].PointID == id {
			return i
		}
	}
	return -1
}
