// Package tracegen simulates a taxi fleet driving over the synthetic
// city, producing raw trips in the exact shape of the paper's Driveco
// data: engine-on trips spanning many customer runs, event-triggered
// route points, GPS noise, OBD-style cumulative fuel and distance, and
// transmission-latency ordering corruption for the cleaning stage to
// repair.
package tracegen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/digiroad"
	"repro/internal/geo"
	"repro/internal/roadnet"
	"repro/internal/trace"
	"repro/internal/weather"
)

// Config parameterises the simulation. Zero values select defaults
// matching the paper's setting (7 taxis, one year starting 1 Oct 2012).
type Config struct {
	Seed        int64
	Cars        int // default 7
	TripsPerCar int // engine-on trips per car, default 60
	// RunsPerTrip is the mean number of customer runs per engine-on
	// trip (default 6).
	RunsPerTrip float64
	// GateRunFraction is the probability a run connects two of the
	// named gates T, S, L (default 0.10).
	GateRunFraction float64
	// Start is the first simulated day (default 1 Oct 2012, the
	// paper's collection start).
	Start time.Time
	// Days is the simulated collection span (default 365).
	Days int
	// GPSNoiseM is the 1-sigma horizontal GPS error (default 4 m).
	GPSNoiseM float64
	// CorruptionRate is the fraction of trips whose point ordering
	// metadata is corrupted in transit (default 0.15).
	CorruptionRate float64
	// SpikeRate is the fraction of trips containing GPS spike points
	// thrown kilometres off (default 0.05).
	SpikeRate float64
	// Weather supplies temperatures; defaults to weather.DefaultModel.
	Weather *weather.Model
}

func (c Config) withDefaults() Config {
	if c.Cars <= 0 {
		c.Cars = 7
	}
	if c.TripsPerCar <= 0 {
		c.TripsPerCar = 60
	}
	if c.RunsPerTrip <= 0 {
		c.RunsPerTrip = 6
	}
	if c.GateRunFraction <= 0 {
		c.GateRunFraction = 0.10
	}
	if c.Start.IsZero() {
		c.Start = time.Date(2012, 10, 1, 0, 0, 0, 0, time.UTC)
	}
	if c.Days <= 0 {
		c.Days = 365
	}
	if c.GPSNoiseM <= 0 {
		c.GPSNoiseM = 4
	}
	if c.CorruptionRate <= 0 {
		c.CorruptionRate = 0.15
	}
	if c.SpikeRate <= 0 {
		c.SpikeRate = 0.05
	}
	if c.Weather == nil {
		c.Weather = weather.DefaultModel(c.Seed)
	}
	return c
}

// Generator produces simulated trips over one city.
type Generator struct {
	cfg   Config
	city  *digiroad.City
	graph *roadnet.Graph
	rt    *roadnet.Router

	gateNodes map[string]roadnet.NodeID // outer end node of each gate arterial
}

// New prepares a generator over the graph's shared routing engine. The
// graph must have been built from city.DB.
func New(city *digiroad.City, graph *roadnet.Graph, cfg Config) (*Generator, error) {
	return NewWithRouter(city, graph.Router(), cfg)
}

// NewWithRouter prepares a generator over an explicit routing engine,
// so a pipeline can share one Router across all of its stages.
func NewWithRouter(city *digiroad.City, rt *roadnet.Router, cfg Config) (*Generator, error) {
	graph := rt.Graph()
	g := &Generator{cfg: cfg.withDefaults(), city: city, graph: graph, rt: rt}
	g.gateNodes = map[string]roadnet.NodeID{}
	for _, name := range []string{"T", "S", "L"} {
		gate := city.Gate(name)
		if len(gate) < 2 {
			return nil, fmt.Errorf("tracegen: city has no gate %s", name)
		}
		// The run endpoint for a gate is the network node nearest the
		// outer end of the gate road (away from the centre).
		outer := gate[0]
		if gate[len(gate)-1].Dist(geo.XY{}) > outer.Dist(geo.XY{}) {
			outer = gate[len(gate)-1]
		}
		n := graph.NearestNode(outer)
		if n == nil {
			return nil, fmt.Errorf("tracegen: no node near gate %s", name)
		}
		g.gateNodes[name] = n.ID
	}
	return g, nil
}

// Fleet simulates every car and returns all raw trips.
func (g *Generator) Fleet() []*trace.Trip {
	var out []*trace.Trip
	for car := 1; car <= g.cfg.Cars; car++ {
		out = append(out, g.CarTrips(car)...)
	}
	return out
}

// CarTrips simulates one car's engine-on trips. Deterministic per
// (Seed, car). Cars differ in activity: some drivers work far more
// shifts than others, reproducing the per-car heterogeneity of the
// paper's Table 3 (1790 to 4080 segments per car).
func (g *Generator) CarTrips(carID int) []*trace.Trip {
	rng := rand.New(rand.NewSource(g.cfg.Seed*1_000_003 + int64(carID)))
	// Activity factor in [0.6, 1.4].
	nTrips := int(float64(g.cfg.TripsPerCar) * (0.6 + 0.8*rng.Float64()))
	if nTrips < 1 {
		nTrips = 1
	}
	// Driver style: a persistent per-car target-speed factor (calm to
	// brisk), like real taxi drivers.
	style := 0.94 + 0.12*rng.Float64()
	trips := make([]*trace.Trip, 0, nTrips)
	for i := 0; i < nTrips; i++ {
		day := rng.Intn(g.cfg.Days)
		startHour := 6 + rng.Float64()*14 // 06:00 .. 20:00
		start := g.cfg.Start.AddDate(0, 0, day).
			Add(time.Duration(startHour * float64(time.Hour)))
		tripID := int64(carID)*1_000_000 + int64(i) + 1
		t := g.engineOnTrip(rng, tripID, carID, style, start)
		if t != nil {
			trips = append(trips, t)
		}
	}
	return trips
}

// engineOnTrip simulates one engine-on period: several customer runs
// separated by idle waits, sharing one trip id and one point id
// sequence.
func (g *Generator) engineOnTrip(rng *rand.Rand, tripID int64, carID int, style float64, start time.Time) *trace.Trip {
	nRuns := 1 + rng.Intn(int(2*g.cfg.RunsPerTrip-1)) // mean ~RunsPerTrip
	tr := &trace.Trip{ID: tripID, CarID: carID, RecordedStart: start}

	now := start
	var cumDist, cumFuel float64
	pointID := 1
	var lastDropoff roadnet.NodeID = -1

	for run := 0; run < nRuns; run++ {
		from, to, ok := g.pickOD(rng, lastDropoff)
		if !ok {
			continue
		}
		// Deadhead: the taxi drives (logged, engine on) from the last
		// dropoff to the new pickup before the customer run.
		if lastDropoff >= 0 && lastDropoff != from {
			if dead := g.route(rng, lastDropoff, from); dead != nil {
				plan := g.planRun(rng, dead, style, now)
				res := simulateRun(rng, plan)
				for _, ep := range res.points {
					tr.Points = append(tr.Points, trace.RoutePoint{
						PointID:  pointID,
						TripID:   tripID,
						Pos:      g.jitter(rng, ep.pos),
						Time:     ep.t,
						SpeedKmh: math.Max(0, ep.speedKmh+rng.NormFloat64()*0.5),
						FuelMl:   cumFuel + ep.fuelMl,
						DistM:    cumDist + ep.distM,
					})
					pointID++
				}
				cumDist += res.distM
				cumFuel += res.fuelMl
				now = now.Add(res.duration)
				// Brief pickup wait; long enough for rule 1 to split
				// the deadhead from the customer run.
				pickupWait := time.Duration(4+rng.Intn(4)) * time.Minute
				endPos := dead.Geometry().PointAt(dead.Geometry().Length())
				for waited := 75 * time.Second; waited < pickupWait; waited += 75 * time.Second {
					cumFuel += 0.28 * 75
					tr.Points = append(tr.Points, trace.RoutePoint{
						PointID: pointID, TripID: tripID,
						Pos:    g.jitter(rng, endPos),
						Time:   now.Add(waited),
						FuelMl: cumFuel, DistM: cumDist,
					})
					pointID++
				}
				now = now.Add(pickupWait)
			}
		}
		path := g.route(rng, from, to)
		if path == nil {
			continue
		}
		plan := g.planRun(rng, path, style, now)
		res := simulateRun(rng, plan)
		for _, ep := range res.points {
			tr.Points = append(tr.Points, trace.RoutePoint{
				PointID:  pointID,
				TripID:   tripID,
				Pos:      g.jitter(rng, ep.pos),
				Time:     ep.t,
				SpeedKmh: math.Max(0, ep.speedKmh+rng.NormFloat64()*0.5),
				FuelMl:   cumFuel + ep.fuelMl,
				DistM:    cumDist + ep.distM,
			})
			pointID++
		}
		cumDist += res.distM
		cumFuel += res.fuelMl
		now = now.Add(res.duration)
		lastDropoff = to

		// Idle wait at the dropoff before the next run: heartbeat
		// points with no movement.
		if run < nRuns-1 {
			idle := time.Duration(4+rng.Intn(18)) * time.Minute
			endPos := plan.geom.PointAt(plan.geom.Length())
			for waited := 75 * time.Second; waited < idle; waited += 75 * time.Second {
				cumFuel += 0.28 * 75 // idling burn
				tr.Points = append(tr.Points, trace.RoutePoint{
					PointID:  pointID,
					TripID:   tripID,
					Pos:      g.jitter(rng, endPos),
					Time:     now.Add(waited),
					SpeedKmh: 0,
					FuelMl:   cumFuel,
					DistM:    cumDist,
				})
				pointID++
			}
			now = now.Add(idle)
		}
	}
	if len(tr.Points) == 0 {
		return nil
	}
	tr.RecordedEnd = now
	tr.RecordedDuration = now.Sub(start)
	tr.RecordedDistM = cumDist
	tr.RecordedFuelMl = cumFuel

	g.corrupt(rng, tr)
	return tr
}

// pickOD selects the origin and destination nodes for one customer run.
func (g *Generator) pickOD(rng *rand.Rand, lastDropoff roadnet.NodeID) (from, to roadnet.NodeID, ok bool) {
	if rng.Float64() < g.cfg.GateRunFraction {
		names := []string{"T", "S", "L"}
		i := rng.Intn(3)
		j := rng.Intn(2)
		if j >= i {
			j++
		}
		return g.gateNodes[names[i]], g.gateNodes[names[j]], true
	}
	// Ordinary customer run: random nodes with a plausible path length.
	from = lastDropoff
	if from < 0 || rng.Float64() < 0.5 {
		from = roadnet.NodeID(rng.Intn(len(g.graph.Nodes)))
	}
	for tries := 0; tries < 12; tries++ {
		to = roadnet.NodeID(rng.Intn(len(g.graph.Nodes)))
		d := g.graph.Nodes[from].Pos.Dist(g.graph.Nodes[to].Pos)
		if d > 500 && d < 6000 {
			return from, to, true
		}
	}
	return 0, 0, false
}

// route picks the driver's route: travel-time shortest path under
// per-edge preference noise (the paper's drivers choose routes freely
// on silent knowledge, so routes vary between runs).
func (g *Generator) route(rng *rand.Rand, from, to roadnet.NodeID) *roadnet.Path {
	pref := map[roadnet.EdgeID]float64{}
	weight := func(e *roadnet.Edge, forward bool) float64 {
		f, okPref := pref[e.ID]
		if !okPref {
			f = math.Exp(rng.NormFloat64() * 0.20)
			pref[e.ID] = f
		}
		return roadnet.TravelTimeWeight(e, forward) * f
	}
	// Per-call preference noise makes the weight a custom closure, so
	// the router runs it uncached on pooled scratch — deterministic and
	// allocation-light, but never memoised across drivers.
	path, err := g.rt.ShortestPath(from, to, weight)
	if err != nil || len(path.Steps) == 0 {
		return nil
	}
	return path
}

// jitter applies GPS noise.
func (g *Generator) jitter(rng *rand.Rand, p geo.XY) geo.XY {
	return geo.XY{
		X: p.X + rng.NormFloat64()*g.cfg.GPSNoiseM,
		Y: p.Y + rng.NormFloat64()*g.cfg.GPSNoiseM,
	}
}

// planRun assembles the kinematic inputs for one run. style is the
// driver's persistent target-speed factor.
func (g *Generator) planRun(rng *rand.Rand, path *roadnet.Path, style float64, start time.Time) runPlan {
	geom := path.Geometry()
	plan := runPlan{
		geom:  geom,
		start: start,
		noise: g.cfg.GPSNoiseM,
		style: style,
	}
	// Per-position speed limits from the path steps.
	var along float64
	for _, s := range path.Steps {
		plan.limits = append(plan.limits, limitSpan{
			from:  along,
			to:    along + s.Edge.Length,
			limit: s.Edge.SpeedLimitKmh / 3.6,
		})
		along += s.Edge.Length
	}
	// Feature marks along the route.
	for _, o := range g.city.DB.ObjectsNearLine(geom, 15, 0) {
		proj := geom.Project(o.Pos)
		switch o.Kind {
		case digiroad.TrafficLight:
			// Red-light probability per signal.
			red := 0.35
			waitScale := 40.0
			if g.city.InHotspot(o.Pos) {
				// Queues in crowded areas: more and longer reds.
				red = 0.5
				waitScale = 55
			}
			if rng.Float64() < red {
				wait := 5 + rng.Float64()*waitScale
				if rng.Float64() < 0.01 {
					wait = 200 // failed signal; the Table 2 rationale
				}
				plan.stops = append(plan.stops, stopMark{along: proj.Along, wait: wait})
			} else {
				plan.slows = append(plan.slows, slowMark{along: proj.Along, radius: 50, factor: 0.6})
			}
		case digiroad.PedestrianCrossing:
			if g.city.InHotspot(o.Pos) {
				// Crowded area: pedestrians actually on the crossing
				// force brief stops most of the time.
				if rng.Float64() < 0.7 {
					plan.stops = append(plan.stops, stopMark{along: proj.Along, wait: 5 + rng.Float64()*15})
				} else {
					plan.slows = append(plan.slows, slowMark{along: proj.Along, radius: 30, factor: 0.4})
				}
			} else if rng.Float64() < 0.05 {
				plan.stops = append(plan.stops, stopMark{along: proj.Along, wait: 3 + rng.Float64()*5})
			} else if rng.Float64() < 0.3 {
				plan.slows = append(plan.slows, slowMark{along: proj.Along, radius: 25, factor: 0.55})
			}
		case digiroad.BusStop:
			// Stopped buses block the lane surprisingly often.
			if rng.Float64() < 0.25 {
				plan.stops = append(plan.stops, stopMark{along: proj.Along, wait: 3 + rng.Float64()*9})
			} else {
				plan.slows = append(plan.slows, slowMark{along: proj.Along, radius: 35, factor: 0.65})
			}
		}
	}
	// Hotspot congestion: sampled route positions inside a crowded
	// area get a pervasive slowdown.
	step := 60.0
	for along := 0.0; along < geom.Length(); along += step {
		if g.city.InHotspot(geom.PointAt(along)) {
			plan.slows = append(plan.slows, slowMark{along: along, radius: step / 2, factor: 0.55})
		}
	}

	// Junction turns: slow where the route heading changes sharply.
	for i := 1; i < len(geom)-1; i++ {
		h1 := geo.Bearing(geom[i-1], geom[i])
		h2 := geo.Bearing(geom[i], geom[i+1])
		if geo.AngleDiff(h1, h2) > 40 {
			proj := geom.Project(geom[i])
			plan.slows = append(plan.slows, slowMark{along: proj.Along, radius: 20, factor: 0.45})
		}
	}
	sort.Slice(plan.stops, func(i, j int) bool { return plan.stops[i].along < plan.stops[j].along })

	// Rush hours slow the whole network: a multiplicative drag on the
	// limits in the morning and evening peaks.
	plan.congestion = rushHourFactor(start)

	// Seasonal target-speed offset (km/h -> m/s): the paper measures
	// winter -0.07, spring +0.46, summer +0.70, autumn +1.38 vs annual.
	switch weather.SeasonOf(start) {
	case weather.Winter:
		plan.speedOffset = -0.6 / 3.6
	case weather.Spring:
		plan.speedOffset = 0.2 / 3.6
	case weather.Summer:
		plan.speedOffset = 0.6 / 3.6
	case weather.Autumn:
		plan.speedOffset = 1.6 / 3.6
	}
	// Cold days add friction: lower targets slightly below -10 C.
	if g.cfg.Weather.TemperatureAt(start) < -10 {
		plan.speedOffset -= 0.4 / 3.6
	}
	return plan
}

// Cars returns the configured fleet size.
func (g *Generator) Cars() int { return g.cfg.Cars }

// rushHourFactor returns the congestion multiplier on target speeds for
// a departure time: 1.0 off-peak, lower during the morning (07:30 to
// 09:00) and evening (15:30 to 17:30) peaks.
func rushHourFactor(t time.Time) float64 {
	h := float64(t.Hour()) + float64(t.Minute())/60
	switch {
	case h >= 7.5 && h < 9:
		return 0.8
	case h >= 15.5 && h < 17.5:
		return 0.75
	default:
		return 1.0
	}
}
