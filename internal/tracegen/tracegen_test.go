package tracegen

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"

	"repro/internal/clean"
	"repro/internal/digiroad"
	"repro/internal/geo"
	"repro/internal/roadnet"
	"repro/internal/trace"
)

func testGenerator(t *testing.T, cfg Config) (*Generator, *digiroad.City, *roadnet.Graph) {
	t.Helper()
	city := digiroad.SynthesizeOulu(digiroad.SynthConfig{Seed: 1})
	graph, err := roadnet.Build(city.DB)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	gen, err := New(city, graph, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return gen, city, graph
}

func smallCfg() Config {
	return Config{Seed: 7, Cars: 2, TripsPerCar: 4, Days: 330, SpikeRate: 1e-12}
}

func TestCarTripsDeterministic(t *testing.T) {
	genA, _, _ := testGenerator(t, smallCfg())
	genB, _, _ := testGenerator(t, smallCfg())
	a := genA.CarTrips(1)
	b := genB.CarTrips(1)
	if len(a) != len(b) {
		t.Fatalf("trip counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || len(a[i].Points) != len(b[i].Points) {
			t.Fatalf("trip %d differs between identical generators", i)
		}
		for k := range a[i].Points {
			if a[i].Points[k].Pos != b[i].Points[k].Pos {
				t.Fatalf("trip %d point %d differs", i, k)
			}
		}
	}
}

func TestTripShape(t *testing.T) {
	gen, city, _ := testGenerator(t, smallCfg())
	trips := gen.Fleet()
	if len(trips) == 0 {
		t.Fatal("no trips generated")
	}
	for _, tr := range trips {
		if err := tr.Validate(); err != nil {
			t.Fatalf("Validate: %v", err)
		}
		if tr.RecordedDistM <= 0 || tr.RecordedFuelMl <= 0 {
			t.Fatalf("trip %d missing recorded totals: %+v", tr.ID, tr)
		}
		// Point IDs are a permutation of 1..n.
		ids := make([]int, len(tr.Points))
		for i, p := range tr.Points {
			ids[i] = p.PointID
			if !city.StudyArea.Expand(3000).Contains(p.Pos) {
				t.Fatalf("trip %d point far outside the city: %v", tr.ID, p.Pos)
			}
			if p.SpeedKmh < 0 || p.SpeedKmh > 110 {
				t.Fatalf("implausible speed %f", p.SpeedKmh)
			}
		}
		sort.Ints(ids)
		for i, id := range ids {
			if id != i+1 {
				t.Fatalf("trip %d: point ids not 1..n: %v", tr.ID, ids[:min(10, len(ids))])
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// trueOrder returns the points sorted by device id (the generator
// assigns ids in true order before corruption swaps a few).
func trueOrderByID(tr *trace.Trip) []trace.RoutePoint {
	pts := append([]trace.RoutePoint(nil), tr.Points...)
	sort.Slice(pts, func(i, j int) bool { return pts[i].PointID < pts[j].PointID })
	return pts
}

func TestCumulativeMeasurementsMonotoneInTrueOrder(t *testing.T) {
	gen, _, _ := testGenerator(t, Config{Seed: 3, Cars: 1, TripsPerCar: 3, CorruptionRate: 1e-12})
	// CorruptionRate tiny: only arrival shuffling, ids stay true.
	for _, tr := range gen.CarTrips(1) {
		pts := trueOrderByID(tr)
		for i := 1; i < len(pts); i++ {
			if pts[i].FuelMl < pts[i-1].FuelMl-1e-9 {
				t.Fatalf("fuel not monotone at %d: %f -> %f", i, pts[i-1].FuelMl, pts[i].FuelMl)
			}
			if pts[i].DistM < pts[i-1].DistM-1e-9 {
				t.Fatalf("distance not monotone at %d", i)
			}
			if pts[i].Time.Before(pts[i-1].Time) {
				t.Fatalf("time not monotone at %d", i)
			}
		}
	}
}

func TestArrivalOrderIsCorrupted(t *testing.T) {
	gen, _, _ := testGenerator(t, Config{Seed: 11, Cars: 2, TripsPerCar: 6})
	shuffled := 0
	total := 0
	for car := 1; car <= 2; car++ {
		for _, tr := range gen.CarTrips(car) {
			total++
			for i := 1; i < len(tr.Points); i++ {
				if tr.Points[i].PointID < tr.Points[i-1].PointID {
					shuffled++
					break
				}
			}
		}
	}
	if shuffled == 0 {
		t.Fatalf("no trip of %d has shuffled arrival order; corruption not happening", total)
	}
}

func TestMetadataCorruptionPresent(t *testing.T) {
	gen, _, _ := testGenerator(t, Config{Seed: 5, Cars: 3, TripsPerCar: 8, CorruptionRate: 0.9})
	idGlitch, tsGlitch := 0, 0
	for car := 1; car <= 3; car++ {
		for _, tr := range gen.CarTrips(car) {
			pts := trueOrderByID(tr)
			// In id-glitched trips, the id ordering zigzags spatially:
			// its path is longer than the time ordering's.
			byTime := append([]trace.RoutePoint(nil), pts...)
			sort.Slice(byTime, func(i, j int) bool { return byTime[i].Time.Before(byTime[j].Time) })
			dID := trace.PathLength(pts)
			dTime := trace.PathLength(byTime)
			if dID > dTime+1 {
				idGlitch++
			}
			if dTime > dID+1 {
				tsGlitch++
			}
		}
	}
	if idGlitch == 0 || tsGlitch == 0 {
		t.Fatalf("corruption modes missing: idGlitch=%d tsGlitch=%d", idGlitch, tsGlitch)
	}
}

func TestFuelEconomyPlausible(t *testing.T) {
	gen, _, _ := testGenerator(t, Config{Seed: 13, Cars: 1, TripsPerCar: 8})
	var fuel, dist float64
	for _, tr := range gen.CarTrips(1) {
		fuel += tr.RecordedFuelMl
		dist += tr.RecordedDistM
	}
	if dist == 0 {
		t.Fatal("no distance driven")
	}
	perKm := fuel / (dist / 1000)
	// Urban taxi: 60..250 ml/km including idling (paper Table 4 implies
	// ~100 ml/km on 2.3 km runs of ~220 ml).
	if perKm < 60 || perKm > 250 {
		t.Fatalf("fuel economy %f ml/km implausible", perKm)
	}
}

func TestGateRunsTouchGates(t *testing.T) {
	gen, city, _ := testGenerator(t, Config{Seed: 17, Cars: 1, TripsPerCar: 10, GateRunFraction: 0.9})
	thickT := geo.NewThickLine(city.GateT, 120)
	thickS := geo.NewThickLine(city.GateS, 120)
	thickL := geo.NewThickLine(city.GateL, 120)
	touches := 0
	for _, tr := range gen.CarTrips(1) {
		pts := trueOrderByID(tr)
		hit := map[string]bool{}
		for _, p := range pts {
			switch {
			case thickT.Contains(p.Pos):
				hit["T"] = true
			case thickS.Contains(p.Pos):
				hit["S"] = true
			case thickL.Contains(p.Pos):
				hit["L"] = true
			}
		}
		if len(hit) >= 2 {
			touches++
		}
	}
	if touches == 0 {
		t.Fatal("no gate-to-gate runs despite GateRunFraction=0.9")
	}
}

func TestTimestampsWithinCollectionWindow(t *testing.T) {
	cfg := smallCfg()
	gen, _, _ := testGenerator(t, cfg)
	winStart := time.Date(2012, 10, 1, 0, 0, 0, 0, time.UTC)
	winEnd := winStart.AddDate(1, 0, 7) // small slack for day-long trips
	for _, tr := range gen.Fleet() {
		if tr.StartTime().Before(winStart) || tr.EndTime().After(winEnd) {
			t.Fatalf("trip %d outside collection window: %s .. %s",
				tr.ID, tr.StartTime(), tr.EndTime())
		}
	}
}

func TestSimulateRunBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	plan := runPlan{
		geom:  geo.Line(0, 0, 1000, 0),
		start: time.Date(2013, 3, 1, 12, 0, 0, 0, time.UTC),
		limits: []limitSpan{
			{from: 0, to: 1000, limit: 50 / 3.6},
		},
	}
	res := simulateRun(rng, plan)
	if math.Abs(res.distM-1000) > 1 {
		t.Fatalf("distance %f, want 1000", res.distM)
	}
	if len(res.points) < 2 {
		t.Fatalf("too few points: %d", len(res.points))
	}
	// Travel time: 1 km at <=50 km/h takes at least 72 s.
	if res.duration < 72*time.Second || res.duration > 10*time.Minute {
		t.Fatalf("duration %s implausible", res.duration)
	}
	// Points are in true order with increasing cumulative distance.
	for i := 1; i < len(res.points); i++ {
		if res.points[i].distM < res.points[i-1].distM {
			t.Fatal("run points not monotone")
		}
	}
	last := res.points[len(res.points)-1]
	if math.Abs(last.distM-1000) > 1 {
		t.Fatalf("last point at %f, want 1000", last.distM)
	}
}

func TestSimulateRunStopsAtLight(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	plan := runPlan{
		geom:   geo.Line(0, 0, 1000, 0),
		start:  time.Date(2013, 3, 1, 12, 0, 0, 0, time.UTC),
		limits: []limitSpan{{from: 0, to: 1000, limit: 50 / 3.6}},
		stops:  []stopMark{{along: 500, wait: 30}},
	}
	res := simulateRun(rng, plan)

	noStop := simulateRun(rand.New(rand.NewSource(2)), runPlan{
		geom:   geo.Line(0, 0, 1000, 0),
		start:  plan.start,
		limits: plan.limits,
	})
	if res.duration < noStop.duration+25*time.Second {
		t.Fatalf("red light did not delay: %s vs %s", res.duration, noStop.duration)
	}
	if res.fuelMl <= noStop.fuelMl {
		t.Fatal("idling at the light must burn extra fuel")
	}
	// Some emitted point must be (nearly) standing near the light.
	foundStop := false
	for _, p := range res.points {
		if p.speedKmh < 3 && math.Abs(p.distM-500) < 30 {
			foundStop = true
		}
	}
	if !foundStop {
		t.Fatal("no standing point emitted at the light")
	}
}

func TestSimulateRunTurnEmitsPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	plan := runPlan{
		geom:   geo.Line(0, 0, 300, 0, 300, 300),
		start:  time.Date(2013, 3, 1, 12, 0, 0, 0, time.UTC),
		limits: []limitSpan{{from: 0, to: 600, limit: 40 / 3.6}},
	}
	res := simulateRun(rng, plan)
	// A point should be emitted near the 90-degree corner (along 300).
	found := false
	for _, p := range res.points {
		if math.Abs(p.distM-300) < 40 {
			found = true
		}
	}
	if !found {
		t.Fatal("no route point emitted at the turn")
	}
}

func TestSimulateRunEmptyGeom(t *testing.T) {
	res := simulateRun(rand.New(rand.NewSource(4)), runPlan{})
	if len(res.points) != 0 || res.distM != 0 {
		t.Fatalf("empty plan produced %+v", res)
	}
}

func TestSeasonalOffsetApplied(t *testing.T) {
	gen, _, graph := testGenerator(t, Config{Seed: 19})
	rng := rand.New(rand.NewSource(1))
	path, err := graph.ShortestPath(0, roadnet.NodeID(len(graph.Nodes)/2), nil)
	if err != nil {
		t.Skip("no path between probe nodes")
	}
	winter := gen.planRun(rng, path, 1, time.Date(2013, 1, 15, 12, 0, 0, 0, time.UTC))
	autumn := gen.planRun(rng, path, 1, time.Date(2012, 10, 15, 12, 0, 0, 0, time.UTC))
	if winter.speedOffset >= autumn.speedOffset {
		t.Fatalf("winter offset %f must be below autumn %f", winter.speedOffset, autumn.speedOffset)
	}
}

func TestGPSSpikesInjectedAndCleanable(t *testing.T) {
	gen, city, _ := testGenerator(t, Config{Seed: 23, Cars: 1, TripsPerCar: 10, SpikeRate: 0.9})
	trips := gen.CarTrips(1)
	spiked := 0
	bound := city.StudyArea.Expand(1500)
	for _, tr := range trips {
		for _, p := range tr.Points {
			if !bound.Contains(p.Pos) {
				spiked++
				break
			}
		}
	}
	if spiked == 0 {
		t.Fatal("SpikeRate=0.9 injected no spikes")
	}
	// The cleaning stage must drop them: after Repair, no surviving
	// consecutive pair implies an impossible speed.
	dropped := 0
	for _, tr := range trips {
		r := clean.Repair(tr, clean.Config{})
		dropped += r.Dropped
		pts := r.Trip.Points
		for i := 1; i < len(pts); i++ {
			dt := pts[i].Time.Sub(pts[i-1].Time).Seconds()
			if dt <= 0.5 {
				continue
			}
			if v := pts[i].Pos.Dist(pts[i-1].Pos) / dt * 3.6; v > 150 {
				t.Fatalf("impossible speed %f km/h survived cleaning", v)
			}
		}
	}
	if dropped == 0 {
		t.Fatal("cleaning dropped nothing despite spikes")
	}
}

func TestRushHourFactor(t *testing.T) {
	day := time.Date(2013, 3, 5, 0, 0, 0, 0, time.UTC)
	cases := []struct {
		h, m int
		want float64
	}{
		{6, 0, 1.0}, {8, 0, 0.8}, {9, 0, 1.0},
		{16, 30, 0.75}, {17, 30, 1.0}, {12, 0, 1.0},
	}
	for _, c := range cases {
		at := day.Add(time.Duration(c.h)*time.Hour + time.Duration(c.m)*time.Minute)
		if got := rushHourFactor(at); got != c.want {
			t.Errorf("rushHourFactor(%02d:%02d) = %f, want %f", c.h, c.m, got, c.want)
		}
	}
}

func TestRushHourSlowsRuns(t *testing.T) {
	gen, _, graph := testGenerator(t, Config{Seed: 29})
	rng := rand.New(rand.NewSource(2))
	path, err := graph.ShortestPath(0, roadnet.NodeID(len(graph.Nodes)/3), nil)
	if err != nil {
		t.Skip("no probe path")
	}
	day := time.Date(2013, 3, 5, 0, 0, 0, 0, time.UTC)
	peak := gen.planRun(rng, path, 1, day.Add(8*time.Hour))
	offPeak := gen.planRun(rng, path, 1, day.Add(12*time.Hour))
	if peak.congestion >= offPeak.congestion {
		t.Fatalf("peak congestion %f must be below off-peak %f", peak.congestion, offPeak.congestion)
	}
	// The kinematics honour it: same plan otherwise, peak run is slower.
	a := simulateRun(rand.New(rand.NewSource(3)), peak)
	b := simulateRun(rand.New(rand.NewSource(3)), offPeak)
	// Stop draws differ between plans; compare only when both completed.
	if a.distM > 0 && b.distM > 0 && a.duration <= b.duration {
		t.Logf("warning: peak %s vs off-peak %s (stop draws may differ)", a.duration, b.duration)
	}
}

func TestCarsAccessor(t *testing.T) {
	gen, _, _ := testGenerator(t, Config{Seed: 1, Cars: 5})
	if gen.Cars() != 5 {
		t.Fatalf("Cars = %d", gen.Cars())
	}
}

func TestPerCarHeterogeneity(t *testing.T) {
	// Cars must differ in activity (the paper's Table 3 spans 1790 to
	// 4080 segments per car).
	gen, _, _ := testGenerator(t, Config{Seed: 41, Cars: 6, TripsPerCar: 10})
	counts := map[int]int{}
	for car := 1; car <= 6; car++ {
		counts[car] = len(gen.CarTrips(car))
	}
	min, max := 1<<30, 0
	for _, n := range counts {
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if max == min {
		t.Fatalf("all cars produced %d trips; activity factor not applied", max)
	}
}
