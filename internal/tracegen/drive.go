package tracegen

import (
	"math"
	"math/rand"
	"time"

	"repro/internal/geo"
)

// runPlan is everything the kinematic simulation needs for one customer
// run.
type runPlan struct {
	geom  geo.Polyline
	start time.Time
	noise float64

	limits      []limitSpan // speed limits by along-distance, m/s
	stops       []stopMark  // forced stops (red lights), ascending along
	slows       []slowMark  // local slowdowns (crossings, turns, stops)
	speedOffset float64     // seasonal target-speed offset, m/s
	congestion  float64     // rush-hour multiplier on limits (0 = off)
	style       float64     // driver target-speed factor (0 = neutral)
}

type limitSpan struct {
	from, to float64
	limit    float64 // m/s
}

type stopMark struct {
	along float64
	wait  float64 // seconds standing
}

type slowMark struct {
	along  float64
	radius float64
	factor float64 // multiplier on the local limit
}

// emittedPoint is one event-triggered device record in true order.
type emittedPoint struct {
	pos      geo.XY
	t        time.Time
	speedKmh float64
	fuelMl   float64 // cumulative within the run
	distM    float64 // cumulative within the run
}

type runResult struct {
	points   []emittedPoint
	distM    float64
	fuelMl   float64
	duration time.Duration
}

// limitAt returns the speed limit (m/s) at the along-position.
func (p *runPlan) limitAt(s float64) float64 {
	for _, span := range p.limits {
		if s >= span.from && s < span.to {
			return span.limit
		}
	}
	if n := len(p.limits); n > 0 {
		return p.limits[n-1].limit
	}
	return 40 / 3.6
}

// targetAt returns the desired speed (m/s) at the along-position,
// after slowdown marks and the seasonal offset.
func (p *runPlan) targetAt(s float64) float64 {
	v := p.limitAt(s)
	if p.congestion > 0 {
		v *= p.congestion
	}
	if p.style > 0 {
		v *= p.style
	}
	for _, sl := range p.slows {
		if math.Abs(s-sl.along) <= sl.radius {
			if f := p.limitAt(s) * sl.factor; f < v {
				v = f
			}
		}
	}
	v += p.speedOffset
	if v < 1 {
		v = 1
	}
	return v
}

// Kinematic constants.
const (
	simDT      = 1.0 // s
	maxAccel   = 1.8 // m/s^2
	maxBrake   = 3.0 // m/s^2
	idleBurn   = 0.28
	perMBurn   = 0.055
	accelBurn  = 1.1
	lowSpdBurn = 0.12 // extra ml/s below 10 km/h while moving
)

// Emission thresholds: a route point is generated when driving
// behaviour changes significantly (paper §III) or as a slow heartbeat.
const (
	emitHeadingDeg = 18.0
	emitSpeedKmh   = 8.0
	emitMaxGap     = 45.0 // s
)

// simulateRun integrates the run at 1 Hz and emits event-triggered
// route points. Returned cumulative fuel/dist are within-run.
func simulateRun(rng *rand.Rand, plan runPlan) runResult {
	total := plan.geom.Length()
	if total <= 0 || len(plan.geom) < 2 {
		return runResult{}
	}

	var (
		s, v       float64 // along-position m, speed m/s
		fuel, tSec float64
		nextStop   = 0 // index into plan.stops
		out        []emittedPoint
	)

	lastEmitT := math.Inf(-1)
	lastEmitV := 0.0
	lastHeading := plan.geom.BearingAt(0)

	emit := func() {
		out = append(out, emittedPoint{
			pos:      plan.geom.PointAt(s),
			t:        plan.start.Add(time.Duration(tSec * float64(time.Second))),
			speedKmh: v * 3.6,
			fuelMl:   fuel,
			distM:    s,
		})
		lastEmitT = tSec
		lastEmitV = v
		lastHeading = plan.geom.BearingAt(s)
	}
	emit() // departure point

	standing := 0.0 // remaining stand-still seconds
	for s < total-0.5 {
		if tSec > 4*3600 {
			break // safety valve; runs are minutes long
		}
		target := plan.targetAt(s)

		// Approach control for the next forced stop.
		for nextStop < len(plan.stops) && plan.stops[nextStop].along < s-1 {
			nextStop++
		}
		if standing <= 0 && nextStop < len(plan.stops) {
			dStop := plan.stops[nextStop].along - s
			if dStop <= 3 {
				// Arrived at the stop line: stand for the wait time.
				s = plan.stops[nextStop].along
				v = 0
				standing = plan.stops[nextStop].wait
				nextStop++
			} else {
				// Comfortable braking envelope: v^2 = 2 a (d-2).
				if vb := math.Sqrt(2 * 1.5 * (dStop - 2)); vb < target {
					target = vb
				}
			}
		}

		var a float64
		if standing > 0 {
			standing -= simDT
			v = 0
		} else {
			a = (target - v) / 1.5
			if a > maxAccel {
				a = maxAccel
			}
			if a < -maxBrake {
				a = -maxBrake
			}
			v += a * simDT
			if v < 0 {
				v = 0
			}
		}
		step := v * simDT
		s += step
		if s > total {
			step -= s - total
			s = total
		}
		tSec += simDT

		// Fuel.
		burn := idleBurn
		if v > 0.5 {
			burn += perMBurn * step / simDT
			if a > 0 {
				burn += accelBurn * a
			}
			if v < 10/3.6 {
				burn += lowSpdBurn
			}
		}
		fuel += burn * simDT

		// Emission decision.
		heading := lastHeading
		if step > 0.5 {
			heading = plan.geom.BearingAt(s)
		}
		switch {
		case geo.AngleDiff(heading, lastHeading) > emitHeadingDeg && step > 0.5:
			emit()
		case math.Abs(v-lastEmitV)*3.6 > emitSpeedKmh:
			emit()
		case tSec-lastEmitT >= emitMaxGap:
			emit()
		}
	}
	// Arrival point: come to rest.
	v = 0
	if len(out) == 0 || out[len(out)-1].distM < total-0.1 || out[len(out)-1].speedKmh > 0.1 {
		emit()
	}

	return runResult{
		points:   out,
		distM:    total,
		fuelMl:   fuel,
		duration: time.Duration(tSec * float64(time.Second)),
	}
}
