package grid

import (
	"strings"
	"testing"
)

// FuzzParseCellID throws arbitrary byte strings at the cell-id parser.
// It must never panic; on success the id must re-render and re-parse to
// the same value (String∘Parse is the identity on accepted inputs),
// indices must be non-negative, and inputs containing sign characters
// or non-digit index bytes must be rejected — the pre-fix strconv.Atoi
// parser accepted "c+7.12" and "c-0.-0".
func FuzzParseCellID(f *testing.F) {
	f.Add("c007.012")
	f.Add("c7.12")
	f.Add("c+7.12")
	f.Add("c-1.2")
	f.Add("c999999999.999999999")
	f.Add("c0000000007.1") // 10-digit index: overflow guard
	f.Add("c.")
	f.Add("c1.")
	f.Add("")
	f.Add("x1.2")

	f.Fuzz(func(t *testing.T, s string) {
		c, err := ParseCellID(s)
		if err != nil {
			return
		}
		if c.I < 0 || c.J < 0 {
			t.Fatalf("ParseCellID(%q) produced negative indices %+v", s, c)
		}
		if strings.ContainsAny(s, "+- ") {
			t.Fatalf("ParseCellID(%q) accepted a sign/space character", s)
		}
		back, err := ParseCellID(c.String())
		if err != nil {
			t.Fatalf("round trip of %q: re-parse of %q failed: %v", s, c.String(), err)
		}
		if back != c {
			t.Fatalf("round trip of %q: %+v -> %q -> %+v", s, c, c.String(), back)
		}
	})
}
