package grid

import (
	"math"
	"testing"

	"repro/internal/digiroad"
	"repro/internal/geo"
	"repro/internal/roadnet"
	"repro/internal/stats"
)

func testGrid(t *testing.T) *Grid {
	t.Helper()
	g, err := New(geo.R(0, 0, 1000, 600), 200)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewValidation(t *testing.T) {
	if _, err := New(geo.Rect{}, 200); err == nil {
		t.Fatal("zero area accepted")
	}
	g, err := New(geo.R(0, 0, 400, 400), 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.CellM != DefaultCellMeters {
		t.Fatalf("default cell = %f", g.CellM)
	}
}

func TestCellOf(t *testing.T) {
	g := testGrid(t)
	cases := []struct {
		p    geo.XY
		want CellID
		ok   bool
	}{
		{geo.V(0, 0), CellID{0, 0}, true},
		{geo.V(199, 199), CellID{0, 0}, true},
		{geo.V(200, 0), CellID{1, 0}, true},
		{geo.V(999, 599), CellID{4, 2}, true},
		{geo.V(1000, 600), CellID{5, 3}, true}, // boundary clamps into frame
		{geo.V(-1, 0), CellID{}, false},
		{geo.V(0, 601), CellID{}, false},
	}
	for _, c := range cases {
		got, ok := g.CellOf(c.p)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("CellOf(%v) = %v,%v want %v,%v", c.p, got, ok, c.want, c.ok)
		}
	}
}

func TestCellRectRoundTrip(t *testing.T) {
	g := testGrid(t)
	for i := 0; i < 5; i++ {
		for j := 0; j < 3; j++ {
			id := CellID{i, j}
			r := g.CellRect(id)
			if r.Width() != 200 || r.Height() != 200 {
				t.Fatalf("cell %v rect %v", id, r)
			}
			back, ok := g.CellOf(g.CellCenter(id))
			if !ok || back != id {
				t.Fatalf("centre of %v maps to %v", id, back)
			}
		}
	}
}

func TestCellIDString(t *testing.T) {
	if (CellID{3, 12}).String() != "c003.012" {
		t.Fatalf("String = %q", CellID{3, 12}.String())
	}
}

func TestAggregator(t *testing.T) {
	g := testGrid(t)
	a := NewAggregator(g)
	if !a.Add(geo.V(50, 50), 30) || !a.Add(geo.V(60, 60), 40) {
		t.Fatal("in-area points rejected")
	}
	if a.Add(geo.V(-100, 0), 30) {
		t.Fatal("out-of-area point accepted")
	}
	if a.NumNonEmpty() != 1 {
		t.Fatalf("non-empty = %d", a.NumNonEmpty())
	}
	c := a.Cell(CellID{0, 0})
	if c == nil || c.Speed.N() != 2 || math.Abs(c.Speed.Mean()-35) > 1e-12 {
		t.Fatalf("cell = %+v", c)
	}
	if a.Cell(CellID{4, 2}) != nil {
		t.Fatal("empty cell must be nil")
	}
	a.Add(geo.V(900, 500), 50)
	cells := a.Cells()
	if len(cells) != 2 || cells[0].ID != (CellID{0, 0}) || cells[1].ID != (CellID{4, 2}) {
		t.Fatalf("cells order: %v %v", cells[0].ID, cells[1].ID)
	}
}

func TestAttachFeatures(t *testing.T) {
	db := digiroad.NewDatabase(digiroad.OuluOrigin)
	// A junction of three streets at (100, 100) inside cell (0,0).
	for _, coords := range [][]float64{
		{100, 100, 100, 300}, {100, 100, 300, 100}, {100, 100, 100, -100},
	} {
		if _, err := db.AddElement(digiroad.TrafficElement{
			Geom: geo.Line(coords...), Class: digiroad.ClassLocal, SpeedLimitKmh: 40,
		}); err != nil {
			t.Fatal(err)
		}
	}
	db.AddObject(digiroad.PointObject{Kind: digiroad.TrafficLight, Pos: geo.V(100, 100)})
	db.AddObject(digiroad.PointObject{Kind: digiroad.BusStop, Pos: geo.V(150, 100)})
	db.AddObject(digiroad.PointObject{Kind: digiroad.PedestrianCrossing, Pos: geo.V(100, 150)})
	db.AddObject(digiroad.PointObject{Kind: digiroad.PedestrianCrossing, Pos: geo.V(500, 500)})
	graph, err := roadnet.Build(db)
	if err != nil {
		t.Fatal(err)
	}

	g := testGrid(t)
	a := NewAggregator(g)
	a.Add(geo.V(110, 110), 25)
	a.AttachFeatures(db, graph)
	c := a.Cell(CellID{0, 0})
	want := CellFeatures{TrafficLights: 1, BusStops: 1, PedestrianCrossings: 1, Junctions: 1}
	if c.Features != want {
		t.Fatalf("features = %+v, want %+v", c.Features, want)
	}
}

func TestLMMGroupsSufficientStats(t *testing.T) {
	g := testGrid(t)
	a := NewAggregator(g)
	speeds := []float64{10, 20, 30, 40}
	for _, v := range speeds {
		a.Add(geo.V(50, 50), v)
	}
	a.Add(geo.V(500, 500), 25) // singleton cell

	groups := a.LMMGroups()
	if len(groups) != 2 {
		t.Fatalf("groups = %d", len(groups))
	}
	var big *stats.Group
	for _, gr := range groups {
		if gr.N == 4 {
			big = gr
		}
	}
	if big == nil {
		t.Fatal("4-observation group missing")
	}
	if math.Abs(big.Sum-100) > 1e-9 {
		t.Fatalf("sum = %f", big.Sum)
	}
	wantSumSq := 100.0 + 400 + 900 + 1600
	if math.Abs(big.SumSq-wantSumSq) > 1e-6 {
		t.Fatalf("sumsq = %f, want %f", big.SumSq, wantSumSq)
	}
}

func TestConditionalStats(t *testing.T) {
	g := testGrid(t)
	a := NewAggregator(g)
	a.Add(geo.V(50, 50), 20)
	a.Add(geo.V(250, 50), 40)
	a.Add(geo.V(450, 50), 50)
	cells := a.Cells()
	cells[0].Features.TrafficLights = 2

	withLights := ConditionalStats(cells, func(f CellFeatures) bool { return f.TrafficLights > 0 })
	if withLights.N != 1 || withLights.Mean != 20 {
		t.Fatalf("with lights: %+v", withLights)
	}
	noLights := ConditionalStats(cells, func(f CellFeatures) bool { return f.TrafficLights == 0 })
	if noLights.N != 2 || noLights.Mean != 45 {
		t.Fatalf("no lights: %+v", noLights)
	}
	v := VarianceOfMeans(cells, func(f CellFeatures) bool { return f.TrafficLights == 0 })
	if math.Abs(v-50) > 1e-9 {
		t.Fatalf("variance of means = %f, want 50", v)
	}
}

func TestNumCells(t *testing.T) {
	g := testGrid(t) // 1000x600 at 200 m
	if got := g.NumCells(); got != 6*4 {
		t.Fatalf("NumCells = %d, want 24", got)
	}
}

// TestCellOfMaxEdges pins the boundary contract: points exactly on the
// area's max edges are inside (Rect.Contains is closed) and clamp into
// the last cell of their row/column, never out of frame.
func TestCellOfMaxEdges(t *testing.T) {
	g := testGrid(t) // area (0,0)-(1000,600), nx=6, ny=4
	cases := []struct {
		p    geo.XY
		want CellID
	}{
		{geo.V(1000, 300), CellID{5, 1}}, // max-X edge
		{geo.V(500, 600), CellID{2, 3}},  // max-Y edge
		{geo.V(1000, 600), CellID{5, 3}}, // max corner
		{geo.V(1000, 0), CellID{5, 0}},
		{geo.V(0, 600), CellID{0, 3}},
	}
	for _, c := range cases {
		got, ok := g.CellOf(c.p)
		if !ok {
			t.Errorf("CellOf(%v) rejected a boundary point", c.p)
			continue
		}
		if got != c.want {
			t.Errorf("CellOf(%v) = %v, want %v", c.p, got, c.want)
		}
		if got.I >= g.nx || got.J >= g.ny {
			t.Errorf("CellOf(%v) = %v escapes the %dx%d frame", c.p, got, g.nx, g.ny)
		}
	}
}

// TestCellOfNumCellsConsistency: for areas that are not a multiple of
// the cell size, every in-area point (including all four edges) must
// land in a cell whose index is within the NumCells frame, and CellRect
// must contain the point.
func TestCellOfNumCellsConsistency(t *testing.T) {
	for _, dims := range [][2]float64{{1000, 600}, {1010, 590}, {333, 667}, {199, 201}} {
		g, err := New(geo.R(0, 0, dims[0], dims[1]), 200)
		if err != nil {
			t.Fatal(err)
		}
		if g.NumCells() != g.nx*g.ny {
			t.Fatalf("area %v: NumCells = %d, want nx*ny = %d", dims, g.NumCells(), g.nx*g.ny)
		}
		probe := []geo.XY{
			geo.V(0, 0), geo.V(dims[0], 0), geo.V(0, dims[1]), geo.V(dims[0], dims[1]),
			geo.V(dims[0]/2, dims[1]/2), geo.V(dims[0]-1e-9, dims[1]-1e-9),
		}
		for _, p := range probe {
			id, ok := g.CellOf(p)
			if !ok {
				t.Fatalf("area %v: CellOf(%v) rejected in-area point", dims, p)
			}
			if id.I < 0 || id.J < 0 || id.I >= g.nx || id.J >= g.ny {
				t.Fatalf("area %v: CellOf(%v) = %v outside %dx%d frame", dims, p, id, g.nx, g.ny)
			}
			// The frame always extends to cover clamped edge points, so a
			// point's cell rectangle must contain it.
			if r := g.CellRect(id); !r.Contains(p) {
				t.Fatalf("area %v: point %v not in its cell rect %v", dims, p, r)
			}
		}
	}
}

func TestParseCellIDRoundTrip(t *testing.T) {
	ids := []CellID{{0, 0}, {3, 12}, {123, 7}, {1234, 5678}}
	for _, id := range ids {
		got, err := ParseCellID(id.String())
		if err != nil || got != id {
			t.Errorf("ParseCellID(%q) = %v, %v", id.String(), got, err)
		}
	}
	// Unpadded forms parse to the same cell as padded ones.
	if got, err := ParseCellID("c7.12"); err != nil || got != (CellID{7, 12}) {
		t.Errorf("ParseCellID(c7.12) = %v, %v", got, err)
	}
	for _, bad := range []string{"", "c", "c1", "c1.", "c.2", "1.2", "c-1.2", "c1.-2", "cx.y", "c1.2.3", "c1.2x"} {
		if _, err := ParseCellID(bad); err == nil {
			t.Errorf("ParseCellID(%q) accepted", bad)
		}
	}
}

func TestAggregatorMerge(t *testing.T) {
	g := testGrid(t)
	speeds := []struct {
		p geo.XY
		v float64
	}{
		{geo.V(50, 50), 10}, {geo.V(60, 60), 20}, {geo.V(70, 70), 30},
		{geo.V(500, 500), 25}, {geo.V(510, 510), 35}, {geo.V(900, 100), 50},
	}
	// Reference: one sequential aggregation.
	want := NewAggregator(g)
	for _, s := range speeds {
		want.Add(s.p, s.v)
	}
	// Sharded: alternate points across two aggregators, then merge.
	a, b := NewAggregator(g), NewAggregator(g)
	for i, s := range speeds {
		if i%2 == 0 {
			a.Add(s.p, s.v)
		} else {
			b.Add(s.p, s.v)
		}
	}
	a.Merge(b)
	if a.NumNonEmpty() != want.NumNonEmpty() {
		t.Fatalf("merged cells = %d, want %d", a.NumNonEmpty(), want.NumNonEmpty())
	}
	for _, wc := range want.Cells() {
		mc := a.Cell(wc.ID)
		if mc == nil || mc.Speed.N() != wc.Speed.N() {
			t.Fatalf("cell %v: merged %+v, want %+v", wc.ID, mc, wc)
		}
		if math.Abs(mc.Speed.Mean()-wc.Speed.Mean()) > 1e-9 {
			t.Fatalf("cell %v: merged mean %f, want %f", wc.ID, mc.Speed.Mean(), wc.Speed.Mean())
		}
		if mc.Speed.N() >= 2 && math.Abs(mc.Speed.Variance()-wc.Speed.Variance()) > 1e-9 {
			t.Fatalf("cell %v: merged var %f, want %f", wc.ID, mc.Speed.Variance(), wc.Speed.Variance())
		}
		if mc.Speed.Min() != wc.Speed.Min() || mc.Speed.Max() != wc.Speed.Max() {
			t.Fatalf("cell %v: merged extrema differ", wc.ID)
		}
	}
}

func TestLMMGroupsWithFeatures(t *testing.T) {
	g := testGrid(t)
	a := NewAggregator(g)
	a.Add(geo.V(50, 50), 20)
	a.Add(geo.V(50, 60), 30)
	cells := a.Cells()
	cells[0].Features = CellFeatures{TrafficLights: 2, BusStops: 1, PedestrianCrossings: 3, Junctions: 4}
	groups := a.LMMGroupsWithFeatures()
	if len(groups) != 1 {
		t.Fatalf("groups = %d", len(groups))
	}
	want := []float64{2, 1, 3, 4}
	for i, v := range want {
		if groups[0].Covariates[i] != v {
			t.Fatalf("covariates = %v, want %v", groups[0].Covariates, want)
		}
	}
	if groups[0].N != 2 || math.Abs(groups[0].Sum-50) > 1e-9 {
		t.Fatalf("sufficient stats: %+v", groups[0].Group)
	}
}
