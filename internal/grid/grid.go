// Package grid implements the paper's 200 m × 200 m analysis grid
// (§V): point speeds are aggregated per cell, map features are counted
// per cell, and the cells feed the Table 5 statistics and the mixed
// model of Figs 7-9.
package grid

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/digiroad"
	"repro/internal/geo"
	"repro/internal/roadnet"
	"repro/internal/stats"
)

// DefaultCellMeters is the paper's grid dimension.
const DefaultCellMeters = 200

// Grid is a fixed, even-celled partition of a study area.
type Grid struct {
	Area  geo.Rect
	CellM float64
	nx    int
	ny    int
}

// New builds a grid over area. cellM <= 0 selects the paper's 200 m.
func New(area geo.Rect, cellM float64) (*Grid, error) {
	if cellM <= 0 {
		cellM = DefaultCellMeters
	}
	if area.Area() <= 0 {
		return nil, fmt.Errorf("grid: study area must have positive extent, got %+v", area)
	}
	g := &Grid{Area: area, CellM: cellM}
	g.nx = int(area.Width()/cellM) + 1
	g.ny = int(area.Height()/cellM) + 1
	return g, nil
}

// CellID addresses one cell by column (I, west to east) and row (J,
// south to north).
type CellID struct {
	I, J int
}

// String renders the cell as "cI.J", the group label used by the mixed
// model.
func (c CellID) String() string { return fmt.Sprintf("c%03d.%03d", c.I, c.J) }

// ParseCellID parses the String form back into a CellID, so the label
// doubles as a stable external key (mixed-model group names, serving
// API paths). It accepts any non-negative digit runs, zero-padded or
// not: ParseCellID("c7.12") == ParseCellID("c007.012").
func ParseCellID(s string) (CellID, error) {
	bad := func() (CellID, error) {
		return CellID{}, fmt.Errorf("grid: bad cell id %q (want cI.J)", s)
	}
	if len(s) < 4 || s[0] != 'c' {
		return bad()
	}
	dot := strings.IndexByte(s, '.')
	if dot < 2 || dot == len(s)-1 {
		return bad()
	}
	i, ok := parseCellIndex(s[1:dot])
	if !ok {
		return bad()
	}
	j, ok := parseCellIndex(s[dot+1:])
	if !ok {
		return bad()
	}
	return CellID{I: i, J: j}, nil
}

// parseCellIndex parses a non-negative decimal cell index from digits
// only. Unlike strconv.Atoi it rejects sign prefixes ("+7"), so every
// accepted id is one CellID.String could have produced (up to leading
// zeros) — the round-trip property the invariant checker and fuzzers
// verify.
func parseCellIndex(s string) (int, bool) {
	if s == "" || len(s) > 9 { // 9 digits cannot overflow int32
		return 0, false
	}
	n := 0
	for i := 0; i < len(s); i++ {
		d := s[i] - '0'
		if d > 9 {
			return 0, false
		}
		n = n*10 + int(d)
	}
	return n, true
}

// NumCells returns the total cell count of the grid frame.
func (g *Grid) NumCells() int { return g.nx * g.ny }

// CellOf locates the cell containing p; ok is false outside the area.
func (g *Grid) CellOf(p geo.XY) (CellID, bool) {
	if !g.Area.Contains(p) {
		return CellID{}, false
	}
	i := int((p.X - g.Area.MinX) / g.CellM)
	j := int((p.Y - g.Area.MinY) / g.CellM)
	if i >= g.nx {
		i = g.nx - 1
	}
	if j >= g.ny {
		j = g.ny - 1
	}
	return CellID{I: i, J: j}, true
}

// CellRect returns the cell's rectangle.
func (g *Grid) CellRect(id CellID) geo.Rect {
	minX := g.Area.MinX + float64(id.I)*g.CellM
	minY := g.Area.MinY + float64(id.J)*g.CellM
	return geo.R(minX, minY, minX+g.CellM, minY+g.CellM)
}

// CellCenter returns the cell's midpoint.
func (g *Grid) CellCenter(id CellID) geo.XY { return g.CellRect(id).Center() }

// CellFeatures is the paper's per-cell feature vector: traffic lights,
// bus stops, pedestrian crossings, and (non-pedestrian) crossings,
// i.e. junctions.
type CellFeatures struct {
	TrafficLights       int
	BusStops            int
	PedestrianCrossings int
	Junctions           int
}

// Cell aggregates one cell's observations and features.
type Cell struct {
	ID       CellID
	Speed    stats.Welford
	Features CellFeatures
}

// Aggregator accumulates point speeds into cells.
type Aggregator struct {
	Grid  *Grid
	cells map[CellID]*Cell
}

// NewAggregator prepares an empty aggregation.
func NewAggregator(g *Grid) *Aggregator {
	return &Aggregator{Grid: g, cells: map[CellID]*Cell{}}
}

// Add folds one point speed into its cell; points outside the study
// area are ignored and reported false.
func (a *Aggregator) Add(p geo.XY, speedKmh float64) bool {
	id, ok := a.Grid.CellOf(p)
	if !ok {
		return false
	}
	c := a.cells[id]
	if c == nil {
		c = &Cell{ID: id}
		a.cells[id] = c
	}
	c.Speed.Add(speedKmh)
	return true
}

// Merge folds another aggregation over the same grid frame into a:
// per-cell speed moments combine via Welford merge and feature counts
// are taken from whichever side has them attached. This is what makes
// the aggregation shardable — per-worker (or per-epoch) aggregators
// merge into the same totals a single sequential pass produces, up to
// float rounding in the moments.
func (a *Aggregator) Merge(src *Aggregator) {
	if src == nil {
		return
	}
	for id, sc := range src.cells {
		c := a.cells[id]
		if c == nil {
			cp := *sc
			a.cells[id] = &cp
			continue
		}
		c.Speed.Merge(sc.Speed)
		if c.Features == (CellFeatures{}) {
			c.Features = sc.Features
		}
	}
}

// Cell returns the aggregated cell, or nil when it has no data.
func (a *Aggregator) Cell(id CellID) *Cell { return a.cells[id] }

// Cells returns the non-empty cells ordered by ID. The paper's
// regression excludes cells having no measurement points, which this
// ordering gives directly.
func (a *Aggregator) Cells() []*Cell {
	out := make([]*Cell, 0, len(a.cells))
	for _, c := range a.cells {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ID.I != out[j].ID.I {
			return out[i].ID.I < out[j].ID.I
		}
		return out[i].ID.J < out[j].ID.J
	})
	return out
}

// NumNonEmpty returns the number of cells holding at least one point.
func (a *Aggregator) NumNonEmpty() int { return len(a.cells) }

// AttachFeatures counts the map features inside every non-empty cell.
func (a *Aggregator) AttachFeatures(db *digiroad.Database, graph *roadnet.Graph) {
	for _, c := range a.cells {
		r := a.Grid.CellRect(c.ID)
		fc := db.CountFeatures(r)
		c.Features = CellFeatures{
			TrafficLights:       fc.TrafficLights,
			BusStops:            fc.BusStops,
			PedestrianCrossings: fc.PedestrianCrossings,
			Junctions:           len(graph.JunctionsIn(r)),
		}
	}
}

// LMMGroups exports the cells as mixed-model groups (one group per
// cell, observations are the point speeds).
func (a *Aggregator) LMMGroups() []*stats.Group {
	var out []*stats.Group
	for _, c := range a.Cells() {
		g := &stats.Group{Name: c.ID.String()}
		// Welford tracks streaming moments; rebuild the sufficient
		// statistics the LMM needs.
		n := c.Speed.N()
		mean := c.Speed.Mean()
		variance := c.Speed.Variance()
		g.N = n
		g.Sum = mean * float64(n)
		if n >= 2 {
			g.SumSq = variance*float64(n-1) + g.Sum*g.Sum/float64(n)
		} else {
			g.SumSq = mean * mean
		}
		out = append(out, g)
	}
	return out
}

// ConditionalStats computes Table 5: mean-speed statistics over cells
// grouped by a feature predicate.
func ConditionalStats(cells []*Cell, pred func(CellFeatures) bool) stats.Summary {
	var means []float64
	for _, c := range cells {
		if pred(c.Features) {
			means = append(means, c.Speed.Mean())
		}
	}
	return stats.Summarize(means)
}

// VarianceOfMeans returns the unbiased variance of per-cell mean
// speeds for cells matching the predicate (the Table 5 "var" row).
func VarianceOfMeans(cells []*Cell, pred func(CellFeatures) bool) float64 {
	var means []float64
	for _, c := range cells {
		if pred(c.Features) {
			means = append(means, c.Speed.Mean())
		}
	}
	return stats.Variance(means)
}

// LMMGroupsWithFeatures exports the cells as mixed-model groups with
// their feature counts as group-level covariates, in the order
// {traffic lights, bus stops, pedestrian crossings, junctions} — the
// paper's model 2 design. AttachFeatures must have run first.
func (a *Aggregator) LMMGroupsWithFeatures() []*stats.GroupX {
	var out []*stats.GroupX
	for _, c := range a.Cells() {
		base := &stats.Group{Name: c.ID.String()}
		n := c.Speed.N()
		mean := c.Speed.Mean()
		variance := c.Speed.Variance()
		base.N = n
		base.Sum = mean * float64(n)
		if n >= 2 {
			base.SumSq = variance*float64(n-1) + base.Sum*base.Sum/float64(n)
		} else {
			base.SumSq = mean * mean
		}
		out = append(out, &stats.GroupX{
			Group: *base,
			Covariates: []float64{
				float64(c.Features.TrafficLights),
				float64(c.Features.BusStops),
				float64(c.Features.PedestrianCrossings),
				float64(c.Features.Junctions),
			},
		})
	}
	return out
}
