// Package trace defines the taxi-trace data model: trips made of route
// points carrying GPS positions and OBD-style measurements, in the
// shape produced by the paper's Driveco on-board devices. A trip is one
// run between two consecutive engine-off events; route points are
// emitted on significant driving-behaviour changes rather than at a
// fixed rate.
package trace

import (
	"fmt"
	"time"

	"repro/internal/geo"
)

// RoutePoint is one measurement record. Points carry both a device
// sequence number (PointID) and a timestamp; transmission latency can
// deliver them out of order, and either field may be corrupted, which
// package clean repairs.
type RoutePoint struct {
	PointID  int       // device-assigned sequence number within the trip
	TripID   int64     // owning trip
	Pos      geo.XY    // projected position, metres
	Time     time.Time // device timestamp
	SpeedKmh float64   // instantaneous speed from OBD
	FuelMl   float64   // cumulative fuel used since trip start, millilitres
	DistM    float64   // cumulative odometer distance since trip start, metres
}

// Trip is a run between two consecutive engine-off events, with its
// route points in *arrival order* (which may differ from true order
// until cleaned).
type Trip struct {
	ID     int64
	CarID  int
	Points []RoutePoint

	// Recorded trip-level measurements from the device.
	RecordedStart    time.Time
	RecordedEnd      time.Time
	RecordedDistM    float64
	RecordedFuelMl   float64
	RecordedDuration time.Duration

	// timeSorted records that Points are in non-decreasing time order,
	// letting StartTime/EndTime answer in O(1) instead of scanning.
	// Only producers that guarantee the order (cleaning realignment,
	// segment slicing of cleaned trips, columnar materialisation) set
	// it; it is cleared implicitly by constructing a new Trip, never by
	// mutation, so holders of a marked trip must not reorder Points.
	timeSorted bool
}

// MarkTimeSorted asserts that Points are in non-decreasing time order.
// Call it only when the order is guaranteed: StartTime and EndTime
// trust the mark.
func (t *Trip) MarkTimeSorted() { t.timeSorted = true }

// TimeSorted reports whether the trip has been marked time-ordered.
func (t *Trip) TimeSorted() bool { return t.timeSorted }

// Validate checks basic trip integrity (non-empty, consistent trip IDs).
func (t *Trip) Validate() error {
	if len(t.Points) == 0 {
		return fmt.Errorf("trace: trip %d has no route points", t.ID)
	}
	for i := range t.Points {
		if t.Points[i].TripID != t.ID {
			return fmt.Errorf("trace: trip %d contains point of trip %d", t.ID, t.Points[i].TripID)
		}
	}
	return nil
}

// Clone deep-copies the trip.
func (t *Trip) Clone() *Trip {
	out := *t
	out.Points = append([]RoutePoint(nil), t.Points...)
	return &out
}

// Geometry returns the point positions as a polyline, in the current
// point order.
func (t *Trip) Geometry() geo.Polyline {
	return t.AppendGeometry(make(geo.Polyline, 0, len(t.Points)))
}

// AppendGeometry appends the point positions to dst, letting hot loops
// reuse one polyline buffer across trips.
func (t *Trip) AppendGeometry(dst geo.Polyline) geo.Polyline {
	for i := range t.Points {
		dst = append(dst, t.Points[i].Pos)
	}
	return dst
}

// PathLength returns the sum of distances between consecutive points in
// the given order.
func PathLength(points []RoutePoint) float64 {
	var total float64
	for i := 1; i < len(points); i++ {
		total += points[i-1].Pos.Dist(points[i].Pos)
	}
	return total
}

// Duration returns the span between the first and last point
// timestamps in the current order (zero for trips with <2 points).
func (t *Trip) Duration() time.Duration {
	if len(t.Points) < 2 {
		return 0
	}
	return t.Points[len(t.Points)-1].Time.Sub(t.Points[0].Time)
}

// StartTime returns the earliest point timestamp. O(1) on trips
// marked time-sorted (everything downstream of cleaning), O(n)
// otherwise.
func (t *Trip) StartTime() time.Time {
	if len(t.Points) == 0 {
		return time.Time{}
	}
	if t.timeSorted {
		return t.Points[0].Time
	}
	min := t.Points[0].Time
	for _, p := range t.Points[1:] {
		if p.Time.Before(min) {
			min = p.Time
		}
	}
	return min
}

// EndTime returns the latest point timestamp. O(1) on trips marked
// time-sorted, O(n) otherwise.
func (t *Trip) EndTime() time.Time {
	if len(t.Points) == 0 {
		return time.Time{}
	}
	if t.timeSorted {
		return t.Points[len(t.Points)-1].Time
	}
	max := t.Points[0].Time
	for _, p := range t.Points[1:] {
		if p.Time.After(max) {
			max = p.Time
		}
	}
	return max
}

// Key uniquely identifies a trip segment or transition: the paper uses
// trip id together with the segment start time.
type Key struct {
	TripID int64
	Start  time.Time
}

// Key returns the trip's identification key.
func (t *Trip) Key() Key { return Key{TripID: t.ID, Start: t.StartTime()} }

// String renders the key compactly.
func (k Key) String() string {
	return fmt.Sprintf("trip %d @ %s", k.TripID, k.Start.Format(time.RFC3339))
}
