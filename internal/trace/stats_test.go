package trace

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/geo"
)

// statsTrip builds: drive 3 points (30 km/h), stand 2 points, drive 2.
func statsTrip() *Trip {
	tr := &Trip{ID: 1, CarID: 1}
	add := func(x, speed, fuel, dist float64, at time.Time) {
		tr.Points = append(tr.Points, RoutePoint{
			PointID: len(tr.Points) + 1, TripID: 1,
			Pos: geo.V(x, 0), Time: at,
			SpeedKmh: speed, FuelMl: fuel, DistM: dist,
		})
	}
	at := t0
	// Moving at 30 km/h, 250 m / 30 s apart.
	add(0, 30, 0, 0, at)
	at = at.Add(30 * time.Second)
	add(250, 30, 20, 250, at)
	at = at.Add(30 * time.Second)
	add(500, 30, 40, 500, at)
	// Stand for 2 intervals of 40 s.
	at = at.Add(40 * time.Second)
	add(500, 0, 50, 500, at)
	at = at.Add(40 * time.Second)
	add(500, 0, 60, 500, at)
	// Move again.
	at = at.Add(30 * time.Second)
	add(750, 30, 80, 750, at)
	return tr
}

func TestComputeStats(t *testing.T) {
	s := ComputeStats(statsTrip())
	if s.Points != 6 {
		t.Fatalf("points = %d", s.Points)
	}
	if s.PathM != 750 || s.OdometerM != 750 || s.OdometerGapM != 0 {
		t.Fatalf("distances: %+v", s)
	}
	if s.FuelMl != 80 {
		t.Fatalf("fuel = %f", s.FuelMl)
	}
	if s.Stops != 1 {
		t.Fatalf("stops = %d, want 1 (one maximal idle run)", s.Stops)
	}
	// Idle: the stand point intervals. The 3rd point (moving) covers the
	// 40 s until the first stand point, so idle = 40+30? No: idle counts
	// intervals whose *starting* point stands: points 4 and 5 -> 40+30 s.
	if s.IdleTime != 70*time.Second {
		t.Fatalf("idle = %s", s.IdleTime)
	}
	if s.MovingTime != s.Duration-s.IdleTime {
		t.Fatalf("moving %s + idle %s != duration %s", s.MovingTime, s.IdleTime, s.Duration)
	}
	if s.MaxKmh != 30 {
		t.Fatalf("max = %f", s.MaxKmh)
	}
	// Time-weighted mean: 30 km/h for 100 s of the 170 s total.
	want := 30 * 100.0 / 170.0
	if math.Abs(s.MeanKmh-want) > 1e-9 {
		t.Fatalf("mean = %f, want %f", s.MeanKmh, want)
	}
	if !strings.Contains(s.String(), "stops") {
		t.Fatalf("String = %q", s.String())
	}
}

func TestComputeStatsOdometerGap(t *testing.T) {
	tr := statsTrip()
	// The odometer saw 300 m more than the geometry (GPS outage).
	tr.Points[len(tr.Points)-1].DistM += 300
	s := ComputeStats(tr)
	if math.Abs(s.OdometerGapM-300) > 1e-9 {
		t.Fatalf("gap = %f, want 300", s.OdometerGapM)
	}
}

func TestComputeStatsDegenerate(t *testing.T) {
	s := ComputeStats(&Trip{ID: 1})
	if s.Points != 0 || s.PathM != 0 || s.Stops != 0 {
		t.Fatalf("empty stats = %+v", s)
	}
	one := &Trip{ID: 1, Points: []RoutePoint{{PointID: 1, TripID: 1, Time: t0}}}
	s = ComputeStats(one)
	if s.Points != 1 || s.Duration != 0 {
		t.Fatalf("single stats = %+v", s)
	}
}
