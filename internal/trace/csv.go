package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"repro/internal/geo"
)

// CSV layout, one route point per row, grouped by trip:
//
//	car_id,trip_id,point_id,unix_ms,lon,lat,speed_kmh,fuel_ml,dist_m
//
// Rows preserve arrival order within a trip.

var csvHeader = []string{"car_id", "trip_id", "point_id", "unix_ms", "lon", "lat", "speed_kmh", "fuel_ml", "dist_m"}

// WriteCSV serialises trips to w using proj to convert positions to
// WGS84.
func WriteCSV(w io.Writer, trips []*Trip, proj *geo.Projection) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for _, t := range trips {
		for i := range t.Points {
			p := &t.Points[i]
			ll := proj.ToPoint(p.Pos)
			rec := []string{
				strconv.Itoa(t.CarID),
				strconv.FormatInt(t.ID, 10),
				strconv.Itoa(p.PointID),
				strconv.FormatInt(p.Time.UnixMilli(), 10),
				strconv.FormatFloat(ll.Lon, 'f', 7, 64),
				strconv.FormatFloat(ll.Lat, 'f', 7, 64),
				strconv.FormatFloat(p.SpeedKmh, 'f', 2, 64),
				strconv.FormatFloat(p.FuelMl, 'f', 1, 64),
				strconv.FormatFloat(p.DistM, 'f', 1, 64),
			}
			if err := cw.Write(rec); err != nil {
				return fmt.Errorf("trace: write point %d/%d: %w", t.ID, p.PointID, err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses trips from r, grouping rows by trip id and keeping row
// order within each trip. Trips are returned ordered by (car, trip id).
func ReadCSV(r io.Reader, proj *geo.Projection) ([]*Trip, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	// Fields are copied into RoutePoint values before the next Read, so
	// the record slice and its backing string can be reused — one
	// allocation per row instead of two.
	cr.ReuseRecord = true
	head, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	if len(head) != len(csvHeader) || head[0] != csvHeader[0] {
		return nil, fmt.Errorf("trace: unexpected header %v", head)
	}
	byTrip := map[int64]*Trip{}
	line := 1
	totalPts := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: csv read: %w", err)
		}
		line++
		pt, carID, err := parsePointRecord(rec, proj)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		t := byTrip[pt.TripID]
		if t == nil {
			t = &Trip{ID: pt.TripID, CarID: carID}
			// Presize from the running mean trip size: rows arrive
			// grouped by trip, so by the time a later trip starts the
			// mean is a good estimate and append growth is avoided.
			est := 16
			if len(byTrip) > 0 {
				if avg := totalPts / len(byTrip); avg > est {
					est = avg
				}
			}
			t.Points = make([]RoutePoint, 0, est)
			byTrip[pt.TripID] = t
		}
		t.Points = append(t.Points, pt)
		totalPts++
	}
	out := make([]*Trip, 0, len(byTrip))
	for _, t := range byTrip {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].CarID != out[j].CarID {
			return out[i].CarID < out[j].CarID
		}
		return out[i].ID < out[j].ID
	})
	return out, nil
}

func parsePointRecord(rec []string, proj *geo.Projection) (RoutePoint, int, error) {
	carID, err := strconv.Atoi(rec[0])
	if err != nil {
		return RoutePoint{}, 0, fmt.Errorf("car_id: %w", err)
	}
	tripID, err := strconv.ParseInt(rec[1], 10, 64)
	if err != nil {
		return RoutePoint{}, 0, fmt.Errorf("trip_id: %w", err)
	}
	pointID, err := strconv.Atoi(rec[2])
	if err != nil {
		return RoutePoint{}, 0, fmt.Errorf("point_id: %w", err)
	}
	unixMs, err := strconv.ParseInt(rec[3], 10, 64)
	if err != nil {
		return RoutePoint{}, 0, fmt.Errorf("unix_ms: %w", err)
	}
	lon, err := strconv.ParseFloat(rec[4], 64)
	if err != nil {
		return RoutePoint{}, 0, fmt.Errorf("lon: %w", err)
	}
	lat, err := strconv.ParseFloat(rec[5], 64)
	if err != nil {
		return RoutePoint{}, 0, fmt.Errorf("lat: %w", err)
	}
	speed, err := strconv.ParseFloat(rec[6], 64)
	if err != nil {
		return RoutePoint{}, 0, fmt.Errorf("speed_kmh: %w", err)
	}
	fuel, err := strconv.ParseFloat(rec[7], 64)
	if err != nil {
		return RoutePoint{}, 0, fmt.Errorf("fuel_ml: %w", err)
	}
	dist, err := strconv.ParseFloat(rec[8], 64)
	if err != nil {
		return RoutePoint{}, 0, fmt.Errorf("dist_m: %w", err)
	}
	return RoutePoint{
		PointID:  pointID,
		TripID:   tripID,
		Pos:      proj.ToXY(geo.Point{Lon: lon, Lat: lat}),
		Time:     time.UnixMilli(unixMs).UTC(),
		SpeedKmh: speed,
		FuelMl:   fuel,
		DistM:    dist,
	}, carID, nil
}
