package trace

import (
	"testing"
	"time"
)

func TestArenaAppendTripRoundTrip(t *testing.T) {
	a := NewArena(0)
	orig := mkTrip(7, 0, 0, 100, 0, 100, 50)
	orig.CarID = 3
	v, err := a.AppendTrip(orig)
	if err != nil {
		t.Fatalf("AppendTrip: %v", err)
	}
	if v.ID != 7 || v.CarID != 3 || v.Len() != 3 {
		t.Fatalf("view = %+v", v)
	}
	for i := range orig.Points {
		p := &orig.Points[i]
		if int(v.PointID(i)) != p.PointID || v.Pos(i) != p.Pos ||
			!v.Time(i).Equal(p.Time) || v.Time(i).Location() != time.UTC ||
			v.Speed(i) != p.SpeedKmh || v.Fuel(i) != p.FuelMl || v.Dist(i) != p.DistM {
			t.Fatalf("point %d: view %+v != %+v", i, v.Point(i), *p)
		}
	}
	if got, want := v.PathLength(), PathLength(orig.Points); got != want {
		t.Fatalf("PathLength = %v, want %v", got, want)
	}

	back := v.Materialize(false)
	if back.ID != orig.ID || back.CarID != orig.CarID || len(back.Points) != len(orig.Points) {
		t.Fatalf("materialised header mismatch: %+v", back)
	}
	for i := range back.Points {
		if back.Points[i] != orig.Points[i] {
			t.Fatalf("point %d: %+v != %+v", i, back.Points[i], orig.Points[i])
		}
	}
	if back.TimeSorted() {
		t.Fatal("Materialize(false) must not mark time-sorted")
	}
	if !v.Materialize(true).TimeSorted() {
		t.Fatal("Materialize(true) must mark time-sorted")
	}
}

func TestArenaAppendTripRejections(t *testing.T) {
	a := NewArena(0)
	cases := map[string]func(tr *Trip){
		"point id overflow": func(tr *Trip) { tr.Points[1].PointID = 1 << 40 },
		"zero time":         func(tr *Trip) { tr.Points[0].Time = time.Time{} },
		"pre-epoch time":    func(tr *Trip) { tr.Points[0].Time = time.Date(1600, 1, 1, 0, 0, 0, 0, time.UTC) },
		"non-UTC time":      func(tr *Trip) { tr.Points[2].Time = tr.Points[2].Time.In(time.FixedZone("X", 3600)) },
		"foreign trip id":   func(tr *Trip) { tr.Points[1].TripID = 99 },
	}
	for name, corrupt := range cases {
		tr := mkTrip(1, 0, 0, 10, 0, 20, 0)
		corrupt(tr)
		if _, err := a.AppendTrip(tr); err == nil {
			t.Errorf("%s: accepted", name)
		}
		if a.Len() != 0 {
			t.Fatalf("%s: rejection left %d rows in the arena", name, a.Len())
		}
	}
	// 64-bit PointID values that fit int32 must survive.
	ok := mkTrip(2, 0, 0, 10, 0)
	if _, err := a.AppendTrip(ok); err != nil {
		t.Fatalf("valid trip rejected: %v", err)
	}
}

func TestArenaResetAndReuse(t *testing.T) {
	a := NewArena(4)
	if a.Len() != 0 {
		t.Fatalf("fresh arena has %d rows", a.Len())
	}
	a.AppendTrip(mkTrip(1, 0, 0, 10, 0))
	a.AppendTrip(mkTrip(2, 5, 5, 6, 6, 7, 7))
	if a.Len() != 5 {
		t.Fatalf("arena rows = %d, want 5", a.Len())
	}
	a.Reset()
	if a.Len() != 0 {
		t.Fatalf("reset arena has %d rows", a.Len())
	}
	v, err := a.AppendTrip(mkTrip(3, 1, 1, 2, 2))
	if err != nil || v.Off != 0 || v.Len() != 2 {
		t.Fatalf("reuse after reset: v=%+v err=%v", v, err)
	}
}

func TestColTripSub(t *testing.T) {
	a := NewArena(0)
	v, _ := a.AppendTrip(mkTrip(1, 0, 0, 10, 0, 20, 0, 30, 0))
	s := v.Sub(1, 3)
	if s.Len() != 2 || s.PointID(0) != 2 || s.PointID(1) != 3 || s.ID != v.ID {
		t.Fatalf("Sub(1,3) = %+v", s)
	}
	ss := s.Sub(1, 2)
	if ss.Len() != 1 || ss.PointID(0) != 3 {
		t.Fatalf("nested Sub = %+v", ss)
	}
	for _, bad := range [][2]int{{-1, 2}, {2, 1}, {0, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Sub(%d,%d) did not panic", bad[0], bad[1])
				}
			}()
			v.Sub(bad[0], bad[1])
		}()
	}
}

func TestMaterializeAll(t *testing.T) {
	a := NewArena(0)
	v1, _ := a.AppendTrip(mkTrip(1, 0, 0, 10, 0))
	v2, _ := a.AppendTrip(mkTrip(2, 5, 5, 6, 6, 7, 7))
	trips := MaterializeAll([]ColTrip{v1, v2.Sub(1, 3)}, true)
	if len(trips) != 2 {
		t.Fatalf("got %d trips", len(trips))
	}
	if len(trips[0].Points) != 2 || len(trips[1].Points) != 2 {
		t.Fatalf("point counts %d/%d", len(trips[0].Points), len(trips[1].Points))
	}
	if trips[1].Points[0].PointID != 2 {
		t.Fatalf("subview materialised wrong points: %+v", trips[1].Points)
	}
	for _, tr := range trips {
		if !tr.TimeSorted() {
			t.Fatal("MaterializeAll(true) must mark trips time-sorted")
		}
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	// The shared slab must not alias across trips: appending to one
	// trip's Points (full slice capacity) must not clobber the next.
	trips[0].Points = append(trips[0].Points, trips[0].Points[0])
	if trips[1].Points[0].PointID != 2 {
		t.Fatal("slab aliasing: growing trip 0 clobbered trip 1")
	}

	if got := MaterializeAll(nil, true); len(got) != 0 {
		t.Fatalf("MaterializeAll(nil) = %v", got)
	}
}

func TestTimeSortedStartEnd(t *testing.T) {
	tr := mkTrip(1, 0, 0, 10, 0, 20, 0)
	want0, want2 := tr.Points[0].Time, tr.Points[2].Time
	// Out of order and unmarked: scan finds the true min/max.
	tr.Points[0], tr.Points[2] = tr.Points[2], tr.Points[0]
	if tr.StartTime() != want0 || tr.EndTime() != want2 {
		t.Fatal("unmarked trip must scan for start/end")
	}
	// Sorted and marked: O(1) endpoints agree with the scan.
	tr.Points[0], tr.Points[2] = tr.Points[2], tr.Points[0]
	tr.MarkTimeSorted()
	if !tr.TimeSorted() || tr.StartTime() != want0 || tr.EndTime() != want2 {
		t.Fatal("marked trip endpoints diverge from scan")
	}
	if !tr.Clone().TimeSorted() {
		t.Fatal("Clone must preserve the time-sorted mark")
	}
}

// BenchmarkStartEndTime demonstrates the satellite win: endpoint
// queries on cleaned (marked) trips are O(1) instead of O(n).
func BenchmarkStartEndTime(b *testing.B) {
	coords := make([]float64, 0, 2000)
	for i := 0; i < 1000; i++ {
		coords = append(coords, float64(i), 0)
	}
	tr := mkTrip(1, coords...)
	run := func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if tr.StartTime().After(tr.EndTime()) {
				b.Fatal("impossible")
			}
		}
	}
	b.Run("scan", run)
	tr.MarkTimeSorted()
	b.Run("marked", run)
}
