package trace

import (
	"fmt"
	"time"
)

// Stats are derived per-trip statistics computed from the route points
// in their current order (clean the trip first).
type Stats struct {
	Points     int
	Duration   time.Duration
	PathM      float64 // geometry length over the points
	OdometerM  float64 // device cumulative distance (last - first)
	FuelMl     float64 // device cumulative fuel (last - first)
	MovingTime time.Duration
	IdleTime   time.Duration // intervals at < 1 km/h
	Stops      int           // maximal idle runs
	MeanKmh    float64       // time-weighted mean of point speeds
	MaxKmh     float64
	// OdometerGapM is |odometer - geometry| — large values indicate GPS
	// loss or heavy noise (the odometer integrates wheel rotation and
	// is robust to both).
	OdometerGapM float64
}

// ComputeStats derives the statistics. Trips with fewer than two
// points yield a zero-valued Stats with Points set.
func ComputeStats(t *Trip) Stats {
	s := Stats{Points: len(t.Points)}
	if len(t.Points) < 2 {
		return s
	}
	pts := t.Points
	s.Duration = pts[len(pts)-1].Time.Sub(pts[0].Time)
	s.PathM = PathLength(pts)
	s.OdometerM = pts[len(pts)-1].DistM - pts[0].DistM
	s.FuelMl = pts[len(pts)-1].FuelMl - pts[0].FuelMl
	if d := s.OdometerM - s.PathM; d >= 0 {
		s.OdometerGapM = d
	} else {
		s.OdometerGapM = -d
	}

	var speedTime float64
	inIdle := false
	for i := 0; i < len(pts); i++ {
		if pts[i].SpeedKmh > s.MaxKmh {
			s.MaxKmh = pts[i].SpeedKmh
		}
		if i == len(pts)-1 {
			break
		}
		dt := pts[i+1].Time.Sub(pts[i].Time)
		if dt <= 0 {
			continue
		}
		if pts[i].SpeedKmh < 1 {
			s.IdleTime += dt
			if !inIdle {
				s.Stops++
				inIdle = true
			}
		} else {
			s.MovingTime += dt
			inIdle = false
		}
		speedTime += pts[i].SpeedKmh * dt.Seconds()
	}
	if total := (s.MovingTime + s.IdleTime).Seconds(); total > 0 {
		s.MeanKmh = speedTime / total
	}
	return s
}

// String renders a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("%d pts, %.2f km in %s (mean %.1f km/h, max %.1f), %d stops, idle %s, fuel %.0f ml",
		s.Points, s.PathM/1000, s.Duration.Round(time.Second),
		s.MeanKmh, s.MaxKmh, s.Stops, s.IdleTime.Round(time.Second), s.FuelMl)
}
