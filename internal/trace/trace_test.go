package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/geo"
)

var t0 = time.Date(2012, 10, 1, 8, 0, 0, 0, time.UTC)

func mkTrip(id int64, coords ...float64) *Trip {
	t := &Trip{ID: id, CarID: 1}
	for i := 0; i+1 < len(coords); i += 2 {
		n := len(t.Points)
		t.Points = append(t.Points, RoutePoint{
			PointID:  n + 1,
			TripID:   id,
			Pos:      geo.V(coords[i], coords[i+1]),
			Time:     t0.Add(time.Duration(n) * 30 * time.Second),
			SpeedKmh: 30,
			FuelMl:   float64(n) * 10,
			DistM:    float64(n) * 100,
		})
	}
	return t
}

func TestValidate(t *testing.T) {
	tr := mkTrip(1, 0, 0, 100, 0)
	if err := tr.Validate(); err != nil {
		t.Fatalf("valid trip rejected: %v", err)
	}
	if err := (&Trip{ID: 2}).Validate(); err == nil {
		t.Fatal("empty trip accepted")
	}
	tr.Points[1].TripID = 99
	if err := tr.Validate(); err == nil {
		t.Fatal("foreign point accepted")
	}
}

func TestCloneIndependence(t *testing.T) {
	tr := mkTrip(1, 0, 0, 100, 0)
	cl := tr.Clone()
	cl.Points[0].Pos = geo.V(999, 999)
	if tr.Points[0].Pos == cl.Points[0].Pos {
		t.Fatal("Clone shares point storage")
	}
}

func TestGeometryAndPathLength(t *testing.T) {
	tr := mkTrip(1, 0, 0, 100, 0, 100, 50)
	g := tr.Geometry()
	if len(g) != 3 || g.Length() != 150 {
		t.Fatalf("geometry = %v (len %f)", g, g.Length())
	}
	if got := PathLength(tr.Points); got != 150 {
		t.Fatalf("PathLength = %f", got)
	}
	if got := PathLength(nil); got != 0 {
		t.Fatalf("PathLength(nil) = %f", got)
	}
}

func TestTimesAndDuration(t *testing.T) {
	tr := mkTrip(1, 0, 0, 100, 0, 200, 0)
	if tr.StartTime() != t0 {
		t.Fatalf("StartTime = %v", tr.StartTime())
	}
	if want := t0.Add(time.Minute); tr.EndTime() != want {
		t.Fatalf("EndTime = %v, want %v", tr.EndTime(), want)
	}
	if tr.Duration() != time.Minute {
		t.Fatalf("Duration = %v", tr.Duration())
	}
	// Start/End scan all points even when out of order.
	tr.Points[0], tr.Points[2] = tr.Points[2], tr.Points[0]
	if tr.StartTime() != t0 || tr.EndTime() != t0.Add(time.Minute) {
		t.Fatal("StartTime/EndTime must be order-independent")
	}
	empty := &Trip{}
	if !empty.StartTime().IsZero() || !empty.EndTime().IsZero() || empty.Duration() != 0 {
		t.Fatal("empty trip times must be zero")
	}
}

func TestKey(t *testing.T) {
	tr := mkTrip(42, 0, 0, 1, 1)
	k := tr.Key()
	if k.TripID != 42 || !k.Start.Equal(t0) {
		t.Fatalf("Key = %+v", k)
	}
	if !strings.Contains(k.String(), "42") {
		t.Fatalf("Key.String = %q", k.String())
	}
}

func TestCSVRoundTrip(t *testing.T) {
	proj := geo.NewProjection(geo.Point{Lon: 25.47, Lat: 65.01})
	trips := []*Trip{
		mkTrip(1, 0, 0, 100, 0, 100, 100),
		mkTrip(2, 50, 50, 60, 60),
	}
	trips[1].CarID = 3
	var buf bytes.Buffer
	if err := WriteCSV(&buf, trips, proj); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	back, err := ReadCSV(bytes.NewReader(buf.Bytes()), proj)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if len(back) != 2 {
		t.Fatalf("got %d trips", len(back))
	}
	for i, tr := range back {
		orig := trips[i]
		if tr.ID != orig.ID || tr.CarID != orig.CarID || len(tr.Points) != len(orig.Points) {
			t.Fatalf("trip %d header mismatch", i)
		}
		for k := range tr.Points {
			if tr.Points[k].Pos.Dist(orig.Points[k].Pos) > 0.02 {
				t.Fatalf("trip %d point %d moved", i, k)
			}
			if !tr.Points[k].Time.Equal(orig.Points[k].Time) {
				t.Fatalf("trip %d point %d time mismatch", i, k)
			}
			if tr.Points[k].SpeedKmh != orig.Points[k].SpeedKmh {
				t.Fatalf("trip %d point %d speed mismatch", i, k)
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	proj := geo.NewProjection(geo.Point{Lon: 25.47, Lat: 65.01})
	cases := []string{
		"",                             // no header
		"bogus,header,x,x,x,x,x,x,x\n", // wrong header
		"car_id,trip_id,point_id,unix_ms,lon,lat,speed_kmh,fuel_ml,dist_m\nx,1,1,0,25,65,0,0,0\n",  // bad car
		"car_id,trip_id,point_id,unix_ms,lon,lat,speed_kmh,fuel_ml,dist_m\n1,1,1,0,bad,65,0,0,0\n", // bad lon
		"car_id,trip_id,point_id,unix_ms,lon,lat,speed_kmh,fuel_ml,dist_m\n1,1,1\n",                // short row
	}
	for i, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in), proj); err == nil {
			t.Errorf("case %d accepted malformed input", i)
		}
	}
}

func TestWriteGeoJSON(t *testing.T) {
	proj := geo.NewProjection(geo.Point{Lon: 25.47, Lat: 65.01})
	trips := []*Trip{mkTrip(7, 0, 0, 100, 0, 100, 100)}
	var buf bytes.Buffer
	if err := WriteGeoJSON(&buf, trips, proj); err != nil {
		t.Fatalf("WriteGeoJSON: %v", err)
	}
	var parsed map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	features := parsed["features"].([]any)
	if len(features) != 1 {
		t.Fatalf("features = %d", len(features))
	}
	f := features[0].(map[string]any)
	props := f["properties"].(map[string]any)
	if props["trip_id"].(float64) != 7 || props["points"].(float64) != 3 {
		t.Fatalf("props = %v", props)
	}
	coords := f["geometry"].(map[string]any)["coordinates"].([]any)
	if len(coords) != 3 {
		t.Fatalf("coordinates = %d", len(coords))
	}
}
