package trace

import (
	"fmt"
	"math"
	"time"

	"repro/internal/geo"
)

// Columnar (struct-of-arrays) point storage. The row-oriented
// RoutePoint layout costs ~80 bytes per point plus a slice header per
// trip, and every pipeline stage that copies points drags all seven
// fields through the cache. Columns stores each field in its own
// parallel slice so stage kernels touch only the columns they read,
// and so one arena allocation serves every trip of a car.
//
// Ownership model: an Arena owns the columns. The pipeline keeps one
// arena per in-flight car, appends the car's raw trips, lets the
// cleaning and segmentation kernels append derived trips to the same
// arena, and resets it before the next car. ColTrip values are cheap
// views (offset + length) into the arena and must not outlive the
// reset that reclaims their rows.

// Columns holds route-point fields as parallel slices. All slices
// always have equal length. Times are unix nanoseconds (full in-memory
// fidelity; the on-disk binary format quantises to milliseconds, like
// CSV). Positions are projected metres, matching RoutePoint.Pos.
type Columns struct {
	PointIDs []int32
	TimesNs  []int64
	Xs       []float64
	Ys       []float64
	Speeds   []float64
	Fuels    []float64
	Dists    []float64
}

// Len returns the number of stored points.
func (c *Columns) Len() int { return len(c.PointIDs) }

// reset empties the columns, keeping capacity.
func (c *Columns) reset() {
	c.PointIDs = c.PointIDs[:0]
	c.TimesNs = c.TimesNs[:0]
	c.Xs = c.Xs[:0]
	c.Ys = c.Ys[:0]
	c.Speeds = c.Speeds[:0]
	c.Fuels = c.Fuels[:0]
	c.Dists = c.Dists[:0]
}

// extend grows every column by n rows (values unspecified) and returns
// the offset of the new block.
func (c *Columns) extend(n int) int {
	off := len(c.PointIDs)
	c.PointIDs = append(c.PointIDs, make([]int32, n)...)
	c.TimesNs = append(c.TimesNs, make([]int64, n)...)
	c.Xs = append(c.Xs, make([]float64, n)...)
	c.Ys = append(c.Ys, make([]float64, n)...)
	c.Speeds = append(c.Speeds, make([]float64, n)...)
	c.Fuels = append(c.Fuels, make([]float64, n)...)
	c.Dists = append(c.Dists, make([]float64, n)...)
	return off
}

// Arena is a per-car growable block of columnar point storage. It is
// not safe for concurrent use; use one arena per worker and Reset it
// between cars to reuse the capacity.
type Arena struct {
	Cols Columns
}

// NewArena returns an arena with capacity for n points (0 is fine).
func NewArena(n int) *Arena {
	a := &Arena{}
	if n > 0 {
		a.Cols.extend(n)
		a.Cols.reset()
	}
	return a
}

// Reset reclaims all rows. Every ColTrip previously issued from this
// arena becomes invalid.
func (a *Arena) Reset() { a.Cols.reset() }

// Len returns the number of rows currently in use.
func (a *Arena) Len() int { return a.Cols.Len() }

// Alloc reserves n rows (contents unspecified) and returns them as a
// view with the given identity. Kernels that compute a trip's points
// in place (cleaning's realignment, for example) write through the
// view's columns directly.
func (a *Arena) Alloc(id int64, carID, n int) ColTrip {
	off := a.Cols.extend(n)
	return ColTrip{ID: id, CarID: carID, Cols: &a.Cols, Off: off, N: n}
}

// Bounds on times representable in the int64-nanosecond column
// (roughly 1678..2262). Trips outside — including zero times — must
// stay on the row-oriented path.
var (
	minColTime = time.Unix(0, math.MinInt64)
	maxColTime = time.Unix(0, math.MaxInt64)
)

// AppendTrip copies a trip's points into the arena and returns the
// view. It fails, leaving the arena unchanged, when the trip cannot be
// represented columnarly without information loss: a point id outside
// int32, a timestamp outside the nanosecond-representable window or
// not in UTC, or a point whose TripID disagrees with the trip (the
// columnar layout stores trip identity once, so a mismatch could not
// be reproduced when materialising). Callers fall back to the
// row-oriented path on error.
func (a *Arena) AppendTrip(t *Trip) (ColTrip, error) {
	for i := range t.Points {
		p := &t.Points[i]
		if int64(int32(p.PointID)) != int64(p.PointID) {
			return ColTrip{}, fmt.Errorf("trace: trip %d point id %d overflows int32", t.ID, p.PointID)
		}
		if p.Time.Before(minColTime) || p.Time.After(maxColTime) {
			return ColTrip{}, fmt.Errorf("trace: trip %d time %v outside columnar range", t.ID, p.Time)
		}
		if p.Time.Location() != time.UTC {
			return ColTrip{}, fmt.Errorf("trace: trip %d time %v not UTC", t.ID, p.Time)
		}
		if p.TripID != t.ID {
			return ColTrip{}, fmt.Errorf("trace: trip %d contains point of trip %d", t.ID, p.TripID)
		}
	}
	v := a.Alloc(t.ID, t.CarID, len(t.Points))
	for i := range t.Points {
		p := &t.Points[i]
		j := v.Off + i
		v.Cols.PointIDs[j] = int32(p.PointID)
		v.Cols.TimesNs[j] = p.Time.UnixNano()
		v.Cols.Xs[j] = p.Pos.X
		v.Cols.Ys[j] = p.Pos.Y
		v.Cols.Speeds[j] = p.SpeedKmh
		v.Cols.Fuels[j] = p.FuelMl
		v.Cols.Dists[j] = p.DistM
	}
	return v, nil
}

// ColTrip is a trip-shaped view into an arena's columns: the rows
// [Off, Off+N). The zero value is an empty view.
type ColTrip struct {
	ID    int64
	CarID int
	Cols  *Columns
	Off   int
	N     int
}

// Len returns the number of points in the view.
func (v ColTrip) Len() int { return v.N }

// PointID returns point i's device sequence number.
func (v ColTrip) PointID(i int) int32 { return v.Cols.PointIDs[v.Off+i] }

// TimeNs returns point i's timestamp in unix nanoseconds.
func (v ColTrip) TimeNs(i int) int64 { return v.Cols.TimesNs[v.Off+i] }

// Time returns point i's timestamp.
func (v ColTrip) Time(i int) time.Time { return time.Unix(0, v.Cols.TimesNs[v.Off+i]).UTC() }

// Pos returns point i's projected position.
func (v ColTrip) Pos(i int) geo.XY { return geo.XY{X: v.Cols.Xs[v.Off+i], Y: v.Cols.Ys[v.Off+i]} }

// Speed returns point i's speed in km/h.
func (v ColTrip) Speed(i int) float64 { return v.Cols.Speeds[v.Off+i] }

// Fuel returns point i's cumulative fuel in millilitres.
func (v ColTrip) Fuel(i int) float64 { return v.Cols.Fuels[v.Off+i] }

// Dist returns point i's cumulative odometer distance in metres.
func (v ColTrip) Dist(i int) float64 { return v.Cols.Dists[v.Off+i] }

// Sub returns the zero-copy subview of points [i, j).
func (v ColTrip) Sub(i, j int) ColTrip {
	if i < 0 || j < i || j > v.N {
		panic(fmt.Sprintf("trace: ColTrip.Sub(%d, %d) out of range 0..%d", i, j, v.N))
	}
	return ColTrip{ID: v.ID, CarID: v.CarID, Cols: v.Cols, Off: v.Off + i, N: j - i}
}

// PathLength returns the sum of distances between consecutive points,
// floating-point-identical to PathLength over the materialised points.
func (v ColTrip) PathLength() float64 {
	var total float64
	for i := 1; i < v.N; i++ {
		total += v.Pos(i - 1).Dist(v.Pos(i))
	}
	return total
}

// Point materialises point i as a RoutePoint.
func (v ColTrip) Point(i int) RoutePoint {
	return RoutePoint{
		PointID:  int(v.PointID(i)),
		TripID:   v.ID,
		Pos:      v.Pos(i),
		Time:     v.Time(i),
		SpeedKmh: v.Speed(i),
		FuelMl:   v.Fuel(i),
		DistM:    v.DistM(i),
	}
}

// DistM is an alias of Dist kept close to the RoutePoint field name.
func (v ColTrip) DistM(i int) float64 { return v.Dist(i) }

// Materialize copies the view out into a standalone row-oriented Trip.
// timeSorted marks the result as being in non-decreasing time order
// (true for anything downstream of cleaning).
func (v ColTrip) Materialize(timeSorted bool) *Trip {
	t := &Trip{ID: v.ID, CarID: v.CarID, Points: v.appendPoints(make([]RoutePoint, 0, v.N))}
	if timeSorted {
		t.MarkTimeSorted()
	}
	return t
}

// appendPoints appends the view's points to dst.
func (v ColTrip) appendPoints(dst []RoutePoint) []RoutePoint {
	for i := 0; i < v.N; i++ {
		dst = append(dst, v.Point(i))
	}
	return dst
}

// MaterializeAll copies a batch of views into row-oriented trips
// backed by a single shared point slab (two allocations total plus one
// per trip header). timeSorted marks every result as time-ordered.
func MaterializeAll(views []ColTrip, timeSorted bool) []*Trip {
	total := 0
	for _, v := range views {
		total += v.N
	}
	slab := make([]RoutePoint, 0, total)
	trips := make([]Trip, len(views))
	out := make([]*Trip, len(views))
	for i, v := range views {
		start := len(slab)
		slab = v.appendPoints(slab)
		trips[i] = Trip{ID: v.ID, CarID: v.CarID, Points: slab[start:len(slab):len(slab)]}
		if timeSorted {
			trips[i].MarkTimeSorted()
		}
		out[i] = &trips[i]
	}
	return out
}
