package trace

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/geo"
)

func binTestProj() *geo.Projection {
	return geo.NewProjection(geo.Point{Lon: 25.47, Lat: 65.01})
}

// binTestTrips returns trips with awkward fractional values, sub-metre
// positions and a sub-millisecond timestamp, so quantisation is
// actually exercised.
func binTestTrips() []*Trip {
	trips := []*Trip{
		mkTrip(1, 0, 0, 103.37, -42.9, 100.004, 100.25),
		mkTrip(2, 50.5, 50.5, 60.75, 60.125),
		mkTrip(9, -1234.5678, 987.654),
	}
	trips[1].CarID = 3
	trips[1].Points[0].SpeedKmh = 13.333333
	trips[1].Points[0].FuelMl = 0.05
	trips[1].Points[1].DistM = 10238.06
	trips[2].CarID = 12
	trips[2].Points[0].Time = t0.Add(7*time.Millisecond + 431*time.Microsecond)
	return trips
}

// TestBinaryCSVValueIdentity is the format-parity property the pipeline
// differential relies on: a fleet written to binary and read back is
// value-identical — float bit patterns included — to the same fleet
// written to CSV and read back.
func TestBinaryCSVValueIdentity(t *testing.T) {
	proj := binTestProj()
	trips := binTestTrips()

	var cbuf, bbuf bytes.Buffer
	if err := WriteCSV(&cbuf, trips, proj); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&bbuf, trips, proj); err != nil {
		t.Fatal(err)
	}
	fromCSV, err := ReadCSV(bytes.NewReader(cbuf.Bytes()), proj)
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := ReadBinary(bytes.NewReader(bbuf.Bytes()), proj)
	if err != nil {
		t.Fatal(err)
	}
	if len(fromBin) != len(fromCSV) {
		t.Fatalf("binary %d trips, csv %d", len(fromBin), len(fromCSV))
	}
	for i := range fromCSV {
		c, b := fromCSV[i], fromBin[i]
		if b.ID != c.ID || b.CarID != c.CarID || len(b.Points) != len(c.Points) {
			t.Fatalf("trip %d header: binary %+v, csv %+v", i, b, c)
		}
		if err := b.Validate(); err != nil {
			t.Fatal(err)
		}
		for k := range c.Points {
			cp, bp := &c.Points[k], &b.Points[k]
			if bp.PointID != cp.PointID || bp.TripID != cp.TripID {
				t.Fatalf("trip %d point %d ids differ", i, k)
			}
			if !bp.Time.Equal(cp.Time) || bp.Time.Location() != time.UTC {
				t.Fatalf("trip %d point %d time: binary %v, csv %v", i, k, bp.Time, cp.Time)
			}
			// Bit equality, not approximate: the quantisers must agree
			// digit for digit with FormatFloat/ParseFloat.
			if math.Float64bits(bp.Pos.X) != math.Float64bits(cp.Pos.X) ||
				math.Float64bits(bp.Pos.Y) != math.Float64bits(cp.Pos.Y) ||
				math.Float64bits(bp.SpeedKmh) != math.Float64bits(cp.SpeedKmh) ||
				math.Float64bits(bp.FuelMl) != math.Float64bits(cp.FuelMl) ||
				math.Float64bits(bp.DistM) != math.Float64bits(cp.DistM) {
				t.Fatalf("trip %d point %d values diverge:\nbinary %+v\ncsv    %+v", i, k, *bp, *cp)
			}
		}
	}
}

// TestBinaryRoundTripStable: write → read → write must reproduce the
// file byte for byte (quantisation is idempotent).
func TestBinaryRoundTripStable(t *testing.T) {
	proj := binTestProj()
	var first bytes.Buffer
	if err := WriteBinary(&first, binTestTrips(), proj); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(bytes.NewReader(first.Bytes()), proj)
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := WriteBinary(&second, back, proj); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("unstable round trip: first %d bytes, second %d bytes",
			first.Len(), second.Len())
	}
}

func TestWriteBinarySkipsEmptyAndRejectsOverflow(t *testing.T) {
	proj := binTestProj()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, []*Trip{{ID: 5, CarID: 1}}, proj); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != binaryHeaderLen {
		t.Fatalf("empty trip wrote %d bytes, want bare header", buf.Len())
	}
	if got, err := ReadBinary(bytes.NewReader(buf.Bytes()), proj); err != nil || len(got) != 0 {
		t.Fatalf("header-only file: trips=%v err=%v", got, err)
	}

	big := mkTrip(1, 0, 0, 10, 0)
	big.CarID = 1 << 40
	if err := WriteBinary(io.Discard, []*Trip{big}, proj); err == nil {
		t.Fatal("car id overflow accepted")
	}
	bad := mkTrip(2, 0, 0, 10, 0)
	bad.Points[0].PointID = 1 << 40
	if err := WriteBinary(io.Discard, []*Trip{bad}, proj); err == nil {
		t.Fatal("point id overflow accepted")
	}
	nan := mkTrip(3, 0, 0, 10, 0)
	nan.Points[1].FuelMl = math.NaN()
	if err := WriteBinary(io.Discard, []*Trip{nan}, proj); err == nil {
		t.Fatal("NaN fuel accepted")
	}
}

// corruptAt returns a valid one-trip file with f applied to its bytes.
func corruptAt(t *testing.T, f func([]byte) []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, []*Trip{mkTrip(1, 0, 0, 10, 0, 20, 0)}, binTestProj()); err != nil {
		t.Fatal(err)
	}
	return f(buf.Bytes())
}

func TestReadBinaryErrors(t *testing.T) {
	proj := binTestProj()
	cases := map[string][]byte{
		"empty":            nil,
		"truncated header": corruptAt(t, func(b []byte) []byte { return b[:10] }),
		"bad magic": corruptAt(t, func(b []byte) []byte {
			b[0] = 'X'
			return b
		}),
		"bad version": corruptAt(t, func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:12], 99)
			return b
		}),
		"truncated body": corruptAt(t, func(b []byte) []byte { return b[:len(b)-5] }),
		"record length not on a point boundary": corruptAt(t, func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[binaryHeaderLen:], 17)
			return b
		}),
		"record length below trip head": corruptAt(t, func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[binaryHeaderLen:], 3)
			return b
		}),
		"zero-point record": corruptAt(t, func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[binaryHeaderLen:], binaryTripHead)
			return b
		}),
		"lying huge length prefix": corruptAt(t, func(b []byte) []byte {
			// Claims ~512MB of points on a tiny file: must error from
			// the short read, not allocate the claimed size.
			binary.LittleEndian.PutUint32(b[binaryHeaderLen:], uint32(binaryTripHead+binaryPointWidth*maxBinaryPoints))
			return b
		}),
		"nPoints over format limit": corruptAt(t, func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[binaryHeaderLen:], uint32(binaryTripHead+binaryPointWidth*(maxBinaryPoints+1)))
			return b
		}),
		"nPoints disagrees with record length": corruptAt(t, func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[binaryHeaderLen+16:], 7)
			return b
		}),
		"time out of columnar range": corruptAt(t, func(b []byte) []byte {
			// First timestamp: after 3 point ids (recLen + head + ids).
			off := binaryHeaderLen + 4 + binaryTripHead + 4*3
			binary.LittleEndian.PutUint64(b[off:], uint64(int64(math.MaxInt64/100)))
			return b
		}),
	}
	for name, in := range cases {
		if _, err := ReadBinary(bytes.NewReader(in), proj); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestBinaryReaderStreams checks the arena-based streaming interface
// used by the pipeline's binary ingest.
func TestBinaryReaderStreams(t *testing.T) {
	proj := binTestProj()
	trips := binTestTrips()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, trips, proj); err != nil {
		t.Fatal(err)
	}
	br, err := NewBinaryReader(bytes.NewReader(buf.Bytes()), proj)
	if err != nil {
		t.Fatal(err)
	}
	a := NewArena(0)
	var n int
	for {
		v, err := br.Next(a)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if v.ID != trips[n].ID || v.Len() != len(trips[n].Points) {
			t.Fatalf("record %d: view %+v", n, v)
		}
		n++
	}
	if n != len(trips) {
		t.Fatalf("streamed %d records, want %d", n, len(trips))
	}
	if a.Len() == 0 {
		t.Fatal("arena holds no rows after streaming")
	}
}

// TestQuantDecimalMatchesFormatFloat pins the quantiser to the CSV
// writer digit for digit across awkward values, including the negative
// zero canonicalisation.
func TestQuantDecimalMatchesFormatFloat(t *testing.T) {
	var buf [32]byte
	values := []float64{0, 1, -1, 0.05, -0.04, 13.333333, 1e-9, -1e-9,
		123456.789, -0.15, 0.25, 2.675, 1 << 30}
	for _, x := range values {
		for _, prec := range []int{1, 2, 7} {
			m, err := quantDecimal(buf[:], x, prec)
			if err != nil {
				t.Fatalf("quantDecimal(%v, %d): %v", x, prec, err)
			}
			s := strings.TrimPrefix(strings.Replace(
				formatFloatForTest(x, prec), ".", "", 1), "-")
			wantAbs := int64(0)
			for _, c := range s {
				wantAbs = wantAbs*10 + int64(c-'0')
			}
			got := m
			if got < 0 {
				got = -got
			}
			if got != wantAbs {
				t.Errorf("quantDecimal(%v, %d) = %d, FormatFloat digits %s", x, prec, m, s)
			}
		}
	}
	if _, err := quantDecimal(buf[:], math.Inf(1), 2); err == nil {
		t.Error("Inf accepted")
	}
	if _, err := quantDecimal(buf[:], math.NaN(), 2); err == nil {
		t.Error("NaN accepted")
	}
	if _, err := quantDecimal(buf[:], 1e300, 1); err == nil {
		t.Error("overflowing magnitude accepted")
	}
	if _, err := quantDecimal(buf[:], 1<<53-1, 7); err == nil {
		t.Error("mantissa overflow at 7 decimals accepted")
	}
}

func formatFloatForTest(x float64, prec int) string {
	return strconv.FormatFloat(x, 'f', prec, 64)
}
