package trace

import (
	"strings"
	"testing"

	"repro/internal/geo"
)

// FuzzReadCSV: the trace parser must reject arbitrary input with an
// error, never a panic. The seed corpus covers the header, valid rows,
// and assorted malformations.
func FuzzReadCSV(f *testing.F) {
	header := "car_id,trip_id,point_id,unix_ms,lon,lat,speed_kmh,fuel_ml,dist_m\n"
	f.Add(header)
	f.Add(header + "1,1,1,1349078400000,25.4700000,65.0100000,30.00,10.0,100.0\n")
	f.Add(header + "1,1,1,notanumber,25.47,65.01,30,10,100\n")
	f.Add(header + "1,1\n")
	f.Add("garbage")
	f.Add(header + strings.Repeat("1,1,1,0,25.47,65.01,0,0,0\n", 3))
	f.Add(header + "1,1,1,0,1e309,65.01,0,0,0\n")

	proj := geo.NewProjection(geo.Point{Lon: 25.47, Lat: 65.01})
	f.Fuzz(func(t *testing.T, in string) {
		trips, err := ReadCSV(strings.NewReader(in), proj)
		if err != nil {
			return
		}
		// On success every trip must be internally consistent.
		for _, tr := range trips {
			if err := tr.Validate(); err != nil {
				t.Fatalf("accepted inconsistent trip: %v", err)
			}
		}
	})
}
