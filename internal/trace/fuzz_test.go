package trace

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"repro/internal/geo"
)

// FuzzReadCSV: the trace parser must reject arbitrary input with an
// error, never a panic. The seed corpus covers the header, valid rows,
// and assorted malformations.
func FuzzReadCSV(f *testing.F) {
	header := "car_id,trip_id,point_id,unix_ms,lon,lat,speed_kmh,fuel_ml,dist_m\n"
	f.Add(header)
	f.Add(header + "1,1,1,1349078400000,25.4700000,65.0100000,30.00,10.0,100.0\n")
	f.Add(header + "1,1,1,notanumber,25.47,65.01,30,10,100\n")
	f.Add(header + "1,1\n")
	f.Add("garbage")
	f.Add(header + strings.Repeat("1,1,1,0,25.47,65.01,0,0,0\n", 3))
	f.Add(header + "1,1,1,0,1e309,65.01,0,0,0\n")

	proj := geo.NewProjection(geo.Point{Lon: 25.47, Lat: 65.01})
	f.Fuzz(func(t *testing.T, in string) {
		trips, err := ReadCSV(strings.NewReader(in), proj)
		if err != nil {
			return
		}
		// On success every trip must be internally consistent.
		for _, tr := range trips {
			if err := tr.Validate(); err != nil {
				t.Fatalf("accepted inconsistent trip: %v", err)
			}
		}
	})
}

// FuzzReadBinary: the binary reader must reject arbitrary bytes with an
// error — never a panic, and never an allocation sized by a lying
// length prefix. Accepted input must decode to consistent trips that
// re-encode and re-decode identically.
func FuzzReadBinary(f *testing.F) {
	proj := geo.NewProjection(geo.Point{Lon: 25.47, Lat: 65.01})

	valid := func(trips []*Trip) []byte {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, trips, proj); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	whole := valid([]*Trip{mkTrip(1, 0, 0, 103.4, -42.9), mkTrip(2, 5, 5, 6, 6, 7, 7)})
	f.Add([]byte(nil))
	f.Add([]byte("garbage"))
	f.Add(whole)
	f.Add(whole[:10])                     // truncated header
	f.Add(whole[:binaryHeaderLen])        // header only
	f.Add(whole[:len(whole)-3])           // truncated record body
	f.Add(append([]byte("XAXITRCB"), whole[8:]...)) // bad magic
	badVer := append([]byte(nil), whole...)
	binary.LittleEndian.PutUint32(badVer[8:12], 2)
	f.Add(badVer)
	huge := append([]byte(nil), whole...)
	binary.LittleEndian.PutUint32(huge[binaryHeaderLen:], 1<<31-1) // overflowing length prefix
	f.Add(huge)
	weird := append([]byte(nil), whole...)
	for i := binaryHeaderLen + 4 + binaryTripHead; i < len(weird); i++ {
		weird[i] = 0xff // all-ones columns: NaN-ish bit patterns, max ints
	}
	f.Add(weird)

	f.Fuzz(func(t *testing.T, in []byte) {
		trips, err := ReadBinary(bytes.NewReader(in), proj)
		if err != nil {
			return
		}
		for _, tr := range trips {
			if err := tr.Validate(); err != nil {
				t.Fatalf("accepted inconsistent trip: %v", err)
			}
		}
		// Accepted data must survive a re-encode cycle structurally.
		// (Byte-level fixpoint is asserted on realistic values in
		// TestBinaryRoundTripStable; adversarial coordinates sitting
		// exactly on a rounding boundary may legitimately move one
		// quantum through the projection inverse, or overflow the
		// int32 mantissa and be refused — an error, never a panic.)
		var out bytes.Buffer
		if err := WriteBinary(&out, trips, proj); err != nil {
			return
		}
		back, err := ReadBinary(bytes.NewReader(out.Bytes()), proj)
		if err != nil {
			t.Fatalf("re-encoded trips failed to decode: %v", err)
		}
		if len(back) != len(trips) {
			t.Fatalf("re-encode changed trip count: %d != %d", len(back), len(trips))
		}
		for i := range trips {
			if back[i].ID != trips[i].ID || back[i].CarID != trips[i].CarID ||
				len(back[i].Points) != len(trips[i].Points) {
				t.Fatalf("re-encode changed trip %d identity", i)
			}
			for k := range trips[i].Points {
				if back[i].Points[k].PointID != trips[i].Points[k].PointID ||
					!back[i].Points[k].Time.Equal(trips[i].Points[k].Time) {
					t.Fatalf("re-encode changed trip %d point %d", i, k)
				}
			}
		}
	})
}
