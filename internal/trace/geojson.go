package trace

import (
	"encoding/json"
	"io"
	"time"

	"repro/internal/geo"
)

// WriteGeoJSON serialises trips as a GeoJSON FeatureCollection of WGS84
// LineStrings in the trips' current point order, one feature per trip,
// for inspection in QGIS or a web map.
func WriteGeoJSON(w io.Writer, trips []*Trip, proj *geo.Projection) error {
	type geom struct {
		Type        string       `json:"type"`
		Coordinates [][2]float64 `json:"coordinates"`
	}
	type feature struct {
		Type       string         `json:"type"`
		Geometry   geom           `json:"geometry"`
		Properties map[string]any `json:"properties"`
	}
	type collection struct {
		Type     string    `json:"type"`
		Features []feature `json:"features"`
	}
	fc := collection{Type: "FeatureCollection"}
	for _, t := range trips {
		coords := make([][2]float64, len(t.Points))
		for i := range t.Points {
			p := proj.ToPoint(t.Points[i].Pos)
			coords[i] = [2]float64{p.Lon, p.Lat}
		}
		fc.Features = append(fc.Features, feature{
			Type:     "Feature",
			Geometry: geom{Type: "LineString", Coordinates: coords},
			Properties: map[string]any{
				"trip_id": t.ID,
				"car_id":  t.CarID,
				"points":  len(t.Points),
				"start":   t.StartTime().Format(time.RFC3339),
			},
		})
	}
	return json.NewEncoder(w).Encode(fc)
}
