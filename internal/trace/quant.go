package trace

import (
	"fmt"
	"math"
)

// Exported quantisation surface for per-point event codecs. The
// streaming ingest layer frames individual route points over the wire
// (internal/ingest) and must quantise them exactly like the TAXITRCB
// trip format, so a point that travelled the firehose decodes to the
// same float64 values as the same point written to a binary (or CSV)
// trace file — the ingest/batch differential tests rely on this.
//
// All functions share quantDecimal's contract: the integer mantissa of
// strconv.FormatFloat(x, 'f', prec, 64) at the column's CSV precision,
// with correctly-rounded decode by the exact power of ten.

// Quantisation precisions (decimal digits), as stored by the binary
// formats and the CSV writer.
const (
	// LonLatPrec quantises WGS84 degrees (E7, ~1 cm).
	LonLatPrec = lonLatPrec
	// SpeedPrec quantises km/h (centi).
	SpeedPrec = speedPrec
	// FuelPrec quantises millilitres (deci).
	FuelPrec = fuelPrec
	// DistPrec quantises metres (deci).
	DistPrec = distPrec
)

// QuantLonLat quantises a WGS84 coordinate to its E7 integer. Errors
// on non-finite input or int32 overflow.
func QuantLonLat(v float64) (int32, error) { return quantEvent(v, lonLatPrec) }

// QuantSpeedKmh quantises a speed to centi-km/h.
func QuantSpeedKmh(v float64) (int32, error) { return quantEvent(v, speedPrec) }

// QuantFuelMl quantises cumulative fuel to deci-millilitres.
func QuantFuelMl(v float64) (int32, error) { return quantEvent(v, fuelPrec) }

// QuantDistM quantises cumulative distance to deci-metres.
func QuantDistM(v float64) (int32, error) { return quantEvent(v, distPrec) }

// DequantLonLat decodes an E7 coordinate back to degrees.
func DequantLonLat(q int32) float64 { return float64(q) / pow10[lonLatPrec] }

// DequantSpeedKmh decodes centi-km/h back to km/h.
func DequantSpeedKmh(q int32) float64 { return float64(q) / pow10[speedPrec] }

// DequantFuelMl decodes deci-millilitres back to millilitres.
func DequantFuelMl(q int32) float64 { return float64(q) / pow10[fuelPrec] }

// DequantDistM decodes deci-metres back to metres.
func DequantDistM(q int32) float64 { return float64(q) / pow10[distPrec] }

// MaxEventTimeMs is the largest |UnixMilli| timestamp the event and
// trip formats accept (the nanosecond-representable window).
const MaxEventTimeMs = maxTimeMs

func quantEvent(v float64, prec int) (int32, error) {
	var buf [32]byte
	m, err := quantDecimal(buf[:], v, prec)
	if err != nil {
		return 0, fmt.Errorf("trace: %w", err)
	}
	if m < math.MinInt32 || m > math.MaxInt32 {
		return 0, fmt.Errorf("trace: value %v overflows int32 at %d decimals", v, prec)
	}
	return int32(m), nil
}
