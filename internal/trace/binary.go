package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"slices"
	"strconv"
	"time"

	"repro/internal/geo"
)

// Binary trace format: a length-prefixed, fixed-width, little-endian
// columnar encoding of the same information as the CSV interchange
// format, ~2.2x smaller and parsed without any per-row string work.
//
//	file   := header record*
//	header := magic[8]="TAXITRCB" version:u32=1 flags:u32=0
//	record := recLen:u32 tripID:i64 carID:i32 nPoints:i32 columns
//	columns:= pointID[n]:i32 timeMs[n]:i64 lonE7[n]:i32 latE7[n]:i32
//	          speedCenti[n]:i32 fuelDeci[n]:i32 distDeci[n]:i32
//
// recLen counts every byte after itself (16 + 32*n), so a reader can
// skip records it does not want; columns are stored contiguously, so a
// memory-mapped file can be scanned column-wise without decoding.
//
// Quantisation matches the CSV writer digit for digit: each float
// column stores the integer mantissa of strconv.FormatFloat(x, 'f',
// prec, 64) at the CSV precision (lon/lat 7, speed 2, fuel/dist 1
// decimals), and decoding divides by the exact power of ten. Both are
// correctly rounded, so a value loaded from binary is bit-identical
// to the same value written to CSV and re-parsed — the pipeline
// differential tests rely on this. The one canonicalisation: values
// whose formatted form is "-0.0…" decode as +0.
//
// Unlike CSV (which groups rows by trip id across the whole file),
// each binary record is self-contained, and empty trips are skipped on
// write, exactly as an empty trip writes no CSV rows.

var binaryMagic = [8]byte{'T', 'A', 'X', 'I', 'T', 'R', 'C', 'B'}

const (
	binaryVersion    = 1
	binaryHeaderLen  = 16
	binaryTripHead   = 16 // tripID + carID + nPoints
	binaryPointWidth = 32 // 7 columns: i32 + i64 + 5*i32

	// maxBinaryPoints bounds nPoints so a corrupt or hostile length
	// prefix cannot demand an absurd record; reads are additionally
	// chunked so allocation tracks bytes actually present.
	maxBinaryPoints = 1 << 24
)

// Column precisions, mirroring WriteCSV's FormatFloat calls.
const (
	lonLatPrec = 7
	speedPrec  = 2
	fuelPrec   = 1
	distPrec   = 1
)

var pow10 = [8]float64{1, 10, 100, 1000, 10000, 100000, 1000000, 10000000}

// quantDecimal returns the integer mantissa m of x formatted with
// FormatFloat(x, 'f', prec, 64), so that float64(m)/10^prec equals
// ParseFloat of that formatted string. Errors on non-finite x.
func quantDecimal(buf []byte, x float64, prec int) (int64, error) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0, fmt.Errorf("non-finite value %v", x)
	}
	s := strconv.AppendFloat(buf[:0], x, 'f', prec, 64)
	neg := false
	if len(s) > 0 && s[0] == '-' {
		neg = true
		s = s[1:]
	}
	var m int64
	for _, c := range s {
		if c == '.' {
			continue
		}
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("unexpected digit %q formatting %v", c, x)
		}
		d := int64(c - '0')
		if m > (math.MaxInt64-d)/10 {
			return 0, fmt.Errorf("value %v overflows the quantiser", x)
		}
		m = m*10 + d
	}
	if neg {
		m = -m
	}
	return m, nil
}

func quantInt32(buf []byte, x float64, prec int, field string, tripID int64) (int32, error) {
	m, err := quantDecimal(buf, x, prec)
	if err != nil {
		return 0, fmt.Errorf("trace: trip %d %s: %w", tripID, field, err)
	}
	if m < math.MinInt32 || m > math.MaxInt32 {
		return 0, fmt.Errorf("trace: trip %d %s %v overflows int32 at %d decimals", tripID, field, x, prec)
	}
	return int32(m), nil
}

// WriteBinary serialises trips to w in the binary trace format, using
// proj to convert positions to WGS84 (the same lossy step as CSV).
// Trips without points are skipped.
func WriteBinary(w io.Writer, trips []*Trip, proj *geo.Projection) error {
	bw := bufio.NewWriter(w)
	var head [binaryHeaderLen]byte
	copy(head[:8], binaryMagic[:])
	binary.LittleEndian.PutUint32(head[8:12], binaryVersion)
	if _, err := bw.Write(head[:]); err != nil {
		return fmt.Errorf("trace: write binary header: %w", err)
	}

	var rec []byte
	var qbuf [32]byte
	for _, t := range trips {
		n := len(t.Points)
		if n == 0 {
			continue
		}
		if n > maxBinaryPoints {
			return fmt.Errorf("trace: trip %d has %d points, format limit %d", t.ID, n, maxBinaryPoints)
		}
		recLen := binaryTripHead + n*binaryPointWidth
		rec = slices.Grow(rec[:0], 4+recLen)[:4+recLen]
		binary.LittleEndian.PutUint32(rec[0:4], uint32(recLen))
		binary.LittleEndian.PutUint64(rec[4:12], uint64(t.ID))
		binary.LittleEndian.PutUint32(rec[12:16], uint32(int32(t.CarID)))
		if int(int32(t.CarID)) != t.CarID {
			return fmt.Errorf("trace: trip %d car id %d overflows int32", t.ID, t.CarID)
		}
		binary.LittleEndian.PutUint32(rec[16:20], uint32(int32(n)))

		ids := rec[20:]
		times := ids[4*n:]
		lons := times[8*n:]
		lats := lons[4*n:]
		speeds := lats[4*n:]
		fuels := speeds[4*n:]
		dists := fuels[4*n:]
		for i := range t.Points {
			p := &t.Points[i]
			if int(int32(p.PointID)) != p.PointID {
				return fmt.Errorf("trace: trip %d point id %d overflows int32", t.ID, p.PointID)
			}
			ll := proj.ToPoint(p.Pos)
			lon, err := quantInt32(qbuf[:], ll.Lon, lonLatPrec, "lon", t.ID)
			if err != nil {
				return err
			}
			lat, err := quantInt32(qbuf[:], ll.Lat, lonLatPrec, "lat", t.ID)
			if err != nil {
				return err
			}
			speed, err := quantInt32(qbuf[:], p.SpeedKmh, speedPrec, "speed_kmh", t.ID)
			if err != nil {
				return err
			}
			fuel, err := quantInt32(qbuf[:], p.FuelMl, fuelPrec, "fuel_ml", t.ID)
			if err != nil {
				return err
			}
			dist, err := quantInt32(qbuf[:], p.DistM, distPrec, "dist_m", t.ID)
			if err != nil {
				return err
			}
			binary.LittleEndian.PutUint32(ids[4*i:], uint32(int32(p.PointID)))
			binary.LittleEndian.PutUint64(times[8*i:], uint64(p.Time.UnixMilli()))
			binary.LittleEndian.PutUint32(lons[4*i:], uint32(lon))
			binary.LittleEndian.PutUint32(lats[4*i:], uint32(lat))
			binary.LittleEndian.PutUint32(speeds[4*i:], uint32(speed))
			binary.LittleEndian.PutUint32(fuels[4*i:], uint32(fuel))
			binary.LittleEndian.PutUint32(dists[4*i:], uint32(dist))
		}
		if _, err := bw.Write(rec); err != nil {
			return fmt.Errorf("trace: write trip %d: %w", t.ID, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("trace: flush binary: %w", err)
	}
	return nil
}

// BinaryReader streams trip records from a binary trace file into an
// arena, one record per Next call, without materialising RoutePoints.
type BinaryReader struct {
	r       *bufio.Reader
	proj    *geo.Projection
	scratch []byte
}

// NewBinaryReader validates the file header and returns a streaming
// reader.
func NewBinaryReader(r io.Reader, proj *geo.Projection) (*BinaryReader, error) {
	br := &BinaryReader{proj: proj}
	if err := br.Reset(r, proj); err != nil {
		return nil, err
	}
	return br, nil
}

// Reset re-points the reader at a new stream, reusing its buffers, and
// validates the stream's header. A zero BinaryReader may be Reset.
func (br *BinaryReader) Reset(r io.Reader, proj *geo.Projection) error {
	if br.r == nil {
		br.r = bufio.NewReaderSize(r, 1<<16)
	} else {
		br.r.Reset(r)
	}
	br.proj = proj
	var head [binaryHeaderLen]byte
	if _, err := io.ReadFull(br.r, head[:]); err != nil {
		return fmt.Errorf("trace: read binary header: %w", err)
	}
	if [8]byte(head[:8]) != binaryMagic {
		return fmt.Errorf("trace: bad magic %q", head[:8])
	}
	if v := binary.LittleEndian.Uint32(head[8:12]); v != binaryVersion {
		return fmt.Errorf("trace: unsupported binary version %d", v)
	}
	return nil
}

// readBody reads need bytes into the reusable scratch buffer in
// bounded chunks, so a lying length prefix on a short input cannot
// force a large allocation.
func (br *BinaryReader) readBody(need int) ([]byte, error) {
	const chunk = 1 << 18
	br.scratch = br.scratch[:0]
	for len(br.scratch) < need {
		step := need - len(br.scratch)
		if step > chunk {
			step = chunk
		}
		off := len(br.scratch)
		br.scratch = slices.Grow(br.scratch, step)[:off+step]
		if _, err := io.ReadFull(br.r, br.scratch[off:]); err != nil {
			return nil, err
		}
	}
	return br.scratch, nil
}

// maxTimeMs bounds timestamps to the nanosecond-representable window
// used by the columnar store.
const maxTimeMs = math.MaxInt64 / int64(time.Millisecond)

// Next decodes the next trip record into the arena and returns its
// view. It returns io.EOF at a clean end of file.
func (br *BinaryReader) Next(a *Arena) (ColTrip, error) {
	var pre [4]byte
	if _, err := io.ReadFull(br.r, pre[:]); err != nil {
		if err == io.EOF {
			return ColTrip{}, io.EOF
		}
		return ColTrip{}, fmt.Errorf("trace: read record length: %w", err)
	}
	recLen := binary.LittleEndian.Uint32(pre[:])
	if recLen < binaryTripHead || (recLen-binaryTripHead)%binaryPointWidth != 0 {
		return ColTrip{}, fmt.Errorf("trace: invalid record length %d", recLen)
	}
	n := int(recLen-binaryTripHead) / binaryPointWidth
	if n == 0 {
		return ColTrip{}, fmt.Errorf("trace: empty trip record")
	}
	if n > maxBinaryPoints {
		return ColTrip{}, fmt.Errorf("trace: record claims %d points, limit %d", n, maxBinaryPoints)
	}
	body, err := br.readBody(int(recLen))
	if err != nil {
		return ColTrip{}, fmt.Errorf("trace: read record body: %w", err)
	}
	tripID := int64(binary.LittleEndian.Uint64(body[0:8]))
	carID := int32(binary.LittleEndian.Uint32(body[8:12]))
	if got := int32(binary.LittleEndian.Uint32(body[12:16])); int(got) != n {
		return ColTrip{}, fmt.Errorf("trace: trip %d declares %d points, record holds %d", tripID, got, n)
	}

	v := a.Alloc(tripID, int(carID), n)
	ids := body[16:]
	times := ids[4*n:]
	lons := times[8*n:]
	lats := lons[4*n:]
	speeds := lats[4*n:]
	fuels := speeds[4*n:]
	dists := fuels[4*n:]
	for i := 0; i < n; i++ {
		ms := int64(binary.LittleEndian.Uint64(times[8*i:]))
		if ms < -maxTimeMs || ms > maxTimeMs {
			return ColTrip{}, fmt.Errorf("trace: trip %d time %dms out of range", tripID, ms)
		}
		j := v.Off + i
		v.Cols.PointIDs[j] = int32(binary.LittleEndian.Uint32(ids[4*i:]))
		v.Cols.TimesNs[j] = ms * int64(time.Millisecond)
		v.Cols.Xs[j], v.Cols.Ys[j] = posFromE7(br.proj,
			int32(binary.LittleEndian.Uint32(lons[4*i:])),
			int32(binary.LittleEndian.Uint32(lats[4*i:])))
		v.Cols.Speeds[j] = float64(int32(binary.LittleEndian.Uint32(speeds[4*i:]))) / pow10[speedPrec]
		v.Cols.Fuels[j] = float64(int32(binary.LittleEndian.Uint32(fuels[4*i:]))) / pow10[fuelPrec]
		v.Cols.Dists[j] = float64(int32(binary.LittleEndian.Uint32(dists[4*i:]))) / pow10[distPrec]
	}
	return v, nil
}

func posFromE7(proj *geo.Projection, lonE7, latE7 int32) (x, y float64) {
	p := proj.ToXY(geo.Point{
		Lon: float64(lonE7) / pow10[lonLatPrec],
		Lat: float64(latE7) / pow10[lonLatPrec],
	})
	return p.X, p.Y
}

// ReadBinary parses a whole binary trace file into row-oriented trips,
// ordered by (car, trip id) like ReadCSV. Use NewBinaryReader + an
// Arena to ingest without materialising.
func ReadBinary(r io.Reader, proj *geo.Projection) ([]*Trip, error) {
	br, err := NewBinaryReader(r, proj)
	if err != nil {
		return nil, err
	}
	a := NewArena(0)
	var views []ColTrip
	for {
		v, err := br.Next(a)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		views = append(views, v)
	}
	// Binary records, like raw CSV rows, are in arrival order: no
	// time-sortedness is implied. One slab materialises the whole file.
	out := MaterializeAll(views, false)
	slices.SortStableFunc(out, func(a, b *Trip) int {
		if a.CarID != b.CarID {
			if a.CarID < b.CarID {
				return -1
			}
			return 1
		}
		if a.ID != b.ID {
			if a.ID < b.ID {
				return -1
			}
			return 1
		}
		return 0
	})
	return out, nil
}
