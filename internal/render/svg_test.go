package render

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/geo"
)

func renderCanvas(t *testing.T, f func(*Canvas)) string {
	t.Helper()
	c := NewCanvas(geo.R(0, 0, 1000, 500), 800)
	f(c)
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	s := buf.String()
	if !strings.HasPrefix(s, "<svg") || !strings.HasSuffix(strings.TrimSpace(s), "</svg>") {
		t.Fatalf("not a complete SVG: %q...", s[:40])
	}
	return s
}

func TestCanvasShapes(t *testing.T) {
	s := renderCanvas(t, func(c *Canvas) {
		c.Rect(geo.R(100, 100, 300, 200), "#ff0000", 0.5)
		c.Polyline(geo.Line(0, 0, 500, 250, 1000, 0), "#00ff00", 2)
		c.Circle(geo.V(500, 250), 4, "#0000ff")
		c.Text(geo.V(10, 490), "A<&>B", 12, "#000000")
	})
	for _, frag := range []string{"<rect", "<polyline", "<circle", "<text", "A&lt;&amp;&gt;B"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("missing %q in output", frag)
		}
	}
}

func TestCanvasAspectRatio(t *testing.T) {
	c := NewCanvas(geo.R(0, 0, 1000, 500), 800)
	var buf bytes.Buffer
	c.WriteTo(&buf)
	if !strings.Contains(buf.String(), `width="800" height="400"`) {
		t.Fatalf("aspect ratio not preserved: %s", buf.String()[:80])
	}
}

func TestCanvasCoordinateMapping(t *testing.T) {
	// The view's top-left corner must land at pixel (0,0) and the
	// bottom-right at (width, height): y is flipped.
	c := NewCanvas(geo.R(0, 0, 100, 100), 100)
	c.Circle(geo.V(0, 100), 1, "#000") // top-left in data space
	var buf bytes.Buffer
	c.WriteTo(&buf)
	if !strings.Contains(buf.String(), `cx="0.0" cy="0.0"`) {
		t.Fatalf("top-left mapping wrong: %s", buf.String())
	}
}

func TestCanvasSkipsDegeneratePolyline(t *testing.T) {
	s := renderCanvas(t, func(c *Canvas) {
		c.Polyline(geo.Polyline{geo.V(1, 1)}, "#000", 1)
	})
	if strings.Contains(s, "<polyline") {
		t.Fatal("single-point polyline should be skipped")
	}
}

func TestSpeedColor(t *testing.T) {
	slow := SpeedColor(0, 60)
	mid := SpeedColor(30, 60)
	fast := SpeedColor(60, 60)
	if slow == fast || slow == mid {
		t.Fatalf("palette degenerate: %s %s %s", slow, mid, fast)
	}
	if slow != "#ff2828" {
		t.Fatalf("slow colour = %s, want red", slow)
	}
	if fast != "#28aa3c" {
		t.Fatalf("fast colour = %s, want green", fast)
	}
	// Clamping.
	if SpeedColor(-10, 60) != slow || SpeedColor(500, 60) != fast {
		t.Fatal("speeds must clamp to the palette ends")
	}
	if SpeedColor(30, 0) == "" {
		t.Fatal("zero max must fall back to a default")
	}
}

func TestDivergingColor(t *testing.T) {
	neg := DivergingColor(-5, 5)
	zero := DivergingColor(0, 5)
	pos := DivergingColor(5, 5)
	if zero != "#ffffff" {
		t.Fatalf("zero must be white, got %s", zero)
	}
	if neg == pos || neg == zero {
		t.Fatalf("diverging palette degenerate: %s %s %s", neg, zero, pos)
	}
	if DivergingColor(-99, 5) != neg || DivergingColor(99, 5) != pos {
		t.Fatal("values must clamp")
	}
}

func TestXYChart(t *testing.T) {
	ch := NewXYChart(-3, 3, -10, 10, 700, 500)
	ch.Point(0, 0, 2, "#123456")
	ch.Line(-3, -9, 3, 9, "#888888")
	ch.VLineSegment(1, -2, 2, "#999999")
	ch.Bar(2, 5, 0.4, "#eeeeee")
	ch.Label(-2.5, 8, "hello", 12)
	var buf bytes.Buffer
	if _, err := ch.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, frag := range []string{"<circle", "<line", "<rect", "hello", "</svg>"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("chart missing %q", frag)
		}
	}
}

func TestXYChartDegenerateRanges(t *testing.T) {
	// Equal min/max must not divide by zero.
	ch := NewXYChart(1, 1, 2, 2, 0, 0)
	ch.Point(1, 2, 2, "#000")
	var buf bytes.Buffer
	if _, err := ch.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "NaN") {
		t.Fatal("degenerate ranges produced NaN coordinates")
	}
}

func TestLegends(t *testing.T) {
	c := NewCanvas(geo.R(0, 0, 1000, 500), 400)
	c.SpeedLegend(60)
	c.DivergingLegend(10, "km/h")
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, "60 km/h") || !strings.Contains(s, "+10 km/h") || !strings.Contains(s, "-10 km/h") {
		t.Fatalf("legend labels missing")
	}
}

func TestWidePolylineAndRectOutline(t *testing.T) {
	c := NewCanvas(geo.R(0, 0, 1000, 500), 500)
	c.WidePolyline(geo.Line(0, 0, 500, 0), "#ff0000", 100, 0.4)
	c.RectOutline(geo.R(100, 100, 300, 200), "#0000ff", 2)
	var buf bytes.Buffer
	c.WriteTo(&buf)
	s := buf.String()
	// 100 m at 0.5 px/m = 50 px stroke.
	if !strings.Contains(s, `stroke-width="50.0"`) {
		t.Fatalf("wide polyline stroke wrong: %s", s)
	}
	if !strings.Contains(s, `fill="none" stroke="#0000ff"`) {
		t.Fatal("rect outline missing")
	}
	// Degenerate chain skipped.
	c2 := NewCanvas(geo.R(0, 0, 10, 10), 100)
	c2.WidePolyline(geo.Polyline{geo.V(1, 1)}, "#000", 10, 1)
	var buf2 bytes.Buffer
	c2.WriteTo(&buf2)
	if strings.Contains(buf2.String(), "stroke-opacity") {
		t.Fatal("degenerate wide polyline drawn")
	}
}
