// Package render writes the paper's map figures as standalone SVG
// files: point-speed maps (Figs 3-5), cell choropleths with feature
// overlays (Figs 6, 9), scatter plots (Fig 7), and interval plots
// (Fig 8). It replaces the paper's Quantum GIS visualisation step.
package render

import (
	"fmt"
	"io"
	"math"

	"repro/internal/geo"
)

// Canvas maps a projected-coordinate viewport onto an SVG pixel frame
// and accumulates drawing commands.
type Canvas struct {
	view   geo.Rect
	width  int
	height int
	body   []string
	err    error
}

// NewCanvas creates a canvas showing view at the given pixel width;
// height follows the aspect ratio.
func NewCanvas(view geo.Rect, widthPx int) *Canvas {
	if widthPx <= 0 {
		widthPx = 800
	}
	h := int(float64(widthPx) * view.Height() / view.Width())
	if h <= 0 {
		h = widthPx
	}
	return &Canvas{view: view, width: widthPx, height: h}
}

// pt converts projected coordinates to pixels (SVG y grows downward).
func (c *Canvas) pt(p geo.XY) (float64, float64) {
	x := (p.X - c.view.MinX) / c.view.Width() * float64(c.width)
	y := (c.view.MaxY - p.Y) / c.view.Height() * float64(c.height)
	return x, y
}

// Rect draws a filled rectangle.
func (c *Canvas) Rect(r geo.Rect, fill string, opacity float64) {
	x0, y0 := c.pt(geo.XY{X: r.MinX, Y: r.MaxY})
	x1, y1 := c.pt(geo.XY{X: r.MaxX, Y: r.MinY})
	c.body = append(c.body, fmt.Sprintf(
		`<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" fill-opacity="%.2f"/>`,
		x0, y0, x1-x0, y1-y0, fill, opacity))
}

// Polyline draws a stroked chain.
func (c *Canvas) Polyline(pl geo.Polyline, stroke string, width float64) {
	if len(pl) < 2 {
		return
	}
	pts := ""
	for _, p := range pl {
		x, y := c.pt(p)
		pts += fmt.Sprintf("%.1f,%.1f ", x, y)
	}
	c.body = append(c.body, fmt.Sprintf(
		`<polyline points="%s" fill="none" stroke="%s" stroke-width="%.1f"/>`,
		pts, stroke, width))
}

// Circle draws a filled dot.
func (c *Canvas) Circle(p geo.XY, radiusPx float64, fill string) {
	x, y := c.pt(p)
	c.body = append(c.body, fmt.Sprintf(
		`<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s"/>`, x, y, radiusPx, fill))
}

// Text writes a label.
func (c *Canvas) Text(p geo.XY, s string, sizePx int, fill string) {
	x, y := c.pt(p)
	c.body = append(c.body, fmt.Sprintf(
		`<text x="%.1f" y="%.1f" font-size="%d" fill="%s" font-family="sans-serif">%s</text>`,
		x, y, sizePx, fill, xmlEscape(s)))
}

// WriteTo emits the complete SVG document.
func (c *Canvas) WriteTo(w io.Writer) (int64, error) {
	var n int64
	write := func(s string) error {
		m, err := io.WriteString(w, s)
		n += int64(m)
		return err
	}
	if err := write(fmt.Sprintf(
		`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		c.width, c.height, c.width, c.height)); err != nil {
		return n, err
	}
	if err := write(`<rect width="100%" height="100%" fill="white"/>` + "\n"); err != nil {
		return n, err
	}
	for _, b := range c.body {
		if err := write(b + "\n"); err != nil {
			return n, err
		}
	}
	return n, write("</svg>\n")
}

func xmlEscape(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch r {
		case '<':
			out = append(out, []rune("&lt;")...)
		case '>':
			out = append(out, []rune("&gt;")...)
		case '&':
			out = append(out, []rune("&amp;")...)
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

// SpeedColor maps a speed to the figure palette: red (slow) through
// yellow to green (fast), saturating at maxKmh.
func SpeedColor(speedKmh, maxKmh float64) string {
	if maxKmh <= 0 {
		maxKmh = 60
	}
	t := speedKmh / maxKmh
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	// 0 -> red (255,40,40); 0.5 -> yellow (250,220,60); 1 -> green (40,170,60).
	var r, g, b float64
	if t < 0.5 {
		u := t * 2
		r, g, b = 255+(250-255)*u, 40+(220-40)*u, 40+(60-40)*u
	} else {
		u := (t - 0.5) * 2
		r, g, b = 250+(40-250)*u, 220+(170-220)*u, 60
	}
	return fmt.Sprintf("#%02x%02x%02x", int(r), int(g), int(b))
}

// DivergingColor maps v in [-max, +max] to blue-white-red (used for
// the Fig 9 BLUP map: negative = slower than average = red).
func DivergingColor(v, max float64) string {
	if max <= 0 {
		max = 1
	}
	t := v / max
	if t < -1 {
		t = -1
	}
	if t > 1 {
		t = 1
	}
	var r, g, b float64
	if t < 0 {
		u := -t
		r, g, b = 255, 255-185*u, 255-195*u // toward red
	} else {
		u := t
		r, g, b = 255-205*u, 255-130*u, 255 // toward blue
	}
	return fmt.Sprintf("#%02x%02x%02x", int(r), int(g), int(b))
}

// XYChart is a minimal cartesian chart for the QQ and interval figures.
type XYChart struct {
	MinX, MaxX, MinY, MaxY float64
	width, height          int
	margin                 float64
	body                   []string
}

// NewXYChart creates a chart with the given data ranges.
func NewXYChart(minX, maxX, minY, maxY float64, widthPx, heightPx int) *XYChart {
	if widthPx <= 0 {
		widthPx = 700
	}
	if heightPx <= 0 {
		heightPx = 500
	}
	if maxX <= minX {
		maxX = minX + 1
	}
	if maxY <= minY {
		maxY = minY + 1
	}
	return &XYChart{
		MinX: minX, MaxX: maxX, MinY: minY, MaxY: maxY,
		width: widthPx, height: heightPx, margin: 45,
	}
}

func (c *XYChart) px(x, y float64) (float64, float64) {
	w := float64(c.width) - 2*c.margin
	h := float64(c.height) - 2*c.margin
	return c.margin + (x-c.MinX)/(c.MaxX-c.MinX)*w,
		float64(c.height) - c.margin - (y-c.MinY)/(c.MaxY-c.MinY)*h
}

// Point plots one dot.
func (c *XYChart) Point(x, y, radiusPx float64, fill string) {
	px, py := c.px(x, y)
	c.body = append(c.body, fmt.Sprintf(
		`<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s"/>`, px, py, radiusPx, fill))
}

// VLineSegment draws a vertical interval at x from yLo to yHi
// (Fig 8 confidence limits).
func (c *XYChart) VLineSegment(x, yLo, yHi float64, stroke string) {
	x0, y0 := c.px(x, yLo)
	_, y1 := c.px(x, yHi)
	c.body = append(c.body, fmt.Sprintf(
		`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1"/>`,
		x0, y0, x0, y1, stroke))
}

// Line draws a straight reference line between data points.
func (c *XYChart) Line(x0, y0, x1, y1 float64, stroke string) {
	px0, py0 := c.px(x0, y0)
	px1, py1 := c.px(x1, y1)
	c.body = append(c.body, fmt.Sprintf(
		`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1.5"/>`,
		px0, py0, px1, py1, stroke))
}

// Bar draws a vertical bar from the baseline (y=0 clipped to range).
func (c *XYChart) Bar(x, y, widthData float64, fill string) {
	base := math.Max(c.MinY, 0)
	x0, y0 := c.px(x-widthData/2, base)
	x1, y1 := c.px(x+widthData/2, y)
	if y1 > y0 {
		y0, y1 = y1, y0
	}
	c.body = append(c.body, fmt.Sprintf(
		`<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" stroke="black" stroke-width="0.5"/>`,
		x0, y1, x1-x0, y0-y1, fill))
}

// Label writes a chart annotation at data coordinates.
func (c *XYChart) Label(x, y float64, s string, sizePx int) {
	px, py := c.px(x, y)
	c.body = append(c.body, fmt.Sprintf(
		`<text x="%.1f" y="%.1f" font-size="%d" fill="black" font-family="sans-serif">%s</text>`,
		px, py, sizePx, xmlEscape(s)))
}

// WriteTo emits the chart with simple axes.
func (c *XYChart) WriteTo(w io.Writer) (int64, error) {
	var n int64
	write := func(s string) error {
		m, err := io.WriteString(w, s)
		n += int64(m)
		return err
	}
	if err := write(fmt.Sprintf(
		`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		c.width, c.height, c.width, c.height)); err != nil {
		return n, err
	}
	if err := write(`<rect width="100%" height="100%" fill="white"/>` + "\n"); err != nil {
		return n, err
	}
	// Axes.
	x0, y0 := c.px(c.MinX, c.MinY)
	x1, _ := c.px(c.MaxX, c.MinY)
	_, y1 := c.px(c.MinX, c.MaxY)
	axis := fmt.Sprintf(
		`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n"+
			`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n",
		x0, y0, x1, y0, x0, y0, x0, y1)
	if err := write(axis); err != nil {
		return n, err
	}
	for _, b := range c.body {
		if err := write(b + "\n"); err != nil {
			return n, err
		}
	}
	return n, write("</svg>\n")
}

// WidePolyline draws the chain as a translucent band widthM metres wide
// in data units — the thick-geometry visualisation of the paper's
// Fig 2.
func (c *Canvas) WidePolyline(pl geo.Polyline, stroke string, widthM, opacity float64) {
	if len(pl) < 2 {
		return
	}
	pxPerM := float64(c.width) / c.view.Width()
	pts := ""
	for _, p := range pl {
		x, y := c.pt(p)
		pts += fmt.Sprintf("%.1f,%.1f ", x, y)
	}
	c.body = append(c.body, fmt.Sprintf(
		`<polyline points="%s" fill="none" stroke="%s" stroke-width="%.1f" stroke-opacity="%.2f" stroke-linecap="round"/>`,
		pts, stroke, widthM*pxPerM, opacity))
}

// RectOutline draws an unfilled rectangle.
func (c *Canvas) RectOutline(r geo.Rect, stroke string, widthPx float64) {
	x0, y0 := c.pt(geo.XY{X: r.MinX, Y: r.MaxY})
	x1, y1 := c.pt(geo.XY{X: r.MaxX, Y: r.MinY})
	c.body = append(c.body, fmt.Sprintf(
		`<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="none" stroke="%s" stroke-width="%.1f"/>`,
		x0, y0, x1-x0, y1-y0, stroke, widthPx))
}

// SpeedLegend draws a horizontal speed-colour legend in the bottom-left
// corner of the canvas (pixel space).
func (c *Canvas) SpeedLegend(maxKmh float64) {
	if maxKmh <= 0 {
		maxKmh = 60
	}
	const (
		x0, h, w = 15.0, 12.0, 180.0
		steps    = 24
	)
	y0 := float64(c.height) - 30
	for i := 0; i < steps; i++ {
		v := float64(i) / (steps - 1) * maxKmh
		c.body = append(c.body, fmt.Sprintf(
			`<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`,
			x0+float64(i)*w/steps, y0, w/steps+0.5, h, SpeedColor(v, maxKmh)))
	}
	c.body = append(c.body, fmt.Sprintf(
		`<text x="%.1f" y="%.1f" font-size="11" font-family="sans-serif">0</text>`, x0, y0-3))
	c.body = append(c.body, fmt.Sprintf(
		`<text x="%.1f" y="%.1f" font-size="11" font-family="sans-serif">%.0f km/h</text>`,
		x0+w-30, y0-3, maxKmh))
}

// DivergingLegend draws a +/- legend for BLUP maps.
func (c *Canvas) DivergingLegend(maxAbs float64, unit string) {
	if maxAbs <= 0 {
		maxAbs = 1
	}
	const (
		x0, h, w = 15.0, 12.0, 180.0
		steps    = 24
	)
	y0 := float64(c.height) - 30
	for i := 0; i < steps; i++ {
		v := (2*float64(i)/(steps-1) - 1) * maxAbs
		c.body = append(c.body, fmt.Sprintf(
			`<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`,
			x0+float64(i)*w/steps, y0, w/steps+0.5, h, DivergingColor(v, maxAbs)))
	}
	c.body = append(c.body, fmt.Sprintf(
		`<text x="%.1f" y="%.1f" font-size="11" font-family="sans-serif">%+.0f %s</text>`, x0, y0-3, -maxAbs, unit))
	c.body = append(c.body, fmt.Sprintf(
		`<text x="%.1f" y="%.1f" font-size="11" font-family="sans-serif">%+.0f %s</text>`,
		x0+w-45, y0-3, maxAbs, unit))
}
