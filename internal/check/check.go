// Package check is the pipeline's correctness harness: a per-stage
// invariant validator that verifies, at every stage boundary, the
// structural guarantees the paper's methodology rests on — cleaned
// trips are monotone and finite (§IV-B), segments respect the Table 2
// bounds, OD transitions reference registered gates (Table 3),
// map-matched routes are edge-connected in the road graph, grid cell
// ids round-trip through their external string form, and serving-layer
// snapshots advance monotonically.
//
// The validator has two modes:
//
//   - counting (default): every violation increments the obs counter
//     check_violations_total{stage="...",rule="..."} and the run
//     continues — production posture, zero behaviour change;
//   - strict: violations are additionally returned as a typed
//     *CheckError, which the pipeline surfaces through the fleet
//     runner's fault path (the offending car fails with a CarError
//     attributing the stage), so a single corrupt car cannot poison a
//     fleet aggregate silently.
//
// Checks never mutate what they inspect and never allocate on the
// no-violation fast path beyond the rule closures themselves, so
// enabling the checker leaves pipeline output byte-identical (see the
// core determinism test, which runs strict).
package check

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/roadnet"
	"repro/internal/trace"
)

// Config enables the checker. The zero value disables all checking.
type Config struct {
	// Enabled turns invariant checking on at every stage boundary.
	Enabled bool
	// Strict additionally turns violations into *CheckError returns,
	// failing the offending car through the runner's fault path.
	// Implies Enabled.
	Strict bool
}

// On reports whether any checking is requested.
func (c Config) On() bool { return c.Enabled || c.Strict }

// Violation is one invariant breach, attributed to a pipeline stage
// and a named rule.
type Violation struct {
	Stage  string // pipeline stage ("clean", "segment", ...)
	Rule   string // rule slug ("monotone_time", "gate_registered", ...)
	Car    int    // offending car (0 when not car-scoped)
	Detail string // human-readable specifics
}

// String renders the violation compactly.
func (v Violation) String() string {
	return fmt.Sprintf("%s/%s car %d: %s", v.Stage, v.Rule, v.Car, v.Detail)
}

// CheckError is the typed strict-mode failure: every violation one
// stage boundary produced for one car. It is permanent (never marked
// runner.Transient): re-running the same car over the same data breaks
// the same invariant.
type CheckError struct {
	Violations []Violation
}

// Error summarises the violations.
func (e *CheckError) Error() string {
	if len(e.Violations) == 0 {
		return "check: invariant violation"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "check: %d invariant violation(s): %s", len(e.Violations), e.Violations[0].String())
	if len(e.Violations) > 1 {
		fmt.Fprintf(&b, " (+%d more)", len(e.Violations)-1)
	}
	return b.String()
}

// Validator checks stage outputs against the pipeline's invariants.
// Construct with New; a nil *Validator is valid and all its methods are
// no-ops returning nil, so call sites need no "is checking on?" guards.
type Validator struct {
	cfg   Config
	gates map[string]bool
	graph *roadnet.Graph
	reg   *obs.Registry

	// counters caches the per-(stage,rule) violation counters; resolved
	// lazily under mu via the registry (which is itself locked), so the
	// fast no-violation path touches none of this.
	counters map[string]*obs.Counter
}

// New builds a validator for one pipeline. gates is the registered
// gate-name set OD transitions must reference; graph is the road graph
// matched routes must be connected in (either may be nil when the
// corresponding stages are not exercised). Returns nil when cfg
// disables checking, which every method tolerates.
func New(cfg Config, gates []string, graph *roadnet.Graph, reg *obs.Registry) *Validator {
	if !cfg.On() {
		return nil
	}
	gs := make(map[string]bool, len(gates))
	for _, g := range gates {
		gs[g] = true
	}
	return &Validator{cfg: cfg, gates: gs, graph: graph, reg: reg, counters: map[string]*obs.Counter{}}
}

// Strict reports whether violations should fail the car.
func (v *Validator) Strict() bool { return v != nil && v.cfg.Strict }

// record counts one violation and, in strict mode, accumulates it onto
// the returned list.
func (v *Validator) record(acc []Violation, viol Violation) []Violation {
	name := "check_violations_total{stage=\"" + viol.Stage + "\",rule=\"" + viol.Rule + "\"}"
	c := v.counters[name]
	if c == nil {
		c = v.reg.Counter(name)
		v.counters[name] = c
	}
	c.Inc()
	return append(acc, viol)
}

// finish converts the accumulated violations into the method's return:
// nil when clean or when not strict.
func (v *Validator) finish(acc []Violation) error {
	if len(acc) == 0 || !v.cfg.Strict {
		return nil
	}
	return &CheckError{Violations: acc}
}

// finite reports a usable float (not NaN, not ±Inf).
func finite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

// RawTrips validates the pipeline's input boundary (the simulate
// stage, or CSV-loaded trips standing in for it): every raw trip is
// internally consistent (non-empty, points carry the owning trip id).
func (v *Validator) RawTrips(car int, trips []*trace.Trip) error {
	if v == nil {
		return nil
	}
	var acc []Violation
	for _, t := range trips {
		if err := t.Validate(); err != nil {
			acc = v.record(acc, Violation{
				Stage: "simulate", Rule: "trip_integrity", Car: car, Detail: err.Error(),
			})
		}
	}
	return v.finish(acc)
}

// CleanedTrips validates the cleaning boundary (§IV-B): every surviving
// trip has strictly increasing point ids, non-decreasing timestamps and
// cumulative measurements, and no non-finite coordinate or measurement —
// the monotonicity contract clean.Repair's realignment promises.
func (v *Validator) CleanedTrips(car int, trips []*trace.Trip) error {
	if v == nil {
		return nil
	}
	var acc []Violation
	for _, t := range trips {
		acc = v.checkCleanTrip(acc, car, t)
	}
	return v.finish(acc)
}

func (v *Validator) checkCleanTrip(acc []Violation, car int, t *trace.Trip) []Violation {
	bad := func(rule, format string, args ...any) {
		acc = v.record(acc, Violation{
			Stage: "clean", Rule: rule, Car: car,
			Detail: fmt.Sprintf("trip %d: ", t.ID) + fmt.Sprintf(format, args...),
		})
	}
	for i := range t.Points {
		p := &t.Points[i]
		if !finite(p.Pos.X) || !finite(p.Pos.Y) || !finite(p.SpeedKmh) || !finite(p.FuelMl) || !finite(p.DistM) {
			bad("finite", "point %d carries a non-finite field", i)
			return acc // one report per trip; the rest is noise
		}
		if i == 0 {
			continue
		}
		prev := &t.Points[i-1]
		switch {
		case p.PointID <= prev.PointID:
			bad("monotone_id", "point ids %d,%d not increasing at %d", prev.PointID, p.PointID, i)
			return acc
		case p.Time.Before(prev.Time):
			bad("monotone_time", "timestamps reversed at point %d", i)
			return acc
		case p.FuelMl < prev.FuelMl || p.DistM < prev.DistM:
			bad("monotone_cumulative", "cumulative fuel/dist decreased at point %d", i)
			return acc
		}
	}
	return acc
}

// SegmentRules is the subset of segmentation thresholds the checker
// enforces at the segment boundary (Table 2 post-filters).
type SegmentRules struct {
	MinPoints  int
	MaxLengthM float64
}

// Segments validates the segmentation boundary: every kept segment has
// at least MinPoints route points, is no longer than MaxLengthM (the
// paper's <5-point and 30 km bounds), and preserves the cleaned
// ordering contract.
func (v *Validator) Segments(car int, segs []*trace.Trip, rules SegmentRules) error {
	if v == nil {
		return nil
	}
	var acc []Violation
	for _, s := range segs {
		if rules.MinPoints > 0 && len(s.Points) < rules.MinPoints {
			acc = v.record(acc, Violation{
				Stage: "segment", Rule: "min_points", Car: car,
				Detail: fmt.Sprintf("trip %d: kept segment has %d < %d points", s.ID, len(s.Points), rules.MinPoints),
			})
		}
		if rules.MaxLengthM > 0 {
			if l := trace.PathLength(s.Points); !(l <= rules.MaxLengthM) { // catches NaN too
				acc = v.record(acc, Violation{
					Stage: "segment", Rule: "max_length", Car: car,
					Detail: fmt.Sprintf("trip %d: kept segment is %.0f m > %.0f m", s.ID, l, rules.MaxLengthM),
				})
			}
		}
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].Time.Before(s.Points[i-1].Time) {
				acc = v.record(acc, Violation{
					Stage: "segment", Rule: "monotone_time", Car: car,
					Detail: fmt.Sprintf("trip %d: timestamps reversed at point %d", s.ID, i),
				})
				break
			}
		}
	}
	return v.finish(acc)
}

// ODTransition is the view of one accepted transition the checker
// needs, decoupled from the odselect types to avoid an import cycle.
type ODTransition struct {
	From, To   string
	NumPoints  int // points of the underlying segment
	EntryIndex int // origin crossing entry index
	ExitIndex  int // destination crossing exit index
}

// Transitions validates the OD-selection boundary: accepted transitions
// reference registered gates, origin and destination differ, and the
// crossing indexes address real points of the segment.
func (v *Validator) Transitions(car int, trs []ODTransition) error {
	if v == nil {
		return nil
	}
	var acc []Violation
	for _, tr := range trs {
		if !v.gates[tr.From] || !v.gates[tr.To] {
			acc = v.record(acc, Violation{
				Stage: "odselect", Rule: "gate_registered", Car: car,
				Detail: fmt.Sprintf("transition %s-%s references an unregistered gate", tr.From, tr.To),
			})
		}
		if tr.From == tr.To {
			acc = v.record(acc, Violation{
				Stage: "odselect", Rule: "distinct_gates", Car: car,
				Detail: fmt.Sprintf("transition %s-%s starts and ends at the same gate", tr.From, tr.To),
			})
		}
		if tr.EntryIndex < 0 || tr.ExitIndex < 0 || tr.EntryIndex >= tr.NumPoints || tr.ExitIndex >= tr.NumPoints {
			acc = v.record(acc, Violation{
				Stage: "odselect", Rule: "crossing_bounds", Car: car,
				Detail: fmt.Sprintf("crossing indexes [%d,%d] outside segment of %d points",
					tr.EntryIndex, tr.ExitIndex, tr.NumPoints),
			})
		}
	}
	return v.finish(acc)
}

// MatchedRoute validates the map-matching boundary for one transition:
// the matched route's consecutive edges share a graph node (the
// edge-connected invariant; shortest-path gap fills included), every
// edge id is in range, and the matched fraction is a valid share.
func (v *Validator) MatchedRoute(car int, route []roadnet.EdgeID, matchedFraction float64) error {
	if v == nil {
		return nil
	}
	var acc []Violation
	if !(matchedFraction >= 0 && matchedFraction <= 1) {
		acc = v.record(acc, Violation{
			Stage: "mapmatch", Rule: "matched_fraction", Car: car,
			Detail: fmt.Sprintf("matched fraction %v outside [0,1]", matchedFraction),
		})
	}
	if v.graph != nil {
		for i, id := range route {
			if int(id) < 0 || int(id) >= len(v.graph.Edges) {
				acc = v.record(acc, Violation{
					Stage: "mapmatch", Rule: "edge_in_range", Car: car,
					Detail: fmt.Sprintf("route edge %d out of graph range", id),
				})
				return v.finish(acc)
			}
			if i == 0 {
				continue
			}
			a, b := &v.graph.Edges[route[i-1]], &v.graph.Edges[id]
			if a.From != b.From && a.From != b.To && a.To != b.From && a.To != b.To {
				acc = v.record(acc, Violation{
					Stage: "mapmatch", Rule: "edge_connected", Car: car,
					Detail: fmt.Sprintf("route edges %d→%d share no node", route[i-1], id),
				})
				break
			}
		}
	}
	return v.finish(acc)
}

// RouteAttrs validates the attribute-fetching boundary: per-route
// feature counts are non-negative.
func (v *Validator) RouteAttrs(car int, lights, busStops, pedestrian, junctions int) error {
	if v == nil {
		return nil
	}
	var acc []Violation
	if lights < 0 || busStops < 0 || pedestrian < 0 || junctions < 0 {
		acc = v.record(acc, Violation{
			Stage: "mapattr", Rule: "non_negative", Car: car,
			Detail: fmt.Sprintf("negative attribute count (%d,%d,%d,%d)", lights, busStops, pedestrian, junctions),
		})
	}
	return v.finish(acc)
}

// GridCells validates the grid boundary: every non-empty cell id
// round-trips through its external string form (ParseCellID∘String =
// identity) and holds at least one observation.
func (v *Validator) GridCells(agg *grid.Aggregator) error {
	if v == nil || agg == nil {
		return nil
	}
	var acc []Violation
	for _, c := range agg.Cells() {
		id, err := grid.ParseCellID(c.ID.String())
		if err != nil || id != c.ID {
			acc = v.record(acc, Violation{
				Stage: "grid", Rule: "cell_roundtrip",
				Detail: fmt.Sprintf("cell %v renders as %q which parses to %v (err=%v)", c.ID, c.ID.String(), id, err),
			})
		}
		if c.Speed.N() <= 0 {
			acc = v.record(acc, Violation{
				Stage: "grid", Rule: "non_empty",
				Detail: fmt.Sprintf("cell %v kept with no observations", c.ID),
			})
		}
	}
	return v.finish(acc)
}

// SnapshotMeta is the serving-layer view the checker validates: the
// epoch/count header of one published sink snapshot.
type SnapshotMeta struct {
	Epoch        uint64
	CarsIngested int
	CarsFailed   int
	Points       int
}

// SnapshotTransition validates one sink publish against its
// predecessor: the epoch advances strictly, and cars/points counters
// are non-negative and never move backwards (the aggregation only
// grows).
func (v *Validator) SnapshotTransition(prev, next SnapshotMeta) error {
	if v == nil {
		return nil
	}
	var acc []Violation
	bad := func(rule, format string, args ...any) {
		acc = v.record(acc, Violation{Stage: "sink", Rule: rule, Detail: fmt.Sprintf(format, args...)})
	}
	if next.Epoch <= prev.Epoch {
		bad("epoch_monotone", "epoch %d did not advance past %d", next.Epoch, prev.Epoch)
	}
	if next.CarsIngested < 0 || next.CarsFailed < 0 || next.Points < 0 {
		bad("non_negative", "negative counts in epoch %d (%d cars, %d failed, %d points)",
			next.Epoch, next.CarsIngested, next.CarsFailed, next.Points)
	}
	if next.CarsIngested < prev.CarsIngested || next.CarsFailed < prev.CarsFailed || next.Points < prev.Points {
		bad("monotone_counts", "epoch %d counts shrank from epoch %d", next.Epoch, prev.Epoch)
	}
	return v.finish(acc)
}
