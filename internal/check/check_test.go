package check

import (
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/roadnet"
	"repro/internal/trace"
)

func strictValidator(reg *obs.Registry) *Validator {
	return New(Config{Strict: true}, []string{"T", "S", "L"}, nil, reg)
}

func goodTrip(id int64, n int) *trace.Trip {
	t := &trace.Trip{ID: id}
	base := time.Date(2016, 3, 1, 8, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		t.Points = append(t.Points, trace.RoutePoint{
			TripID:  id,
			PointID: i + 1,
			Time:    base.Add(time.Duration(i) * 10 * time.Second),
			FuelMl:  float64(i) * 5,
			DistM:   float64(i) * 100,
		})
	}
	return t
}

func TestNilValidatorIsNoOp(t *testing.T) {
	if v := New(Config{}, nil, nil, nil); v != nil {
		t.Fatalf("disabled config must build a nil validator, got %v", v)
	}
	var v *Validator
	if v.Strict() {
		t.Fatal("nil validator must not be strict")
	}
	// Every method must tolerate the nil receiver.
	if err := v.RawTrips(0, []*trace.Trip{{}}); err != nil {
		t.Fatal(err)
	}
	if err := v.CleanedTrips(0, nil); err != nil {
		t.Fatal(err)
	}
	if err := v.Segments(0, nil, SegmentRules{}); err != nil {
		t.Fatal(err)
	}
	if err := v.Transitions(0, []ODTransition{{From: "X", To: "X"}}); err != nil {
		t.Fatal(err)
	}
	if err := v.MatchedRoute(0, nil, math.NaN()); err != nil {
		t.Fatal(err)
	}
	if err := v.RouteAttrs(0, -1, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := v.GridCells(nil); err != nil {
		t.Fatal(err)
	}
	if err := v.SnapshotTransition(SnapshotMeta{}, SnapshotMeta{}); err != nil {
		t.Fatal(err)
	}
}

func TestCountingModeNeverErrors(t *testing.T) {
	reg := obs.NewRegistry()
	v := New(Config{Enabled: true}, []string{"T"}, nil, reg)
	bad := goodTrip(1, 3)
	bad.Points[2].Time = bad.Points[0].Time.Add(-time.Hour)
	if err := v.CleanedTrips(7, []*trace.Trip{bad}); err != nil {
		t.Fatalf("counting mode returned %v", err)
	}
	snap := reg.Snapshot()
	name := `check_violations_total{stage="clean",rule="monotone_time"}`
	if snap.Counters[name] != 1 {
		t.Fatalf("violation counter = %d, counters: %v", snap.Counters[name], snap.Counters)
	}
}

func TestCleanedTripRules(t *testing.T) {
	cases := []struct {
		rule   string
		mutate func(*trace.Trip)
	}{
		{"finite", func(tr *trace.Trip) { tr.Points[1].Pos.X = math.NaN() }},
		{"finite", func(tr *trace.Trip) { tr.Points[0].SpeedKmh = math.Inf(1) }},
		{"monotone_id", func(tr *trace.Trip) { tr.Points[2].PointID = tr.Points[1].PointID }},
		{"monotone_time", func(tr *trace.Trip) { tr.Points[2].Time = tr.Points[0].Time.Add(-time.Second) }},
		{"monotone_cumulative", func(tr *trace.Trip) { tr.Points[2].FuelMl = -1 }},
	}
	for _, tc := range cases {
		reg := obs.NewRegistry()
		v := strictValidator(reg)
		tr := goodTrip(1, 4)
		tc.mutate(tr)
		err := v.CleanedTrips(3, []*trace.Trip{tr})
		var ce *CheckError
		if !errors.As(err, &ce) {
			t.Fatalf("%s: want *CheckError, got %v", tc.rule, err)
		}
		if got := ce.Violations[0].Rule; got != tc.rule {
			t.Fatalf("rule = %q, want %q (violations %v)", got, tc.rule, ce.Violations)
		}
		if ce.Violations[0].Car != 3 || ce.Violations[0].Stage != "clean" {
			t.Fatalf("violation attribution: %+v", ce.Violations[0])
		}
	}
	// A valid trip passes.
	v := strictValidator(obs.NewRegistry())
	if err := v.CleanedTrips(0, []*trace.Trip{goodTrip(1, 4)}); err != nil {
		t.Fatalf("valid trip flagged: %v", err)
	}
}

func TestSegmentRules(t *testing.T) {
	v := strictValidator(obs.NewRegistry())
	rules := SegmentRules{MinPoints: 5, MaxLengthM: 30000}

	ok := goodTrip(1, 5)
	if err := v.Segments(0, []*trace.Trip{ok}, rules); err != nil {
		t.Fatalf("exactly-MinPoints segment flagged: %v", err)
	}

	short := goodTrip(2, 4)
	err := v.Segments(0, []*trace.Trip{short}, rules)
	var ce *CheckError
	if !errors.As(err, &ce) || ce.Violations[0].Rule != "min_points" {
		t.Fatalf("want min_points violation, got %v", err)
	}

	long := goodTrip(3, 5)
	for i := range long.Points {
		long.Points[i].Pos.X = float64(i) * 10000 // 40 km of path
	}
	err = v.Segments(0, []*trace.Trip{long}, rules)
	if !errors.As(err, &ce) || ce.Violations[0].Rule != "max_length" {
		t.Fatalf("want max_length violation, got %v", err)
	}
}

func TestTransitionRules(t *testing.T) {
	v := strictValidator(obs.NewRegistry())
	if err := v.Transitions(0, []ODTransition{
		{From: "T", To: "S", NumPoints: 10, EntryIndex: 0, ExitIndex: 9},
	}); err != nil {
		t.Fatalf("valid transition flagged: %v", err)
	}
	for rule, tr := range map[string]ODTransition{
		"gate_registered": {From: "T", To: "X", NumPoints: 5, ExitIndex: 4},
		"distinct_gates":  {From: "T", To: "T", NumPoints: 5, ExitIndex: 4},
		"crossing_bounds": {From: "T", To: "S", NumPoints: 5, EntryIndex: 0, ExitIndex: 5},
	} {
		err := v.Transitions(0, []ODTransition{tr})
		var ce *CheckError
		if !errors.As(err, &ce) {
			t.Fatalf("%s: want *CheckError, got %v", rule, err)
		}
		found := false
		for _, viol := range ce.Violations {
			if viol.Rule == rule {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s not among violations %v", rule, ce.Violations)
		}
	}
}

func TestMatchedRouteRules(t *testing.T) {
	g := &roadnet.Graph{Edges: []roadnet.Edge{
		{From: 0, To: 1}, {From: 1, To: 2}, {From: 5, To: 6},
	}}
	reg := obs.NewRegistry()
	v := New(Config{Strict: true}, nil, g, reg)

	if err := v.MatchedRoute(0, []roadnet.EdgeID{0, 1}, 1); err != nil {
		t.Fatalf("connected route flagged: %v", err)
	}
	err := v.MatchedRoute(0, []roadnet.EdgeID{0, 2}, 1)
	var ce *CheckError
	if !errors.As(err, &ce) || ce.Violations[0].Rule != "edge_connected" {
		t.Fatalf("want edge_connected, got %v", err)
	}
	err = v.MatchedRoute(0, []roadnet.EdgeID{99}, 1)
	if !errors.As(err, &ce) || ce.Violations[0].Rule != "edge_in_range" {
		t.Fatalf("want edge_in_range, got %v", err)
	}
	err = v.MatchedRoute(0, nil, math.NaN())
	if !errors.As(err, &ce) || ce.Violations[0].Rule != "matched_fraction" {
		t.Fatalf("want matched_fraction, got %v", err)
	}
}

func TestGridCellRoundTrip(t *testing.T) {
	area := geo.R(0, 0, 1000, 1000)
	g, err := grid.New(area, 200)
	if err != nil {
		t.Fatal(err)
	}
	agg := grid.NewAggregator(g)
	agg.Add(area.Center(), 42)
	v := strictValidator(obs.NewRegistry())
	if err := v.GridCells(agg); err != nil {
		t.Fatalf("valid aggregation flagged: %v", err)
	}
}

func TestSnapshotTransitionRules(t *testing.T) {
	v := strictValidator(obs.NewRegistry())
	okPrev := SnapshotMeta{Epoch: 1, CarsIngested: 2, Points: 10}
	okNext := SnapshotMeta{Epoch: 2, CarsIngested: 3, Points: 15}
	if err := v.SnapshotTransition(okPrev, okNext); err != nil {
		t.Fatalf("valid transition flagged: %v", err)
	}
	for rule, next := range map[string]SnapshotMeta{
		"epoch_monotone":  {Epoch: 1, CarsIngested: 3, Points: 15},
		"non_negative":    {Epoch: 2, CarsIngested: -1, Points: 15},
		"monotone_counts": {Epoch: 2, CarsIngested: 1, Points: 15},
	} {
		err := v.SnapshotTransition(okPrev, next)
		var ce *CheckError
		if !errors.As(err, &ce) {
			t.Fatalf("%s: want *CheckError, got %v", rule, err)
		}
		found := false
		for _, viol := range ce.Violations {
			if viol.Rule == rule {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s not among %v", rule, ce.Violations)
		}
	}
}

func TestCheckErrorMessage(t *testing.T) {
	err := &CheckError{Violations: []Violation{
		{Stage: "clean", Rule: "finite", Car: 2, Detail: "trip 9: point 1 carries a non-finite field"},
		{Stage: "clean", Rule: "monotone_id", Car: 2, Detail: "x"},
	}}
	msg := err.Error()
	if !strings.Contains(msg, "2 invariant violation(s)") || !strings.Contains(msg, "clean/finite") ||
		!strings.Contains(msg, "+1 more") {
		t.Fatalf("message %q", msg)
	}
	if (&CheckError{}).Error() == "" {
		t.Fatal("empty CheckError must still describe itself")
	}
}
