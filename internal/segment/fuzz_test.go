package segment

import (
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/trace"
)

// FuzzSplit drives the segmenter with adversarial point sequences —
// zero and negative time deltas, teleporting positions, single-point
// trips — and checks the post-filter contract on whatever survives:
// every kept segment has at least MinPoints points and is no longer
// than MaxLengthM, the stats ledger matches the returned slice, and
// segments own their points (mutating one never writes through to the
// source trip).
func FuzzSplit(f *testing.F) {
	f.Add(int64(1), uint8(20), int64(30_000), false)
	f.Add(int64(42), uint8(80), int64(200_000), true)
	f.Add(int64(-3), uint8(5), int64(0), true)   // zero time deltas
	f.Add(int64(7), uint8(12), int64(-5000), true) // time running backwards

	f.Fuzz(func(t *testing.T, seed int64, n uint8, stepMs int64, jitter bool) {
		base := time.Date(2016, 3, 1, 8, 0, 0, 0, time.UTC)
		tr := &trace.Trip{ID: 1, CarID: 1}
		s := seed | 1
		next := func() int64 {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			return s
		}
		ts := base
		for i := 0; i < int(n); i++ {
			step := stepMs
			if jitter {
				step = next() % 1_200_000 // up to 20 min, sign included
			}
			ts = ts.Add(time.Duration(step) * time.Millisecond)
			tr.Points = append(tr.Points, trace.RoutePoint{
				PointID: i + 1, TripID: 1,
				Pos:  geo.V(float64(next()%50_000), float64(next()%50_000)),
				Time: ts,
			})
		}

		rules := DefaultRules()
		var stats Stats
		segs := Split(tr, rules, &stats)

		if stats.KeptSegments != len(segs) {
			t.Fatalf("stats.KeptSegments = %d, returned %d segments",
				stats.KeptSegments, len(segs))
		}
		total := 0
		for _, sg := range segs {
			if len(sg.Points) < rules.MinPoints {
				t.Fatalf("kept a %d-point segment, MinPoints = %d",
					len(sg.Points), rules.MinPoints)
			}
			if l := trace.PathLength(sg.Points); l > rules.MaxLengthM {
				t.Fatalf("kept a %.0f m segment, MaxLengthM = %.0f",
					l, rules.MaxLengthM)
			}
			if sg.ID != tr.ID || sg.CarID != tr.CarID {
				t.Fatal("segment lost its trip/car identity")
			}
			total += len(sg.Points)
		}
		if total > len(tr.Points) {
			t.Fatalf("segments hold %d points, source trip only %d",
				total, len(tr.Points))
		}

		// Aliasing: segments must be copies. Poison every segment point
		// and verify the source trip still reads its own ids.
		for _, sg := range segs {
			for i := range sg.Points {
				sg.Points[i].PointID = -1
			}
		}
		for i, p := range tr.Points {
			if p.PointID != i+1 {
				t.Fatalf("mutating a segment changed source point %d", i)
			}
		}
	})
}
