package segment

import (
	"math"
	"time"

	"repro/internal/trace"
)

// Columnar mirror of Split: the same Table 2 rules over an
// arena-backed view, with segments returned as zero-copy subviews
// instead of copied point slices. The rule expressions reuse the
// row-oriented shapes exactly, so a segment's membership — and every
// Stats counter — is identical between the two layouts.

// subNsSeg returns a-b as a Duration with time.Time.Sub's saturation.
func subNsSeg(a, b int64) time.Duration {
	d := a - b
	switch {
	case a > b && d < 0:
		return time.Duration(math.MaxInt64)
	case a < b && d >= 0:
		return time.Duration(math.MinInt64)
	}
	return time.Duration(d)
}

// SplitColumns segments one cleaned columnar trip, appending the kept
// segment views to out.
func SplitColumns(v trace.ColTrip, rules Rules, stats *Stats, out []trace.ColTrip) []trace.ColTrip {
	if stats != nil {
		stats.InputTrips++
	}
	segs := splitOnceCols(v, rules, false, stats, nil)

	// Rule 5: second round over segments that remain implausibly long.
	var kept []trace.ColTrip
	for _, s := range segs {
		if s.PathLength() > rules.ResplitLengthM {
			if stats != nil {
				stats.Resplit++
			}
			kept = splitOnceCols(s, rules, true, stats, kept)
			continue
		}
		kept = append(kept, s)
	}

	// Post-filters.
	for _, s := range kept {
		if stats != nil {
			stats.RawSegments++
		}
		n := s.Len()
		length := s.PathLength()
		switch {
		case n < rules.MinPoints:
			if stats != nil {
				stats.TooFewPoints++
			}
		case length > rules.MaxLengthM:
			if stats != nil {
				stats.TooLong++
			}
		default:
			out = append(out, s)
			if stats != nil {
				stats.KeptSegments++
				stats.TotalKeptLength += length
			}
		}
	}
	return out
}

// splitOnceCols mirrors splitOnce over a view, appending segments to
// segs.
func splitOnceCols(v trace.ColTrip, rules Rules, resplit bool, stats *Stats, segs []trace.ColTrip) []trace.ColTrip {
	n := v.Len()
	if n == 0 {
		return segs
	}
	stillGap := rules.StillGap
	stillRule := 1
	if resplit {
		stillGap = rules.ResplitGap
		stillRule = 5
	}
	start := 0
	emit := func(end, next, rule int) {
		if stats != nil {
			stats.StopGapsByRule[rule-1]++
			stats.DroppedStopPoints += next - end - 1
		}
		segs = append(segs, v.Sub(start, end+1))
		start = next
	}
	i := 0
	for i < n-1 {
		// Maximal still-run anchored at point i.
		j := i
		for j+1 < n && v.Pos(j+1).Dist(v.Pos(i)) < rules.MoveEpsilonM {
			j++
		}
		if j > i && subNsSeg(v.TimeNs(j), v.TimeNs(i)) >= stillGap {
			emit(i, j, stillRule)
			i = j
			continue
		}
		if !resplit {
			if r := pairRuleCols(v, i, i+1, rules); r != 0 {
				emit(i, i+1, r)
			}
		}
		i++
	}
	return append(segs, v.Sub(start, n))
}

// pairRuleCols mirrors pairRule for points a, b of a view.
func pairRuleCols(v trace.ColTrip, a, b int, rules Rules) int {
	dt := subNsSeg(v.TimeNs(b), v.TimeNs(a))
	if dt <= 0 {
		return 0
	}
	dd := v.Pos(a).Dist(v.Pos(b))
	sp := dd / dt.Seconds()
	switch {
	case dd < rules.SlowDistM && dt > rules.LongGap && sp > rules.CrawlSpeedMS:
		return 4
	case dd < rules.SlowDistM && dt > rules.SlowGap:
		return 2
	case sp < rules.CrawlSpeedMS:
		return 3
	default:
		return 0
	}
}
