package segment

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/trace"
)

// randomCleanedTrip builds a time-ordered trip shaped like cleaning
// output, with still periods, slow crawls and long gaps sprinkled in so
// every Table 2 rule fires across the population.
func randomCleanedTrip(rng *rand.Rand, id int64) *trace.Trip {
	tr := &trace.Trip{ID: id, CarID: 1}
	x, y := 0.0, 0.0
	at := time.Date(2012, 10, 1, 8, 0, 0, 0, time.UTC).Add(time.Duration(id) * time.Hour)
	n := 2 + rng.Intn(60)
	for i := 0; i < n; i++ {
		switch rng.Intn(8) {
		case 0: // still period (rule 1 / resplit rule 5 material)
			at = at.Add(time.Duration(1+rng.Intn(8)) * time.Minute)
			x += rng.Float64() * 5
		case 1: // long gap with little movement (rules 2 and 4)
			at = at.Add(time.Duration(5+rng.Intn(20)) * time.Minute)
			x += rng.Float64() * 2000
		case 2: // crawl (rule 3)
			at = at.Add(30 * time.Minute)
			x += 0.001
		case 3: // zero-duration pair
			x += 100
		default: // normal driving
			at = at.Add(time.Duration(10+rng.Intn(50)) * time.Second)
			x += 100 + rng.Float64()*400
			y += rng.Float64() * 50
		}
		tr.Points = append(tr.Points, trace.RoutePoint{
			PointID:  i + 1,
			TripID:   id,
			Pos:      geo.V(x, y),
			Time:     at,
			SpeedKmh: rng.Float64() * 60,
			FuelMl:   float64(i) * 8,
			DistM:    float64(i) * 100,
		})
	}
	tr.MarkTimeSorted()
	return tr
}

// TestSplitColumnsMatchesSplit: over thousands of random cleaned
// trips, columnar segmentation must produce the same segments — same
// membership, same point values — and the same Stats as the
// row-oriented Split.
func TestSplitColumnsMatchesSplit(t *testing.T) {
	rules := DefaultRules()
	loose := DefaultRules()
	loose.MinPoints = 2
	loose.ResplitLengthM = 5000
	loose.MaxLengthM = 100_000
	rng := rand.New(rand.NewSource(19))
	a := trace.NewArena(0)
	for i := 0; i < 3000; i++ {
		r := rules
		if i%2 == 1 {
			r = loose
		}
		tr := randomCleanedTrip(rng, int64(i+1))

		var wantStats Stats
		want := Split(tr, r, &wantStats)

		a.Reset()
		v, err := a.AppendTrip(tr)
		if err != nil {
			t.Fatal(err)
		}
		var gotStats Stats
		views := SplitColumns(v, r, &gotStats, nil)

		if wantStats != gotStats {
			t.Fatalf("trip %d stats diverge:\ncolumnar %+v\nlegacy   %+v", tr.ID, gotStats, wantStats)
		}
		if len(views) != len(want) {
			t.Fatalf("trip %d: columnar %d segments, legacy %d", tr.ID, len(views), len(want))
		}
		got := trace.MaterializeAll(views, true)
		for si := range want {
			ws, gs := want[si], got[si]
			if gs.ID != ws.ID || gs.CarID != ws.CarID || len(gs.Points) != len(ws.Points) {
				t.Fatalf("trip %d segment %d header diverges", tr.ID, si)
			}
			for k := range ws.Points {
				wp, gp := &ws.Points[k], &gs.Points[k]
				if gp.PointID != wp.PointID || !gp.Time.Equal(wp.Time) ||
					math.Float64bits(gp.Pos.X) != math.Float64bits(wp.Pos.X) ||
					math.Float64bits(gp.Pos.Y) != math.Float64bits(wp.Pos.Y) ||
					math.Float64bits(gp.SpeedKmh) != math.Float64bits(wp.SpeedKmh) ||
					math.Float64bits(gp.FuelMl) != math.Float64bits(wp.FuelMl) ||
					math.Float64bits(gp.DistM) != math.Float64bits(wp.DistM) {
					t.Fatalf("trip %d segment %d point %d diverges", tr.ID, si, k)
				}
			}
		}
	}
}

// TestSplitColumnsAppendsToOut: the out parameter accumulates across
// calls, the pattern the pipeline uses for a car's whole trip list.
func TestSplitColumnsAppendsToOut(t *testing.T) {
	rules := DefaultRules()
	rules.MinPoints = 2
	rng := rand.New(rand.NewSource(23))
	a := trace.NewArena(0)
	var out []trace.ColTrip
	wantTotal := 0
	for i := 0; i < 5; i++ {
		tr := randomCleanedTrip(rng, int64(i+1))
		wantTotal += len(Split(tr, rules, nil))
		v, err := a.AppendTrip(tr)
		if err != nil {
			t.Fatal(err)
		}
		out = SplitColumns(v, rules, nil, out)
	}
	if len(out) != wantTotal {
		t.Fatalf("accumulated %d segments, want %d", len(out), wantTotal)
	}
}
