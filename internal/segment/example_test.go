package segment_test

import (
	"fmt"
	"time"

	"repro/internal/geo"
	"repro/internal/segment"
	"repro/internal/trace"
)

func ExampleSplit() {
	// An engine-on trip: drive east, wait 5 minutes at a stand
	// (heartbeat points), drive on — rule 1 splits it in two.
	t0 := time.Date(2012, 10, 1, 8, 0, 0, 0, time.UTC)
	tr := &trace.Trip{ID: 1, CarID: 1}
	add := func(x float64, at time.Time) {
		tr.Points = append(tr.Points, trace.RoutePoint{
			PointID: len(tr.Points) + 1, TripID: 1,
			Pos: geo.V(x, 0), Time: at,
		})
	}
	at := t0
	for i := 0; i < 6; i++ { // customer run 1
		add(float64(i)*200, at)
		at = at.Add(30 * time.Second)
	}
	for w := 0; w < 4; w++ { // stand: no movement for 5 minutes
		at = at.Add(75 * time.Second)
		add(1000, at)
	}
	for i := 0; i < 6; i++ { // customer run 2
		add(1000+float64(i)*200, at)
		at = at.Add(30 * time.Second)
	}

	segs := segment.Split(tr, segment.DefaultRules(), nil)
	for i, s := range segs {
		fmt.Printf("segment %d: %d points, %.1f km\n",
			i+1, len(s.Points), trace.PathLength(s.Points)/1000)
	}
	// Output:
	// segment 1: 6 points, 1.0 km
	// segment 2: 6 points, 1.0 km
}
