package segment

import (
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/trace"
)

var t0 = time.Date(2012, 10, 1, 8, 0, 0, 0, time.UTC)

// builder assembles synthetic trips point by point.
type builder struct {
	tr  *trace.Trip
	now time.Time
	pos geo.XY
	id  int
}

func newBuilder() *builder {
	return &builder{tr: &trace.Trip{ID: 1, CarID: 1}, now: t0}
}

// drive appends points moving east at stepM per stepDT for n steps.
func (b *builder) drive(n int, stepM float64, stepDT time.Duration) *builder {
	for i := 0; i < n; i++ {
		b.pos.X += stepM
		b.now = b.now.Add(stepDT)
		b.emit()
	}
	return b
}

// idle appends points standing still, one per interval, for total time.
func (b *builder) idle(total, interval time.Duration) *builder {
	for waited := interval; waited <= total; waited += interval {
		b.now = b.now.Add(interval)
		b.emit()
	}
	return b
}

// gap advances time and position without emitting.
func (b *builder) gap(d time.Duration, moveM float64) *builder {
	b.now = b.now.Add(d)
	b.pos.X += moveM
	return b
}

func (b *builder) emit() {
	b.id++
	b.tr.Points = append(b.tr.Points, trace.RoutePoint{
		PointID: b.id, TripID: 1, Pos: b.pos, Time: b.now,
	})
}

func lengths(segs []*trace.Trip) []int {
	out := make([]int, len(segs))
	for i, s := range segs {
		out[i] = len(s.Points)
	}
	return out
}

func TestSplitNoStops(t *testing.T) {
	tr := newBuilder().drive(10, 100, 30*time.Second).tr
	segs := Split(tr, DefaultRules(), nil)
	if len(segs) != 1 || len(segs[0].Points) != 10 {
		t.Fatalf("continuous trip split: %v", lengths(segs))
	}
}

func TestRule1StillGap(t *testing.T) {
	// Drive, stand 4 min (heartbeat points 80 s apart), drive again.
	tr := newBuilder().
		drive(6, 100, 30*time.Second).
		idle(4*time.Minute, 80*time.Second).
		drive(6, 100, 30*time.Second).tr
	var stats Stats
	segs := Split(tr, DefaultRules(), &stats)
	if len(segs) < 2 {
		t.Fatalf("stand not split: %v", lengths(segs))
	}
	if stats.StopGapsByRule[0] == 0 {
		t.Fatalf("rule 1 did not fire: %+v", stats.StopGapsByRule)
	}
}

func TestRule2SlowGap(t *testing.T) {
	// A single 8-minute silent gap moving only 500 m.
	tr := newBuilder().
		drive(6, 100, 30*time.Second).
		gap(8*time.Minute, 500).
		drive(6, 100, 30*time.Second).tr
	var stats Stats
	segs := Split(tr, DefaultRules(), &stats)
	if len(segs) != 2 {
		t.Fatalf("slow gap not split: %v", lengths(segs))
	}
	if stats.StopGapsByRule[1] == 0 {
		t.Fatalf("rule 2 did not fire: %+v", stats.StopGapsByRule)
	}
}

func TestRule3Crawl(t *testing.T) {
	// Movement below 0.002 m/s: 0.05 m over 30 s.
	tr := newBuilder().
		drive(6, 100, 30*time.Second).
		drive(1, 0.05, 30*time.Second).
		drive(6, 100, 30*time.Second).tr
	var stats Stats
	segs := Split(tr, DefaultRules(), &stats)
	if len(segs) != 2 {
		t.Fatalf("crawl not split: %v", lengths(segs))
	}
	if stats.StopGapsByRule[2] == 0 {
		t.Fatalf("rule 3 did not fire: %+v", stats.StopGapsByRule)
	}
}

func TestRule4LongSlowGap(t *testing.T) {
	// 16 minutes, 1 km moved: above crawl speed, below 3 km.
	tr := newBuilder().
		drive(6, 100, 30*time.Second).
		gap(16*time.Minute, 1000).
		drive(6, 100, 30*time.Second).tr
	var stats Stats
	segs := Split(tr, DefaultRules(), &stats)
	if len(segs) != 2 {
		t.Fatalf("long slow gap not split: %v", lengths(segs))
	}
	if stats.StopGapsByRule[3] == 0 {
		t.Fatalf("rule 4 did not fire: %+v", stats.StopGapsByRule)
	}
}

func TestRule5Resplit(t *testing.T) {
	// 60 km of driving with a 2-minute pause in the middle: rules 1-4
	// miss it (2 min < 3 min), rule 5 re-splits at 1.5 min.
	b := newBuilder().drive(300, 100, 9*time.Second) // 30 km fast driving
	// A 2-minute pause moving only 10 m: rules 1-4 all miss it (too
	// short for rule 1, too slow-but-moving for rule 3).
	b.gap(2*time.Minute, 10)
	b.emit()
	b.drive(300, 100, 9*time.Second)
	var stats Stats
	segs := Split(b.tr, DefaultRules(), &stats)
	if stats.Resplit == 0 {
		t.Fatalf("rule 5 never engaged: %+v", stats)
	}
	if stats.StopGapsByRule[4] == 0 {
		t.Fatalf("rule 5 gap not recorded: %+v", stats.StopGapsByRule)
	}
	// Both halves are 30 km; the <=30 km filter keeps them.
	if len(segs) != 2 {
		t.Fatalf("resplit produced %d segments: %v", len(segs), lengths(segs))
	}
}

func TestPostFilterMinPoints(t *testing.T) {
	tr := newBuilder().
		drive(3, 100, 30*time.Second). // only 3 points
		idle(5*time.Minute, 80*time.Second).
		drive(8, 100, 30*time.Second).tr
	var stats Stats
	segs := Split(tr, DefaultRules(), &stats)
	if stats.TooFewPoints == 0 {
		t.Fatalf("short segment not dropped: %+v", stats)
	}
	for _, s := range segs {
		if len(s.Points) < DefaultRules().MinPoints {
			t.Fatalf("kept a %d-point segment", len(s.Points))
		}
	}
}

func TestPostFilterMaxLength(t *testing.T) {
	// One continuous 35 km drive: no stops, too long, dropped.
	tr := newBuilder().drive(350, 100, 9*time.Second).tr
	var stats Stats
	segs := Split(tr, DefaultRules(), &stats)
	if len(segs) != 0 || stats.TooLong != 1 {
		t.Fatalf("long trip kept: %v (stats %+v)", lengths(segs), stats)
	}
}

func TestSegmentsPreserveIDAndDistinctKeys(t *testing.T) {
	tr := newBuilder().
		drive(6, 100, 30*time.Second).
		idle(5*time.Minute, 80*time.Second).
		drive(6, 100, 30*time.Second).tr
	segs := Split(tr, DefaultRules(), nil)
	if len(segs) < 2 {
		t.Fatalf("want >=2 segments, got %v", lengths(segs))
	}
	keys := map[trace.Key]bool{}
	for _, s := range segs {
		if s.ID != tr.ID {
			t.Fatalf("segment lost trip id: %d", s.ID)
		}
		k := s.Key()
		if keys[k] {
			t.Fatalf("duplicate segment key %v", k)
		}
		keys[k] = true
	}
}

func TestSplitAllStats(t *testing.T) {
	a := newBuilder().drive(8, 100, 30*time.Second).tr
	b := newBuilder().
		drive(6, 100, 30*time.Second).
		idle(5*time.Minute, 80*time.Second).
		drive(6, 100, 30*time.Second).tr
	var stats Stats
	segs := SplitAll([]*trace.Trip{a, b}, DefaultRules(), &stats)
	if stats.InputTrips != 2 {
		t.Fatalf("InputTrips = %d", stats.InputTrips)
	}
	if stats.KeptSegments != len(segs) {
		t.Fatalf("KeptSegments %d != len %d", stats.KeptSegments, len(segs))
	}
	if stats.TotalKeptLength <= 0 {
		t.Fatal("TotalKeptLength not accumulated")
	}
}

func TestSplitEmptyTrip(t *testing.T) {
	segs := Split(&trace.Trip{ID: 1}, DefaultRules(), nil)
	if len(segs) != 0 {
		t.Fatalf("empty trip produced %d segments", len(segs))
	}
}

func TestSplitPreservesAllPoints(t *testing.T) {
	// Segmentation must partition the points: nothing lost before the
	// post-filters.
	tr := newBuilder().
		drive(7, 100, 30*time.Second).
		idle(4*time.Minute, 80*time.Second).
		drive(9, 100, 30*time.Second).tr
	rules := DefaultRules()
	rules.MinPoints = 1 // disable dropping for this check
	var stats Stats
	segs := Split(tr, rules, &stats)
	total := 0
	for _, s := range segs {
		total += len(s.Points)
	}
	// Segmentation partitions the points up to the heartbeat points
	// discarded inside detected stops.
	if total+stats.DroppedStopPoints != len(tr.Points) {
		t.Fatalf("segments hold %d + %d dropped, input had %d",
			total, stats.DroppedStopPoints, len(tr.Points))
	}
}

func TestZeroDTGapIgnored(t *testing.T) {
	b := newBuilder().drive(6, 100, 30*time.Second)
	// Duplicate timestamp at a new position: dt == 0 must not split or
	// divide by zero.
	b.pos.X += 100
	b.emit()
	b.drive(4, 100, 30*time.Second)
	segs := Split(b.tr, DefaultRules(), nil)
	if len(segs) != 1 {
		t.Fatalf("zero-dt gap split the trip: %v", lengths(segs))
	}
}

func TestSplitIdempotent(t *testing.T) {
	// Re-splitting the kept segments must not split further: the
	// pipeline can safely re-run segmentation.
	tr := newBuilder().
		drive(8, 100, 30*time.Second).
		idle(5*time.Minute, 80*time.Second).
		drive(8, 100, 30*time.Second).
		gap(8*time.Minute, 500).
		drive(8, 100, 30*time.Second).tr
	first := Split(tr, DefaultRules(), nil)
	if len(first) < 3 {
		t.Fatalf("setup: expected >=3 segments, got %d", len(first))
	}
	for i, seg := range first {
		again := Split(seg, DefaultRules(), nil)
		if len(again) != 1 {
			t.Fatalf("segment %d re-split into %d", i, len(again))
		}
		if len(again[0].Points) != len(seg.Points) {
			t.Fatalf("segment %d lost points on re-split", i)
		}
	}
}

// --- Post-filter boundary semantics -------------------------------
//
// The paper's filters are "fewer than five route points" and "longer
// than 30 km": both are strict, so a segment with exactly MinPoints
// points or exactly MaxLengthM metres is kept. These tests pin the
// comparison direction against off-by-one regressions.

func TestPostFilterExactlyMinPointsKept(t *testing.T) {
	rules := DefaultRules()
	tr := newBuilder().drive(rules.MinPoints, 100, 30*time.Second).tr
	var stats Stats
	segs := Split(tr, rules, &stats)
	if len(segs) != 1 || len(segs[0].Points) != rules.MinPoints {
		t.Fatalf("exactly-%d-point segment not kept: %v (stats %+v)",
			rules.MinPoints, lengths(segs), stats)
	}
	// One point fewer crosses the boundary.
	tr = newBuilder().drive(rules.MinPoints-1, 100, 30*time.Second).tr
	if segs := Split(tr, rules, nil); len(segs) != 0 {
		t.Fatalf("%d-point segment kept: %v", rules.MinPoints-1, lengths(segs))
	}
}

func TestPostFilterExactlyMaxLengthKept(t *testing.T) {
	rules := DefaultRules()
	// 5 points, 4 legs of 7.5 km in 1 min each: exactly 30 000 m.
	tr := newBuilder().drive(5, rules.MaxLengthM/4, time.Minute).tr
	if l := trace.PathLength(tr.Points); l != rules.MaxLengthM {
		t.Fatalf("setup: trip is %.1f m, want exactly %.1f", l, rules.MaxLengthM)
	}
	var stats Stats
	segs := Split(tr, rules, &stats)
	if len(segs) != 1 || stats.TooLong != 0 {
		t.Fatalf("exactly-%.0f-m segment not kept: %v (stats %+v)",
			rules.MaxLengthM, lengths(segs), stats)
	}
	// One extra metre over the four legs crosses the boundary.
	tr = newBuilder().drive(5, (rules.MaxLengthM+1)/4, time.Minute).tr
	segs = Split(tr, rules, &stats)
	if len(segs) != 0 || stats.TooLong != 1 {
		t.Fatalf("over-length segment kept: %v (stats %+v)", lengths(segs), stats)
	}
}

// TestSplitZeroDurationPairs feeds a trip whose consecutive points all
// share one timestamp. The gap rules divide by dt; they must treat
// dt <= 0 as "no stop" rather than producing an Inf/NaN speed that
// fires rule 3.
func TestSplitZeroDurationPairs(t *testing.T) {
	tr := &trace.Trip{ID: 1, CarID: 1}
	for i := 0; i < 6; i++ {
		tr.Points = append(tr.Points, trace.RoutePoint{
			PointID: i + 1, TripID: 1,
			Pos:  geo.V(float64(i)*100, 0),
			Time: t0, // every pair has dt == 0
		})
	}
	var stats Stats
	segs := Split(tr, DefaultRules(), &stats)
	if len(segs) != 1 || len(segs[0].Points) != 6 {
		t.Fatalf("zero-duration trip mangled: %v (stats %+v)", lengths(segs), stats)
	}
	if got := stats.StopGapsByRule; got != [5]int{} {
		t.Fatalf("zero-duration gaps classified as stops: %v", got)
	}
}

// TestSubTripDoesNotAliasParent pins that segments copy their point
// slices: writing through a returned segment must never reach the
// cleaned source trip other stages still hold.
func TestSubTripDoesNotAliasParent(t *testing.T) {
	tr := newBuilder().
		drive(6, 100, 30*time.Second).
		idle(5*time.Minute, 80*time.Second).
		drive(6, 100, 30*time.Second).tr
	segs := Split(tr, DefaultRules(), nil)
	if len(segs) < 2 {
		t.Fatalf("want >=2 segments, got %v", lengths(segs))
	}
	for _, s := range segs {
		for i := range s.Points {
			s.Points[i].PointID = -1
			s.Points[i].Pos = geo.V(-1e9, -1e9)
		}
	}
	for i, p := range tr.Points {
		if p.PointID == -1 || p.Pos.X == -1e9 {
			t.Fatalf("segment mutation reached parent point %d", i)
		}
	}
}
