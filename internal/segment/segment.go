// Package segment splits day-long engine-on taxi trips into customer
// trip segments using the paper's time-based segmentation rules
// (Table 2), then filters segments too short or too long to analyse.
//
// Taxi drivers can drive almost the whole day without turning the
// engine off, so a raw "trip" (engine-on period) spans many customer
// runs separated by stand waits. The five rules detect those stops:
//
//  1. no movement between route points for >= 3 minutes;
//  2. less than 3 km moved across a gap of more than 7 minutes;
//  3. implied speed below 0.002 m/s between consecutive points;
//  4. less than 3 km in more than 15 minutes at speed above 0.002 m/s;
//  5. after the first round, segments longer than 40 km are re-split
//     with rule 1 at a 1.5-minute interval.
//
// Finally, segments with fewer than five route points or longer than
// 30 km are removed.
package segment

import (
	"time"

	"repro/internal/trace"
)

// Rules holds the Table 2 thresholds. DefaultRules reproduces the
// paper's values; tests and ablations may vary them.
type Rules struct {
	// Rule 1: a gap with less than MoveEpsilonM movement lasting at
	// least StillGap is a stop.
	StillGap     time.Duration
	MoveEpsilonM float64

	// Rule 2: a gap longer than SlowGap with less than SlowDistM moved
	// is a stop.
	SlowGap   time.Duration
	SlowDistM float64

	// Rule 3: implied speed below CrawlSpeedMS (m/s) is a stop.
	CrawlSpeedMS float64

	// Rule 4: a gap longer than LongGap with less than SlowDistM moved
	// (at speed above CrawlSpeedMS) is a stop.
	LongGap time.Duration

	// Rule 5: segments longer than ResplitLengthM after the first round
	// are re-split with rule 1 at ResplitGap.
	ResplitLengthM float64
	ResplitGap     time.Duration

	// Post-filters.
	MinPoints  int
	MaxLengthM float64
}

// DefaultRules returns the paper's Table 2 thresholds.
func DefaultRules() Rules {
	return Rules{
		StillGap:       3 * time.Minute,
		MoveEpsilonM:   25, // "does not change", allowing GPS noise
		SlowGap:        7 * time.Minute,
		SlowDistM:      3000,
		CrawlSpeedMS:   0.002,
		LongGap:        15 * time.Minute,
		ResplitLengthM: 40_000,
		ResplitGap:     90 * time.Second,
		MinPoints:      5,
		MaxLengthM:     30_000,
	}
}

// Stats summarises one segmentation run.
type Stats struct {
	InputTrips        int
	RawSegments       int // segments found before post-filtering
	Resplit           int // segments re-split by rule 5
	TooFewPoints      int // dropped: fewer than MinPoints
	TooLong           int // dropped: longer than MaxLengthM
	KeptSegments      int
	StopGapsByRule    [5]int // which rule fired, for diagnostics
	DroppedStopPoints int    // heartbeat points inside detected stops
	TotalKeptLength   float64
}

// Split segments one cleaned trip. Points must already be in true
// order (package clean guarantees this). The returned segments share
// the source trip's ID; the paper's trip-id + start-time key keeps them
// distinct.
func Split(t *trace.Trip, rules Rules, stats *Stats) []*trace.Trip {
	if stats != nil {
		stats.InputTrips++
	}
	segs := splitOnce(t, rules, false, stats)

	// Rule 5: second round over segments that remain implausibly long.
	var out []*trace.Trip
	for _, s := range segs {
		if trace.PathLength(s.Points) > rules.ResplitLengthM {
			if stats != nil {
				stats.Resplit++
			}
			out = append(out, splitOnce(s, rules, true, stats)...)
			continue
		}
		out = append(out, s)
	}

	// Post-filters.
	kept := out[:0]
	for _, s := range out {
		if stats != nil {
			stats.RawSegments++
		}
		n := len(s.Points)
		length := trace.PathLength(s.Points)
		switch {
		case n < rules.MinPoints:
			if stats != nil {
				stats.TooFewPoints++
			}
		case length > rules.MaxLengthM:
			if stats != nil {
				stats.TooLong++
			}
		default:
			kept = append(kept, s)
			if stats != nil {
				stats.KeptSegments++
				stats.TotalKeptLength += length
			}
		}
	}
	return kept
}

// SplitAll segments a batch of cleaned trips.
func SplitAll(trips []*trace.Trip, rules Rules, stats *Stats) []*trace.Trip {
	var out []*trace.Trip
	for _, t := range trips {
		out = append(out, Split(t, rules, stats)...)
	}
	return out
}

// splitOnce breaks the trip at every detected stop. Rule 1 (and its
// rule 5 variant on the re-split round) is a *window* rule: the device
// keeps emitting heartbeat points while the taxi stands, so stillness
// must be detected over runs of points that stay within MoveEpsilonM,
// not over single gaps. Rules 2-4 act on single inter-point gaps.
//
// At a still-run stop the segment ends at the run's first point (the
// arrival) and the next segment starts at the run's last point (the
// departure); the heartbeat points strictly inside the stop are
// discarded (counted in Stats.DroppedStopPoints).
func splitOnce(t *trace.Trip, rules Rules, resplit bool, stats *Stats) []*trace.Trip {
	pts := t.Points
	if len(pts) == 0 {
		return nil
	}
	type cut struct {
		end  int // last index of the finished segment (inclusive)
		next int // first index of the following segment
		rule int // 1-based rule number
	}
	var cuts []cut

	stillGap := rules.StillGap
	stillRule := 1
	if resplit {
		stillGap = rules.ResplitGap
		stillRule = 5
	}
	i := 0
	for i < len(pts)-1 {
		// Maximal still-run anchored at point i.
		j := i
		for j+1 < len(pts) && pts[j+1].Pos.Dist(pts[i].Pos) < rules.MoveEpsilonM {
			j++
		}
		if j > i && pts[j].Time.Sub(pts[i].Time) >= stillGap {
			cuts = append(cuts, cut{end: i, next: j, rule: stillRule})
			i = j
			continue
		}
		if !resplit {
			if r := pairRule(&pts[i], &pts[i+1], rules); r != 0 {
				cuts = append(cuts, cut{end: i, next: i + 1, rule: r})
			}
		}
		i++
	}

	var segs []*trace.Trip
	start := 0
	for _, c := range cuts {
		if stats != nil {
			stats.StopGapsByRule[c.rule-1]++
			stats.DroppedStopPoints += c.next - c.end - 1
		}
		segs = append(segs, subTrip(t, start, c.end+1))
		start = c.next
	}
	segs = append(segs, subTrip(t, start, len(pts)))
	return segs
}

// pairRule returns the rule (2, 3 or 4) classifying a single
// inter-point gap as a stop, or 0.
func pairRule(a, b *trace.RoutePoint, rules Rules) int {
	dt := b.Time.Sub(a.Time)
	if dt <= 0 {
		return 0
	}
	dd := a.Pos.Dist(b.Pos)
	v := dd / dt.Seconds()
	switch {
	case dd < rules.SlowDistM && dt > rules.LongGap && v > rules.CrawlSpeedMS:
		return 4
	case dd < rules.SlowDistM && dt > rules.SlowGap:
		return 2
	case v < rules.CrawlSpeedMS:
		return 3
	default:
		return 0
	}
}

// subTrip copies points [i, j) into a fresh segment trip.
func subTrip(t *trace.Trip, i, j int) *trace.Trip {
	out := &trace.Trip{ID: t.ID, CarID: t.CarID}
	out.Points = append([]trace.RoutePoint(nil), t.Points[i:j]...)
	if t.TimeSorted() {
		// A contiguous slice of a time-ordered trip stays ordered.
		out.MarkTimeSorted()
	}
	return out
}
