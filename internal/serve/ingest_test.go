package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/ingest"
	"repro/internal/sink"
	"repro/internal/tracegen"
)

// The ingest endpoint tests need a real pipeline (the engine drives
// the batch stages); construction synthesises the city once.
var ingestPipe struct {
	once sync.Once
	p    *core.Pipeline
	err  error
}

func ingestPipeline(t *testing.T) *core.Pipeline {
	t.Helper()
	ingestPipe.once.Do(func() {
		ingestPipe.p, ingestPipe.err = core.NewPipeline(core.Config{
			CitySeed: 42,
			Layout:   core.LayoutLegacy,
			Fleet: tracegen.Config{
				Seed: 42, Cars: 2, TripsPerCar: 2, GateRunFraction: 0.3,
			},
		})
	})
	if ingestPipe.err != nil {
		t.Fatal(ingestPipe.err)
	}
	return ingestPipe.p
}

// newIngestAPI wires a fresh engine and sink behind the HTTP API.
func newIngestAPI(t *testing.T) (*ingest.Engine, *API) {
	t.Helper()
	p := ingestPipeline(t)
	g, err := sink.GridForPipeline(p)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sink.New(sink.Config{
		Grid: g, Shards: 2, PublishEvery: 1, Gates: p.Selector.GateNames(),
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := ingest.New(ingest.Config{
		Pipeline:        p,
		Sink:            s,
		AllowedLateness: 5 * time.Second,
		WatermarkEvery:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e, NewAPI(s, nil).WithIngest(e)
}

// firehosePoints fabricates n in-area points of one trip at 1 Hz,
// starting at event time 1 s (epoch ms 0 is the invalid-time
// sentinel).
func firehosePoints(p *core.Pipeline, n int) []ingest.Point {
	area := p.Config.Clean.Area
	centre := geo.XY{X: (area.MinX + area.MaxX) / 2, Y: (area.MinY + area.MaxY) / 2}
	ll := p.City.DB.Proj.ToPoint(centre)
	pts := make([]ingest.Point, n)
	for i := range pts {
		pts[i] = ingest.Point{
			Car: 1, Trip: 1, Seq: i,
			TimeMs: int64(i+1) * 1000,
			Lon:    ll.Lon, Lat: ll.Lat,
			SpeedKmh: 25, FuelMl: 0.1, DistM: 7,
		}
	}
	return pts
}

// post performs a POST against the API and decodes a JSON body.
func post(t *testing.T, api *API, path, contentType string, body io.Reader, out any) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", path, body)
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	rec := httptest.NewRecorder()
	api.ServeHTTP(rec, req)
	if out != nil && rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("POST %s: bad JSON: %v\n%s", path, err, rec.Body.String())
		}
	}
	return rec
}

// TestIngestNDJSON drives the full firehose lifecycle over HTTP:
// NDJSON points in, per-body admission summary out, close seals the
// snapshot and parks the watermark at +infinity.
func TestIngestNDJSON(t *testing.T) {
	_, api := newIngestAPI(t)
	pts := firehosePoints(ingestPipeline(t), 20)
	var buf bytes.Buffer
	if err := ingest.WriteNDJSON(&buf, pts); err != nil {
		t.Fatal(err)
	}

	var resp struct {
		Received    int   `json:"received"`
		Admitted    int   `json:"admitted"`
		WatermarkMs int64 `json:"watermark_ms"`
	}
	rec := post(t, api, "/v1/ingest", "application/x-ndjson", &buf, &resp)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	if resp.Received != 20 || resp.Admitted != 20 {
		t.Fatalf("response = %+v, want 20 received and admitted", resp)
	}
	if want := int64((20 - 5) * 1000); resp.WatermarkMs != want {
		t.Fatalf("watermark_ms = %d, want %d", resp.WatermarkMs, want)
	}

	var closed struct {
		Closed      bool  `json:"closed"`
		WatermarkMs int64 `json:"watermark_ms"`
	}
	rec = post(t, api, "/v1/ingest/close", "", nil, &closed)
	if rec.Code != http.StatusOK || !closed.Closed {
		t.Fatalf("close: status %d body %s", rec.Code, rec.Body.String())
	}
	if closed.WatermarkMs != math.MaxInt64 {
		t.Fatalf("closed watermark = %d, want MaxInt64", closed.WatermarkMs)
	}

	var snap struct {
		Complete     bool `json:"complete"`
		CarsIngested int  `json:"cars_ingested"`
	}
	get(t, api, "/v1/snapshot", &snap)
	if !snap.Complete || snap.CarsIngested != 1 {
		t.Fatalf("snapshot after close = %+v, want complete with 1 car", snap)
	}
}

// TestIngestBinary posts the same stream in the TAXIPNTB framing; the
// handler must sniff it without a content-type hint.
func TestIngestBinary(t *testing.T) {
	_, api := newIngestAPI(t)
	pts := firehosePoints(ingestPipeline(t), 12)
	var buf bytes.Buffer
	if err := ingest.WriteBinary(&buf, pts); err != nil {
		t.Fatal(err)
	}

	var resp struct {
		Received int `json:"received"`
		Admitted int `json:"admitted"`
	}
	rec := post(t, api, "/v1/ingest", "application/octet-stream", &buf, &resp)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	if resp.Received != 12 || resp.Admitted != 12 {
		t.Fatalf("response = %+v, want 12 received and admitted", resp)
	}
}

// TestIngestBadBody checks a malformed stream yields the shared error
// envelope — and that it reports how many points were accepted before
// the decode failure (the firehose is not a transaction).
func TestIngestBadBody(t *testing.T) {
	e, api := newIngestAPI(t)
	body := `{"car":1,"trip":1,"seq":0,"time_ms":1000,"lon":25.4,"lat":65.0}
{"car":1 broken`
	rec := post(t, api, "/v1/ingest", "application/x-ndjson", strings.NewReader(body), nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", rec.Code)
	}
	var env errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatalf("bad envelope: %v\n%s", err, rec.Body.String())
	}
	if env.Error.Code != "bad_request" {
		t.Fatalf("code = %q, want bad_request", env.Error.Code)
	}
	if !strings.Contains(env.Error.Message, "1 points accepted before the error") {
		t.Fatalf("message = %q, want the partial-accept count", env.Error.Message)
	}
	if st := e.Stats(); st.Received != 1 {
		t.Fatalf("engine received %d points, want the 1 decoded before the error", st.Received)
	}
}
