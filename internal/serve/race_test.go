package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/grid"
	"repro/internal/odselect"
	"repro/internal/sink"
	"repro/internal/trace"
)

// pairedCar builds a car carrying exactly one T-S and one S-T
// transition with three speed points each. Because a car is absorbed
// atomically, every published epoch must hold equally many trips in
// both directions and a point total divisible by six — the invariants
// the readers below check for torn snapshots.
func pairedCar(car int) core.CarResult {
	mk := func(dir string, row float64) *core.TransitionRecord {
		tr := &trace.Trip{ID: int64(car), CarID: car}
		base := time.Date(2022, 6, 1, 9, 0, 0, 0, time.UTC)
		for i := 0; i < 3; i++ {
			tr.Points = append(tr.Points, trace.RoutePoint{
				PointID: i, TripID: tr.ID,
				Pos:      geo.V(float64(100+200*i), row),
				Time:     base.Add(time.Duration(i) * time.Minute),
				SpeedKmh: 30 + float64(car%20),
			})
		}
		return &core.TransitionRecord{
			Car: car,
			Transition: &odselect.Transition{
				Seg: tr, From: dir[:1], To: dir[2:], Direction: dir,
				FromCross: geo.Crossing{EntryIndex: 0},
				ToCross:   geo.Crossing{ExitIndex: 2},
			},
			RouteTimeH: 0.05, RouteDistKm: 2, FuelMl: 100,
		}
	}
	row := float64(100 + 200*(car%9))
	return core.CarResult{Car: car, Transitions: []*core.TransitionRecord{
		mk("T-S", row), mk("S-T", row),
	}}
}

// TestConcurrentQueriesDuringIngest hammers the API with parallel
// readers while writers absorb cars, asserting no reader ever observes
// a torn snapshot: each response is internally consistent with a
// single epoch, epochs advance monotonically per reader, and the body
// epoch always matches the ETag. Run under -race.
func TestConcurrentQueriesDuringIngest(t *testing.T) {
	g, err := grid.New(geo.R(0, 0, 2000, 2000), 200)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sink.New(sink.Config{Grid: g, Shards: 4, PublishEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	api := NewAPI(s, nil)

	const (
		writers    = 4
		carsPerW   = 150
		readers    = 4
		totalCars  = writers * carsPerW
		ptsPerCar  = 6 // 2 transitions x 3 points, all inside the grid
		tripsPerTR = 1
	)

	var wg sync.WaitGroup
	var ingestDone atomic.Bool

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < carsPerW; i++ {
				car := w*carsPerW + i
				s.AbsorbEvent(core.CarEvent{Car: car, Result: pairedCar(car)})
			}
		}(w)
	}

	readerErr := make(chan error, readers)
	var rwg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			var lastEpoch uint64
			var lastTrips int
			for !ingestDone.Load() {
				// /v1/od: both directions must always hold the same trip
				// count — a torn snapshot (half a car) would break this.
				var od struct {
					Epoch      uint64 `json:"epoch"`
					Directions []struct {
						Direction string `json:"direction"`
						Trips     int    `json:"trips"`
					} `json:"directions"`
				}
				rec := httptest.NewRecorder()
				api.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/od", nil))
				if rec.Code != http.StatusOK {
					readerErr <- fmt.Errorf("od status %d", rec.Code)
					return
				}
				if err := json.Unmarshal(rec.Body.Bytes(), &od); err != nil {
					readerErr <- fmt.Errorf("od json: %v", err)
					return
				}
				if want := fmt.Sprintf("\"v%d\"", od.Epoch); rec.Header().Get("ETag") != want {
					readerErr <- fmt.Errorf("etag %q != body epoch %d", rec.Header().Get("ETag"), od.Epoch)
					return
				}
				if len(od.Directions) == 2 && od.Directions[0].Trips != od.Directions[1].Trips {
					readerErr <- fmt.Errorf("torn snapshot at epoch %d: trips %d vs %d",
						od.Epoch, od.Directions[0].Trips, od.Directions[1].Trips)
					return
				}
				trips := 0
				for _, d := range od.Directions {
					trips += d.Trips
				}
				if od.Epoch < lastEpoch {
					readerErr <- fmt.Errorf("epoch went backwards: %d after %d", od.Epoch, lastEpoch)
					return
				}
				if od.Epoch > lastEpoch && trips < lastTrips {
					readerErr <- fmt.Errorf("trips shrank across epochs: %d@%d after %d@%d",
						trips, od.Epoch, lastTrips, lastEpoch)
					return
				}
				lastEpoch, lastTrips = od.Epoch, trips

				// /v1/grid: whole cars only, so the point total is always
				// a multiple of the per-car contribution.
				var gr struct {
					Epoch uint64 `json:"epoch"`
					Cells []struct {
						N int `json:"n"`
					} `json:"cells"`
				}
				rec = httptest.NewRecorder()
				api.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/grid", nil))
				if err := json.Unmarshal(rec.Body.Bytes(), &gr); err != nil {
					readerErr <- fmt.Errorf("grid json: %v", err)
					return
				}
				pts := 0
				for _, c := range gr.Cells {
					pts += c.N
				}
				if pts%ptsPerCar != 0 {
					readerErr <- fmt.Errorf("torn snapshot at epoch %d: %d points not divisible by %d",
						gr.Epoch, pts, ptsPerCar)
					return
				}
			}
			readerErr <- nil
		}()
	}

	wg.Wait()
	s.Seal()
	ingestDone.Store(true)
	rwg.Wait()
	close(readerErr)
	for err := range readerErr {
		if err != nil {
			t.Fatal(err)
		}
	}

	// The sealed snapshot holds the whole fleet.
	final := s.Snapshot()
	if !final.Complete || final.CarsIngested != totalCars {
		t.Fatalf("final snapshot: complete=%v cars=%d want %d",
			final.Complete, final.CarsIngested, totalCars)
	}
	for dir, od := range final.OD {
		if od.Trips != totalCars*tripsPerTR {
			t.Fatalf("%s trips = %d, want %d", dir, od.Trips, totalCars)
		}
	}
	if final.Points != totalCars*ptsPerCar {
		t.Fatalf("points = %d, want %d", final.Points, totalCars*ptsPerCar)
	}
}
