package serve

import (
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/grid"
	"repro/internal/sink"
)

// benchAPI builds an API over a sink holding cars cars (spread over the
// grid rows, alternating directions), auto-publish disabled so the
// snapshot stays fixed unless the bench ingests live.
func benchAPI(b *testing.B, cars int) (*sink.Sink, *API) {
	b.Helper()
	g, err := grid.New(geo.R(0, 0, 2000, 2000), 200)
	if err != nil {
		b.Fatal(err)
	}
	s, err := sink.New(sink.Config{Grid: g, Shards: 4, PublishEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < cars; i++ {
		dir := "T-S"
		if i%2 == 1 {
			dir = "S-T"
		}
		cr := buildCar(i%9, dir, 20, 35, 50, 45, 30, 25, 40, 55)
		cr.Car = i
		s.Absorb(&cr)
	}
	s.Publish()
	return s, NewAPI(s, nil)
}

// BenchmarkServeQuery measures single-client latency per endpoint over
// a snapshot of 512 cars.
func BenchmarkServeQuery(b *testing.B) {
	_, api := benchAPI(b, 512)
	for _, bc := range []struct{ name, path string }{
		{"snapshot", "/v1/snapshot"},
		{"grid", "/v1/grid"},
		{"grid-bbox", "/v1/grid?bbox=0,0,800,800"},
		{"cell", "/v1/cells/c000.000"},
		{"od", "/v1/od"},
		{"odpair", "/v1/od/T-S"},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rec := httptest.NewRecorder()
				api.ServeHTTP(rec, httptest.NewRequest("GET", bc.path, nil))
				if rec.Code != http.StatusOK {
					b.Fatalf("status %d", rec.Code)
				}
			}
		})
	}
}

// BenchmarkServeQueryConcurrent measures query latency under load:
// GOMAXPROCS readers hitting /v1/od while a background writer keeps
// absorbing and publishing new epochs. Reports p50/p99 over all
// sampled request latencies alongside the usual ns/op.
func BenchmarkServeQueryConcurrent(b *testing.B) {
	s, api := benchAPI(b, 512)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			cr := buildCar(i%9, "T-S", 20, 35, 50)
			cr.Car = i
			s.Absorb(&cr)
			s.Publish()
			i++
		}
	}()

	var mu sync.Mutex
	var lat []float64
	var bad atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		local := make([]float64, 0, 1024)
		for pb.Next() {
			t0 := time.Now()
			rec := httptest.NewRecorder()
			api.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/od", nil))
			local = append(local, float64(time.Since(t0).Nanoseconds()))
			if rec.Code != http.StatusOK {
				bad.Add(1)
			}
		}
		mu.Lock()
		lat = append(lat, local...)
		mu.Unlock()
	})
	b.StopTimer()
	close(stop)
	wg.Wait()
	if bad.Load() > 0 {
		b.Fatalf("%d non-200 responses", bad.Load())
	}
	sort.Float64s(lat)
	if n := len(lat); n > 0 {
		b.ReportMetric(lat[n/2], "p50-ns")
		b.ReportMetric(lat[n*99/100], "p99-ns")
	}
}
