package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/odselect"
	"repro/internal/sink"
	"repro/internal/trace"
)

// buildCar fabricates a CarResult with one transition in dir whose
// points sweep eastwards at the given speeds.
func buildCar(car int, dir string, speeds ...float64) core.CarResult {
	tr := &trace.Trip{ID: int64(car), CarID: car}
	base := time.Date(2022, 6, 1, 9, 0, 0, 0, time.UTC)
	for i, v := range speeds {
		tr.Points = append(tr.Points, trace.RoutePoint{
			PointID: i, TripID: tr.ID,
			Pos:      geo.V(float64(100+200*i), float64(100+200*car)),
			Time:     base.Add(time.Duration(i) * time.Minute),
			SpeedKmh: v,
		})
	}
	rec := &core.TransitionRecord{
		Car: car,
		Transition: &odselect.Transition{
			Seg: tr, From: dir[:1], To: dir[2:], Direction: dir,
			FromCross: geo.Crossing{EntryIndex: 0},
			ToCross:   geo.Crossing{ExitIndex: len(speeds) - 1},
		},
		RouteTimeH:  float64(len(speeds)-1) / 60,
		RouteDistKm: 1.5,
		FuelMl:      80,
	}
	return core.CarResult{Car: car, Transitions: []*core.TransitionRecord{rec}}
}

// testAPI builds a sink with two cars absorbed and the API over it.
func testAPI(t *testing.T, reg *obs.Registry) (*sink.Sink, *API) {
	t.Helper()
	g, err := grid.New(geo.R(0, 0, 2000, 2000), 200)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sink.New(sink.Config{Grid: g, Shards: 2, PublishEvery: 1, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	s.Absorb(&core.CarResult{})
	cr1 := buildCar(1, "T-S", 30, 50, 40)
	cr2 := buildCar(2, "S-T", 20, 60)
	s.AbsorbEvent(core.CarEvent{Car: 1, Result: cr1})
	s.AbsorbEvent(core.CarEvent{Car: 2, Result: cr2})
	return s, NewAPI(s, reg)
}

// get performs a request and decodes the JSON body into out.
func get(t *testing.T, api *API, path string, out any) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	api.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	if out != nil && rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("GET %s: bad JSON: %v\n%s", path, err, rec.Body.String())
		}
	}
	return rec
}

func TestSnapshotEndpoint(t *testing.T) {
	s, api := testAPI(t, nil)
	var resp struct {
		Epoch        uint64 `json:"epoch"`
		Complete     bool   `json:"complete"`
		CarsIngested int    `json:"cars_ingested"`
		Cells        int    `json:"cells"`
		Directions   int    `json:"directions"`
	}
	rec := get(t, api, "/v1/snapshot", &resp)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if resp.CarsIngested != 3 || resp.Complete || resp.Directions != 2 {
		t.Fatalf("snapshot = %+v", resp)
	}
	if want := s.Snapshot().Epoch; resp.Epoch != want {
		t.Fatalf("epoch = %d, want %d", resp.Epoch, want)
	}
	if got := rec.Header().Get("ETag"); got != `"v3"` {
		t.Fatalf("ETag = %q", got)
	}

	s.Seal()
	get(t, api, "/v1/snapshot", &resp)
	if !resp.Complete {
		t.Fatal("sealed snapshot must report complete")
	}
}

func TestETagNotModified(t *testing.T) {
	reg := obs.NewRegistry()
	s, api := testAPI(t, reg)
	rec := get(t, api, "/v1/grid", nil)
	etag := rec.Header().Get("ETag")
	if rec.Code != http.StatusOK || etag == "" {
		t.Fatalf("status %d etag %q", rec.Code, etag)
	}

	req := httptest.NewRequest("GET", "/v1/grid", nil)
	req.Header.Set("If-None-Match", etag)
	rec2 := httptest.NewRecorder()
	api.ServeHTTP(rec2, req)
	if rec2.Code != http.StatusNotModified || rec2.Body.Len() != 0 {
		t.Fatalf("matched etag: status %d body %q", rec2.Code, rec2.Body.String())
	}
	if reg.Snapshot().Counters["serve_responses_not_modified"] != 1 {
		t.Fatal("not-modified counter not bumped")
	}

	// A publish bumps the epoch, so the stale ETag revalidates to 200.
	s.Absorb(&core.CarResult{Car: 9})
	rec3 := httptest.NewRecorder()
	api.ServeHTTP(rec3, req)
	if rec3.Code != http.StatusOK {
		t.Fatalf("stale etag: status %d", rec3.Code)
	}
	if got := rec3.Header().Get("ETag"); got == etag {
		t.Fatal("etag did not change across epochs")
	}

	// List form and wildcard both match.
	req.Header.Set("If-None-Match", `"v1", `+rec3.Header().Get("ETag"))
	rec4 := httptest.NewRecorder()
	api.ServeHTTP(rec4, req)
	if rec4.Code != http.StatusNotModified {
		t.Fatalf("list etag: status %d", rec4.Code)
	}
	req.Header.Set("If-None-Match", "*")
	rec5 := httptest.NewRecorder()
	api.ServeHTTP(rec5, req)
	if rec5.Code != http.StatusNotModified {
		t.Fatalf("wildcard etag: status %d", rec5.Code)
	}
}

func TestGridEndpointFilters(t *testing.T) {
	_, api := testAPI(t, nil)
	var resp struct {
		Epoch uint64  `json:"epoch"`
		CellM float64 `json:"cell_m"`
		Cells []struct {
			ID   string     `json:"id"`
			N    int        `json:"n"`
			Mean float64    `json:"mean_kmh"`
			Rect [4]float64 `json:"rect"`
		} `json:"cells"`
	}
	get(t, api, "/v1/grid", &resp)
	if resp.CellM != 200 || len(resp.Cells) != 5 {
		t.Fatalf("grid = %+v", resp)
	}
	// IDs are valid path keys: each must round-trip through ParseCellID.
	for _, c := range resp.Cells {
		if _, err := grid.ParseCellID(c.ID); err != nil {
			t.Fatalf("cell id %q: %v", c.ID, err)
		}
	}

	// bbox filter: car 1's points sit in the J=1 cell row (y in
	// [200,400)); a bbox inside that row selects only its 3 cells.
	get(t, api, "/v1/grid?bbox=0,250,2000,399", &resp)
	if len(resp.Cells) != 3 {
		t.Fatalf("bbox cells = %d, want 3", len(resp.Cells))
	}

	// min-points: no cell holds 2+ points here.
	get(t, api, "/v1/grid?min-points=2", &resp)
	if len(resp.Cells) != 0 {
		t.Fatalf("min-points cells = %d, want 0", len(resp.Cells))
	}

	if rec := get(t, api, "/v1/grid?bbox=1,2,3", nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad bbox: status %d", rec.Code)
	}
	if rec := get(t, api, "/v1/grid?min-points=-1", nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad min-points: status %d", rec.Code)
	}
}

func TestCellEndpoint(t *testing.T) {
	_, api := testAPI(t, nil)
	var resp struct {
		Epoch uint64  `json:"epoch"`
		ID    string  `json:"id"`
		N     int     `json:"n"`
		Mean  float64 `json:"mean_kmh"`
	}
	// Car 1's first point (100,300) lives in cell c000.001.
	rec := get(t, api, "/v1/cells/c000.001", &resp)
	if rec.Code != http.StatusOK || resp.N != 1 || resp.Mean != 30 {
		t.Fatalf("cell: status %d resp %+v", rec.Code, resp)
	}
	if resp.ID != "c000.001" {
		t.Fatalf("id = %q", resp.ID)
	}
	// Unpadded key addresses the same cell.
	if rec := get(t, api, "/v1/cells/c0.1", &resp); rec.Code != http.StatusOK || resp.Mean != 30 {
		t.Fatalf("unpadded key: status %d", rec.Code)
	}
	if rec := get(t, api, "/v1/cells/c099.099", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("empty cell: status %d", rec.Code)
	}
	if rec := get(t, api, "/v1/cells/bogus", nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad id: status %d", rec.Code)
	}
}

func TestODEndpoints(t *testing.T) {
	_, api := testAPI(t, nil)
	var matrix struct {
		Epoch      uint64 `json:"epoch"`
		Directions []struct {
			Direction string `json:"direction"`
			Trips     int    `json:"trips"`
			TravelS   struct {
				N   uint64  `json:"n"`
				P50 float64 `json:"p50"`
			} `json:"travel_time_s"`
		} `json:"directions"`
	}
	get(t, api, "/v1/od", &matrix)
	if len(matrix.Directions) != 2 ||
		matrix.Directions[0].Direction != "S-T" || matrix.Directions[1].Direction != "T-S" {
		t.Fatalf("matrix = %+v", matrix.Directions)
	}

	var pair struct {
		Epoch   uint64 `json:"epoch"`
		From    string `json:"from"`
		To      string `json:"to"`
		Trips   int    `json:"trips"`
		TravelS struct {
			N    uint64   `json:"n"`
			Mean float64  `json:"mean"`
			P50  *float64 `json:"p50"`
			P99  *float64 `json:"p99"`
		} `json:"travel_time_s"`
	}
	rec := get(t, api, "/v1/od/T-S", &pair)
	if rec.Code != http.StatusOK || pair.From != "T" || pair.To != "S" || pair.Trips != 1 {
		t.Fatalf("pair: status %d %+v", rec.Code, pair)
	}
	// Car 1's travel time is 2 min = 120 s, but one sample defines no
	// distribution: the summary reports the honest count and mean and
	// omits every quantile.
	if pair.TravelS.N != 1 || pair.TravelS.Mean < 115 || pair.TravelS.Mean > 125 {
		t.Fatalf("travel stats = %+v, want n=1 mean≈120", pair.TravelS)
	}
	if pair.TravelS.P50 != nil || pair.TravelS.P99 != nil {
		t.Fatalf("single-sample quantiles must be omitted, got %+v", pair.TravelS)
	}
	if rec := get(t, api, "/v1/od/L-T", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("missing pair: status %d", rec.Code)
	}
	if rec := get(t, api, "/v1/od/TS", nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad pair: status %d", rec.Code)
	}
}

func TestMethodAndUnknownPaths(t *testing.T) {
	_, api := testAPI(t, nil)
	rec := httptest.NewRecorder()
	api.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/od", strings.NewReader("{}")))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST status = %d", rec.Code)
	}
	if rec := get(t, api, "/v1/nope", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown path status = %d", rec.Code)
	}
}

func TestServeMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	_, api := testAPI(t, reg)
	get(t, api, "/v1/grid", nil)
	get(t, api, "/v1/od", nil)
	get(t, api, "/v1/od", nil)
	get(t, api, "/v1/cells/bogus", nil)
	snap := reg.Snapshot()
	for name, want := range map[string]uint64{
		"serve_requests_grid":         1,
		"serve_requests_od":           2,
		"serve_requests_cell":         1,
		"serve_responses_bad_request": 1,
	} {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if snap.Histograms["serve_request_seconds"].Count != 4 {
		t.Errorf("latency count = %d", snap.Histograms["serve_request_seconds"].Count)
	}
	if snap.Gauges["serve_snapshot_epoch"] != 3 || snap.Gauges["serve_snapshot_cars"] != 3 {
		t.Errorf("snapshot gauges: %+v", snap.Gauges)
	}
	if age := snap.Gauges["serve_snapshot_age_seconds"]; age < 0 || age > 60 {
		t.Errorf("snapshot age = %g", age)
	}
}

// TestMountAlongsideDebug mounts the API on the obs debug mux and
// checks both surfaces answer on one listener.
func TestMountAlongsideDebug(t *testing.T) {
	reg := obs.NewRegistry()
	_, api := testAPI(t, reg)
	mux := reg.DebugMux()
	Mount(mux, api)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	for _, path := range []string{"/v1/snapshot", "/v1/grid", "/metrics", "/debug/vars"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
	}
}

// buildCarFromTo is buildCar for explicit (possibly hyphenated) gate
// names.
func buildCarFromTo(car int, from, to string, speeds ...float64) core.CarResult {
	cr := buildCar(car, "x-y", speeds...)
	tr := cr.Transitions[0].Transition
	tr.From, tr.To, tr.Direction = from, to, from+"-"+to
	return cr
}

// TestODPairHyphenatedGates is the regression test for the
// /v1/od/{from}-{to} ambiguity: with gate names containing '-', the
// rendered direction string no longer identifies the pair, so the
// handler must resolve the path against the registered gate set — and
// reject unknown gates with 400 rather than a misleading 404.
func TestODPairHyphenatedGates(t *testing.T) {
	g, err := grid.New(geo.R(0, 0, 2000, 2000), 200)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sink.New(sink.Config{
		Grid: g, Shards: 1, PublishEvery: 1,
		Gates: []string{"T-north", "S", "L"},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.AbsorbEvent(core.CarEvent{Car: 1, Result: buildCarFromTo(1, "T-north", "S", 30, 50, 40)})
	api := NewAPI(s, nil)

	var pair struct {
		From  string `json:"from"`
		To    string `json:"to"`
		Trips int    `json:"trips"`
	}
	rec := get(t, api, "/v1/od/T-north-S", &pair)
	if rec.Code != http.StatusOK || pair.From != "T-north" || pair.To != "S" || pair.Trips != 1 {
		t.Fatalf("hyphenated pair: status %d %+v\n%s", rec.Code, pair, rec.Body.String())
	}

	// Both gates known but no data: 404.
	if rec := get(t, api, "/v1/od/S-L", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("no-data pair: status %d", rec.Code)
	}
	// Unknown gate names: 400, not 404.
	for _, path := range []string{"/v1/od/T-S", "/v1/od/X-Y", "/v1/od/T-north-X"} {
		if rec := get(t, api, path, nil); rec.Code != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400\n%s", path, rec.Code, rec.Body.String())
		}
	}

	// The full matrix renders the hyphenated direction unambiguously
	// via its struct key.
	var matrix struct {
		Directions []struct {
			Direction string `json:"direction"`
			From      string `json:"from"`
			To        string `json:"to"`
		} `json:"directions"`
	}
	get(t, api, "/v1/od", &matrix)
	if len(matrix.Directions) != 1 || matrix.Directions[0].From != "T-north" || matrix.Directions[0].To != "S" {
		t.Fatalf("matrix = %+v", matrix.Directions)
	}
}

// TestParseODPairAmbiguous: a pathological gate set where two split
// positions both name registered gates must be refused, not guessed.
func TestParseODPairAmbiguous(t *testing.T) {
	snap := &sink.Snapshot{Gates: []string{"A", "B", "A-B", "B-B"}}
	// "A-B-B" could be A→B-B or A-B→B; both sides of both splits are
	// registered gates.
	if _, err := parseODPair("A-B-B", snap); err == nil {
		t.Fatal("ambiguous pair accepted")
	}
	// Unambiguous pairs still resolve.
	key, err := parseODPair("A-B-A", snap) // only A-B→A works (B-A unknown)
	if err != nil || key.From != "A-B" || key.To != "A" {
		t.Fatalf("key %v err %v", key, err)
	}
}
