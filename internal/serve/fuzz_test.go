package serve

import (
	"net/url"
	"strings"
	"testing"

	"repro/internal/sink"
)

// FuzzQueryParsing covers the request parsers the API trusts with raw
// client input: the If-None-Match list matcher, the shared grid query
// helper (min-points + bbox — the single untrusted-input funnel for
// those filters), and the /v1/od/{FROM-TO} path segment. None may
// panic; accepted values must satisfy the parser's advertised
// contract (non-negative thresholds, non-empty rects, registered and
// reassemblable OD keys).
func FuzzQueryParsing(f *testing.F) {
	f.Add(`"v1", W/"v2"`, `"v1"`, "0,0,100,100", "7", "T-S")
	f.Add("*", `"zzz"`, "10.5,-3,10.6,4", "0", "T-north-S")
	f.Add("", "", "1,2,3", "-1", "A-B-C")
	f.Add("W/*", `"v"`, "a,b,c,d", "1e3", "-S")
	f.Add(`"v2"`, `"v2"`, "5,5,5,5", "9999999999999999999", "T-")

	gated := &sink.Snapshot{Gates: []string{"T-north", "S", "L"}}
	open := &sink.Snapshot{}

	f.Fuzz(func(t *testing.T, header, etag, bbox, minPoints, pair string) {
		ifNoneMatch(header, etag)

		q := url.Values{}
		if bbox != "" {
			q.Set("bbox", bbox)
		}
		if minPoints != "" {
			q.Set("min-points", minPoints)
		}
		if gq, err := parseQuery(q); err == nil {
			if gq.minPoints < 0 {
				t.Fatalf("parseQuery(min-points=%q) accepted a negative threshold", minPoints)
			}
			if gq.bbox != nil && gq.bbox.IsEmpty() {
				t.Fatalf("parseQuery(bbox=%q) accepted an empty rect", bbox)
			}
			if bbox != "" && gq.bbox == nil {
				t.Fatalf("parseQuery(bbox=%q) accepted but dropped the filter", bbox)
			}
		}

		for _, snap := range []*sink.Snapshot{gated, open} {
			key, err := parseODPair(pair, snap)
			if err != nil {
				continue
			}
			if key.From == "" || key.To == "" {
				t.Fatalf("parseODPair(%q) accepted an empty gate: %+v", pair, key)
			}
			if got := key.From + "-" + key.To; got != pair {
				t.Fatalf("parseODPair(%q) key %+v reassembles to %q", pair, key, got)
			}
			if len(snap.Gates) > 0 && (!snap.HasGate(key.From) || !snap.HasGate(key.To)) {
				t.Fatalf("parseODPair(%q) accepted unregistered gates: %+v", pair, key)
			}
			if strings.IndexByte(pair, '-') < 0 {
				t.Fatalf("parseODPair(%q) accepted a pair with no separator", pair)
			}
		}
	})
}
