package serve

import (
	"strings"
	"testing"

	"repro/internal/sink"
)

// FuzzQueryParsing covers the three request parsers the API trusts
// with raw client input: the If-None-Match list matcher, the bbox
// query parameter, and the /v1/od/{FROM-TO} path segment. None may
// panic; accepted values must satisfy the parser's advertised
// contract (non-empty rects, registered and reassemblable OD keys).
func FuzzQueryParsing(f *testing.F) {
	f.Add(`"v1", W/"v2"`, `"v1"`, "0,0,100,100", "T-S")
	f.Add("*", `"zzz"`, "10.5,-3,10.6,4", "T-north-S")
	f.Add("", "", "1,2,3", "A-B-C")
	f.Add("W/*", `"v"`, "a,b,c,d", "-S")
	f.Add(`"v2"`, `"v2"`, "5,5,5,5", "T-")

	gated := &sink.Snapshot{Gates: []string{"T-north", "S", "L"}}
	open := &sink.Snapshot{}

	f.Fuzz(func(t *testing.T, header, etag, bbox, pair string) {
		ifNoneMatch(header, etag)

		if r, err := parseBBox(bbox); err == nil {
			if r.IsEmpty() {
				t.Fatalf("parseBBox(%q) accepted an empty rect", bbox)
			}
		}

		for _, snap := range []*sink.Snapshot{gated, open} {
			key, err := parseODPair(pair, snap)
			if err != nil {
				continue
			}
			if key.From == "" || key.To == "" {
				t.Fatalf("parseODPair(%q) accepted an empty gate: %+v", pair, key)
			}
			if got := key.From + "-" + key.To; got != pair {
				t.Fatalf("parseODPair(%q) key %+v reassembles to %q", pair, key, got)
			}
			if len(snap.Gates) > 0 && (!snap.HasGate(key.From) || !snap.HasGate(key.To)) {
				t.Fatalf("parseODPair(%q) accepted unregistered gates: %+v", pair, key)
			}
			if strings.IndexByte(pair, '-') < 0 {
				t.Fatalf("parseODPair(%q) accepted a pair with no separator", pair)
			}
		}
	})
}
