package serve

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/obs"
)

func TestHealthzEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Gauge("runner_inflight").Set(3)
	s, api := testAPI(t, reg)

	var hz struct {
		Status         string  `json:"status"`
		Epoch          uint64  `json:"epoch"`
		AgeSeconds     float64 `json:"age_seconds"`
		Sealed         bool    `json:"sealed"`
		IngestInflight int64   `json:"ingest_inflight"`
		CarsIngested   int     `json:"cars_ingested"`
	}
	rec := get(t, api, "/v1/healthz", &hz)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz = %d", rec.Code)
	}
	if hz.Status != "ok" || hz.Sealed || hz.IngestInflight != 3 || hz.CarsIngested != 3 {
		t.Fatalf("healthz = %+v", hz)
	}
	if hz.AgeSeconds < 0 {
		t.Fatalf("negative age %v", hz.AgeSeconds)
	}
	if rec.Header().Get("ETag") == "" {
		t.Fatal("healthz has no ETag")
	}

	s.Seal()
	get(t, api, "/v1/healthz", &hz)
	if !hz.Sealed {
		t.Fatal("healthz not sealed after Seal")
	}
	if got := reg.Snapshot().Counters["serve_requests_healthz"]; got != 2 {
		t.Fatalf("serve_requests_healthz = %d, want 2", got)
	}
}

func TestLineageEndpoint(t *testing.T) {
	_, api := testAPI(t, nil)

	// Without a ledger the endpoint reports disabled, not an error.
	var resp struct {
		Enabled bool                 `json:"enabled"`
		Lineage *obs.LineageSnapshot `json:"lineage"`
	}
	if rec := get(t, api, "/v1/lineage", &resp); rec.Code != http.StatusOK {
		t.Fatalf("lineage = %d", rec.Code)
	}
	if resp.Enabled || resp.Lineage != nil {
		t.Fatalf("lineage without ledger = %+v", resp)
	}

	lin := obs.NewLineage(nil)
	st := lin.Stage("clean", "points")
	st.Reason("spike").Add(3)
	st.RecordCar(4, 10, 7) // folds 10 in / 7 out into the stage totals too
	api.WithLineage(lin)

	resp.Lineage = nil
	get(t, api, "/v1/lineage", &resp)
	if !resp.Enabled || resp.Lineage == nil {
		t.Fatalf("lineage with ledger = %+v", resp)
	}
	if !resp.Lineage.Conserved || len(resp.Lineage.Stages) != 1 {
		t.Fatalf("lineage snapshot = %+v", resp.Lineage)
	}
	row := resp.Lineage.Stages[0]
	if row.Stage != "clean" || row.In != 10 || row.Out != 7 {
		t.Fatalf("stage row = %+v", row)
	}
	if len(resp.Lineage.TopDroppedCars) != 1 || resp.Lineage.TopDroppedCars[0].Car != 4 {
		t.Fatalf("top cars = %+v", resp.Lineage.TopDroppedCars)
	}
}

// logLines parses one JSON log record per line.
func logLines(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		m := map[string]any{}
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad log line %q: %v", line, err)
		}
		out = append(out, m)
	}
	return out
}

func TestAccessLog(t *testing.T) {
	var buf bytes.Buffer
	_, api := testAPI(t, nil)
	api.WithLogger(slog.New(slog.NewJSONHandler(&buf, nil)))

	get(t, api, "/v1/snapshot", nil)
	get(t, api, "/v1/cells/c99.99", nil) // 404

	lines := logLines(t, &buf)
	if len(lines) != 2 {
		t.Fatalf("want 2 access-log lines, got %d:\n%s", len(lines), buf.String())
	}
	first, second := lines[0], lines[1]
	if first["msg"] != "request" || first["method"] != "GET" || first["path"] != "/v1/snapshot" {
		t.Fatalf("first line = %v", first)
	}
	if first["status"].(float64) != 200 || first["bytes"].(float64) <= 0 {
		t.Fatalf("first line status/bytes = %v", first)
	}
	if _, ok := first["duration"]; !ok {
		t.Fatal("access log has no duration")
	}
	if first["epoch"].(float64) != 3 {
		t.Fatalf("first line epoch = %v", first["epoch"])
	}
	if second["status"].(float64) != 404 || second["path"] != "/v1/cells/c99.99" {
		t.Fatalf("second line = %v", second)
	}
	if first["req"].(float64) >= second["req"].(float64) {
		t.Fatalf("request ids not increasing: %v then %v", first["req"], second["req"])
	}
}

func TestPanicRecovery(t *testing.T) {
	var buf bytes.Buffer
	reg := obs.NewRegistry()
	_, api := testAPI(t, reg)
	api.WithLogger(slog.New(slog.NewJSONHandler(&buf, nil)))
	api.mux.HandleFunc("GET /v1/boom", func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})

	rec := httptest.NewRecorder()
	api.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler returned %d, want 500", rec.Code)
	}
	var body errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil ||
		body.Error.Code != "internal" || body.Error.Message == "" {
		t.Fatalf("500 body = %q (%v)", rec.Body.String(), err)
	}

	lines := logLines(t, &buf)
	var sawPanic, sawAccess bool
	for _, m := range lines {
		switch m["msg"] {
		case "handler panicked":
			sawPanic = true
			if m["panic"] != "kaboom" || m["stack"] == "" {
				t.Fatalf("panic line = %v", m)
			}
		case "request":
			sawAccess = true
			if m["status"].(float64) != 500 {
				t.Fatalf("access line after panic = %v", m)
			}
		}
	}
	if !sawPanic || !sawAccess {
		t.Fatalf("want panic + access lines, got:\n%s", buf.String())
	}
	if got := reg.Snapshot().Counters["serve_responses_server_error"]; got != 1 {
		t.Fatalf("serve_responses_server_error = %d, want 1", got)
	}

	// A panic after the handler has already written must not try to
	// write a second header; the first status wins.
	api.mux.HandleFunc("GET /v1/boom2", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusTeapot)
		panic("late kaboom")
	})
	rec = httptest.NewRecorder()
	api.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/boom2", nil))
	if rec.Code != http.StatusTeapot {
		t.Fatalf("late panic rewrote status: %d", rec.Code)
	}
}

func TestHealthzNodeIdentity(t *testing.T) {
	// Default deployment: one process, role "single", no worker table.
	_, api := testAPI(t, nil)
	var hz struct {
		Role    string                 `json:"role"`
		Node    string                 `json:"node"`
		Workers []cluster.WorkerHealth `json:"workers"`
	}
	get(t, api, "/v1/healthz", &hz)
	if hz.Role != "single" || hz.Node != "" || hz.Workers != nil {
		t.Fatalf("default healthz identity = %+v", hz)
	}

	// Coordinator: role, node id, and the per-worker merge state.
	_, api = testAPI(t, nil)
	api.WithNode("coordinator", "coord-1").WithCluster(func() []cluster.WorkerHealth {
		return []cluster.WorkerHealth{
			{ID: "worker-0", Shard: 0, LastMergeEpoch: 7, StalenessS: 0.25},
			{ID: "worker-1", Shard: 1, LastMergeEpoch: 5, StalenessS: 3.5, Lost: true},
		}
	})
	get(t, api, "/v1/healthz", &hz)
	if hz.Role != "coordinator" || hz.Node != "coord-1" {
		t.Fatalf("coordinator healthz identity = %+v", hz)
	}
	if len(hz.Workers) != 2 || hz.Workers[0].LastMergeEpoch != 7 || !hz.Workers[1].Lost {
		t.Fatalf("coordinator healthz workers = %+v", hz.Workers)
	}

	// Worker: role + id, no worker table.
	_, api = testAPI(t, nil)
	api.WithNode("worker", "worker-3")
	hz.Workers = nil // decode leaves absent fields untouched
	get(t, api, "/v1/healthz", &hz)
	if hz.Role != "worker" || hz.Node != "worker-3" || hz.Workers != nil {
		t.Fatalf("worker healthz identity = %+v", hz)
	}
}

func TestLineageSnapshotOverride(t *testing.T) {
	// The coordinator serves a merged (precomputed) lineage table; it
	// must win over a live ledger and mark the endpoint enabled.
	_, api := testAPI(t, nil)
	table := obs.LineageSnapshot{
		Stages: []obs.StageSnapshot{
			{Stage: "clean", Unit: "points", In: 10, Out: 8, Dropped: 2, Conserved: true},
			{Stage: "cluster", Unit: "workers", In: 3, Out: 2, Dropped: 1, Conserved: true},
		},
		Conserved: true,
	}
	api.WithLineage(obs.NewLineage(nil)).WithLineageSnapshot(func() obs.LineageSnapshot { return table })
	var resp struct {
		Enabled bool                 `json:"enabled"`
		Lineage *obs.LineageSnapshot `json:"lineage"`
	}
	get(t, api, "/v1/lineage", &resp)
	if !resp.Enabled || resp.Lineage == nil {
		t.Fatalf("lineage override disabled: %+v", resp)
	}
	if len(resp.Lineage.Stages) != 2 || resp.Lineage.Stages[1].Stage != "cluster" {
		t.Fatalf("lineage override not served: %+v", resp.Lineage)
	}
}
