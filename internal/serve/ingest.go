package serve

import (
	"bufio"
	"io"
	"net/http"

	"repro/internal/ingest"
	"repro/internal/obs"
)

// The firehose side of the API: POST /v1/ingest accepts a stream of
// point events (NDJSON by default; the binary "TAXIPNTB" framing is
// sniffed from the first bytes of the body) and feeds them to the
// engine in batches, and POST /v1/ingest/close ends the stream —
// the watermark jumps to +infinity, every buffered trip flushes and
// the sink seals. Both reply with the shared error envelope on
// failure; neither participates in the ETag scheme (they mutate, so
// there is no epoch to cache against).

// ingestBatch is how many decoded points are pushed to the engine per
// lock acquisition; it amortises admission without letting a huge body
// buffer unboundedly before first feedback.
const ingestBatch = 512

// WithIngest attaches the streaming engine, registering the POST
// /v1/ingest and /v1/ingest/close endpoints; returns a for chaining.
// Safe to call only before serving.
func (a *API) WithIngest(e *ingest.Engine) *API {
	a.mux.HandleFunc("POST /v1/ingest", func(w http.ResponseWriter, r *http.Request) {
		a.met.requests["ingest"].Inc()
		a.handleIngest(w, r, e)
	})
	a.mux.HandleFunc("POST /v1/ingest/close", func(w http.ResponseWriter, _ *http.Request) {
		a.met.requests["ingestclose"].Inc()
		e.Close()
		a.writeJSON(w, map[string]any{"closed": true, "watermark_ms": e.Watermark()})
	})
	return a
}

// ingestResponse summarises what one POST /v1/ingest body did.
type ingestResponse struct {
	Received int `json:"received"`
	Admitted int `json:"admitted"`
	// Dropped counts rejected points by typed reason; omitted when all
	// points were admitted.
	Dropped map[obs.DropReason]int `json:"dropped,omitempty"`
	// WatermarkMs is the engine's low watermark after this body.
	WatermarkMs int64 `json:"watermark_ms"`
}

func (a *API) handleIngest(w http.ResponseWriter, r *http.Request, e *ingest.Engine) {
	br := bufio.NewReaderSize(r.Body, 1<<16)
	head, _ := br.Peek(8)

	var total ingestResponse
	push := func(batch []ingest.Point) {
		res := e.PushBatch(batch)
		total.Received += res.Received
		total.Admitted += res.Admitted
		total.WatermarkMs = res.WatermarkMs
		for reason, n := range res.Dropped {
			if total.Dropped == nil {
				total.Dropped = map[obs.DropReason]int{}
			}
			total.Dropped[reason] += n
		}
	}

	var decodeErr error
	batch := make([]ingest.Point, 0, ingestBatch)
	collect := func(p ingest.Point) error {
		batch = append(batch, p)
		if len(batch) == ingestBatch {
			push(batch)
			batch = batch[:0]
		}
		return nil
	}
	if ingest.SniffBinary(head) {
		var rd *ingest.BinaryReader
		rd, decodeErr = ingest.NewBinaryReader(br)
		for decodeErr == nil {
			p, err := rd.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				decodeErr = err
				break
			}
			collect(p)
		}
	} else {
		decodeErr = ingest.DecodeNDJSON(br, collect)
	}
	if len(batch) > 0 {
		push(batch)
	}
	if decodeErr != nil {
		// Points decoded before the error were already admitted (the
		// stream is a firehose, not a transaction); say so.
		a.fail(w, http.StatusBadRequest, "%v (%d points accepted before the error)",
			decodeErr, total.Received)
		return
	}
	a.writeJSON(w, total)
}
