package serve

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/digiroad"
	"repro/internal/geo"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/predict"
	"repro/internal/roadnet"
	"repro/internal/sink"
)

// fixedSource serves one pinned snapshot — the test stand-in for a sink.
type fixedSource struct{ snap *sink.Snapshot }

func (f fixedSource) Snapshot() *sink.Snapshot { return f.snap }

// lineGraph is a single 1 km two-way street with a junction spur, so
// routing between its ends is well-defined.
func lineGraph(t *testing.T) (*roadnet.Graph, *roadnet.Router) {
	t.Helper()
	db := digiroad.NewDatabase(digiroad.OuluOrigin)
	// Two spurs at each end make the endpoints degree-3 junctions, so
	// chain-walking keeps nodes exactly at (0,0) and (1000,0).
	for _, e := range []digiroad.TrafficElement{
		{ID: 1, Geom: geo.Line(0, 0, 1000, 0), Class: digiroad.ClassLocal, Flow: digiroad.FlowBoth, SpeedLimitKmh: 36},
		{ID: 2, Geom: geo.Line(0, 0, 0, 100), Class: digiroad.ClassLocal, Flow: digiroad.FlowBoth, SpeedLimitKmh: 36},
		{ID: 3, Geom: geo.Line(0, 0, 0, -100), Class: digiroad.ClassLocal, Flow: digiroad.FlowBoth, SpeedLimitKmh: 36},
		{ID: 4, Geom: geo.Line(1000, 0, 1000, 100), Class: digiroad.ClassLocal, Flow: digiroad.FlowBoth, SpeedLimitKmh: 36},
		{ID: 5, Geom: geo.Line(1000, 0, 1000, -100), Class: digiroad.ClassLocal, Flow: digiroad.FlowBoth, SpeedLimitKmh: 36},
	} {
		if _, err := db.AddElement(e); err != nil {
			t.Fatal(err)
		}
	}
	g, err := roadnet.Build(db)
	if err != nil {
		t.Fatal(err)
	}
	return g, roadnet.NewRouter(g, roadnet.RouterOptions{})
}

type predictJSON struct {
	Epoch         uint64  `json:"epoch"`
	TravelS       float64 `json:"travel_s"`
	FreeFlowS     float64 `json:"free_flow_s"`
	DistanceKm    float64 `json:"distance_km"`
	Edges         int     `json:"edges"`
	ObservedEdges int     `json:"observed_edges"`
	Hour          int     `json:"hour"`
}

func TestPredictEndpoint(t *testing.T) {
	g, r := lineGraph(t)
	src := fixedSource{&sink.Snapshot{Epoch: 4}}
	api := NewAPI(src, nil).WithPredictor(predict.NewPredictor(g, r))

	var resp predictJSON
	rec := get(t, api, "/v1/predict?from=0,0&to=1000,0&t=8", &resp)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	// 1 km at 36 km/h free flow = 100 s; no profiles, so the prediction
	// is pure free flow.
	if resp.TravelS != 100 || resp.FreeFlowS != 100 || resp.DistanceKm != 1 || resp.Hour != 8 {
		t.Fatalf("prediction = %+v, want 100 s free flow over 1 km", resp)
	}
	if resp.Epoch != 4 || rec.Header().Get("ETag") != `"v4"` {
		t.Fatalf("epoch binding: %+v etag %q", resp, rec.Header().Get("ETag"))
	}

	// The ETag contract holds for the new endpoint: same epoch, 304.
	req := httptest.NewRequest("GET", "/v1/predict?from=0,0&to=1000,0", nil)
	req.Header.Set("If-None-Match", `"v4"`)
	rec304 := httptest.NewRecorder()
	api.ServeHTTP(rec304, req)
	if rec304.Code != http.StatusNotModified {
		t.Fatalf("If-None-Match status = %d", rec304.Code)
	}

	// RFC 3339 timestamps resolve to their UTC hour; omitting t selects
	// the all-day profile.
	if rec := get(t, api, "/v1/predict?from=0,0&to=1000,0&t=2022-03-01T17:30:00Z", &resp); rec.Code != http.StatusOK || resp.Hour != 17 {
		t.Fatalf("timestamp t: status %d %+v", rec.Code, resp)
	}
	if rec := get(t, api, "/v1/predict?from=0,0&to=1000,0", &resp); rec.Code != http.StatusOK || resp.Hour != -1 {
		t.Fatalf("default t: status %d %+v", rec.Code, resp)
	}

	for _, path := range []string{
		"/v1/predict",                           // missing params
		"/v1/predict?from=0&to=1000,0",          // malformed from
		"/v1/predict?from=0,0&to=nan,0",         // non-numeric
		"/v1/predict?from=0,0&to=1000,0&t=24",   // hour out of range
		"/v1/predict?from=0,0&to=1000,0&t=noon", // unparsable t
	} {
		if rec := get(t, api, path, nil); rec.Code != http.StatusBadRequest {
			t.Errorf("GET %s: status = %d, want 400", path, rec.Code)
		}
	}
}

func TestPredictEndpointNoPath(t *testing.T) {
	db := digiroad.NewDatabase(digiroad.OuluOrigin)
	if _, err := db.AddElement(digiroad.TrafficElement{
		ID: 1, Geom: geo.Line(0, 0, 100, 0), Class: digiroad.ClassLocal,
		Flow: digiroad.FlowForward, SpeedLimitKmh: 36,
	}); err != nil {
		t.Fatal(err)
	}
	g, err := roadnet.Build(db)
	if err != nil {
		t.Fatal(err)
	}
	api := NewAPI(fixedSource{&sink.Snapshot{Epoch: 1}}, nil).
		WithPredictor(predict.NewPredictor(g, roadnet.NewRouter(g, roadnet.RouterOptions{})))
	rec := get(t, api, "/v1/predict?from=100,0&to=0,0", nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unroutable pair: status = %d, want 404", rec.Code)
	}
}

func TestPredictEndpointUnconfigured(t *testing.T) {
	_, api := testAPI(t, nil)
	rec := get(t, api, "/v1/predict?from=0,0&to=1,1", nil)
	if rec.Code != http.StatusNotImplemented {
		t.Fatalf("status = %d, want 501", rec.Code)
	}
	if rec := get(t, api, "/v1/anomalies", nil); rec.Code != http.StatusNotImplemented {
		t.Fatalf("anomalies status = %d, want 501", rec.Code)
	}
}

func TestAnomaliesEndpoint(t *testing.T) {
	quiet := func(epoch uint64) *sink.Snapshot {
		return &sink.Snapshot{
			Epoch: epoch,
			Cells: map[grid.CellID]sink.CellStats{
				{I: 1, J: 1}: {N: 40, MeanKmh: 30},
			},
		}
	}
	det := predict.NewAnomalyDetector(predict.AnomalyConfig{})
	for e := uint64(1); e <= 4; e++ {
		det.Observe(quiet(e))
	}
	incident := quiet(9)
	incident.Cells[grid.CellID{I: 1, J: 1}] = sink.CellStats{N: 40, MeanKmh: 12}
	api := NewAPI(fixedSource{incident}, nil).WithAnomalies(det)

	var resp struct {
		Epoch       uint64 `json:"epoch"`
		RefEpochs   int    `json:"ref_epochs"`
		CellsScored int    `json:"cells_scored"`
		Cells       []struct {
			ID         string  `json:"id"`
			CurrentKmh float64 `json:"current_kmh"`
			Z          float64 `json:"z"`
		} `json:"cells"`
		ODs []struct{} `json:"ods"`
	}
	rec := get(t, api, "/v1/anomalies", &resp)
	if rec.Code != http.StatusOK || resp.Epoch != 9 || resp.RefEpochs != 4 {
		t.Fatalf("status %d resp %+v", rec.Code, resp)
	}
	if len(resp.Cells) != 1 || resp.Cells[0].ID != "c001.001" || resp.Cells[0].Z >= 0 {
		t.Fatalf("cells = %+v, want the slowed cell with negative z", resp.Cells)
	}
	if rec.Header().Get("ETag") != `"v9"` {
		t.Fatalf("etag = %q", rec.Header().Get("ETag"))
	}

	// Repeated queries at the same epoch return the identical report —
	// the detector memoizes rather than re-folding the epoch.
	var again struct {
		RefEpochs int `json:"ref_epochs"`
		Cells     []struct {
			Z float64 `json:"z"`
		} `json:"cells"`
	}
	get(t, api, "/v1/anomalies", &again)
	if again.RefEpochs != 4 || len(again.Cells) != 1 || again.Cells[0].Z != resp.Cells[0].Z {
		t.Fatalf("second query drifted: %+v vs %+v", again, resp)
	}
}

// TestODQuantileEdgeCases pins the travel-time summary contract on the
// degenerate histograms that used to leak NaN→0 quantiles: an empty
// distribution has no quantiles, a single sample reports only count,
// mean and max, and two samples restore the full summary.
func TestODQuantileEdgeCases(t *testing.T) {
	hist := func(times ...float64) *obs.FrozenHistogram {
		h := &obs.Histogram{}
		for _, v := range times {
			h.Observe(v)
		}
		return h.Freeze()
	}
	snap := &sink.Snapshot{
		Epoch: 2,
		OD: map[sink.ODKey]sink.ODStats{
			{From: "A", To: "B"}: {From: "A", To: "B", Trips: 0, TravelTimeS: hist()},
			{From: "B", To: "C"}: {From: "B", To: "C", Trips: 1, TravelTimeS: hist(120)},
			{From: "C", To: "D"}: {From: "C", To: "D", Trips: 2, TravelTimeS: hist(100, 300)},
		},
	}
	api := NewAPI(fixedSource{snap}, nil)
	var resp struct {
		Directions []struct {
			Direction string `json:"direction"`
			TravelS   struct {
				N    uint64   `json:"n"`
				Mean float64  `json:"mean"`
				Max  float64  `json:"max"`
				P10  *float64 `json:"p10"`
				P50  *float64 `json:"p50"`
				P99  *float64 `json:"p99"`
			} `json:"travel_time_s"`
		} `json:"directions"`
	}
	rec := get(t, api, "/v1/od", &resp)
	if rec.Code != http.StatusOK || len(resp.Directions) != 3 {
		t.Fatalf("status %d directions %+v", rec.Code, resp.Directions)
	}
	empty, one, two := resp.Directions[0].TravelS, resp.Directions[1].TravelS, resp.Directions[2].TravelS

	if empty.N != 0 || empty.Mean != 0 || empty.Max != 0 {
		t.Fatalf("empty summary = %+v", empty)
	}
	if empty.P10 != nil || empty.P50 != nil || empty.P99 != nil {
		t.Fatalf("empty histogram must omit quantiles, got %+v", empty)
	}

	if one.N != 1 || one.Mean != 120 || one.Max != 120 {
		t.Fatalf("one-sample summary = %+v", one)
	}
	if one.P10 != nil || one.P50 != nil || one.P99 != nil {
		t.Fatalf("one-sample histogram must omit quantiles, got %+v", one)
	}

	if two.N != 2 || two.P10 == nil || two.P50 == nil || two.P99 == nil {
		t.Fatalf("two-sample summary must carry quantiles: %+v", two)
	}
	// Bucket midpoints: p10 tracks the low sample, p99 the high one.
	if *two.P10 > 110 || *two.P99 < 280 {
		t.Fatalf("two-sample quantiles = p10 %g p99 %g", *two.P10, *two.P99)
	}
}
