// Package serve is the serving layer's query side: an http.Handler
// answering grid, OD and travel-time queries over the sink's current
// snapshot. Every request is answered from one immutable epoch — the
// handler loads the snapshot pointer once and never touches shared
// mutable state, so readers scale with no locks and ingest is never
// blocked by queries. Responses carry the epoch both in the JSON body
// and as a strong ETag, so If-None-Match turns unchanged polls into
// 304s and a client can detect a torn multi-request view by comparing
// epochs.
//
// Endpoints (all GET, JSON):
//
//	/v1/snapshot           epoch, cars ingested/failed, complete flag
//	/v1/healthz            liveness: epoch age, sealed flag, ingest inflight
//	/v1/lineage            the run's drop-reason ledger (conservation-checked)
//	/v1/grid               per-cell speed stats; ?bbox=, ?min-points=
//	/v1/cells/{id}         one cell by its "cI.J" key
//	/v1/od                 the OD matrix (all directions)
//	/v1/od/{from}-{to}     one direction: travel-time quantiles + metrics
//	/v1/predict            OD travel-time prediction: ?from=x,y&to=x,y&t=hour
//	/v1/anomalies          current-vs-reference deviations (cells and ODs)
//
// Every request passes through a recovery + access-log middleware
// (ServeHTTP): a handler panic becomes a logged 500 instead of a
// silently reset connection, and each request emits one structured log
// line (method, path, status, bytes, duration, epoch) when a logger is
// attached with WithLogger.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"net/url"
	"runtime/debug"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/geo"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/predict"
	"repro/internal/roadnet"
	"repro/internal/sink"
)

// Source yields the current immutable snapshot; *sink.Sink implements
// it, and tests may substitute a fixed snapshot.
type Source interface {
	Snapshot() *sink.Snapshot
}

// API is the query handler. Construct with NewAPI; it is an
// http.Handler and may be mounted anywhere (the taxiflow binary mounts
// it under /v1/ next to the obs debug endpoints).
type API struct {
	src Source
	mux *http.ServeMux
	met apiMetrics

	// log receives one access-log line per request and one error line
	// per recovered panic (WithLogger; nil disables logging but not
	// panic recovery).
	log *slog.Logger
	// lineage backs /v1/lineage (WithLineage; nil reports disabled).
	lineage *obs.Lineage
	// lineageSnap overrides the ledger with a precomputed table
	// (WithLineageSnapshot) — the coordinator serves its merged
	// cluster lineage this way, since it holds snapshots from remote
	// workers rather than a live ledger.
	lineageSnap func() obs.LineageSnapshot
	// role/node identify this process in healthz (WithNode): "single"
	// (default), "worker" or "coordinator", plus the node id.
	role string
	node string
	// workers surfaces the coordinator's per-worker merge state in
	// healthz (WithCluster; nil omits the field).
	workers func() []cluster.WorkerHealth
	// predictor backs /v1/predict (WithPredictor; nil reports the
	// endpoint as unconfigured).
	predictor *predict.Predictor
	// anomalies backs /v1/anomalies (WithAnomalies; nil reports the
	// endpoint as unconfigured).
	anomalies *predict.AnomalyDetector
	// inflight is the runner_inflight gauge from the shared registry —
	// how many cars ingest is working on right now, surfaced by healthz.
	inflight *obs.Gauge
	// reqID numbers requests for log correlation.
	reqID atomic.Uint64
}

type apiMetrics struct {
	requests    map[string]*obs.Counter // per endpoint
	notModified *obs.Counter
	badRequest  *obs.Counter
	notFound    *obs.Counter
	serverError *obs.Counter
	latency     *obs.Histogram
}

// NewAPI builds the handler over src and registers its metrics
// (serve_*) with reg; nil reg disables instrumentation.
func NewAPI(src Source, reg *obs.Registry) *API {
	a := &API{
		src: src,
		mux: http.NewServeMux(),
		met: apiMetrics{
			requests: map[string]*obs.Counter{
				"snapshot":    reg.Counter("serve_requests_snapshot"),
				"healthz":     reg.Counter("serve_requests_healthz"),
				"lineage":     reg.Counter("serve_requests_lineage"),
				"grid":        reg.Counter("serve_requests_grid"),
				"cell":        reg.Counter("serve_requests_cell"),
				"od":          reg.Counter("serve_requests_od"),
				"odpair":      reg.Counter("serve_requests_odpair"),
				"ingest":      reg.Counter("serve_requests_ingest"),
				"ingestclose": reg.Counter("serve_requests_ingest_close"),
				"predict":     reg.Counter("serve_requests_predict"),
				"anomalies":   reg.Counter("serve_requests_anomalies"),
			},
			notModified: reg.Counter("serve_responses_not_modified"),
			badRequest:  reg.Counter("serve_responses_bad_request"),
			notFound:    reg.Counter("serve_responses_not_found"),
			serverError: reg.Counter("serve_responses_server_error"),
			latency:     reg.Histogram("serve_request_seconds"),
		},
		inflight: reg.Gauge("runner_inflight"),
	}
	reg.GaugeFunc("serve_snapshot_epoch", func() float64 {
		return float64(src.Snapshot().Epoch)
	})
	reg.GaugeFunc("serve_snapshot_age_seconds", func() float64 {
		return time.Since(src.Snapshot().PublishedAt).Seconds()
	})
	reg.GaugeFunc("serve_snapshot_cars", func() float64 {
		return float64(src.Snapshot().CarsIngested)
	})
	a.mux.HandleFunc("GET /v1/snapshot", a.wrap("snapshot", a.handleSnapshot))
	a.mux.HandleFunc("GET /v1/healthz", a.wrap("healthz", a.handleHealthz))
	a.mux.HandleFunc("GET /v1/lineage", a.wrap("lineage", a.handleLineage))
	a.mux.HandleFunc("GET /v1/grid", a.wrap("grid", a.handleGrid))
	a.mux.HandleFunc("GET /v1/cells/{id}", a.wrap("cell", a.handleCell))
	a.mux.HandleFunc("GET /v1/od", a.wrap("od", a.handleOD))
	a.mux.HandleFunc("GET /v1/od/{pair}", a.wrap("odpair", a.handleODPair))
	a.mux.HandleFunc("GET /v1/predict", a.wrap("predict", a.handlePredict))
	a.mux.HandleFunc("GET /v1/anomalies", a.wrap("anomalies", a.handleAnomalies))
	return a
}

// WithLogger attaches a structured logger for access logs and panic
// reports; returns a for chaining. Safe to call only before serving.
func (a *API) WithLogger(log *slog.Logger) *API {
	a.log = log
	return a
}

// WithLineage attaches the run's lineage ledger, backing /v1/lineage;
// returns a for chaining. Safe to call only before serving.
func (a *API) WithLineage(l *obs.Lineage) *API {
	a.lineage = l
	return a
}

// WithLineageSnapshot backs /v1/lineage with a precomputed table
// instead of a live ledger — the coordinator's merged cluster lineage.
// Takes precedence over WithLineage. Safe to call only before serving.
func (a *API) WithLineageSnapshot(fn func() obs.LineageSnapshot) *API {
	a.lineageSnap = fn
	return a
}

// WithNode identifies this process in healthz: role is "single",
// "worker" or "coordinator", id the node name. Safe to call only
// before serving.
func (a *API) WithNode(role, id string) *API {
	a.role = role
	a.node = id
	return a
}

// WithPredictor attaches the travel-time predictor, backing
// /v1/predict; returns a for chaining. Safe to call only before
// serving.
func (a *API) WithPredictor(p *predict.Predictor) *API {
	a.predictor = p
	return a
}

// WithAnomalies attaches the anomaly detector, backing /v1/anomalies;
// returns a for chaining. Safe to call only before serving.
func (a *API) WithAnomalies(d *predict.AnomalyDetector) *API {
	a.anomalies = d
	return a
}

// WithCluster surfaces the coordinator's per-worker merge state
// (last-merge epoch, staleness, loss/drain flags) in healthz. Safe to
// call only before serving.
func (a *API) WithCluster(workers func() []cluster.WorkerHealth) *API {
	a.workers = workers
	return a
}

// statusWriter records the status code and body size a handler wrote,
// for the access log and the panic recovery (which must not write a
// second header onto a response that already has one).
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += n
	return n, err
}

// ServeHTTP dispatches to the API's endpoints through the recovery and
// access-log middleware: a panicking handler yields a logged 500 (when
// nothing has been written yet) rather than an empty reply, and every
// request emits one structured line when a logger is attached.
func (a *API) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	id := a.reqID.Add(1)
	sw := &statusWriter{ResponseWriter: w}
	defer func() {
		if rec := recover(); rec != nil {
			a.met.serverError.Inc()
			if sw.status == 0 {
				sw.Header().Set("Content-Type", "application/json; charset=utf-8")
				sw.WriteHeader(http.StatusInternalServerError)
				json.NewEncoder(sw).Encode(errorBody{Error: errorDetail{
					Code:    errorCode(http.StatusInternalServerError),
					Message: "internal server error",
				}})
			}
			if a.log != nil {
				a.log.Error("handler panicked",
					slog.Uint64("req", id),
					slog.String("method", r.Method),
					slog.String("path", r.URL.Path),
					slog.String("panic", fmt.Sprint(rec)),
					slog.String("stack", string(debug.Stack())))
			}
		}
		if a.log != nil {
			status := sw.status
			if status == 0 {
				status = http.StatusOK // handler wrote nothing: net/http defaults to 200
			}
			a.log.Info("request",
				slog.Uint64("req", id),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", status),
				slog.Int("bytes", sw.bytes),
				slog.Duration("duration", time.Since(start)),
				slog.Uint64("epoch", a.src.Snapshot().Epoch))
		}
	}()
	a.mux.ServeHTTP(sw, r)
}

// handlerFunc answers one request against the snapshot it was handed —
// the single epoch the whole response is built from.
type handlerFunc func(w http.ResponseWriter, r *http.Request, snap *sink.Snapshot)

// wrap applies the per-request envelope: metrics, the one atomic
// snapshot load, and the epoch ETag (If-None-Match short-circuits to
// 304 before any marshalling work).
func (a *API) wrap(name string, h handlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		a.met.requests[name].Inc()
		defer func() { a.met.latency.Observe(time.Since(start).Seconds()) }()

		snap := a.src.Snapshot()
		etag := fmt.Sprintf("\"v%d\"", snap.Epoch)
		w.Header().Set("ETag", etag)
		if match := r.Header.Get("If-None-Match"); match != "" && ifNoneMatch(match, etag) {
			a.met.notModified.Inc()
			w.WriteHeader(http.StatusNotModified)
			return
		}
		h(w, r, snap)
	}
}

// ifNoneMatch implements the header's list form ("v1", "v2", or *).
func ifNoneMatch(header, etag string) bool {
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(part)
		part = strings.TrimPrefix(part, "W/")
		if part == "*" || part == etag {
			return true
		}
	}
	return false
}

func (a *API) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

// errorBody is the uniform error envelope every /v1 endpoint returns:
// a machine-readable code slug alongside the human-readable message.
type errorBody struct {
	Error errorDetail `json:"error"`
}

type errorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// errorCode maps an HTTP status to its envelope code slug.
func errorCode(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusInternalServerError:
		return "internal"
	default:
		return strings.ReplaceAll(strings.ToLower(http.StatusText(status)), " ", "_")
	}
}

func (a *API) fail(w http.ResponseWriter, code int, format string, args ...any) {
	switch code {
	case http.StatusBadRequest:
		a.met.badRequest.Inc()
	case http.StatusNotFound:
		a.met.notFound.Inc()
	case http.StatusInternalServerError:
		a.met.serverError.Inc()
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorBody{Error: errorDetail{
		Code:    errorCode(code),
		Message: fmt.Sprintf(format, args...),
	}})
}

// --- /v1/snapshot -----------------------------------------------------------

type snapshotResponse struct {
	Epoch        uint64  `json:"epoch"`
	Complete     bool    `json:"complete"`
	CarsIngested int     `json:"cars_ingested"`
	CarsFailed   int     `json:"cars_failed"`
	Points       int     `json:"points"`
	Cells        int     `json:"cells"`
	Directions   int     `json:"directions"`
	PublishedAt  string  `json:"published_at"`
	AgeSeconds   float64 `json:"age_seconds"`
}

func (a *API) handleSnapshot(w http.ResponseWriter, _ *http.Request, snap *sink.Snapshot) {
	a.writeJSON(w, snapshotResponse{
		Epoch:        snap.Epoch,
		Complete:     snap.Complete,
		CarsIngested: snap.CarsIngested,
		CarsFailed:   snap.CarsFailed,
		Points:       snap.Points,
		Cells:        len(snap.Cells),
		Directions:   len(snap.OD),
		PublishedAt:  snap.PublishedAt.UTC().Format(time.RFC3339Nano),
		AgeSeconds:   time.Since(snap.PublishedAt).Seconds(),
	})
}

// --- /v1/healthz ------------------------------------------------------------

type healthzResponse struct {
	Status string `json:"status"`
	// Role is this node's place in the topology: "single" (the
	// default one-process deployment), "worker" or "coordinator".
	Role           string  `json:"role"`
	Node           string  `json:"node,omitempty"`
	Epoch          uint64  `json:"epoch"`
	AgeSeconds     float64 `json:"age_seconds"`
	Sealed         bool    `json:"sealed"`
	IngestInflight int64   `json:"ingest_inflight"`
	CarsIngested   int     `json:"cars_ingested"`
	CarsFailed     int     `json:"cars_failed"`
	// Workers is the coordinator's per-worker merge state: last-merge
	// epoch and heartbeat staleness per registered worker (coordinator
	// role only).
	Workers []cluster.WorkerHealth `json:"workers,omitempty"`
}

// handleHealthz answers the liveness probe: how stale the served epoch
// is, whether the run has sealed, and how many cars ingest is still
// working on. Always 200 — reachability is the health signal; the body
// carries the freshness details a poller alerts on.
func (a *API) handleHealthz(w http.ResponseWriter, _ *http.Request, snap *sink.Snapshot) {
	resp := healthzResponse{
		Status:         "ok",
		Role:           a.role,
		Node:           a.node,
		Epoch:          snap.Epoch,
		AgeSeconds:     time.Since(snap.PublishedAt).Seconds(),
		Sealed:         snap.Complete,
		IngestInflight: a.inflight.Value(),
		CarsIngested:   snap.CarsIngested,
		CarsFailed:     snap.CarsFailed,
	}
	if resp.Role == "" {
		resp.Role = "single"
	}
	if a.workers != nil {
		resp.Workers = a.workers()
	}
	a.writeJSON(w, resp)
}

// --- /v1/lineage ------------------------------------------------------------

type lineageResponse struct {
	Epoch   uint64 `json:"epoch"`
	Enabled bool   `json:"enabled"`
	// Lineage is the drop-reason ledger (in = out + Σ dropped per
	// stage); omitted when no ledger is attached.
	Lineage *obs.LineageSnapshot `json:"lineage,omitempty"`
}

func (a *API) handleLineage(w http.ResponseWriter, _ *http.Request, snap *sink.Snapshot) {
	resp := lineageResponse{Epoch: snap.Epoch}
	switch {
	case a.lineageSnap != nil:
		ls := a.lineageSnap()
		resp.Enabled = true
		resp.Lineage = &ls
	case a.lineage != nil:
		ls := a.lineage.Snapshot(10)
		resp.Enabled = true
		resp.Lineage = &ls
	}
	a.writeJSON(w, resp)
}

// --- /v1/grid and /v1/cells/{id} --------------------------------------------

type cellResponse struct {
	ID string `json:"id"`
	I  int    `json:"i"`
	J  int    `json:"j"`
	// Rect is the cell's rectangle [minx, miny, maxx, maxy] in
	// projected metres.
	Rect [4]float64 `json:"rect"`
	sink.CellStats
}

type gridResponse struct {
	Epoch    uint64         `json:"epoch"`
	Complete bool           `json:"complete"`
	CellM    float64        `json:"cell_m"`
	Cells    []cellResponse `json:"cells"`
}

func newCellResponse(g *grid.Grid, id grid.CellID, cs sink.CellStats) cellResponse {
	r := g.CellRect(id)
	return cellResponse{
		ID: id.String(), I: id.I, J: id.J,
		Rect:      [4]float64{r.MinX, r.MinY, r.MaxX, r.MaxY},
		CellStats: cs,
	}
}

func (a *API) handleGrid(w http.ResponseWriter, r *http.Request, snap *sink.Snapshot) {
	gq, err := parseQuery(r.URL.Query())
	if err != nil {
		a.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	minPoints, bbox := gq.minPoints, gq.bbox
	resp := gridResponse{
		Epoch:    snap.Epoch,
		Complete: snap.Complete,
		CellM:    snap.Grid.CellM,
		Cells:    []cellResponse{},
	}
	for _, id := range snap.CellIDs() {
		cs := snap.Cells[id]
		if cs.N < minPoints {
			continue
		}
		if bbox != nil && !bbox.Intersects(snap.Grid.CellRect(id)) {
			continue
		}
		resp.Cells = append(resp.Cells, newCellResponse(snap.Grid, id, cs))
	}
	a.writeJSON(w, resp)
}

// gridQuery is the validated filter set shared by the grid endpoints.
type gridQuery struct {
	minPoints int
	bbox      *geo.Rect // nil: no spatial filter
}

// parseQuery validates the common query parameters (min-points, bbox)
// of the grid endpoints. It is the single untrusted-input funnel for
// those filters and is fuzz-covered (FuzzQueryParsing).
func parseQuery(q url.Values) (gridQuery, error) {
	var gq gridQuery
	if v := q.Get("min-points"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return gridQuery{}, fmt.Errorf("bad min-points %q", v)
		}
		gq.minPoints = n
	}
	if v := q.Get("bbox"); v != "" {
		b, err := parseBBox(v)
		if err != nil {
			return gridQuery{}, err
		}
		gq.bbox = &b
	}
	return gq, nil
}

// parseBBox parses "minx,miny,maxx,maxy".
func parseBBox(s string) (geo.Rect, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return geo.Rect{}, fmt.Errorf("bad bbox %q (want minx,miny,maxx,maxy)", s)
	}
	var v [4]float64
	for i, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return geo.Rect{}, fmt.Errorf("bad bbox %q: %v", s, err)
		}
		v[i] = f
	}
	r := geo.R(v[0], v[1], v[2], v[3])
	if r.IsEmpty() {
		return geo.Rect{}, fmt.Errorf("bad bbox %q (empty)", s)
	}
	return r, nil
}

type oneCellResponse struct {
	Epoch    uint64 `json:"epoch"`
	Complete bool   `json:"complete"`
	cellResponse
}

func (a *API) handleCell(w http.ResponseWriter, r *http.Request, snap *sink.Snapshot) {
	id, err := grid.ParseCellID(r.PathValue("id"))
	if err != nil {
		a.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	cs, ok := snap.Cells[id]
	if !ok {
		a.fail(w, http.StatusNotFound, "cell %s has no data at epoch %d", id, snap.Epoch)
		return
	}
	a.writeJSON(w, oneCellResponse{
		Epoch:        snap.Epoch,
		Complete:     snap.Complete,
		cellResponse: newCellResponse(snap.Grid, id, cs),
	})
}

// --- /v1/od and /v1/od/{from}-{to} ------------------------------------------

type odEntry struct {
	Direction string           `json:"direction"`
	From      string           `json:"from"`
	To        string           `json:"to"`
	Trips     int              `json:"trips"`
	TravelS   travelTimeStats  `json:"travel_time_s"`
	DistKm    sink.MetricStats `json:"dist_km"`
	FuelMl    sink.MetricStats `json:"fuel_ml"`
	LowPct    sink.MetricStats `json:"low_speed_pct"`
	NormalPct sink.MetricStats `json:"normal_speed_pct"`
	Attrs     sink.AttrTotals  `json:"attrs"`
}

// travelTimeStats summarises a direction's travel-time distribution.
// Quantiles are pointers so they can be omitted entirely below two
// samples: an empty histogram has no quantiles at all (the earlier
// NaN→0 coercion rendered them as an impossible 0 s), and a single
// observation defines no distribution — reporting its value as
// p10==p50==p99 read as false precision. Count, mean and max remain the
// honest summary at n < 2.
type travelTimeStats struct {
	N    uint64   `json:"n"`
	Mean float64  `json:"mean"`
	Max  float64  `json:"max"`
	P10  *float64 `json:"p10,omitempty"`
	P25  *float64 `json:"p25,omitempty"`
	P50  *float64 `json:"p50,omitempty"`
	P75  *float64 `json:"p75,omitempty"`
	P90  *float64 `json:"p90,omitempty"`
	P99  *float64 `json:"p99,omitempty"`
}

func newODEntry(dir sink.ODKey, od sink.ODStats) odEntry {
	h := od.TravelTimeS
	ts := travelTimeStats{N: h.Count(), Mean: h.Mean(), Max: h.Max()}
	if ts.N >= 2 {
		q := func(p float64) *float64 {
			v := h.Quantile(p)
			if math.IsNaN(v) {
				v = 0
			}
			return &v
		}
		ts.P10, ts.P25, ts.P50 = q(0.10), q(0.25), q(0.50)
		ts.P75, ts.P90, ts.P99 = q(0.75), q(0.90), q(0.99)
	}
	return odEntry{
		Direction: dir.String(),
		From:      od.From,
		To:        od.To,
		Trips:     od.Trips,
		TravelS:   ts,
		DistKm:    od.DistKm,
		FuelMl:    od.FuelMl,
		LowPct:    od.LowSpeedPct,
		NormalPct: od.NormalSpeedPct,
		Attrs:     od.Attrs,
	}
}

type odMatrixResponse struct {
	Epoch      uint64    `json:"epoch"`
	Complete   bool      `json:"complete"`
	Directions []odEntry `json:"directions"`
}

func (a *API) handleOD(w http.ResponseWriter, _ *http.Request, snap *sink.Snapshot) {
	resp := odMatrixResponse{Epoch: snap.Epoch, Complete: snap.Complete, Directions: []odEntry{}}
	for _, dir := range snap.Directions() {
		resp.Directions = append(resp.Directions, newODEntry(dir, snap.OD[dir]))
	}
	a.writeJSON(w, resp)
}

type odPairResponse struct {
	Epoch    uint64 `json:"epoch"`
	Complete bool   `json:"complete"`
	odEntry
}

func (a *API) handleODPair(w http.ResponseWriter, r *http.Request, snap *sink.Snapshot) {
	key, err := parseODPair(r.PathValue("pair"), snap)
	if err != nil {
		a.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	od, ok := snap.OD[key]
	if !ok {
		a.fail(w, http.StatusNotFound, "no trips for direction %s at epoch %d", key, snap.Epoch)
		return
	}
	a.writeJSON(w, odPairResponse{
		Epoch:    snap.Epoch,
		Complete: snap.Complete,
		odEntry:  newODEntry(key, od),
	})
}

// parseODPair resolves a "{from}-{to}" path segment against the
// snapshot's registered gates. The '-' separator may also occur inside
// gate names, making a naive split ambiguous; when the gate set is
// known we try every split position and accept the one whose both
// sides are registered gates, otherwise we split on the LAST separator
// (gate names extend more naturally on the left: "T-north"-"S" renders
// as "T-north-S"). Unknown gate names are a 400, not a 404: the
// request is malformed regardless of which directions hold data.
func parseODPair(pair string, snap *sink.Snapshot) (sink.ODKey, error) {
	if len(snap.Gates) > 0 {
		var hit []sink.ODKey
		for i := strings.IndexByte(pair, '-'); i >= 0; {
			from, to := pair[:i], pair[i+1:]
			if from != "" && to != "" && snap.HasGate(from) && snap.HasGate(to) {
				hit = append(hit, sink.ODKey{From: from, To: to})
			}
			next := strings.IndexByte(pair[i+1:], '-')
			if next < 0 {
				break
			}
			i += 1 + next
		}
		switch len(hit) {
		case 1:
			return hit[0], nil
		case 0:
			return sink.ODKey{}, fmt.Errorf("bad direction %q: gates must be registered (known: %s)",
				pair, strings.Join(snap.Gates, ", "))
		default:
			// Pathological gate sets (e.g. "A", "B", "A-B") can make two
			// splits valid; refuse rather than guess.
			return sink.ODKey{}, fmt.Errorf("ambiguous direction %q: %d gate splits match", pair, len(hit))
		}
	}
	i := strings.LastIndexByte(pair, '-')
	if i <= 0 || i == len(pair)-1 {
		return sink.ODKey{}, fmt.Errorf("bad direction %q (want FROM-TO, e.g. T-S)", pair)
	}
	return sink.ODKey{From: pair[:i], To: pair[i+1:]}, nil
}

// --- /v1/predict ------------------------------------------------------------

type predictResponse struct {
	Epoch    uint64 `json:"epoch"`
	Complete bool   `json:"complete"`
	// TravelS is the predicted travel time over learned edge costs;
	// FreeFlowS the same route at free flow.
	TravelS    float64 `json:"travel_s"`
	FreeFlowS  float64 `json:"free_flow_s"`
	DistanceKm float64 `json:"distance_km"`
	// Edges / ObservedEdges expose the route's profile coverage: how
	// many of its edges had learned paces at this epoch.
	Edges         int     `json:"edges"`
	ObservedEdges int     `json:"observed_edges"`
	GlobalRatio   float64 `json:"global_ratio"`
	// Hour is the scored hour bucket; -1 is the all-day profile.
	Hour int `json:"hour"`
}

// parseXY parses a "x,y" projected-metres coordinate pair.
func parseXY(name, s string) (geo.XY, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return geo.XY{}, fmt.Errorf("bad %s %q (want x,y in projected metres)", name, s)
	}
	x, err1 := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
	y, err2 := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err1 != nil || err2 != nil || math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
		return geo.XY{}, fmt.Errorf("bad %s %q (want x,y in projected metres)", name, s)
	}
	return geo.V(x, y), nil
}

// parseHour parses the optional t parameter: a bare hour 0-23, or an
// RFC 3339 timestamp whose UTC hour is used. Empty means the all-day
// profile (-1).
func parseHour(s string) (int, error) {
	if s == "" {
		return -1, nil
	}
	if n, err := strconv.Atoi(s); err == nil {
		if n < 0 || n > 23 {
			return 0, fmt.Errorf("bad t %q (hour must be 0..23)", s)
		}
		return n, nil
	}
	if ts, err := time.Parse(time.RFC3339, s); err == nil {
		return ts.UTC().Hour(), nil
	}
	return 0, fmt.Errorf("bad t %q (want an hour 0..23 or an RFC 3339 timestamp)", s)
}

func (a *API) handlePredict(w http.ResponseWriter, r *http.Request, snap *sink.Snapshot) {
	if a.predictor == nil {
		a.fail(w, http.StatusNotImplemented, "prediction is not configured on this node")
		return
	}
	q := r.URL.Query()
	from, err := parseXY("from", q.Get("from"))
	if err != nil {
		a.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	to, err := parseXY("to", q.Get("to"))
	if err != nil {
		a.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	hour, err := parseHour(q.Get("t"))
	if err != nil {
		a.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	pred, err := a.predictor.Predict(snap, from, to, hour)
	if err != nil {
		if errors.Is(err, roadnet.ErrNoPath) {
			a.fail(w, http.StatusNotFound, "no route from %s to %s", q.Get("from"), q.Get("to"))
			return
		}
		a.fail(w, http.StatusInternalServerError, "%v", err)
		return
	}
	a.writeJSON(w, predictResponse{
		Epoch:         snap.Epoch,
		Complete:      snap.Complete,
		TravelS:       pred.TravelS,
		FreeFlowS:     pred.FreeFlowS,
		DistanceKm:    pred.DistanceKm,
		Edges:         pred.Edges,
		ObservedEdges: pred.ObservedEdges,
		GlobalRatio:   pred.GlobalRatio,
		Hour:          pred.Hour,
	})
}

// --- /v1/anomalies ----------------------------------------------------------

type cellAnomalyResponse struct {
	ID           string  `json:"id"`
	I            int     `json:"i"`
	J            int     `json:"j"`
	CurrentKmh   float64 `json:"current_kmh"`
	ReferenceKmh float64 `json:"reference_kmh"`
	Z            float64 `json:"z"`
	N            int     `json:"n"`
}

type odAnomalyResponse struct {
	Direction       string  `json:"direction"`
	From            string  `json:"from"`
	To              string  `json:"to"`
	CurrentSPerKm   float64 `json:"current_s_per_km"`
	ReferenceSPerKm float64 `json:"reference_s_per_km"`
	Z               float64 `json:"z"`
	Trips           int     `json:"trips"`
}

type anomaliesResponse struct {
	Epoch    uint64 `json:"epoch"`
	Complete bool   `json:"complete"`
	// RefEpochs is how many epochs back the rolling reference; below
	// the detector's minimum nothing is flagged yet (cold start).
	RefEpochs   int                   `json:"ref_epochs"`
	CellsScored int                   `json:"cells_scored"`
	ODsScored   int                   `json:"ods_scored"`
	Cells       []cellAnomalyResponse `json:"cells"`
	ODs         []odAnomalyResponse   `json:"ods"`
}

func (a *API) handleAnomalies(w http.ResponseWriter, _ *http.Request, snap *sink.Snapshot) {
	if a.anomalies == nil {
		a.fail(w, http.StatusNotImplemented, "anomaly detection is not configured on this node")
		return
	}
	rep := a.anomalies.Report(snap)
	resp := anomaliesResponse{
		Epoch:       rep.Epoch,
		Complete:    snap.Complete,
		RefEpochs:   rep.RefEpochs,
		CellsScored: rep.CellsScored,
		ODsScored:   rep.ODsScored,
		Cells:       []cellAnomalyResponse{},
		ODs:         []odAnomalyResponse{},
	}
	for _, c := range rep.Cells {
		resp.Cells = append(resp.Cells, cellAnomalyResponse{
			ID: c.Cell.String(), I: c.Cell.I, J: c.Cell.J,
			CurrentKmh: c.CurrentKmh, ReferenceKmh: c.ReferenceKmh,
			Z: c.Z, N: c.N,
		})
	}
	for _, o := range rep.ODs {
		resp.ODs = append(resp.ODs, odAnomalyResponse{
			Direction: o.Dir.String(), From: o.Dir.From, To: o.Dir.To,
			CurrentSPerKm: o.CurrentSPerKm, ReferenceSPerKm: o.ReferenceSPerKm,
			Z: o.Z, Trips: o.Trips,
		})
	}
	a.writeJSON(w, resp)
}

// Mount attaches the API (under /v1/) to an existing mux — typically
// the obs debug mux, so one listener serves queries, metrics and pprof.
func Mount(mux *http.ServeMux, a *API) {
	mux.Handle("/v1/", a)
}
