package obs

import "time"

// SpanTimer is a pre-resolved pair of metrics describing one recurring
// operation ("stage"): a duration histogram <name>_duration_seconds and
// an active-count gauge <name>_active. Resolve it once at construction
// (Registry.SpanTimer) and call Start on the hot path — starting and
// ending a span costs two atomic ops and two clock reads, nothing more.
// A nil *SpanTimer (from a nil registry) starts no-op spans.
type SpanTimer struct {
	dur    *Histogram
	active *Gauge
}

// SpanTimer returns the pre-resolved timer for the named stage,
// registering <name>_duration_seconds and <name>_active. Returns nil on
// a nil registry.
func (r *Registry) SpanTimer(name string) *SpanTimer {
	if r == nil {
		return nil
	}
	return &SpanTimer{
		dur:    r.Histogram(name + "_duration_seconds"),
		active: r.Gauge(name + "_active"),
	}
}

// Start opens a span: the active gauge rises immediately, the duration
// is recorded by End. Spans nest freely — each Start/End pair is
// independent, so an enclosing stage span can cover several child
// stage spans.
func (t *SpanTimer) Start() Span {
	if t == nil {
		return Span{}
	}
	t.active.Add(1)
	return Span{t: t, start: time.Now()}
}

// StartSpan opens a span for the named stage, resolving the timer on
// the fly (one registry lookup). Prefer SpanTimer + Start on hot paths.
func (r *Registry) StartSpan(name string) Span { return r.SpanTimer(name).Start() }

// Span is one in-flight timed operation. The zero Span (from a nil
// timer) is a valid no-op; End may be called exactly once.
type Span struct {
	t     *SpanTimer
	start time.Time
}

// End closes the span, dropping the active gauge and recording the
// elapsed duration. It returns the duration (0 for no-op spans).
func (s Span) End() time.Duration {
	if s.t == nil {
		return 0
	}
	d := time.Since(s.start)
	s.t.active.Add(-1)
	s.t.dur.Observe(d.Seconds())
	return d
}
