package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Lineage is the pipeline's data-provenance ledger: for every lossy
// stage it tracks how many records went in, how many came out, and —
// per typed DropReason — where the difference went, with per-car drop
// totals on the side. The paper's credibility argument is exactly this
// accounting ("from raw data to reliable information"), so the ledger
// is conservation-checked: for every stage, in = out + Σ dropped. A
// violated ledger means a stage is discarding data it never accounted
// for, and Check/Snapshot surface that as an error rather than a
// slightly-wrong table.
//
// Hot-path cost: AddIn/AddOut/DropCounter.Add are single atomic adds on
// pre-resolved handles; RecordCar additionally takes one short mutex to
// fold the car's drop total into the per-car map. A nil *Lineage (and
// every handle resolved from one) degrades to no-ops, mirroring the
// Registry's nil contract.
//
// When constructed over a non-nil Registry, every stage mirrors its
// totals into labelled counters — lineage_in_total{stage="clean"},
// lineage_out_total{stage="clean"},
// lineage_dropped_total{stage="clean",reason="spike"} — which the
// Prometheus exporter renders as proper labelled series.
type Lineage struct {
	reg *Registry

	mu      sync.Mutex
	order   []*StageLineage
	byName  map[string]*StageLineage
	carDrop map[int]*carLineage
}

// carLineage accumulates one car's drop totals across stages.
type carLineage struct {
	total   uint64
	byStage map[string]uint64
}

// DropReason is a typed cause for discarding a unit of data at a
// pipeline stage. The values double as metric label values, so they
// are short snake_case slugs.
type DropReason string

// The drop-reason taxonomy, by stage (see DESIGN.md for the table).
const (
	// Cleaning (units: route points).
	DropNonFinite   DropReason = "non_finite"   // NaN/Inf field or zero timestamp
	DropOutOfArea   DropReason = "out_of_area"  // position outside the plausible region
	DropDuplicateID DropReason = "duplicate_id" // repeated device sequence id
	DropSpike       DropReason = "spike"        // implied speed impossible (GPS spike)

	// Segmentation (units: candidate segments).
	DropTooFewPoints DropReason = "too_few_points"
	DropTooLong      DropReason = "too_long"

	// OD selection (units: trip segments).
	DropNoGate        DropReason = "no_gate"        // touched no gate road
	DropSingleGate    DropReason = "single_gate"    // touched gates but formed no transition
	DropOutsideCentre DropReason = "outside_centre" // transition avoided the central area
	DropPostFilter    DropReason = "post_filter"    // failed the crossing-angle/post filters

	// Map-matching (units: accepted transitions).
	DropDegenerateSpan DropReason = "degenerate_span" // O-D span shorter than two points
	DropUnroutable     DropReason = "unroutable"      // the matcher found no route

	// Streaming ingest (units: route points).
	DropLate DropReason = "late" // event time below the low watermark, or its trip already closed
	// DropIdleResumed marks a rejected point NEWER than everything its
	// own car ever sent: the car was silent long enough for the
	// watermark to pass it (its open trips were idle-flushed) and is now
	// resuming. Genuine out-of-order arrivals stay "late"; resurrection
	// after an idle close is a distinct operational signal.
	DropIdleResumed DropReason = "idle_resumed"

	// Fleet level (units: cars).
	DropCancelled DropReason = "cancelled" // abandoned by abort or cancellation
)

// NewLineage builds a ledger. reg may be nil: the ledger still counts
// (and snapshots) everything, it just mirrors nothing into metrics.
func NewLineage(reg *Registry) *Lineage {
	return &Lineage{
		reg:     reg,
		byName:  map[string]*StageLineage{},
		carDrop: map[int]*carLineage{},
	}
}

// StageLineage is the per-stage ledger row: in/out totals plus one
// DropCounter per registered reason. Resolve once, use lock-free.
type StageLineage struct {
	lin  *Lineage
	name string
	unit string

	in, out atomic.Uint64
	inC     *Counter // registry mirrors (nil without a registry)
	outC    *Counter

	mu      sync.Mutex
	reasons []*DropCounter
	byCause map[DropReason]*DropCounter
}

// Stage returns (registering on first use) the ledger row for the
// named stage; unit names what is being counted ("points", "segments",
// "transitions", "cars"). Nil-safe.
func (l *Lineage) Stage(name, unit string) *StageLineage {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if st := l.byName[name]; st != nil {
		return st
	}
	st := &StageLineage{
		lin:     l,
		name:    name,
		unit:    unit,
		inC:     l.reg.Counter(fmt.Sprintf("lineage_in_total{stage=%q}", name)),
		outC:    l.reg.Counter(fmt.Sprintf("lineage_out_total{stage=%q}", name)),
		byCause: map[DropReason]*DropCounter{},
	}
	l.byName[name] = st
	l.order = append(l.order, st)
	return st
}

// DropCounter counts drops for one (stage, reason) pair.
type DropCounter struct {
	st     *StageLineage
	reason DropReason
	n      atomic.Uint64
	mirror *Counter
}

// Reason returns (registering on first use) the drop counter for r.
// Nil-safe; idempotent.
func (s *StageLineage) Reason(r DropReason) *DropCounter {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if d := s.byCause[r]; d != nil {
		return d
	}
	d := &DropCounter{
		st:     s,
		reason: r,
		mirror: s.lin.reg.Counter(fmt.Sprintf("lineage_dropped_total{stage=%q,reason=%q}", s.name, r)),
	}
	s.byCause[r] = d
	s.reasons = append(s.reasons, d)
	return d
}

// Add counts n drops for this reason.
func (d *DropCounter) Add(n uint64) {
	if d == nil || n == 0 {
		return
	}
	d.n.Add(n)
	d.mirror.Add(n)
}

// Value returns the reason's drop total.
func (d *DropCounter) Value() uint64 {
	if d == nil {
		return 0
	}
	return d.n.Load()
}

// Add records in units entering and out units leaving the stage
// without per-car attribution (used by fleet-level accounting).
func (s *StageLineage) Add(in, out uint64) {
	if s == nil {
		return
	}
	s.in.Add(in)
	s.out.Add(out)
	s.inC.Add(in)
	s.outC.Add(out)
}

// RecordCar records one car's passage through the stage: in units
// entered, out survived, and the difference is attributed to the car
// in the per-car drop table. Call exactly once per car per stage (on
// the car's final successful attempt).
func (s *StageLineage) RecordCar(car int, in, out uint64) {
	if s == nil {
		return
	}
	s.Add(in, out)
	if in <= out {
		return
	}
	dropped := in - out
	l := s.lin
	l.mu.Lock()
	cl := l.carDrop[car]
	if cl == nil {
		cl = &carLineage{byStage: map[string]uint64{}}
		l.carDrop[car] = cl
	}
	cl.total += dropped
	cl.byStage[s.name] += dropped
	l.mu.Unlock()
}

// --- Snapshot & conservation ------------------------------------------------

// ReasonCount is one (reason, count) pair of a stage snapshot.
type ReasonCount struct {
	Reason string `json:"reason"`
	N      uint64 `json:"n"`
}

// StageSnapshot is one row of the lineage table.
type StageSnapshot struct {
	Stage   string        `json:"stage"`
	Unit    string        `json:"unit"`
	In      uint64        `json:"in"`
	Out     uint64        `json:"out"`
	Dropped uint64        `json:"dropped"` // in - out
	Reasons []ReasonCount `json:"reasons,omitempty"`
	// Conserved reports the stage's conservation invariant:
	// in == out + Σ reasons.
	Conserved bool `json:"conserved"`
}

// CarDropSnapshot is one car's drop account.
type CarDropSnapshot struct {
	Car     int               `json:"car"`
	Dropped uint64            `json:"dropped"`
	ByStage map[string]uint64 `json:"by_stage,omitempty"`
}

// LineageSnapshot is the queryable per-run lineage table.
type LineageSnapshot struct {
	Stages []StageSnapshot `json:"stages"`
	// TopDroppedCars lists the cars that lost the most data, most
	// lossy first (capped by the topCars argument of Snapshot).
	TopDroppedCars []CarDropSnapshot `json:"top_dropped_cars,omitempty"`
	// Conserved is the conjunction of the per-stage flags.
	Conserved bool `json:"conserved"`
}

// Snapshot captures the ledger: stage rows in registration order and
// the topCars most lossy cars (0 omits the car table). Nil-safe (an
// empty table).
func (l *Lineage) Snapshot(topCars int) LineageSnapshot {
	snap := LineageSnapshot{Stages: []StageSnapshot{}, Conserved: true}
	if l == nil {
		return snap
	}
	l.mu.Lock()
	stages := append([]*StageLineage(nil), l.order...)
	cars := make([]CarDropSnapshot, 0, len(l.carDrop))
	if topCars > 0 {
		for car, cl := range l.carDrop {
			by := make(map[string]uint64, len(cl.byStage))
			for st, n := range cl.byStage {
				by[st] = n
			}
			cars = append(cars, CarDropSnapshot{Car: car, Dropped: cl.total, ByStage: by})
		}
	}
	l.mu.Unlock()

	for _, st := range stages {
		row := StageSnapshot{Stage: st.name, Unit: st.unit, In: st.in.Load(), Out: st.out.Load()}
		if row.In >= row.Out {
			row.Dropped = row.In - row.Out
		}
		var byReason uint64
		st.mu.Lock()
		for _, d := range st.reasons {
			n := d.n.Load()
			byReason += n
			if n > 0 {
				row.Reasons = append(row.Reasons, ReasonCount{Reason: string(d.reason), N: n})
			}
		}
		st.mu.Unlock()
		row.Conserved = row.In == row.Out+byReason
		snap.Conserved = snap.Conserved && row.Conserved
		snap.Stages = append(snap.Stages, row)
	}

	sort.Slice(cars, func(i, j int) bool {
		if cars[i].Dropped != cars[j].Dropped {
			return cars[i].Dropped > cars[j].Dropped
		}
		return cars[i].Car < cars[j].Car
	})
	if topCars > 0 && len(cars) > topCars {
		cars = cars[:topCars]
	}
	snap.TopDroppedCars = cars
	return snap
}

// Check verifies the conservation invariant over the current ledger
// state: every stage must satisfy in == out + Σ dropped-by-reason.
// Nil-safe (a nil ledger trivially conserves).
func (l *Lineage) Check() error {
	return l.Snapshot(0).Check()
}

// Check verifies a snapshot's conservation invariant.
func (s LineageSnapshot) Check() error {
	for _, st := range s.Stages {
		var byReason uint64
		for _, r := range st.Reasons {
			byReason += r.N
		}
		if st.In != st.Out+byReason {
			return fmt.Errorf("obs: lineage conservation violated at stage %s: in=%d out=%d dropped-by-reason=%d (unaccounted %d)",
				st.Stage, st.In, st.Out, byReason, int64(st.In)-int64(st.Out+byReason))
		}
	}
	return nil
}
