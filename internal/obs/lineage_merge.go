package obs

import "sort"

// MergeLineageSnapshots folds per-worker lineage tables into one fleet
// table — the coordinator-side half of carrying the conservation
// invariant across the worker→coordinator handoff. Stages are matched
// by name (order = first appearance across the inputs), in/out/reason
// totals are summed, and the per-stage Conserved flag is recomputed
// from the merged sums; because in = out + Σ dropped holds under
// addition, a merge of conserving tables conserves and a violation in
// any shard stays visible in the merged row. Per-car drop accounts are
// summed by car and re-ranked, keeping the topCars most lossy (0 omits
// the car table).
func MergeLineageSnapshots(topCars int, snaps ...LineageSnapshot) LineageSnapshot {
	out := LineageSnapshot{Stages: []StageSnapshot{}, Conserved: true}

	type stageAcc struct {
		row     StageSnapshot
		reasons map[string]uint64
		order   []string
	}
	var stageOrder []string
	stages := map[string]*stageAcc{}
	cars := map[int]*CarDropSnapshot{}

	for _, s := range snaps {
		for _, st := range s.Stages {
			acc := stages[st.Stage]
			if acc == nil {
				acc = &stageAcc{
					row:     StageSnapshot{Stage: st.Stage, Unit: st.Unit},
					reasons: map[string]uint64{},
				}
				stages[st.Stage] = acc
				stageOrder = append(stageOrder, st.Stage)
			}
			acc.row.In += st.In
			acc.row.Out += st.Out
			for _, r := range st.Reasons {
				if _, seen := acc.reasons[r.Reason]; !seen {
					acc.order = append(acc.order, r.Reason)
				}
				acc.reasons[r.Reason] += r.N
			}
		}
		for _, c := range s.TopDroppedCars {
			dst := cars[c.Car]
			if dst == nil {
				dst = &CarDropSnapshot{Car: c.Car, ByStage: map[string]uint64{}}
				cars[c.Car] = dst
			}
			dst.Dropped += c.Dropped
			for st, n := range c.ByStage {
				dst.ByStage[st] += n
			}
		}
	}

	for _, name := range stageOrder {
		acc := stages[name]
		row := acc.row
		if row.In >= row.Out {
			row.Dropped = row.In - row.Out
		}
		var byReason uint64
		for _, reason := range acc.order {
			n := acc.reasons[reason]
			byReason += n
			if n > 0 {
				row.Reasons = append(row.Reasons, ReasonCount{Reason: reason, N: n})
			}
		}
		row.Conserved = row.In == row.Out+byReason
		out.Conserved = out.Conserved && row.Conserved
		out.Stages = append(out.Stages, row)
	}

	if topCars > 0 && len(cars) > 0 {
		ranked := make([]CarDropSnapshot, 0, len(cars))
		for _, c := range cars {
			ranked = append(ranked, *c)
		}
		sort.Slice(ranked, func(i, j int) bool {
			if ranked[i].Dropped != ranked[j].Dropped {
				return ranked[i].Dropped > ranked[j].Dropped
			}
			return ranked[i].Car < ranked[j].Car
		})
		if len(ranked) > topCars {
			ranked = ranked[:topCars]
		}
		out.TopDroppedCars = ranked
	}
	return out
}
