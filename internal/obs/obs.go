// Package obs is the pipeline's zero-dependency observability layer: a
// concurrency-safe metrics registry holding atomic counters, gauges and
// streaming histograms, lightweight stage spans, and exporters
// (Prometheus text format, JSON snapshots, and an HTTP debug server
// with live pprof).
//
// The paper's pipeline is a chain of lossy stages — cleaning →
// segmentation → OD selection → map-matching → attribute fetching →
// grid aggregation — and its credibility rests on knowing exactly how
// much data each stage kept, dropped, and how long it took. This
// package gives every stage a uniform way to report that, without
// perturbing results or hot-path allocation behaviour:
//
//   - all handle methods are nil-receiver safe, so a nil *Registry
//     (instrumentation disabled) degrades every operation to a
//     predictable no-op branch;
//   - hot-path operations are single atomic instructions (Counter.Add,
//     Gauge.Add) or a handful of them (Histogram.Observe); no locks, no
//     allocations, no maps;
//   - handles are resolved once at construction (Registry.Counter etc.
//     take the registry lock), then used lock-free forever after.
//
// Typical use:
//
//	reg := obs.NewRegistry()
//	matched := reg.Counter("pipeline_mapmatch_matched")
//	timer := reg.SpanTimer("pipeline_mapmatch")
//	...
//	sp := timer.Start()          // increments pipeline_mapmatch_active
//	res, err := matcher.Match(pts)
//	sp.End()                     // observes pipeline_mapmatch_duration_seconds
//	matched.Inc()
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a concurrency-safe collection of named metrics. The zero
// of *Registry (nil) is valid: every method returns nil handles whose
// operations are no-ops, so instrumented code needs no "is observability
// on?" branches of its own.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	gaugeFns map[string]func() float64
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		gaugeFns: map[string]func() float64{},
		hists:    map[string]*Histogram{},
	}
}

// def is the package-level default registry used by the package-level
// convenience functions.
var def = NewRegistry()

// Default returns the package-level registry.
func Default() *Registry { return def }

// StartSpan opens a span against the default registry; see
// Registry.StartSpan.
func StartSpan(name string) Span { return def.StartSpan(name) }

// Counter returns (registering on first use) the named monotonic
// counter. Safe for concurrent callers; returns nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (registering on first use) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a gauge whose value is computed by fn at
// snapshot/export time — the bridge for subsystems that keep their own
// counters (e.g. the router path cache). Later registrations under the
// same name replace earlier ones.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.gaugeFns[name] = fn
	r.mu.Unlock()
}

// Histogram returns (registering on first use) the named streaming
// histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// --- Counter ---------------------------------------------------------------

// Counter is a monotonically increasing atomic counter. All methods are
// nil-receiver safe no-ops.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// --- Gauge -----------------------------------------------------------------

// Gauge is an atomic instantaneous value (e.g. active workers). All
// methods are nil-receiver safe no-ops.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds delta (which may be negative).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// --- Snapshot --------------------------------------------------------------

// Snapshot is a point-in-time copy of every metric in a registry, in
// the shape the JSON exporter writes.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every metric. GaugeFunc callbacks are evaluated
// here (outside the registry lock, so a callback may itself read
// metrics). Returns an empty snapshot on a nil registry.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	fns := make(map[string]func() float64, len(r.gaugeFns))
	for n, fn := range r.gaugeFns {
		fns[n] = fn
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	r.mu.RUnlock()

	for n, c := range counters {
		s.Counters[n] = c.Value()
	}
	for n, g := range gauges {
		s.Gauges[n] = float64(g.Value())
	}
	for n, fn := range fns {
		v := fn()
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = 0
		}
		s.Gauges[n] = v
	}
	for n, h := range hists {
		s.Histograms[n] = h.Snapshot()
	}
	return s
}

// sortedKeys returns the sorted key set of a map with string keys.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
