package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// WritePrometheus writes every metric in the Prometheus text exposition
// format (version 0.0.4), deterministically ordered by name. Counters
// and gauges map directly; histograms are written as summaries
// (quantile series plus _sum and _count) with an extra _max gauge.
// Metric names are sanitised to the Prometheus charset.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	bw := bufio.NewWriter(w)

	for _, name := range sortedKeys(s.Counters) {
		n := sanitizeMetricName(name)
		fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", n, n, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		n := sanitizeMetricName(name)
		fmt.Fprintf(bw, "# TYPE %s gauge\n%s %s\n", n, n, formatFloat(s.Gauges[name]))
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		n := sanitizeMetricName(name)
		fmt.Fprintf(bw, "# TYPE %s summary\n", n)
		fmt.Fprintf(bw, "%s{quantile=\"0.5\"} %s\n", n, formatFloat(h.P50))
		fmt.Fprintf(bw, "%s{quantile=\"0.9\"} %s\n", n, formatFloat(h.P90))
		fmt.Fprintf(bw, "%s{quantile=\"0.99\"} %s\n", n, formatFloat(h.P99))
		fmt.Fprintf(bw, "%s_sum %s\n", n, formatFloat(h.Sum))
		fmt.Fprintf(bw, "%s_count %d\n", n, h.Count)
		fmt.Fprintf(bw, "# TYPE %s_max gauge\n%s_max %s\n", n, n, formatFloat(h.Max))
	}
	return bw.Flush()
}

// WriteJSON writes an indented JSON snapshot of every metric.
// encoding/json sorts map keys, so the output is deterministic for a
// fixed registry state.
func (r *Registry) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// formatFloat renders a float the way Prometheus clients do: shortest
// round-trip representation.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// sanitizeMetricName maps a registry name onto the Prometheus metric
// name charset [a-zA-Z_:][a-zA-Z0-9_:]*.
func sanitizeMetricName(name string) string {
	if name == "" {
		return "_"
	}
	ok := true
	for i := 0; i < len(name); i++ {
		if !validMetricByte(name[i], i == 0) {
			ok = false
			break
		}
	}
	if ok {
		return name
	}
	out := make([]byte, len(name))
	for i := 0; i < len(name); i++ {
		if validMetricByte(name[i], i == 0) {
			out[i] = name[i]
		} else {
			out[i] = '_'
		}
	}
	return string(out)
}

func validMetricByte(b byte, first bool) bool {
	switch {
	case b >= 'a' && b <= 'z', b >= 'A' && b <= 'Z', b == '_', b == ':':
		return true
	case b >= '0' && b <= '9':
		return !first
	default:
		return false
	}
}
