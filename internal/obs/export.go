package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus writes every metric in the Prometheus text exposition
// format (version 0.0.4), deterministically ordered by name. Counters
// and gauges map directly; histograms are written as summaries
// (quantile series plus _sum and _count) with an extra _max gauge.
// Metric names are sanitised to the Prometheus charset. A registry name
// of the shape `base{labels}` (e.g. the checker's
// check_violations_total{stage="clean",rule="finite"}) is exported as a
// labelled series: the base name is sanitised, the label text is kept
// verbatim, and the TYPE header is emitted once per base name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	bw := bufio.NewWriter(w)

	lastType := ""
	for _, name := range sortedKeys(s.Counters) {
		base, labels := splitLabels(name)
		n := sanitizeMetricName(base)
		if n != lastType {
			fmt.Fprintf(bw, "# TYPE %s counter\n", n)
			lastType = n
		}
		fmt.Fprintf(bw, "%s%s %d\n", n, labels, s.Counters[name])
	}
	lastType = ""
	for _, name := range sortedKeys(s.Gauges) {
		base, labels := splitLabels(name)
		n := sanitizeMetricName(base)
		if n != lastType {
			fmt.Fprintf(bw, "# TYPE %s gauge\n", n)
			lastType = n
		}
		fmt.Fprintf(bw, "%s%s %s\n", n, labels, formatFloat(s.Gauges[name]))
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		n := sanitizeMetricName(name)
		fmt.Fprintf(bw, "# TYPE %s summary\n", n)
		fmt.Fprintf(bw, "%s{quantile=\"0.5\"} %s\n", n, formatFloat(h.P50))
		fmt.Fprintf(bw, "%s{quantile=\"0.9\"} %s\n", n, formatFloat(h.P90))
		fmt.Fprintf(bw, "%s{quantile=\"0.99\"} %s\n", n, formatFloat(h.P99))
		fmt.Fprintf(bw, "%s_sum %s\n", n, formatFloat(h.Sum))
		fmt.Fprintf(bw, "%s_count %d\n", n, h.Count)
		fmt.Fprintf(bw, "# TYPE %s_max gauge\n%s_max %s\n", n, n, formatFloat(h.Max))
	}
	return bw.Flush()
}

// WriteJSON writes an indented JSON snapshot of every metric.
// encoding/json sorts map keys, so the output is deterministic for a
// fixed registry state.
func (r *Registry) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// formatFloat renders a float the way Prometheus clients do: shortest
// round-trip representation.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// splitLabels splits a registry name of the shape `base{labels}` into
// its base name and the braced label block (returned verbatim,
// including braces). Names without a well-formed trailing label block
// are returned whole with empty labels.
func splitLabels(name string) (base, labels string) {
	if !strings.HasSuffix(name, "}") {
		return name, ""
	}
	i := strings.IndexByte(name, '{')
	if i <= 0 {
		return name, ""
	}
	return name[:i], name[i:]
}

// sanitizeMetricName maps a registry name onto the Prometheus metric
// name charset [a-zA-Z_:][a-zA-Z0-9_:]*.
func sanitizeMetricName(name string) string {
	if name == "" {
		return "_"
	}
	ok := true
	for i := 0; i < len(name); i++ {
		if !validMetricByte(name[i], i == 0) {
			ok = false
			break
		}
	}
	if ok {
		return name
	}
	out := make([]byte, len(name))
	for i := 0; i < len(name); i++ {
		if validMetricByte(name[i], i == 0) {
			out[i] = name[i]
		} else {
			out[i] = '_'
		}
	}
	return string(out)
}

func validMetricByte(b byte, first bool) bool {
	switch {
	case b >= 'a' && b <= 'z', b >= 'A' && b <= 'Z', b == '_', b == ':':
		return true
	case b >= '0' && b <= '9':
		return !first
	default:
		return false
	}
}
