package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is a deterministic monotone clock for tracer tests: every
// reading advances time by step.
type fakeClock struct {
	mu   sync.Mutex
	t    time.Time
	step time.Duration
}

func newFakeClock(step time.Duration) *fakeClock {
	return &fakeClock{t: time.Date(2012, 10, 1, 8, 0, 0, 0, time.UTC), step: step}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(c.step)
	return c.t
}

func TestTracerNilIsNoOp(t *testing.T) {
	var tr *Tracer
	if tr.Sampled(1) {
		t.Fatal("nil tracer must sample nothing")
	}
	sp := tr.StartSpan("car", 1)
	if sp.Active() {
		t.Fatal("nil tracer span must be inactive")
	}
	child := sp.Child("clean")
	child.End(TAttr("k", "v"))
	sp.End()
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Records() != nil {
		t.Fatal("nil tracer must retain nothing")
	}
	if err := tr.WriteNDJSON(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestTracerSpanTree(t *testing.T) {
	tr := NewTracer(TracerConfig{Capacity: 64, Now: newFakeClock(time.Millisecond).Now})
	root := tr.StartSpan("car", 7)
	if !root.Active() {
		t.Fatal("span should be active")
	}
	clean := root.Child("clean")
	clean.End(TAttr("dropped", "3"))
	segment := root.Child("segment")
	inner := segment.Child("interp")
	inner.End()
	segment.End()
	root.End(TAttr("attempt", "1"))

	recs := tr.Records()
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4", len(recs))
	}
	byName := map[string]*SpanRecord{}
	for _, r := range recs {
		byName[r.Name] = r
		if r.Car != 7 {
			t.Fatalf("span %s car = %d, want 7", r.Name, r.Car)
		}
		if r.DurNs <= 0 {
			t.Fatalf("span %s has non-positive duration %d", r.Name, r.DurNs)
		}
	}
	if byName["clean"].Parent != byName["car"].ID ||
		byName["segment"].Parent != byName["car"].ID {
		t.Fatal("stage spans must parent to the car span")
	}
	if byName["interp"].Parent != byName["segment"].ID {
		t.Fatal("nested span must parent to its stage")
	}
	if byName["car"].Parent != 0 {
		t.Fatal("root span must have no parent")
	}
	if got := byName["clean"].Attrs; len(got) != 1 || got[0] != TAttr("dropped", "3") {
		t.Fatalf("clean attrs = %+v", got)
	}
}

// TestTracerConcurrentCars drives many goroutines (one per car) through
// span trees at once; run under -race this is the lock-freedom check,
// and afterwards every recorded span tree must still be internally
// consistent (each child's parent id belongs to the same car).
func TestTracerConcurrentCars(t *testing.T) {
	tr := NewTracer(TracerConfig{Capacity: 1 << 12})
	const cars = 32
	const spansPerCar = 8
	var wg sync.WaitGroup
	for car := 1; car <= cars; car++ {
		wg.Add(1)
		go func(car int) {
			defer wg.Done()
			root := tr.StartSpan("car", car)
			for i := 0; i < spansPerCar; i++ {
				sp := root.Child("stage")
				sp.Child("inner").End()
				sp.End()
			}
			root.End()
		}(car)
	}
	wg.Wait()

	recs := tr.Records()
	if want := cars * (2*spansPerCar + 1); len(recs) != want {
		t.Fatalf("got %d records, want %d", len(recs), want)
	}
	byID := map[uint64]*SpanRecord{}
	for _, r := range recs {
		if byID[r.ID] != nil {
			t.Fatalf("duplicate span id %d", r.ID)
		}
		byID[r.ID] = r
	}
	for _, r := range recs {
		if r.Parent == 0 {
			continue
		}
		p := byID[r.Parent]
		if p == nil {
			t.Fatalf("span %d has unknown parent %d", r.ID, r.Parent)
		}
		if p.Car != r.Car {
			t.Fatalf("span %d (car %d) parents across cars to %d (car %d)",
				r.ID, r.Car, p.ID, p.Car)
		}
	}
}

func TestTracerSamplingDeterministic(t *testing.T) {
	a := NewTracer(TracerConfig{SampleFraction: 0.25, Seed: 42})
	b := NewTracer(TracerConfig{SampleFraction: 0.25, Seed: 42})
	c := NewTracer(TracerConfig{SampleFraction: 0.25, Seed: 43})

	sampled, diverged := 0, false
	for car := 0; car < 4096; car++ {
		if a.Sampled(car) != b.Sampled(car) {
			t.Fatalf("same seed diverges at car %d", car)
		}
		if a.Sampled(car) {
			sampled++
		}
		if a.Sampled(car) != c.Sampled(car) {
			diverged = true
		}
	}
	// 25% of 4096 with a uniform hash: allow generous slack.
	if sampled < 4096/8 || sampled > 4096/2 {
		t.Fatalf("sampled %d of 4096 at fraction 0.25", sampled)
	}
	if !diverged {
		t.Fatal("different seeds selected identical car subsets")
	}
	// Unsampled cars produce inactive spans that record nothing.
	for car := 0; car < 64; car++ {
		if !a.Sampled(car) {
			if sp := a.StartSpan("car", car); sp.Active() {
				t.Fatalf("unsampled car %d got an active span", car)
			}
			break
		}
	}
}

func TestTracerRingOverflow(t *testing.T) {
	tr := NewTracer(TracerConfig{Capacity: 8})
	for i := 0; i < 20; i++ {
		tr.StartSpan("s", 1).End()
	}
	if tr.Len() != 8 {
		t.Fatalf("Len = %d, want 8 (ring capacity)", tr.Len())
	}
	if tr.Dropped() != 12 {
		t.Fatalf("Dropped = %d, want 12", tr.Dropped())
	}
	// The retained spans are the newest 8 (ids 13..20).
	for _, r := range tr.Records() {
		if r.ID <= 12 {
			t.Fatalf("overwritten span %d still retained", r.ID)
		}
	}
}

// TestTraceEventGolden pins the Chrome trace_event exporter output
// byte-for-byte. Regenerate with:
//
//	go test ./internal/obs -run TraceEventGolden -update
func TestTraceEventGolden(t *testing.T) {
	tr := NewTracer(TracerConfig{Capacity: 64, Now: newFakeClock(time.Millisecond).Now})
	for _, car := range []int{3, 11} {
		root := tr.StartSpan("car", car)
		clean := root.Child("clean")
		clean.End(TAttr("dropped", "2"), TAttr("reason", "spike"))
		seg := root.Child("segment")
		seg.End()
		root.End(TAttr("attempt", "1"))
	}

	var buf bytes.Buffer
	if err := tr.WriteTraceEvent(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace_event.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("trace_event output diverges from golden:\n--- got ---\n%s\n--- want ---\n%s",
			buf.Bytes(), want)
	}

	// The export must be valid trace-viewer JSON: an object with a
	// traceEvents array whose entries carry ph/ts/pid/tid.
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) == 0 {
		t.Fatal("no traceEvents in export")
	}
	for _, ev := range parsed.TraceEvents {
		if ev["ph"] == nil || ev["pid"] == nil {
			t.Fatalf("malformed event %v", ev)
		}
	}
}

func TestWriteNDJSON(t *testing.T) {
	tr := NewTracer(TracerConfig{Capacity: 16, Now: newFakeClock(time.Millisecond).Now})
	root := tr.StartSpan("car", 5)
	root.Child("clean").End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d NDJSON lines, want 2", len(lines))
	}
	for _, ln := range lines {
		var rec SpanRecord
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("line %q: %v", ln, err)
		}
		if rec.Car != 5 {
			t.Fatalf("line %q: car = %d", ln, rec.Car)
		}
	}
}

func TestContextSpanPropagation(t *testing.T) {
	tr := NewTracer(TracerConfig{Capacity: 16})
	sp := tr.StartSpan("car", 1)
	ctx := ContextWithSpan(t.Context(), sp)
	got := SpanFromContext(ctx)
	if !got.Active() || got.id != sp.id {
		t.Fatal("span did not round-trip through context")
	}
	if SpanFromContext(t.Context()).Active() {
		t.Fatal("empty context must yield the no-op span")
	}
}

func BenchmarkTracerSpanDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.StartSpan("car", i)
		sp.Child("clean").End()
		sp.End()
	}
}

func BenchmarkTracerSpanEnabled(b *testing.B) {
	tr := NewTracer(TracerConfig{Capacity: 1 << 16})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.StartSpan("car", i)
		sp.Child("clean").End()
		sp.End()
	}
}

func BenchmarkTracerSpanUnsampled(b *testing.B) {
	// Fraction chosen so car 1 is unsampled for seed 0 (checked below).
	tr := NewTracer(TracerConfig{Capacity: 1 << 10, SampleFraction: 1e-9})
	car := 0
	for tr.Sampled(car) {
		car++
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.StartSpan("car", car)
		sp.Child("clean").End()
		sp.End()
	}
}
