package obs

import (
	"errors"
	"io"
	"math"
	"math/rand"
	"net/http"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistogramQuantileAccuracy checks the streaming estimate against a
// sorted reference over several distributions. The bucket layout's
// worst-case relative error is 2^(1/32)-1 ≈ 2.2 %; allow 5 % for rank
// interpolation differences at distribution edges.
func TestHistogramQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	distributions := map[string]func() float64{
		"uniform":     func() float64 { return rng.Float64() },
		"exponential": func() float64 { return rng.ExpFloat64() * 0.01 },
		"lognormal":   func() float64 { return math.Exp(rng.NormFloat64()*2 - 5) },
	}
	for name, draw := range distributions {
		h := &Histogram{}
		vals := make([]float64, 20000)
		for i := range vals {
			vals[i] = draw()
			h.Observe(vals[i])
		}
		sort.Float64s(vals)
		for _, q := range []float64{0.5, 0.9, 0.99} {
			rank := int(math.Ceil(q*float64(len(vals)))) - 1
			want := vals[rank]
			got := h.Quantile(q)
			if relErr := math.Abs(got-want) / want; relErr > 0.05 {
				t.Errorf("%s p%.0f: got %g, reference %g (rel err %.1f%%)",
					name, q*100, got, want, 100*relErr)
			}
		}
		if h.Count() != uint64(len(vals)) {
			t.Errorf("%s: count = %d, want %d", name, h.Count(), len(vals))
		}
		var sum float64
		for _, v := range vals {
			sum += v
		}
		if math.Abs(h.Sum()-sum)/sum > 1e-9 {
			t.Errorf("%s: sum = %g, want %g", name, h.Sum(), sum)
		}
		if got, want := h.Max(), vals[len(vals)-1]; got != want {
			t.Errorf("%s: max = %g, want %g", name, got, want)
		}
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	h := &Histogram{}
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty histogram quantile must be the NaN sentinel")
	}
	if h.Max() != 0 || h.Sum() != 0 {
		t.Fatal("empty histogram must report zero max/sum")
	}
	h.Observe(0)
	h.Observe(-5)          // clamps to 0
	h.Observe(math.NaN())  // clamps to 0
	h.Observe(math.Inf(1)) // clamps to last bucket
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if q := h.Quantile(0.5); q > 1e-8 {
		t.Fatalf("median of zero-dominated histogram = %g", q)
	}
}

// TestHistogramMergeFreeze: merging shard histograms must produce
// exactly the histogram a single accumulator sees (bucket counts are
// integers), and a frozen copy must answer the same quantiles while
// remaining immutable as the source moves on.
func TestHistogramMergeFreeze(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	whole := &Histogram{}
	shards := []*Histogram{{}, {}, {}}
	for i := 0; i < 5000; i++ {
		v := rng.ExpFloat64() * 120
		whole.Observe(v)
		shards[i%len(shards)].Observe(v)
	}
	merged := &Histogram{}
	for _, s := range shards {
		merged.Merge(s)
	}
	if merged.Count() != whole.Count() || merged.Max() != whole.Max() {
		t.Fatalf("merged count/max = %d/%g, want %d/%g",
			merged.Count(), merged.Max(), whole.Count(), whole.Max())
	}
	if math.Abs(merged.Sum()-whole.Sum()) > 1e-9*whole.Sum() {
		t.Fatalf("merged sum = %g, want %g", merged.Sum(), whole.Sum())
	}
	if !merged.Freeze().Equal(whole.Freeze()) {
		t.Fatal("merged shard histograms differ from the sequential histogram")
	}

	f := merged.Freeze()
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		if f.Quantile(q) != merged.Quantile(q) {
			t.Fatalf("frozen p%g = %g, live %g", q*100, f.Quantile(q), merged.Quantile(q))
		}
	}
	if f.Mean() != merged.Sum()/float64(merged.Count()) {
		t.Fatalf("frozen mean = %g", f.Mean())
	}
	// Immutability: the frozen copy must not see later observations.
	before := f.Count()
	merged.Observe(1e6)
	if f.Count() != before || f.Max() == 1e6 {
		t.Fatal("frozen histogram observed a post-freeze value")
	}
	if f.Equal(merged.Freeze()) {
		t.Fatal("Equal must detect the extra observation")
	}

	// Nil safety.
	var nilH *Histogram
	nilH.Merge(whole)
	merged.Merge(nil)
	nf := nilH.Freeze()
	if nf.Count() != 0 || !math.IsNaN(nf.Quantile(0.5)) || nf.Mean() != 0 {
		t.Fatal("nil-histogram freeze must be empty")
	}
	if !nf.Equal((&Histogram{}).Freeze()) {
		t.Fatal("empty frozen histograms must be equal")
	}
}

// TestRegistryRaces hammers every metric kind from many goroutines;
// run under -race this is the registry's concurrency gate. Totals must
// still reconcile exactly (counters, histogram count/sum) afterwards.
func TestRegistryRaces(t *testing.T) {
	reg := NewRegistry()
	const goroutines = 8
	const perG = 2000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := reg.Counter("c")
			g := reg.Gauge("g")
			h := reg.Histogram("h")
			timer := reg.SpanTimer("stage")
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(0.001)
				sp := timer.Start()
				sp.End()
				if j%100 == 0 {
					_ = reg.Snapshot() // concurrent reads
				}
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("c").Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := reg.Gauge("g").Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
	if got := reg.Histogram("h").Count(); got != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*perG)
	}
	if got := math.Abs(reg.Histogram("h").Sum() - goroutines*perG*0.001); got > 1e-6 {
		t.Fatalf("histogram sum off by %g", got)
	}
	if got := reg.Gauge("stage_active").Value(); got != 0 {
		t.Fatalf("span active gauge = %d, want 0", got)
	}
	if got := reg.Histogram("stage_duration_seconds").Count(); got != goroutines*perG {
		t.Fatalf("span histogram count = %d, want %d", got, goroutines*perG)
	}
}

// TestNestedSpans opens an outer span around two sequential inner
// spans and checks the recorded timings nest: outer duration >= sum of
// inner durations, and all active gauges return to zero.
func TestNestedSpans(t *testing.T) {
	reg := NewRegistry()
	outer := reg.SpanTimer("outer")
	inner := reg.SpanTimer("inner")

	so := outer.Start()
	if got := reg.Gauge("outer_active").Value(); got != 1 {
		t.Fatalf("outer_active = %d during span, want 1", got)
	}
	var innerTotal time.Duration
	for i := 0; i < 2; i++ {
		si := inner.Start()
		time.Sleep(2 * time.Millisecond)
		innerTotal += si.End()
	}
	outerDur := so.End()

	if outerDur < innerTotal {
		t.Fatalf("outer span (%s) shorter than nested inner spans (%s)", outerDur, innerTotal)
	}
	oh := reg.Histogram("outer_duration_seconds")
	ih := reg.Histogram("inner_duration_seconds")
	if oh.Count() != 1 || ih.Count() != 2 {
		t.Fatalf("span counts: outer %d (want 1), inner %d (want 2)", oh.Count(), ih.Count())
	}
	// The histogram estimate is within ~2.2 % of the true sum.
	if oh.Sum() < ih.Sum()*0.9 {
		t.Fatalf("outer recorded %gs, inner total %gs", oh.Sum(), ih.Sum())
	}
	if reg.Gauge("outer_active").Value() != 0 || reg.Gauge("inner_active").Value() != 0 {
		t.Fatal("active gauges did not return to zero")
	}
}

// TestNilRegistryNoops checks that every operation on a nil registry,
// and on the handles it returns, is a safe no-op.
func TestNilRegistryNoops(t *testing.T) {
	var reg *Registry
	reg.Counter("c").Inc()
	reg.Counter("c").Add(5)
	reg.Gauge("g").Set(3)
	reg.Gauge("g").Add(-1)
	reg.Histogram("h").Observe(1)
	reg.GaugeFunc("f", func() float64 { return 1 })
	sp := reg.StartSpan("s")
	if d := sp.End(); d != 0 {
		t.Fatalf("no-op span returned duration %s", d)
	}
	if reg.Counter("c").Value() != 0 || reg.Gauge("g").Value() != 0 || reg.Histogram("h").Count() != 0 {
		t.Fatal("nil registry accumulated state")
	}
	s := reg.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Fatalf("nil registry exported %q", sb.String())
	}
}

// promLine validates one line of Prometheus text exposition format.
var promLine = regexp.MustCompile(`^(# (TYPE|HELP) [a-zA-Z_:][a-zA-Z0-9_:]* ?.*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+( [0-9]+)?)$`)

// TestDebugServer boots the debug server on an ephemeral port and
// checks /metrics serves valid Prometheus text format, /debug/vars
// serves JSON, and /debug/pprof/ answers.
func TestDebugServer(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("pipeline_clean_trips").Add(7)
	reg.Gauge("pipeline_car_active").Set(2)
	reg.GaugeFunc("router_cache_hit_rate", func() float64 { return 0.5 })
	reg.Histogram("pipeline_mapmatch_duration_seconds").Observe(0.004)

	srv, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/metrics")
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("/metrics content-type = %q", ctype)
	}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if !promLine.MatchString(line) {
			t.Errorf("invalid Prometheus line: %q", line)
		}
	}
	for _, want := range []string{
		"pipeline_clean_trips 7",
		"router_cache_hit_rate 0.5",
		`pipeline_mapmatch_duration_seconds{quantile="0.5"}`,
		"pipeline_mapmatch_duration_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics misses %q", want)
		}
	}

	body, ctype = get("/debug/vars")
	if !strings.HasPrefix(ctype, "application/json") {
		t.Errorf("/debug/vars content-type = %q", ctype)
	}
	if !strings.Contains(body, `"pipeline_clean_trips": 7`) {
		t.Errorf("/debug/vars misses counter: %s", body)
	}

	if body, _ = get("/debug/pprof/"); !strings.Contains(body, "profile") {
		t.Error("/debug/pprof/ index looks wrong")
	}
}

// TestFrozenMergeExact: FrozenHistogram.Merge over a partition of one
// observation stream must reproduce the unpartitioned freeze exactly,
// commute, treat nil as the identity, and preserve quantiles.
func TestFrozenMergeExact(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	whole, a, b := &Histogram{}, &Histogram{}, &Histogram{}
	for i := 0; i < 4000; i++ {
		v := rng.ExpFloat64() * 40
		whole.Observe(v)
		if i%3 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
	}
	fa, fb, fw := a.Freeze(), b.Freeze(), whole.Freeze()

	m, err := fa.Merge(fb)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(fw) {
		t.Fatal("merge of a partition differs from the whole")
	}
	rm, err := fb.Merge(fa)
	if err != nil {
		t.Fatal(err)
	}
	if !rm.Equal(m) {
		t.Fatal("frozen merge does not commute")
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if m.Quantile(q) != fw.Quantile(q) {
			t.Fatalf("merged p%g = %g, whole %g", q*100, m.Quantile(q), fw.Quantile(q))
		}
	}

	// Nil and empty are identities.
	if id, err := fa.Merge(nil); err != nil || !id.Equal(fa) {
		t.Fatalf("merge with nil: %v", err)
	}
	var nilF *FrozenHistogram
	if id, err := nilF.Merge(fa); err != nil || !id.Equal(fa) {
		t.Fatalf("nil.Merge: %v", err)
	}
}

// TestFrozenMergeLayoutMismatch: counts frozen under a different bucket
// scheme must never be added index-by-index — Merge has to refuse with
// ErrLayoutMismatch in both directions.
func TestFrozenMergeLayoutMismatch(t *testing.T) {
	h := &Histogram{}
	h.Observe(1)
	cur := h.Freeze()
	foreign := &FrozenHistogram{
		count: 1, sum: 1, max: 1,
		idx: []int32{3}, bucketN: []uint64{1},
		layout: histLayout{SubBits: 2, MinExp: -10, MaxExp: 10},
	}
	if _, err := cur.Merge(foreign); !errors.Is(err, ErrLayoutMismatch) {
		t.Fatalf("cur.Merge(foreign) = %v, want ErrLayoutMismatch", err)
	}
	if _, err := foreign.Merge(cur); !errors.Is(err, ErrLayoutMismatch) {
		t.Fatalf("foreign.Merge(cur) = %v, want ErrLayoutMismatch", err)
	}
	// Same foreign layout on both sides is fine: layouts agree.
	other := &FrozenHistogram{
		count: 2, sum: 4, max: 3,
		idx: []int32{3, 5}, bucketN: []uint64{1, 1},
		layout: histLayout{SubBits: 2, MinExp: -10, MaxExp: 10},
	}
	m, err := foreign.Merge(other)
	if err != nil {
		t.Fatal(err)
	}
	if m.Count() != 3 || len(m.idx) != 2 || m.bucketN[0] != 2 {
		t.Fatalf("foreign-layout merge wrong: %+v", m)
	}
}
