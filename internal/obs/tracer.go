package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Tracer records per-car span trees — which stages ran, nested under
// which parent, for how long, with what attributes — into a fixed-size
// lock-free ring buffer. It is the causal counterpart of the SpanTimer
// metrics: where a SpanTimer aggregates durations into a histogram, a
// TraceSpan remembers *this* car's clean stage, under *this* attempt,
// with its drop counts attached as attributes.
//
// Design constraints, in order:
//
//   - a nil *Tracer (tracing disabled) must cost nothing on the hot
//     path: StartSpan returns the zero TraceSpan and every method on it
//     is a predictable no-op branch;
//   - recording must be safe from all fleet workers concurrently with
//     no locks: each finished span claims a ring slot with one atomic
//     increment and publishes its record with one atomic store. When
//     the ring wraps, the oldest spans are overwritten (Dropped counts
//     them) — tracing favours recent history over completeness;
//   - per-car sampling must be deterministic: whether car N is sampled
//     is a pure function of (Seed, SampleFraction, N), so two runs of
//     the same fleet trace the same cars and a re-run reproduces a
//     trace exactly.
//
// Exporters render the recorded spans as Chrome trace_event JSON
// (openable in chrome://tracing and Perfetto; one timeline row per
// car) or as NDJSON (one span record per line, for ad-hoc tooling).
type Tracer struct {
	now  func() time.Time
	base time.Time
	seed int64
	// sampleAll short-circuits the per-car hash when the fraction is 1.
	sampleAll bool
	threshold uint64 // car sampled iff splitmix64(seed,car) < threshold

	slots []atomic.Pointer[SpanRecord]
	mask  uint64
	next  atomic.Uint64 // next ring sequence number (total spans recorded)
	ids   atomic.Uint64 // span id allocator; 0 is "no parent"
}

// TracerConfig tunes a Tracer. The zero value samples every car into a
// 65536-span ring with the wall clock.
type TracerConfig struct {
	// Capacity is the number of spans retained (rounded up to a power
	// of two, default 65536). Older spans are overwritten when the
	// fleet produces more.
	Capacity int
	// SampleFraction is the deterministic share of cars traced, in
	// (0, 1]. Values <= 0 or >= 1 trace every car.
	SampleFraction float64
	// Seed keys the per-car sampling hash, so different seeds select
	// different (but individually stable) car subsets.
	Seed int64
	// Now is the clock (test hook); nil selects time.Now.
	Now func() time.Time
}

// NewTracer builds a tracer. The returned tracer is ready for
// concurrent use by any number of goroutines.
func NewTracer(cfg TracerConfig) *Tracer {
	capacity := cfg.Capacity
	if capacity <= 0 {
		capacity = 1 << 16
	}
	// Round up to a power of two so slot claiming is a mask, not a mod.
	n := 1
	for n < capacity {
		n <<= 1
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	t := &Tracer{
		now:   now,
		seed:  cfg.Seed,
		slots: make([]atomic.Pointer[SpanRecord], n),
		mask:  uint64(n - 1),
	}
	t.base = now()
	if cfg.SampleFraction <= 0 || cfg.SampleFraction >= 1 {
		t.sampleAll = true
	} else {
		t.threshold = uint64(cfg.SampleFraction * float64(math.MaxUint64))
	}
	return t
}

// splitmix64 is the standard 64-bit finalising mix; it turns the
// (seed, car) pair into a uniform hash for sampling decisions.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Sampled reports whether spans for car are recorded — a deterministic
// function of the tracer's seed and sample fraction. A nil tracer
// samples nothing.
func (t *Tracer) Sampled(car int) bool {
	if t == nil {
		return false
	}
	if t.sampleAll {
		return true
	}
	return splitmix64(uint64(t.seed)^uint64(car)*0x9e3779b97f4a7c15) < t.threshold
}

// TraceAttr is one key/value annotation attached to a span at End.
type TraceAttr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// TAttr builds a TraceAttr.
func TAttr(key, value string) TraceAttr { return TraceAttr{Key: key, Value: value} }

// SpanRecord is one finished span as stored in the ring.
type SpanRecord struct {
	ID      uint64      `json:"id"`
	Parent  uint64      `json:"parent,omitempty"` // 0 = root
	Name    string      `json:"name"`
	Car     int         `json:"car"`
	StartNs int64       `json:"start_ns"` // relative to the tracer's base time
	DurNs   int64       `json:"dur_ns"`
	Attrs   []TraceAttr `json:"attrs,omitempty"`
}

// TraceSpan is one in-flight span. The zero TraceSpan (from a nil or
// non-sampling tracer) is a valid no-op: Child returns another no-op
// and End does nothing.
type TraceSpan struct {
	t      *Tracer
	id     uint64
	parent uint64
	car    int
	name   string
	start  time.Time
}

// StartSpan opens a root span for car, subject to sampling. The caller
// must End it (children may End after their parent; the tree is
// reassembled from ids at export time).
func (t *Tracer) StartSpan(name string, car int) TraceSpan {
	if t == nil || !t.Sampled(car) {
		return TraceSpan{}
	}
	return TraceSpan{t: t, id: t.ids.Add(1), car: car, name: name, start: t.now()}
}

// Active reports whether the span records anything (false for the
// zero/no-op span).
func (s TraceSpan) Active() bool { return s.t != nil }

// Child opens a sub-span under s for the same car.
func (s TraceSpan) Child(name string) TraceSpan {
	if s.t == nil {
		return TraceSpan{}
	}
	return TraceSpan{t: s.t, id: s.t.ids.Add(1), parent: s.id, car: s.car, name: name, start: s.t.now()}
}

// End finishes the span, attaching attrs, and publishes its record to
// the ring. End must be called at most once per span.
func (s TraceSpan) End(attrs ...TraceAttr) {
	if s.t == nil {
		return
	}
	rec := &SpanRecord{
		ID:      s.id,
		Parent:  s.parent,
		Name:    s.name,
		Car:     s.car,
		StartNs: s.start.Sub(s.t.base).Nanoseconds(),
		DurNs:   s.t.now().Sub(s.start).Nanoseconds(),
	}
	if len(attrs) > 0 {
		rec.Attrs = append([]TraceAttr(nil), attrs...)
	}
	slot := s.t.next.Add(1) - 1
	s.t.slots[slot&s.t.mask].Store(rec)
}

// Len returns the number of span records currently retained.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	n := t.next.Load()
	if n > uint64(len(t.slots)) {
		return len(t.slots)
	}
	return int(n)
}

// Dropped returns how many spans have been overwritten by ring wraps.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	n := t.next.Load()
	if n <= uint64(len(t.slots)) {
		return 0
	}
	return n - uint64(len(t.slots))
}

// Records snapshots the retained spans, sorted by (start, id) so
// concurrent recording orders deterministically for a deterministic
// clock. Spans still in flight (started, not ended) are absent.
func (t *Tracer) Records() []*SpanRecord {
	if t == nil {
		return nil
	}
	out := make([]*SpanRecord, 0, t.Len())
	for i := range t.slots {
		if rec := t.slots[i].Load(); rec != nil {
			out = append(out, rec)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].StartNs != out[j].StartNs {
			return out[i].StartNs < out[j].StartNs
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// --- Exporters --------------------------------------------------------------

// traceEvent is one Chrome trace_event entry. Complete spans use
// ph "X" with microsecond ts/dur; metadata events (ph "M") name the
// process and per-car threads so Perfetto renders one labelled row per
// car.
type traceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteTraceEvent exports the retained spans in the Chrome trace_event
// JSON format, loadable in chrome://tracing and Perfetto: pid 1 is the
// pipeline, each car is a thread, and nesting follows time containment
// within a car's row. Span ids and parents ride along in args.
func (t *Tracer) WriteTraceEvent(w io.Writer) error {
	recs := t.Records()
	f := traceFile{TraceEvents: make([]traceEvent, 0, len(recs)+8), DisplayTimeUnit: "ms"}
	f.TraceEvents = append(f.TraceEvents, traceEvent{
		Name: "process_name", Ph: "M", Pid: 1,
		Args: map[string]string{"name": "taxitrace pipeline"},
	})
	seenCar := map[int]bool{}
	for _, rec := range recs {
		if !seenCar[rec.Car] {
			seenCar[rec.Car] = true
			f.TraceEvents = append(f.TraceEvents, traceEvent{
				Name: "thread_name", Ph: "M", Pid: 1, Tid: rec.Car,
				Args: map[string]string{"name": "car " + itoa(rec.Car)},
			})
		}
		args := map[string]string{
			"span_id": utoa(rec.ID),
			"car":     itoa(rec.Car),
		}
		if rec.Parent != 0 {
			args["parent_id"] = utoa(rec.Parent)
		}
		for _, a := range rec.Attrs {
			args[a.Key] = a.Value
		}
		f.TraceEvents = append(f.TraceEvents, traceEvent{
			Name: rec.Name,
			Cat:  "pipeline",
			Ph:   "X",
			Ts:   float64(rec.StartNs) / 1e3,
			Dur:  float64(rec.DurNs) / 1e3,
			Pid:  1,
			Tid:  rec.Car,
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(f)
}

// WriteNDJSON exports the retained spans as newline-delimited JSON,
// one SpanRecord per line in (start, id) order.
func (t *Tracer) WriteNDJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, rec := range t.Records() {
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// itoa/utoa avoid pulling strconv formatting into the export loop's
// closure captures; they are trivial wrappers kept for symmetry.
func itoa(v int) string {
	if v < 0 {
		return "-" + utoa(uint64(-v))
	}
	return utoa(uint64(v))
}

func utoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// --- Context propagation ----------------------------------------------------

type spanCtxKey struct{}

// ContextWithSpan returns a context carrying sp, so stage code deeper
// in the call tree can parent its spans correctly without plumbing a
// TraceSpan through every signature.
func ContextWithSpan(ctx context.Context, sp TraceSpan) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, sp)
}

// SpanFromContext returns the span carried by ctx, or the zero (no-op)
// span when there is none.
func SpanFromContext(ctx context.Context) TraceSpan {
	sp, _ := ctx.Value(spanCtxKey{}).(TraceSpan)
	return sp
}
