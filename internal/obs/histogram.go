package obs

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
)

// Histogram layout: log-linear buckets covering 2^histMinExp ..
// 2^histMaxExp with histSub sub-buckets per power of two. With
// histSub = 16 the bucket width is a factor of 2^(1/16) ≈ 1.044, so a
// quantile estimate (the log-space midpoint of its bucket) is within
// ~2.2 % of the true value — far below the run-to-run noise of any
// timing this package records. The span covers sub-nanosecond to
// multi-year durations in seconds, and equally serves unit-less values.
const (
	histSubBits = 4
	histSub     = 1 << histSubBits // sub-buckets per power of two
	histMinExp  = -30              // 2^-30 ≈ 0.93e-9
	histMaxExp  = 30               // 2^30 ≈ 1.07e9
	histBuckets = (histMaxExp - histMinExp) * histSub
)

// Histogram is a fixed-footprint streaming histogram recording
// non-negative float64 observations (typically durations in seconds).
// Observe is lock-free: a handful of atomic operations, no allocation.
// All methods are nil-receiver safe. A Histogram must not be copied.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64 // float64 bits, CAS-accumulated
	max     atomic.Uint64 // float64 bits
	buckets [histBuckets]atomic.Uint64
}

// bucketIndex maps a value to its bucket. Values at or below zero (and
// below the representable minimum) clamp to bucket 0; values beyond the
// maximum clamp to the last bucket.
func bucketIndex(v float64) int {
	if !(v > 0) { // also catches NaN
		return 0
	}
	idx := int((math.Log2(v) - histMinExp) * histSub)
	if idx < 0 {
		return 0
	}
	if idx >= histBuckets {
		return histBuckets - 1
	}
	return idx
}

// bucketValue is the representative (log-space midpoint) value of a
// bucket.
func bucketValue(i int) float64 {
	return math.Pow(2, histMinExp+(float64(i)+0.5)/histSub)
}

// Observe records one value. Negative and NaN values count as zero.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if !(v >= 0) {
		v = 0
	}
	h.count.Add(1)
	addFloat(&h.sum, v)
	maxFloat(&h.max, v)
	h.buckets[bucketIndex(v)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the running total of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Max returns the largest observation seen (0 when empty).
func (h *Histogram) Max() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.max.Load())
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucket
// counts: the representative value of the bucket holding the ceil(q*n)
// ranked observation. Under concurrent writes the estimate remains
// well-defined (each bucket read is atomic) but may mix in observations
// arriving during the scan. An empty (or nil) histogram has no
// quantiles: the result is NaN, a sentinel no bucket midpoint can ever
// produce, so "no data" cannot be mistaken for "the quantile is ~1e-9"
// (bucket 0's midpoint). A NaN q propagates as NaN. JSON-facing
// summaries (Snapshot, the serving layer) map the sentinel back to 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return math.NaN()
	}
	n := h.count.Load()
	if n == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			return bucketValue(i)
		}
	}
	// Writers may have bumped count between our loads; fall back to the
	// highest non-empty bucket.
	for i := histBuckets - 1; i >= 0; i-- {
		if h.buckets[i].Load() > 0 {
			return bucketValue(i)
		}
	}
	return 0
}

// Merge folds every observation of src into h by adding bucket counts
// (and count/sum/max). Because bucket counts are integers, merging
// shard-local histograms yields exactly the histogram a single
// accumulator would have produced over the union of observations —
// the property the serving layer's epoch snapshots rely on.
func (h *Histogram) Merge(src *Histogram) {
	if h == nil || src == nil {
		return
	}
	h.count.Add(src.count.Load())
	addFloat(&h.sum, math.Float64frombits(src.sum.Load()))
	maxFloat(&h.max, math.Float64frombits(src.max.Load()))
	for i := range src.buckets {
		if n := src.buckets[i].Load(); n != 0 {
			h.buckets[i].Add(n)
		}
	}
}

// FrozenHistogram is an immutable point-in-time copy of a histogram:
// sparse bucket counts plus the running count/sum/max. Safe to share
// between any number of readers; arbitrary quantiles stay computable
// after the source histogram has moved on. The frozen copy records the
// bucket layout it was frozen under, so Merge can refuse to combine
// histograms whose bucket indexes mean different values.
type FrozenHistogram struct {
	count   uint64
	sum     float64
	max     float64
	idx     []int32  // non-empty bucket indexes, ascending
	bucketN []uint64 // counts parallel to idx
	// layout identifies the bucket scheme (sub-bucket bits, min/max
	// exponent) the indexes refer to. Zero-valued on hand-constructed
	// or legacy values, which layoutOf treats as the current layout.
	layout histLayout
}

// histLayout identifies one log-linear bucket scheme.
type histLayout struct {
	SubBits, MinExp, MaxExp int8
}

// curLayout is the layout this build's Histogram records under.
var curLayout = histLayout{SubBits: histSubBits, MinExp: histMinExp, MaxExp: histMaxExp}

// layoutOf resolves a frozen histogram's layout, treating the zero
// value (empty or hand-built) as current.
func (f *FrozenHistogram) layoutOf() histLayout {
	if f == nil || f.layout == (histLayout{}) {
		return curLayout
	}
	return f.layout
}

// Freeze copies the histogram's current state. Under concurrent writes
// the copy is a consistent-enough mixture (each bucket read is atomic);
// freeze quiescent histograms when exactness matters.
func (h *Histogram) Freeze() *FrozenHistogram {
	f := &FrozenHistogram{layout: curLayout}
	if h == nil {
		return f
	}
	f.count = h.count.Load()
	f.sum = math.Float64frombits(h.sum.Load())
	f.max = math.Float64frombits(h.max.Load())
	for i := 0; i < histBuckets; i++ {
		if n := h.buckets[i].Load(); n != 0 {
			f.idx = append(f.idx, int32(i))
			f.bucketN = append(f.bucketN, n)
		}
	}
	return f
}

// Count returns the number of observations frozen in.
func (f *FrozenHistogram) Count() uint64 {
	if f == nil {
		return 0
	}
	return f.count
}

// Sum returns the frozen total of all observations.
func (f *FrozenHistogram) Sum() float64 {
	if f == nil {
		return 0
	}
	return f.sum
}

// Max returns the largest frozen observation (0 when empty).
func (f *FrozenHistogram) Max() float64 {
	if f == nil {
		return 0
	}
	return f.max
}

// Mean returns the frozen mean (0 when empty).
func (f *FrozenHistogram) Mean() float64 {
	if f == nil || f.count == 0 {
		return 0
	}
	return f.sum / float64(f.count)
}

// Quantile estimates the q-quantile from the frozen bucket counts, with
// the same bucket-midpoint semantics (and NaN empty/NaN-q sentinel) as
// Histogram.Quantile.
func (f *FrozenHistogram) Quantile(q float64) float64 {
	if f == nil || f.count == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(f.count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, n := range f.bucketN {
		cum += n
		if cum >= rank {
			return bucketValue(int(f.idx[i]))
		}
	}
	if len(f.idx) > 0 {
		return bucketValue(int(f.idx[len(f.idx)-1]))
	}
	return 0
}

// ErrLayoutMismatch marks an attempt to merge frozen histograms whose
// bucket layouts differ: their bucket indexes refer to different value
// ranges, so adding counts index-by-index would silently corrupt the
// distribution.
var ErrLayoutMismatch = errors.New("obs: histogram bucket layouts differ")

// Merge returns a new frozen histogram combining f and o (either may be
// nil = empty). It errors with ErrLayoutMismatch when the two were
// frozen under different bucket layouts — counts are never combined
// across layouts.
func (f *FrozenHistogram) Merge(o *FrozenHistogram) (*FrozenHistogram, error) {
	lf, lo := f.layoutOf(), o.layoutOf()
	if lf != lo {
		return nil, fmt.Errorf("%w: %+v vs %+v", ErrLayoutMismatch, lf, lo)
	}
	out := &FrozenHistogram{
		count:  f.Count() + o.Count(),
		sum:    f.Sum() + o.Sum(),
		max:    math.Max(f.Max(), o.Max()),
		layout: lf,
	}
	var fi, oi int
	fIdx, oIdx := frozenBuckets(f), frozenBuckets(o)
	for fi < len(fIdx) || oi < len(oIdx) {
		switch {
		case oi >= len(oIdx) || (fi < len(fIdx) && fIdx[fi] < oIdx[oi]):
			out.idx = append(out.idx, fIdx[fi])
			out.bucketN = append(out.bucketN, f.bucketN[fi])
			fi++
		case fi >= len(fIdx) || oIdx[oi] < fIdx[fi]:
			out.idx = append(out.idx, oIdx[oi])
			out.bucketN = append(out.bucketN, o.bucketN[oi])
			oi++
		default: // same bucket in both
			out.idx = append(out.idx, fIdx[fi])
			out.bucketN = append(out.bucketN, f.bucketN[fi]+o.bucketN[oi])
			fi++
			oi++
		}
	}
	return out, nil
}

// frozenBuckets returns a frozen histogram's bucket indexes (nil-safe).
func frozenBuckets(f *FrozenHistogram) []int32 {
	if f == nil {
		return nil
	}
	return f.idx
}

// Equal reports whether two frozen histograms carry identical bucket
// counts, observation counts and maxima — the exactness check behind
// the sink's final-snapshot-vs-batch verification. The running sum is
// compared to within float rounding (1e-9 relative), since its value
// depends on accumulation order.
func (f *FrozenHistogram) Equal(o *FrozenHistogram) bool {
	if f.Count() != o.Count() || f.Max() != o.Max() {
		return false
	}
	if d := math.Abs(f.Sum() - o.Sum()); d > 1e-9*math.Max(1, math.Abs(f.Sum())) {
		return false
	}
	if f == nil || o == nil {
		return f.Count() == o.Count()
	}
	if len(f.idx) != len(o.idx) {
		return false
	}
	for i := range f.idx {
		if f.idx[i] != o.idx[i] || f.bucketN[i] != o.bucketN[i] {
			return false
		}
	}
	return true
}

// HistogramSnapshot is a point-in-time summary of one histogram.
type HistogramSnapshot struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Snapshot summarises the histogram. The NaN empty-quantile sentinel is
// mapped back to 0 here: snapshots are JSON-marshalled (JSON has no
// NaN) and an all-zero summary with Count 0 is unambiguous.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	return HistogramSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		Max:   h.Max(),
		P50:   zeroNaN(h.Quantile(0.50)),
		P90:   zeroNaN(h.Quantile(0.90)),
		P99:   zeroNaN(h.Quantile(0.99)),
	}
}

// zeroNaN maps the NaN sentinel to 0 for JSON-facing summaries.
func zeroNaN(v float64) float64 {
	if math.IsNaN(v) {
		return 0
	}
	return v
}

// addFloat atomically adds delta to a float64 stored as uint64 bits.
func addFloat(a *atomic.Uint64, delta float64) {
	for {
		old := a.Load()
		if a.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// maxFloat atomically raises a float64 stored as uint64 bits to v if v
// is larger. Values are non-negative, so the bit patterns order like
// the floats themselves.
func maxFloat(a *atomic.Uint64, v float64) {
	bits := math.Float64bits(v)
	for {
		old := a.Load()
		if bits <= old {
			return
		}
		if a.CompareAndSwap(old, bits) {
			return
		}
	}
}
