package obs

import (
	"reflect"
	"testing"
)

// shardLedger builds a small per-worker ledger with car-attributed
// drops, mimicking one cluster worker's run.
func shardLedger(cars []int, dropPerCar uint64) LineageSnapshot {
	l := NewLineage(nil)
	st := l.Stage("clean", "points")
	for _, car := range cars {
		st.RecordCar(car, 10, 10-dropPerCar)
		st.Reason(DropSpike).Add(dropPerCar)
	}
	l.Stage("segment", "segments").Add(4, 4)
	return l.Snapshot(16)
}

func TestMergeLineageSnapshots(t *testing.T) {
	a := shardLedger([]int{1, 4}, 2)
	b := shardLedger([]int{2}, 3)
	c := shardLedger([]int{3, 6}, 1)

	merged := MergeLineageSnapshots(2, a, b, c)
	if err := merged.Check(); err != nil {
		t.Fatalf("merged table must conserve: %v", err)
	}
	if !merged.Conserved {
		t.Fatal("Conserved flag must survive the merge")
	}
	if len(merged.Stages) != 2 || merged.Stages[0].Stage != "clean" || merged.Stages[1].Stage != "segment" {
		t.Fatalf("stage order/coverage wrong: %+v", merged.Stages)
	}
	clean := merged.Stages[0]
	if clean.In != 50 || clean.Out != 50-2*2-3-2*1 || clean.Dropped != 9 {
		t.Fatalf("clean totals wrong: %+v", clean)
	}
	wantReasons := []ReasonCount{{Reason: string(DropSpike), N: 9}}
	if !reflect.DeepEqual(clean.Reasons, wantReasons) {
		t.Fatalf("reasons wrong: %+v", clean.Reasons)
	}
	// Car 2 dropped 3, cars 1 and 4 dropped 2 each: top-2 is car 2 then
	// car 1 (ties break by car id).
	if len(merged.TopDroppedCars) != 2 ||
		merged.TopDroppedCars[0].Car != 2 || merged.TopDroppedCars[0].Dropped != 3 ||
		merged.TopDroppedCars[1].Car != 1 || merged.TopDroppedCars[1].Dropped != 2 {
		t.Fatalf("top cars wrong: %+v", merged.TopDroppedCars)
	}
}

func TestMergeLineageSnapshotsIdentityAndViolation(t *testing.T) {
	a := shardLedger([]int{1}, 2)
	empty := LineageSnapshot{Conserved: true}

	merged := MergeLineageSnapshots(8, a, empty)
	if !reflect.DeepEqual(merged.Stages, a.Stages) {
		t.Fatalf("empty snapshot must be merge identity: %+v vs %+v", merged.Stages, a.Stages)
	}

	// A shard that lost data without accounting for it must keep the
	// merged table non-conserving.
	bad := LineageSnapshot{Stages: []StageSnapshot{{Stage: "clean", Unit: "points", In: 5, Out: 1, Dropped: 4}}}
	merged = MergeLineageSnapshots(0, a, bad)
	if merged.Conserved || merged.Check() == nil {
		t.Fatal("unaccounted drops must surface after the merge")
	}
}
