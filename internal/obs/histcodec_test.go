package obs

import (
	"errors"
	"testing"
)

func freezeOf(values ...float64) *FrozenHistogram {
	h := &Histogram{}
	for _, v := range values {
		h.Observe(v)
	}
	return h.Freeze()
}

func TestHistogramCodecRoundTrip(t *testing.T) {
	cases := map[string]*FrozenHistogram{
		"empty":  freezeOf(),
		"single": freezeOf(1.5),
		"spread": freezeOf(0.001, 0.25, 1.5, 1.5, 3.75, 1e6, 2e-9),
		"nil":    nil,
	}
	for name, f := range cases {
		t.Run(name, func(t *testing.T) {
			blob := f.AppendBinary(nil)
			var got FrozenHistogram
			if err := got.UnmarshalBinary(blob); err != nil {
				t.Fatalf("decode: %v", err)
			}
			if !got.Equal(f) {
				t.Fatalf("round-trip mismatch: got %+v want %+v", got, f)
			}
			// Decoded histograms must stay mergeable with live ones.
			if _, err := got.Merge(freezeOf(2)); err != nil {
				t.Fatalf("merge after decode: %v", err)
			}
		})
	}
}

func TestHistogramCodecEmbedded(t *testing.T) {
	// Two histograms back to back: DecodeFrozenHistogram must report the
	// byte split exactly.
	a, b := freezeOf(1, 2, 3), freezeOf(4.5)
	blob := b.AppendBinary(a.AppendBinary(nil))
	gotA, n, err := DecodeFrozenHistogram(blob)
	if err != nil {
		t.Fatalf("decode first: %v", err)
	}
	if !gotA.Equal(a) {
		t.Fatalf("first histogram mismatch")
	}
	gotB, m, err := DecodeFrozenHistogram(blob[n:])
	if err != nil {
		t.Fatalf("decode second: %v", err)
	}
	if !gotB.Equal(b) || n+m != len(blob) {
		t.Fatalf("second histogram mismatch (consumed %d+%d of %d)", n, m, len(blob))
	}
}

func TestHistogramCodecRejects(t *testing.T) {
	good := freezeOf(1, 2, 3).AppendBinary(nil)

	t.Run("unknown version", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[0] = 99
		var f FrozenHistogram
		if err := f.UnmarshalBinary(bad); !errors.Is(err, ErrBadHistogramEncoding) {
			t.Fatalf("want ErrBadHistogramEncoding, got %v", err)
		}
	})
	t.Run("truncations", func(t *testing.T) {
		for cut := 0; cut < len(good); cut++ {
			var f FrozenHistogram
			if err := f.UnmarshalBinary(good[:cut]); !errors.Is(err, ErrBadHistogramEncoding) {
				t.Fatalf("cut=%d: want ErrBadHistogramEncoding, got %v", cut, err)
			}
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		var f FrozenHistogram
		if err := f.UnmarshalBinary(append(append([]byte(nil), good...), 0xff)); !errors.Is(err, ErrBadHistogramEncoding) {
			t.Fatalf("want ErrBadHistogramEncoding, got %v", err)
		}
	})
	t.Run("layout mismatch survives the wire", func(t *testing.T) {
		blob := append([]byte(nil), good...)
		blob[1]++ // bump SubBits in the layout stamp
		var foreign FrozenHistogram
		if err := foreign.UnmarshalBinary(blob); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if _, err := foreign.Merge(freezeOf(1)); !errors.Is(err, ErrLayoutMismatch) {
			t.Fatalf("want ErrLayoutMismatch, got %v", err)
		}
	})
}
