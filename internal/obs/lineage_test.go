package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestLineageNilIsNoOp(t *testing.T) {
	var l *Lineage
	st := l.Stage("clean", "points")
	if st != nil {
		t.Fatal("nil lineage must yield nil stages")
	}
	st.Add(10, 5)
	st.RecordCar(1, 10, 5)
	d := st.Reason(DropSpike)
	d.Add(3)
	if d.Value() != 0 {
		t.Fatal("nil drop counter must stay 0")
	}
	snap := l.Snapshot(5)
	if len(snap.Stages) != 0 || !snap.Conserved {
		t.Fatalf("nil lineage snapshot = %+v", snap)
	}
	if err := l.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestLineageConservation(t *testing.T) {
	l := NewLineage(nil)
	st := l.Stage("clean", "points")
	spike := st.Reason(DropSpike)
	area := st.Reason(DropOutOfArea)

	st.RecordCar(1, 100, 90)
	spike.Add(6)
	area.Add(4)
	if err := l.Check(); err != nil {
		t.Fatalf("conserved ledger failed check: %v", err)
	}

	snap := l.Snapshot(10)
	if len(snap.Stages) != 1 {
		t.Fatalf("stages = %d", len(snap.Stages))
	}
	row := snap.Stages[0]
	if row.Stage != "clean" || row.Unit != "points" ||
		row.In != 100 || row.Out != 90 || row.Dropped != 10 || !row.Conserved {
		t.Fatalf("row = %+v", row)
	}
	if len(row.Reasons) != 2 {
		t.Fatalf("reasons = %+v", row.Reasons)
	}
	if !snap.Conserved {
		t.Fatal("snapshot not conserved")
	}

	// Unaccounted drops must fail the check.
	st.Add(10, 5)
	if err := l.Check(); err == nil {
		t.Fatal("unaccounted drops passed conservation check")
	} else if !strings.Contains(err.Error(), "clean") {
		t.Fatalf("error does not name the stage: %v", err)
	}
	if l.Snapshot(0).Conserved {
		t.Fatal("snapshot must flag the violation")
	}
}

func TestLineageTopDroppedCars(t *testing.T) {
	l := NewLineage(nil)
	clean := l.Stage("clean", "points")
	seg := l.Stage("segment", "segments")
	clean.RecordCar(1, 10, 9)  // car 1: 1 dropped
	clean.RecordCar(2, 10, 4)  // car 2: 6 dropped
	seg.RecordCar(2, 5, 3)     // car 2: +2 = 8
	clean.RecordCar(3, 10, 7)  // car 3: 3 dropped
	clean.RecordCar(4, 10, 10) // car 4: clean, absent from the table

	snap := l.Snapshot(2)
	if len(snap.TopDroppedCars) != 2 {
		t.Fatalf("top cars = %+v", snap.TopDroppedCars)
	}
	if snap.TopDroppedCars[0].Car != 2 || snap.TopDroppedCars[0].Dropped != 8 {
		t.Fatalf("top car = %+v", snap.TopDroppedCars[0])
	}
	if snap.TopDroppedCars[1].Car != 3 || snap.TopDroppedCars[1].Dropped != 3 {
		t.Fatalf("second car = %+v", snap.TopDroppedCars[1])
	}
	if by := snap.TopDroppedCars[0].ByStage; by["clean"] != 6 || by["segment"] != 2 {
		t.Fatalf("car 2 by-stage = %+v", by)
	}
	// topCars == 0 omits the car table entirely.
	if cars := l.Snapshot(0).TopDroppedCars; len(cars) != 0 {
		t.Fatalf("topCars=0 returned %+v", cars)
	}
}

func TestLineageRegistryMirrors(t *testing.T) {
	reg := NewRegistry()
	l := NewLineage(reg)
	st := l.Stage("clean", "points")
	st.Reason(DropSpike).Add(7)
	st.RecordCar(3, 50, 43)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`lineage_in_total{stage="clean"} 50`,
		`lineage_out_total{stage="clean"} 43`,
		`lineage_dropped_total{stage="clean",reason="spike"} 7`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus export missing %q:\n%s", want, out)
		}
	}
}

func TestLineageStageIdempotent(t *testing.T) {
	l := NewLineage(nil)
	a := l.Stage("clean", "points")
	b := l.Stage("clean", "points")
	if a != b {
		t.Fatal("Stage must return the same row for the same name")
	}
	if a.Reason(DropSpike) != b.Reason(DropSpike) {
		t.Fatal("Reason must be idempotent")
	}
}

// TestLineageConcurrent exercises the ledger from many goroutines; the
// totals must come out exact (run under -race for the safety half).
func TestLineageConcurrent(t *testing.T) {
	l := NewLineage(nil)
	st := l.Stage("clean", "points")
	spike := st.Reason(DropSpike)
	const workers = 16
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				st.RecordCar(w, 10, 9)
				spike.Add(1)
			}
		}(w)
	}
	wg.Wait()

	if err := l.Check(); err != nil {
		t.Fatal(err)
	}
	snap := l.Snapshot(workers)
	row := snap.Stages[0]
	if row.In != workers*perWorker*10 || row.Out != workers*perWorker*9 {
		t.Fatalf("row = %+v", row)
	}
	if len(snap.TopDroppedCars) != workers {
		t.Fatalf("cars = %d", len(snap.TopDroppedCars))
	}
	for _, c := range snap.TopDroppedCars {
		if c.Dropped != perWorker {
			t.Fatalf("car %d dropped %d, want %d", c.Car, c.Dropped, perWorker)
		}
	}
}
