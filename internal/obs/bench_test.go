package obs

import (
	"testing"
)

// The no-op variants benchmark the handles a nil registry returns —
// the exact cost instrumented code pays when observability is off.

func BenchmarkCounterAdd(b *testing.B) {
	c := NewRegistry().Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterAddNoop(b *testing.B) {
	var reg *Registry
	c := reg.Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("h")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.00123)
	}
}

func BenchmarkHistogramObserveNoop(b *testing.B) {
	var reg *Registry
	h := reg.Histogram("h")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.00123)
	}
}

func BenchmarkSpanStartEnd(b *testing.B) {
	t := NewRegistry().SpanTimer("stage")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t.Start().End()
	}
}

func BenchmarkSpanStartEndNoop(b *testing.B) {
	var reg *Registry
	t := reg.SpanTimer("stage")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t.Start().End()
	}
}

// BenchmarkHistogramObserveParallel measures contention: every worker
// hammers the same histogram, the worst case for the CAS-accumulated
// sum.
func BenchmarkHistogramObserveParallel(b *testing.B) {
	h := NewRegistry().Histogram("h")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(0.00123)
		}
	})
}
