package obs

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// MetricsHandler serves the Prometheus text exposition of the registry.
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// VarsHandler serves the JSON snapshot of the registry (an
// expvar-style /debug/vars).
func (r *Registry) VarsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		r.WriteJSON(w)
	})
}

// DebugMux returns the full debug surface over one registry:
//
//	/metrics        Prometheus text format
//	/debug/vars     JSON metrics snapshot
//	/debug/pprof/*  live profiling (CPU, heap, goroutine, trace, ...)
func (r *Registry) DebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.MetricsHandler())
	mux.Handle("/debug/vars", r.VarsHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, "taxitrace debug server\n/metrics\n/debug/vars\n/debug/pprof/\n")
	})
	return mux
}

// DebugServer is a running debug HTTP server; close it when the run
// ends.
type DebugServer struct {
	// Addr is the bound address ("127.0.0.1:41327"), resolved even when
	// the requested port was 0.
	Addr string

	srv *http.Server
	ln  net.Listener
}

// Serve binds addr (e.g. ":6060" or ":0" for an ephemeral port) and
// serves mux in a background goroutine. Use it when extra handlers are
// mounted on a DebugMux (e.g. the serving layer's query API); the
// caller owns the returned server and should Close it on shutdown.
func Serve(addr string, mux *http.ServeMux) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug server listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	ds := &DebugServer{Addr: ln.Addr().String(), srv: srv, ln: ln}
	go srv.Serve(ln)
	return ds, nil
}

// ServeDebug binds addr and serves the registry's DebugMux in a
// background goroutine.
func ServeDebug(addr string, r *Registry) (*DebugServer, error) {
	return Serve(addr, r.DebugMux())
}

// Close shuts the server down immediately.
func (s *DebugServer) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}

// Shutdown drains the server gracefully: the listener stops accepting
// immediately, in-flight requests get up to timeout to finish, and
// anything still running after that is cut off hard. Returns the
// graceful-shutdown error (context.DeadlineExceeded when the deadline
// forced the hard close).
func (s *DebugServer) Shutdown(timeout time.Duration) error {
	if s == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	if err != nil {
		s.srv.Close()
	}
	return err
}
