package obs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Binary encoding of a FrozenHistogram — the unit the cluster snapshot
// codec ships between worker and coordinator. The layout stamp travels
// with the counts, so a histogram frozen under one bucket scheme can
// never be silently combined with another: Merge on the decoded value
// still enforces ErrLayoutMismatch exactly as it does in-process.
//
// Format (little-endian):
//
//	u8   version (currently 1)
//	i8   layout.SubBits, i8 layout.MinExp, i8 layout.MaxExp
//	uvarint count
//	f64  sum
//	f64  max
//	uvarint nBuckets
//	nBuckets × (uvarint idxDelta, uvarint count)
//
// Bucket indexes are delta-encoded (first delta is the absolute index),
// which both compresses the common dense runs and makes "strictly
// ascending" checkable for free on decode: every delta after the first
// must be positive.
const histCodecVersion = 1

// ErrBadHistogramEncoding marks a frozen-histogram blob that does not
// decode: wrong version, truncated body, or non-ascending buckets.
var ErrBadHistogramEncoding = errors.New("obs: bad frozen-histogram encoding")

// AppendBinary appends the histogram's binary encoding to dst and
// returns the extended slice. A nil histogram encodes as empty under
// the current layout.
func (f *FrozenHistogram) AppendBinary(dst []byte) []byte {
	layout := f.layoutOf()
	dst = append(dst, histCodecVersion,
		byte(layout.SubBits), byte(layout.MinExp), byte(layout.MaxExp))
	dst = binary.AppendUvarint(dst, f.Count())
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(f.Sum()))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(f.Max()))
	idx := frozenBuckets(f)
	dst = binary.AppendUvarint(dst, uint64(len(idx)))
	prev := int32(0)
	for i, ix := range idx {
		delta := ix
		if i > 0 {
			delta = ix - prev
		}
		prev = ix
		dst = binary.AppendUvarint(dst, uint64(delta))
		dst = binary.AppendUvarint(dst, f.bucketN[i])
	}
	return dst
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (f *FrozenHistogram) MarshalBinary() ([]byte, error) {
	return f.AppendBinary(nil), nil
}

// DecodeFrozenHistogram decodes one histogram from the front of data
// and returns it together with the number of bytes consumed. Every
// structural violation — unknown version, truncation, a bucket run
// that is not strictly ascending, an index outside int32 — is reported
// as an error wrapping ErrBadHistogramEncoding.
func DecodeFrozenHistogram(data []byte) (*FrozenHistogram, int, error) {
	bad := func(format string, args ...any) (*FrozenHistogram, int, error) {
		return nil, 0, fmt.Errorf("%w: %s", ErrBadHistogramEncoding, fmt.Sprintf(format, args...))
	}
	if len(data) < 4 {
		return bad("truncated header (%d bytes)", len(data))
	}
	if v := data[0]; v != histCodecVersion {
		return bad("unknown version %d", v)
	}
	f := &FrozenHistogram{layout: histLayout{
		SubBits: int8(data[1]), MinExp: int8(data[2]), MaxExp: int8(data[3]),
	}}
	off := 4
	uvarint := func() (uint64, bool) {
		v, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return 0, false
		}
		off += n
		return v, true
	}
	count, ok := uvarint()
	if !ok {
		return bad("truncated count")
	}
	f.count = count
	if off+16 > len(data) {
		return bad("truncated sum/max")
	}
	f.sum = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
	f.max = math.Float64frombits(binary.LittleEndian.Uint64(data[off+8:]))
	off += 16
	nBuckets, ok := uvarint()
	if !ok {
		return bad("truncated bucket count")
	}
	// Each bucket needs at least two bytes (delta + count); this bounds
	// allocation by the input size, so a hostile length cannot balloon.
	if nBuckets > uint64(len(data)-off)/2+1 {
		return bad("bucket count %d exceeds body", nBuckets)
	}
	if nBuckets > 0 {
		f.idx = make([]int32, 0, nBuckets)
		f.bucketN = make([]uint64, 0, nBuckets)
	}
	var cur int64
	for i := uint64(0); i < nBuckets; i++ {
		delta, ok := uvarint()
		if !ok {
			return bad("truncated bucket %d", i)
		}
		if i > 0 && delta == 0 {
			return bad("bucket indexes not strictly ascending at %d", i)
		}
		n, ok := uvarint()
		if !ok {
			return bad("truncated bucket count %d", i)
		}
		cur += int64(delta)
		if cur > math.MaxInt32 {
			return bad("bucket index %d out of range", cur)
		}
		f.idx = append(f.idx, int32(cur))
		f.bucketN = append(f.bucketN, n)
	}
	return f, off, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler. Trailing
// bytes after the encoded histogram are an error (a standalone blob is
// exactly one histogram; embedded decoding uses DecodeFrozenHistogram).
func (f *FrozenHistogram) UnmarshalBinary(data []byte) error {
	dec, n, err := DecodeFrozenHistogram(data)
	if err != nil {
		return err
	}
	if n != len(data) {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadHistogramEncoding, len(data)-n)
	}
	*f = *dec
	return nil
}
