package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite exporter golden files")

// goldenRegistry builds a registry with fixed, fully deterministic
// contents covering every metric kind and the name sanitiser.
func goldenRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("pipeline_clean_trips").Add(120)
	reg.Counter("pipeline_segment_kept").Add(98)
	reg.Gauge("pipeline_car_active").Set(4)
	reg.Gauge("pipeline_grid_cells_nonempty").Set(210)
	reg.GaugeFunc("router_cache_hit_rate", func() float64 { return 0.8125 })
	reg.GaugeFunc("bad name!", func() float64 { return 1 }) // exercises sanitising

	h := reg.Histogram("pipeline_mapmatch_duration_seconds")
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.001) // 1ms .. 100ms
	}
	return reg
}

// TestExporterGoldenFiles compares both exporters byte-for-byte against
// the checked-in golden files. Regenerate with:
//
//	go test ./internal/obs -run Golden -update
func TestExporterGoldenFiles(t *testing.T) {
	reg := goldenRegistry()
	for _, tc := range []struct {
		file  string
		write func(*Registry, *bytes.Buffer) error
	}{
		{"metrics.prom", func(r *Registry, b *bytes.Buffer) error { return r.WritePrometheus(b) }},
		{"metrics.json", func(r *Registry, b *bytes.Buffer) error { return r.WriteJSON(b) }},
	} {
		var buf bytes.Buffer
		if err := tc.write(reg, &buf); err != nil {
			t.Fatalf("%s: %v", tc.file, err)
		}
		path := filepath.Join("testdata", tc.file)
		if *update {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s (run with -update to regenerate): %v", path, err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("%s drifted from golden file (run with -update to regenerate):\n--- got ---\n%s\n--- want ---\n%s",
				tc.file, buf.Bytes(), want)
		}
	}
}

// TestExporterLabelledSeries pins the `base{labels}` convention the
// invariant checker uses for its violation counters: one TYPE header
// per base name, label text preserved verbatim, base name sanitised,
// and plain names untouched.
func TestExporterLabelledSeries(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(`check_violations_total{stage="clean",rule="finite"}`).Add(2)
	reg.Counter(`check_violations_total{stage="grid",rule="cell_roundtrip"}`).Inc()
	reg.Counter("pipeline_cars_processed").Add(7)
	reg.Gauge(`queue depth!{shard="a"}`).Set(3) // base needs sanitising

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	wantLines := []string{
		`check_violations_total{stage="clean",rule="finite"} 2`,
		`check_violations_total{stage="grid",rule="cell_roundtrip"} 1`,
		"pipeline_cars_processed 7",
		`queue_depth_{shard="a"} 3`,
	}
	for _, l := range wantLines {
		if !strings.Contains(out, l+"\n") {
			t.Errorf("missing line %q in:\n%s", l, out)
		}
	}
	if n := strings.Count(out, "# TYPE check_violations_total counter"); n != 1 {
		t.Errorf("TYPE header for labelled counter appears %d times, want 1:\n%s", n, out)
	}
	if strings.Contains(out, "check_violations_total_") {
		t.Errorf("labels leaked into the metric name:\n%s", out)
	}
}

// TestSplitLabels covers the name-splitting corner cases directly.
func TestSplitLabels(t *testing.T) {
	cases := []struct{ in, base, labels string }{
		{`a{x="1"}`, "a", `{x="1"}`},
		{"plain", "plain", ""},
		{"trailing{", "trailing{", ""}, // no closing brace: not label syntax
		{`{x="1"}`, `{x="1"}`, ""},     // no base: not label syntax
		{"a{}", "a", "{}"},
	}
	for _, c := range cases {
		b, l := splitLabels(c.in)
		if b != c.base || l != c.labels {
			t.Errorf("splitLabels(%q) = %q, %q; want %q, %q", c.in, b, l, c.base, c.labels)
		}
	}
}
