package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite exporter golden files")

// goldenRegistry builds a registry with fixed, fully deterministic
// contents covering every metric kind and the name sanitiser.
func goldenRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("pipeline_clean_trips").Add(120)
	reg.Counter("pipeline_segment_kept").Add(98)
	reg.Gauge("pipeline_car_active").Set(4)
	reg.Gauge("pipeline_grid_cells_nonempty").Set(210)
	reg.GaugeFunc("router_cache_hit_rate", func() float64 { return 0.8125 })
	reg.GaugeFunc("bad name!", func() float64 { return 1 }) // exercises sanitising

	h := reg.Histogram("pipeline_mapmatch_duration_seconds")
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.001) // 1ms .. 100ms
	}
	return reg
}

// TestExporterGoldenFiles compares both exporters byte-for-byte against
// the checked-in golden files. Regenerate with:
//
//	go test ./internal/obs -run Golden -update
func TestExporterGoldenFiles(t *testing.T) {
	reg := goldenRegistry()
	for _, tc := range []struct {
		file  string
		write func(*Registry, *bytes.Buffer) error
	}{
		{"metrics.prom", func(r *Registry, b *bytes.Buffer) error { return r.WritePrometheus(b) }},
		{"metrics.json", func(r *Registry, b *bytes.Buffer) error { return r.WriteJSON(b) }},
	} {
		var buf bytes.Buffer
		if err := tc.write(reg, &buf); err != nil {
			t.Fatalf("%s: %v", tc.file, err)
		}
		path := filepath.Join("testdata", tc.file)
		if *update {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s (run with -update to regenerate): %v", path, err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("%s drifted from golden file (run with -update to regenerate):\n--- got ---\n%s\n--- want ---\n%s",
				tc.file, buf.Bytes(), want)
		}
	}
}
