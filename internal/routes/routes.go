// Package routes groups trajectories that follow the same physical
// route. The paper's OD analysis deliberately lets drivers choose
// routes freely ("based on their own silent knowledge and intuition");
// clustering the matched geometries per direction recovers the distinct
// route variants actually driven, enabling the eco-routing comparison
// of Minett et al. [24] and the route-frequency analysis of Li et al.
// [18] that the paper builds on.
package routes

import (
	"fmt"
	"sort"

	"repro/internal/geo"
)

// Item is one trajectory to cluster, identified by the caller's index.
type Item struct {
	ID   int
	Geom geo.Polyline
}

// Cluster is one recovered route variant.
type Cluster struct {
	// Rep is the representative geometry (the member closest to all
	// others).
	Rep geo.Polyline
	// IDs are the member item IDs, in input order.
	IDs []int
}

// Size returns the member count.
func (c *Cluster) Size() int { return len(c.IDs) }

// Config tunes clustering.
type Config struct {
	// ToleranceM is the symmetric Hausdorff distance within which two
	// trajectories count as the same route (default 120 m, about one
	// parallel block in the synthetic city).
	ToleranceM float64
	// SampleStepM is the resampling step for the distance computation
	// (default 40 m).
	SampleStepM float64
}

func (c Config) withDefaults() Config {
	if c.ToleranceM <= 0 {
		c.ToleranceM = 120
	}
	if c.SampleStepM <= 0 {
		c.SampleStepM = 40
	}
	return c
}

// ClusterRoutes greedily assigns each trajectory to the first cluster
// whose leader is within the tolerance, creating a new cluster
// otherwise (leader clustering). Clusters are returned largest first;
// each cluster's representative is re-picked as the member minimising
// the summed distance to the other members.
func ClusterRoutes(items []Item, cfg Config) ([]Cluster, error) {
	cfg = cfg.withDefaults()
	for _, it := range items {
		if len(it.Geom) < 2 {
			return nil, fmt.Errorf("routes: item %d has degenerate geometry", it.ID)
		}
	}
	// Resample every geometry once; the Hausdorff comparisons then run
	// vertex-to-chain without re-resampling per pair.
	sampled := make([]geo.Polyline, len(items))
	for i, it := range items {
		sampled[i] = it.Geom.Resample(cfg.SampleStepM)
	}

	type cluster struct {
		leader  int // index into items/sampled
		members []int
	}
	var clusters []*cluster
	for i := range items {
		assigned := false
		for _, c := range clusters {
			// Cheap bounding-box reject before the early-exit Hausdorff.
			if !sampled[i].Bounds().Expand(cfg.ToleranceM).Intersects(sampled[c.leader].Bounds()) {
				continue
			}
			if geo.WithinHausdorff(sampled[i], sampled[c.leader], cfg.ToleranceM) {
				c.members = append(c.members, i)
				assigned = true
				break
			}
		}
		if !assigned {
			clusters = append(clusters, &cluster{leader: i, members: []int{i}})
		}
	}
	sort.SliceStable(clusters, func(i, j int) bool {
		return len(clusters[i].members) > len(clusters[j].members)
	})

	out := make([]Cluster, len(clusters))
	for i, c := range clusters {
		rep := medoid(c.members, sampled)
		ids := make([]int, len(c.members))
		for k, m := range c.members {
			ids[k] = items[m].ID
		}
		out[i] = Cluster{Rep: items[rep].Geom, IDs: ids}
	}
	return out, nil
}

// medoid picks the member (by index into sampled) minimising the summed
// Hausdorff distance to the other members. Quadratic in cluster size;
// clusters here are tens of members, and the pairwise distances are
// symmetric so each is computed once.
func medoid(members []int, sampled []geo.Polyline) int {
	if len(members) == 1 {
		return members[0]
	}
	// Cap the quadratic work: for big clusters a strided subsample of
	// members is representative enough to pick a central route.
	const maxPairwise = 40
	if len(members) > maxPairwise {
		stride := len(members) / maxPairwise
		sub := make([]int, 0, maxPairwise)
		for i := 0; i < len(members); i += stride {
			sub = append(sub, members[i])
		}
		members = sub
	}
	sums := make([]float64, len(members))
	for i := 0; i < len(members); i++ {
		for j := i + 1; j < len(members); j++ {
			d := geo.Hausdorff(sampled[members[i]], sampled[members[j]], 0)
			sums[i] += d
			sums[j] += d
		}
	}
	best := 0
	for i := 1; i < len(sums); i++ {
		if sums[i] < sums[best] {
			best = i
		}
	}
	return members[best]
}
