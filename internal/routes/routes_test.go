package routes

import (
	"math/rand"
	"testing"

	"repro/internal/geo"
)

// jittered returns the base polyline with small per-vertex noise.
func jittered(rng *rand.Rand, base geo.Polyline, sigma float64) geo.Polyline {
	out := make(geo.Polyline, len(base))
	for i, p := range base {
		out[i] = geo.V(p.X+rng.NormFloat64()*sigma, p.Y+rng.NormFloat64()*sigma)
	}
	return out
}

func TestClusterRoutesSeparatesVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Two genuinely different routes between the same endpoints: via
	// y=0 and via y=400.
	routeA := geo.Line(0, 0, 500, 0, 1000, 0)
	routeB := geo.Line(0, 0, 0, 400, 1000, 400, 1000, 0)
	var items []Item
	for i := 0; i < 6; i++ {
		items = append(items, Item{ID: i, Geom: jittered(rng, routeA, 6)})
	}
	for i := 6; i < 10; i++ {
		items = append(items, Item{ID: i, Geom: jittered(rng, routeB, 6)})
	}
	clusters, err := ClusterRoutes(items, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 2 {
		t.Fatalf("clusters = %d, want 2", len(clusters))
	}
	// Largest first.
	if clusters[0].Size() != 6 || clusters[1].Size() != 4 {
		t.Fatalf("sizes = %d, %d", clusters[0].Size(), clusters[1].Size())
	}
	// Membership is by route, not interleaved.
	for _, id := range clusters[0].IDs {
		if id >= 6 {
			t.Fatalf("route B item %d in cluster A", id)
		}
	}
	// Representatives resemble their routes.
	if geo.Hausdorff(clusters[0].Rep, routeA, 40) > 30 {
		t.Fatal("cluster A representative far from route A")
	}
	if geo.Hausdorff(clusters[1].Rep, routeB, 40) > 30 {
		t.Fatal("cluster B representative far from route B")
	}
}

func TestClusterRoutesSingleVariant(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	base := geo.Line(0, 0, 300, 0, 300, 300)
	var items []Item
	for i := 0; i < 8; i++ {
		items = append(items, Item{ID: i, Geom: jittered(rng, base, 5)})
	}
	clusters, err := ClusterRoutes(items, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 1 || clusters[0].Size() != 8 {
		t.Fatalf("clusters = %+v", clusters)
	}
}

func TestClusterRoutesToleranceControls(t *testing.T) {
	// Two parallel routes 200 m apart: one cluster at 300 m tolerance,
	// two at 100 m.
	a := geo.Line(0, 0, 1000, 0)
	b := geo.Line(0, 200, 1000, 200)
	items := []Item{{ID: 0, Geom: a}, {ID: 1, Geom: b}}
	wide, err := ClusterRoutes(items, Config{ToleranceM: 300})
	if err != nil {
		t.Fatal(err)
	}
	if len(wide) != 1 {
		t.Fatalf("wide tolerance clusters = %d", len(wide))
	}
	tight, err := ClusterRoutes(items, Config{ToleranceM: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(tight) != 2 {
		t.Fatalf("tight tolerance clusters = %d", len(tight))
	}
}

func TestClusterRoutesEmptyAndInvalid(t *testing.T) {
	clusters, err := ClusterRoutes(nil, Config{})
	if err != nil || len(clusters) != 0 {
		t.Fatalf("empty input: %v %v", clusters, err)
	}
	_, err = ClusterRoutes([]Item{{ID: 0, Geom: geo.Polyline{geo.V(1, 1)}}}, Config{})
	if err == nil {
		t.Fatal("degenerate geometry accepted")
	}
}

func TestMedoidPicksCentralMember(t *testing.T) {
	// Three parallel lines; the middle one is the medoid.
	items := []Item{
		{ID: 0, Geom: geo.Line(0, 0, 100, 0)},
		{ID: 1, Geom: geo.Line(0, 10, 100, 10)},
		{ID: 2, Geom: geo.Line(0, 20, 100, 20)},
	}
	sampled := make([]geo.Polyline, len(items))
	for i, it := range items {
		sampled[i] = it.Geom.Resample(10)
	}
	rep := medoid([]int{0, 1, 2}, sampled)
	if items[rep].Geom[0].Y != 10 {
		t.Fatalf("medoid y = %f, want 10", items[rep].Geom[0].Y)
	}
}
