package digiroad

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/geo"
)

// CSV interchange for the road database. Two record types share one
// stream, tagged by the first column:
//
//	E,<id>,<class>,<flow>,<limit_kmh>,<name>,<lon lat;...>[,<from:to:kmh|...>]
//	O,<id>,<kind>,<lon>,<lat>,<element_id>
//
// Geometry is written in WGS84 so exported files are portable between
// databases with different projection origins. The optional eighth
// element field carries segmented speed-limit ranges.

// WriteCSV serialises the database to w.
func (db *Database) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	for _, e := range db.Elements() {
		var sb strings.Builder
		for i, xy := range e.Geom {
			if i > 0 {
				sb.WriteByte(';')
			}
			p := db.Proj.ToPoint(xy)
			fmt.Fprintf(&sb, "%.7f %.7f", p.Lon, p.Lat)
		}
		rec := []string{
			"E",
			strconv.Itoa(e.ID),
			strconv.Itoa(int(e.Class)),
			strconv.Itoa(int(e.Flow)),
			strconv.FormatFloat(e.SpeedLimitKmh, 'f', -1, 64),
			e.Name,
			sb.String(),
		}
		if len(e.Limits) > 0 {
			var lb strings.Builder
			for i, r := range e.Limits {
				if i > 0 {
					lb.WriteByte('|')
				}
				fmt.Fprintf(&lb, "%.2f:%.2f:%.1f", r.FromM, r.ToM, r.Kmh)
			}
			rec = append(rec, lb.String())
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("digiroad: write element %d: %w", e.ID, err)
		}
	}
	for _, o := range db.Objects() {
		p := db.Proj.ToPoint(o.Pos)
		rec := []string{
			"O",
			strconv.Itoa(o.ID),
			strconv.Itoa(int(o.Kind)),
			strconv.FormatFloat(p.Lon, 'f', 7, 64),
			strconv.FormatFloat(p.Lat, 'f', 7, 64),
			strconv.Itoa(o.ElementID),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("digiroad: write object %d: %w", o.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV loads records produced by WriteCSV into db.
func (db *Database) ReadCSV(r io.Reader) error {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("digiroad: csv read: %w", err)
		}
		line++
		if len(rec) == 0 {
			continue
		}
		switch rec[0] {
		case "E":
			if err := db.readElementRecord(rec); err != nil {
				return fmt.Errorf("digiroad: line %d: %w", line, err)
			}
		case "O":
			if err := db.readObjectRecord(rec); err != nil {
				return fmt.Errorf("digiroad: line %d: %w", line, err)
			}
		default:
			return fmt.Errorf("digiroad: line %d: unknown record tag %q", line, rec[0])
		}
	}
}

func (db *Database) readElementRecord(rec []string) error {
	if len(rec) != 7 && len(rec) != 8 {
		return fmt.Errorf("element record needs 7 or 8 fields, got %d", len(rec))
	}
	id, err := strconv.Atoi(rec[1])
	if err != nil {
		return fmt.Errorf("element id: %w", err)
	}
	class, err := strconv.Atoi(rec[2])
	if err != nil {
		return fmt.Errorf("element class: %w", err)
	}
	flow, err := strconv.Atoi(rec[3])
	if err != nil {
		return fmt.Errorf("element flow: %w", err)
	}
	limit, err := strconv.ParseFloat(rec[4], 64)
	if err != nil {
		return fmt.Errorf("element speed limit: %w", err)
	}
	geom, err := db.parseGeom(rec[6])
	if err != nil {
		return err
	}
	stored, err := db.AddElement(TrafficElement{
		ID:            id,
		Geom:          geom,
		Class:         FunctionalClass(class),
		Flow:          FlowDirection(flow),
		SpeedLimitKmh: limit,
		Name:          rec[5],
	})
	if err != nil {
		return err
	}
	if len(rec) == 8 && rec[7] != "" {
		ranges, err := parseSpeedRanges(rec[7])
		if err != nil {
			return err
		}
		return db.SetSpeedLimits(stored.ID, ranges)
	}
	return nil
}

func parseSpeedRanges(s string) ([]SpeedLimitRange, error) {
	parts := strings.Split(s, "|")
	out := make([]SpeedLimitRange, 0, len(parts))
	for _, part := range parts {
		fields := strings.Split(part, ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("bad speed range %q", part)
		}
		from, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("speed range from: %w", err)
		}
		to, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("speed range to: %w", err)
		}
		kmh, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("speed range kmh: %w", err)
		}
		out = append(out, SpeedLimitRange{FromM: from, ToM: to, Kmh: kmh})
	}
	return out, nil
}

func (db *Database) readObjectRecord(rec []string) error {
	if len(rec) != 6 {
		return fmt.Errorf("object record needs 6 fields, got %d", len(rec))
	}
	id, err := strconv.Atoi(rec[1])
	if err != nil {
		return fmt.Errorf("object id: %w", err)
	}
	kind, err := strconv.Atoi(rec[2])
	if err != nil {
		return fmt.Errorf("object kind: %w", err)
	}
	lon, err := strconv.ParseFloat(rec[3], 64)
	if err != nil {
		return fmt.Errorf("object lon: %w", err)
	}
	lat, err := strconv.ParseFloat(rec[4], 64)
	if err != nil {
		return fmt.Errorf("object lat: %w", err)
	}
	elemID, err := strconv.Atoi(rec[5])
	if err != nil {
		return fmt.Errorf("object element id: %w", err)
	}
	db.AddObject(PointObject{
		ID:        id,
		Kind:      ObjectKind(kind),
		Pos:       db.Proj.ToXY(geo.Point{Lon: lon, Lat: lat}),
		ElementID: elemID,
	})
	return nil
}

func (db *Database) parseGeom(s string) (geo.Polyline, error) {
	parts := strings.Split(s, ";")
	pl := make(geo.Polyline, 0, len(parts))
	for _, part := range parts {
		fields := strings.Fields(part)
		if len(fields) != 2 {
			return nil, fmt.Errorf("bad geometry vertex %q", part)
		}
		lon, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("geometry lon: %w", err)
		}
		lat, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("geometry lat: %w", err)
		}
		pl = append(pl, db.Proj.ToXY(geo.Point{Lon: lon, Lat: lat}))
	}
	return pl, nil
}
