// Package digiroad models a Digiroad-style national road database: the
// road network as "traffic elements" (the smallest units of road centre
// line geometry), transport-system point objects (traffic lights, bus
// stops, pedestrian crossings), and segmented line-like attributes such
// as speed limits. It also contains a deterministic generator for a
// downtown-Oulu-like network so that the whole pipeline can run without
// access to the proprietary national database (see DESIGN.md).
package digiroad

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/geo"
)

// FunctionalClass classifies a traffic element's role in the network,
// mirroring Digiroad's functional road classes.
type FunctionalClass int

// Functional classes, from highest-capacity to lowest.
const (
	ClassArterial FunctionalClass = iota + 1
	ClassCollector
	ClassLocal
	ClassPedestrian
)

// String returns the class name.
func (c FunctionalClass) String() string {
	switch c {
	case ClassArterial:
		return "arterial"
	case ClassCollector:
		return "collector"
	case ClassLocal:
		return "local"
	case ClassPedestrian:
		return "pedestrian"
	default:
		return fmt.Sprintf("FunctionalClass(%d)", int(c))
	}
}

// FlowDirection encodes the allowed traffic flow relative to the
// element's digitization direction.
type FlowDirection int

// Flow directions.
const (
	FlowBoth     FlowDirection = iota // two-way traffic
	FlowForward                       // one-way along digitization
	FlowBackward                      // one-way against digitization
)

// String returns the direction name.
func (d FlowDirection) String() string {
	switch d {
	case FlowBoth:
		return "both"
	case FlowForward:
		return "forward"
	case FlowBackward:
		return "backward"
	default:
		return fmt.Sprintf("FlowDirection(%d)", int(d))
	}
}

// TrafficElement is the smallest unit of road centre-line geometry,
// with its characteristic attributes.
type TrafficElement struct {
	ID            int
	Geom          geo.Polyline // projected coordinates, metres
	Class         FunctionalClass
	Flow          FlowDirection
	SpeedLimitKmh float64 // element-level default limit
	// Limits optionally refines the limit as a segmented line-like
	// attribute over along-element ranges (see SetSpeedLimits).
	Limits []SpeedLimitRange
	Name   string // street name, may be empty
}

// Length returns the element's centre-line length in metres.
func (e *TrafficElement) Length() float64 { return e.Geom.Length() }

// ObjectKind identifies a transport-system point object type.
type ObjectKind int

// Point object kinds used by the paper's analysis.
const (
	TrafficLight ObjectKind = iota + 1
	BusStop
	PedestrianCrossing
)

// String returns the kind name.
func (k ObjectKind) String() string {
	switch k {
	case TrafficLight:
		return "traffic_light"
	case BusStop:
		return "bus_stop"
	case PedestrianCrossing:
		return "pedestrian_crossing"
	default:
		return fmt.Sprintf("ObjectKind(%d)", int(k))
	}
}

// PointObject is a transport-system object placed on the network.
type PointObject struct {
	ID        int
	Kind      ObjectKind
	Pos       geo.XY
	ElementID int // the traffic element the object belongs to
}

// Database is an in-memory Digiroad-like store. The zero value is not
// usable; construct with NewDatabase.
type Database struct {
	// Proj maps between WGS84 and the projected plane all geometry in
	// the database lives in.
	Proj *geo.Projection

	elements []*TrafficElement
	objects  []*PointObject
	byID     map[int]*TrafficElement

	mu          sync.Mutex
	elemIndex   *geo.RTree
	objIndex    *geo.RTree
	nextElemID  int
	nextObjID   int
	indexStale  bool
	elemIndexed []*TrafficElement
	objIndexed  []*PointObject
}

// NewDatabase returns an empty database whose geometry plane is centred
// at origin.
func NewDatabase(origin geo.Point) *Database {
	return &Database{
		Proj:       geo.NewProjection(origin),
		byID:       make(map[int]*TrafficElement),
		nextElemID: 1,
		nextObjID:  1,
		indexStale: true,
	}
}

// AddElement stores a traffic element. A zero ID is assigned the next
// free identifier. It returns the stored element and an error on
// duplicate IDs or degenerate geometry.
func (db *Database) AddElement(e TrafficElement) (*TrafficElement, error) {
	if len(e.Geom) < 2 {
		return nil, fmt.Errorf("digiroad: element geometry needs >=2 points, got %d", len(e.Geom))
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if e.ID == 0 {
		e.ID = db.nextElemID
	}
	if _, dup := db.byID[e.ID]; dup {
		return nil, fmt.Errorf("digiroad: duplicate element id %d", e.ID)
	}
	if e.ID >= db.nextElemID {
		db.nextElemID = e.ID + 1
	}
	stored := e
	db.elements = append(db.elements, &stored)
	db.byID[stored.ID] = &stored
	db.indexStale = true
	return &stored, nil
}

// AddObject stores a point object. A zero ID is assigned the next free
// identifier.
func (db *Database) AddObject(o PointObject) *PointObject {
	db.mu.Lock()
	defer db.mu.Unlock()
	if o.ID == 0 {
		o.ID = db.nextObjID
	}
	if o.ID >= db.nextObjID {
		db.nextObjID = o.ID + 1
	}
	stored := o
	db.objects = append(db.objects, &stored)
	db.indexStale = true
	return &stored
}

// Element returns the element with the given ID, or nil.
func (db *Database) Element(id int) *TrafficElement {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.byID[id]
}

// Elements returns all elements ordered by ID. The returned slice is
// owned by the caller; the pointed-to elements are shared.
func (db *Database) Elements() []*TrafficElement {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := append([]*TrafficElement(nil), db.elements...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Objects returns all point objects ordered by ID.
func (db *Database) Objects() []*PointObject {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := append([]*PointObject(nil), db.objects...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ObjectsOfKind returns all point objects of the given kind, ordered by ID.
func (db *Database) ObjectsOfKind(kind ObjectKind) []*PointObject {
	var out []*PointObject
	for _, o := range db.Objects() {
		if o.Kind == kind {
			out = append(out, o)
		}
	}
	return out
}

// NumElements returns the element count.
func (db *Database) NumElements() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.elements)
}

// NumObjects returns the point-object count.
func (db *Database) NumObjects() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.objects)
}

// Bounds returns the bounding box of all element geometry.
func (db *Database) Bounds() geo.Rect {
	db.mu.Lock()
	defer db.mu.Unlock()
	r := geo.EmptyRect()
	for _, e := range db.elements {
		r = r.Union(e.Geom.Bounds())
	}
	return r
}

func (db *Database) ensureIndexes() {
	db.mu.Lock()
	defer db.mu.Unlock()
	if !db.indexStale && db.elemIndex != nil {
		return
	}
	elemItems := make([]geo.RTreeItem, len(db.elements))
	db.elemIndexed = append([]*TrafficElement(nil), db.elements...)
	for i, e := range db.elemIndexed {
		elemItems[i] = geo.RTreeItem{Rect: e.Geom.Bounds(), ID: i}
	}
	db.elemIndex = geo.BuildRTree(elemItems, 0)

	objItems := make([]geo.RTreeItem, len(db.objects))
	db.objIndexed = append([]*PointObject(nil), db.objects...)
	for i, o := range db.objIndexed {
		objItems[i] = geo.RTreeItem{Rect: geo.RectFromPoints(o.Pos), ID: i}
	}
	db.objIndex = geo.BuildRTree(objItems, 0)
	db.indexStale = false
}

// ElementsNear returns the elements whose geometry passes within radius
// metres of p, sorted by distance to p.
func (db *Database) ElementsNear(p geo.XY, radius float64) []*TrafficElement {
	db.ensureIndexes()
	query := geo.RectFromPoints(p).Expand(radius)
	ids := db.elemIndex.Search(query, nil)
	type hit struct {
		e *TrafficElement
		d float64
	}
	var hits []hit
	for _, id := range ids {
		e := db.elemIndexed[id]
		if d := e.Geom.DistanceTo(p); d <= radius {
			hits = append(hits, hit{e, d})
		}
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].d < hits[j].d })
	out := make([]*TrafficElement, len(hits))
	for i, h := range hits {
		out[i] = h.e
	}
	return out
}

// ObjectsInRect returns the point objects inside r.
func (db *Database) ObjectsInRect(r geo.Rect) []*PointObject {
	db.ensureIndexes()
	ids := db.objIndex.Search(r, nil)
	out := make([]*PointObject, 0, len(ids))
	for _, id := range ids {
		if o := db.objIndexed[id]; r.Contains(o.Pos) {
			out = append(out, o)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// lineChunkSegs is the sweep granularity for near-line queries: the
// chain is walked in chunks of this many segments, each with its own
// bounding-box index query, so a long route tests candidates against a
// handful of nearby segments instead of the whole chain (the full-chain
// distance test is quadratic in route length × candidate count).
const lineChunkSegs = 16

// ObjectsNearLine returns point objects within dist metres of the chain,
// optionally filtered by kind (pass 0 for all kinds).
func (db *Database) ObjectsNearLine(pl geo.Polyline, dist float64, kind ObjectKind) []*PointObject {
	db.ensureIndexes()
	var out []*PointObject
	var ids []int
	var seen map[int]struct{}
	for start := 0; start == 0 || start+1 < len(pl); start += lineChunkSegs {
		chunk := pl
		if len(pl) > lineChunkSegs+1 {
			end := start + lineChunkSegs + 1
			if end > len(pl) {
				end = len(pl)
			}
			chunk = pl[start:end]
		}
		ids = db.objIndex.Search(chunk.Bounds().Expand(dist), ids[:0])
		for _, id := range ids {
			if _, dup := seen[id]; dup {
				continue
			}
			o := db.objIndexed[id]
			if kind != 0 && o.Kind != kind {
				continue
			}
			// An object within dist of the full chain is within dist of
			// the chunk holding its nearest segment, so the union over
			// chunks accepts exactly the objects the one-shot full-chain
			// test accepted.
			if chunk.DistanceTo(o.Pos) <= dist {
				if seen == nil {
					seen = make(map[int]struct{})
				}
				seen[id] = struct{}{}
				out = append(out, o)
			}
		}
		if len(chunk) == len(pl) {
			break
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// CountObjectsNearLine tallies by kind the point objects within dist
// metres of the chain. It accepts exactly the objects ObjectsNearLine
// (with kind 0) accepts, but only counts them, so per-route feature
// fetching does not build and sort a result slice it will immediately
// discard.
func (db *Database) CountObjectsNearLine(pl geo.Polyline, dist float64) FeatureCounts {
	db.ensureIndexes()
	var fc FeatureCounts
	var ids, seen []int
	for start := 0; start == 0 || start+1 < len(pl); start += lineChunkSegs {
		chunk := pl
		if len(pl) > lineChunkSegs+1 {
			end := start + lineChunkSegs + 1
			if end > len(pl) {
				end = len(pl)
			}
			chunk = pl[start:end]
		}
		ids = db.objIndex.Search(chunk.Bounds().Expand(dist), ids[:0])
	candidates:
		for _, id := range ids {
			// The accept set is small (objects on the traversed streets),
			// so a linear dedup scan beats a map.
			for _, s := range seen {
				if s == id {
					continue candidates
				}
			}
			o := db.objIndexed[id]
			if chunk.DistanceTo(o.Pos) <= dist {
				seen = append(seen, id)
				switch o.Kind {
				case TrafficLight:
					fc.TrafficLights++
				case BusStop:
					fc.BusStops++
				case PedestrianCrossing:
					fc.PedestrianCrossings++
				}
			}
		}
		if len(chunk) == len(pl) {
			break
		}
	}
	return fc
}

// FeatureCounts tallies the paper's four feature kinds within a
// rectangle. Junction counting needs the road graph, so the fourth
// count here covers only the three point-object kinds; see package
// roadnet for junctions.
type FeatureCounts struct {
	TrafficLights       int
	BusStops            int
	PedestrianCrossings int
}

// CountFeatures tallies point objects by kind within r.
func (db *Database) CountFeatures(r geo.Rect) FeatureCounts {
	var fc FeatureCounts
	for _, o := range db.ObjectsInRect(r) {
		switch o.Kind {
		case TrafficLight:
			fc.TrafficLights++
		case BusStop:
			fc.BusStops++
		case PedestrianCrossing:
			fc.PedestrianCrossings++
		}
	}
	return fc
}
