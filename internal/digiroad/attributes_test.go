package digiroad

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/geo"
)

func attrElement(t *testing.T, db *Database) *TrafficElement {
	t.Helper()
	e, err := db.AddElement(TrafficElement{
		Geom: geo.Line(0, 0, 100, 0), Class: ClassLocal, SpeedLimitKmh: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestSetSpeedLimitsAndLimitAt(t *testing.T) {
	db := NewDatabase(OuluOrigin)
	e := attrElement(t, db)
	err := db.SetSpeedLimits(e.ID, []SpeedLimitRange{
		{FromM: 0, ToM: 40, Kmh: 60},
		{FromM: 40, ToM: 80, Kmh: 30},
	})
	if err != nil {
		t.Fatalf("SetSpeedLimits: %v", err)
	}
	cases := []struct {
		at   float64
		want float64
	}{
		{0, 60}, {39, 60}, {40, 30}, {79, 30},
		{80, 50}, // uncovered tail: element default
		{95, 50},
	}
	for _, c := range cases {
		if got := e.LimitAt(c.at); got != c.want {
			t.Errorf("LimitAt(%f) = %f, want %f", c.at, got, c.want)
		}
	}
	if got := e.MinLimit(); got != 30 {
		t.Fatalf("MinLimit = %f, want 30", got)
	}
}

func TestMinLimitFullCoverage(t *testing.T) {
	db := NewDatabase(OuluOrigin)
	e := attrElement(t, db)
	// Element default 50 is lower than every range, but the ranges
	// cover the whole element, so the default never applies.
	if err := db.SetSpeedLimits(e.ID, []SpeedLimitRange{
		{FromM: 0, ToM: 50, Kmh: 80},
		{FromM: 50, ToM: 100, Kmh: 60},
	}); err != nil {
		t.Fatal(err)
	}
	if got := e.MinLimit(); got != 60 {
		t.Fatalf("MinLimit = %f, want 60 (full coverage)", got)
	}
}

func TestSetSpeedLimitsValidation(t *testing.T) {
	db := NewDatabase(OuluOrigin)
	e := attrElement(t, db)
	cases := [][]SpeedLimitRange{
		{{FromM: -5, ToM: 10, Kmh: 40}},                                // negative start
		{{FromM: 0, ToM: 150, Kmh: 40}},                                // beyond element
		{{FromM: 20, ToM: 10, Kmh: 40}},                                // inverted
		{{FromM: 0, ToM: 10, Kmh: 0}},                                  // zero limit
		{{FromM: 0, ToM: 10, Kmh: 200}},                                // absurd limit
		{{FromM: 0, ToM: 60, Kmh: 40}, {FromM: 50, ToM: 100, Kmh: 40}}, // overlap
	}
	for i, ranges := range cases {
		if err := db.SetSpeedLimits(e.ID, ranges); err == nil {
			t.Errorf("case %d accepted invalid ranges", i)
		}
	}
	if err := db.SetSpeedLimits(9999, nil); err == nil {
		t.Error("unknown element accepted")
	}
}

func TestNoLimitsFallsBack(t *testing.T) {
	db := NewDatabase(OuluOrigin)
	e := attrElement(t, db)
	if e.LimitAt(50) != 50 || e.MinLimit() != 50 {
		t.Fatal("element without ranges must use the default limit")
	}
}

func TestSegmentedLimitsCSVRoundTrip(t *testing.T) {
	db := NewDatabase(OuluOrigin)
	e := attrElement(t, db)
	want := []SpeedLimitRange{
		{FromM: 0, ToM: 40, Kmh: 60},
		{FromM: 40, ToM: 100, Kmh: 30},
	}
	if err := db.SetSpeedLimits(e.ID, want); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back := NewDatabase(OuluOrigin)
	if err := back.ReadCSV(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	got := back.Element(e.ID).Limits
	if len(got) != len(want) {
		t.Fatalf("ranges = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Kmh != want[i].Kmh ||
			!almostRange(got[i].FromM, want[i].FromM) ||
			!almostRange(got[i].ToM, want[i].ToM) {
			t.Fatalf("range %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if back.Element(e.ID).MinLimit() != 30 {
		t.Fatal("reloaded MinLimit wrong")
	}
}

func almostRange(a, b float64) bool { return a-b < 0.05 && b-a < 0.05 }

func TestBadSpeedRangeCSVRejected(t *testing.T) {
	db := NewDatabase(OuluOrigin)
	in := "E,1,1,0,40,street,25.47 65.01;25.48 65.01,banana\n"
	if err := db.ReadCSV(strings.NewReader(in)); err == nil {
		t.Fatal("malformed speed ranges accepted")
	}
}
