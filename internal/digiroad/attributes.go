package digiroad

import (
	"fmt"
	"sort"
)

// SpeedLimitRange is one piece of a segmented line-like speed-limit
// attribute: the limit applies from FromM to ToM metres along the
// element's digitization direction. Digiroad describes road addresses
// and speed restrictions this way (paper §III).
type SpeedLimitRange struct {
	FromM float64
	ToM   float64
	Kmh   float64
}

// Validate checks a range against the element length.
func (r SpeedLimitRange) Validate(length float64) error {
	if r.FromM < 0 || r.ToM > length+0.01 || r.FromM >= r.ToM {
		return fmt.Errorf("digiroad: speed range [%.1f, %.1f] invalid for %.1f m element",
			r.FromM, r.ToM, length)
	}
	if r.Kmh <= 0 || r.Kmh > 130 {
		return fmt.Errorf("digiroad: speed limit %.1f km/h out of range", r.Kmh)
	}
	return nil
}

// SetSpeedLimits attaches segmented limits to an element, replacing any
// previous ranges. Ranges must be valid and non-overlapping; they need
// not cover the whole element (uncovered parts fall back to the
// element-level SpeedLimitKmh).
func (db *Database) SetSpeedLimits(elementID int, ranges []SpeedLimitRange) error {
	e := db.Element(elementID)
	if e == nil {
		return fmt.Errorf("digiroad: no element %d", elementID)
	}
	length := e.Length()
	sorted := append([]SpeedLimitRange(nil), ranges...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].FromM < sorted[j].FromM })
	for i, r := range sorted {
		if err := r.Validate(length); err != nil {
			return err
		}
		if i > 0 && r.FromM < sorted[i-1].ToM-0.01 {
			return fmt.Errorf("digiroad: speed ranges overlap at %.1f m", r.FromM)
		}
	}
	e.Limits = sorted
	return nil
}

// LimitAt returns the speed limit at the given distance along the
// element's digitization direction, falling back to the element-level
// limit (or 0 when none is recorded).
func (e *TrafficElement) LimitAt(alongM float64) float64 {
	for _, r := range e.Limits {
		if alongM >= r.FromM && alongM < r.ToM {
			return r.Kmh
		}
	}
	return e.SpeedLimitKmh
}

// MinLimit returns the most restrictive limit anywhere on the element,
// the value the road graph uses for a merged edge.
func (e *TrafficElement) MinLimit() float64 {
	min := e.SpeedLimitKmh
	covered := 0.0
	for _, r := range e.Limits {
		if min == 0 || (r.Kmh > 0 && r.Kmh < min) {
			min = r.Kmh
		}
		covered += r.ToM - r.FromM
	}
	// If the ranges cover the whole element, the element-level default
	// never applies; recompute over ranges only.
	if len(e.Limits) > 0 && covered >= e.Length()-0.02 {
		min = e.Limits[0].Kmh
		for _, r := range e.Limits[1:] {
			if r.Kmh < min {
				min = r.Kmh
			}
		}
	}
	return min
}
