package digiroad

import (
	"strings"
	"testing"
)

// FuzzReadCSV: the road-database parser must reject arbitrary input
// with an error, never a panic, and never store degenerate elements.
func FuzzReadCSV(f *testing.F) {
	f.Add("E,1,1,0,40,street,25.47 65.01;25.48 65.01\n")
	f.Add("E,1,1,0,40,street,25.47 65.01;25.48 65.01,0.00:10.00:30.0\n")
	f.Add("O,1,1,25.4700000,65.0100000,1\n")
	f.Add("X,unknown\n")
	f.Add("E,1,1,0,40,street,banana\n")
	f.Add("E,1,1,0,40,street,25.47 65.01;25.48 65.01,bad:ranges\n")
	f.Add("")
	f.Add("E,1,1,0,1e309,street,25.47 65.01;25.48 65.01\n")

	f.Fuzz(func(t *testing.T, in string) {
		db := NewDatabase(OuluOrigin)
		if err := db.ReadCSV(strings.NewReader(in)); err != nil {
			return
		}
		for _, e := range db.Elements() {
			if len(e.Geom) < 2 {
				t.Fatalf("accepted degenerate element %d", e.ID)
			}
		}
	})
}
