package digiroad

import (
	"encoding/json"
	"io"
)

// GeoJSON export: the road database as a FeatureCollection of WGS84
// LineStrings (traffic elements) and Points (transport-system objects),
// loadable by QGIS — the paper's visualisation tool — or any web map.

type geoJSONFeature struct {
	Type       string         `json:"type"`
	Geometry   geoJSONGeom    `json:"geometry"`
	Properties map[string]any `json:"properties"`
}

type geoJSONGeom struct {
	Type        string `json:"type"`
	Coordinates any    `json:"coordinates"`
}

type geoJSONCollection struct {
	Type     string           `json:"type"`
	Features []geoJSONFeature `json:"features"`
}

// WriteGeoJSON serialises the database as a GeoJSON FeatureCollection.
func (db *Database) WriteGeoJSON(w io.Writer) error {
	fc := geoJSONCollection{Type: "FeatureCollection"}
	for _, e := range db.Elements() {
		coords := make([][2]float64, len(e.Geom))
		for i, xy := range e.Geom {
			p := db.Proj.ToPoint(xy)
			coords[i] = [2]float64{p.Lon, p.Lat}
		}
		props := map[string]any{
			"element_id":      e.ID,
			"class":           e.Class.String(),
			"flow":            e.Flow.String(),
			"speed_limit_kmh": e.SpeedLimitKmh,
		}
		if e.Name != "" {
			props["name"] = e.Name
		}
		if len(e.Limits) > 0 {
			props["segmented_limits"] = e.Limits
		}
		fc.Features = append(fc.Features, geoJSONFeature{
			Type:       "Feature",
			Geometry:   geoJSONGeom{Type: "LineString", Coordinates: coords},
			Properties: props,
		})
	}
	for _, o := range db.Objects() {
		p := db.Proj.ToPoint(o.Pos)
		fc.Features = append(fc.Features, geoJSONFeature{
			Type: "Feature",
			Geometry: geoJSONGeom{
				Type:        "Point",
				Coordinates: [2]float64{p.Lon, p.Lat},
			},
			Properties: map[string]any{
				"object_id":  o.ID,
				"kind":       o.Kind.String(),
				"element_id": o.ElementID,
			},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(fc)
}
