package digiroad

import (
	"math/rand"
	"strconv"

	"repro/internal/geo"
)

// OuluOrigin is the projection origin for the synthetic city: the
// approximate centre of downtown Oulu used throughout the reproduction.
var OuluOrigin = geo.Point{Lon: 25.47, Lat: 65.01}

// SynthConfig parameterises the synthetic city generator.
type SynthConfig struct {
	// Seed drives all randomised placement; the same seed always yields
	// the same city.
	Seed int64
	// BlockMeters is the street-grid block size; the default 200 m
	// matches the paper's grid-cell dimension so features and cells
	// align naturally.
	BlockMeters float64
}

func (c SynthConfig) withDefaults() SynthConfig {
	if c.BlockMeters <= 0 {
		c.BlockMeters = 200
	}
	return c
}

// City is a generated downtown-Oulu-like road network with the three
// named origin/destination gate roads of the paper (T, S, L) and the
// analysis areas.
type City struct {
	DB *Database

	// GateT, GateS and GateL are the centre lines of the three gate
	// road segments at key enter/exit points of the downtown area
	// (paper §IV-D): T to the south, S to the east, L to the northwest.
	GateT geo.Polyline
	GateS geo.Polyline
	GateL geo.Polyline

	// Hotspots are crowded pedestrian areas (paper §VI, the WiFi
	// study of Kostakos et al. [29]): traffic through them stops for
	// pedestrians far more often, independent of static map features.
	Hotspots []Hotspot

	// CentralArea is the rectangle transitions must pass through
	// (the "city centre" filter of Table 3).
	CentralArea geo.Rect
	// StudyArea is the rectangle over which features are tallied and
	// the 200 m grid analysis runs ({67,48,293,271} in the paper).
	StudyArea geo.Rect
}

// Hotspot is a crowded pedestrian area.
type Hotspot struct {
	Center geo.XY
	Radius float64
}

// Contains reports whether p lies inside the hotspot.
func (h Hotspot) Contains(p geo.XY) bool { return h.Center.Dist(p) <= h.Radius }

// InHotspot reports whether p lies in any of the city's hotspots.
func (c *City) InHotspot(p geo.XY) bool {
	for _, h := range c.Hotspots {
		if h.Contains(p) {
			return true
		}
	}
	return false
}

// Gate returns the named gate polyline ("T", "S" or "L"), or nil.
func (c *City) Gate(name string) geo.Polyline {
	switch name {
	case "T":
		return c.GateT
	case "S":
		return c.GateS
	case "L":
		return c.GateL
	}
	return nil
}

// SynthesizeOulu builds the synthetic city. The layout mirrors the
// paper's setting:
//
//   - a rectangular downtown street grid (block size cfg.BlockMeters)
//     covering roughly 3 km × 2 km, with a denser feature load (traffic
//     lights, pedestrian crossings) in the eastern CBD;
//   - a south arterial leading to gate T, an east arterial to gate S,
//     and a northwest arterial to gate L;
//   - dead-end stubs on the grid fringe (the paper observes reduced
//     speeds near dead-end areas);
//   - one-way pairs in the CBD to exercise flow-direction handling.
//
// S–T transitions must cross the feature-dense east core while L–T
// transitions can use the sparse west side, reproducing the paper's
// Table 4 shape (higher low-speed share on S-T/T-S).
func SynthesizeOulu(cfg SynthConfig) *City {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	db := NewDatabase(OuluOrigin)
	b := &cityBuilder{db: db, rng: rng, block: cfg.BlockMeters}

	b.buildGrid()
	b.buildArterials()
	b.buildStubs()
	b.placeTrafficLights()
	b.placeBusStops()
	b.placePedestrianCrossings()

	s := cfg.BlockMeters / 200 // scale relative to the nominal 200 m block
	return &City{
		DB:    db,
		GateT: b.gateT,
		GateS: b.gateS,
		GateL: b.gateL,
		// Crowded areas sit on the eastern main-street corridor that
		// S-T/T-S transitions traverse; the west side has none.
		Hotspots: []Hotspot{
			// Clear of the x=0 collector so T-L/L-T runs skip them.
			{Center: geo.XY{X: 400 * s, Y: 0}, Radius: 300 * s},
			{Center: geo.XY{X: 900 * s, Y: -100 * s}, Radius: 260 * s},
		},
		CentralArea: geo.Rect{MinX: -1100 * s, MinY: -900 * s, MaxX: 1100 * s, MaxY: 900 * s},
		StudyArea:   geo.Rect{MinX: -1600 * s, MinY: -1300 * s, MaxX: 1700 * s, MaxY: 1300 * s},
	}
}

type cityBuilder struct {
	db    *Database
	rng   *rand.Rand
	block float64

	gateT, gateS, gateL geo.Polyline
}

// grid extents in blocks: x spans [-7,7], y spans [-5,5].
const (
	gridNX = 7
	gridNY = 5
)

func (b *cityBuilder) xAt(i int) float64 { return float64(i) * b.block }
func (b *cityBuilder) yAt(j int) float64 { return float64(j) * b.block }

// isCBD reports whether the grid node (i,j) lies in the dense eastern
// core where most traffic lights and crossings live.
func isCBD(i, j int) bool { return i >= -1 && i <= 4 && j >= -2 && j <= 2 }

// arterialCorners are the grid nodes the three arterials attach to;
// fringe pruning must never isolate them.
var arterialCorners = [][2]int{{0, -gridNY}, {gridNX, 0}, {-gridNX, gridNY}}

func touchesArterialCorner(i1, j1, i2, j2 int) bool {
	for _, c := range arterialCorners {
		if (i1 == c[0] && j1 == c[1]) || (i2 == c[0] && j2 == c[1]) {
			return true
		}
	}
	return false
}

func (b *cityBuilder) buildGrid() {
	// Horizontal streets.
	for j := -gridNY; j <= gridNY; j++ {
		class, limit := ClassLocal, 40.0
		switch {
		case j == 0:
			class, limit = ClassCollector, 50 // main east-west street
		case j == -3 || j == 3:
			class, limit = ClassCollector, 50
		}
		for i := -gridNX; i < gridNX; i++ {
			// Drop a few fringe segments so the grid is not perfectly
			// regular (creates T-junctions) — but never detach an
			// arterial corner.
			if abs(j) == gridNY && b.rng.Float64() < 0.25 &&
				!touchesArterialCorner(i, j, i+1, j) {
				continue
			}
			flow := FlowBoth
			// One-way pair in the CBD: streets j=1 eastbound, j=-1
			// westbound.
			if isCBD(i, j) && j == 1 {
				flow = FlowForward
			}
			if isCBD(i, j) && j == -1 {
				flow = FlowBackward
			}
			b.addStreet(
				geo.Polyline{{X: b.xAt(i), Y: b.yAt(j)}, {X: b.xAt(i + 1), Y: b.yAt(j)}},
				class, limit, flow, streetName("EW", j),
			)
		}
	}
	// Vertical streets.
	for i := -gridNX; i <= gridNX; i++ {
		class, limit := ClassLocal, 40.0
		if i == 0 || i == -4 || i == 4 {
			class, limit = ClassCollector, 50
		}
		for j := -gridNY; j < gridNY; j++ {
			if abs(i) == gridNX && b.rng.Float64() < 0.25 &&
				!touchesArterialCorner(i, j, i, j+1) {
				continue
			}
			b.addStreet(
				geo.Polyline{{X: b.xAt(i), Y: b.yAt(j)}, {X: b.xAt(i), Y: b.yAt(j + 1)}},
				class, limit, FlowBoth, streetName("NS", i),
			)
		}
	}
}

func (b *cityBuilder) buildArterials() {
	blk := b.block
	// South arterial to gate T: from the grid at (0, -5 blocks) south.
	south := geo.Polyline{
		{X: 0, Y: -5 * blk},
		{X: 0, Y: -5.75 * blk},
		{X: 0, Y: -6.5 * blk},
	}
	b.addStreet(south, ClassArterial, 70, FlowBoth, "Southway")
	b.gateT = geo.Polyline{{X: 0, Y: -5.6 * blk}, {X: 0, Y: -6.4 * blk}}

	// East arterial to gate S: from the grid at (7 blocks, 0) east.
	east := geo.Polyline{
		{X: 7 * blk, Y: 0},
		{X: 7.75 * blk, Y: 0},
		{X: 8.5 * blk, Y: 0},
	}
	b.addStreet(east, ClassArterial, 70, FlowBoth, "Eastway")
	b.gateS = geo.Polyline{{X: 7.6 * blk, Y: 0}, {X: 8.4 * blk, Y: 0}}

	// Northwest arterial to gate L: from the grid corner (-7,5) blocks.
	nw := geo.Polyline{
		{X: -7 * blk, Y: 5 * blk},
		{X: -7.6 * blk, Y: 5.6 * blk},
		{X: -8.2 * blk, Y: 6.2 * blk},
	}
	b.addStreet(nw, ClassArterial, 70, FlowBoth, "Northwestway")
	b.gateL = geo.Polyline{
		{X: -7.45 * blk, Y: 5.45 * blk},
		{X: -8.05 * blk, Y: 6.05 * blk},
	}
}

// buildStubs attaches short dead-end stubs to fringe intersections;
// these create the low-speed dead-end pockets the paper notices in the
// BLUP map (Fig 9).
func (b *cityBuilder) buildStubs() {
	for i := -gridNX + 1; i < gridNX; i += 2 {
		if b.rng.Float64() < 0.5 {
			continue
		}
		// Stub north from the top row.
		from := geo.XY{X: b.xAt(i), Y: b.yAt(gridNY)}
		to := geo.XY{X: b.xAt(i), Y: b.yAt(gridNY) + 0.6*b.block}
		b.addStreet(geo.Polyline{from, to}, ClassLocal, 30, FlowBoth, "Stub-N")
	}
	for j := -gridNY + 1; j < gridNY; j += 2 {
		if b.rng.Float64() < 0.5 {
			continue
		}
		// Stub west from the left column.
		from := geo.XY{X: b.xAt(-gridNX), Y: b.yAt(j)}
		to := geo.XY{X: b.xAt(-gridNX) - 0.6*b.block, Y: b.yAt(j)}
		b.addStreet(geo.Polyline{from, to}, ClassLocal, 30, FlowBoth, "Stub-W")
	}
}

// addStreet stores a street as one or more traffic elements. Segments
// are randomly split into two elements at an intermediate point about
// half the time, so that the map-preparation step has real element
// chains to merge (paper Table 1).
func (b *cityBuilder) addStreet(pl geo.Polyline, class FunctionalClass, limit float64, flow FlowDirection, name string) {
	for i := 1; i < len(pl); i++ {
		a, c := pl[i-1], pl[i]
		if a.Dist(c) > 0.6*b.block && b.rng.Float64() < 0.6 {
			// Split into two chained elements at a mid point.
			t := 0.4 + 0.2*b.rng.Float64()
			mid := a.Lerp(c, t)
			b.mustAdd(geo.Polyline{a, mid}, class, limit, flow, name)
			b.mustAdd(geo.Polyline{mid, c}, class, limit, flow, name)
			if class == ClassLocal && b.rng.Float64() < 0.65 {
				// Dead-end alley off the split point: a T-junction.
				dir := c.Sub(a)
				perp := geo.XY{X: -dir.Y, Y: dir.X}
				if b.rng.Float64() < 0.5 {
					perp = perp.Scale(-1)
				}
				n := perp.Norm()
				if n > 0 {
					end := mid.Add(perp.Scale(0.45 * b.block / n))
					b.mustAdd(geo.Polyline{mid, end}, ClassLocal, 30, FlowBoth, "Alley")
				}
			}
			continue
		}
		b.mustAdd(geo.Polyline{a, c}, class, limit, flow, name)
	}
}

func (b *cityBuilder) mustAdd(g geo.Polyline, class FunctionalClass, limit float64, flow FlowDirection, name string) *TrafficElement {
	e, err := b.db.AddElement(TrafficElement{
		Geom:          g,
		Class:         class,
		Flow:          flow,
		SpeedLimitKmh: limit,
		Name:          name,
	})
	if err != nil {
		// Only possible through a generator bug (degenerate geometry).
		panic(err)
	}
	return e
}

// placeTrafficLights puts signals on CBD intersections and along the
// collector crossings, targeting the paper's ~67 lights in the study
// area.
func (b *cityBuilder) placeTrafficLights() {
	// Candidate intersections in priority order: CBD first, then the
	// collector rows and columns, then remaining main-street crossings.
	var candidates []geo.XY
	seen := map[[2]int]bool{}
	push := func(i, j int) {
		key := [2]int{i, j}
		if seen[key] {
			return
		}
		seen[key] = true
		candidates = append(candidates, geo.V(b.xAt(i), b.yAt(j)))
	}
	// Lights are spread over the whole network so every OD direction
	// meets a similar count; the low-speed difference between
	// directions comes from the pedestrian hotspots, not from signal
	// density (paper section VI).
	// Main east-west street, every other intersection.
	for i := -6; i <= 6; i += 2 {
		push(i, 0)
	}
	// CBD intersections on the even diagonal.
	for i := -1; i <= 4; i++ {
		for j := -2; j <= 2; j++ {
			if (i+j)%2 == 0 {
				push(i, j)
			}
		}
	}
	// Collector rows north and south, every other intersection.
	for i := -6; i <= 6; i += 2 {
		push(i, -3)
		push(i, 3)
	}
	// Collector verticals.
	for _, i := range []int{-4, 0, 4} {
		for j := -gridNY + 1; j < gridNY; j += 2 {
			push(i, j)
		}
	}
	// Remaining main-street and collector-row crossings fill toward
	// the paper's 67-light total.
	for i := -gridNX; i <= gridNX; i++ {
		push(i, 0)
	}
	for i := -gridNX; i <= gridNX; i++ {
		push(i, -3)
		push(i, 3)
	}
	const targetLights = 67
	placed := 0
	// Signals where the arterials meet the grid, always present.
	for _, at := range []geo.XY{
		geo.V(0, -5*b.block),
		geo.V(7*b.block, 0),
		geo.V(-7*b.block, 5*b.block),
	} {
		b.placeObjectNear(TrafficLight, at)
		placed++
	}
	for _, at := range candidates {
		if placed >= targetLights {
			break
		}
		b.placeObjectNear(TrafficLight, at)
		placed++
	}
}

// placeBusStops distributes stops along collector streets, targeting
// the paper's ~48 in the study area.
func (b *cityBuilder) placeBusStops() {
	target := 48
	placed := 0
	// Along the main east-west street and the three collector verticals.
	for i := -gridNX; i < gridNX && placed < target; i++ {
		at := geo.XY{X: b.xAt(i) + 0.45*b.block, Y: 0}
		b.placeObjectNear(BusStop, at)
		placed++
	}
	for _, col := range []int{-4, 0, 4} {
		for j := -gridNY; j < gridNY && placed < target; j += 2 {
			at := geo.XY{X: b.xAt(col), Y: b.yAt(j) + 0.5*b.block}
			b.placeObjectNear(BusStop, at)
			placed++
		}
	}
	for j := -gridNY; j < gridNY && placed < target; j++ {
		at := geo.XY{X: b.xAt(-2), Y: b.yAt(j) + 0.3*b.block}
		b.placeObjectNear(BusStop, at)
		placed++
	}
	// Fill toward the target along the collector rows; NumObjects only
	// grows when a nearby element exists, so recount what actually
	// stuck.
	placed = len(b.db.ObjectsOfKind(BusStop))
	for i := -gridNX; i < gridNX && placed < target; i++ {
		before := b.db.NumObjects()
		b.placeObjectNear(BusStop, geo.XY{X: b.xAt(i) + 0.55*b.block, Y: b.yAt(-3)})
		if b.db.NumObjects() > before {
			placed++
		}
	}
	for i := -gridNX; i < gridNX && placed < target; i++ {
		before := b.db.NumObjects()
		b.placeObjectNear(BusStop, geo.XY{X: b.xAt(i) + 0.55*b.block, Y: b.yAt(3)})
		if b.db.NumObjects() > before {
			placed++
		}
	}
}

// placePedestrianCrossings puts zebra crossings on intersection
// approaches (two per CBD intersection, one elsewhere with some
// probability), targeting the paper's ~293.
func (b *cityBuilder) placePedestrianCrossings() {
	target := 293
	placed := 0
	for j := -gridNY; j <= gridNY && placed < target; j++ {
		for i := -gridNX; i <= gridNX && placed < target; i++ {
			at := geo.V(b.xAt(i), b.yAt(j))
			n := 1
			if isCBD(i, j) {
				n = 3
			} else if b.rng.Float64() < 0.5 {
				n = 2
			}
			for k := 0; k < n && placed < target; k++ {
				off := geo.XY{
					X: at.X + (b.rng.Float64()-0.5)*0.15*b.block,
					Y: at.Y + (b.rng.Float64()-0.5)*0.15*b.block,
				}
				b.placeObjectNear(PedestrianCrossing, off)
				placed++
			}
		}
	}
	// Mid-block crossings on the main street until the target is met.
	for i := -gridNX; i < gridNX && placed < target; i++ {
		at := geo.XY{X: b.xAt(i) + 0.5*b.block, Y: 0}
		b.placeObjectNear(PedestrianCrossing, at)
		placed++
	}
}

// placeObjectNear attaches a point object to the nearest traffic
// element (within half a block); objects with no nearby road are
// dropped, which can only happen on pruned fringe segments.
func (b *cityBuilder) placeObjectNear(kind ObjectKind, at geo.XY) {
	elems := b.db.ElementsNear(at, b.block/2)
	if len(elems) == 0 {
		return
	}
	e := elems[0]
	snapped := e.Geom.Project(at).Point
	b.db.AddObject(PointObject{Kind: kind, Pos: snapped, ElementID: e.ID})
}

func streetName(prefix string, idx int) string {
	return prefix + "-" + strconv.Itoa(idx)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// SnapToNetwork returns the closest position on any traffic element
// within maxDist of p, with the owning element. ok is false when no
// element is near enough.
func (db *Database) SnapToNetwork(p geo.XY, maxDist float64) (geo.XY, *TrafficElement, bool) {
	elems := db.ElementsNear(p, maxDist)
	if len(elems) == 0 {
		return geo.XY{}, nil, false
	}
	e := elems[0]
	return e.Geom.Project(p).Point, e, true
}
