package digiroad

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/geo"
)

func testDB(t *testing.T) *Database {
	t.Helper()
	return NewDatabase(OuluOrigin)
}

func mustAddElement(t *testing.T, db *Database, e TrafficElement) *TrafficElement {
	t.Helper()
	stored, err := db.AddElement(e)
	if err != nil {
		t.Fatalf("AddElement: %v", err)
	}
	return stored
}

func TestAddElementAssignsIDs(t *testing.T) {
	db := testDB(t)
	g := geo.Line(0, 0, 100, 0)
	a := mustAddElement(t, db, TrafficElement{Geom: g})
	b := mustAddElement(t, db, TrafficElement{Geom: g})
	if a.ID == 0 || b.ID == 0 || a.ID == b.ID {
		t.Fatalf("bad auto IDs: %d, %d", a.ID, b.ID)
	}
	if db.Element(a.ID) != a {
		t.Fatal("Element lookup failed")
	}
}

func TestAddElementRejectsDuplicatesAndDegenerate(t *testing.T) {
	db := testDB(t)
	g := geo.Line(0, 0, 100, 0)
	mustAddElement(t, db, TrafficElement{ID: 7, Geom: g})
	if _, err := db.AddElement(TrafficElement{ID: 7, Geom: g}); err == nil {
		t.Fatal("duplicate ID accepted")
	}
	if _, err := db.AddElement(TrafficElement{Geom: geo.Polyline{geo.V(0, 0)}}); err == nil {
		t.Fatal("single-point geometry accepted")
	}
}

func TestExplicitIDAdvancesCounter(t *testing.T) {
	db := testDB(t)
	g := geo.Line(0, 0, 100, 0)
	mustAddElement(t, db, TrafficElement{ID: 100, Geom: g})
	e := mustAddElement(t, db, TrafficElement{Geom: g})
	if e.ID <= 100 {
		t.Fatalf("auto ID %d must be above explicit 100", e.ID)
	}
}

func TestElementsNear(t *testing.T) {
	db := testDB(t)
	near := mustAddElement(t, db, TrafficElement{Geom: geo.Line(0, 0, 100, 0)})
	mustAddElement(t, db, TrafficElement{Geom: geo.Line(0, 500, 100, 500)})
	got := db.ElementsNear(geo.V(50, 10), 50)
	if len(got) != 1 || got[0].ID != near.ID {
		t.Fatalf("ElementsNear = %v", got)
	}
	got = db.ElementsNear(geo.V(50, 250), 300)
	if len(got) != 2 {
		t.Fatalf("wide ElementsNear found %d, want 2", len(got))
	}
	// Must be sorted by distance: the y=500 street is farther.
	if got[0].ID != near.ID {
		t.Fatal("ElementsNear not distance-sorted")
	}
}

func TestIndexRebuildAfterMutation(t *testing.T) {
	db := testDB(t)
	mustAddElement(t, db, TrafficElement{Geom: geo.Line(0, 0, 100, 0)})
	if n := len(db.ElementsNear(geo.V(50, 0), 10)); n != 1 {
		t.Fatalf("first query found %d", n)
	}
	mustAddElement(t, db, TrafficElement{Geom: geo.Line(0, 5, 100, 5)})
	if n := len(db.ElementsNear(geo.V(50, 0), 10)); n != 2 {
		t.Fatalf("query after add found %d, want 2 (index not rebuilt)", n)
	}
}

func TestObjectsQueries(t *testing.T) {
	db := testDB(t)
	e := mustAddElement(t, db, TrafficElement{Geom: geo.Line(0, 0, 200, 0)})
	db.AddObject(PointObject{Kind: TrafficLight, Pos: geo.V(50, 0), ElementID: e.ID})
	db.AddObject(PointObject{Kind: BusStop, Pos: geo.V(150, 0), ElementID: e.ID})
	db.AddObject(PointObject{Kind: PedestrianCrossing, Pos: geo.V(150, 300), ElementID: e.ID})

	if got := db.ObjectsOfKind(TrafficLight); len(got) != 1 || got[0].Kind != TrafficLight {
		t.Fatalf("ObjectsOfKind = %v", got)
	}
	inRect := db.ObjectsInRect(geo.R(0, -10, 200, 10))
	if len(inRect) != 2 {
		t.Fatalf("ObjectsInRect found %d, want 2", len(inRect))
	}
	nearLine := db.ObjectsNearLine(geo.Line(0, 0, 200, 0), 20, 0)
	if len(nearLine) != 2 {
		t.Fatalf("ObjectsNearLine found %d, want 2", len(nearLine))
	}
	onlyBus := db.ObjectsNearLine(geo.Line(0, 0, 200, 0), 20, BusStop)
	if len(onlyBus) != 1 || onlyBus[0].Kind != BusStop {
		t.Fatalf("kind-filtered ObjectsNearLine = %v", onlyBus)
	}
	fc := db.CountFeatures(geo.R(-10, -10, 400, 400))
	if fc.TrafficLights != 1 || fc.BusStops != 1 || fc.PedestrianCrossings != 1 {
		t.Fatalf("CountFeatures = %+v", fc)
	}
}

func TestSynthesizeOuluDeterministic(t *testing.T) {
	a := SynthesizeOulu(SynthConfig{Seed: 5})
	b := SynthesizeOulu(SynthConfig{Seed: 5})
	if a.DB.NumElements() != b.DB.NumElements() || a.DB.NumObjects() != b.DB.NumObjects() {
		t.Fatalf("same seed differs: %d/%d vs %d/%d elements/objects",
			a.DB.NumElements(), a.DB.NumObjects(), b.DB.NumElements(), b.DB.NumObjects())
	}
	ea, eb := a.DB.Elements(), b.DB.Elements()
	for i := range ea {
		if ea[i].ID != eb[i].ID || len(ea[i].Geom) != len(eb[i].Geom) {
			t.Fatalf("element %d differs between runs", i)
		}
	}
}

func TestSynthesizeOuluFeatureTotals(t *testing.T) {
	city := SynthesizeOulu(SynthConfig{Seed: 1})
	fc := city.DB.CountFeatures(city.StudyArea)
	// Paper study-area totals: 67 lights, 48 bus stops, 293 pedestrian
	// crossings. The generator targets these; allow modest slack for
	// objects dropped near pruned fringe segments.
	check := func(name string, got, want int) {
		t.Helper()
		lo := want - want/5
		hi := want + want/10
		if got < lo || got > hi {
			t.Errorf("%s = %d, want within [%d,%d] (paper: %d)", name, got, lo, hi, want)
		}
	}
	check("traffic lights", fc.TrafficLights, 67)
	check("bus stops", fc.BusStops, 48)
	check("pedestrian crossings", fc.PedestrianCrossings, 293)
}

func TestSynthesizeOuluGates(t *testing.T) {
	city := SynthesizeOulu(SynthConfig{Seed: 1})
	for _, name := range []string{"T", "S", "L"} {
		gate := city.Gate(name)
		if len(gate) < 2 {
			t.Fatalf("gate %s missing", name)
		}
		// Every gate must lie on the road network.
		for _, p := range gate {
			if _, _, ok := city.DB.SnapToNetwork(p, 5); !ok {
				t.Errorf("gate %s vertex %v is off the network", name, p)
			}
		}
		// Gates are outside the central area (they are enter/exit
		// points), but inside the study frame's general vicinity.
		mid := gate.PointAt(gate.Length() / 2)
		if city.CentralArea.Contains(mid) {
			t.Errorf("gate %s midpoint %v should be outside the central area", name, mid)
		}
	}
	if city.Gate("X") != nil {
		t.Fatal("unknown gate name must return nil")
	}
}

func TestSynthesizeOuluChains(t *testing.T) {
	// The generator must emit chained elements (shared endpoints with
	// exactly two incident elements) so that map preparation has chains
	// to merge.
	city := SynthesizeOulu(SynthConfig{Seed: 1})
	degree := map[geo.XY]int{}
	for _, e := range city.DB.Elements() {
		degree[e.Geom[0]]++
		degree[e.Geom[len(e.Geom)-1]]++
	}
	twos := 0
	for _, d := range degree {
		if d == 2 {
			twos++
		}
	}
	if twos < 50 {
		t.Fatalf("only %d intermediate endpoints; chain splitting not happening", twos)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	city := SynthesizeOulu(SynthConfig{Seed: 3})
	var buf bytes.Buffer
	if err := city.DB.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	back := NewDatabase(OuluOrigin)
	if err := back.ReadCSV(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if back.NumElements() != city.DB.NumElements() {
		t.Fatalf("element count %d, want %d", back.NumElements(), city.DB.NumElements())
	}
	if back.NumObjects() != city.DB.NumObjects() {
		t.Fatalf("object count %d, want %d", back.NumObjects(), city.DB.NumObjects())
	}
	// Geometry survives the WGS84 round trip to centimetre accuracy.
	orig := city.DB.Elements()
	load := back.Elements()
	for i := range orig {
		if orig[i].ID != load[i].ID || orig[i].Name != load[i].Name ||
			orig[i].Class != load[i].Class || orig[i].Flow != load[i].Flow ||
			orig[i].SpeedLimitKmh != load[i].SpeedLimitKmh {
			t.Fatalf("element %d attributes differ", orig[i].ID)
		}
		for k := range orig[i].Geom {
			if orig[i].Geom[k].Dist(load[i].Geom[k]) > 0.02 {
				t.Fatalf("element %d vertex %d moved %.4f m",
					orig[i].ID, k, orig[i].Geom[k].Dist(load[i].Geom[k]))
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"X,1,2,3\n", // unknown tag
		"E,1,2\n",   // short element record
		"E,a,1,0,40,street,25.4 65.0;25.5 65.0\n", // bad id
		"E,1,1,0,40,street,banana\n",              // bad geometry
		"O,1,1,x,65.0,1\n",                        // bad lon
		"O,1,1\n",                                 // short object record
	}
	for i, in := range cases {
		db := NewDatabase(OuluOrigin)
		if err := db.ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: malformed input accepted", i)
		}
	}
}

func TestEnumStrings(t *testing.T) {
	if ClassArterial.String() != "arterial" || ClassPedestrian.String() != "pedestrian" {
		t.Fatal("FunctionalClass.String broken")
	}
	if FunctionalClass(99).String() == "" {
		t.Fatal("unknown class must still stringify")
	}
	if FlowBoth.String() != "both" || FlowForward.String() != "forward" || FlowBackward.String() != "backward" {
		t.Fatal("FlowDirection.String broken")
	}
	if TrafficLight.String() != "traffic_light" || BusStop.String() != "bus_stop" ||
		PedestrianCrossing.String() != "pedestrian_crossing" {
		t.Fatal("ObjectKind.String broken")
	}
}

func TestSnapToNetwork(t *testing.T) {
	db := testDB(t)
	e := mustAddElement(t, db, TrafficElement{Geom: geo.Line(0, 0, 100, 0)})
	p, elem, ok := db.SnapToNetwork(geo.V(50, 8), 10)
	if !ok || elem.ID != e.ID || p.Dist(geo.V(50, 0)) > 1e-9 {
		t.Fatalf("SnapToNetwork = %v %v %v", p, elem, ok)
	}
	if _, _, ok := db.SnapToNetwork(geo.V(50, 100), 10); ok {
		t.Fatal("snap beyond radius must fail")
	}
}

func TestBoundsAndHotspots(t *testing.T) {
	db := testDB(t)
	if !db.Bounds().IsEmpty() {
		t.Fatal("empty db bounds must be empty")
	}
	mustAddElement(t, db, TrafficElement{Geom: geo.Line(0, 0, 100, 50)})
	b := db.Bounds()
	if b.MinX != 0 || b.MaxX != 100 || b.MaxY != 50 {
		t.Fatalf("bounds = %+v", b)
	}

	city := SynthesizeOulu(SynthConfig{Seed: 1})
	if len(city.Hotspots) == 0 {
		t.Fatal("city must have pedestrian hotspots")
	}
	h := city.Hotspots[0]
	if !h.Contains(h.Center) || h.Contains(geo.V(h.Center.X+h.Radius+1, h.Center.Y)) {
		t.Fatal("Hotspot.Contains broken")
	}
	if !city.InHotspot(h.Center) {
		t.Fatal("InHotspot must find the first hotspot")
	}
	if city.InHotspot(geo.V(-99999, -99999)) {
		t.Fatal("far point must not be in a hotspot")
	}
}

func TestWriteGeoJSON(t *testing.T) {
	db := testDB(t)
	e := mustAddElement(t, db, TrafficElement{
		Geom: geo.Line(0, 0, 100, 0), Class: ClassLocal, SpeedLimitKmh: 40, Name: "Main",
	})
	db.AddObject(PointObject{Kind: TrafficLight, Pos: geo.V(50, 0), ElementID: e.ID})
	var buf bytes.Buffer
	if err := db.WriteGeoJSON(&buf); err != nil {
		t.Fatalf("WriteGeoJSON: %v", err)
	}
	var parsed map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if parsed["type"] != "FeatureCollection" {
		t.Fatalf("type = %v", parsed["type"])
	}
	features := parsed["features"].([]any)
	if len(features) != 2 {
		t.Fatalf("features = %d, want 2", len(features))
	}
	s := buf.String()
	for _, frag := range []string{"LineString", "Point", "traffic_light", "Main", "speed_limit_kmh"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("GeoJSON missing %q", frag)
		}
	}
}
