package cluster

// Cluster throughput benchmark with real OS worker processes.
//
// The container pins GOMAXPROCS=1, so a CPU-bound workload cannot show
// multi-worker speedup; what a cluster buys there is overlap of
// *waiting*. The benchmark therefore models the production shape of
// the paper's ingest — each car's trace must be fetched from a paced
// feed — by charging every car a fixed feed latency (a sleeping fault
// injector on the "simulate" stage, i.e. trace acquisition). A single
// worker pays the feed latency serially, car after car; N workers pay
// it in parallel across shards, which is exactly the scaling the
// coordinator exists to harvest.
//
// Workers are real processes: the benchmark re-executes the test
// binary (TestMain trampoline keyed on CLUSTER_BENCH_SHARD) so each
// worker has its own runtime, GC and HTTP stack, and the partials
// genuinely cross process boundaries over localhost HTTP.

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/runner"
)

// 49 cars hash to a 14/14/11/10 split over 4 shards — close to even,
// so the measured speedup reflects coordination cost rather than an
// unlucky hash. The 200ms feed delay dominates per-car compute
// (~10ms at 4 trips/car), as it does in production trace ingest.
const (
	benchCars      = 49
	benchTrips     = 4
	benchFeedDelay = 200 * time.Millisecond
)

func TestMain(m *testing.M) {
	if os.Getenv("CLUSTER_BENCH_SHARD") != "" {
		runBenchWorker()
		return
	}
	os.Exit(m.Run())
}

// runBenchWorker is the re-executed test binary acting as one cluster
// worker process.
func runBenchWorker() {
	atoi := func(key string) int {
		v, err := strconv.Atoi(os.Getenv(key))
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench worker: bad %s: %v\n", key, err)
			os.Exit(1)
		}
		return v
	}
	shard := atoi("CLUSTER_BENCH_SHARD")
	shards := atoi("CLUSTER_BENCH_SHARDS")
	cars := atoi("CLUSTER_BENCH_CARS")
	delay := time.Duration(atoi("CLUSTER_BENCH_FEED_DELAY_MS")) * time.Millisecond

	cfg := pipelineConfig(cars, obs.NewLineage(nil))
	cfg.Fleet.TripsPerCar = benchTrips
	cfg.Workers = 1 // one paced feed per worker process
	cfg.Faults = runner.FaultFunc(func(car int, stage string) error {
		if stage == "simulate" {
			time.Sleep(delay)
		}
		return nil
	})
	p, err := core.NewPipeline(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench worker: pipeline: %v\n", err)
		os.Exit(1)
	}
	w, err := NewWorker(WorkerConfig{
		Shard: shard, NumShards: shards, Cars: cars,
		Coordinator:    os.Getenv("CLUSTER_BENCH_COORD"),
		Pipeline:       p,
		HeartbeatEvery: 30 * time.Millisecond,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench worker: %v\n", err)
		os.Exit(1)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	if err := w.Run(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "bench worker shard %d: %v\n", shard, err)
		os.Exit(1)
	}
	os.Exit(0)
}

func benchCluster(b *testing.B, shards int) {
	for i := 0; i < b.N; i++ {
		coord, err := NewCoordinator(CoordinatorConfig{
			NumShards: shards,
			PullEvery: 15 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		mux := http.NewServeMux()
		coord.RegisterHandlers(mux)
		srv, err := obs.Serve("127.0.0.1:0", mux)
		if err != nil {
			b.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
		coordDone := make(chan error, 1)
		go func() { coordDone <- coord.Run(ctx) }()

		procs := make([]*exec.Cmd, shards)
		for shard := 0; shard < shards; shard++ {
			cmd := exec.Command(os.Args[0])
			cmd.Env = append(os.Environ(),
				"CLUSTER_BENCH_SHARD="+strconv.Itoa(shard),
				"CLUSTER_BENCH_SHARDS="+strconv.Itoa(shards),
				"CLUSTER_BENCH_CARS="+strconv.Itoa(benchCars),
				"CLUSTER_BENCH_FEED_DELAY_MS="+strconv.Itoa(int(benchFeedDelay.Milliseconds())),
				"CLUSTER_BENCH_COORD=http://"+srv.Addr,
			)
			cmd.Stderr = os.Stderr
			if err := cmd.Start(); err != nil {
				b.Fatal(err)
			}
			procs[shard] = cmd
		}
		for shard, cmd := range procs {
			if err := cmd.Wait(); err != nil {
				b.Fatalf("worker process %d: %v", shard, err)
			}
		}
		if err := <-coordDone; err != nil {
			b.Fatalf("coordinator: %v", err)
		}
		if snap := coord.Snapshot(); !snap.Complete || snap.CarsIngested != benchCars {
			b.Fatalf("cluster did not seal the fleet: complete=%v ingested=%d",
				snap.Complete, snap.CarsIngested)
		}
		cancel()
		srv.Close()
	}
	b.ReportMetric(float64(benchCars*b.N)/b.Elapsed().Seconds(), "cars/s")
}

// BenchmarkClusterWorkers1 is the single-node baseline on the paced
// feed; BenchmarkClusterWorkers4 must beat it ≥2.5× in cars/s.
func BenchmarkClusterWorkers1(b *testing.B) { benchCluster(b, 1) }
func BenchmarkClusterWorkers4(b *testing.B) { benchCluster(b, 4) }
