package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/runner"
)

// lossHarness drives the coordinator's loss accounting directly: an
// injected clock, handler-level register/heartbeat calls, and explicit
// sweep() invocations — no goroutines, no real time.
type lossHarness struct {
	t     *testing.T
	coord *Coordinator
	now   time.Time
}

func newLossHarness(t *testing.T, cfg CoordinatorConfig) *lossHarness {
	t.Helper()
	h := &lossHarness{t: t, now: time.Unix(1000, 0)}
	cfg.Now = func() time.Time { return h.now }
	coord, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h.coord = coord
	return h
}

func (h *lossHarness) post(handler http.HandlerFunc, req any) *httptest.ResponseRecorder {
	h.t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		h.t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	handler(rec, httptest.NewRequest("POST", "/", bytes.NewReader(body)))
	return rec
}

func (h *lossHarness) register(id string, shard int) {
	h.t.Helper()
	rec := h.post(h.coord.handleRegister, registerRequest{
		ID: id, Shard: shard, Shards: h.coord.cfg.NumShards, Addr: "http://unreachable.invalid", Cars: 1,
	})
	if rec.Code != http.StatusOK {
		h.t.Fatalf("register %s: status %d: %s", id, rec.Code, rec.Body.String())
	}
}

func (h *lossHarness) heartbeat(id string) {
	h.t.Helper()
	if rec := h.post(h.coord.handleHeartbeat, heartbeatRequest{ID: id}); rec.Code != http.StatusOK {
		h.t.Fatalf("heartbeat %s: status %d: %s", id, rec.Code, rec.Body.String())
	}
}

// counts reports (cumulative losses, recoveries) under the lock.
func (h *lossHarness) counts() (int, int) {
	h.coord.mu.Lock()
	defer h.coord.mu.Unlock()
	return h.coord.losses, h.coord.recovered
}

// TestCoordinatorLossRecoveredOnReturn is the regression test for the
// loss double-charging bug: a worker that blips out and comes back
// (heartbeat or same-id re-registration) used to stay charged forever,
// so a single flaky worker eventually burned the whole loss budget and
// aborted a healthy cluster with ErrBudgetExceeded.
func TestCoordinatorLossRecoveredOnReturn(t *testing.T) {
	h := newLossHarness(t, CoordinatorConfig{
		NumShards:        1,
		HeartbeatTimeout: time.Second,
		MaxFailures:      1, // budget: 1 outstanding loss
	})
	h.register("flaky", 0)

	// Blip 1: staleness past the timeout charges one loss — within
	// budget, so sweep stays quiet.
	h.now = h.now.Add(2 * time.Second)
	if err := h.coord.sweep(); err != nil {
		t.Fatalf("first loss within budget, sweep = %v", err)
	}

	// The worker comes back via heartbeat, then blips again. Pre-fix
	// this second sweep counted losses=2 > budget 1 and aborted.
	h.heartbeat("flaky")
	h.now = h.now.Add(2 * time.Second)
	if err := h.coord.sweep(); err != nil {
		t.Fatalf("recovered loss must not stay charged, sweep = %v", err)
	}

	// Same dance via re-registration under the same id.
	h.register("flaky", 0)
	h.now = h.now.Add(2 * time.Second)
	if err := h.coord.sweep(); err != nil {
		t.Fatalf("re-registered loss must not stay charged, sweep = %v", err)
	}

	// Every transition is still on the books: the cumulative counters
	// (and the cluster_worker_losses_total metric behind them) keep all
	// three losses; only the budget charge was released twice.
	if losses, recovered := h.counts(); losses != 3 || recovered != 2 {
		t.Fatalf("losses = %d recovered = %d, want 3 and 2", losses, recovered)
	}

	// The lineage row drops only the outstanding loss, so worker
	// conservation (in = out + dropped) holds without double counting:
	// two registrations (the heartbeat return is not one), one worker
	// currently lost. Pre-fix this row underflowed Out once cumulative
	// losses outgrew registrations.
	h.coord.mu.Lock()
	row := h.coord.clusterRowLocked()
	h.coord.mu.Unlock()
	if row.In != 2 || row.Out != 1 || row.Dropped != 1 {
		t.Fatalf("cluster row = in %d out %d dropped %d, want 2/1/1", row.In, row.Out, row.Dropped)
	}
}

// TestCoordinatorLossReplacementStaysCharged pins the other side of the
// contract: a NEW worker taking over the shard does not acquit the old
// one — the original really died, its loss stays outstanding, and a
// further loss exceeds the budget.
func TestCoordinatorLossReplacementStaysCharged(t *testing.T) {
	h := newLossHarness(t, CoordinatorConfig{
		NumShards:        1,
		HeartbeatTimeout: time.Second,
		MaxFailures:      1,
	})
	h.register("doomed", 0)
	h.now = h.now.Add(2 * time.Second)
	if err := h.coord.sweep(); err != nil {
		t.Fatalf("first loss within budget, sweep = %v", err)
	}

	h.register("replacement", 0) // different id: no recovery credit
	if losses, recovered := h.counts(); losses != 1 || recovered != 0 {
		t.Fatalf("losses = %d recovered = %d, want 1 and 0 after replacement", losses, recovered)
	}

	h.now = h.now.Add(2 * time.Second)
	err := h.coord.sweep()
	if !errors.Is(err, runner.ErrBudgetExceeded) {
		t.Fatalf("second outstanding loss must exceed the budget, sweep = %v", err)
	}
}
