// Package cluster scales the pipeline + serving stack across
// processes: N workers each run the full pipeline and an aggregation
// sink over a deterministic shard of the fleet (hash(car) mod N), and
// one coordinator pulls their per-epoch partial snapshots over HTTP,
// merges them with sink.MergeSnapshots into a global serving snapshot,
// and exposes the existing /v1 query API on the merged view.
//
// The paper's pipeline is embarrassingly parallel across cars and the
// sink was built mergeable from the start (Welford moments, grid
// aggregates, frozen histograms with layout stamps); this package is
// only the coordination layer on top of that algebra:
//
//   - shard assignment is pure arithmetic (ShardOf), so any process
//     can recompute which worker owns a car without a directory;
//   - snapshots travel in the versioned TAXISNPB wire format, wrapped
//     in a TAXIPART envelope carrying the worker identity, shard and
//     the worker's lineage table;
//   - the coordinator rebuilds the merged view from the latest partial
//     of every shard on each change — at-most-once per (worker, epoch)
//     by construction: a retried or re-pulled partial replaces its
//     shard slot instead of folding in twice, and a restarted worker's
//     fresh run replaces the shard wholesale;
//   - worker loss (heartbeat staleness) spends an error budget with
//     runner.Config semantics (MaxFailures / MaxFailureFrac via
//     Config.Budget), mirroring how the in-process fleet runner treats
//     failed cars.
//
// The differential guarantee mirrors the sink's final-snapshot-vs-
// batch test: a cluster run over a split fleet seals a snapshot
// value-identical to the single-node run, with the lineage ledger
// conserved across the worker→coordinator handoff.
package cluster

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/obs"
	"repro/internal/sink"
)

// ShardOf deterministically assigns a car to one of n shards by
// hashing the car id (splitmix64 finalizer — cheap, well-mixed, and
// independent of Go's map hash so every process, worker or
// coordinator, computes the same assignment forever).
func ShardOf(car, n int) int {
	if n <= 1 {
		return 0
	}
	x := uint64(car)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(n))
}

// ShardCars lists the cars of fleet 1..totalCars owned by shard (0 ≤
// shard < n), in ascending car order.
func ShardCars(totalCars, shard, n int) []int {
	var cars []int
	for car := 1; car <= totalCars; car++ {
		if ShardOf(car, n) == shard {
			cars = append(cars, car)
		}
	}
	return cars
}

// Partial is one worker's contribution at one epoch: its sink snapshot
// (the mergeable sufficient statistics) plus its lineage table, tagged
// with the worker identity and shard so the coordinator can slot it.
type Partial struct {
	WorkerID  string
	Shard     int
	NumShards int
	Snapshot  *sink.Snapshot
	Lineage   obs.LineageSnapshot
}

// The TAXIPART envelope: magic, version, worker identity, shard
// coordinates, then a length-prefixed TAXISNPB snapshot and a
// length-prefixed JSON lineage table. Snapshot bytes go through the
// strict sink decoder, so every structural guarantee of that format
// (typed version errors, histogram layout stamps) holds for the
// envelope too.
var partialMagic = [8]byte{'T', 'A', 'X', 'I', 'P', 'A', 'R', 'T'}

const partialVersion = 1

// ErrBadPartial marks a TAXIPART envelope that fails structural
// validation.
var ErrBadPartial = errors.New("cluster: bad partial-snapshot envelope")

// EncodePartial renders the envelope.
func EncodePartial(p *Partial) ([]byte, error) {
	lin, err := json.Marshal(p.Lineage)
	if err != nil {
		return nil, fmt.Errorf("cluster: encode lineage: %w", err)
	}
	dst := append([]byte(nil), partialMagic[:]...)
	dst = append(dst, partialVersion)
	dst = binary.AppendUvarint(dst, uint64(len(p.WorkerID)))
	dst = append(dst, p.WorkerID...)
	dst = binary.AppendUvarint(dst, uint64(p.Shard))
	dst = binary.AppendUvarint(dst, uint64(p.NumShards))
	snap := sink.EncodeSnapshot(p.Snapshot)
	dst = binary.AppendUvarint(dst, uint64(len(snap)))
	dst = append(dst, snap...)
	dst = binary.AppendUvarint(dst, uint64(len(lin)))
	dst = append(dst, lin...)
	return dst, nil
}

// DecodePartial parses the envelope. Snapshot decoding is strict: an
// unknown TAXISNPB version surfaces as sink.ErrUnknownSnapshotVersion
// (deployment skew), any corruption as an error wrapping ErrBadPartial
// or sink.ErrBadSnapshot.
func DecodePartial(data []byte) (*Partial, error) {
	bad := func(format string, args ...any) (*Partial, error) {
		return nil, fmt.Errorf("%w: %s", ErrBadPartial, fmt.Sprintf(format, args...))
	}
	if len(data) < len(partialMagic)+1 {
		return bad("%d bytes is too short", len(data))
	}
	if [8]byte(data[:8]) != partialMagic {
		return bad("bad magic %q", data[:8])
	}
	if v := data[8]; v != partialVersion {
		return bad("unknown envelope version %d", v)
	}
	off := 9
	uvarint := func(what string) (uint64, bool) {
		v, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return 0, false
		}
		off += n
		if v > uint64(len(data)-off) && what != "" {
			return 0, false
		}
		return v, true
	}
	idLen, ok := uvarint("worker id")
	if !ok {
		return bad("truncated worker id")
	}
	p := &Partial{WorkerID: string(data[off : off+int(idLen)])}
	off += int(idLen)
	shard, ok1 := uvarint("")
	shards, ok2 := uvarint("")
	if !ok1 || !ok2 {
		return bad("truncated shard coordinates")
	}
	p.Shard, p.NumShards = int(shard), int(shards)
	if p.NumShards <= 0 || p.Shard < 0 || p.Shard >= p.NumShards {
		return bad("shard %d of %d out of range", p.Shard, p.NumShards)
	}
	snapLen, ok := uvarint("snapshot")
	if !ok {
		return bad("truncated snapshot")
	}
	snap, err := sink.DecodeSnapshot(data[off : off+int(snapLen)])
	if err != nil {
		return nil, fmt.Errorf("cluster: partial from %s: %w", p.WorkerID, err)
	}
	p.Snapshot = snap
	off += int(snapLen)
	linLen, ok := uvarint("lineage")
	if !ok {
		return bad("truncated lineage")
	}
	if err := json.Unmarshal(data[off:off+int(linLen)], &p.Lineage); err != nil {
		return bad("lineage: %v", err)
	}
	off += int(linLen)
	if off != len(data) {
		return bad("%d trailing bytes", len(data)-off)
	}
	return p, nil
}

// --- protocol bodies (worker ↔ coordinator, JSON over HTTP) -----------------

type registerRequest struct {
	ID     string `json:"id"`
	Shard  int    `json:"shard"`
	Shards int    `json:"shards"`
	// Addr is the worker's base URL ("http://127.0.0.1:41327"); the
	// coordinator pulls GET {addr}/v1/cluster/partial from it.
	Addr string `json:"addr"`
	Cars int    `json:"cars"`
}

type registerResponse struct {
	OK bool `json:"ok"`
}

type heartbeatRequest struct {
	ID     string `json:"id"`
	Epoch  uint64 `json:"epoch"`
	Sealed bool   `json:"sealed"`
}

type heartbeatResponse struct {
	// MergedEpoch is the worker's own snapshot epoch last folded into
	// the coordinator's merged view — the worker may exit once its
	// sealed epoch is covered.
	MergedEpoch uint64 `json:"merged_epoch"`
}

type drainRequest struct {
	ID string `json:"id"`
}

// WorkerHealth is the coordinator's per-worker admin view, served by
// GET /v1/cluster/workers and folded into the coordinator's /v1/healthz.
type WorkerHealth struct {
	ID             string  `json:"id"`
	Shard          int     `json:"shard"`
	Addr           string  `json:"addr"`
	Epoch          uint64  `json:"epoch"`
	LastMergeEpoch uint64  `json:"last_merge_epoch"`
	StalenessS     float64 `json:"staleness_s"`
	Sealed         bool    `json:"sealed"`
	Lost           bool    `json:"lost"`
	Drained        bool    `json:"drained"`
}
