package cluster

import (
	"math"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/predict"
	"repro/internal/sink"
)

// gateMidpoints maps each OD gate name to the midpoint of its road —
// the natural query coordinates for gate-to-gate predictions.
func gateMidpoints(p *core.Pipeline) map[string]geo.XY {
	mid := func(pl geo.Polyline) geo.XY { return pl[len(pl)/2] }
	return map[string]geo.XY{
		"T": mid(p.City.GateT),
		"S": mid(p.City.GateS),
		"L": mid(p.City.GateL),
	}
}

// assertServingEquivalent is the prediction-layer differential gate:
// the two snapshots must be indistinguishable through /v1/predict and
// /v1/anomalies, not just through the raw aggregates. Predictions are
// compared for every observed OD direction at several hours, and
// anomaly reports from identically primed detectors must match — with
// the cross check that a detector whose reference is one snapshot sees
// nothing anomalous in the other.
func assertServingEquivalent(t *testing.T, p *core.Pipeline, got, want *sink.Snapshot) {
	t.Helper()
	pr := predict.NewPredictor(p.Graph, p.Router)
	gates := gateMidpoints(p)

	keys := make([]sink.ODKey, 0, len(want.OD))
	for key := range want.OD {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		return keys[i].From < keys[j].From ||
			(keys[i].From == keys[j].From && keys[i].To < keys[j].To)
	})
	for _, key := range keys {
		for _, hour := range []int{-1, 8, 17} {
			g, gerr := pr.Predict(got, gates[key.From], gates[key.To], hour)
			w, werr := pr.Predict(want, gates[key.From], gates[key.To], hour)
			if (gerr == nil) != (werr == nil) {
				t.Fatalf("predict %s-%s h=%d: errors diverge: %v vs %v", key.From, key.To, hour, gerr, werr)
			}
			if gerr != nil {
				continue
			}
			if g.Edges != w.Edges || g.ObservedEdges != w.ObservedEdges ||
				!feq(g.TravelS, w.TravelS) || !feq(g.FreeFlowS, w.FreeFlowS) ||
				!feq(g.DistanceKm, w.DistanceKm) || !feq(g.GlobalRatio, w.GlobalRatio) {
				t.Fatalf("predict %s-%s h=%d: got %+v want %+v", key.From, key.To, hour, g, w)
			}
		}
	}

	// Identically primed detectors must produce matching reports.
	reportFor := func(snap *sink.Snapshot) *predict.AnomalyReport {
		det := predict.NewAnomalyDetector(predict.AnomalyConfig{})
		for i := 0; i < 3; i++ {
			det.Observe(want)
		}
		return det.Report(snap)
	}
	gr, wr := reportFor(got), reportFor(want)
	if gr.CellsScored != wr.CellsScored || gr.ODsScored != wr.ODsScored ||
		len(gr.Cells) != len(wr.Cells) || len(gr.ODs) != len(wr.ODs) {
		t.Fatalf("anomaly reports diverge: got %+v want %+v", gr, wr)
	}
	for i := range wr.Cells {
		if gr.Cells[i].Cell != wr.Cells[i].Cell || !feq(gr.Cells[i].Z, wr.Cells[i].Z) {
			t.Fatalf("cell anomaly %d: got %+v want %+v", i, gr.Cells[i], wr.Cells[i])
		}
	}
	for i := range wr.ODs {
		if gr.ODs[i].Dir != wr.ODs[i].Dir || !feq(gr.ODs[i].Z, wr.ODs[i].Z) {
			t.Fatalf("od anomaly %d: got %+v want %+v", i, gr.ODs[i], wr.ODs[i])
		}
	}
	// Value-identity means the cluster snapshot looks exactly like more
	// of the same traffic to a single-node-primed reference: no alarms.
	if len(gr.Cells) != 0 || len(gr.ODs) != 0 {
		t.Fatalf("cross-mode report flagged anomalies on equivalent data: %+v", gr)
	}
}

// TestPredictorAccuracy is the end-to-end accuracy gate: predictions
// routed over the learned per-edge profiles must land near the travel
// times the fleet actually recorded per OD direction. The comparison is
// honest — the predictor only sees per-edge (hour-bucketed) pace
// statistics, while the observed means come from whole-trip histograms
// — so the gate bounds the median absolute relative error rather than
// demanding exactness.
func TestPredictorAccuracy(t *testing.T) {
	const cars = 12
	whole, _ := singleNode(t, cars)
	p := testPipeline(t, cars, nil)
	pr := predict.NewPredictor(p.Graph, p.Router)
	gates := gateMidpoints(p)

	var relErrs []float64
	for key, od := range whole.OD {
		observed := od.TravelTimeS.Mean()
		if od.Trips < 3 || observed <= 0 || math.IsNaN(observed) {
			continue
		}
		pred, err := pr.Predict(whole, gates[key.From], gates[key.To], -1)
		if err != nil {
			t.Fatalf("predict %s-%s: %v", key.From, key.To, err)
		}
		if pred.ObservedEdges == 0 {
			t.Fatalf("predict %s-%s used no learned profiles (snapshot has %d)",
				key.From, key.To, len(whole.EdgeProfiles))
		}
		relErrs = append(relErrs, math.Abs(pred.TravelS-observed)/observed)
	}
	if len(relErrs) == 0 {
		t.Fatal("no OD direction had enough trips to gate on")
	}
	sort.Float64s(relErrs)
	median := relErrs[len(relErrs)/2]
	t.Logf("accuracy over %d directions: median abs rel error %.3f, worst %.3f",
		len(relErrs), median, relErrs[len(relErrs)-1])
	if median > 0.5 {
		t.Fatalf("median abs relative error %.3f exceeds the 0.5 gate", median)
	}
}
