package cluster

import (
	"context"
	"errors"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/sink"
	"repro/internal/tracegen"
)

// pipelineConfig is the shared cluster-test fleet: small enough to run
// several pipelines in one test process, busy enough to populate grid
// cells, OD pairs and lineage drops. Every node (reference or worker)
// must construct the same config — only the lineage ledger is its own.
func pipelineConfig(cars int, lin *obs.Lineage) core.Config {
	return core.Config{
		CitySeed: 42,
		Fleet:    tracegen.Config{Seed: 42, Cars: cars, TripsPerCar: 30, GateRunFraction: 0.3},
		Lineage:  lin,
	}
}

// singleNode runs the whole fleet through one pipeline + sink — the
// reference the cluster must reproduce value-for-value.
func singleNode(t *testing.T, cars int) (*sink.Snapshot, obs.LineageSnapshot) {
	t.Helper()
	lin := obs.NewLineage(nil)
	p := testPipeline(t, cars, lin)
	g, err := sink.GridForPipeline(p)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sink.New(sink.Config{Grid: g, PublishEvery: 1, Gates: p.Selector.GateNames()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.RunObserved(context.Background(), s.AbsorbEvent); err != nil {
		t.Fatal(err)
	}
	return s.Seal(), lin.Snapshot(10)
}

func feq(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*scale
}

// assertEquivalent is the differential gate: integers, extrema and
// histogram buckets must match exactly, means and variances to within
// accumulation-order rounding.
func assertEquivalent(t *testing.T, got, want *sink.Snapshot) {
	t.Helper()
	if got.CarsIngested != want.CarsIngested || got.CarsFailed != want.CarsFailed ||
		got.Points != want.Points || got.Complete != want.Complete {
		t.Fatalf("counters: got ingested=%d failed=%d points=%d complete=%v, want %d/%d/%d/%v",
			got.CarsIngested, got.CarsFailed, got.Points, got.Complete,
			want.CarsIngested, want.CarsFailed, want.Points, want.Complete)
	}
	if len(got.Cells) != len(want.Cells) {
		t.Fatalf("cell count %d vs %d", len(got.Cells), len(want.Cells))
	}
	for id, w := range want.Cells {
		g, ok := got.Cells[id]
		if !ok {
			t.Fatalf("cell %v missing from cluster snapshot", id)
		}
		if g.N != w.N || g.MinKmh != w.MinKmh || g.MaxKmh != w.MaxKmh ||
			!feq(g.MeanKmh, w.MeanKmh) || !feq(g.VarKmh, w.VarKmh) {
			t.Fatalf("cell %v: got %+v want %+v", id, g, w)
		}
	}
	if len(got.OD) != len(want.OD) {
		t.Fatalf("OD count %d vs %d", len(got.OD), len(want.OD))
	}
	for key, w := range want.OD {
		g, ok := got.OD[key]
		if !ok {
			t.Fatalf("direction %v missing from cluster snapshot", key)
		}
		if g.Trips != w.Trips || g.Attrs != w.Attrs || !g.TravelTimeS.Equal(w.TravelTimeS) {
			t.Fatalf("direction %v: got %+v want %+v", key, g, w)
		}
		for _, m := range []struct {
			name     string
			got, wnt sink.MetricStats
		}{
			{"dist", g.DistKm, w.DistKm},
			{"fuel", g.FuelMl, w.FuelMl},
			{"low-speed", g.LowSpeedPct, w.LowSpeedPct},
			{"normal-speed", g.NormalSpeedPct, w.NormalSpeedPct},
		} {
			if m.got.N != m.wnt.N || m.got.Min != m.wnt.Min || m.got.Max != m.wnt.Max ||
				!feq(m.got.Mean, m.wnt.Mean) {
				t.Fatalf("direction %v metric %s: got %+v want %+v", key, m.name, m.got, m.wnt)
			}
		}
	}
}

// assertLineageConserved checks conservation survived the handoff and
// the merged stage totals equal the single-node ledger row for row.
func assertLineageConserved(t *testing.T, got, want obs.LineageSnapshot) {
	t.Helper()
	if !got.Conserved {
		t.Fatalf("merged lineage violates conservation: %+v", got)
	}
	byName := map[string]obs.StageSnapshot{}
	for _, st := range got.Stages {
		byName[st.Stage] = st
	}
	for _, w := range want.Stages {
		g, ok := byName[w.Stage]
		if !ok {
			t.Fatalf("stage %q missing from merged lineage", w.Stage)
		}
		if g.In != w.In || g.Out != w.Out || g.Dropped != w.Dropped {
			t.Fatalf("stage %q: got in/out/dropped %d/%d/%d, want %d/%d/%d",
				w.Stage, g.In, g.Out, g.Dropped, w.In, w.Out, w.Dropped)
		}
		wantReasons := map[string]uint64{}
		for _, r := range w.Reasons {
			wantReasons[r.Reason] = r.N
		}
		for _, r := range g.Reasons {
			if r.N != wantReasons[r.Reason] {
				t.Fatalf("stage %q reason %q: got %d want %d", w.Stage, r.Reason, r.N, wantReasons[r.Reason])
			}
		}
	}
}

// testCoordinator starts a coordinator with its control endpoints on a
// real localhost listener and its pull loop running.
func testCoordinator(t *testing.T, cfg CoordinatorConfig) (*Coordinator, string, <-chan error) {
	t.Helper()
	coord, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	coord.RegisterHandlers(mux)
	srv, err := obs.Serve("127.0.0.1:0", mux)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	t.Cleanup(cancel)
	done := make(chan error, 1)
	go func() { done <- coord.Run(ctx) }()
	return coord, "http://" + srv.Addr, done
}

func startWorker(t *testing.T, ctx context.Context, cfg WorkerConfig) (*Worker, <-chan error) {
	t.Helper()
	w, err := NewWorker(cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- w.Run(ctx) }()
	return w, done
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestClusterMatchesSingleNode is the ordered differential gate: three
// workers over a 3-way split fleet, coordinated over real localhost
// HTTP, must seal a snapshot value-identical to the single-node run
// with the lineage ledger conserved across the handoff.
func TestClusterMatchesSingleNode(t *testing.T) {
	const cars, shards = 12, 3
	whole, refTable := singleNode(t, cars)

	coord, url, coordDone := testCoordinator(t, CoordinatorConfig{
		NumShards: shards,
		PullEvery: 10 * time.Millisecond,
	})

	ctx := context.Background()
	var refP *core.Pipeline
	var done []<-chan error
	for shard := 0; shard < shards; shard++ {
		p := testPipeline(t, cars, obs.NewLineage(nil))
		if refP == nil {
			refP = p
		}
		_, ch := startWorker(t, ctx, WorkerConfig{
			Shard: shard, NumShards: shards, Cars: cars,
			Coordinator:    url,
			Pipeline:       p,
			HeartbeatEvery: 25 * time.Millisecond,
		})
		done = append(done, ch)
	}
	for i, ch := range done {
		if err := <-ch; err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if err := <-coordDone; err != nil {
		t.Fatalf("coordinator: %v", err)
	}

	assertEquivalent(t, coord.Snapshot(), whole)
	assertLineageConserved(t, coord.LineageSnapshot(), refTable)
	// The merged view must also serve identically through the prediction
	// layer: same /v1/predict answers, same (empty) anomaly reports.
	assertServingEquivalent(t, refP, coord.Snapshot(), whole)

	// Workers drained deliberately; none may be charged as lost.
	for _, w := range coord.WorkerHealth() {
		if w.Lost || !w.Drained {
			t.Fatalf("worker %s: lost=%v drained=%v after clean finish", w.ID, w.Lost, w.Drained)
		}
		if w.LastMergeEpoch == 0 {
			t.Fatalf("worker %s merged nothing", w.ID)
		}
	}
}

// TestClusterSurvivesWorkerRestart injects the fault the error budget
// exists for: a worker dies mid-shard after some of its partials were
// already merged, the coordinator detects the loss via heartbeat
// staleness and charges the budget, and a replacement re-registers the
// shard and reruns it. The sealed result must still be value-identical
// to the single-node run — the merge-from-scratch rebuild makes the
// dead worker's half-finished contribution vanish instead of
// double-counting.
func TestClusterSurvivesWorkerRestart(t *testing.T) {
	const cars, shards = 12, 2
	whole, refTable := singleNode(t, cars)

	coord, url, coordDone := testCoordinator(t, CoordinatorConfig{
		NumShards:        shards,
		PullEvery:        10 * time.Millisecond,
		HeartbeatTimeout: 300 * time.Millisecond,
		MaxFailures:      1,
	})

	// The doomed worker owns shard 1, paced so it cannot finish before
	// the kill: every stage entry costs 25ms.
	slowCfg := pipelineConfig(cars, obs.NewLineage(nil))
	slowCfg.Faults = runner.FaultFunc(func(car int, stage string) error {
		time.Sleep(25 * time.Millisecond)
		return nil
	})
	slowP, err := core.NewPipeline(slowCfg)
	if err != nil {
		t.Fatal(err)
	}
	doomedCtx, kill := context.WithCancel(context.Background())
	defer kill()
	_, doomedDone := startWorker(t, doomedCtx, WorkerConfig{
		ID: "doomed", Shard: 1, NumShards: shards, Cars: cars,
		Coordinator:    url,
		Pipeline:       slowP,
		HeartbeatEvery: 25 * time.Millisecond,
	})

	// Let the coordinator merge some of the doomed worker's partial
	// progress first — the restart must erase it, not add to it.
	waitFor(t, 30*time.Second, "first merge from doomed worker", func() bool {
		for _, w := range coord.WorkerHealth() {
			if w.ID == "doomed" && w.LastMergeEpoch >= 1 {
				return true
			}
		}
		return false
	})
	kill()
	if err := <-doomedDone; err == nil {
		t.Fatal("killed worker reported success")
	}
	waitFor(t, 30*time.Second, "loss detection", func() bool {
		for _, w := range coord.WorkerHealth() {
			if w.ID == "doomed" && w.Lost {
				return true
			}
		}
		return false
	})

	// Replacement for shard 1 plus the regular shard-0 worker.
	ctx := context.Background()
	var done []<-chan error
	for _, wc := range []WorkerConfig{
		{ID: "worker-0", Shard: 0, NumShards: shards, Cars: cars},
		{ID: "doomed-replacement", Shard: 1, NumShards: shards, Cars: cars},
	} {
		wc.Coordinator = url
		wc.Pipeline = testPipeline(t, cars, obs.NewLineage(nil))
		wc.HeartbeatEvery = 25 * time.Millisecond
		_, ch := startWorker(t, ctx, wc)
		done = append(done, ch)
	}
	for i, ch := range done {
		if err := <-ch; err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if err := <-coordDone; err != nil {
		t.Fatalf("coordinator: %v", err)
	}

	assertEquivalent(t, coord.Snapshot(), whole)
	assertLineageConserved(t, coord.LineageSnapshot(), refTable)

	// The loss is on the books: the cluster lineage row accounts the
	// dead registration, and conservation still holds with it.
	lin := coord.LineageSnapshot()
	var clusterRow *obs.StageSnapshot
	for i := range lin.Stages {
		if lin.Stages[i].Stage == "cluster" {
			clusterRow = &lin.Stages[i]
		}
	}
	if clusterRow == nil {
		t.Fatal("merged lineage has no cluster row")
	}
	if clusterRow.In != 3 || clusterRow.Dropped != 1 ||
		len(clusterRow.Reasons) != 1 || clusterRow.Reasons[0].Reason != "worker_lost" {
		t.Fatalf("cluster row %+v, want 3 registrations with 1 worker_lost", clusterRow)
	}
}

// TestClusterLossBudget: with MaxFailures < 0 (abort on first loss,
// runner semantics) a dead worker must abort the coordinator's run
// with the runner's typed budget error.
func TestClusterLossBudget(t *testing.T) {
	const cars = 6
	coord, url, coordDone := testCoordinator(t, CoordinatorConfig{
		NumShards:        1,
		PullEvery:        10 * time.Millisecond,
		HeartbeatTimeout: 150 * time.Millisecond,
		MaxFailures:      -1,
	})

	slowCfg := pipelineConfig(cars, obs.NewLineage(nil))
	slowCfg.Faults = runner.FaultFunc(func(car int, stage string) error {
		time.Sleep(25 * time.Millisecond)
		return nil
	})
	slowP, err := core.NewPipeline(slowCfg)
	if err != nil {
		t.Fatal(err)
	}
	doomedCtx, kill := context.WithCancel(context.Background())
	defer kill()
	_, doomedDone := startWorker(t, doomedCtx, WorkerConfig{
		ID: "doomed", Shard: 0, NumShards: 1, Cars: cars,
		Coordinator:    url,
		Pipeline:       slowP,
		HeartbeatEvery: 25 * time.Millisecond,
	})
	waitFor(t, 30*time.Second, "registration", func() bool {
		return len(coord.WorkerHealth()) == 1
	})
	kill()
	<-doomedDone

	if err := <-coordDone; !errors.Is(err, runner.ErrBudgetExceeded) {
		t.Fatalf("coordinator error = %v, want ErrBudgetExceeded", err)
	}
	// The view survives the abort (stale-but-correct serving).
	if coord.Snapshot() == nil {
		t.Fatal("serving view lost after budget abort")
	}
}

// TestClusterRejectsGeometrySkew: a worker built for a different shard
// count must be refused at registration (fail fast, the cluster
// analogue of the frame check).
func TestClusterRejectsGeometrySkew(t *testing.T) {
	_, url, _ := testCoordinator(t, CoordinatorConfig{NumShards: 2, PullEvery: 10 * time.Millisecond})
	p := testPipeline(t, 4, nil)
	w, err := NewWorker(WorkerConfig{
		Shard: 0, NumShards: 3, Cars: 4,
		Coordinator: url, Pipeline: p,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := w.Run(ctx); err == nil || !strings.Contains(err.Error(), "rejected by coordinator") {
		t.Fatalf("geometry skew not refused: %v", err)
	}
}
