package cluster

import (
	"errors"
	"testing"

	"repro/internal/sink"
)

// FuzzDecodePartial hammers the TAXIPART envelope decoder with hostile
// bytes: whatever happens, it must return a typed error — never panic,
// never over-allocate on lying length prefixes — and any accepted
// input must re-encode.
func FuzzDecodePartial(f *testing.F) {
	blob, err := EncodePartial(testPartial(f))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add(blob[:len(blob)/2])
	f.Add([]byte("TAXIPART"))
	f.Add([]byte{})
	for i := 0; i < len(blob); i += 97 {
		mut := append([]byte(nil), blob...)
		mut[i] ^= 0xff
		f.Add(mut)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodePartial(data)
		if err != nil {
			if !errors.Is(err, ErrBadPartial) && !errors.Is(err, sink.ErrBadSnapshot) &&
				!errors.Is(err, sink.ErrUnknownSnapshotVersion) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		if p.Snapshot == nil {
			t.Fatal("accepted partial with nil snapshot")
		}
		if _, err := EncodePartial(p); err != nil {
			t.Fatalf("accepted partial does not re-encode: %v", err)
		}
	})
}
