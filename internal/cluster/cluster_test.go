package cluster

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/sink"
)

func TestShardCarsPartition(t *testing.T) {
	const cars, n = 100, 4
	seen := map[int]int{}
	for shard := 0; shard < n; shard++ {
		for _, car := range ShardCars(cars, shard, n) {
			seen[car]++
			if got := ShardOf(car, n); got != shard {
				t.Fatalf("car %d listed under shard %d but ShardOf says %d", car, shard, got)
			}
		}
	}
	if len(seen) != cars {
		t.Fatalf("%d cars assigned, want %d", len(seen), cars)
	}
	for car, times := range seen {
		if times != 1 {
			t.Fatalf("car %d assigned %d times", car, times)
		}
	}
	// Degenerate geometries.
	if got := len(ShardCars(7, 0, 1)); got != 7 {
		t.Fatalf("single shard owns %d of 7 cars", got)
	}
	if ShardOf(42, 0) != 0 || ShardOf(42, -3) != 0 {
		t.Fatal("non-positive shard counts must collapse to shard 0")
	}
}

func TestShardOfSpreads(t *testing.T) {
	// Sequential car ids must not pile onto one shard (the point of
	// hashing instead of car mod N is robustness to id structure, e.g.
	// fleets numbered in blocks).
	const cars, n = 1000, 4
	counts := make([]int, n)
	for car := 1; car <= cars; car++ {
		counts[ShardOf(car, n)]++
	}
	for shard, got := range counts {
		if got < cars/n/2 || got > cars/n*2 {
			t.Fatalf("shard %d owns %d of %d cars — hash is not spreading", shard, got, cars)
		}
	}
}

func testPartial(t testing.TB) *Partial {
	t.Helper()
	g, err := grid.New(geo.R(0, 0, 2000, 2000), 200)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sink.New(sink.Config{Grid: g, PublishEvery: 1, Gates: []string{"T", "S"}})
	if err != nil {
		t.Fatal(err)
	}
	lin := obs.NewLineage(nil)
	st := lin.Stage("clean", "points")
	st.RecordCar(7, 10, 8)
	st.Reason(obs.DropReason("duplicate_ts")).Add(2)
	return &Partial{
		WorkerID:  "worker-1",
		Shard:     1,
		NumShards: 3,
		Snapshot:  s.Seal(),
		Lineage:   lin.Snapshot(5),
	}
}

func TestPartialRoundTrip(t *testing.T) {
	p := testPartial(t)
	blob, err := EncodePartial(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodePartial(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.WorkerID != p.WorkerID || got.Shard != p.Shard || got.NumShards != p.NumShards {
		t.Fatalf("identity mangled: %+v", got)
	}
	if !got.Snapshot.Complete || got.Snapshot.Epoch != p.Snapshot.Epoch {
		t.Fatalf("snapshot mangled: %+v", got.Snapshot)
	}
	if len(got.Lineage.Stages) != 1 || got.Lineage.Stages[0].In != 10 ||
		got.Lineage.Stages[0].Reasons[0].N != 2 || !got.Lineage.Conserved {
		t.Fatalf("lineage mangled: %+v", got.Lineage)
	}
}

func TestDecodePartialRejects(t *testing.T) {
	blob, err := EncodePartial(testPartial(t))
	if err != nil {
		t.Fatal(err)
	}

	// Every truncation must fail typed, never panic.
	for i := 0; i < len(blob); i++ {
		if _, err := DecodePartial(blob[:i]); err == nil {
			t.Fatalf("truncation at %d accepted", i)
		} else if !errors.Is(err, ErrBadPartial) && !errors.Is(err, sink.ErrBadSnapshot) {
			t.Fatalf("truncation at %d: untyped error %v", i, err)
		}
	}
	if _, err := DecodePartial(append(append([]byte(nil), blob...), 0)); !errors.Is(err, ErrBadPartial) {
		t.Fatalf("trailing byte: %v", err)
	}

	bad := append([]byte(nil), blob...)
	bad[0] = 'X'
	if _, err := DecodePartial(bad); !errors.Is(err, ErrBadPartial) ||
		!strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic: %v", err)
	}

	skew := append([]byte(nil), blob...)
	skew[8] = 99
	if _, err := DecodePartial(skew); !errors.Is(err, ErrBadPartial) {
		t.Fatalf("envelope version skew: %v", err)
	}

	// Version skew of the embedded snapshot surfaces as the sink's
	// typed deployment-skew error, distinguishable from corruption.
	verBump := append([]byte(nil), blob...)
	// The embedded TAXISNPB magic locates the snapshot; its version
	// byte follows the 8-byte magic.
	i := strings.Index(string(verBump), "TAXISNPB")
	if i < 0 {
		t.Fatal("embedded snapshot magic not found")
	}
	verBump[i+8] = 99
	if _, err := DecodePartial(verBump); !errors.Is(err, sink.ErrUnknownSnapshotVersion) {
		t.Fatalf("snapshot version skew: %v", err)
	}
}

func TestWorkerConfigValidation(t *testing.T) {
	if _, err := NewWorker(WorkerConfig{}); err == nil {
		t.Fatal("nil pipeline accepted")
	}
	p := testPipeline(t, 4, nil)
	for _, cfg := range []WorkerConfig{
		{Pipeline: p, Shard: 3, NumShards: 3, Coordinator: "http://x"},
		{Pipeline: p, Shard: -1, NumShards: 3, Coordinator: "http://x"},
		{Pipeline: p, Shard: 0, NumShards: 0, Coordinator: "http://x"},
		{Pipeline: p, Shard: 0, NumShards: 3},
	} {
		if _, err := NewWorker(cfg); err == nil {
			t.Fatalf("config %+v accepted", cfg)
		}
	}
}

func TestCoordinatorConfigValidation(t *testing.T) {
	if _, err := NewCoordinator(CoordinatorConfig{}); err == nil {
		t.Fatal("zero shards accepted")
	}
	c, err := NewCoordinator(CoordinatorConfig{NumShards: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Pre-merge serving view: empty, unsealed, conserved.
	if snap := c.Snapshot(); snap == nil || snap.Complete || snap.Points != 0 {
		t.Fatalf("initial view: %+v", snap)
	}
	if lin := c.LineageSnapshot(); !lin.Conserved {
		t.Fatalf("initial lineage: %+v", lin)
	}
}

// testPipeline builds a small deterministic pipeline over the shared
// test city. Per-car traces are a pure function of (fleet seed, car),
// so a shard run and the whole-fleet run agree car by car — the
// property the cluster differential rests on.
func testPipeline(t testing.TB, cars int, lin *obs.Lineage) *core.Pipeline {
	t.Helper()
	p, err := core.NewPipeline(pipelineConfig(cars, lin))
	if err != nil {
		t.Fatal(err)
	}
	return p
}
