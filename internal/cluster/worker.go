package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sink"
)

// WorkerConfig assembles one cluster worker: a full pipeline plus an
// aggregation sink over the worker's deterministic fleet shard, and
// the admin endpoint the coordinator pulls partials from.
type WorkerConfig struct {
	// ID names the worker for registration and lineage (default
	// "worker-<shard>"). A restarted worker may reuse its ID; the
	// coordinator replaces the shard's state wholesale on re-register.
	ID string
	// Shard (0 ≤ Shard < NumShards) selects the cars this worker owns
	// out of fleet 1..Cars via ShardOf.
	Shard     int
	NumShards int
	// Cars is the total fleet size across all workers.
	Cars int
	// Coordinator is the coordinator's base URL ("http://127.0.0.1:8600").
	Coordinator string
	// Addr is the worker's listen address (default "127.0.0.1:0").
	Addr string
	// Pipeline runs the shard. The worker reads its lineage ledger and
	// gate/grid frame from the pipeline's Config, so every worker of a
	// cluster must be built from the same pipeline configuration — the
	// frame check in sink.MergeSnapshots enforces it.
	Pipeline *core.Pipeline
	// PublishEvery is the sink's publish cadence in cars (default 1).
	PublishEvery int
	// TopCars caps the per-car table in exported lineage (default 10).
	TopCars int
	// HeartbeatEvery paces the heartbeat loop (default 250ms).
	HeartbeatEvery time.Duration
	// RegisterTimeout bounds registration retries (default 10s).
	RegisterTimeout time.Duration
	// DrainTimeout bounds how long a sealed worker waits for the
	// coordinator to confirm its final epoch merged (default 30s).
	DrainTimeout time.Duration
	// Mux receives the worker's /v1/cluster/partial endpoint. Nil
	// builds a private mux; pass one to co-host the debug/query API.
	Mux    *http.ServeMux
	Client *http.Client
	Log    *slog.Logger
}

func (c WorkerConfig) withDefaults() (WorkerConfig, error) {
	if c.Pipeline == nil {
		return c, errors.New("cluster: worker needs a pipeline")
	}
	if c.NumShards <= 0 || c.Shard < 0 || c.Shard >= c.NumShards {
		return c, fmt.Errorf("cluster: shard %d of %d out of range", c.Shard, c.NumShards)
	}
	if c.Coordinator == "" {
		return c, errors.New("cluster: worker needs a coordinator URL")
	}
	if c.ID == "" {
		c.ID = fmt.Sprintf("worker-%d", c.Shard)
	}
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.PublishEvery <= 0 {
		c.PublishEvery = 1
	}
	if c.TopCars == 0 {
		c.TopCars = 10
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 250 * time.Millisecond
	}
	if c.RegisterTimeout <= 0 {
		c.RegisterTimeout = 10 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 5 * time.Second}
	}
	if c.Log == nil {
		c.Log = slog.New(discardHandler{})
	}
	return c, nil
}

// Worker runs one shard of the fleet and serves its mergeable partial
// snapshot to the coordinator.
type Worker struct {
	cfg WorkerConfig
	snk *sink.Sink
	srv *obs.DebugServer

	// mergedEpoch caches the coordinator's last heartbeat answer: the
	// highest of this worker's epochs folded into the merged view.
	mergedEpoch atomic.Uint64
}

// NewWorker validates the config and builds the worker's sink on the
// pipeline's frame (grid + gate set), which is what makes partials
// from sibling workers mergeable.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	g, err := sink.GridForPipeline(cfg.Pipeline)
	if err != nil {
		return nil, fmt.Errorf("cluster: worker grid: %w", err)
	}
	snk, err := sink.New(sink.Config{
		Grid:         g,
		PublishEvery: cfg.PublishEvery,
		Gates:        cfg.Pipeline.Selector.GateNames(),
		Metrics:      cfg.Pipeline.Metrics,
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: worker sink: %w", err)
	}
	return &Worker{cfg: cfg, snk: snk}, nil
}

// ID returns the worker's registration name.
func (w *Worker) ID() string { return w.cfg.ID }

// Cars lists the fleet cars this worker owns, ascending.
func (w *Worker) Cars() []int { return ShardCars(w.cfg.Cars, w.cfg.Shard, w.cfg.NumShards) }

// Snapshot implements serve.Source over the worker's own shard, so the
// /v1 query API can be mounted directly on a worker for debugging.
func (w *Worker) Snapshot() *sink.Snapshot { return w.snk.Snapshot() }

// Addr returns the bound listen address once Run has started serving
// ("" before that).
func (w *Worker) Addr() string {
	if w.srv == nil {
		return ""
	}
	return w.srv.Addr
}

// partial captures the worker's current contribution. The sink
// snapshot is an immutable published value and the lineage ledger
// snapshots consistently under its own locks, so the capture needs no
// worker-level coordination; at seal time both are final.
func (w *Worker) partial() *Partial {
	return &Partial{
		WorkerID:  w.cfg.ID,
		Shard:     w.cfg.Shard,
		NumShards: w.cfg.NumShards,
		Snapshot:  w.snk.Snapshot(),
		Lineage:   w.cfg.Pipeline.Config.Lineage.Snapshot(w.cfg.TopCars),
	}
}

func (w *Worker) handlePartial(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(rw, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	b, err := EncodePartial(w.partial())
	if err != nil {
		http.Error(rw, err.Error(), http.StatusInternalServerError)
		return
	}
	rw.Header().Set("Content-Type", "application/octet-stream")
	rw.Write(b)
}

// Run executes the worker lifecycle: serve the partial endpoint,
// register with the coordinator (bounded retries), heartbeat, process
// the shard, seal, wait until the coordinator confirms the sealed
// epoch merged, then drain and shut down. It returns the shard's
// processing error, if any.
func (w *Worker) Run(ctx context.Context) error {
	mux := w.cfg.Mux
	if mux == nil {
		mux = http.NewServeMux()
	}
	mux.HandleFunc("/v1/cluster/partial", w.handlePartial)
	srv, err := obs.Serve(w.cfg.Addr, mux)
	if err != nil {
		return fmt.Errorf("cluster: worker listen: %w", err)
	}
	w.srv = srv
	defer srv.Shutdown(2 * time.Second)

	if err := w.register(ctx); err != nil {
		return err
	}

	hbCtx, stopHB := context.WithCancel(ctx)
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		w.heartbeatLoop(hbCtx)
	}()
	defer func() { stopHB(); <-hbDone }()

	cars := w.Cars()
	w.cfg.Log.Info("cluster worker running shard",
		"worker", w.cfg.ID, "shard", w.cfg.Shard, "of", w.cfg.NumShards, "cars", len(cars))
	_, runErr := w.cfg.Pipeline.RunObservedCars(ctx, cars, w.snk.AbsorbEvent)
	if runErr != nil {
		return fmt.Errorf("cluster: worker %s shard run: %w", w.cfg.ID, runErr)
	}
	final := w.snk.Seal()

	if err := w.awaitMerge(ctx, final.Epoch); err != nil {
		return err
	}
	w.drain(ctx)
	w.cfg.Log.Info("cluster worker drained", "worker", w.cfg.ID, "epoch", final.Epoch)
	return nil
}

// register announces the worker, retrying transport errors and 5xx
// with backoff until RegisterTimeout; a 4xx (shard-count mismatch) is
// a config error and fails fast.
func (w *Worker) register(ctx context.Context) error {
	req := registerRequest{
		ID:     w.cfg.ID,
		Shard:  w.cfg.Shard,
		Shards: w.cfg.NumShards,
		Addr:   "http://" + w.srv.Addr,
		Cars:   w.cfg.Cars,
	}
	deadline := time.Now().Add(w.cfg.RegisterTimeout)
	backoff := 50 * time.Millisecond
	for attempt := 1; ; attempt++ {
		var resp registerResponse
		err := postJSON(ctx, w.cfg.Client, w.cfg.Coordinator+"/v1/cluster/register", req, &resp)
		if err == nil {
			return nil
		}
		var he *httpStatusError
		if errors.As(err, &he) && he.Code >= 400 && he.Code < 500 {
			return fmt.Errorf("cluster: worker %s rejected by coordinator: %w", w.cfg.ID, err)
		}
		if ctx.Err() != nil || time.Now().Add(backoff).After(deadline) {
			return fmt.Errorf("cluster: worker %s register (%d attempts): %w", w.cfg.ID, attempt, err)
		}
		w.cfg.Log.Warn("cluster register retry", "worker", w.cfg.ID, "attempt", attempt, "err", err)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > time.Second {
			backoff = time.Second
		}
	}
}

func (w *Worker) heartbeatLoop(ctx context.Context) {
	tick := time.NewTicker(w.cfg.HeartbeatEvery)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		w.heartbeat(ctx)
	}
}

// heartbeat reports the worker's progress and learns how far the
// coordinator has merged it. Failures are tolerated silently — the
// coordinator's staleness detector is the authority on liveness.
func (w *Worker) heartbeat(ctx context.Context) {
	snap := w.snk.Snapshot()
	req := heartbeatRequest{ID: w.cfg.ID, Epoch: snap.Epoch, Sealed: snap.Complete}
	var resp heartbeatResponse
	if err := postJSON(ctx, w.cfg.Client, w.cfg.Coordinator+"/v1/cluster/heartbeat", req, &resp); err != nil {
		w.cfg.Log.Warn("cluster heartbeat failed", "worker", w.cfg.ID, "err", err)
		return
	}
	if resp.MergedEpoch > w.mergedEpoch.Load() {
		w.mergedEpoch.Store(resp.MergedEpoch)
	}
}

// awaitMerge blocks until the coordinator's merged view covers the
// sealed epoch (learned via heartbeats), so a worker that exits has
// handed off everything it computed.
func (w *Worker) awaitMerge(ctx context.Context, epoch uint64) error {
	deadline := time.NewTimer(w.cfg.DrainTimeout)
	defer deadline.Stop()
	poll := time.NewTicker(w.cfg.HeartbeatEvery / 2)
	defer poll.Stop()
	for w.mergedEpoch.Load() < epoch {
		select {
		case <-ctx.Done():
			return fmt.Errorf("cluster: worker %s interrupted awaiting merge of epoch %d: %w",
				w.cfg.ID, epoch, ctx.Err())
		case <-deadline.C:
			return fmt.Errorf("cluster: worker %s sealed epoch %d not merged within %s (last merged %d)",
				w.cfg.ID, epoch, w.cfg.DrainTimeout, w.mergedEpoch.Load())
		case <-poll.C:
			w.heartbeat(ctx)
		}
	}
	return nil
}

// drain tells the coordinator this worker is leaving deliberately, so
// its disappearance is not charged against the loss budget. Best
// effort: a missed drain only costs budget, never correctness.
func (w *Worker) drain(ctx context.Context) {
	var resp registerResponse
	if err := postJSON(ctx, w.cfg.Client, w.cfg.Coordinator+"/v1/cluster/drain",
		drainRequest{ID: w.cfg.ID}, &resp); err != nil {
		w.cfg.Log.Warn("cluster drain failed", "worker", w.cfg.ID, "err", err)
	}
}

// --- small HTTP/JSON plumbing ----------------------------------------------

// httpStatusError reports a non-2xx response; the code lets callers
// separate config rejections (4xx, fail fast) from server trouble
// (5xx, retryable).
type httpStatusError struct {
	Code int
	Body string
}

func (e *httpStatusError) Error() string {
	return fmt.Sprintf("http %d: %s", e.Code, e.Body)
}

func postJSON(ctx context.Context, client *http.Client, url string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return &httpStatusError{Code: resp.StatusCode, Body: string(bytes.TrimSpace(data))}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// discardHandler is a no-op slog handler (slog.DiscardHandler arrived
// in go1.24; the module targets 1.22).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }
