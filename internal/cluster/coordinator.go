package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/sink"
)

// CoordinatorConfig assembles the merge/serve side of a cluster.
type CoordinatorConfig struct {
	// NumShards fixes the cluster geometry; a worker registering with
	// a different shard count is rejected (409), the cluster analogue
	// of sink.ErrFrameMismatch.
	NumShards int
	// PullEvery paces the partial-pull loop (default 100ms).
	PullEvery time.Duration
	// HeartbeatTimeout is the staleness bound: a worker not heard from
	// (heartbeat or successful pull) for longer is lost (default 2s).
	HeartbeatTimeout time.Duration
	// MaxFailures / MaxFailureFrac budget worker losses with
	// runner.Config semantics, resolved against NumShards via
	// runner.Config.Budget — the same arithmetic the in-process fleet
	// runner applies to failed cars. Zero values tolerate any number
	// of losses (a replacement can always re-register); MaxFailures<0
	// aborts on the first loss.
	MaxFailures    int
	MaxFailureFrac float64
	// TopCars caps the merged lineage's per-car table (default 10).
	TopCars int
	Metrics *obs.Registry
	Log     *slog.Logger
	Client  *http.Client
	// Now is the staleness clock (default time.Now; injectable for
	// tests).
	Now func() time.Time
}

func (c CoordinatorConfig) withDefaults() (CoordinatorConfig, error) {
	if c.NumShards <= 0 {
		return c, fmt.Errorf("cluster: coordinator needs NumShards >= 1, got %d", c.NumShards)
	}
	if c.PullEvery <= 0 {
		c.PullEvery = 100 * time.Millisecond
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 2 * time.Second
	}
	if c.TopCars == 0 {
		c.TopCars = 10
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 5 * time.Second}
	}
	if c.Log == nil {
		c.Log = slog.New(discardHandler{})
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c, nil
}

// workerState is the coordinator's book-keeping for one registration.
type workerState struct {
	id       string
	shard    int
	addr     string
	cars     int
	lastSeen time.Time
	epoch    uint64 // worker-reported current epoch
	sealed   bool   // worker-reported
	merged   uint64 // this worker's epoch last folded into the view
	lost     bool
	drained  bool
}

// shardState holds the latest partial accepted for one shard slot.
type shardState struct {
	owner   string
	epoch   uint64
	snap    *sink.Snapshot
	lineage obs.LineageSnapshot
}

// mergedView is the immutable serving value: the merged snapshot plus
// the merged lineage table, swapped atomically so /v1 readers never
// see a half-merged state.
type mergedView struct {
	snap    *sink.Snapshot
	lineage obs.LineageSnapshot
}

// Coordinator pulls per-epoch partial snapshots from registered
// workers, merges them into the global serving snapshot, and exposes
// the cluster control endpoints. It implements serve.Source, so the
// existing /v1 query API mounts directly on the merged view.
type Coordinator struct {
	cfg CoordinatorConfig

	mu      sync.Mutex
	workers map[string]*workerState
	shards  []shardState
	// losses counts every lost-worker transition; recovered counts the
	// lost workers that came back (heartbeat, or re-registration under
	// the same id). The loss budget is charged the OUTSTANDING losses
	// (losses - recovered): a worker that blips out and returns is not a
	// permanently spent failure, so repeated blips must not accumulate
	// into a spurious budget abort. A superseding registration under a
	// NEW id recovers nothing — the original worker really died.
	losses      int
	recovered   int
	registered  int    // registrations ever accepted
	mergeSeq    uint64 // serving epoch: bumped on every view rebuild
	fatal       error  // merge-algebra violation; Run aborts with it
	sealedShard int    // shards whose accepted partial is sealed

	view atomic.Pointer[mergedView]

	met coordinatorMetrics
}

type coordinatorMetrics struct {
	workers    *obs.Gauge
	losses     *obs.Counter
	merges     *obs.Counter
	pullErrors *obs.Counter
	mergeTime  *obs.Histogram
}

// NewCoordinator builds a coordinator; call RegisterHandlers to mount
// its control endpoints and Run to start the pull/merge loop.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:     cfg,
		workers: map[string]*workerState{},
		shards:  make([]shardState, cfg.NumShards),
		met: coordinatorMetrics{
			workers:    cfg.Metrics.Gauge("cluster_workers"),
			losses:     cfg.Metrics.Counter("cluster_worker_losses_total"),
			merges:     cfg.Metrics.Counter("cluster_merges_total"),
			pullErrors: cfg.Metrics.Counter("cluster_pull_errors_total"),
			mergeTime:  cfg.Metrics.Histogram("cluster_merge_seconds"),
		},
	}
	c.view.Store(&mergedView{snap: &sink.Snapshot{}, lineage: obs.LineageSnapshot{Conserved: true}})
	return c, nil
}

// Snapshot implements serve.Source: the latest merged view. Its Epoch
// is the coordinator's own merge sequence (monotonic even across
// worker restarts, which reset worker-local epochs), so the /v1 ETag
// contract — equal epochs imply equal answers — holds cluster-wide.
func (c *Coordinator) Snapshot() *sink.Snapshot { return c.view.Load().snap }

// LineageSnapshot returns the merged drop-reason ledger: the workers'
// stage rows summed by MergeLineageSnapshots plus the coordinator's
// own "cluster" row accounting workers in = alive/drained + lost.
func (c *Coordinator) LineageSnapshot() obs.LineageSnapshot { return c.view.Load().lineage }

// Sealed reports whether every shard's accepted partial is sealed —
// the merged snapshot is the complete fleet aggregate.
func (c *Coordinator) Sealed() bool { return c.Snapshot().Complete }

// WorkerHealth lists the per-worker admin view, sorted by shard then
// id — the payload behind GET /v1/cluster/workers and the coordinator
// healthz.
func (c *Coordinator) WorkerHealth() []WorkerHealth {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Now()
	out := make([]WorkerHealth, 0, len(c.workers))
	for _, w := range c.workers {
		out = append(out, WorkerHealth{
			ID:             w.id,
			Shard:          w.shard,
			Addr:           w.addr,
			Epoch:          w.epoch,
			LastMergeEpoch: w.merged,
			StalenessS:     now.Sub(w.lastSeen).Seconds(),
			Sealed:         w.sealed,
			Lost:           w.lost,
			Drained:        w.drained,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Shard != out[j].Shard {
			return out[i].Shard < out[j].Shard
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// RegisterHandlers mounts the cluster control endpoints on mux.
func (c *Coordinator) RegisterHandlers(mux *http.ServeMux) {
	mux.HandleFunc("/v1/cluster/register", c.handleRegister)
	mux.HandleFunc("/v1/cluster/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("/v1/cluster/drain", c.handleDrain)
	mux.HandleFunc("/v1/cluster/workers", c.handleWorkers)
}

func decodeBody(rw http.ResponseWriter, r *http.Request, into any) bool {
	if r.Method != http.MethodPost {
		http.Error(rw, "method not allowed", http.StatusMethodNotAllowed)
		return false
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err == nil {
		err = json.Unmarshal(data, into)
	}
	if err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(rw http.ResponseWriter, v any) {
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(v)
}

func (c *Coordinator) handleRegister(rw http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if !decodeBody(rw, r, &req) {
		return
	}
	if req.Shards != c.cfg.NumShards {
		http.Error(rw, fmt.Sprintf("cluster runs %d shards, worker built for %d",
			c.cfg.NumShards, req.Shards), http.StatusConflict)
		return
	}
	if req.Shard < 0 || req.Shard >= c.cfg.NumShards || req.ID == "" {
		http.Error(rw, "bad shard or empty id", http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	// Last registration wins the shard: a replacement (same or new id)
	// supersedes the previous owner, whose later partials are ignored.
	for _, w := range c.workers {
		if w.shard == req.Shard && w.id != req.ID && !w.lost && !w.drained {
			w.drained = true
		}
	}
	// The same worker re-registering after being swept as lost is a
	// recovery: its earlier loss is no longer outstanding.
	if old := c.workers[req.ID]; old != nil && old.lost && !old.drained {
		c.recovered++
	}
	c.workers[req.ID] = &workerState{
		id:       req.ID,
		shard:    req.Shard,
		addr:     req.Addr,
		cars:     req.Cars,
		lastSeen: c.cfg.Now(),
	}
	c.registered++
	c.met.workers.Set(int64(c.liveLocked()))
	c.mu.Unlock()
	c.cfg.Log.Info("cluster worker registered", "worker", req.ID, "shard", req.Shard, "addr", req.Addr)
	writeJSON(rw, registerResponse{OK: true})
}

func (c *Coordinator) handleHeartbeat(rw http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	if !decodeBody(rw, r, &req) {
		return
	}
	c.mu.Lock()
	w, ok := c.workers[req.ID]
	if !ok {
		c.mu.Unlock()
		http.Error(rw, "unknown worker (re-register)", http.StatusNotFound)
		return
	}
	w.lastSeen = c.cfg.Now()
	w.epoch = req.Epoch
	w.sealed = req.Sealed
	if w.lost {
		// A worker presumed dead is talking again: it resumes serving
		// and its loss is no longer outstanding. The cumulative
		// cluster_worker_losses_total metric keeps the transition — only
		// the budget charge is released.
		w.lost = false
		c.recovered++
		c.met.workers.Set(int64(c.liveLocked()))
	}
	merged := w.merged
	c.mu.Unlock()
	writeJSON(rw, heartbeatResponse{MergedEpoch: merged})
}

func (c *Coordinator) handleDrain(rw http.ResponseWriter, r *http.Request) {
	var req drainRequest
	if !decodeBody(rw, r, &req) {
		return
	}
	c.mu.Lock()
	if w, ok := c.workers[req.ID]; ok {
		w.drained = true
		w.lastSeen = c.cfg.Now()
	}
	c.met.workers.Set(int64(c.liveLocked()))
	c.mu.Unlock()
	writeJSON(rw, registerResponse{OK: true})
}

func (c *Coordinator) handleWorkers(rw http.ResponseWriter, r *http.Request) {
	writeJSON(rw, c.WorkerHealth())
}

// liveLocked counts workers currently serving (registered, not lost,
// not drained). Callers hold c.mu.
func (c *Coordinator) liveLocked() int {
	n := 0
	for _, w := range c.workers {
		if !w.lost && !w.drained {
			n++
		}
	}
	return n
}

// Run drives the pull/merge loop until the merged view seals (every
// shard's final partial folded — returns nil), the context ends, or
// the worker-loss budget is spent (returns an error wrapping
// runner.ErrBudgetExceeded). The serving view stays available after
// Run returns.
func (c *Coordinator) Run(ctx context.Context) error {
	tick := time.NewTicker(c.cfg.PullEvery)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
		if err := c.sweep(); err != nil {
			return err
		}
		c.pullAll(ctx)
		c.mu.Lock()
		fatal, sealed := c.fatal, c.sealedShard == c.cfg.NumShards
		c.mu.Unlock()
		if fatal != nil {
			return fatal
		}
		if sealed {
			c.cfg.Log.Info("cluster sealed", "epoch", c.Snapshot().Epoch)
			return nil
		}
	}
}

// sweep detects lost workers by heartbeat staleness and charges them
// to the loss budget. A lost worker's shard keeps its last accepted
// partial, so the serving view degrades to stale-but-correct until a
// replacement re-registers and overwrites the slot.
func (c *Coordinator) sweep() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Now()
	for _, w := range c.workers {
		if w.lost || w.drained {
			continue
		}
		if now.Sub(w.lastSeen) > c.cfg.HeartbeatTimeout {
			w.lost = true
			c.losses++
			c.met.losses.Inc()
			c.met.workers.Set(int64(c.liveLocked()))
			c.cfg.Log.Warn("cluster worker lost", "worker", w.id, "shard", w.shard,
				"staleness", now.Sub(w.lastSeen), "losses", c.losses)
		}
	}
	budget := runner.Config{MaxFailures: c.cfg.MaxFailures, MaxFailureFrac: c.cfg.MaxFailureFrac}.
		Budget(c.cfg.NumShards)
	if outstanding := c.losses - c.recovered; budget >= 0 && outstanding > budget {
		return fmt.Errorf("cluster: %d workers lost (%d in total, %d recovered), budget %d: %w",
			outstanding, c.losses, c.recovered, budget, runner.ErrBudgetExceeded)
	}
	return nil
}

// pullAll fetches partials from every serving worker and folds fresh
// ones into the view.
func (c *Coordinator) pullAll(ctx context.Context) {
	c.mu.Lock()
	targets := make([]*workerState, 0, len(c.workers))
	for _, w := range c.workers {
		if !w.lost && !w.drained {
			targets = append(targets, w)
		}
	}
	c.mu.Unlock()
	for _, w := range targets {
		c.pullOne(ctx, w.id, w.addr)
	}
}

func (c *Coordinator) pullOne(ctx context.Context, id, addr string) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/v1/cluster/partial", nil)
	if err != nil {
		return
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		c.met.pullErrors.Inc()
		return
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<28))
	if err != nil || resp.StatusCode != http.StatusOK {
		c.met.pullErrors.Inc()
		return
	}
	p, err := DecodePartial(data)
	if err != nil {
		c.met.pullErrors.Inc()
		c.cfg.Log.Warn("cluster partial rejected", "worker", id, "err", err)
		return
	}
	c.accept(id, p)
}

// accept folds a pulled partial into the shard table and rebuilds the
// serving view if it changed anything. The view is always rebuilt from
// scratch over the latest partial per shard, which is what makes
// acceptance at-most-once per (worker, epoch): re-pulling the same
// epoch is a no-op, a newer epoch replaces — never double-counts — its
// shard slot, and a restarted worker's fresh run replaces the slot
// wholesale.
func (c *Coordinator) accept(pulledFrom string, p *Partial) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p.NumShards != c.cfg.NumShards || p.Shard < 0 || p.Shard >= c.cfg.NumShards {
		c.cfg.Log.Warn("cluster partial for wrong geometry", "worker", p.WorkerID,
			"shard", p.Shard, "shards", p.NumShards)
		return
	}
	w, ok := c.workers[p.WorkerID]
	if !ok || w.lost || w.drained || p.WorkerID != pulledFrom {
		return // superseded owner; ignore its late partials
	}
	cur := &c.shards[p.Shard]
	if cur.owner == p.WorkerID && cur.epoch == p.Snapshot.Epoch {
		if w.merged < p.Snapshot.Epoch {
			w.merged = p.Snapshot.Epoch
		}
		return // already folded this (worker, epoch)
	}
	cur.owner = p.WorkerID
	cur.epoch = p.Snapshot.Epoch
	cur.snap = p.Snapshot
	cur.lineage = p.Lineage
	if err := c.rebuildLocked(); err != nil {
		// A merge-algebra violation (frame or histogram-layout skew) is
		// a deployment bug, not a transient: poison the run but keep
		// the last good view serving.
		c.fatal = fmt.Errorf("cluster: merging partial from %s: %w", p.WorkerID, err)
		c.cfg.Log.Error("cluster merge failed", "worker", p.WorkerID, "err", err)
		return
	}
	w.merged = p.Snapshot.Epoch
}

// rebuildLocked recomputes the merged view from the latest partial of
// every populated shard. Callers hold c.mu.
func (c *Coordinator) rebuildLocked() error {
	start := time.Now()
	snaps := make([]*sink.Snapshot, 0, len(c.shards))
	lineages := make([]obs.LineageSnapshot, 0, len(c.shards))
	sealed := 0
	for i := range c.shards {
		if c.shards[i].snap == nil {
			continue
		}
		snaps = append(snaps, c.shards[i].snap)
		lineages = append(lineages, c.shards[i].lineage)
		if c.shards[i].snap.Complete {
			sealed++
		}
	}
	merged, err := sink.MergeSnapshots(snaps...)
	if err != nil {
		return err
	}
	// Sealed means the whole fleet is in: every shard populated and
	// final, not merely every pulled shard.
	if len(snaps) < c.cfg.NumShards {
		merged.Complete = false
	}
	c.sealedShard = 0
	if merged.Complete {
		c.sealedShard = sealed
	}
	c.mergeSeq++
	merged.Epoch = c.mergeSeq
	merged.PublishedAt = c.cfg.Now()

	lineage := obs.MergeLineageSnapshots(c.cfg.TopCars, lineages...)
	lineage.Stages = append(lineage.Stages, c.clusterRowLocked())
	c.view.Store(&mergedView{snap: merged, lineage: lineage})
	c.met.merges.Inc()
	c.met.mergeTime.Observe(time.Since(start).Seconds())
	return nil
}

// clusterRowLocked is the coordinator's own lineage row, counting
// workers rather than points: every registration either still serves
// (or drained deliberately, or recovered from a blip) or remains lost
// to staleness, so conservation (in = out + dropped) holds by
// construction at every instant. Only OUTSTANDING losses are dropped —
// a recovered worker is back in the out column, which also keeps the
// subtraction from underflowing when one worker blips repeatedly.
func (c *Coordinator) clusterRowLocked() obs.StageSnapshot {
	outstanding := c.losses - c.recovered
	row := obs.StageSnapshot{
		Stage:     "cluster",
		Unit:      "workers",
		In:        uint64(c.registered),
		Out:       uint64(c.registered - outstanding),
		Dropped:   uint64(outstanding),
		Conserved: true,
	}
	if outstanding > 0 {
		row.Reasons = []obs.ReasonCount{{Reason: "worker_lost", N: uint64(outstanding)}}
	}
	return row
}
