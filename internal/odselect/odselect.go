// Package odselect implements the paper's Origin-Destination segment
// selection (§IV-D, Table 3): trip segments are matched against "thick"
// buffered versions of the named gate roads (T, S, L at the key
// enter/exit points of downtown Oulu), filtered by crossing angle,
// required to pass through the central area, classified into
// transitions (T-L, L-T, T-S, S-T, ...), and post-filtered so that the
// segment's start and end route points lie close to the origin and
// destination roads.
package odselect

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/geo"
	"repro/internal/trace"
)

// Gate is one named origin/destination road with its thick geometry.
type Gate struct {
	Name  string
	Thick *geo.ThickLine
}

// NewGate buffers the road centre line by width metres.
func NewGate(name string, center geo.Polyline, width float64) Gate {
	return Gate{Name: name, Thick: geo.NewThickLine(center, width)}
}

// Config tunes the selector.
type Config struct {
	// MaxCrossingAngleDeg accepts a gate crossing only when the
	// trajectory runs within this angle of the gate road (driving along
	// the entry road, not crossing it sideways). Default 45.
	MaxCrossingAngleDeg float64
	// CentralArea is the rectangle a transition must pass through.
	CentralArea geo.Rect
	// EndpointProximityM is the post-filter: the segment's first and
	// last route points must be within this distance of the origin and
	// destination roads respectively. Default 400.
	EndpointProximityM float64
	// StudiedPairs restricts the final stage to the analysed
	// directions; nil means the paper's {T-L, L-T, T-S, S-T}.
	StudiedPairs []string
}

func (c Config) withDefaults() Config {
	if c.MaxCrossingAngleDeg <= 0 {
		c.MaxCrossingAngleDeg = 45
	}
	if c.EndpointProximityM <= 0 {
		c.EndpointProximityM = 400
	}
	if c.StudiedPairs == nil {
		c.StudiedPairs = []string{"T-L", "L-T", "T-S", "S-T"}
	}
	return c
}

// Stage records how far a segment advanced through the Table 3 funnel.
type Stage int

// Funnel stages, in order.
const (
	// StageNoGate: the segment never crosses a gate acceptably.
	StageNoGate Stage = iota
	// StageGateTouched: crosses at least one gate within the angle
	// range (Table 3 column "filtered and cleaned").
	StageGateTouched
	// StageTransition: crosses two distinct gates in time order
	// (column "transitions total").
	StageTransition
	// StageWithinCentre: the transition passes through the central
	// area (column "transitions within city centre").
	StageWithinCentre
	// StageAccepted: survives the post-filter: studied direction with
	// endpoints close to the OD roads (column "post-filtered").
	StageAccepted
)

// String names the stage.
func (s Stage) String() string {
	switch s {
	case StageNoGate:
		return "no-gate"
	case StageGateTouched:
		return "gate-touched"
	case StageTransition:
		return "transition"
	case StageWithinCentre:
		return "within-centre"
	case StageAccepted:
		return "accepted"
	default:
		return fmt.Sprintf("Stage(%d)", int(s))
	}
}

// Transition is an accepted (or partially accepted) OD run.
type Transition struct {
	Seg       *trace.Trip
	From, To  string // gate names
	Direction string // "From-To"
	// FromCross and ToCross are the accepted gate crossings.
	FromCross geo.Crossing
	ToCross   geo.Crossing
}

// Key identifies the transition by trip id + start time, the paper's
// unique transition identifier.
func (t *Transition) Key() trace.Key { return t.Seg.Key() }

// Classification is the outcome for one trip segment.
type Classification struct {
	Stage      Stage
	Transition *Transition // set from StageTransition upward
}

// Selector evaluates trip segments against a set of gates.
type Selector struct {
	gates []Gate
	cfg   Config
}

// Typed constructor errors, all permanent: a selector that cannot be
// built from its gates will never build from the same gates.
var (
	// ErrBadGate marks a gate missing its name or thick geometry.
	ErrBadGate = errors.New("odselect: gate missing name or geometry")
	// ErrDuplicateGate marks two gates sharing a name.
	ErrDuplicateGate = errors.New("odselect: duplicate gate")
	// ErrTooFewGates marks a gate set with fewer than two gates — no
	// transition can exist between fewer than two.
	ErrTooFewGates = errors.New("odselect: need at least two gates")
)

// NewSelector builds a selector; gates must have distinct names.
func NewSelector(gates []Gate, cfg Config) (*Selector, error) {
	seen := map[string]bool{}
	for _, g := range gates {
		if g.Name == "" || g.Thick == nil {
			return nil, ErrBadGate
		}
		if seen[g.Name] {
			return nil, fmt.Errorf("%w: %q", ErrDuplicateGate, g.Name)
		}
		seen[g.Name] = true
	}
	if len(gates) < 2 {
		return nil, ErrTooFewGates
	}
	return &Selector{gates: gates, cfg: cfg.withDefaults()}, nil
}

// GateNames returns the selector's registered gate names in gate
// order — the authoritative name set for OD key validation downstream
// (invariant checker, serving layer).
func (s *Selector) GateNames() []string {
	names := make([]string, len(s.gates))
	for i, g := range s.gates {
		names[i] = g.Name
	}
	return names
}

// gateEvent is one acceptable crossing of a named gate.
type gateEvent struct {
	gate  string
	cross geo.Crossing
}

// Classify runs one cleaned trip segment through the funnel.
func (s *Selector) Classify(seg *trace.Trip) Classification {
	var sc classifyScratch
	return s.classify(seg, &sc)
}

// classifyScratch holds the per-segment buffers classify reuses; Run
// keeps one across a whole car so steady-state classification does not
// allocate per segment.
type classifyScratch struct {
	traj   geo.Polyline
	events []gateEvent
}

func (s *Selector) classify(seg *trace.Trip, sc *classifyScratch) Classification {
	// Crossings and the filters below only read the trajectory and keep
	// value-typed results, so the buffer is safe to reuse.
	traj := seg.AppendGeometry(sc.traj[:0])
	sc.traj = traj
	if len(traj) < 2 {
		return Classification{Stage: StageNoGate}
	}

	events := sc.events[:0]
	for _, g := range s.gates {
		for _, cr := range g.Thick.Crossings(traj) {
			if cr.Angle <= s.cfg.MaxCrossingAngleDeg {
				events = append(events, gateEvent{gate: g.Name, cross: cr})
			}
		}
	}
	sc.events = events
	if len(events) == 0 {
		return Classification{Stage: StageNoGate}
	}
	sort.SliceStable(events, func(i, j int) bool {
		return events[i].cross.EntryIndex < events[j].cross.EntryIndex
	})

	// Origin: first gate crossed. Destination: the last crossing of a
	// different gate after it.
	origin := events[0]
	var dest *gateEvent
	for i := len(events) - 1; i > 0; i-- {
		if events[i].gate != origin.gate && events[i].cross.EntryIndex > origin.cross.ExitIndex {
			dest = &events[i]
			break
		}
	}
	if dest == nil {
		return Classification{Stage: StageGateTouched}
	}
	tr := &Transition{
		Seg:       seg,
		From:      origin.gate,
		To:        dest.gate,
		Direction: origin.gate + "-" + dest.gate,
		FromCross: origin.cross,
		ToCross:   dest.cross,
	}

	// Central-area filter: some interior trajectory point between the
	// two crossings must lie inside the central area.
	if !s.passesCentre(traj, origin.cross.ExitIndex, dest.cross.EntryIndex) {
		return Classification{Stage: StageTransition, Transition: tr}
	}

	// Post-filter: studied direction, and endpoints close to the OD
	// roads.
	if !s.studied(tr.Direction) {
		return Classification{Stage: StageWithinCentre, Transition: tr}
	}
	fromGate := s.gate(tr.From)
	toGate := s.gate(tr.To)
	startOK := fromGate.Thick.Center.DistanceTo(traj[0]) <= s.cfg.EndpointProximityM
	endOK := toGate.Thick.Center.DistanceTo(traj[len(traj)-1]) <= s.cfg.EndpointProximityM
	if !startOK || !endOK {
		return Classification{Stage: StageWithinCentre, Transition: tr}
	}
	return Classification{Stage: StageAccepted, Transition: tr}
}

func (s *Selector) passesCentre(traj geo.Polyline, from, to int) bool {
	if s.cfg.CentralArea.Area() <= 0 {
		return true
	}
	if from > to {
		from, to = to, from
	}
	for i := from; i <= to && i < len(traj); i++ {
		if s.cfg.CentralArea.Contains(traj[i]) {
			return true
		}
	}
	return false
}

func (s *Selector) studied(direction string) bool {
	for _, d := range s.cfg.StudiedPairs {
		if d == direction {
			return true
		}
	}
	return false
}

func (s *Selector) gate(name string) Gate {
	for _, g := range s.gates {
		if g.Name == name {
			return g
		}
	}
	return Gate{}
}

// Funnel tallies Table 3 for one car.
type Funnel struct {
	Car          int
	TripSegments int // column 2
	Filtered     int // column 3: >= StageGateTouched
	Transitions  int // column 4: >= StageTransition
	WithinCentre int // column 5: >= StageWithinCentre
	PostFiltered int // column 6: StageAccepted
}

// Run classifies a car's segments and tallies the funnel, returning
// the accepted transitions.
func (s *Selector) Run(car int, segs []*trace.Trip) (Funnel, []*Transition) {
	f := Funnel{Car: car, TripSegments: len(segs)}
	var accepted []*Transition
	var sc classifyScratch
	for _, seg := range segs {
		c := s.classify(seg, &sc)
		if c.Stage >= StageGateTouched {
			f.Filtered++
		}
		if c.Stage >= StageTransition {
			f.Transitions++
		}
		if c.Stage >= StageWithinCentre {
			f.WithinCentre++
		}
		if c.Stage >= StageAccepted {
			f.PostFiltered++
			accepted = append(accepted, c.Transition)
		}
	}
	return f, accepted
}

// Pair is an ordered origin-destination gate pair. It keys the Matrix
// by the two names themselves rather than by their rendered "From-To"
// string, so gate names containing the separator (e.g. "T-north")
// cannot collide: Pair{"A-B","C"} and Pair{"A","B-C"} are distinct
// keys even though both render as "A-B-C".
type Pair struct {
	From, To string
}

// String renders the pair in the paper's direction notation ("T-S").
func (p Pair) String() string { return p.From + "-" + p.To }

// Matrix tallies transitions by ordered gate pair across a batch of
// classifications — the full origin-destination picture, of which the
// paper studies the four T/S/L pairs involving T.
type Matrix struct {
	gates  []string
	counts map[Pair]int
}

// NewMatrix prepares a matrix over the selector's gates.
func (s *Selector) NewMatrix() *Matrix {
	return &Matrix{gates: s.GateNames(), counts: map[Pair]int{}}
}

// Add records a classification; only stages carrying a transition
// count.
func (m *Matrix) Add(c Classification) {
	if c.Transition == nil {
		return
	}
	m.counts[Pair{From: c.Transition.From, To: c.Transition.To}]++
}

// Count returns the tally for an ordered pair.
func (m *Matrix) Count(from, to string) int { return m.counts[Pair{From: from, To: to}] }

// Total returns all recorded transitions.
func (m *Matrix) Total() int {
	t := 0
	for _, v := range m.counts {
		t += v
	}
	return t
}

// String renders the matrix with origins as rows.
func (m *Matrix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s", "from\\to")
	for _, to := range m.gates {
		fmt.Fprintf(&b, "%6s", to)
	}
	b.WriteByte('\n')
	for _, from := range m.gates {
		fmt.Fprintf(&b, "%-6s", from)
		for _, to := range m.gates {
			if from == to {
				fmt.Fprintf(&b, "%6s", "-")
				continue
			}
			fmt.Fprintf(&b, "%6d", m.Count(from, to))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
