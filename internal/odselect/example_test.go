package odselect_test

import (
	"fmt"
	"time"

	"repro/internal/geo"
	"repro/internal/odselect"
	"repro/internal/trace"
)

func ExampleSelector_Classify() {
	// Two gate roads 2 km apart with thick geometry; a trip that enters
	// along gate A, crosses the centre, and leaves along gate B is an
	// accepted A-B transition.
	sel, err := odselect.NewSelector([]odselect.Gate{
		odselect.NewGate("A", geo.Line(0, 0, 0, 400), 150),
		odselect.NewGate("B", geo.Line(2000, 0, 2000, 400), 150),
	}, odselect.Config{
		CentralArea:  geo.R(500, -200, 1500, 600),
		StudiedPairs: []string{"A-B", "B-A"},
	})
	if err != nil {
		fmt.Println(err)
		return
	}

	t0 := time.Date(2012, 10, 1, 8, 0, 0, 0, time.UTC)
	seg := &trace.Trip{ID: 9, CarID: 1}
	for i, p := range geo.Line(
		0, -250, // pickup on gate A's road
		0, 100, 0, 300, // north along gate A
		500, 300, 1000, 300, 1500, 300, // east through the centre
		2000, 300, 2000, 100, // along gate B
		2000, -200, // dropoff
	) {
		seg.Points = append(seg.Points, trace.RoutePoint{
			PointID: i + 1, TripID: 9, Pos: p,
			Time: t0.Add(time.Duration(i) * 30 * time.Second),
		})
	}

	c := sel.Classify(seg)
	fmt.Println(c.Stage, c.Transition.Direction)
	// Output:
	// accepted A-B
}
