package odselect

import (
	"strings"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/trace"
)

var t0 = time.Date(2012, 10, 1, 8, 0, 0, 0, time.UTC)

// Layout: gate A is a vertical road at x=0 (y in 0..400), gate B a
// vertical road at x=2000. The central area sits between them.
func testSelector(t *testing.T, cfg Config) *Selector {
	t.Helper()
	gates := []Gate{
		NewGate("A", geo.Line(0, 0, 0, 400), 120),
		NewGate("B", geo.Line(2000, 0, 2000, 400), 120),
		NewGate("C", geo.Line(1000, 1500, 1000, 1900), 120),
	}
	if cfg.CentralArea.Area() == 0 {
		cfg.CentralArea = geo.R(400, -200, 1600, 600)
	}
	if cfg.StudiedPairs == nil {
		cfg.StudiedPairs = []string{"A-B", "B-A"}
	}
	s, err := NewSelector(gates, cfg)
	if err != nil {
		t.Fatalf("NewSelector: %v", err)
	}
	return s
}

// seg builds a trip segment from coordinates, 30 s per point.
func seg(coords ...float64) *trace.Trip {
	tr := &trace.Trip{ID: 1, CarID: 1}
	pl := geo.Line(coords...)
	for i, p := range pl {
		tr.Points = append(tr.Points, trace.RoutePoint{
			PointID: i + 1, TripID: 1, Pos: p,
			Time: t0.Add(time.Duration(i) * 30 * time.Second),
		})
	}
	return tr
}

// abSegment runs from on/near gate A through the centre to gate B,
// entering along the gates' direction (south-north roads driven... the
// trajectory moves eastward but passes *through* each thick gate area
// travelling parallel enough by approaching along the road).
func abSegment() *trace.Trip {
	// Approach gate A along its road (northward), turn east through the
	// central area, then arrive at gate B along its road.
	return seg(
		0, -300, // south of gate A, on its axis
		0, 50, // inside gate A thick, moving north (angle ~0)
		0, 200,
		300, 200, // leaving east
		800, 200, // central area
		1200, 200,
		1700, 200,
		2000, 200, // inside gate B thick moving east.. angle vs road?
		2000, 350, // turn north along gate B road
		2000, 500,
	)
}

func TestClassifyAccepted(t *testing.T) {
	s := testSelector(t, Config{})
	c := s.Classify(abSegment())
	if c.Stage != StageAccepted {
		t.Fatalf("stage = %v, want accepted", c.Stage)
	}
	if c.Transition.Direction != "A-B" || c.Transition.From != "A" || c.Transition.To != "B" {
		t.Fatalf("transition = %+v", c.Transition)
	}
	if c.Transition.Key().TripID != 1 {
		t.Fatal("transition key broken")
	}
}

func TestClassifyNoGate(t *testing.T) {
	s := testSelector(t, Config{})
	c := s.Classify(seg(500, 1000, 600, 1000, 700, 1000))
	if c.Stage != StageNoGate {
		t.Fatalf("stage = %v, want no-gate", c.Stage)
	}
	// Degenerate segment.
	c = s.Classify(&trace.Trip{ID: 2})
	if c.Stage != StageNoGate {
		t.Fatalf("empty stage = %v", c.Stage)
	}
}

func TestPerpendicularCrossingRejectedByAngle(t *testing.T) {
	s := testSelector(t, Config{})
	// Drive straight east across gate A's road at y=200: angle ~90.
	c := s.Classify(seg(-300, 200, -100, 200, 0, 200, 100, 200, 300, 200))
	if c.Stage != StageNoGate {
		t.Fatalf("perpendicular crossing advanced to %v", c.Stage)
	}
	// With a permissive angle config the same segment touches the gate.
	s2 := testSelector(t, Config{MaxCrossingAngleDeg: 95})
	c = s2.Classify(seg(-300, 200, -100, 200, 0, 200, 100, 200, 300, 200))
	if c.Stage != StageGateTouched {
		t.Fatalf("permissive angle stage = %v", c.Stage)
	}
}

func TestSingleGateOnly(t *testing.T) {
	s := testSelector(t, Config{})
	// Up gate A's road and back, never reaching B or C.
	c := s.Classify(seg(0, -300, 0, 0, 0, 200, 0, 400, 0, 100, 0, -250))
	if c.Stage != StageGateTouched {
		t.Fatalf("stage = %v, want gate-touched", c.Stage)
	}
}

func TestTransitionOutsideCentre(t *testing.T) {
	// Central area moved far away: the A->B run no longer passes it.
	s := testSelector(t, Config{CentralArea: geo.R(5000, 5000, 6000, 6000)})
	c := s.Classify(abSegment())
	if c.Stage != StageTransition {
		t.Fatalf("stage = %v, want transition (outside centre)", c.Stage)
	}
	if c.Transition == nil || c.Transition.Direction != "A-B" {
		t.Fatal("transition metadata missing")
	}
}

func TestUnstudiedPairStopsAtWithinCentre(t *testing.T) {
	s := testSelector(t, Config{StudiedPairs: []string{"B-A"}})
	c := s.Classify(abSegment())
	if c.Stage != StageWithinCentre {
		t.Fatalf("stage = %v, want within-centre for unstudied A-B", c.Stage)
	}
}

func TestEndpointProximityPostFilter(t *testing.T) {
	s := testSelector(t, Config{EndpointProximityM: 50})
	// abSegment starts 300 m south of gate A: fails a 50 m post-filter.
	c := s.Classify(abSegment())
	if c.Stage != StageWithinCentre {
		t.Fatalf("stage = %v, want within-centre (endpoint too far)", c.Stage)
	}
}

func TestDirectionOrderMatters(t *testing.T) {
	s := testSelector(t, Config{})
	// Reverse the A->B run: becomes B-A.
	fwd := abSegment()
	rev := &trace.Trip{ID: 1, CarID: 1}
	for i := len(fwd.Points) - 1; i >= 0; i-- {
		p := fwd.Points[i]
		p.PointID = len(rev.Points) + 1
		p.Time = t0.Add(time.Duration(len(rev.Points)) * 30 * time.Second)
		rev.Points = append(rev.Points, p)
	}
	c := s.Classify(rev)
	if c.Stage != StageAccepted || c.Transition.Direction != "B-A" {
		t.Fatalf("reverse = %v %+v", c.Stage, c.Transition)
	}
}

func TestRunFunnelMonotone(t *testing.T) {
	s := testSelector(t, Config{})
	segs := []*trace.Trip{
		abSegment(),
		seg(500, 1000, 600, 1000, 700, 1000), // no gate
		seg(0, -300, 0, 0, 0, 200, 0, 400, 0, 100, 0, -250), // one gate
	}
	f, accepted := s.Run(3, segs)
	if f.Car != 3 || f.TripSegments != 3 {
		t.Fatalf("funnel header: %+v", f)
	}
	if !(f.TripSegments >= f.Filtered && f.Filtered >= f.Transitions &&
		f.Transitions >= f.WithinCentre && f.WithinCentre >= f.PostFiltered) {
		t.Fatalf("funnel not monotone: %+v", f)
	}
	if f.PostFiltered != 1 || len(accepted) != 1 {
		t.Fatalf("accepted = %d, funnel %+v", len(accepted), f)
	}
}

func TestNewSelectorValidation(t *testing.T) {
	g1 := NewGate("A", geo.Line(0, 0, 0, 100), 50)
	g2 := NewGate("A", geo.Line(10, 0, 10, 100), 50)
	if _, err := NewSelector([]Gate{g1, g2}, Config{}); err == nil {
		t.Fatal("duplicate gate names accepted")
	}
	if _, err := NewSelector([]Gate{g1}, Config{}); err == nil {
		t.Fatal("single gate accepted")
	}
	if _, err := NewSelector([]Gate{{Name: "", Thick: g1.Thick}, g1}, Config{}); err == nil {
		t.Fatal("unnamed gate accepted")
	}
}

func TestStageString(t *testing.T) {
	names := map[Stage]string{
		StageNoGate:       "no-gate",
		StageGateTouched:  "gate-touched",
		StageTransition:   "transition",
		StageWithinCentre: "within-centre",
		StageAccepted:     "accepted",
	}
	for s, want := range names {
		if s.String() != want {
			t.Fatalf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}

func TestMatrix(t *testing.T) {
	s := testSelector(t, Config{})
	m := s.NewMatrix()
	m.Add(s.Classify(abSegment()))
	m.Add(s.Classify(abSegment()))
	m.Add(s.Classify(seg(500, 1000, 600, 1000))) // no gate: ignored
	if m.Count("A", "B") != 2 || m.Count("B", "A") != 0 {
		t.Fatalf("matrix counts: A-B=%d B-A=%d", m.Count("A", "B"), m.Count("B", "A"))
	}
	if m.Total() != 2 {
		t.Fatalf("total = %d", m.Total())
	}
	out := m.String()
	if !strings.Contains(out, "A") || !strings.Contains(out, "2") {
		t.Fatalf("matrix render: %q", out)
	}
}

// TestMatrixHyphenatedGateNames is the regression test for the OD
// key-collision bug: keys used to be built by from+"-"+to string
// concatenation, so the distinct directions ("A-B" → "C") and
// ("A" → "B-C") collided on the rendered key "A-B-C" and pooled their
// counts. Struct keys keep them apart.
func TestMatrixHyphenatedGateNames(t *testing.T) {
	gates := []Gate{
		NewGate("A-B", geo.Line(0, 0, 0, 400), 120),
		NewGate("C", geo.Line(2000, 0, 2000, 400), 120),
		NewGate("A", geo.Line(4000, 0, 4000, 400), 120),
		NewGate("B-C", geo.Line(6000, 0, 6000, 400), 120),
	}
	s, err := NewSelector(gates, Config{CentralArea: geo.R(0, 0, 7000, 2000)})
	if err != nil {
		t.Fatal(err)
	}
	m := s.NewMatrix()
	m.Add(Classification{Stage: StageAccepted, Transition: &Transition{
		From: "A-B", To: "C", Direction: "A-B-C",
	}})
	m.Add(Classification{Stage: StageAccepted, Transition: &Transition{
		From: "A", To: "B-C", Direction: "A-B-C",
	}})
	if got := m.Count("A-B", "C"); got != 1 {
		t.Fatalf(`Count("A-B","C") = %d, want 1 (collision with ("A","B-C"))`, got)
	}
	if got := m.Count("A", "B-C"); got != 1 {
		t.Fatalf(`Count("A","B-C") = %d, want 1 (collision with ("A-B","C"))`, got)
	}
	if m.Total() != 2 {
		t.Fatalf("total = %d, want 2", m.Total())
	}
}

func TestGateNames(t *testing.T) {
	s := testSelector(t, Config{})
	got := s.GateNames()
	want := []string{"A", "B", "C"}
	if len(got) != len(want) {
		t.Fatalf("GateNames() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("GateNames() = %v, want %v", got, want)
		}
	}
}
