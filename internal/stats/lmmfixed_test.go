package stats

import (
	"math"
	"math/rand"
	"testing"
)

// fixedLMMData simulates groups whose mean depends linearly on two
// group-level covariates plus a random intercept.
func fixedLMMData(rng *rand.Rand, nGroups, groupSize int, beta []float64, sigA, sig float64) []*GroupX {
	out := make([]*GroupX, nGroups)
	for i := range out {
		x1 := rng.Float64() * 5
		x2 := rng.Float64() * 3
		g := &GroupX{Covariates: []float64{x1, x2}}
		g.Name = groupName(i)
		a := rng.NormFloat64() * sigA
		mean := beta[0] + beta[1]*x1 + beta[2]*x2
		for j := 0; j < groupSize; j++ {
			g.AddObs(mean + a + rng.NormFloat64()*sig)
		}
		out[i] = g
	}
	return out
}

func TestFitLMMFixedRecoversCoefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	truth := []float64{30, -2, 1.5}
	groups := fixedLMMData(rng, 120, 20, truth, 2, 5)
	fit, err := FitLMMFixed(groups)
	if err != nil {
		t.Fatal(err)
	}
	for j, want := range truth {
		// Within four standard errors of the truth.
		if !feq(fit.Coef[j], want, 4*fit.StdErr[j]) {
			t.Fatalf("coef[%d] = %f, want ~%f (se %f)", j, fit.Coef[j], want, fit.StdErr[j])
		}
		if fit.StdErr[j] <= 0 {
			t.Fatalf("stderr[%d] = %f", j, fit.StdErr[j])
		}
	}
	if !feq(math.Sqrt(fit.SigmaA2), 2, 0.8) {
		t.Fatalf("sigmaA = %f, want ~2", math.Sqrt(fit.SigmaA2))
	}
	if !feq(math.Sqrt(fit.Sigma2), 5, 0.4) {
		t.Fatalf("sigma = %f, want ~5", math.Sqrt(fit.Sigma2))
	}
}

func TestFitLMMFixedReducesToRandomInterceptModel(t *testing.T) {
	// With no covariates, FitLMMFixed must agree with FitLMM.
	rng := rand.New(rand.NewSource(22))
	plain := balancedLMMData(rng, 40, 10, 20, 3, 2)
	var withX []*GroupX
	for _, g := range plain {
		withX = append(withX, &GroupX{Group: *g})
	}
	a, err := FitLMM(plain)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FitLMMFixed(withX)
	if err != nil {
		t.Fatal(err)
	}
	if !feq(a.Mu, b.Coef[0], 1e-6) {
		t.Fatalf("mu %f vs intercept %f", a.Mu, b.Coef[0])
	}
	if !feq(a.Sigma2, b.Sigma2, 1e-4*a.Sigma2) || !feq(a.SigmaA2, b.SigmaA2, 1e-3*a.SigmaA2+1e-9) {
		t.Fatalf("variances differ: (%f,%f) vs (%f,%f)", a.Sigma2, a.SigmaA2, b.Sigma2, b.SigmaA2)
	}
}

func TestFitLMMFixedBLUPsCenterOnResiduals(t *testing.T) {
	// When the covariates explain all between-group structure, the
	// random-intercept variance should collapse toward zero.
	rng := rand.New(rand.NewSource(23))
	groups := fixedLMMData(rng, 80, 25, []float64{10, 3, -1}, 0, 2)
	fit, err := FitLMMFixed(groups)
	if err != nil {
		t.Fatal(err)
	}
	if fit.SigmaA2 > 0.3 {
		t.Fatalf("sigmaA2 = %f, want ~0 when covariates explain the groups", fit.SigmaA2)
	}
	for _, e := range fit.Groups {
		if math.Abs(e.BLUP) > 1 {
			t.Fatalf("BLUP %f should be near zero", e.BLUP)
		}
	}
}

func TestFitLMMFixedErrors(t *testing.T) {
	if _, err := FitLMMFixed(nil); err == nil {
		t.Fatal("no groups accepted")
	}
	// Ragged covariates.
	g1 := &GroupX{Covariates: []float64{1}}
	g1.Name = "a"
	g1.AddObs(1)
	g1.AddObs(2)
	g2 := &GroupX{Covariates: []float64{1, 2}}
	g2.Name = "b"
	g2.AddObs(3)
	g2.AddObs(4)
	if _, err := FitLMMFixed([]*GroupX{g1, g2}); err == nil {
		t.Fatal("ragged covariates accepted")
	}
	// Too few groups for the number of fixed effects.
	g3 := &GroupX{Covariates: []float64{1, 2}}
	g3.Name = "c"
	g3.AddObs(1)
	g3.AddObs(2)
	if _, err := FitLMMFixed([]*GroupX{g2, g3}); err == nil {
		t.Fatal("p+1 > groups accepted")
	}
	// Collinear covariates: x2 = 2*x1 for every group.
	rng := rand.New(rand.NewSource(24))
	var col []*GroupX
	for i := 0; i < 20; i++ {
		x := rng.Float64()
		g := &GroupX{Covariates: []float64{x, 2 * x}}
		g.Name = groupName(i)
		for j := 0; j < 5; j++ {
			g.AddObs(10 + x + rng.NormFloat64())
		}
		col = append(col, g)
	}
	if _, err := FitLMMFixed(col); err == nil {
		t.Fatal("collinear design accepted")
	}
}

func TestFitLMMFixedSingleCovariateEffect(t *testing.T) {
	// A negative traffic-light coefficient like the paper expects:
	// groups with more lights are slower.
	rng := rand.New(rand.NewSource(25))
	var groups []*GroupX
	for i := 0; i < 60; i++ {
		lights := float64(i % 5)
		g := &GroupX{Covariates: []float64{lights}}
		g.Name = groupName(i)
		a := rng.NormFloat64() * 1.5
		for j := 0; j < 30; j++ {
			g.AddObs(35 - 2.5*lights + a + rng.NormFloat64()*6)
		}
		groups = append(groups, g)
	}
	fit, err := FitLMMFixed(groups)
	if err != nil {
		t.Fatal(err)
	}
	if !feq(fit.Coef[1], -2.5, 0.6) {
		t.Fatalf("light effect = %f, want ~-2.5", fit.Coef[1])
	}
	// The effect is clearly significant: |t| > 3.
	if math.Abs(fit.Coef[1]/fit.StdErr[1]) < 3 {
		t.Fatalf("t-statistic %f too small", fit.Coef[1]/fit.StdErr[1])
	}
}
