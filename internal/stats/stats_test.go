package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func feq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarizeKnown(t *testing.T) {
	// R: summary(c(1,2,3,4,5,6,7,8,9,10))
	s := Summarize([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if s.N != 10 || s.Min != 1 || s.Max != 10 {
		t.Fatalf("extremes: %+v", s)
	}
	if !feq(s.Q1, 3.25, 1e-12) || !feq(s.Median, 5.5, 1e-12) || !feq(s.Q3, 7.75, 1e-12) {
		t.Fatalf("quartiles (R type 7): %+v", s)
	}
	if !feq(s.Mean, 5.5, 1e-12) {
		t.Fatalf("mean: %+v", s)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Fatalf("empty: %+v", s)
	}
	s := Summarize([]float64{7})
	if s.Min != 7 || s.Q1 != 7 || s.Median != 7 || s.Mean != 7 || s.Q3 != 7 || s.Max != 7 {
		t.Fatalf("single: %+v", s)
	}
}

func TestQuantileEdges(t *testing.T) {
	xs := []float64{3, 1, 2}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 3 {
		t.Fatal("p=0/1 must be extremes")
	}
	if !feq(Quantile(xs, 0.5), 2, 1e-12) {
		t.Fatal("median")
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile must be NaN")
	}
	// Input must not be mutated.
	if xs[0] != 3 {
		t.Fatal("Quantile sorted its input")
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !feq(Variance(xs), 4.571428571428571, 1e-12) {
		t.Fatalf("variance = %f", Variance(xs))
	}
	if !feq(StdDev(xs), math.Sqrt(4.571428571428571), 1e-12) {
		t.Fatal("stddev")
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Fatal("variance of one value must be NaN")
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var w Welford
	var xs []float64
	for i := 0; i < 500; i++ {
		v := rng.NormFloat64()*3 + 10
		w.Add(v)
		xs = append(xs, v)
	}
	if !feq(w.Mean(), Mean(xs), 1e-9) || !feq(w.Variance(), Variance(xs), 1e-9) {
		t.Fatalf("welford %f/%f vs batch %f/%f", w.Mean(), w.Variance(), Mean(xs), Variance(xs))
	}
	mn, mx := MinMax(xs)
	if w.Min() != mn || w.Max() != mx || w.N() != 500 {
		t.Fatal("welford extremes")
	}
	var empty Welford
	if !math.IsNaN(empty.Mean()) || !math.IsNaN(empty.Min()) || !math.IsNaN(empty.Max()) {
		t.Fatal("empty welford must be NaN")
	}
}

func TestWelfordMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var whole Welford
	shards := make([]Welford, 4)
	var xs []float64
	for i := 0; i < 1000; i++ {
		v := rng.NormFloat64()*5 + 30
		whole.Add(v)
		shards[i%len(shards)].Add(v)
		xs = append(xs, v)
	}
	var merged Welford
	for _, s := range shards {
		merged.Merge(s)
	}
	if merged.N() != whole.N() {
		t.Fatalf("merged n = %d, want %d", merged.N(), whole.N())
	}
	if !feq(merged.Mean(), Mean(xs), 1e-9) || !feq(merged.Variance(), Variance(xs), 1e-9) {
		t.Fatalf("merged %f/%f vs batch %f/%f", merged.Mean(), merged.Variance(), Mean(xs), Variance(xs))
	}
	mn, mx := MinMax(xs)
	if merged.Min() != mn || merged.Max() != mx {
		t.Fatal("merged extrema")
	}

	// Merging an empty accumulator is a no-op; merging into an empty one
	// copies.
	var empty, into Welford
	merged2 := merged
	merged2.Merge(empty)
	if merged2.N() != merged.N() || merged2.Mean() != merged.Mean() {
		t.Fatal("merge of empty changed state")
	}
	into.Merge(merged)
	if into.N() != merged.N() || into.Mean() != merged.Mean() || into.Variance() != merged.Variance() {
		t.Fatal("merge into empty must copy")
	}
}

func TestNormalQuantileKnown(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959963984540054},
		{0.025, -1.959963984540054},
		{0.84134474606854293, 1},
		{0.0013498980316300933, -3},
	}
	for _, c := range cases {
		if got := NormalQuantile(c.p); !feq(got, c.want, 1e-8) {
			t.Errorf("NormalQuantile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Fatal("boundary quantiles must be infinite")
	}
}

func TestNormalQuantileCDFRoundTrip(t *testing.T) {
	f := func(raw uint16) bool {
		p := (float64(raw) + 1) / 65538 // (0, 1)
		return feq(NormalCDF(NormalQuantile(p)), p, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalQQ(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	qq := NormalQQ(xs)
	if len(qq) != 200 {
		t.Fatalf("len = %d", len(qq))
	}
	for i := 1; i < len(qq); i++ {
		if qq[i].Theoretical < qq[i-1].Theoretical || qq[i].Sample < qq[i-1].Sample {
			t.Fatal("QQ points must be monotone")
		}
	}
	// For a genuine normal sample, the central points hug the diagonal.
	mid := qq[100]
	if math.Abs(mid.Sample-mid.Theoretical) > 0.3 {
		t.Fatalf("central QQ point far off diagonal: %+v", mid)
	}
	if NormalQQ(nil) != nil {
		t.Fatal("empty QQ must be nil")
	}
}

func TestCholeskySolve(t *testing.T) {
	// A = [[4,2],[2,3]], b = [1, 2] -> x = [-1/8, 3/4].
	a := NewMatrix(2, 2)
	a.Set(0, 0, 4)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 3)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	x := ch.Solve([]float64{1, 2})
	if !feq(x[0], -0.125, 1e-12) || !feq(x[1], 0.75, 1e-12) {
		t.Fatalf("solve = %v", x)
	}
	if !feq(ch.LogDet(), math.Log(8), 1e-12) {
		t.Fatalf("logdet = %f, want log 8", ch.LogDet())
	}
	inv := ch.Inverse()
	// A * A^-1 = I.
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			var s float64
			for k := 0; k < 2; k++ {
				s += a.At(i, k) * inv.At(k, j)
			}
			want := 0.0
			if i == j {
				want = 1
			}
			if !feq(s, want, 1e-12) {
				t.Fatalf("inverse check (%d,%d) = %f", i, j, s)
			}
		}
	}
}

func TestCholeskyRejectsNonPD(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 1) // eigenvalues 3, -1
	if _, err := NewCholesky(a); err == nil {
		t.Fatal("non-PD accepted")
	}
	b := NewMatrix(2, 3)
	if _, err := NewCholesky(b); err == nil {
		t.Fatal("non-square accepted")
	}
}

func TestMatrixOps(t *testing.T) {
	m := NewMatrix(2, 3)
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			m.Set(i, j, float64(i*3+j+1)) // [[1,2,3],[4,5,6]]
		}
	}
	v := m.MulVec([]float64{1, 1, 1})
	if v[0] != 6 || v[1] != 15 {
		t.Fatalf("MulVec = %v", v)
	}
	g := m.TransposeMul() // 3x3
	if g.At(0, 0) != 17 || g.At(0, 1) != 22 || g.At(2, 2) != 45 || g.At(1, 0) != g.At(0, 1) {
		t.Fatalf("Gram = %+v", g)
	}
	tv := m.TransposeMulVec([]float64{1, 2})
	if tv[0] != 9 || tv[1] != 12 || tv[2] != 15 {
		t.Fatalf("TransposeMulVec = %v", tv)
	}
	m.Add(0, 0, 5)
	if m.At(0, 0) != 6 {
		t.Fatal("Add broken")
	}
}

func TestOLSExactFit(t *testing.T) {
	// y = 2 + 3x exactly.
	x := []float64{0, 1, 2, 3, 4, 5}
	y := make([]float64, len(x))
	for i := range x {
		y[i] = 2 + 3*x[i]
	}
	design, err := Design(x)
	if err != nil {
		t.Fatal(err)
	}
	fit, err := OLS(design, y)
	if err != nil {
		t.Fatal(err)
	}
	if !feq(fit.Coef[0], 2, 1e-9) || !feq(fit.Coef[1], 3, 1e-9) {
		t.Fatalf("coef = %v", fit.Coef)
	}
	if !feq(fit.R2, 1, 1e-12) {
		t.Fatalf("R2 = %f", fit.R2)
	}
}

func TestOLSNoisyRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 2000
	x1 := make([]float64, n)
	x2 := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x1[i] = rng.Float64() * 10
		x2[i] = rng.NormFloat64()
		y[i] = 1.5 - 2*x1[i] + 0.5*x2[i] + rng.NormFloat64()*0.8
	}
	design, err := Design(x1, x2)
	if err != nil {
		t.Fatal(err)
	}
	fit, err := OLS(design, y)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.5, -2, 0.5}
	for j, w := range want {
		if !feq(fit.Coef[j], w, 0.1) {
			t.Fatalf("coef[%d] = %f, want ~%f", j, fit.Coef[j], w)
		}
		if fit.StdErr[j] <= 0 || fit.StdErr[j] > 0.1 {
			t.Fatalf("stderr[%d] = %f implausible", j, fit.StdErr[j])
		}
	}
	if !feq(fit.Sigma2, 0.64, 0.07) {
		t.Fatalf("sigma2 = %f, want ~0.64", fit.Sigma2)
	}
}

func TestOLSErrors(t *testing.T) {
	design, _ := Design([]float64{1, 2, 3})
	if _, err := OLS(design, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	// Collinear design: x and 2x.
	x := []float64{1, 2, 3, 4}
	x2 := []float64{2, 4, 6, 8}
	d2, _ := Design(x, x2)
	if _, err := OLS(d2, []float64{1, 2, 3, 4}); err == nil {
		t.Fatal("rank-deficient design accepted")
	}
	if _, err := Design(); err == nil {
		t.Fatal("empty design accepted")
	}
	if _, err := Design([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("ragged design accepted")
	}
}

// balancedLMMData simulates g groups of size n with the given variance
// components.
func balancedLMMData(rng *rand.Rand, g, n int, mu, sigA, sig float64) []*Group {
	groups := make([]*Group, g)
	for i := range groups {
		groups[i] = &Group{Name: groupName(i)}
		a := rng.NormFloat64() * sigA
		for j := 0; j < n; j++ {
			groups[i].AddObs(mu + a + rng.NormFloat64()*sig)
		}
	}
	return groups
}

func groupName(i int) string {
	return string(rune('A'+i/26)) + string(rune('a'+i%26))
}

func TestLMMMatchesBalancedANOVAREML(t *testing.T) {
	// For balanced one-way data, REML variance components have the
	// closed form sigma2 = MSE, sigmaA2 = (MSB - MSE)/n.
	rng := rand.New(rand.NewSource(4))
	g, n := 30, 8
	groups := balancedLMMData(rng, g, n, 20, 3, 2)

	fit, err := FitLMM(groups)
	if err != nil {
		t.Fatal(err)
	}
	// Closed form.
	var grand, total float64
	for _, gr := range groups {
		grand += gr.Sum
		total += float64(gr.N)
	}
	grand /= total
	var ssb, ssw float64
	for _, gr := range groups {
		d := gr.Mean() - grand
		ssb += float64(gr.N) * d * d
		ssw += gr.withinSS()
	}
	mse := ssw / (total - float64(g))
	msb := ssb / float64(g-1)
	wantS2 := mse
	wantA2 := (msb - mse) / float64(n)

	if !feq(fit.Sigma2, wantS2, 0.05*wantS2+1e-6) {
		t.Fatalf("sigma2 = %f, closed form %f", fit.Sigma2, wantS2)
	}
	if !feq(fit.SigmaA2, wantA2, 0.08*wantA2+0.05) {
		t.Fatalf("sigmaA2 = %f, closed form %f", fit.SigmaA2, wantA2)
	}
	if !feq(fit.Mu, grand, 1e-6) {
		t.Fatalf("balanced mu = %f, grand mean %f", fit.Mu, grand)
	}
}

func TestLMMRecoversVarianceComponents(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	groups := balancedLMMData(rng, 80, 25, 25, 4, 6)
	fit, err := FitLMM(groups)
	if err != nil {
		t.Fatal(err)
	}
	if !feq(fit.Mu, 25, 1.5) {
		t.Fatalf("mu = %f", fit.Mu)
	}
	if !feq(math.Sqrt(fit.SigmaA2), 4, 1.0) {
		t.Fatalf("sigmaA = %f, want ~4", math.Sqrt(fit.SigmaA2))
	}
	if !feq(math.Sqrt(fit.Sigma2), 6, 0.5) {
		t.Fatalf("sigma = %f, want ~6", math.Sqrt(fit.Sigma2))
	}
	if fit.NObs != 80*25 {
		t.Fatalf("NObs = %d", fit.NObs)
	}
}

func TestLMMShrinkage(t *testing.T) {
	// BLUPs shrink raw deviations toward zero; sparse groups shrink
	// more. This is the paper's motivation for mixed modelling.
	rng := rand.New(rand.NewSource(6))
	groups := []*Group{}
	for i := 0; i < 40; i++ {
		g := &Group{Name: groupName(i)}
		a := rng.NormFloat64() * 5
		n := 2
		if i%2 == 0 {
			n = 60
		}
		for j := 0; j < n; j++ {
			g.AddObs(20 + a + rng.NormFloat64()*4)
		}
		groups = append(groups, g)
	}
	fit, err := FitLMM(groups)
	if err != nil {
		t.Fatal(err)
	}
	var shrinkSmall, shrinkBig []float64
	for _, ge := range fit.Groups {
		raw := ge.Mean - fit.Mu
		if math.Abs(raw) < 1e-9 {
			continue
		}
		ratio := ge.BLUP / raw
		if ratio < -1e-9 || ratio > 1+1e-9 {
			t.Fatalf("BLUP not a shrinkage of the raw deviation: %+v (mu=%f)", ge, fit.Mu)
		}
		if ge.N == 2 {
			shrinkSmall = append(shrinkSmall, ratio)
		} else {
			shrinkBig = append(shrinkBig, ratio)
		}
	}
	if Mean(shrinkSmall) >= Mean(shrinkBig) {
		t.Fatalf("small groups must shrink more: %f vs %f", Mean(shrinkSmall), Mean(shrinkBig))
	}
	// SE is larger for sparse groups.
	var seSmall, seBig float64
	for _, ge := range fit.Groups {
		if ge.N == 2 {
			seSmall += ge.SE
		} else {
			seBig += ge.SE
		}
	}
	if seSmall <= seBig {
		t.Fatalf("sparse-group SE must exceed dense-group SE: %f vs %f", seSmall, seBig)
	}
}

func TestLMMZeroGroupVariance(t *testing.T) {
	// No between-group signal: lambda should collapse to ~0 and BLUPs
	// to ~0.
	rng := rand.New(rand.NewSource(7))
	groups := balancedLMMData(rng, 40, 20, 10, 0, 3)
	fit, err := FitLMM(groups)
	if err != nil {
		t.Fatal(err)
	}
	if fit.SigmaA2 > 0.4 {
		t.Fatalf("sigmaA2 = %f, want ~0", fit.SigmaA2)
	}
	for _, ge := range fit.Groups {
		if math.Abs(ge.BLUP) > 1 {
			t.Fatalf("BLUP %f should be shrunk to ~0", ge.BLUP)
		}
	}
}

func TestLMMErrors(t *testing.T) {
	if _, err := FitLMM(nil); err == nil {
		t.Fatal("no groups accepted")
	}
	g1 := &Group{Name: "a"}
	g1.AddObs(1)
	if _, err := FitLMM([]*Group{g1}); err == nil {
		t.Fatal("single group accepted")
	}
	g2 := &Group{Name: "b"}
	g2.AddObs(2)
	if _, err := FitLMM([]*Group{g1, g2}); err == nil {
		t.Fatal("all-singleton groups accepted")
	}
}

func TestGroupsFromObservations(t *testing.T) {
	labels := []string{"a", "b", "a", "c", "b", "a"}
	ys := []float64{1, 2, 3, 4, 5, 6}
	groups, err := GroupsFromObservations(labels, ys)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 3 {
		t.Fatalf("groups = %d", len(groups))
	}
	if groups[0].Name != "a" || groups[0].N != 3 || !feq(groups[0].Mean(), 10.0/3, 1e-12) {
		t.Fatalf("group a = %+v", groups[0])
	}
	if _, err := GroupsFromObservations([]string{"a"}, nil); err == nil {
		t.Fatal("ragged input accepted")
	}
}

func TestLMMBLUPsOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	groups := balancedLMMData(rng, 10, 5, 0, 2, 1)
	fit, err := FitLMM(groups)
	if err != nil {
		t.Fatal(err)
	}
	blups := fit.BLUPs()
	if len(blups) != len(fit.Groups) {
		t.Fatal("BLUPs length mismatch")
	}
	for i := range blups {
		if blups[i] != fit.Groups[i].BLUP {
			t.Fatal("BLUPs order mismatch")
		}
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	out := s.String()
	if out == "" || !feq(s.Mean, 2, 1e-12) {
		t.Fatalf("Summary.String = %q", out)
	}
	for _, frag := range []string{"min=", "med=", "mean=", "n=3"} {
		if !containsStr(out, frag) {
			t.Fatalf("String missing %q: %q", frag, out)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
