package stats

import (
	"fmt"
	"math"
)

// OLSResult is a fitted linear regression Y = X b + e (paper model 1).
type OLSResult struct {
	Coef    []float64 // estimated b, first entry the intercept when fitted via OLS
	StdErr  []float64 // coefficient standard errors
	Sigma2  float64   // residual variance estimate
	R2      float64   // coefficient of determination
	Resid   []float64
	N, P    int
	LogLik  float64 // Gaussian log-likelihood at the MLE variance
	XtXChol *Cholesky
}

// OLS fits y on the design matrix x (one row per observation; include
// a column of ones for the intercept).
func OLS(x *Matrix, y []float64) (*OLSResult, error) {
	n, p := x.Rows, x.Cols
	if n != len(y) {
		return nil, fmt.Errorf("stats: OLS needs len(y)=%d rows, got %d", n, len(y))
	}
	if n <= p {
		return nil, fmt.Errorf("stats: OLS needs more observations (%d) than parameters (%d)", n, p)
	}
	xtx := x.TransposeMul()
	chol, err := NewCholesky(xtx)
	if err != nil {
		return nil, fmt.Errorf("stats: OLS design is rank deficient: %w", err)
	}
	xty := x.TransposeMulVec(y)
	coef := chol.Solve(xty)

	fitted := x.MulVec(coef)
	resid := make([]float64, n)
	var sse, sst float64
	ybar := Mean(y)
	for i := range y {
		resid[i] = y[i] - fitted[i]
		sse += resid[i] * resid[i]
		d := y[i] - ybar
		sst += d * d
	}
	sigma2 := sse / float64(n-p)
	inv := chol.Inverse()
	se := make([]float64, p)
	for j := 0; j < p; j++ {
		se[j] = math.Sqrt(sigma2 * inv.At(j, j))
	}
	r2 := 0.0
	if sst > 0 {
		r2 = 1 - sse/sst
	}
	mlVar := sse / float64(n)
	loglik := -0.5 * float64(n) * (math.Log(2*math.Pi*mlVar) + 1)
	return &OLSResult{
		Coef: coef, StdErr: se, Sigma2: sigma2, R2: r2,
		Resid: resid, N: n, P: p, LogLik: loglik, XtXChol: chol,
	}, nil
}

// Design builds a design matrix with an intercept column followed by
// the given predictor columns.
func Design(cols ...[]float64) (*Matrix, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("stats: Design needs at least one column")
	}
	n := len(cols[0])
	for i, c := range cols {
		if len(c) != n {
			return nil, fmt.Errorf("stats: Design column %d has %d rows, want %d", i, len(c), n)
		}
	}
	m := NewMatrix(n, len(cols)+1)
	for i := 0; i < n; i++ {
		m.Set(i, 0, 1)
		for j, c := range cols {
			m.Set(i, j+1, c[i])
		}
	}
	return m, nil
}
