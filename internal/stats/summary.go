// Package stats provides the statistical machinery of the paper's
// analysis section: six-number summaries (Table 4), variance statistics
// (Table 5), ordinary least squares regression (model 1), and a linear
// mixed model with a per-cell random intercept estimated by REML with
// BLUP predictions and confidence limits (model 3, Figs 7-9).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary is the paper's Table 4 row shape: Min, 1st Quartile, Median,
// Mean, 3rd Quartile, Max.
type Summary struct {
	N      int
	Min    float64
	Q1     float64
	Median float64
	Mean   float64
	Q3     float64
	Max    float64
}

// Summarize computes the six-number summary. It returns a zero Summary
// for empty input.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	return Summary{
		N:      len(sorted),
		Min:    sorted[0],
		Q1:     quantileSorted(sorted, 0.25),
		Median: quantileSorted(sorted, 0.5),
		Mean:   sum / float64(len(sorted)),
		Q3:     quantileSorted(sorted, 0.75),
		Max:    sorted[len(sorted)-1],
	}
}

// String renders the summary in Table 4 column order.
func (s Summary) String() string {
	return fmt.Sprintf("min=%.3f q1=%.3f med=%.3f mean=%.3f q3=%.3f max=%.3f (n=%d)",
		s.Min, s.Q1, s.Median, s.Mean, s.Q3, s.Max, s.N)
}

// Quantile returns the p-quantile (0 <= p <= 1) using linear
// interpolation between order statistics (R type 7, the R default the
// paper's tables were produced with).
func Quantile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, p)
}

func quantileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	h := p * float64(len(sorted)-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo] + (h-float64(lo))*(sorted[hi]-sorted[lo])
}

// Mean returns the arithmetic mean (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range xs {
		sum += v
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance (NaN for n < 2).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, v := range xs {
		d := v - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the extremes (NaN, NaN for empty input).
func MinMax(xs []float64) (float64, float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	min, max := xs[0], xs[0]
	for _, v := range xs[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

// Welford is a streaming mean/variance accumulator.
type Welford struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation in.
func (w *Welford) Add(x float64) {
	if w.n == 0 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Merge folds another accumulator into w (Chan et al.'s parallel
// update), so per-shard accumulators can be combined into fleet-level
// moments: the merged mean, variance and extrema equal those of the
// concatenated observation streams up to float rounding.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.mean += d * float64(o.n) / float64(n)
	w.n = n
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
}

// N returns the observation count.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (NaN when empty).
func (w *Welford) Mean() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.mean
}

// Variance returns the unbiased running variance (NaN for n < 2).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return math.NaN()
	}
	return w.m2 / float64(w.n-1)
}

// Min returns the running minimum (NaN when empty).
func (w *Welford) Min() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.min
}

// Max returns the running maximum (NaN when empty).
func (w *Welford) Max() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.max
}

// WelfordState is the exported sufficient-statistic tuple of a Welford
// accumulator — what a snapshot codec ships between processes so that
// per-node moments can be merged remotely with exactly the algebra
// Merge applies locally. M2 is the sum of squared deviations from the
// mean (variance = M2/(N-1)).
type WelfordState struct {
	N    int
	Mean float64
	M2   float64
	Min  float64
	Max  float64
}

// State exports the accumulator's sufficient statistics. The zero
// accumulator exports the zero state.
func (w *Welford) State() WelfordState {
	if w.n == 0 {
		return WelfordState{}
	}
	return WelfordState{N: w.n, Mean: w.mean, M2: w.m2, Min: w.min, Max: w.max}
}

// WelfordFromState rebuilds an accumulator from exported sufficient
// statistics: WelfordFromState(w.State()) continues exactly where w
// stood. A state with N <= 0 yields the empty accumulator.
func WelfordFromState(s WelfordState) Welford {
	if s.N <= 0 {
		return Welford{}
	}
	return Welford{n: s.N, mean: s.Mean, m2: s.M2, min: s.Min, max: s.Max}
}
