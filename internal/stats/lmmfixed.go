package stats

import (
	"fmt"
	"math"
)

// GroupX is a random-effect group with group-level covariates (the
// paper's model 2: besides the intercept, X may include map features
// such as the number of traffic lights, bus stops, pedestrian crossings
// or crossings for the cell — all constant within a cell).
type GroupX struct {
	Group
	// Covariates are the group-level fixed-effect values, excluding the
	// intercept (added automatically). All groups must have the same
	// number of covariates.
	Covariates []float64
}

// LMMFixedResult is a fitted mixed model with fixed effects and a
// per-group random intercept:
//
//	y_ij = x_i' b + a_i + e_ij,  a_i ~ N(0, sigmaA2),  e_ij ~ N(0, sigma2)
//
// estimated by REML with the variance ratio profiled out.
type LMMFixedResult struct {
	// Coef holds the fixed effects: Coef[0] is the intercept, then one
	// entry per covariate.
	Coef []float64
	// StdErr are the GLS standard errors of Coef.
	StdErr  []float64
	Sigma2  float64
	SigmaA2 float64
	Lambda  float64
	REML    float64
	Groups  []GroupEffect
	NObs    int
}

// FitLMMFixed estimates the model from group sufficient statistics and
// group-level covariates.
func FitLMMFixed(groups []*GroupX) (*LMMFixedResult, error) {
	var clean []*GroupX
	nCov := -1
	for _, g := range groups {
		if g.N == 0 {
			continue
		}
		if nCov < 0 {
			nCov = len(g.Covariates)
		} else if len(g.Covariates) != nCov {
			return nil, fmt.Errorf("stats: group %q has %d covariates, want %d",
				g.Name, len(g.Covariates), nCov)
		}
		clean = append(clean, g)
	}
	p := nCov + 1 // intercept
	if len(clean) < p+1 {
		return nil, fmt.Errorf("stats: LMM needs more groups (%d) than fixed effects (%d)",
			len(clean), p)
	}
	nTotal := 0
	sse := 0.0
	for _, g := range clean {
		nTotal += g.N
		sse += g.withinSS()
	}
	if nTotal <= len(clean) {
		return nil, fmt.Errorf("stats: LMM needs replicated groups (N=%d, groups=%d)", nTotal, len(clean))
	}

	xrow := func(g *GroupX) []float64 {
		row := make([]float64, p)
		row[0] = 1
		copy(row[1:], g.Covariates)
		return row
	}

	// crit evaluates the profiled -2 REML criterion at lambda and
	// returns it with the GLS beta and sigma2.
	crit := func(lambda float64) (float64, []float64, float64, *Cholesky, error) {
		xtx := NewMatrix(p, p)
		xty := make([]float64, p)
		for _, g := range clean {
			w := float64(g.N) / (1 + float64(g.N)*lambda)
			row := xrow(g)
			for a := 0; a < p; a++ {
				for bIdx := 0; bIdx < p; bIdx++ {
					xtx.Add(a, bIdx, w*row[a]*row[bIdx])
				}
				xty[a] += w * row[a] * g.Mean()
			}
		}
		chol, err := NewCholesky(xtx)
		if err != nil {
			return math.Inf(1), nil, 0, nil, err
		}
		beta := chol.Solve(xty)

		q := sse
		logTerms := 0.0
		for _, g := range clean {
			row := xrow(g)
			var fitted float64
			for a := 0; a < p; a++ {
				fitted += row[a] * beta[a]
			}
			d := g.Mean() - fitted
			q += float64(g.N) * d * d / (1 + float64(g.N)*lambda)
			logTerms += math.Log(1 + float64(g.N)*lambda)
		}
		sigma2 := q / float64(nTotal-p)
		ll := float64(nTotal-p)*math.Log(sigma2) + logTerms + chol.LogDet()
		return ll, beta, sigma2, chol, nil
	}

	// Golden-section over log(lambda) plus the lambda = 0 boundary.
	lo, hi := math.Log(1e-8), math.Log(1e4)
	phi := (math.Sqrt(5) - 1) / 2
	a, b := lo, hi
	c := b - phi*(b-a)
	d := a + phi*(b-a)
	fc, _, _, _, errC := crit(math.Exp(c))
	fd, _, _, _, errD := crit(math.Exp(d))
	if errC != nil || errD != nil {
		return nil, fmt.Errorf("stats: fixed-effect design is rank deficient")
	}
	for it := 0; it < 200 && b-a > 1e-10; it++ {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - phi*(b-a)
			fc, _, _, _, _ = crit(math.Exp(c))
		} else {
			a, c, fc = c, d, fd
			d = a + phi*(b-a)
			fd, _, _, _, _ = crit(math.Exp(d))
		}
	}
	lambda := math.Exp((a + b) / 2)
	best, beta, sigma2, chol, err := crit(lambda)
	if err != nil {
		return nil, err
	}
	if zero, betaZ, s2Z, cholZ, errZ := crit(0); errZ == nil && zero < best {
		best, beta, sigma2, chol, lambda = zero, betaZ, s2Z, cholZ, 0
	}

	res := &LMMFixedResult{
		Coef:    beta,
		Sigma2:  sigma2,
		SigmaA2: lambda * sigma2,
		Lambda:  lambda,
		REML:    best,
		NObs:    nTotal,
	}
	// GLS standard errors: cov(beta) = sigma2 (X'WX)^-1 with the W used
	// above (which already folds sigma2 scaling consistently).
	inv := chol.Inverse()
	res.StdErr = make([]float64, p)
	for j := 0; j < p; j++ {
		res.StdErr[j] = math.Sqrt(sigma2 * inv.At(j, j))
	}
	for _, g := range clean {
		row := xrow(g)
		var fitted float64
		for j := 0; j < p; j++ {
			fitted += row[j] * beta[j]
		}
		shrink := float64(g.N) * lambda / (1 + float64(g.N)*lambda)
		var se float64
		if lambda > 0 {
			se = math.Sqrt(sigma2 * lambda / (1 + float64(g.N)*lambda))
		}
		res.Groups = append(res.Groups, GroupEffect{
			Name: g.Name,
			N:    g.N,
			Mean: g.Mean(),
			BLUP: shrink * (g.Mean() - fitted),
			SE:   se,
		})
	}
	return res, nil
}
