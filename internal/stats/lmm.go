package stats

import (
	"fmt"
	"math"
	"sort"
)

// Group is one random-effect group (a 200 m grid cell in the paper):
// its observations' sufficient statistics.
type Group struct {
	Name  string
	N     int
	Sum   float64
	SumSq float64
}

// AddObs folds one observation into the group.
func (g *Group) AddObs(y float64) {
	g.N++
	g.Sum += y
	g.SumSq += y * y
}

// Mean returns the group mean.
func (g *Group) Mean() float64 { return g.Sum / float64(g.N) }

// withinSS returns the within-group sum of squares.
func (g *Group) withinSS() float64 {
	return g.SumSq - g.Sum*g.Sum/float64(g.N)
}

// LMMResult is a fitted one-way random-intercept linear mixed model
//
//	y_ij = mu + a_i + e_ij,  a_i ~ N(0, sigmaA2),  e_ij ~ N(0, sigma2)
//
// with variance components estimated by REML (the paper's model 3).
type LMMResult struct {
	Mu      float64 // GLS grand mean
	Sigma2  float64 // residual variance
	SigmaA2 float64 // random-intercept variance
	Lambda  float64 // sigmaA2 / sigma2
	REML    float64 // -2 * restricted log-likelihood (up to a constant)
	Groups  []GroupEffect
	NObs    int
}

// GroupEffect is one group's BLUP prediction (Fig 8).
type GroupEffect struct {
	Name string
	N    int
	Mean float64 // raw group mean
	BLUP float64 // predicted random intercept a_i
	// SE is the prediction standard error sqrt(var(a_i | y)); the Fig 8
	// confidence limits are BLUP +/- 1.96 SE.
	SE float64
}

// FitLMM estimates the model from group sufficient statistics.
func FitLMM(groups []*Group) (*LMMResult, error) {
	var clean []*Group
	for _, g := range groups {
		if g.N > 0 {
			clean = append(clean, g)
		}
	}
	if len(clean) < 2 {
		return nil, fmt.Errorf("stats: LMM needs at least two non-empty groups, got %d", len(clean))
	}
	nTotal := 0
	sse := 0.0
	for _, g := range clean {
		nTotal += g.N
		sse += g.withinSS()
	}
	if nTotal <= len(clean) {
		// All groups singleton: variance components are confounded.
		return nil, fmt.Errorf("stats: LMM needs replicated groups (N=%d, groups=%d)", nTotal, len(clean))
	}

	crit := func(lambda float64) (float64, float64, float64) {
		// Returns (-2 REML ll up to constant, mu, sigma2) for lambda.
		var wSum, wySum float64
		for _, g := range clean {
			w := float64(g.N) / (1 + float64(g.N)*lambda)
			wSum += w
			wySum += w * g.Mean()
		}
		mu := wySum / wSum
		q := sse
		logTerms := 0.0
		for _, g := range clean {
			d := g.Mean() - mu
			q += float64(g.N) * d * d / (1 + float64(g.N)*lambda)
			logTerms += math.Log(1 + float64(g.N)*lambda)
		}
		sigma2 := q / float64(nTotal-1)
		ll := float64(nTotal-1)*math.Log(sigma2) + logTerms + math.Log(wSum)
		return ll, mu, sigma2
	}

	// Golden-section search over log(lambda), bracketing [1e-8, 1e4],
	// plus the boundary lambda = 0.
	lo, hi := math.Log(1e-8), math.Log(1e4)
	phi := (math.Sqrt(5) - 1) / 2
	a, b := lo, hi
	c := b - phi*(b-a)
	d := a + phi*(b-a)
	fc, _, _ := crit(math.Exp(c))
	fd, _, _ := crit(math.Exp(d))
	for it := 0; it < 200 && b-a > 1e-10; it++ {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - phi*(b-a)
			fc, _, _ = crit(math.Exp(c))
		} else {
			a, c, fc = c, d, fd
			d = a + phi*(b-a)
			fd, _, _ = crit(math.Exp(d))
		}
	}
	lambda := math.Exp((a + b) / 2)
	best, mu, sigma2 := crit(lambda)
	if zero, muZ, s2Z := crit(0); zero < best {
		best, mu, sigma2, lambda = zero, muZ, s2Z, 0
	}

	res := &LMMResult{
		Mu:      mu,
		Sigma2:  sigma2,
		SigmaA2: lambda * sigma2,
		Lambda:  lambda,
		REML:    best,
		NObs:    nTotal,
	}
	for _, g := range clean {
		shrink := float64(g.N) * lambda / (1 + float64(g.N)*lambda)
		blup := shrink * (g.Mean() - mu)
		// Conditional variance of a_i given the data:
		// (1/sigmaA2 + n_i/sigma2)^-1 = sigma2*lambda / (1+n_i*lambda).
		var se float64
		if lambda > 0 {
			se = math.Sqrt(sigma2 * lambda / (1 + float64(g.N)*lambda))
		}
		res.Groups = append(res.Groups, GroupEffect{
			Name: g.Name,
			N:    g.N,
			Mean: g.Mean(),
			BLUP: blup,
			SE:   se,
		})
	}
	sort.Slice(res.Groups, func(i, j int) bool { return res.Groups[i].Name < res.Groups[j].Name })
	return res, nil
}

// BLUPs returns the predicted intercepts in group order.
func (r *LMMResult) BLUPs() []float64 {
	out := make([]float64, len(r.Groups))
	for i, g := range r.Groups {
		out[i] = g.BLUP
	}
	return out
}

// GroupsFromObservations builds groups from labelled observations.
func GroupsFromObservations(labels []string, ys []float64) ([]*Group, error) {
	if len(labels) != len(ys) {
		return nil, fmt.Errorf("stats: %d labels vs %d observations", len(labels), len(ys))
	}
	byName := map[string]*Group{}
	var order []string
	for i, l := range labels {
		g := byName[l]
		if g == nil {
			g = &Group{Name: l}
			byName[l] = g
			order = append(order, l)
		}
		g.AddObs(ys[i])
	}
	out := make([]*Group, len(order))
	for i, l := range order {
		out[i] = byName[l]
	}
	return out, nil
}
