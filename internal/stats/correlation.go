package stats

import (
	"fmt"
	"math"
	"sort"
)

// Pearson returns the Pearson correlation coefficient of two paired
// samples.
func Pearson(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("stats: paired samples differ in length: %d vs %d", len(x), len(y))
	}
	if len(x) < 2 {
		return 0, fmt.Errorf("stats: correlation needs at least 2 pairs")
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, fmt.Errorf("stats: correlation undefined for a constant sample")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Spearman returns the Spearman rank correlation coefficient, using
// mid-ranks for ties.
func Spearman(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("stats: paired samples differ in length: %d vs %d", len(x), len(y))
	}
	return Pearson(ranks(x), ranks(y))
}

// ranks assigns mid-ranks (1-based) to a sample.
func ranks(xs []float64) []float64 {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	out := make([]float64, len(xs))
	i := 0
	for i < len(idx) {
		j := i
		for j+1 < len(idx) && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		mid := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = mid
		}
		i = j + 1
	}
	return out
}

// TTestResult is a two-sample Welch t-test outcome.
type TTestResult struct {
	T  float64 // test statistic
	DF float64 // Welch-Satterthwaite degrees of freedom
	// P is the two-sided p-value under the normal approximation to the
	// t distribution (adequate for the df sizes in this repo).
	P     float64
	MeanA float64
	MeanB float64
}

// WelchT runs a two-sample t-test without assuming equal variances.
func WelchT(a, b []float64) (TTestResult, error) {
	if len(a) < 2 || len(b) < 2 {
		return TTestResult{}, fmt.Errorf("stats: t-test needs >=2 observations per group (%d, %d)", len(a), len(b))
	}
	ma, mb := Mean(a), Mean(b)
	va, vb := Variance(a), Variance(b)
	na, nb := float64(len(a)), float64(len(b))
	sa, sb := va/na, vb/nb
	se := math.Sqrt(sa + sb)
	if se == 0 {
		return TTestResult{}, fmt.Errorf("stats: t-test undefined for zero-variance groups")
	}
	t := (ma - mb) / se
	df := (sa + sb) * (sa + sb) / (sa*sa/(na-1) + sb*sb/(nb-1))
	p := 2 * (1 - NormalCDF(math.Abs(t)))
	return TTestResult{T: t, DF: df, P: p, MeanA: ma, MeanB: mb}, nil
}
