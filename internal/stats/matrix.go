package stats

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	data       []float64
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("stats: invalid matrix shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.Cols+j] }

// Set writes element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.Cols+j] = v }

// Add increments element (i, j).
func (m *Matrix) Add(i, j int, v float64) { m.data[i*m.Cols+j] += v }

// MulVec returns m * x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("stats: MulVec shape mismatch %d vs %d", len(x), m.Cols))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		var s float64
		row := m.data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// TransposeMul returns mᵀ * m (the Gram matrix), which is symmetric
// positive semi-definite.
func (m *Matrix) TransposeMul() *Matrix {
	out := NewMatrix(m.Cols, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.data[i*m.Cols : (i+1)*m.Cols]
		for a := 0; a < m.Cols; a++ {
			if row[a] == 0 {
				continue
			}
			for b := a; b < m.Cols; b++ {
				out.data[a*m.Cols+b] += row[a] * row[b]
			}
		}
	}
	for a := 0; a < m.Cols; a++ {
		for b := 0; b < a; b++ {
			out.data[a*m.Cols+b] = out.data[b*m.Cols+a]
		}
	}
	return out
}

// TransposeMulVec returns mᵀ * y.
func (m *Matrix) TransposeMulVec(y []float64) []float64 {
	if len(y) != m.Rows {
		panic(fmt.Sprintf("stats: TransposeMulVec shape mismatch %d vs %d", len(y), m.Rows))
	}
	out := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			out[j] += v * y[i]
		}
	}
	return out
}

// Cholesky is the lower-triangular factor of a symmetric
// positive-definite matrix.
type Cholesky struct {
	n int
	l []float64 // row-major lower triangle (full storage)
}

// NewCholesky factors a (assumed symmetric) into L Lᵀ. It fails when a
// is not positive definite.
func NewCholesky(a *Matrix) (*Cholesky, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("stats: cholesky needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	l := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l[i*n+k] * l[j*n+k]
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return nil, fmt.Errorf("stats: matrix not positive definite (pivot %d = %g)", i, sum)
				}
				l[i*n+i] = math.Sqrt(sum)
			} else {
				l[i*n+j] = sum / l[j*n+j]
			}
		}
	}
	return &Cholesky{n: n, l: l}, nil
}

// Solve returns x with (L Lᵀ) x = b.
func (c *Cholesky) Solve(b []float64) []float64 {
	if len(b) != c.n {
		panic(fmt.Sprintf("stats: Solve shape mismatch %d vs %d", len(b), c.n))
	}
	n := c.n
	// Forward substitution: L y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= c.l[i*n+k] * y[k]
		}
		y[i] = s / c.l[i*n+i]
	}
	// Back substitution: Lᵀ x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= c.l[k*n+i] * x[k]
		}
		x[i] = s / c.l[i*n+i]
	}
	return x
}

// Inverse returns (L Lᵀ)⁻¹ by solving against the identity columns.
func (c *Cholesky) Inverse() *Matrix {
	out := NewMatrix(c.n, c.n)
	e := make([]float64, c.n)
	for j := 0; j < c.n; j++ {
		e[j] = 1
		col := c.Solve(e)
		for i := 0; i < c.n; i++ {
			out.Set(i, j, col[i])
		}
		e[j] = 0
	}
	return out
}

// LogDet returns log det(L Lᵀ).
func (c *Cholesky) LogDet() float64 {
	var s float64
	for i := 0; i < c.n; i++ {
		s += math.Log(c.l[i*c.n+i])
	}
	return 2 * s
}
