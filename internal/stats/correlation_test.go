package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestPearsonKnown(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(x, y)
	if err != nil || !feq(r, 1, 1e-12) {
		t.Fatalf("perfect linear: r=%f err=%v", r, err)
	}
	yNeg := []float64{10, 8, 6, 4, 2}
	r, _ = Pearson(x, yNeg)
	if !feq(r, -1, 1e-12) {
		t.Fatalf("perfect negative: r=%f", r)
	}
	// Known value: r of (1,2,3) vs (1,3,2) = 0.5.
	r, _ = Pearson([]float64{1, 2, 3}, []float64{1, 3, 2})
	if !feq(r, 0.5, 1e-12) {
		t.Fatalf("known r = %f, want 0.5", r)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("ragged input accepted")
	}
	if _, err := Pearson([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single pair accepted")
	}
	if _, err := Pearson([]float64{3, 3, 3}, []float64{1, 2, 3}); err == nil {
		t.Fatal("constant sample accepted")
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// A monotone nonlinear relation: Spearman 1, Pearson < 1.
	x := []float64{1, 2, 3, 4, 5, 6}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = math.Exp(v)
	}
	rs, err := Spearman(x, y)
	if err != nil || !feq(rs, 1, 1e-12) {
		t.Fatalf("spearman = %f err=%v, want 1", rs, err)
	}
	rp, _ := Pearson(x, y)
	if rp >= 1-1e-9 {
		t.Fatalf("pearson %f should be below 1 for a convex relation", rp)
	}
}

func TestSpearmanTies(t *testing.T) {
	// Mid-rank handling: ties must not panic and must stay in [-1, 1].
	x := []float64{1, 1, 2, 2, 3}
	y := []float64{1, 2, 2, 3, 3}
	r, err := Spearman(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if r < 0.5 || r > 1 {
		t.Fatalf("tied spearman = %f", r)
	}
}

func TestRanks(t *testing.T) {
	got := ranks([]float64{30, 10, 20, 10})
	want := []float64{4, 1.5, 3, 1.5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", got, want)
		}
	}
}

func TestWelchTSeparatesGroups(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := make([]float64, 200)
	b := make([]float64, 150)
	for i := range a {
		a[i] = 20 + rng.NormFloat64()*4
	}
	for i := range b {
		b[i] = 25 + rng.NormFloat64()*6
	}
	res, err := WelchT(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.T >= 0 {
		t.Fatalf("t = %f, group A is smaller so t must be negative", res.T)
	}
	if res.P > 1e-6 {
		t.Fatalf("p = %g, a 5-unit gap must be overwhelming", res.P)
	}
	if res.DF < 100 {
		t.Fatalf("df = %f implausible", res.DF)
	}
}

func TestWelchTNull(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	rejections := 0
	for trial := 0; trial < 100; trial++ {
		a := make([]float64, 50)
		b := make([]float64, 50)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		res, err := WelchT(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if res.P < 0.05 {
			rejections++
		}
	}
	// Under the null, ~5 % false rejections; allow generous slack.
	if rejections > 15 {
		t.Fatalf("%d/100 null rejections", rejections)
	}
}

func TestWelchTErrors(t *testing.T) {
	if _, err := WelchT([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("tiny group accepted")
	}
	if _, err := WelchT([]float64{2, 2}, []float64{2, 2}); err == nil {
		t.Fatal("zero-variance groups accepted")
	}
}
