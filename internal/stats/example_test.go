package stats_test

import (
	"fmt"

	"repro/internal/stats"
)

func ExampleSummarize() {
	// A Table 4 style six-number summary.
	s := stats.Summarize([]float64{0.058, 0.089, 0.120, 0.153, 0.188, 0.458})
	fmt.Printf("min=%.3f median=%.3f mean=%.3f max=%.3f\n", s.Min, s.Median, s.Mean, s.Max)
	// Output:
	// min=0.058 median=0.137 mean=0.178 max=0.458
}

func ExampleFitLMM() {
	// Three grid cells with point speeds: the mixed model shrinks each
	// cell's deviation toward the grand mean, more for sparse cells.
	cells := []*stats.Group{{Name: "fast"}, {Name: "slow"}, {Name: "sparse"}}
	for _, v := range []float64{38, 41, 39, 42, 40} {
		cells[0].AddObs(v)
	}
	for _, v := range []float64{18, 21, 19, 22, 20} {
		cells[1].AddObs(v)
	}
	for _, v := range []float64{50, 52} {
		cells[2].AddObs(v)
	}
	fit, err := stats.FitLMM(cells)
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, g := range fit.Groups {
		raw := g.Mean - fit.Mu
		fmt.Printf("%-6s n=%d raw %+6.2f -> BLUP %+6.2f\n", g.Name, g.N, raw, g.BLUP)
	}
	// Output:
	// fast   n=5 raw  +3.01 -> BLUP  +3.01
	// slow   n=5 raw -16.99 -> BLUP -16.95
	// sparse n=2 raw +14.01 -> BLUP +13.94
}

func ExampleOLS() {
	// Fit y = 3 + 2x.
	x := []float64{0, 1, 2, 3}
	y := []float64{3, 5, 7, 9}
	design, _ := stats.Design(x)
	fit, _ := stats.OLS(design, y)
	fmt.Printf("intercept %.1f, slope %.1f, R2 %.2f\n", fit.Coef[0], fit.Coef[1], fit.R2)
	// Output:
	// intercept 3.0, slope 2.0, R2 1.00
}

func ExampleNormalQuantile() {
	fmt.Printf("%.2f\n", stats.NormalQuantile(0.975))
	// Output:
	// 1.96
}
