package core

import (
	"math"
	"sort"

	"repro/internal/digiroad"
	"repro/internal/geo"
	"repro/internal/grid"
	"repro/internal/stats"
)

// HotspotCell is a grid cell flagged as a crowded-area candidate: its
// speed deficit is not explained by the static map features.
type HotspotCell struct {
	ID      grid.CellID
	Center  geo.XY
	N       int
	BLUP    float64 // residual intercept after the feature fixed effects
	RawMean float64
}

// HotspotDetection is the outcome of DetectHotspots.
type HotspotDetection struct {
	Cells []HotspotCell // flagged cells, most negative first
	// ThresholdKmh is the residual-intercept cutoff used.
	ThresholdKmh float64
}

// DetectHotspots finds crowded-area candidates the way the paper's
// discussion implies (§VI): fit the mixed model with the map features
// as fixed effects, then flag the cells whose *residual* intercept is
// still strongly negative — speed deficits that traffic lights, bus
// stops, crossings and junctions do not explain, pointing at real
// pedestrian movements (the paper cross-references the WiFi crowd study
// of Kostakos et al. [29] for exactly this).
//
// thresholdKmh < 0 flags cells with BLUP below it; pass 0 for the
// default of one between-cell standard deviation.
func (p *Pipeline) DetectHotspots(recs []*TransitionRecord, thresholdKmh float64) (*HotspotDetection, error) {
	g, err := grid.New(p.City.StudyArea, p.Config.GridCellM)
	if err != nil {
		return nil, err
	}
	agg := grid.NewAggregator(g)
	for _, rec := range recs {
		for _, sp := range TransitionSpeedPoints(rec) {
			agg.Add(sp.Pos, sp.SpeedKmh)
		}
	}
	agg.AttachFeatures(p.City.DB, p.Graph)
	fit, err := stats.FitLMMFixed(agg.LMMGroupsWithFeatures())
	if err != nil {
		return nil, err
	}
	if thresholdKmh >= 0 {
		thresholdKmh = -math.Sqrt(math.Max(0, fit.SigmaA2))
	}
	byName := map[string]stats.GroupEffect{}
	for _, e := range fit.Groups {
		byName[e.Name] = e
	}
	det := &HotspotDetection{ThresholdKmh: thresholdKmh}
	for _, cell := range agg.Cells() {
		e, ok := byName[cell.ID.String()]
		if !ok || e.BLUP > thresholdKmh {
			continue
		}
		det.Cells = append(det.Cells, HotspotCell{
			ID:      cell.ID,
			Center:  agg.Grid.CellCenter(cell.ID),
			N:       cell.Speed.N(),
			BLUP:    e.BLUP,
			RawMean: cell.Speed.Mean(),
		})
	}
	sort.Slice(det.Cells, func(i, j int) bool { return det.Cells[i].BLUP < det.Cells[j].BLUP })
	return det, nil
}

// EvaluateHotspotRecovery scores detected cells against the city's
// planted crowded areas: a detection is a hit when the cell centre lies
// within slack metres of a true hotspot.
type HotspotRecovery struct {
	Detected  int
	Hits      int
	Precision float64
	// HotspotsFound is how many distinct true hotspots have at least
	// one detected cell.
	HotspotsFound int
	HotspotsTotal int
}

// EvaluateHotspotRecovery compares a detection against ground truth.
func EvaluateHotspotRecovery(det *HotspotDetection, truth []digiroad.Hotspot, slackM float64) HotspotRecovery {
	r := HotspotRecovery{Detected: len(det.Cells), HotspotsTotal: len(truth)}
	found := make([]bool, len(truth))
	for _, c := range det.Cells {
		hit := false
		for i, h := range truth {
			if h.Center.Dist(c.Center) <= h.Radius+slackM {
				hit = true
				found[i] = true
			}
		}
		if hit {
			r.Hits++
		}
	}
	for _, f := range found {
		if f {
			r.HotspotsFound++
		}
	}
	if r.Detected > 0 {
		r.Precision = float64(r.Hits) / float64(r.Detected)
	}
	return r
}
