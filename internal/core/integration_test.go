package core

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/digiroad"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

// TestCSVRoundTripThroughPipeline is the interchange integration test:
// trips serialised to CSV (the cmd/tracegen path) and read back must
// flow through the pipeline with the same funnel results as the
// in-memory trips, up to sub-centimetre coordinate rounding.
func TestCSVRoundTripThroughPipeline(t *testing.T) {
	p, err := NewPipeline(Config{
		CitySeed: 9,
		Fleet:    tracegen.Config{Seed: 9, Cars: 1, TripsPerCar: 10, GateRunFraction: 0.4},
	})
	if err != nil {
		t.Fatal(err)
	}
	raw := p.Gen.CarTrips(1)

	var buf bytes.Buffer
	if err := trace.WriteCSV(&buf, raw, p.City.DB.Proj); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	loaded, err := trace.ReadCSV(bytes.NewReader(buf.Bytes()), p.City.DB.Proj)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if len(loaded) != len(raw) {
		t.Fatalf("loaded %d trips, want %d", len(loaded), len(raw))
	}

	direct, err := p.ProcessContext(context.Background(), 1, raw)
	if err != nil {
		t.Fatal(err)
	}
	viaCSV, err := p.ProcessContext(context.Background(), 1, loaded)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Funnel != viaCSV.Funnel {
		t.Fatalf("funnels differ:\ndirect %+v\nvia csv %+v", direct.Funnel, viaCSV.Funnel)
	}
	if len(direct.Transitions) != len(viaCSV.Transitions) {
		t.Fatalf("transitions differ: %d vs %d", len(direct.Transitions), len(viaCSV.Transitions))
	}
	for i := range direct.Transitions {
		a, b := direct.Transitions[i], viaCSV.Transitions[i]
		if a.Direction() != b.Direction() {
			t.Fatalf("transition %d direction %s vs %s", i, a.Direction(), b.Direction())
		}
		if d := a.RouteDistKm - b.RouteDistKm; d > 0.01 || d < -0.01 {
			t.Fatalf("transition %d distance drifted: %f vs %f", i, a.RouteDistKm, b.RouteDistKm)
		}
	}
}

// TestMapCSVRoundTripThroughGraph: a city database serialised to CSV
// and reloaded must rebuild into an equivalent road graph and support
// a pipeline via NewPipelineWithCity.
func TestMapCSVRoundTripThroughGraph(t *testing.T) {
	orig := digiroad.SynthesizeOulu(digiroad.SynthConfig{Seed: 9})
	var buf bytes.Buffer
	if err := orig.DB.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	db := digiroad.NewDatabase(digiroad.OuluOrigin)
	if err := db.ReadCSV(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	reloaded := &digiroad.City{
		DB:          db,
		GateT:       orig.GateT,
		GateS:       orig.GateS,
		GateL:       orig.GateL,
		Hotspots:    orig.Hotspots,
		CentralArea: orig.CentralArea,
		StudyArea:   orig.StudyArea,
	}
	p, err := NewPipelineWithCity(reloaded, Config{
		Fleet: tracegen.Config{Seed: 9, Cars: 1, TripsPerCar: 4, GateRunFraction: 0.4},
	})
	if err != nil {
		t.Fatalf("NewPipelineWithCity: %v", err)
	}
	pOrig, err := NewPipelineWithCity(orig, Config{
		Fleet: tracegen.Config{Seed: 9, Cars: 1, TripsPerCar: 4, GateRunFraction: 0.4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Graph.Edges) != len(pOrig.Graph.Edges) ||
		len(p.Graph.Nodes) != len(pOrig.Graph.Nodes) {
		t.Fatalf("reloaded graph differs: %d/%d edges, %d/%d nodes",
			len(p.Graph.Edges), len(pOrig.Graph.Edges),
			len(p.Graph.Nodes), len(pOrig.Graph.Nodes))
	}
	res, err := p.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Segments()) == 0 {
		t.Fatal("reloaded-city pipeline produced nothing")
	}
}
