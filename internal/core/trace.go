package core

import (
	"context"
	"runtime/pprof"

	"repro/internal/obs"
	"repro/internal/runner"
)

// Tracing glue: the pipeline opens one root span per sampled car (in
// RunCarContext, or lazily in ProcessContext for callers that feed raw
// trips directly) and one child span per stage. Stage spans double as
// pprof scopes — while a traced stage runs, the goroutine carries a
// {stage=<name>} profiler label, so CPU profiles taken during a traced
// run attribute samples to pipeline stages. The unsampled path costs
// one nil check per call site.

// stageLabelCtx pre-builds one pprof label set per stage so the hot
// path never re-allocates label storage.
var stageLabelCtx = func() map[string]context.Context {
	m := make(map[string]context.Context, len(StageNames))
	for _, s := range StageNames {
		m[s] = pprof.WithLabels(context.Background(), pprof.Labels("stage", s))
	}
	return m
}()

// ensureCarTrace returns ctx carrying the root span for car, opening
// one when the pipeline traces, the car is sampled, and no root is in
// flight yet (retries and direct ProcessContext callers both land
// here). The returned span is the one the caller must close via
// endCarTrace; it is inactive when a root already existed.
func (p *Pipeline) ensureCarTrace(ctx context.Context, car int) (context.Context, obs.TraceSpan) {
	if p.Config.Tracer == nil || obs.SpanFromContext(ctx).Active() {
		return ctx, obs.TraceSpan{}
	}
	sp := p.Config.Tracer.StartSpan("car", car)
	if !sp.Active() {
		return ctx, sp
	}
	return obs.ContextWithSpan(ctx, sp), sp
}

// endCarTrace closes a car's root span with its outcome: the runner
// attempt number, retry=true on re-attempts (so trace consumers can
// discount them exactly like the lineage does), and the terminal
// status.
func endCarTrace(ctx context.Context, sp obs.TraceSpan, err error) {
	if !sp.Active() {
		return
	}
	attrs := make([]obs.TraceAttr, 0, 3)
	if att := runner.AttemptOf(ctx); att > 0 {
		attrs = append(attrs, obs.TAttr("attempt", itoa(att)))
		if att > 1 {
			attrs = append(attrs, obs.TAttr("retry", "true"))
		}
	}
	status := "ok"
	if err != nil {
		status = "error"
	}
	sp.End(append(attrs, obs.TAttr("status", status))...)
}

// stageTrace is one in-flight stage span plus its pprof label scope.
type stageTrace struct{ sp obs.TraceSpan }

// traceStage opens a stage child span under the car's root span (a
// no-op when the car is untraced) and applies the stage's profiler
// label to the goroutine.
func (p *Pipeline) traceStage(ctx context.Context, name string) stageTrace {
	sp := obs.SpanFromContext(ctx)
	if !sp.Active() {
		return stageTrace{}
	}
	if lctx := stageLabelCtx[name]; lctx != nil {
		pprof.SetGoroutineLabels(lctx)
	}
	return stageTrace{sp: sp.Child(name)}
}

// End closes the stage span with attrs and clears the profiler label.
func (s stageTrace) End(attrs ...obs.TraceAttr) {
	if !s.sp.Active() {
		return
	}
	s.sp.End(attrs...)
	pprof.SetGoroutineLabels(context.Background())
}

// itoa formats a small non-negative int without strconv in the span
// path.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
