package core

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/runner"
)

// faultConfig returns the determinism fleet with a fault injector and
// runner knobs applied on top.
func faultConfig(mut func(*Config)) Config {
	cfg := determinismConfig()
	if mut != nil {
		mut(&cfg)
	}
	return cfg
}

// runClean produces the reference no-fault result for comparison.
func runClean(t *testing.T) *Result {
	t.Helper()
	p, err := NewPipeline(determinismConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFaultIsolation is the acceptance test for per-car isolation:
// with one car forced to fail permanently at the mapmatch stage, the
// run returns N−1 CarResults — byte-identical to the same cars from a
// clean run — plus a CarError identifying car and stage.
func TestFaultIsolation(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := faultConfig(func(c *Config) {
		c.Metrics = reg
		c.Faults = runner.FaultFunc(func(car int, stage string) error {
			if car == 2 && stage == "mapmatch" {
				return errors.New("injected: poisoned car")
			}
			return nil
		})
	})
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.RunContext(context.Background())
	if err == nil {
		t.Fatal("expected a joined error naming the poisoned car")
	}
	if len(res.Cars) != 2 {
		t.Fatalf("want N-1 = 2 CarResults, got %d", len(res.Cars))
	}
	failed := FailedCars(err)
	if len(failed) != 1 {
		t.Fatalf("FailedCars = %+v, want exactly one", failed)
	}
	if failed[0].Car != 2 || failed[0].Stage != "mapmatch" {
		t.Fatalf("CarError = car %d stage %q, want car 2 stage mapmatch", failed[0].Car, failed[0].Stage)
	}
	// A run-level error must NOT be present: one isolated failure is
	// within the (unlimited) default budget.
	if errors.Is(err, ErrBudgetExceeded) {
		t.Fatal("isolated failure misreported as budget abort")
	}

	// The surviving cars are byte-identical to the clean run's.
	clean := runClean(t)
	for _, cr := range res.Cars {
		want, got := clean.Cars[cr.Car-1], cr
		wj, _ := json.Marshal(want)
		gj, _ := json.Marshal(got)
		if !bytes.Equal(wj, gj) {
			t.Fatalf("car %d diverged from the clean run", cr.Car)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counters["runner_cars_failed"]; got != 1 {
		t.Fatalf("runner_cars_failed = %d, want 1", got)
	}
	if got := snap.Counters["runner_cars_ok"]; got != 2 {
		t.Fatalf("runner_cars_ok = %d, want 2", got)
	}
}

// TestFaultPanicIsolation proves a panicking car is captured as a
// CarError instead of crashing the process.
func TestFaultPanicIsolation(t *testing.T) {
	cfg := faultConfig(func(c *Config) {
		c.Faults = runner.FaultFunc(func(car int, stage string) error {
			if car == 1 && stage == "segment" {
				panic("injected panic")
			}
			return nil
		})
	})
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.RunContext(context.Background())
	if len(res.Cars) != 2 {
		t.Fatalf("want 2 survivors, got %d", len(res.Cars))
	}
	failed := FailedCars(err)
	if len(failed) != 1 || failed[0].Car != 1 {
		t.Fatalf("FailedCars = %+v", failed)
	}
	var pe *runner.PanicError
	if !errors.As(failed[0], &pe) {
		t.Fatalf("want PanicError in the chain, got %v", failed[0])
	}
}

// TestFaultRetryRecovers proves a transiently failing car is retried
// with deterministic backoff and contributes its full result.
func TestFaultRetryRecovers(t *testing.T) {
	reg := obs.NewRegistry()
	remaining := 2 // first two attempts at car 3's clean stage fail
	cfg := faultConfig(func(c *Config) {
		c.Metrics = reg
		c.MaxAttempts = 3
		c.Workers = 1 // serialise so the injector needs no locking
		c.Faults = runner.FaultFunc(func(car int, stage string) error {
			if car == 3 && stage == "clean" && remaining > 0 {
				remaining--
				return runner.Transient(errors.New("injected: flaky ingest"))
			}
			return nil
		})
	})
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.RunContext(context.Background())
	if err != nil {
		t.Fatalf("retries should have recovered the car: %v", err)
	}
	if len(res.Cars) != 3 {
		t.Fatalf("want full fleet, got %d cars", len(res.Cars))
	}
	clean := runClean(t)
	wj, _ := json.Marshal(clean)
	gj, _ := json.Marshal(res)
	if !bytes.Equal(wj, gj) {
		t.Fatal("retried run diverged from the clean run")
	}
	if got := reg.Snapshot().Counters["runner_cars_retried"]; got != 2 {
		t.Fatalf("runner_cars_retried = %d, want 2", got)
	}
}

// TestBudgetAbortReturnsPartialResults is the acceptance test for the
// error budget: with more failures than MaxFailures allows, the run
// aborts early and still returns the partial results.
func TestBudgetAbortReturnsPartialResults(t *testing.T) {
	cfg := faultConfig(func(c *Config) {
		c.Workers = 1
		c.MaxFailures = 1
		c.Faults = runner.FaultFunc(func(car int, stage string) error {
			if stage == "clean" && car >= 2 {
				return fmt.Errorf("injected: car %d bad", car)
			}
			return nil
		})
	})
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.RunContext(context.Background())
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded in the chain", err)
	}
	if len(res.Cars) != 1 || res.Cars[0].Car != 1 {
		t.Fatalf("partial results lost: %d cars", len(res.Cars))
	}
	if failed := FailedCars(err); len(failed) != 2 {
		t.Fatalf("FailedCars = %+v, want cars 2 and 3", failed)
	}
}

// TestStreamMatchesBatch asserts streaming order-independence: the
// events collected from Stream, re-assembled in car order, are
// byte-identical to the batch RunContext result.
func TestStreamMatchesBatch(t *testing.T) {
	p, err := NewPipeline(determinismConfig())
	if err != nil {
		t.Fatal(err)
	}
	st := p.Stream(context.Background())
	byCar := map[int]CarResult{}
	for ev := range st.Events() {
		if ev.Err != nil {
			t.Fatalf("car %d: %v", ev.Car, ev.Err)
		}
		byCar[ev.Car] = ev.Result
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	streamed := &Result{}
	for car := 1; car <= p.Gen.Cars(); car++ {
		cr, ok := byCar[car]
		if !ok {
			t.Fatalf("car %d missing from the stream", car)
		}
		streamed.Cars = append(streamed.Cars, cr)
	}
	clean := runClean(t)
	wj, _ := json.Marshal(clean)
	gj, _ := json.Marshal(streamed)
	if !bytes.Equal(wj, gj) {
		t.Fatal("streamed result diverged from the batch result")
	}
}

// TestCancellationPromptAndLeakFree cancels a run stalled inside a
// slow car and asserts the batch call returns well within one
// task latency, reports the context error, and leaks no goroutines.
func TestCancellationPromptAndLeakFree(t *testing.T) {
	const stall = 5 * time.Second
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	entered := make(chan struct{}, 8)
	cfg := faultConfig(func(c *Config) {
		c.Workers = 2
		c.Faults = runner.FaultFunc(func(car int, stage string) error {
			if stage == "simulate" {
				entered <- struct{}{}
				// A slow car: stall until the run is cancelled.
				select {
				case <-ctx.Done():
					return ctx.Err()
				case <-time.After(stall):
					return nil
				}
			}
			return nil
		})
	})
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var res *Result
	var runErr error
	go func() {
		res, runErr = p.RunContext(ctx)
		close(done)
	}()
	<-entered // a car is stalled inside its stage
	cancel()
	select {
	case <-done:
	case <-time.After(stall / 2):
		t.Fatal("cancellation did not drain the run promptly")
	}
	if !errors.Is(runErr, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", runErr)
	}
	if len(res.Cars) != 0 {
		t.Fatalf("no car should have completed, got %d", len(res.Cars))
	}
	// Cancellation must not masquerade as car faults.
	if failed := FailedCars(runErr); len(failed) != 0 {
		t.Fatalf("cancelled cars misreported as failures: %+v", failed)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Fatalf("goroutine leak: %d before, %d after", before, g)
	}
}

// TestProcessContextHonorsCancellationBetweenTransitions feeds a
// pre-cancelled context into ProcessContext and asserts it refuses to
// start (the per-transition loop's check is exercised by the prompt-
// cancellation test above at fleet level).
func TestProcessContextHonorsCancellation(t *testing.T) {
	p, err := NewPipeline(determinismConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = p.RunCarContext(ctx, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestTypedStageErrors pins the errors.Is contracts the runner's
// retry/report classification relies on.
func TestTypedStageErrors(t *testing.T) {
	if !errors.Is(fmt.Errorf("wrap: %w", ErrDegenerateSpan), ErrDegenerateSpan) {
		t.Fatal("ErrDegenerateSpan lost through wrapping")
	}
	if runner.IsRetryable(ErrDegenerateSpan) {
		t.Fatal("pipeline stage errors must be permanent by default")
	}
}
