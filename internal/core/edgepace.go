package core

import (
	"math"

	"repro/internal/roadnet"
)

// EdgePace is one observed traversal pace over a single road edge,
// extracted from a matched transition: the time the car actually spent
// per kilometre of that edge, bucketed by time of day. Paces (rather
// than absolute edge seconds) make partial traversals usable — a run of
// points covering half an edge still measures the same quantity — and
// keep the consumer free of any dependency on edge lengths.
type EdgePace struct {
	Edge roadnet.EdgeID
	// Hour is the UTC time-of-day bucket (0-23) of the run's first point.
	Hour int
	// SecPerKm is the observed pace in seconds per kilometre.
	SecPerKm float64
}

// minPaceRunM is the minimum along-edge distance a run of matched
// points must cover before it yields a pace observation; anything
// shorter is dominated by GPS projection noise rather than movement.
const minPaceRunM = 5.0

// TransitionEdgePaces extracts the per-edge pace observations of one
// matched transition. The matcher's point assignments are walked in
// order; every maximal run of consecutive non-skipped points sharing an
// edge whose endpoints are separated by at least minPaceRunM along the
// edge geometry and by positive event time yields one observation. The
// result is deterministic for a given record, so every ingest mode
// (batch, streamed, cluster worker) emits identical observations for
// identical transitions.
func TransitionEdgePaces(rec *TransitionRecord) []EdgePace {
	if rec.Match == nil {
		return nil
	}
	pts := rec.Transition.Seg.Points
	lo, hi := rec.Transition.FromCross.EntryIndex, rec.Transition.ToCross.ExitIndex
	if lo > hi {
		lo, hi = hi, lo
	}
	span := pts[lo : hi+1]
	mp := rec.Match.Points
	n := len(span)
	if len(mp) < n {
		n = len(mp)
	}
	var out []EdgePace
	for i := 0; i < n; {
		if mp[i].Skipped {
			i++
			continue
		}
		j := i
		for j+1 < n && !mp[j+1].Skipped && mp[j+1].Edge == mp[i].Edge {
			j++
		}
		if j > i {
			dt := span[j].Time.Sub(span[i].Time).Seconds()
			dm := math.Abs(mp[j].Proj.Along - mp[i].Proj.Along)
			if dt > 0 && dm >= minPaceRunM {
				out = append(out, EdgePace{
					Edge:     mp[i].Edge,
					Hour:     span[i].Time.UTC().Hour(),
					SecPerKm: dt / dm * 1000,
				})
			}
		}
		i = j + 1
	}
	return out
}
