package core

import (
	"context"
	"testing"

	"repro/internal/tracegen"
)

// smallPipeline builds a pipeline sized for unit tests: few trips, a
// high gate fraction so transitions actually occur.
func smallPipeline(t *testing.T) *Pipeline {
	t.Helper()
	p, err := NewPipeline(Config{
		CitySeed: 1,
		Fleet: tracegen.Config{
			Seed:            2,
			Cars:            2,
			TripsPerCar:     8,
			GateRunFraction: 0.5,
		},
	})
	if err != nil {
		t.Fatalf("NewPipeline: %v", err)
	}
	return p
}

func TestPipelineRunEndToEnd(t *testing.T) {
	p := smallPipeline(t)
	res, err := p.RunContext(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Cars) != 2 {
		t.Fatalf("cars = %d", len(res.Cars))
	}
	for _, cr := range res.Cars {
		if cr.RawTrips == 0 || len(cr.Segments) == 0 {
			t.Fatalf("car %d produced nothing: %+v", cr.Car, cr)
		}
		// Funnel consistency.
		f := cr.Funnel
		if f.TripSegments != len(cr.Segments) {
			t.Fatalf("funnel segments %d != %d", f.TripSegments, len(cr.Segments))
		}
		if !(f.TripSegments >= f.Filtered && f.Filtered >= f.Transitions &&
			f.Transitions >= f.WithinCentre && f.WithinCentre >= f.PostFiltered) {
			t.Fatalf("funnel not monotone: %+v", f)
		}
		if len(cr.Transitions) > f.PostFiltered {
			t.Fatalf("more analysed transitions (%d) than accepted (%d)",
				len(cr.Transitions), f.PostFiltered)
		}
	}
	if len(res.Transitions()) == 0 {
		t.Fatal("no transitions survived the pipeline")
	}
}

func TestTransitionMetricsPlausible(t *testing.T) {
	p := smallPipeline(t)
	res, err := p.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range res.Transitions() {
		if rec.RouteTimeH <= 0 || rec.RouteTimeH > 1 {
			t.Fatalf("route time %f h implausible", rec.RouteTimeH)
		}
		if rec.RouteDistKm < 0.5 || rec.RouteDistKm > 15 {
			t.Fatalf("route distance %f km implausible", rec.RouteDistKm)
		}
		if rec.LowSpeedPct < 0 || rec.LowSpeedPct > 100 ||
			rec.NormalSpeedPct < 0 || rec.NormalSpeedPct > 100 {
			t.Fatalf("percentages out of range: %+v", rec)
		}
		if rec.FuelMl <= 0 {
			t.Fatalf("fuel %f must be positive", rec.FuelMl)
		}
		if rec.Attrs.Junctions == 0 {
			t.Fatalf("a downtown transition must pass junctions: %+v", rec.Attrs)
		}
		switch rec.Direction() {
		case "T-S", "S-T", "T-L", "L-T":
		default:
			t.Fatalf("unexpected direction %q", rec.Direction())
		}
	}
}

func TestCleaningStageEngages(t *testing.T) {
	p := smallPipeline(t)
	res, err := p.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	reordered := 0
	for _, cr := range res.Cars {
		reordered += cr.CleanStats.Reordered
	}
	if reordered == 0 {
		t.Fatal("cleaning never repaired an ordering; corruption not exercised")
	}
}

func TestGridAnalysis(t *testing.T) {
	p := smallPipeline(t)
	res, err := p.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	recs := res.Transitions()
	agg, lmm, err := p.GridAnalysis(recs)
	if err != nil {
		t.Fatalf("GridAnalysis: %v", err)
	}
	if agg.NumNonEmpty() < 5 {
		t.Fatalf("only %d non-empty cells", agg.NumNonEmpty())
	}
	if lmm.NObs == 0 || lmm.Sigma2 <= 0 {
		t.Fatalf("LMM fit degenerate: %+v", lmm)
	}
	// Speeds are km/h city driving: grand mean sane.
	if lmm.Mu < 5 || lmm.Mu > 70 {
		t.Fatalf("grand mean speed %f implausible", lmm.Mu)
	}
	// PointSpeeds matches the grid observation count up to points
	// outside the study area.
	speeds := PointSpeeds(recs)
	if len(speeds) < lmm.NObs {
		t.Fatalf("point speeds %d < LMM observations %d", len(speeds), lmm.NObs)
	}
}

func TestTransitionSpeedPoints(t *testing.T) {
	p := smallPipeline(t)
	res, err := p.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	recs := res.Transitions()
	if len(recs) == 0 {
		t.Skip("no transitions in this configuration")
	}
	sp := TransitionSpeedPoints(recs[0])
	if len(sp) < 2 {
		t.Fatalf("speed points = %d", len(sp))
	}
	for _, s := range sp {
		if s.SpeedKmh < 0 {
			t.Fatalf("negative speed point")
		}
	}
}

func TestPipelineDeterministic(t *testing.T) {
	a := smallPipeline(t)
	b := smallPipeline(t)
	ra, err := a.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ta, tb := ra.Transitions(), rb.Transitions()
	if len(ta) != len(tb) {
		t.Fatalf("transition counts differ: %d vs %d", len(ta), len(tb))
	}
	for i := range ta {
		if ta[i].Direction() != tb[i].Direction() || ta[i].RouteDistKm != tb[i].RouteDistKm {
			t.Fatalf("transition %d differs between identical runs", i)
		}
	}
}

func TestFeatureModel(t *testing.T) {
	p := smallPipeline(t)
	res, err := p.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	fit, err := p.FeatureModel(res.Transitions())
	if err != nil {
		t.Fatalf("FeatureModel: %v", err)
	}
	if len(fit.Coef) != len(FeatureNames)+1 || len(fit.StdErr) != len(fit.Coef) {
		t.Fatalf("coefficient shape: %d coefs", len(fit.Coef))
	}
	if fit.Sigma2 <= 0 || fit.NObs == 0 {
		t.Fatalf("degenerate fit: %+v", fit)
	}
}

func TestDetectHotspotsRecoversPlantedAreas(t *testing.T) {
	// The information-discovery claim end to end: the feature-adjusted
	// mixed model must flag cells concentrated at the city's planted
	// crowded areas.
	p, err := NewPipeline(Config{
		CitySeed: 42,
		Fleet: tracegen.Config{
			Seed: 42, Cars: 3, TripsPerCar: 40, GateRunFraction: 0.3,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	det, err := p.DetectHotspots(res.Transitions(), 0)
	if err != nil {
		t.Fatalf("DetectHotspots: %v", err)
	}
	if len(det.Cells) == 0 {
		t.Fatal("no hotspot candidates flagged")
	}
	if det.ThresholdKmh >= 0 {
		t.Fatalf("threshold = %f, want negative", det.ThresholdKmh)
	}
	// Most-negative first.
	for i := 1; i < len(det.Cells); i++ {
		if det.Cells[i].BLUP < det.Cells[i-1].BLUP {
			t.Fatal("cells not ordered by deficit")
		}
	}
	rec := EvaluateHotspotRecovery(det, p.City.Hotspots, 150)
	t.Logf("detected %d cells, precision %.2f, hotspots found %d/%d",
		rec.Detected, rec.Precision, rec.HotspotsFound, rec.HotspotsTotal)
	if rec.HotspotsFound != rec.HotspotsTotal {
		t.Fatalf("missed planted hotspots: %d/%d", rec.HotspotsFound, rec.HotspotsTotal)
	}
	if rec.Precision < 0.5 {
		t.Fatalf("precision %.2f too low: flagged cells scattered away from crowds", rec.Precision)
	}
}

func TestEvaluateHotspotRecoveryEmpty(t *testing.T) {
	r := EvaluateHotspotRecovery(&HotspotDetection{}, nil, 100)
	if r.Detected != 0 || r.Precision != 0 || r.HotspotsFound != 0 {
		t.Fatalf("empty recovery = %+v", r)
	}
}
