package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/obs"
	"repro/internal/trace"
)

// TestStrictCheckFailsCarThroughFaultPath feeds the pipeline a raw trip
// violating the input invariant (a point claiming a different trip id)
// and asserts the strict checker surfaces it exactly like an injected
// fault: a typed *CheckError wrapped with the stage name, recoverable
// with errors.As, and counted on the violation counter.
func TestStrictCheckFailsCarThroughFaultPath(t *testing.T) {
	cfg := determinismConfig()
	cfg.Metrics = obs.NewRegistry()
	cfg.Check = check.Config{Strict: true}
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}

	corrupt := &trace.Trip{ID: 1}
	base := time.Date(2016, 3, 1, 8, 0, 0, 0, time.UTC)
	for i := 0; i < 4; i++ {
		corrupt.Points = append(corrupt.Points, trace.RoutePoint{
			TripID: 1, PointID: i + 1, Time: base.Add(time.Duration(i) * time.Second),
		})
	}
	corrupt.Points[2].TripID = 77 // foreign point: Trip.Validate fails

	_, err = p.ProcessContext(context.Background(), 9, []*trace.Trip{corrupt})
	if err == nil {
		t.Fatal("strict checker let a corrupt raw trip through")
	}
	var ce *check.CheckError
	if !errors.As(err, &ce) {
		t.Fatalf("want *check.CheckError in chain, got %v", err)
	}
	if len(ce.Violations) == 0 || ce.Violations[0].Stage != "simulate" || ce.Violations[0].Car != 9 {
		t.Fatalf("violation attribution: %+v", ce.Violations)
	}
	name := `check_violations_total{stage="simulate",rule="trip_integrity"}`
	if got := cfg.Metrics.Snapshot().Counters[name]; got != 1 {
		t.Fatalf("%s = %d, want 1", name, got)
	}

	// Counting (non-strict) mode over the same input: no error, same
	// counter movement.
	ccfg := determinismConfig()
	ccfg.Metrics = obs.NewRegistry()
	ccfg.Check = check.Config{Enabled: true}
	cp, err := NewPipeline(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cp.ProcessContext(context.Background(), 9, []*trace.Trip{corrupt.Clone()}); err != nil {
		t.Fatalf("counting mode returned %v", err)
	}
	if got := ccfg.Metrics.Snapshot().Counters[name]; got != 1 {
		t.Fatalf("counting mode: %s = %d, want 1", name, got)
	}
}

// TestStrictCheckViolationIsPermanent asserts a strict violation is not
// retried: the runner sees a permanent error and the car fails on
// attempt 1 even with retries configured.
func TestStrictCheckViolationIsPermanent(t *testing.T) {
	cfg := determinismConfig()
	cfg.Check = check.Config{Strict: true}
	cfg.MaxAttempts = 3
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := &trace.Trip{ID: 5} // no points: Trip.Validate fails
	_, err = p.ProcessContext(context.Background(), 2, []*trace.Trip{corrupt})
	var ce *check.CheckError
	if !errors.As(err, &ce) {
		t.Fatalf("want *check.CheckError, got %v", err)
	}
}
