package core

import (
	"context"
	"fmt"
	"io"
	"slices"

	"repro/internal/clean"
	"repro/internal/obs"
	"repro/internal/segment"
	"repro/internal/trace"
)

// Columnar car processing: the cleaning and segmentation stages run on
// struct-of-arrays columns in a pooled per-car arena instead of
// per-trip []RoutePoint slices. Raw trips are appended to the arena
// once, the cleaning kernel appends realigned trips to the same arena,
// segmentation yields zero-copy subviews, and only the kept segments
// are materialised back into row form (the CarResult contract — and
// every stage from OD selection on — is layout-independent and
// unchanged). The determinism test runs both layouts and asserts
// byte-identical results.

// carScratch is the per-car reusable state. One scratch is checked out
// of the pipeline pool per ProcessContext call, so steady-state
// columnar processing allocates only for the data that escapes (the
// materialised segments).
type carScratch struct {
	arena    *trace.Arena
	clean    clean.Scratch
	breader  trace.BinaryReader // reused by ProcessBinaryContext
	views    []trace.ColTrip    // raw trip views
	cleaned  []trace.ColTrip    // cleaned trip views
	segments []trace.ColTrip    // kept segment views
}

func (p *Pipeline) getScratch() *carScratch {
	if sc, ok := p.scratches.Get().(*carScratch); ok {
		return sc
	}
	return &carScratch{arena: trace.NewArena(0)}
}

func (p *Pipeline) putScratch(sc *carScratch) {
	sc.arena.Reset()
	sc.views = sc.views[:0]
	sc.cleaned = sc.cleaned[:0]
	sc.segments = sc.segments[:0]
	p.scratches.Put(sc)
}

// processColumnar is the columnar implementation of ProcessContext.
// ok is false — with no side effects — when some trip cannot be
// represented columnarly (point id overflow, out-of-range or non-UTC
// time, mismatched trip id); the dispatcher then reruns the car on the
// row-oriented path.
func (p *Pipeline) processColumnar(ctx context.Context, car int, raw []*trace.Trip) (CarResult, error, bool) {
	sc := p.getScratch()
	for _, t := range raw {
		v, err := sc.arena.AppendTrip(t)
		if err != nil {
			p.putScratch(sc)
			return CarResult{}, nil, false
		}
		sc.views = append(sc.views, v)
	}
	cr, err := p.processViews(ctx, car, len(raw), raw, sc)
	return cr, err, true
}

// ProcessBinaryContext is ProcessContext for one car's binary trace
// stream: records are decoded straight into the pooled columnar arena,
// skipping the row materialisation ReadBinary would do only for
// processColumnar to immediately re-columnarise. Every record in r
// must belong to car. Results are byte-identical to
// ReadBinary + ProcessContext (the differential test asserts this); a
// legacy-layout pipeline falls back to exactly that pair.
func (p *Pipeline) ProcessBinaryContext(ctx context.Context, car int, r io.Reader) (CarResult, error) {
	ctx, root := p.ensureCarTrace(ctx, car)
	cr, err := p.processBinary(ctx, car, r)
	endCarTrace(ctx, root, err)
	return cr, err
}

func (p *Pipeline) processBinary(ctx context.Context, car int, r io.Reader) (CarResult, error) {
	if !p.Config.Layout.columnar() {
		raw, err := trace.ReadBinary(r, p.City.DB.Proj)
		if err != nil {
			return CarResult{Car: car}, err
		}
		return p.processLegacy(ctx, car, raw)
	}
	sc := p.getScratch()
	if err := sc.breader.Reset(r, p.City.DB.Proj); err != nil {
		p.putScratch(sc)
		return CarResult{Car: car}, err
	}
	for {
		v, err := sc.breader.Next(sc.arena)
		if err == io.EOF {
			break
		}
		if err != nil {
			p.putScratch(sc)
			return CarResult{Car: car}, err
		}
		if v.CarID != car {
			p.putScratch(sc)
			return CarResult{Car: car}, fmt.Errorf("core: record for car %d in car %d's binary stream", v.CarID, car)
		}
		sc.views = append(sc.views, v)
	}
	// Records arrive in file order; ReadBinary sorts by (car, trip id),
	// so sort the single-car views the same way before processing.
	slices.SortStableFunc(sc.views, func(a, b trace.ColTrip) int {
		switch {
		case a.ID < b.ID:
			return -1
		case a.ID > b.ID:
			return 1
		default:
			return 0
		}
	})
	var raw []*trace.Trip
	if p.checker != nil {
		// The input validator speaks rows; materialise only when checking.
		raw = trace.MaterializeAll(sc.views, false)
	}
	return p.processViews(ctx, car, len(sc.views), raw, sc)
}

// processViews runs the columnar stages over sc.views, which the
// caller has already filled. It takes ownership of sc. rawForCheck is
// the row form of the views for the input validator; callers without a
// validator pass nil.
func (p *Pipeline) processViews(ctx context.Context, car, rawTrips int, rawForCheck []*trace.Trip, sc *carScratch) (CarResult, error) {
	defer p.putScratch(sc)

	carSpan := p.met.car.Start()
	defer func() {
		carSpan.End()
		p.met.cars.Inc()
	}()
	cr := CarResult{Car: car, RawTrips: rawTrips}

	// Input boundary check, identical to the row path.
	if err := p.checkGate("simulate", p.checker.RawTrips(car, rawForCheck)); err != nil {
		return cr, err
	}

	// Cleaning (§IV-B) on columns. Every view yields accounting —
	// a trip whose points were all dropped still contributes its drop
	// counts, mirroring the row path.
	if err := p.stageGate(ctx, car, "clean"); err != nil {
		return cr, err
	}
	for _, v := range sc.views {
		cr.CleanStats.RawPoints += v.Len()
	}
	sp := p.met.clean.Start()
	tsp := p.traceStage(ctx, "clean")
	for _, v := range sc.views {
		r := clean.RepairColumns(v, p.Config.Clean, sc.arena, &sc.clean)
		if r.Trip.N == 0 {
			cr.CleanStats.EmptyTrips++
		} else {
			sc.cleaned = append(sc.cleaned, r.Trip)
			cr.CleanStats.Trips++
			cr.CleanStats.KeptPoints += r.Trip.N
		}
		if r.Reordered {
			cr.CleanStats.Reordered++
		}
		if r.ChosenOrder == clean.OrderByTime {
			cr.CleanStats.ChoseTime++
		}
		cr.CleanStats.DroppedPoints += r.Dropped
		cr.CleanStats.Drops.Merge(r.Drops)
	}
	sp.End()
	tsp.End(obs.TAttr("trips", itoa(cr.CleanStats.Trips)),
		obs.TAttr("dropped_points", itoa(cr.CleanStats.DroppedPoints)))
	if p.checker != nil {
		// The validator speaks rows; materialise only when checking.
		if err := p.checkGate("clean", p.checker.CleanedTrips(car, trace.MaterializeAll(sc.cleaned, true))); err != nil {
			return cr, err
		}
	}

	// Segmentation (Table 2) as zero-copy views; kept segments are
	// materialised into the CarResult, which owns its memory.
	if err := p.stageGate(ctx, car, "segment"); err != nil {
		return cr, err
	}
	sp = p.met.segment.Start()
	tsp = p.traceStage(ctx, "segment")
	for _, v := range sc.cleaned {
		sc.segments = segment.SplitColumns(v, p.Rules, &cr.SegStats, sc.segments)
	}
	cr.Segments = trace.MaterializeAll(sc.segments, true)
	tsp.End(obs.TAttr("kept", itoa(cr.SegStats.KeptSegments)))
	sp.End()
	if err := p.checkGate("segment", p.checker.Segments(car, cr.Segments, segmentCheckRules(p.Rules))); err != nil {
		return cr, err
	}

	err := p.selectAndAnalyse(ctx, car, &cr)
	return cr, err
}
