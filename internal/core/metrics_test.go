package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/tracegen"
)

// TestPipelineMetrics runs a small instrumented fleet and checks that
// every stage reported consistent counters: the funnel numbers the
// registry accumulates must equal the sums of the per-car results, and
// the router cache gauges must reconcile with Router.CacheStats.
func TestPipelineMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	p, err := NewPipeline(Config{
		CitySeed: 42,
		Fleet: tracegen.Config{
			Seed: 42, Cars: 2, TripsPerCar: 8, GateRunFraction: 0.35,
		},
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.GridAnalysis(res.Transitions()); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()

	var wantTrips, wantKeptSegs, wantAccepted, wantMatched uint64
	for _, cr := range res.Cars {
		wantTrips += uint64(cr.CleanStats.Trips)
		wantKeptSegs += uint64(cr.SegStats.KeptSegments)
		wantAccepted += uint64(cr.Funnel.PostFiltered)
		wantMatched += uint64(len(cr.Transitions))
	}
	checks := map[string]uint64{
		"pipeline_cars_processed":    uint64(len(res.Cars)),
		"pipeline_clean_trips":       wantTrips,
		"pipeline_segment_kept":      wantKeptSegs,
		"pipeline_odselect_accepted": wantAccepted,
		"pipeline_mapmatch_matched":  wantMatched,
		"pipeline_mapattr_routes":    wantMatched,
	}
	for name, want := range checks {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got, want := snap.Counters["pipeline_mapmatch_matched"]+snap.Counters["pipeline_mapmatch_dropped"],
		wantAccepted; got != want {
		t.Errorf("matched+dropped = %d, want accepted transitions %d", got, want)
	}

	// Router cache gauges mirror CacheStats.
	cs := p.Router.CacheStats()
	if got := snap.Gauges["router_cache_hits"]; got != float64(cs.Hits) {
		t.Errorf("router_cache_hits gauge = %v, CacheStats.Hits = %d", got, cs.Hits)
	}
	if got := snap.Gauges["router_cache_entries"]; got != float64(cs.Entries) {
		t.Errorf("router_cache_entries gauge = %v, CacheStats.Entries = %d", got, cs.Entries)
	}

	// Every instrumented stage must appear in the Prometheus export.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, stage := range StageNames {
		if !strings.Contains(text, "pipeline_"+stage+"_duration_seconds_count") {
			t.Errorf("/metrics output misses stage %s", stage)
		}
	}
	if !strings.Contains(text, "router_cache_hit_rate") {
		t.Error("/metrics output misses router cache stats")
	}
}
