// Package core assembles the paper's full pipeline — the primary
// contribution — from raw taxi traces to map-referenced information:
//
//	raw trips → cleaning → segmentation → OD selection → map-matching
//	          → attribute fetching → grid aggregation → mixed models.
//
// It also owns the synthetic substrates (city + fleet simulator) that
// stand in for the proprietary Driveco data and the Digiroad national
// database; see DESIGN.md for the substitution argument.
package core

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"repro/internal/check"
	"repro/internal/clean"
	"repro/internal/digiroad"
	"repro/internal/geo"
	"repro/internal/grid"
	"repro/internal/mapattr"
	"repro/internal/mapmatch"
	"repro/internal/obs"
	"repro/internal/odselect"
	"repro/internal/roadnet"
	"repro/internal/runner"
	"repro/internal/segment"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/tracegen"
	"repro/internal/weather"
)

// LowSpeedKmh is the paper's low-speed threshold (<10 km/h), one of
// the significant factors for fuel consumption and emissions.
const LowSpeedKmh = 10

// NormalSpeedToleranceKmh: a point counts as "normal speed" (at the
// speed limit) when within this margin below the local limit.
const NormalSpeedToleranceKmh = 2

// Layout selects the in-memory point representation of the per-car
// hot path (cleaning and segmentation).
type Layout int

const (
	// LayoutAuto selects the default layout (columnar).
	LayoutAuto Layout = iota
	// LayoutColumnar runs cleaning and segmentation on struct-of-arrays
	// columns in a pooled per-car arena (see internal/trace.Columns).
	LayoutColumnar
	// LayoutLegacy runs the row-oriented []RoutePoint path. Output is
	// byte-identical to columnar (the determinism test asserts it);
	// the layout is kept for differential testing and as the fallback
	// for trips the columnar store cannot represent.
	LayoutLegacy
)

// String returns the layout name.
func (l Layout) String() string {
	switch l {
	case LayoutLegacy:
		return "legacy"
	case LayoutColumnar:
		return "columnar"
	default:
		return "auto"
	}
}

// ParseLayout converts a flag value to a Layout.
func ParseLayout(s string) (Layout, error) {
	switch s {
	case "", "auto":
		return LayoutAuto, nil
	case "columnar":
		return LayoutColumnar, nil
	case "legacy":
		return LayoutLegacy, nil
	}
	return LayoutAuto, fmt.Errorf("core: unknown layout %q (want auto, columnar or legacy)", s)
}

func (l Layout) columnar() bool { return l != LayoutLegacy }

// Config assembles one pipeline. Zero values select the paper's
// settings.
type Config struct {
	CitySeed   int64
	City       digiroad.SynthConfig
	Fleet      tracegen.Config
	Clean      clean.Config
	Segment    segment.Rules
	OD         odselect.Config
	Match      mapmatch.Config
	GateWidthM float64 // thick-geometry width (default 150)
	GridCellM  float64 // analysis cell size (default 200)
	// RouterCachePaths caps the shared routing engine's path cache
	// (total memoised paths across shards). 0 selects the router
	// default; negative disables caching.
	RouterCachePaths int
	// Workers bounds the fleet runner's concurrency (default
	// GOMAXPROCS). The runner owns exactly this many worker
	// goroutines regardless of fleet size.
	Workers int
	// MaxFailures is the fleet error budget as a count: up to this
	// many cars may fail (each isolated and reported as a CarError)
	// before the run aborts early. 0 tolerates any number of
	// failures; negative aborts on the first one.
	MaxFailures int
	// MaxFailureFrac expresses the budget as a fleet fraction (0
	// disables); the stricter of the two budgets wins.
	MaxFailureFrac float64
	// MaxAttempts bounds per-car attempts for errors marked
	// runner.Transient (default 1 = no retries); RetryBackoff is the
	// deterministic base delay before attempt 2, doubling per attempt.
	MaxAttempts  int
	RetryBackoff time.Duration
	// Faults injects per-stage failures, panics or stalls into car
	// processing — the test/chaos hook. Nil in production runs.
	Faults runner.FaultInjector
	// Check enables the correctness harness: per-stage invariant
	// validation at every stage boundary (see internal/check).
	// Violations increment check_violations_total counters on Metrics;
	// with Check.Strict they additionally fail the offending car
	// through the runner's fault path. Checking never changes results:
	// pipeline output is byte-identical with the checker on and off on
	// invariant-respecting data (see the determinism test, which runs
	// strict).
	Check check.Config
	// Metrics receives the pipeline's instrumentation: per-stage spans
	// (duration histograms + active gauges), kept/dropped counters for
	// every lossy stage, per-car worker timing, and the router
	// path-cache stats re-exported as gauges. Nil disables
	// instrumentation entirely — every metric operation degrades to a
	// no-op. Metrics never influence results: the pipeline's output is
	// byte-identical with instrumentation on and off (see the
	// determinism test).
	Metrics *obs.Registry
	// Tracer records per-car span trees (which stages ran, under which
	// attempt, for how long) for deterministically sampled cars; see
	// obs.Tracer. Nil disables tracing — the hot path degrades to one
	// nil check per stage. Tracing never influences results.
	Tracer *obs.Tracer
	// Lineage is the drop-reason ledger: per stage, how many records
	// went in, came out, and why the difference was dropped, with
	// per-car attribution. Nil disables the ledger. Counts are
	// committed once per car on its final successful attempt, so the
	// ledger's conservation invariant (in = out + Σ dropped) holds even
	// under retries; see internal/core/lineage.go.
	Lineage *obs.Lineage
	// Log receives structured per-car and fleet-event log lines
	// (log/slog). Nil disables logging.
	Log *slog.Logger
	// Layout selects the hot-path point representation (default
	// columnar; see the Layout constants).
	Layout Layout
}

func (c Config) withDefaults() Config {
	if c.City.Seed == 0 {
		c.City.Seed = c.CitySeed
	}
	if c.Segment.MinPoints == 0 {
		c.Segment = segment.DefaultRules()
	}
	if c.GateWidthM <= 0 {
		c.GateWidthM = 150
	}
	if c.GridCellM <= 0 {
		c.GridCellM = grid.DefaultCellMeters
	}
	return c
}

// Pipeline is a ready-to-run reproduction pipeline over one synthetic
// city and fleet.
type Pipeline struct {
	Config Config
	City   *digiroad.City
	Graph  *roadnet.Graph
	// Router is the pipeline's shared routing engine: one scratch/heap
	// pool and one path cache serving the fleet simulator, both
	// map-matchers and the coach across all per-car workers.
	Router   *roadnet.Router
	Gen      *tracegen.Generator
	Selector *odselect.Selector
	Matcher  *mapmatch.Matcher
	Fetcher  *mapattr.Fetcher
	Weather  *weather.Model
	Rules    segment.Rules
	// Metrics is the registry instrumentation reports to (nil when
	// disabled); met holds the pre-resolved handles.
	Metrics *obs.Registry
	met     *pipelineMetrics
	// checker is the stage-boundary invariant validator (nil when
	// Config.Check is off; every method of a nil checker is a no-op).
	checker *check.Validator
	// lin holds the pre-resolved lineage ledger handles (all no-ops
	// when Config.Lineage is nil).
	lin *lineageHandles
	// scratches pools per-car columnar scratch state (arena + sort
	// buffers) across workers; see columnar.go.
	scratches sync.Pool
}

// NewPipeline builds the city, road graph and processing stages.
func NewPipeline(cfg Config) (*Pipeline, error) {
	cfg = cfg.withDefaults()
	city := digiroad.SynthesizeOulu(cfg.City)
	return NewPipelineWithCity(city, cfg)
}

// NewPipelineWithCity builds the processing stages over an existing
// city (e.g. one reloaded from CSV). The city must carry the three
// gate roads and the analysis areas.
func NewPipelineWithCity(city *digiroad.City, cfg Config) (*Pipeline, error) {
	cfg = cfg.withDefaults()
	graph, err := roadnet.Build(city.DB)
	if err != nil {
		return nil, fmt.Errorf("core: build road graph: %w", err)
	}
	router := roadnet.NewRouter(graph, roadnet.RouterOptions{PathCachePaths: cfg.RouterCachePaths})
	gen, err := tracegen.NewWithRouter(city, router, cfg.Fleet)
	if err != nil {
		return nil, fmt.Errorf("core: build fleet generator: %w", err)
	}
	odCfg := cfg.OD
	if odCfg.CentralArea.Area() == 0 {
		odCfg.CentralArea = city.CentralArea
	}
	sel, err := odselect.NewSelector([]odselect.Gate{
		odselect.NewGate("T", city.GateT, cfg.GateWidthM),
		odselect.NewGate("S", city.GateS, cfg.GateWidthM),
		odselect.NewGate("L", city.GateL, cfg.GateWidthM),
	}, odCfg)
	if err != nil {
		return nil, fmt.Errorf("core: build OD selector: %w", err)
	}
	wm := cfg.Fleet.Weather
	if wm == nil {
		wm = weather.DefaultModel(cfg.Fleet.Seed)
	}
	registerRouterGauges(cfg.Metrics, router)
	checker := check.New(cfg.Check, sel.GateNames(), graph, cfg.Metrics)
	return &Pipeline{
		Config:   cfg,
		City:     city,
		Graph:    graph,
		Router:   router,
		Gen:      gen,
		Selector: sel,
		Matcher:  mapmatch.NewIncrementalRouter(router, cfg.Match),
		Fetcher:  mapattr.NewFetcher(city.DB, graph, 0),
		Weather:  wm,
		Rules:    cfg.Segment,
		Metrics:  cfg.Metrics,
		met:      newPipelineMetrics(cfg.Metrics),
		checker:  checker,
		lin:      newLineageHandles(cfg.Lineage),
	}, nil
}

// Checker exposes the pipeline's invariant validator (nil when
// Config.Check is off) so external consumers — the serving layer's
// sink, standalone analyses — can validate their own boundaries with
// the same rule set and counters.
func (p *Pipeline) Checker() *check.Validator { return p.checker }

// checkGate converts a strict-mode invariant violation into a
// stage-attributed error on the runner's fault path, exactly like an
// injected fault: the car fails with a CarError naming the stage, and
// the violation is permanent (no retries — re-running the same car
// breaks the same invariant).
func (p *Pipeline) checkGate(stage string, err error) error {
	if err == nil {
		return nil
	}
	return &runner.StageError{Stage: stage, Err: err}
}

// TransitionRecord is one accepted OD transition with everything the
// analysis needs.
type TransitionRecord struct {
	Car        int
	Transition *odselect.Transition
	Match      *mapmatch.Result
	Attrs      mapattr.RouteAttributes

	// Table 4 metrics, computed over the trajectory between the origin
	// and destination crossings.
	RouteTimeH     float64
	RouteDistKm    float64
	LowSpeedPct    float64
	NormalSpeedPct float64
	FuelMl         float64

	Season    weather.Season
	TempClass weather.TemperatureClass
}

// Direction returns the transition direction, e.g. "S-T".
func (r *TransitionRecord) Direction() string { return r.Transition.Direction }

// CarResult is the per-car pipeline output (one Table 3 row).
type CarResult struct {
	Car         int
	RawTrips    int
	CleanStats  CleanStats
	SegStats    segment.Stats
	Segments    []*trace.Trip
	Funnel      odselect.Funnel
	MatchStats  MatchStats
	Transitions []*TransitionRecord
}

// CleanStats summarises the cleaning stage for one car.
type CleanStats struct {
	Trips         int // trips with at least one surviving point
	EmptyTrips    int // trips whose points were all dropped
	Reordered     int // trips whose arrival order was repaired
	ChoseTime     int // trips where the timestamp ordering won
	RawPoints     int // points entering the cleaner
	KeptPoints    int // points surviving it
	DroppedPoints int // == Drops.Total(); RawPoints - KeptPoints
	// Drops breaks DroppedPoints down by removal reason — the cleaning
	// row of the car's lineage.
	Drops clean.DropStats
}

// MatchStats summarises the map-matching stage for one car: every
// accepted transition is either matched or dropped with a reason, so
// Matched + Degenerate + Unroutable equals the OD funnel's accepted
// count.
type MatchStats struct {
	Matched    int
	Degenerate int // O-D span shorter than two points
	Unroutable int // the matcher found no route
}

// Result is the full fleet output.
type Result struct {
	Cars []CarResult
}

// Transitions flattens all accepted transitions.
func (r *Result) Transitions() []*TransitionRecord {
	n := 0
	for i := range r.Cars {
		n += len(r.Cars[i].Transitions)
	}
	out := make([]*TransitionRecord, 0, n)
	for i := range r.Cars {
		out = append(out, r.Cars[i].Transitions...)
	}
	return out
}

// Segments flattens all kept trip segments.
func (r *Result) Segments() []*trace.Trip {
	n := 0
	for i := range r.Cars {
		n += len(r.Cars[i].Segments)
	}
	out := make([]*trace.Trip, 0, n)
	for i := range r.Cars {
		out = append(out, r.Cars[i].Segments...)
	}
	return out
}

// CarError is the typed per-car failure record the fleet runner
// reports: car, stage, attempts and cause, with errors.Is/As support.
type CarError = runner.CarError

// FleetStream is the live per-car outcome stream returned by
// Pipeline.Stream.
type FleetStream = runner.Stream[CarResult]

// CarEvent is one streamed per-car outcome.
type CarEvent = runner.Event[CarResult]

// ErrBudgetExceeded re-exports the runner's abort sentinel: test the
// error of RunContext with errors.Is against it to distinguish an
// error-budget abort from isolated car failures.
var ErrBudgetExceeded = runner.ErrBudgetExceeded

// ErrDegenerateSpan marks a transition whose origin→destination span
// has fewer than two points, so no route can be matched for it.
var ErrDegenerateSpan = errors.New("core: degenerate transition span")

// FailedCars extracts the per-car failures from an error returned by
// RunContext/Run (an errors.Join of CarErrors plus any run-level
// error), sorted by car number.
func FailedCars(err error) []*CarError { return runner.CarErrors(err) }

// runnerConfig maps the pipeline configuration onto the fleet runner.
func (p *Pipeline) runnerConfig() runner.Config {
	return runner.Config{
		Workers:        p.Config.Workers,
		MaxFailures:    p.Config.MaxFailures,
		MaxFailureFrac: p.Config.MaxFailureFrac,
		MaxAttempts:    p.Config.MaxAttempts,
		Backoff:        p.Config.RetryBackoff,
		Metrics:        p.Metrics,
		Log:            p.Config.Log,
	}
}

// Stream starts the fleet run and returns the live stream of per-car
// outcomes as cars complete (completion order). This is the primary
// execution API: results arrive incrementally under a bounded worker
// pool, failed cars arrive as typed *CarError events instead of
// aborting the run, and cancelling ctx drains the pool promptly.
// Consumers must drain Events until it closes; RunContext does exactly
// that and rebuilds the batch Result.
func (p *Pipeline) Stream(ctx context.Context) *FleetStream {
	st := runner.Run(ctx, p.runnerConfig(), p.Gen.Cars(), p.RunCarContext)
	if p.Config.Lineage != nil || p.Config.Log != nil {
		// Fold every terminal per-car outcome into the fleet lineage
		// row (and the structured log) exactly once, as it happens.
		st = runner.Tee(st, p.recordFleetEvent)
	}
	return st
}

// StreamCars is Stream over an explicit car list instead of the whole
// fleet — the execution shape of a cluster worker, which owns the
// subset of cars hashing to its shard. Identical semantics otherwise;
// the error budget resolves against len(cars).
func (p *Pipeline) StreamCars(ctx context.Context, cars []int) *FleetStream {
	st := runner.RunList(ctx, p.runnerConfig(), cars, p.RunCarContext)
	if p.Config.Lineage != nil || p.Config.Log != nil {
		st = runner.Tee(st, p.recordFleetEvent)
	}
	return st
}

// RunContext executes the pipeline for the whole fleet under ctx and
// collects the stream into the batch shape. Each car's simulation and
// processing are independent and deterministic, so the result is
// identical to a serial run regardless of worker count.
//
// Unlike the historical fail-fast Run, per-car failures do not discard
// the fleet: the returned Result carries every successful car (sorted
// by car number) and the error is an errors.Join of the per-car
// *CarErrors — plus runner.ErrBudgetExceeded when the failure budget
// aborted the run early, or the context error after cancellation. Use
// FailedCars to recover the typed failures.
func (p *Pipeline) RunContext(ctx context.Context) (*Result, error) {
	return p.RunObserved(ctx, nil)
}

// RunObserved runs the fleet like RunContext while teeing every per-car
// outcome to observe as it happens — the subscription point for live
// consumers such as the serving layer's aggregation sink, which needs
// results mid-run without disturbing the batch collection. observe (may
// be nil) runs on the stream's forwarding goroutine: events are
// observed in completion order, exactly once, before being folded into
// the returned Result.
func (p *Pipeline) RunObserved(ctx context.Context, observe func(CarEvent)) (*Result, error) {
	return collectStream(p.Stream(ctx), p.Gen.Cars(), observe)
}

// RunObservedCars is RunObserved over an explicit car list — the
// batch-collection entry point of a cluster worker running its shard.
func (p *Pipeline) RunObservedCars(ctx context.Context, carIDs []int, observe func(CarEvent)) (*Result, error) {
	return collectStream(p.StreamCars(ctx, carIDs), len(carIDs), observe)
}

// collectStream drains a fleet stream into the sorted batch Result,
// teeing each event to observe (may be nil) first.
func collectStream(st *FleetStream, n int, observe func(CarEvent)) (*Result, error) {
	if observe != nil {
		st = runner.Tee(st, observe)
	}
	cars := make([]CarResult, 0, n)
	var carErrs []*CarError
	for ev := range st.Events() {
		if ev.Err != nil {
			carErrs = append(carErrs, ev.Err)
			continue
		}
		cars = append(cars, ev.Result)
	}
	sort.Slice(cars, func(i, j int) bool { return cars[i].Car < cars[j].Car })
	sort.Slice(carErrs, func(i, j int) bool { return carErrs[i].Car < carErrs[j].Car })
	errs := make([]error, 0, len(carErrs)+1)
	for _, ce := range carErrs {
		errs = append(errs, ce)
	}
	if err := st.Err(); err != nil {
		errs = append(errs, err)
	}
	return &Result{Cars: cars}, errors.Join(errs...)
}

// RunCarContext executes the pipeline for one car under ctx.
func (p *Pipeline) RunCarContext(ctx context.Context, car int) (CarResult, error) {
	ctx, root := p.ensureCarTrace(ctx, car)
	if err := p.stageGate(ctx, car, "simulate"); err != nil {
		endCarTrace(ctx, root, err)
		return CarResult{Car: car}, err
	}
	sp := p.met.simulate.Start()
	tsp := p.traceStage(ctx, "simulate")
	raw := p.Gen.CarTrips(car)
	tsp.End(obs.TAttr("trips", itoa(len(raw))))
	sp.End()
	cr, err := p.ProcessContext(ctx, car, raw)
	if err == nil {
		// Committed only on the final successful attempt, like the rest
		// of the stage counters, so retries cannot double-count.
		p.met.simTrips.Add(uint64(len(raw)))
	}
	endCarTrace(ctx, root, err)
	return cr, err
}

// stageGate is the per-stage entry check: it propagates cancellation
// and gives the configured fault injector its shot at the stage. An
// injected error is attributed to the stage via runner.StageError so
// the CarError built from it can name where the car went bad.
func (p *Pipeline) stageGate(ctx context.Context, car int, stage string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := runner.Inject(p.Config.Faults, car, stage); err != nil {
		return &runner.StageError{Stage: stage, Err: err}
	}
	return nil
}

// ProcessContext runs the cleaning → segmentation → selection →
// matching → attribute stages over raw trips (however they were
// obtained) under ctx. Cancellation is honored between stages and
// between transitions; on error the partial CarResult built so far is
// returned alongside it.
//
// Config.Layout picks the point representation of the cleaning and
// segmentation stages; both produce byte-identical results. Trips the
// columnar store cannot represent losslessly send the whole car down
// the row-oriented path.
func (p *Pipeline) ProcessContext(ctx context.Context, car int, raw []*trace.Trip) (CarResult, error) {
	ctx, root := p.ensureCarTrace(ctx, car)
	cr, err := p.processDispatch(ctx, car, raw)
	endCarTrace(ctx, root, err)
	return cr, err
}

// processDispatch picks the layout implementation.
func (p *Pipeline) processDispatch(ctx context.Context, car int, raw []*trace.Trip) (CarResult, error) {
	if p.Config.Layout.columnar() {
		if cr, err, ok := p.processColumnar(ctx, car, raw); ok {
			return cr, err
		}
	}
	return p.processLegacy(ctx, car, raw)
}

// processLegacy is the row-oriented ([]RoutePoint) implementation of
// ProcessContext.
func (p *Pipeline) processLegacy(ctx context.Context, car int, raw []*trace.Trip) (CarResult, error) {
	carSpan := p.met.car.Start()
	defer func() {
		carSpan.End()
		p.met.cars.Inc()
	}()
	cr := CarResult{Car: car, RawTrips: len(raw)}

	// Input boundary: whatever produced the raw trips (simulator or a
	// CSV reload standing in for it), each must be internally
	// consistent before cleaning sees it.
	if err := p.checkGate("simulate", p.checker.RawTrips(car, raw)); err != nil {
		return cr, err
	}

	// Cleaning (§IV-B). Every raw trip yields a result — a trip whose
	// points were all dropped still contributes its drop counts to the
	// lineage.
	if err := p.stageGate(ctx, car, "clean"); err != nil {
		return cr, err
	}
	for _, t := range raw {
		cr.CleanStats.RawPoints += len(t.Points)
	}
	sp := p.met.clean.Start()
	tsp := p.traceStage(ctx, "clean")
	results := clean.RepairAll(raw, p.Config.Clean)
	sp.End()
	for _, r := range results {
		if r.Trip == nil {
			cr.CleanStats.EmptyTrips++
		} else {
			cr.CleanStats.Trips++
			cr.CleanStats.KeptPoints += len(r.Trip.Points)
		}
		if r.Reordered {
			cr.CleanStats.Reordered++
		}
		if r.ChosenOrder == clean.OrderByTime {
			cr.CleanStats.ChoseTime++
		}
		cr.CleanStats.DroppedPoints += r.Dropped
		cr.CleanStats.Drops.Merge(r.Drops)
	}
	tsp.End(obs.TAttr("trips", itoa(cr.CleanStats.Trips)),
		obs.TAttr("dropped_points", itoa(cr.CleanStats.DroppedPoints)))
	if err := p.checkGate("clean", p.checker.CleanedTrips(car, clean.Trips(results))); err != nil {
		return cr, err
	}

	// Segmentation (Table 2).
	if err := p.stageGate(ctx, car, "segment"); err != nil {
		return cr, err
	}
	sp = p.met.segment.Start()
	tsp = p.traceStage(ctx, "segment")
	cr.Segments = segment.SplitAll(clean.Trips(results), p.Rules, &cr.SegStats)
	tsp.End(obs.TAttr("kept", itoa(cr.SegStats.KeptSegments)))
	sp.End()
	if err := p.checkGate("segment", p.checker.Segments(car, cr.Segments, segmentCheckRules(p.Rules))); err != nil {
		return cr, err
	}

	return cr, p.selectAndAnalyse(ctx, car, &cr)
}

// selectAndAnalyse runs the layout-independent tail of car processing
// — OD selection (Table 3), map-matching and attribute fetching — over
// cr.Segments, accumulating into cr.
func (p *Pipeline) selectAndAnalyse(ctx context.Context, car int, cr *CarResult) error {
	if err := p.stageGate(ctx, car, "odselect"); err != nil {
		return err
	}
	sp := p.met.odselect.Start()
	tsp := p.traceStage(ctx, "odselect")
	funnel, accepted := p.Selector.Run(car, cr.Segments)
	tsp.End(obs.TAttr("accepted", itoa(funnel.PostFiltered)))
	sp.End()
	cr.Funnel = funnel
	if err := p.checkGate("odselect", p.checkTransitions(car, accepted)); err != nil {
		return err
	}
	// Matching and attribute fetching run per transition; their fault
	// gates sit at stage entry so an injected failure is attributed to
	// the right stage.
	if err := p.stageGate(ctx, car, "mapmatch"); err != nil {
		return err
	}
	if err := p.stageGate(ctx, car, "mapattr"); err != nil {
		return err
	}
	tsp = p.traceStage(ctx, "mapmatch")
	if err := p.matchTransitions(ctx, car, accepted, &cr.MatchStats, &cr.Transitions); err != nil {
		tsp.End()
		return err
	}
	tsp.End(obs.TAttr("matched", itoa(cr.MatchStats.Matched)),
		obs.TAttr("dropped", itoa(cr.MatchStats.Degenerate+cr.MatchStats.Unroutable)))

	// The car is done: publish its stage counters and lineage in one
	// commit, so failed or retried attempts never leak partial counts.
	p.commitCar(cr)
	return nil
}

// matchTransitions runs map-matching and attribute fetching over the
// accepted transitions, folding outcomes into ms and appending matched
// records to out. Cancellation is honored between transitions: a car
// with hundreds of accepted transitions must not stall a drain.
func (p *Pipeline) matchTransitions(ctx context.Context, car int, accepted []*odselect.Transition, ms *MatchStats, out *[]*TransitionRecord) error {
	for _, tr := range accepted {
		if err := ctx.Err(); err != nil {
			return err
		}
		rec, err := p.analyseTransition(car, tr)
		if err != nil {
			// A transition that cannot be matched is dropped from the
			// analysis but stays in the funnel count, mirroring the
			// paper's "only cleared and filtered transitions ... are
			// map-matched". The reason feeds the mapmatch lineage row.
			if errors.Is(err, ErrDegenerateSpan) {
				ms.Degenerate++
			} else {
				ms.Unroutable++
			}
			continue
		}
		if err := p.checkGate("mapmatch", p.checker.MatchedRoute(car, rec.Match.Route, rec.Match.MatchedFraction)); err != nil {
			return err
		}
		if err := p.checkGate("mapattr", p.checker.RouteAttrs(car,
			rec.Attrs.TrafficLights, rec.Attrs.BusStops,
			rec.Attrs.PedestrianCrossings, rec.Attrs.Junctions)); err != nil {
			return err
		}
		ms.Matched++
		*out = append(*out, rec)
	}
	return nil
}

// AnalyseSegments runs the layout-independent analysis tail — OD
// selection (Table 3), map-matching and attribute fetching — over
// already-cleaned, already-segmented trips of one car, outside the
// fleet runner. This is the incremental entry point the streaming
// ingest layer drives once a trip closes under the watermark: unlike
// the batch path it commits nothing to the pipeline's lineage ledger
// or stage counters (callers own their accounting), but it validates
// the same invariants when the correctness harness is on.
//
// The returned MatchStats partition the funnel's accepted count:
// Matched + Degenerate + Unroutable == Funnel.PostFiltered.
func (p *Pipeline) AnalyseSegments(ctx context.Context, car int, segs []*trace.Trip) (odselect.Funnel, MatchStats, []*TransitionRecord, error) {
	var ms MatchStats
	var recs []*TransitionRecord
	funnel, accepted := p.Selector.Run(car, segs)
	if err := p.checkGate("odselect", p.checkTransitions(car, accepted)); err != nil {
		return funnel, ms, recs, err
	}
	err := p.matchTransitions(ctx, car, accepted, &ms, &recs)
	return funnel, ms, recs, err
}

// segmentCheckRules adapts segmentation rules to the checker's view.
func segmentCheckRules(r segment.Rules) check.SegmentRules {
	return check.SegmentRules{MinPoints: r.MinPoints, MaxLengthM: r.MaxLengthM}
}

// checkTransitions adapts accepted transitions to the checker's view.
func (p *Pipeline) checkTransitions(car int, accepted []*odselect.Transition) error {
	if p.checker == nil {
		return nil
	}
	trs := make([]check.ODTransition, len(accepted))
	for i, tr := range accepted {
		trs[i] = check.ODTransition{
			From:       tr.From,
			To:         tr.To,
			NumPoints:  len(tr.Seg.Points),
			EntryIndex: tr.FromCross.EntryIndex,
			ExitIndex:  tr.ToCross.ExitIndex,
		}
	}
	return p.checker.Transitions(car, trs)
}

// analyseTransition map-matches one transition and derives the Table 4
// metrics.
func (p *Pipeline) analyseTransition(car int, tr *odselect.Transition) (*TransitionRecord, error) {
	pts := tr.Seg.Points
	lo := tr.FromCross.EntryIndex
	hi := tr.ToCross.ExitIndex
	if lo > hi {
		lo, hi = hi, lo
	}
	span := pts[lo : hi+1]
	if len(span) < 2 {
		return nil, ErrDegenerateSpan
	}
	sp := p.met.mapmatch.Start()
	match, err := p.Matcher.Match(span)
	sp.End()
	if err != nil {
		return nil, err
	}
	sp = p.met.mapattr.Start()
	attrs := p.Fetcher.ForMatch(match)
	sp.End()

	rec := &TransitionRecord{
		Car:        car,
		Transition: tr,
		Match:      match,
		Attrs:      attrs,
		Season:     weather.SeasonOf(span[0].Time),
		TempClass:  p.Weather.ClassAt(span[0].Time),
	}
	rec.RouteTimeH = span[len(span)-1].Time.Sub(span[0].Time).Hours()
	rec.RouteDistKm = match.Geometry.Length() / 1000
	rec.FuelMl = span[len(span)-1].FuelMl - span[0].FuelMl

	// Low/normal speed shares are time-weighted: each point's speed
	// holds until the next point, so standing at a red light counts by
	// its duration, not by how many records the device emitted.
	var low, normal, total float64
	for i := 0; i < len(span)-1; i++ {
		dt := span[i+1].Time.Sub(span[i].Time).Seconds()
		if dt <= 0 {
			continue
		}
		total += dt
		if span[i].SpeedKmh < LowSpeedKmh {
			low += dt
		}
		if limit, ok := p.limitAtMatch(match, i); ok && span[i].SpeedKmh >= limit-NormalSpeedToleranceKmh {
			normal += dt
		}
	}
	if total > 0 {
		rec.LowSpeedPct = 100 * low / total
		rec.NormalSpeedPct = 100 * normal / total
	}
	return rec, nil
}

// limitAtMatch returns the speed limit at the matched edge of span
// point i.
func (p *Pipeline) limitAtMatch(match *mapmatch.Result, i int) (float64, bool) {
	if i >= len(match.Points) || match.Points[i].Skipped {
		return 0, false
	}
	return p.Graph.Edges[match.Points[i].Edge].SpeedLimitKmh, true
}

// GridAnalysis aggregates the transition point speeds on the analysis
// grid over the study area, attaches per-cell features, and fits the
// per-cell random-intercept mixed model (paper model 3).
func (p *Pipeline) GridAnalysis(recs []*TransitionRecord) (*grid.Aggregator, *stats.LMMResult, error) {
	sp := p.met.grid.Start()
	g, err := grid.New(p.City.StudyArea, p.Config.GridCellM)
	if err != nil {
		sp.End()
		return nil, nil, err
	}
	agg := grid.NewAggregator(g)
	points := 0
	for _, rec := range recs {
		pts := rec.Transition.Seg.Points
		lo, hi := rec.Transition.FromCross.EntryIndex, rec.Transition.ToCross.ExitIndex
		if lo > hi {
			lo, hi = hi, lo
		}
		for _, pt := range pts[lo : hi+1] {
			agg.Add(pt.Pos, pt.SpeedKmh)
		}
		points += hi - lo + 1
	}
	agg.AttachFeatures(p.City.DB, p.Graph)
	sp.End()
	p.met.gridPoints.Add(uint64(points))
	p.met.gridCells.Set(int64(agg.NumNonEmpty()))
	if err := p.checkGate("grid", p.checker.GridCells(agg)); err != nil {
		return agg, nil, err
	}

	sp = p.met.lmm.Start()
	lmm, err := stats.FitLMM(agg.LMMGroups())
	sp.End()
	if err != nil {
		return agg, nil, err
	}
	p.met.lmmObs.Set(int64(lmm.NObs))
	return agg, lmm, nil
}

// PointSpeeds extracts every point speed of the given transitions (the
// paper's "30469 measured point speeds").
func PointSpeeds(recs []*TransitionRecord) []float64 {
	var out []float64
	for _, rec := range recs {
		pts := rec.Transition.Seg.Points
		lo, hi := rec.Transition.FromCross.EntryIndex, rec.Transition.ToCross.ExitIndex
		if lo > hi {
			lo, hi = hi, lo
		}
		for _, pt := range pts[lo : hi+1] {
			out = append(out, pt.SpeedKmh)
		}
	}
	return out
}

// SpeedPoints pairs positions and speeds for map figures (Figs 3-5).
type SpeedPoint struct {
	Pos      geo.XY
	SpeedKmh float64
}

// TransitionSpeedPoints extracts the positioned speeds of one record.
func TransitionSpeedPoints(rec *TransitionRecord) []SpeedPoint {
	pts := rec.Transition.Seg.Points
	lo, hi := rec.Transition.FromCross.EntryIndex, rec.Transition.ToCross.ExitIndex
	if lo > hi {
		lo, hi = hi, lo
	}
	out := make([]SpeedPoint, 0, hi-lo+1)
	for _, pt := range pts[lo : hi+1] {
		out = append(out, SpeedPoint{Pos: pt.Pos, SpeedKmh: pt.SpeedKmh})
	}
	return out
}

// FeatureNames are the fixed-effect covariates of FeatureModel, in
// coefficient order (after the intercept).
var FeatureNames = []string{"traffic_lights", "bus_stops", "pedestrian_crossings", "junctions"}

// FeatureModel fits the paper's model 2: cell point speeds regressed on
// the cell's map features with a per-cell random intercept, estimated
// by REML. It quantifies the associations between map features and
// driving speed that the grid analysis shows qualitatively.
func (p *Pipeline) FeatureModel(recs []*TransitionRecord) (*stats.LMMFixedResult, error) {
	g, err := grid.New(p.City.StudyArea, p.Config.GridCellM)
	if err != nil {
		return nil, err
	}
	agg := grid.NewAggregator(g)
	for _, rec := range recs {
		pts := rec.Transition.Seg.Points
		lo, hi := rec.Transition.FromCross.EntryIndex, rec.Transition.ToCross.ExitIndex
		if lo > hi {
			lo, hi = hi, lo
		}
		for _, pt := range pts[lo : hi+1] {
			agg.Add(pt.Pos, pt.SpeedKmh)
		}
	}
	agg.AttachFeatures(p.City.DB, p.Graph)
	return stats.FitLMMFixed(agg.LMMGroupsWithFeatures())
}
