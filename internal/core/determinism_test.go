package core

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/check"
	"repro/internal/obs"
	"repro/internal/tracegen"
)

// determinismConfig is a small but non-trivial fleet: enough cars to
// exercise the parallel workers and enough gate traffic that the
// matchers and the shared Router's path cache are hit from several
// goroutines at once.
func determinismConfig() Config {
	return Config{
		CitySeed: 42,
		Fleet: tracegen.Config{
			Seed:            42,
			Cars:            3,
			TripsPerCar:     8,
			GateRunFraction: 0.35,
		},
	}
}

// TestRunParallelMatchesSerial asserts that the concurrent Pipeline.Run
// produces byte-identical results to a serial per-car loop. This is the
// guarantee that the shared Router — its sync.Pool scratch, pooled
// heaps and sharded path cache — leaks no state between cars: cache
// warmth and scratch reuse may change timings, never results.
func TestRunParallelMatchesSerial(t *testing.T) {
	parallel, err := NewPipeline(determinismConfig())
	if err != nil {
		t.Fatal(err)
	}
	parRes, err := parallel.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	serial, err := NewPipeline(determinismConfig())
	if err != nil {
		t.Fatal(err)
	}
	serRes := &Result{Cars: make([]CarResult, serial.Gen.Cars())}
	for car := 1; car <= serial.Gen.Cars(); car++ {
		cr, err := serial.RunCarContext(context.Background(), car)
		if err != nil {
			t.Fatalf("car %d: %v", car, err)
		}
		serRes.Cars[car-1] = cr
	}

	parJSON, err := json.Marshal(parRes)
	if err != nil {
		t.Fatal(err)
	}
	serJSON, err := json.Marshal(serRes)
	if err != nil {
		t.Fatal(err)
	}
	if len(parRes.Transitions()) == 0 {
		t.Fatal("degenerate test: no transitions produced")
	}
	if !bytes.Equal(parJSON, serJSON) {
		t.Fatalf("parallel Run() diverged from the serial per-car loop:\nparallel %d bytes, serial %d bytes",
			len(parJSON), len(serJSON))
	}

	// Re-running a warmed pipeline must also be stable: every cached
	// path the second pass reads was produced by the deterministic
	// bidirectional search the first pass ran.
	again, err := parallel.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	againJSON, err := json.Marshal(again)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(parJSON, againJSON) {
		t.Fatal("re-running a warmed pipeline changed the results")
	}
	if s := parallel.Router.CacheStats(); s.Hits == 0 {
		t.Fatalf("expected path-cache hits on the warmed re-run, got %+v", s)
	}

	// Instrumentation must not perturb determinism: a pipeline with a
	// live metrics registry produces byte-identical output.
	cfg := determinismConfig()
	cfg.Metrics = obs.NewRegistry()
	instrumented, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	insRes, err := instrumented.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	insJSON, err := json.Marshal(insRes)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(parJSON, insJSON) {
		t.Fatal("enabling metrics changed the pipeline output")
	}
	if _, _, err := instrumented.GridAnalysis(insRes.Transitions()); err != nil {
		t.Fatal(err)
	}
	snap := cfg.Metrics.Snapshot()
	if got := snap.Counters["pipeline_cars_processed"]; got != 3 {
		t.Fatalf("pipeline_cars_processed = %d, want 3", got)
	}
	for _, stage := range StageNames {
		if h := snap.Histograms["pipeline_"+stage+"_duration_seconds"]; h.Count == 0 {
			t.Errorf("stage %s recorded no spans", stage)
		}
		if g := snap.Gauges["pipeline_"+stage+"_active"]; g != 0 {
			t.Errorf("stage %s active gauge did not return to 0: %v", stage, g)
		}
	}

	// The memory layout must be invisible in the results: forcing the
	// row-oriented legacy path produces output byte-identical to the
	// columnar default. This is the end-to-end proof that RepairColumns
	// and SplitColumns mirror Repair and Split bit for bit — every float
	// expression, sort stability choice and drop rule included.
	legCfg := determinismConfig()
	legCfg.Layout = LayoutLegacy
	legacy, err := NewPipeline(legCfg)
	if err != nil {
		t.Fatal(err)
	}
	legRes, err := legacy.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	legJSON, err := json.Marshal(legRes)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(parJSON, legJSON) {
		t.Fatalf("legacy layout diverged from columnar:\ncolumnar %d bytes, legacy %d bytes",
			len(parJSON), len(legJSON))
	}

	// The strict invariant checker must not perturb determinism either:
	// checks observe stage outputs, never mutate them, so a strict run
	// over invariant-respecting data is byte-identical — and records
	// zero violations.
	ccfg := determinismConfig()
	ccfg.Metrics = obs.NewRegistry()
	ccfg.Check = check.Config{Strict: true}
	checked, err := NewPipeline(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	chkRes, err := checked.RunContext(context.Background())
	if err != nil {
		t.Fatalf("strict checker failed a clean fleet: %v", err)
	}
	chkJSON, err := json.Marshal(chkRes)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(parJSON, chkJSON) {
		t.Fatal("enabling the strict checker changed the pipeline output")
	}
	if _, _, err := checked.GridAnalysis(chkRes.Transitions()); err != nil {
		t.Fatal(err)
	}
	for name, n := range ccfg.Metrics.Snapshot().Counters {
		if strings.HasPrefix(name, "check_violations_total") && n != 0 {
			t.Errorf("clean fleet recorded violations: %s = %d", name, n)
		}
	}
}
