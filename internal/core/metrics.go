package core

import (
	"repro/internal/obs"
	"repro/internal/odselect"
	"repro/internal/roadnet"
	"repro/internal/segment"
)

// StageNames lists the instrumented pipeline stages in paper order.
// Every stage owns a span (<name>_duration_seconds histogram plus
// <name>_active gauge) and kept/dropped counters under the
// "pipeline_<stage>_" prefix; exporters and the taxiflow summary table
// iterate this list.
var StageNames = []string{
	"simulate", "clean", "segment", "odselect", "mapmatch", "mapattr", "grid",
}

// pipelineMetrics holds every pre-resolved metric handle the pipeline
// touches. Handles are resolved once at construction; with a nil
// registry every field is nil and every operation is a no-op branch, so
// the hot path carries no "is observability on?" logic of its own.
type pipelineMetrics struct {
	// Per-car worker accounting: pipeline_car_active is the live worker
	// gauge, the histogram is the per-car end-to-end processing time.
	car  *obs.SpanTimer
	cars *obs.Counter

	// Stage spans, paper order.
	simulate, clean, segment, odselect, mapmatch, mapattr, grid, lmm *obs.SpanTimer

	simTrips *obs.Counter

	cleanTrips, cleanReordered, cleanChoseTime, cleanPointsDropped *obs.Counter

	segIn, segKept, segDroppedShort, segDroppedLong, segResplit, segStopPointsDropped *obs.Counter

	odSegments, odGateTouched, odTransitions, odWithinCentre, odAccepted, odRejected *obs.Counter

	matchMatched, matchDropped *obs.Counter

	attrRoutes *obs.Counter

	gridPoints *obs.Counter
	gridCells  *obs.Gauge
	lmmObs     *obs.Gauge
}

// newPipelineMetrics resolves every handle against reg (which may be
// nil — all handles become no-ops).
func newPipelineMetrics(reg *obs.Registry) *pipelineMetrics {
	return &pipelineMetrics{
		car:  reg.SpanTimer("pipeline_car"),
		cars: reg.Counter("pipeline_cars_processed"),

		simulate: reg.SpanTimer("pipeline_simulate"),
		clean:    reg.SpanTimer("pipeline_clean"),
		segment:  reg.SpanTimer("pipeline_segment"),
		odselect: reg.SpanTimer("pipeline_odselect"),
		mapmatch: reg.SpanTimer("pipeline_mapmatch"),
		mapattr:  reg.SpanTimer("pipeline_mapattr"),
		grid:     reg.SpanTimer("pipeline_grid"),
		lmm:      reg.SpanTimer("pipeline_lmm"),

		simTrips: reg.Counter("pipeline_simulate_trips"),

		cleanTrips:         reg.Counter("pipeline_clean_trips"),
		cleanReordered:     reg.Counter("pipeline_clean_reordered"),
		cleanChoseTime:     reg.Counter("pipeline_clean_chose_time"),
		cleanPointsDropped: reg.Counter("pipeline_clean_points_dropped"),

		segIn:                reg.Counter("pipeline_segment_input_trips"),
		segKept:              reg.Counter("pipeline_segment_kept"),
		segDroppedShort:      reg.Counter("pipeline_segment_dropped_short"),
		segDroppedLong:       reg.Counter("pipeline_segment_dropped_long"),
		segResplit:           reg.Counter("pipeline_segment_resplit"),
		segStopPointsDropped: reg.Counter("pipeline_segment_stop_points_dropped"),

		odSegments:     reg.Counter("pipeline_odselect_segments"),
		odGateTouched:  reg.Counter("pipeline_odselect_gate_touched"),
		odTransitions:  reg.Counter("pipeline_odselect_transitions"),
		odWithinCentre: reg.Counter("pipeline_odselect_within_centre"),
		odAccepted:     reg.Counter("pipeline_odselect_accepted"),
		odRejected:     reg.Counter("pipeline_odselect_rejected"),

		matchMatched: reg.Counter("pipeline_mapmatch_matched"),
		matchDropped: reg.Counter("pipeline_mapmatch_dropped"),

		attrRoutes: reg.Counter("pipeline_mapattr_routes"),

		gridPoints: reg.Counter("pipeline_grid_points"),
		gridCells:  reg.Gauge("pipeline_grid_cells_nonempty"),
		lmmObs:     reg.Gauge("pipeline_lmm_observations"),
	}
}

// recordCleanStats folds one car's cleaning summary into the counters.
func (m *pipelineMetrics) recordCleanStats(s CleanStats) {
	m.cleanTrips.Add(uint64(s.Trips))
	m.cleanReordered.Add(uint64(s.Reordered))
	m.cleanChoseTime.Add(uint64(s.ChoseTime))
	m.cleanPointsDropped.Add(uint64(s.DroppedPoints))
}

// recordSegStats folds one car's segmentation summary into the
// counters.
func (m *pipelineMetrics) recordSegStats(s segment.Stats) {
	m.segIn.Add(uint64(s.InputTrips))
	m.segKept.Add(uint64(s.KeptSegments))
	m.segDroppedShort.Add(uint64(s.TooFewPoints))
	m.segDroppedLong.Add(uint64(s.TooLong))
	m.segResplit.Add(uint64(s.Resplit))
	m.segStopPointsDropped.Add(uint64(s.DroppedStopPoints))
}

// recordFunnel folds one car's OD funnel into the counters.
func (m *pipelineMetrics) recordFunnel(f odselect.Funnel) {
	m.odSegments.Add(uint64(f.TripSegments))
	m.odGateTouched.Add(uint64(f.Filtered))
	m.odTransitions.Add(uint64(f.Transitions))
	m.odWithinCentre.Add(uint64(f.WithinCentre))
	m.odAccepted.Add(uint64(f.PostFiltered))
	m.odRejected.Add(uint64(f.TripSegments - f.PostFiltered))
}

// registerRouterGauges re-exports the router path-cache counters (which
// the roadnet package keeps itself) as snapshot-time gauges: hit/miss/
// eviction totals, hit rate, total occupancy, and per-shard occupancy
// so cache-capacity tuning (Config.RouterCachePaths) is observable.
func registerRouterGauges(reg *obs.Registry, router *roadnet.Router) {
	if reg == nil || router == nil {
		return
	}
	reg.GaugeFunc("router_cache_hits", func() float64 {
		return float64(router.CacheStats().Hits)
	})
	reg.GaugeFunc("router_cache_misses", func() float64 {
		return float64(router.CacheStats().Misses)
	})
	reg.GaugeFunc("router_cache_evictions", func() float64 {
		return float64(router.CacheStats().Evictions)
	})
	reg.GaugeFunc("router_cache_entries", func() float64 {
		return float64(router.CacheStats().Entries)
	})
	reg.GaugeFunc("router_cache_hit_rate", func() float64 {
		return router.CacheStats().HitRate()
	})
	reg.GaugeFunc("router_cache_shard_max_entries", func() float64 {
		max := 0
		for _, n := range router.CacheStats().ShardEntries {
			if n > max {
				max = n
			}
		}
		return float64(max)
	})
	reg.GaugeFunc("router_cache_shard_min_entries", func() float64 {
		s := router.CacheStats().ShardEntries
		if len(s) == 0 {
			return 0
		}
		min := s[0]
		for _, n := range s {
			if n < min {
				min = n
			}
		}
		return float64(min)
	})
}
