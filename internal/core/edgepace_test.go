package core

import (
	"math"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/mapmatch"
	"repro/internal/odselect"
	"repro/internal/roadnet"
	"repro/internal/trace"
)

// paceRecord builds a matched transition whose span points carry the
// given per-point (edge, along-metres, skipped) assignments, spaced
// stepS seconds apart starting at start.
func paceRecord(start time.Time, stepS float64, edges []roadnet.EdgeID, along []float64, skipped []bool) *TransitionRecord {
	tr := &trace.Trip{ID: 1, CarID: 1}
	match := &mapmatch.Result{}
	for i := range edges {
		tr.Points = append(tr.Points, trace.RoutePoint{
			PointID: i, TripID: 1,
			Pos:  geo.V(float64(i)*100, 0),
			Time: start.Add(time.Duration(float64(i) * stepS * float64(time.Second))),
		})
		match.Points = append(match.Points, mapmatch.MatchedPoint{
			Index: i, Skipped: skipped[i], Edge: edges[i],
			Proj: geo.ProjectResult{Along: along[i]},
		})
	}
	return &TransitionRecord{
		Car: 1,
		Transition: &odselect.Transition{
			Seg: tr, From: "T", To: "S", Direction: "T-S",
			FromCross: geo.Crossing{EntryIndex: 0},
			ToCross:   geo.Crossing{ExitIndex: len(edges) - 1},
		},
		Match: match,
	}
}

func TestTransitionEdgePaces(t *testing.T) {
	start := time.Date(2022, 3, 1, 8, 30, 0, 0, time.UTC)

	t.Run("single run yields one pace", func(t *testing.T) {
		// Three points on edge 7, 30 s apart, covering 500 m: 60 s over
		// 0.5 km = 120 s/km.
		rec := paceRecord(start, 30,
			[]roadnet.EdgeID{7, 7, 7}, []float64{0, 250, 500}, []bool{false, false, false})
		got := TransitionEdgePaces(rec)
		if len(got) != 1 {
			t.Fatalf("paces = %+v, want one", got)
		}
		if got[0].Edge != 7 || got[0].Hour != 8 {
			t.Fatalf("pace key = %+v, want edge 7 hour 8", got[0])
		}
		if math.Abs(got[0].SecPerKm-120) > 1e-9 {
			t.Fatalf("pace = %g s/km, want 120", got[0].SecPerKm)
		}
	})

	t.Run("edge change splits runs", func(t *testing.T) {
		rec := paceRecord(start, 30,
			[]roadnet.EdgeID{7, 7, 9, 9}, []float64{0, 300, 10, 310},
			[]bool{false, false, false, false})
		got := TransitionEdgePaces(rec)
		if len(got) != 2 || got[0].Edge != 7 || got[1].Edge != 9 {
			t.Fatalf("paces = %+v, want runs on edges 7 and 9", got)
		}
	})

	t.Run("skipped points break runs", func(t *testing.T) {
		// The middle point is unmatched, so neither single-point side
		// yields an observation.
		rec := paceRecord(start, 30,
			[]roadnet.EdgeID{7, 0, 7}, []float64{0, 0, 500}, []bool{false, true, false})
		if got := TransitionEdgePaces(rec); len(got) != 0 {
			t.Fatalf("paces = %+v, want none across a skipped gap", got)
		}
	})

	t.Run("noise-length runs are dropped", func(t *testing.T) {
		rec := paceRecord(start, 30,
			[]roadnet.EdgeID{7, 7}, []float64{100, 102}, []bool{false, false})
		if got := TransitionEdgePaces(rec); len(got) != 0 {
			t.Fatalf("paces = %+v, want none for a %gm run", got, 2.0)
		}
	})

	t.Run("zero elapsed time yields nothing", func(t *testing.T) {
		rec := paceRecord(start, 0,
			[]roadnet.EdgeID{7, 7}, []float64{0, 500}, []bool{false, false})
		if got := TransitionEdgePaces(rec); len(got) != 0 {
			t.Fatalf("paces = %+v, want none with dt=0", got)
		}
	})

	t.Run("unmatched transition yields nothing", func(t *testing.T) {
		rec := paceRecord(start, 30,
			[]roadnet.EdgeID{7, 7}, []float64{0, 500}, []bool{false, false})
		rec.Match = nil
		if got := TransitionEdgePaces(rec); got != nil {
			t.Fatalf("paces = %+v, want nil without a match", got)
		}
	})
}
