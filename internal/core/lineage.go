package core

import (
	"context"
	"errors"
	"log/slog"

	"repro/internal/obs"
)

// Lineage glue: the pipeline's drop-reason ledger. Stage code never
// touches the ledger directly — each car accumulates its in/out/drop
// counts into its CarResult, and commitCar folds them into the ledger
// (and the stage counters) exactly once, on the car's final successful
// attempt. A failed attempt commits nothing, so retries cannot
// double-count and the conservation invariant (in = out + Σ dropped,
// per stage) holds by construction:
//
//	clean    (points):      RawPoints   = KeptPoints   + Drops.Total()
//	segment  (segments):    RawSegments = KeptSegments + TooFew + TooLong
//	odselect (segments):    TripSegments = PostFiltered + the funnel gaps
//	mapmatch (transitions): PostFiltered = Matched + Degenerate + Unroutable
//	fleet    (cars):        attempted    = ok + failed-by-stage
type lineageHandles struct {
	clean, segment, od, match, fleet *obs.StageLineage

	cleanNonFinite, cleanOutOfArea, cleanDup, cleanSpike  *obs.DropCounter
	segShort, segLong                                     *obs.DropCounter
	odNoGate, odSingleGate, odOutsideCentre, odPostFilter *obs.DropCounter
	matchDegenerate, matchUnroutable                      *obs.DropCounter
}

// newLineageHandles pre-resolves every ledger handle. With a nil
// ledger every handle is nil and every operation is a no-op, mirroring
// the registry contract.
func newLineageHandles(l *obs.Lineage) *lineageHandles {
	h := &lineageHandles{
		clean:   l.Stage("clean", "points"),
		segment: l.Stage("segment", "segments"),
		od:      l.Stage("odselect", "segments"),
		match:   l.Stage("mapmatch", "transitions"),
		fleet:   l.Stage("fleet", "cars"),
	}
	h.cleanNonFinite = h.clean.Reason(obs.DropNonFinite)
	h.cleanOutOfArea = h.clean.Reason(obs.DropOutOfArea)
	h.cleanDup = h.clean.Reason(obs.DropDuplicateID)
	h.cleanSpike = h.clean.Reason(obs.DropSpike)
	h.segShort = h.segment.Reason(obs.DropTooFewPoints)
	h.segLong = h.segment.Reason(obs.DropTooLong)
	h.odNoGate = h.od.Reason(obs.DropNoGate)
	h.odSingleGate = h.od.Reason(obs.DropSingleGate)
	h.odOutsideCentre = h.od.Reason(obs.DropOutsideCentre)
	h.odPostFilter = h.od.Reason(obs.DropPostFilter)
	h.matchDegenerate = h.match.Reason(obs.DropDegenerateSpan)
	h.matchUnroutable = h.match.Reason(obs.DropUnroutable)
	return h
}

// commitCar publishes one successfully processed car into the stage
// counters and the lineage ledger. It is the single metrics/lineage
// commit point for per-car stage accounting: callers invoke it exactly
// once per car, after the car's final attempt succeeded, so a retried
// attempt's partial progress never leaks into the totals (the
// per-attempt duration histograms and the pipeline_cars_processed
// envelope counter intentionally remain per-attempt).
func (p *Pipeline) commitCar(cr *CarResult) {
	p.met.recordCleanStats(cr.CleanStats)
	p.met.recordSegStats(cr.SegStats)
	p.met.recordFunnel(cr.Funnel)
	p.met.matchMatched.Add(uint64(cr.MatchStats.Matched))
	p.met.matchDropped.Add(uint64(cr.MatchStats.Degenerate + cr.MatchStats.Unroutable))
	p.met.attrRoutes.Add(uint64(len(cr.Transitions)))

	h := p.lin
	car := cr.Car
	h.clean.RecordCar(car, uint64(cr.CleanStats.RawPoints), uint64(cr.CleanStats.KeptPoints))
	h.cleanNonFinite.Add(uint64(cr.CleanStats.Drops.NonFinite))
	h.cleanOutOfArea.Add(uint64(cr.CleanStats.Drops.OutOfArea))
	h.cleanDup.Add(uint64(cr.CleanStats.Drops.DuplicateID))
	h.cleanSpike.Add(uint64(cr.CleanStats.Drops.Spike))

	h.segment.RecordCar(car, uint64(cr.SegStats.RawSegments), uint64(cr.SegStats.KeptSegments))
	h.segShort.Add(uint64(cr.SegStats.TooFewPoints))
	h.segLong.Add(uint64(cr.SegStats.TooLong))

	f := cr.Funnel
	h.od.RecordCar(car, uint64(f.TripSegments), uint64(f.PostFiltered))
	h.odNoGate.Add(uint64(f.TripSegments - f.Filtered))
	h.odSingleGate.Add(uint64(f.Filtered - f.Transitions))
	h.odOutsideCentre.Add(uint64(f.Transitions - f.WithinCentre))
	h.odPostFilter.Add(uint64(f.WithinCentre - f.PostFiltered))

	m := cr.MatchStats
	h.match.RecordCar(car, uint64(m.Matched+m.Degenerate+m.Unroutable), uint64(m.Matched))
	h.matchDegenerate.Add(uint64(m.Degenerate))
	h.matchUnroutable.Add(uint64(m.Unroutable))

	if log := p.Config.Log; log != nil {
		log.Debug("car processed",
			slog.Int("car", car),
			slog.Int("raw_trips", cr.RawTrips),
			slog.Int("raw_points", cr.CleanStats.RawPoints),
			slog.Int("kept_points", cr.CleanStats.KeptPoints),
			slog.Int("segments", cr.SegStats.KeptSegments),
			slog.Int("transitions", len(cr.Transitions)))
	}
}

// recordFleetEvent folds one terminal per-car outcome into the fleet
// row of the ledger (and the structured log). Runs on the stream's
// forwarding goroutine via runner.Tee, so every delivered event is
// counted exactly once; cars abandoned before producing an event are
// never counted as "in", keeping the row conserved under aborts.
func (p *Pipeline) recordFleetEvent(ev CarEvent) {
	log := p.Config.Log
	if ev.Err == nil {
		p.lin.fleet.RecordCar(ev.Car, 1, 1)
		return
	}
	p.lin.fleet.RecordCar(ev.Car, 1, 0)
	reason := obs.DropCancelled
	if !errors.Is(ev.Err.Err, context.Canceled) && !errors.Is(ev.Err.Err, context.DeadlineExceeded) {
		reason = obs.DropReason("failed:" + failStage(ev.Err.Stage))
	}
	p.lin.fleet.Reason(reason).Add(1)
	if log != nil {
		log.Warn("car failed",
			slog.Int("car", ev.Car),
			slog.String("stage", failStage(ev.Err.Stage)),
			slog.Int("attempts", ev.Err.Attempts),
			slog.String("error", ev.Err.Err.Error()))
	}
}

func failStage(stage string) string {
	if stage == "" {
		return "unknown"
	}
	return stage
}
