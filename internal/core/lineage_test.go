package core

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/obs"
	"repro/internal/runner"
)

// TestFleetLineageConservation is the acceptance test for the lineage
// ledger: on a default fleet run every stage row must satisfy
// in = out + Σ dropped-by-reason, and the rows must reconcile exactly
// with the per-car results.
func TestFleetLineageConservation(t *testing.T) {
	lin := obs.NewLineage(obs.NewRegistry())
	cfg := determinismConfig()
	cfg.Lineage = lin
	// Enough injected GPS spikes that the cleaner provably drops points.
	cfg.Fleet.SpikeRate = 0.5
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	if err := lin.Check(); err != nil {
		t.Fatalf("lineage conservation violated: %v", err)
	}
	snap := lin.Snapshot(10)
	if !snap.Conserved {
		t.Fatal("snapshot not conserved")
	}

	// Reconcile every stage row against the per-car sums.
	var rawPts, keptPts, rawSegs, keptSegs, segsIn, accepted, matched uint64
	for _, cr := range res.Cars {
		rawPts += uint64(cr.CleanStats.RawPoints)
		keptPts += uint64(cr.CleanStats.KeptPoints)
		rawSegs += uint64(cr.SegStats.RawSegments)
		keptSegs += uint64(cr.SegStats.KeptSegments)
		segsIn += uint64(cr.Funnel.TripSegments)
		accepted += uint64(cr.Funnel.PostFiltered)
		matched += uint64(cr.MatchStats.Matched)
	}
	rows := map[string]obs.StageSnapshot{}
	for _, row := range snap.Stages {
		rows[row.Stage] = row
	}
	for _, tc := range []struct {
		stage   string
		in, out uint64
	}{
		{"clean", rawPts, keptPts},
		{"segment", rawSegs, keptSegs},
		{"odselect", segsIn, accepted},
		{"mapmatch", accepted, matched},
		{"fleet", uint64(len(res.Cars)), uint64(len(res.Cars))},
	} {
		row, ok := rows[tc.stage]
		if !ok {
			t.Fatalf("stage %s missing from lineage table", tc.stage)
		}
		if row.In != tc.in || row.Out != tc.out {
			t.Errorf("%s: in/out = %d/%d, want %d/%d", tc.stage, row.In, row.Out, tc.in, tc.out)
		}
	}
	if rawPts == keptPts {
		t.Fatal("degenerate test: the cleaner dropped nothing")
	}
	if len(snap.TopDroppedCars) == 0 {
		t.Fatal("no per-car drop attribution recorded")
	}
}

// TestRetryCommitsLineageOnce is the regression test for the retry
// double-count: a car that fails transiently and then succeeds must
// contribute its stage counters and lineage exactly once — the run's
// counters must equal those of a fault-free run.
func TestRetryCommitsLineageOnce(t *testing.T) {
	run := func(faulty bool) (*Result, *obs.Registry, *obs.Lineage) {
		reg := obs.NewRegistry()
		lin := obs.NewLineage(reg)
		cfg := determinismConfig()
		cfg.Metrics = reg
		cfg.Lineage = lin
		if faulty {
			cfg.MaxAttempts = 3
			cfg.Workers = 1 // serialise so the injector needs no locking
			remaining := 2
			cfg.Faults = runner.FaultFunc(func(car int, stage string) error {
				if car == 2 && stage == "odselect" && remaining > 0 {
					remaining--
					return runner.Transient(errors.New("injected: flaky selector"))
				}
				return nil
			})
		}
		p, err := NewPipeline(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.RunContext(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res, reg, lin
	}

	cleanRes, cleanReg, cleanLin := run(false)
	faultRes, faultReg, faultLin := run(true)

	wj, _ := json.Marshal(cleanRes)
	gj, _ := json.Marshal(faultRes)
	if !bytes.Equal(wj, gj) {
		t.Fatal("retried run diverged from the clean run")
	}

	// Every stage counter must match the fault-free run: partial
	// attempts commit nothing. pipeline_cars_processed and the duration
	// histograms are per-attempt by design and excluded.
	cleanSnap, faultSnap := cleanReg.Snapshot(), faultReg.Snapshot()
	for _, name := range []string{
		"pipeline_simulate_trips",
		"pipeline_clean_trips", "pipeline_clean_points_dropped",
		"pipeline_segment_kept", "pipeline_segment_input_trips",
		"pipeline_odselect_segments", "pipeline_odselect_accepted",
		"pipeline_mapmatch_matched", "pipeline_mapmatch_dropped",
		"pipeline_mapattr_routes",
	} {
		if got, want := faultSnap.Counters[name], cleanSnap.Counters[name]; got != want {
			t.Errorf("%s = %d after retries, want %d", name, got, want)
		}
	}
	if got := faultSnap.Counters["runner_cars_retried"]; got != 2 {
		t.Fatalf("runner_cars_retried = %d, want 2", got)
	}

	if err := faultLin.Check(); err != nil {
		t.Fatalf("lineage conservation violated after retries: %v", err)
	}
	cj, _ := json.Marshal(cleanLin.Snapshot(0))
	fj, _ := json.Marshal(faultLin.Snapshot(0))
	if !bytes.Equal(cj, fj) {
		t.Fatalf("lineage diverged after retries:\nclean %s\nfault %s", cj, fj)
	}
}

// TestFleetLineageRecordsFailures: a permanently failing car lands in
// the fleet row as failed:<stage>, keeping the row conserved.
func TestFleetLineageRecordsFailures(t *testing.T) {
	lin := obs.NewLineage(nil)
	cfg := determinismConfig()
	cfg.Lineage = lin
	cfg.Faults = runner.FaultFunc(func(car int, stage string) error {
		if car == 2 && stage == "mapmatch" {
			return errors.New("injected: poisoned car")
		}
		return nil
	})
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.RunContext(context.Background())
	if err == nil {
		t.Fatal("want a car failure")
	}
	if len(res.Cars) != 2 {
		t.Fatalf("want 2 surviving cars, got %d", len(res.Cars))
	}
	if err := lin.Check(); err != nil {
		t.Fatalf("lineage not conserved with failures: %v", err)
	}
	for _, row := range lin.Snapshot(0).Stages {
		if row.Stage != "fleet" {
			continue
		}
		if row.In != 3 || row.Out != 2 {
			t.Fatalf("fleet row = %+v", row)
		}
		if len(row.Reasons) != 1 || row.Reasons[0].Reason != "failed:mapmatch" || row.Reasons[0].N != 1 {
			t.Fatalf("fleet reasons = %+v", row.Reasons)
		}
		return
	}
	t.Fatal("fleet row missing")
}

// TestTracedFleetProducesSpanTrees runs a traced fleet and checks the
// recorded spans form per-car trees with the expected stages, and that
// both exporters emit parseable output.
func TestTracedFleetProducesSpanTrees(t *testing.T) {
	tr := obs.NewTracer(obs.TracerConfig{Capacity: 1 << 12})
	cfg := determinismConfig()
	cfg.Tracer = tr
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.RunContext(context.Background()); err != nil {
		t.Fatal(err)
	}

	recs := tr.Records()
	roots := map[int]uint64{} // car -> root span id
	stages := map[int]map[string]bool{}
	byID := map[uint64]*obs.SpanRecord{}
	for _, r := range recs {
		byID[r.ID] = r
	}
	for _, r := range recs {
		if r.Name == "car" && r.Parent == 0 {
			roots[r.Car] = r.ID
		}
	}
	for _, r := range recs {
		if r.Parent == 0 {
			continue
		}
		p, ok := byID[r.Parent]
		if !ok {
			t.Fatalf("span %d has unknown parent %d", r.ID, r.Parent)
		}
		if p.Car != r.Car {
			t.Fatalf("span %q crosses cars", r.Name)
		}
		if m := stages[r.Car]; m == nil {
			stages[r.Car] = map[string]bool{}
		}
		stages[r.Car][r.Name] = true
	}
	for car := 1; car <= 3; car++ {
		if roots[car] == 0 {
			t.Fatalf("car %d has no root span", car)
		}
		for _, stage := range []string{"simulate", "clean", "segment", "odselect", "mapmatch"} {
			if !stages[car][stage] {
				t.Errorf("car %d missing %s stage span", car, stage)
			}
		}
	}

	var buf bytes.Buffer
	if err := tr.WriteTraceEvent(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("trace export is not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) < len(recs) {
		t.Fatalf("export has %d events for %d records", len(parsed.TraceEvents), len(recs))
	}
}

// TestTracingAndLineageDoNotChangeResults: the observed run must be
// byte-identical to the bare run — observability never influences
// results.
func TestTracingAndLineageDoNotChangeResults(t *testing.T) {
	bare, err := NewPipeline(determinismConfig())
	if err != nil {
		t.Fatal(err)
	}
	bareRes, err := bare.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	cfg := determinismConfig()
	cfg.Tracer = obs.NewTracer(obs.TracerConfig{Capacity: 1 << 12, SampleFraction: 0.5})
	cfg.Lineage = obs.NewLineage(obs.NewRegistry())
	cfg.Metrics = obs.NewRegistry()
	obsP, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	obsRes, err := obsP.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	wj, _ := json.Marshal(bareRes)
	gj, _ := json.Marshal(obsRes)
	if !bytes.Equal(wj, gj) {
		t.Fatal("observability changed pipeline results")
	}
}
