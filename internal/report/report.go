// Package report assembles the end-of-run report: one JSON document
// that answers "what happened to the data" — the fleet outcome, the
// per-stage timing account, and the conservation-checked lineage table
// (in = out + Σ dropped-by-reason, per stage, plus the most lossy
// cars). The taxiflow binary writes it with -report; cmd/lineagecheck
// re-validates it in CI, so the schema is versioned and Validate is
// the single contract both sides share.
package report

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// Schema identifies the report layout; bump on incompatible change.
const Schema = "taxiflow-run-report/v1"

// Report is the run report document.
type Report struct {
	Schema      string    `json:"schema"`
	GeneratedAt time.Time `json:"generated_at"`
	// DurationSeconds is the wall-clock length of the run.
	DurationSeconds float64 `json:"duration_seconds"`
	// Params echoes the run's configuration knobs (flag name → value)
	// so a report is interpretable without the invoking command line.
	Params map[string]string `json:"params,omitempty"`
	Fleet  FleetSummary      `json:"fleet"`
	// StageTimings is the per-stage span account, in pipeline order.
	StageTimings []StageTiming `json:"stage_timings"`
	// Lineage is the drop-reason ledger; Lineage.Conserved is the
	// report's headline integrity bit.
	Lineage obs.LineageSnapshot `json:"lineage"`
}

// FleetSummary is the runner's outcome account.
type FleetSummary struct {
	CarsOK      uint64 `json:"cars_ok"`
	CarsFailed  uint64 `json:"cars_failed"`
	CarsRetried uint64 `json:"cars_retried"`
	CarsSkipped uint64 `json:"cars_skipped"`
	Transitions uint64 `json:"transitions"`
}

// StageTiming is one stage's span summary.
type StageTiming struct {
	Stage          string  `json:"stage"`
	Calls          uint64  `json:"calls"`
	TotalSeconds   float64 `json:"total_seconds"`
	P50Seconds     float64 `json:"p50_seconds"`
	P99Seconds     float64 `json:"p99_seconds"`
	MaxSeconds     float64 `json:"max_seconds"`
	AverageSeconds float64 `json:"avg_seconds"`
}

// Options configures Build.
type Options struct {
	// Params are echoed into Report.Params.
	Params map[string]string
	// Duration is the run's wall-clock length.
	Duration time.Duration
	// TopCars caps the lineage table's per-car drop list (default 10).
	TopCars int
	// Now is the report timestamp source (test hook); nil selects
	// time.Now.
	Now func() time.Time
}

// Build assembles a report from the run's metrics registry and lineage
// ledger. Either may be nil; the corresponding sections come out empty
// (and an empty lineage table is trivially conserved).
func Build(reg *obs.Registry, lin *obs.Lineage, opts Options) Report {
	if opts.TopCars == 0 {
		opts.TopCars = 10
	}
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	snap := reg.Snapshot()
	r := Report{
		Schema:          Schema,
		GeneratedAt:     now().UTC(),
		DurationSeconds: opts.Duration.Seconds(),
		Params:          opts.Params,
		Fleet: FleetSummary{
			CarsOK:      snap.Counters["runner_cars_ok"],
			CarsFailed:  snap.Counters["runner_cars_failed"],
			CarsRetried: snap.Counters["runner_cars_retried"],
			CarsSkipped: snap.Counters["runner_cars_skipped"],
			Transitions: snap.Counters["pipeline_mapattr_routes"],
		},
		StageTimings: []StageTiming{},
		Lineage:      lin.Snapshot(opts.TopCars),
	}
	for _, stage := range core.StageNames {
		h, ok := snap.Histograms["pipeline_"+stage+"_duration_seconds"]
		if !ok || h.Count == 0 {
			continue
		}
		st := StageTiming{
			Stage:        stage,
			Calls:        h.Count,
			TotalSeconds: h.Sum,
			P50Seconds:   h.P50,
			P99Seconds:   h.P99,
			MaxSeconds:   h.Max,
		}
		st.AverageSeconds = h.Sum / float64(h.Count)
		r.StageTimings = append(r.StageTimings, st)
	}
	return r
}

// Validate checks a report's internal consistency — the contract
// cmd/lineagecheck enforces in CI: schema match, a conserved lineage
// table whose Conserved flag tells the truth, and sane stage timings.
func Validate(r *Report) error {
	if r.Schema != Schema {
		return fmt.Errorf("report: schema %q, want %q", r.Schema, Schema)
	}
	if err := r.Lineage.Check(); err != nil {
		return err
	}
	if !r.Lineage.Conserved {
		return fmt.Errorf("report: lineage rows conserve but Conserved flag is false")
	}
	for _, st := range r.StageTimings {
		if st.Calls == 0 {
			return fmt.Errorf("report: stage %s has zero calls", st.Stage)
		}
		// Quantiles are bucket-boundary estimates and may legitimately
		// exceed the exact Max, so only sign sanity is enforced here.
		if st.TotalSeconds < 0 || st.P50Seconds < 0 || st.P99Seconds < 0 {
			return fmt.Errorf("report: stage %s has negative timings", st.Stage)
		}
	}
	for _, car := range r.Lineage.TopDroppedCars {
		if car.Dropped == 0 {
			return fmt.Errorf("report: car %d listed as lossy with zero drops", car.Car)
		}
	}
	return nil
}

// WriteFile marshals the report (indented, stable field order) to path.
func WriteFile(path string, r *Report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile loads and validates a report from path.
func ReadFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("report: %s: %v", path, err)
	}
	if err := Validate(&r); err != nil {
		return nil, fmt.Errorf("report: %s: %w", path, err)
	}
	return &r, nil
}
