package report

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/tracegen"
)

func runFleet(t *testing.T) (*obs.Registry, *obs.Lineage) {
	t.Helper()
	reg := obs.NewRegistry()
	lin := obs.NewLineage(reg)
	p, err := core.NewPipeline(core.Config{
		CitySeed: 42,
		Fleet:    tracegen.Config{Seed: 42, Cars: 2, TripsPerCar: 8, GateRunFraction: 0.35, SpikeRate: 0.4},
		Metrics:  reg,
		Lineage:  lin,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.RunContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	return reg, lin
}

func TestBuildValidateRoundTrip(t *testing.T) {
	reg, lin := runFleet(t)
	fixed := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	r := Build(reg, lin, Options{
		Params:   map[string]string{"cars": "2", "seed": "42"},
		Duration: 3 * time.Second,
		Now:      func() time.Time { return fixed },
	})
	if err := Validate(&r); err != nil {
		t.Fatalf("fresh report invalid: %v", err)
	}
	if !r.GeneratedAt.Equal(fixed) || r.DurationSeconds != 3 {
		t.Fatalf("header = %v / %v", r.GeneratedAt, r.DurationSeconds)
	}
	if r.Fleet.CarsOK != 2 || r.Fleet.CarsFailed != 0 {
		t.Fatalf("fleet = %+v", r.Fleet)
	}
	if len(r.StageTimings) == 0 {
		t.Fatal("no stage timings")
	}
	for _, st := range r.StageTimings {
		if st.Calls == 0 || st.TotalSeconds < 0 {
			t.Fatalf("stage %+v", st)
		}
	}
	if !r.Lineage.Conserved || len(r.Lineage.Stages) == 0 {
		t.Fatalf("lineage = %+v", r.Lineage)
	}

	path := filepath.Join(t.TempDir(), "report.json")
	if err := WriteFile(path, &r); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Fleet != r.Fleet || len(back.Lineage.Stages) != len(r.Lineage.Stages) {
		t.Fatalf("round trip diverged: %+v vs %+v", back.Fleet, r.Fleet)
	}
}

func TestValidateRejectsViolations(t *testing.T) {
	reg, lin := runFleet(t)
	base := Build(reg, lin, Options{})

	bad := base
	bad.Schema = "bogus/v9"
	if err := Validate(&bad); err == nil {
		t.Error("schema mismatch accepted")
	}

	bad = base
	// Deep-copy the stage rows before corrupting one.
	bad.Lineage.Stages = append([]obs.StageSnapshot(nil), base.Lineage.Stages...)
	bad.Lineage.Stages[0].In += 7 // unaccounted loss
	if err := Validate(&bad); err == nil {
		t.Error("conservation violation accepted")
	}

	bad = base
	bad.StageTimings = append([]StageTiming(nil), base.StageTimings...)
	bad.StageTimings[0].Calls = 0
	if err := Validate(&bad); err == nil {
		t.Error("zero-call stage accepted")
	}
}

func TestBuildNilSources(t *testing.T) {
	r := Build(nil, nil, Options{})
	if err := Validate(&r); err != nil {
		t.Fatalf("empty report invalid: %v", err)
	}
	if len(r.StageTimings) != 0 || len(r.Lineage.Stages) != 0 {
		t.Fatalf("empty report has data: %+v", r)
	}
}
