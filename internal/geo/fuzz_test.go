package geo

import (
	"math"
	"testing"
)

// FuzzProjectionRoundTrip checks ToPoint∘ToXY ≈ identity for any
// projection origin and target point the pipeline could plausibly see.
// Latitudes are folded into ±85°: at the poles cos(lat)→0 degenerates
// the equirectangular longitude scale and no inverse exists, which is a
// documented limit of the projection, not a bug.
func FuzzProjectionRoundTrip(f *testing.F) {
	f.Add(25.47, 65.01, 25.48, 65.02) // Oulu, the paper's city
	f.Add(0.0, 0.0, 0.0, 0.0)
	f.Add(-179.9, -84.0, 179.9, 84.9)
	f.Add(13.4, 52.5, 13.5, 52.6)

	f.Fuzz(func(t *testing.T, oLon, oLat, lon, lat float64) {
		fold := func(v, lim float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, lim)
		}
		origin := Point{Lon: fold(oLon, 180), Lat: fold(oLat, 85)}
		p := Point{Lon: fold(lon, 180), Lat: fold(lat, 85)}

		pr := NewProjection(origin)
		xy := pr.ToXY(p)
		if math.IsNaN(xy.X) || math.IsNaN(xy.Y) || math.IsInf(xy.X, 0) || math.IsInf(xy.Y, 0) {
			t.Fatalf("ToXY(%v) from origin %v is not finite: %v", p, origin, xy)
		}
		back := pr.ToPoint(xy)

		// Tolerance in degrees scaled to the distance from the origin:
		// the round trip is two float multiply/divide pairs, so the
		// error is a few ulps of the coordinate span.
		tol := 1e-9 * (1 + math.Abs(p.Lon-origin.Lon) + math.Abs(p.Lat-origin.Lat))
		if math.Abs(back.Lon-p.Lon) > tol || math.Abs(back.Lat-p.Lat) > tol {
			t.Fatalf("round trip drifted: %v -> %v -> %v (origin %v)", p, xy, back, origin)
		}
	})
}
