package geo

import "math"

// Rect is an axis-aligned bounding box in projected coordinates.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// EmptyRect returns the identity element for Union: a rectangle that
// contains nothing and unions to its operand.
func EmptyRect() Rect {
	return Rect{
		MinX: math.Inf(1), MinY: math.Inf(1),
		MaxX: math.Inf(-1), MaxY: math.Inf(-1),
	}
}

// RectFromPoints returns the bounding box of the given points. With no
// points it returns EmptyRect().
func RectFromPoints(pts ...XY) Rect {
	r := EmptyRect()
	for _, p := range pts {
		r = r.ExtendPoint(p)
	}
	return r
}

// IsEmpty reports whether the rectangle contains no points.
func (r Rect) IsEmpty() bool { return r.MinX > r.MaxX || r.MinY > r.MaxY }

// Width returns the horizontal extent (0 for empty rectangles).
func (r Rect) Width() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.MaxX - r.MinX
}

// Height returns the vertical extent (0 for empty rectangles).
func (r Rect) Height() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.MaxY - r.MinY
}

// Center returns the rectangle midpoint.
func (r Rect) Center() XY { return XY{(r.MinX + r.MaxX) / 2, (r.MinY + r.MaxY) / 2} }

// Contains reports whether p lies inside or on the boundary of r.
func (r Rect) Contains(p XY) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// ContainsRect reports whether o lies entirely within r.
func (r Rect) ContainsRect(o Rect) bool {
	if o.IsEmpty() {
		return true
	}
	return o.MinX >= r.MinX && o.MaxX <= r.MaxX && o.MinY >= r.MinY && o.MaxY <= r.MaxY
}

// Intersects reports whether r and o share any point.
func (r Rect) Intersects(o Rect) bool {
	if r.IsEmpty() || o.IsEmpty() {
		return false
	}
	return r.MinX <= o.MaxX && o.MinX <= r.MaxX && r.MinY <= o.MaxY && o.MinY <= r.MaxY
}

// Union returns the smallest rectangle containing both r and o.
func (r Rect) Union(o Rect) Rect {
	if r.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return r
	}
	return Rect{
		MinX: math.Min(r.MinX, o.MinX),
		MinY: math.Min(r.MinY, o.MinY),
		MaxX: math.Max(r.MaxX, o.MaxX),
		MaxY: math.Max(r.MaxY, o.MaxY),
	}
}

// ExtendPoint returns r grown to include p.
func (r Rect) ExtendPoint(p XY) Rect {
	return r.Union(Rect{p.X, p.Y, p.X, p.Y})
}

// Expand returns r grown by d metres on every side. Expanding an empty
// rectangle yields an empty rectangle.
func (r Rect) Expand(d float64) Rect {
	if r.IsEmpty() {
		return r
	}
	return Rect{r.MinX - d, r.MinY - d, r.MaxX + d, r.MaxY + d}
}

// DistanceTo returns the distance from p to the nearest point of r,
// zero when p is inside.
func (r Rect) DistanceTo(p XY) float64 {
	if r.IsEmpty() {
		return math.Inf(1)
	}
	dx := math.Max(0, math.Max(r.MinX-p.X, p.X-r.MaxX))
	dy := math.Max(0, math.Max(r.MinY-p.Y, p.Y-r.MaxY))
	return math.Hypot(dx, dy)
}

// Area returns the rectangle's area (0 for empty rectangles).
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// R returns the rectangle with the given bounds.
func R(minX, minY, maxX, maxY float64) Rect {
	return Rect{MinX: minX, MinY: minY, MaxX: maxX, MaxY: maxY}
}
