package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEmptyRect(t *testing.T) {
	e := EmptyRect()
	if !e.IsEmpty() {
		t.Fatal("EmptyRect must be empty")
	}
	if e.Width() != 0 || e.Height() != 0 || e.Area() != 0 {
		t.Fatal("empty rect must have zero extent")
	}
	r := Rect{0, 0, 1, 1}
	if got := e.Union(r); got != r {
		t.Fatalf("empty ∪ r = %v, want %v", got, r)
	}
	if got := r.Union(e); got != r {
		t.Fatalf("r ∪ empty = %v, want %v", got, r)
	}
	if e.Intersects(r) || r.Intersects(e) {
		t.Fatal("empty rect must intersect nothing")
	}
	if !math.IsInf(e.DistanceTo(XY{0, 0}), 1) {
		t.Fatal("distance to empty rect must be +Inf")
	}
	if e.Expand(5) != e {
		t.Fatal("expanding an empty rect must stay empty")
	}
}

func TestRectContainsIntersects(t *testing.T) {
	r := Rect{0, 0, 10, 10}
	if !r.Contains(XY{5, 5}) || !r.Contains(XY{0, 0}) || !r.Contains(XY{10, 10}) {
		t.Fatal("boundary and interior must be contained")
	}
	if r.Contains(XY{-0.1, 5}) || r.Contains(XY{5, 10.1}) {
		t.Fatal("outside points must not be contained")
	}
	if !r.Intersects(Rect{5, 5, 15, 15}) {
		t.Fatal("overlapping rects must intersect")
	}
	if !r.Intersects(Rect{10, 10, 20, 20}) {
		t.Fatal("touching rects must intersect")
	}
	if r.Intersects(Rect{11, 11, 20, 20}) {
		t.Fatal("disjoint rects must not intersect")
	}
	if !r.ContainsRect(Rect{1, 1, 9, 9}) || r.ContainsRect(Rect{1, 1, 11, 9}) {
		t.Fatal("ContainsRect misbehaves")
	}
	if !r.ContainsRect(EmptyRect()) {
		t.Fatal("every rect contains the empty rect")
	}
}

func TestRectDistanceTo(t *testing.T) {
	r := Rect{0, 0, 10, 10}
	cases := []struct {
		p    XY
		want float64
	}{
		{XY{5, 5}, 0},
		{XY{-3, 5}, 3},
		{XY{5, 14}, 4},
		{XY{13, 14}, 5},
	}
	for _, c := range cases {
		if got := r.DistanceTo(c.p); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("DistanceTo(%v) = %f, want %f", c.p, got, c.want)
		}
	}
}

func TestRectUnionCommutativeProperty(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy float64) bool {
		a := RectFromPoints(XY{ax, ay}, XY{bx, by})
		b := RectFromPoints(XY{cx, cy}, XY{dx, dy})
		u1, u2 := a.Union(b), b.Union(a)
		return u1 == u2 && u1.ContainsRect(a) && u1.ContainsRect(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRectExpandCenter(t *testing.T) {
	r := Rect{0, 0, 10, 20}
	e := r.Expand(5)
	if e != (Rect{-5, -5, 15, 25}) {
		t.Fatalf("Expand = %v", e)
	}
	if c := r.Center(); c != (XY{5, 10}) {
		t.Fatalf("Center = %v", c)
	}
}
