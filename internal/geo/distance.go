package geo

import "math"

// DirectedHausdorff returns the directed Hausdorff distance from chain
// a to chain b after resampling a at the given step: the largest
// distance any sampled point of a must travel to reach b. step <= 0
// compares only the original vertices.
func DirectedHausdorff(a, b Polyline, step float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return math.Inf(1)
	}
	pts := a
	if step > 0 {
		pts = a.Resample(step)
	}
	var worst float64
	for _, p := range pts {
		if d := b.DistanceTo(p); d > worst {
			worst = d
		}
	}
	return worst
}

// Hausdorff returns the symmetric Hausdorff distance between two
// chains, sampling both at step metres.
func Hausdorff(a, b Polyline, step float64) float64 {
	return math.Max(DirectedHausdorff(a, b, step), DirectedHausdorff(b, a, step))
}

// DiscreteFrechet returns the discrete Fréchet distance (the "dog
// leash" distance) between two chains over their vertices. Resample
// the inputs first for an upper bound on the continuous distance.
func DiscreteFrechet(a, b Polyline) float64 {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return math.Inf(1)
	}
	// Rolling dynamic program over the coupling matrix.
	prev := make([]float64, m)
	cur := make([]float64, m)
	prev[0] = a[0].Dist(b[0])
	for j := 1; j < m; j++ {
		prev[j] = math.Max(prev[j-1], a[0].Dist(b[j]))
	}
	for i := 1; i < n; i++ {
		cur[0] = math.Max(prev[0], a[i].Dist(b[0]))
		for j := 1; j < m; j++ {
			best := math.Min(prev[j], math.Min(prev[j-1], cur[j-1]))
			cur[j] = math.Max(best, a[i].Dist(b[j]))
		}
		prev, cur = cur, prev
	}
	return prev[m-1]
}

// WithinHausdorff reports whether the symmetric vertex-to-chain
// Hausdorff distance between two chains is at most bound, bailing out
// at the first violating vertex. Use on pre-resampled chains for fast
// clustering decisions.
func WithinHausdorff(a, b Polyline, bound float64) bool {
	return directedWithin(a, b, bound) && directedWithin(b, a, bound)
}

func directedWithin(a, b Polyline, bound float64) bool {
	if len(a) == 0 || len(b) == 0 {
		return false
	}
	for _, p := range a {
		if b.DistanceTo(p) > bound {
			return false
		}
	}
	return true
}
