package geo

import (
	"math/rand"
	"sort"
	"testing"
)

func randomItems(rng *rand.Rand, n int) []RTreeItem {
	items := make([]RTreeItem, n)
	for i := range items {
		x := rng.Float64() * 10000
		y := rng.Float64() * 10000
		items[i] = RTreeItem{
			Rect: Rect{x, y, x + rng.Float64()*50, y + rng.Float64()*50},
			ID:   i,
		}
	}
	return items
}

func linearSearch(items []RTreeItem, q Rect) []int {
	var out []int
	for _, it := range items {
		if it.Rect.Intersects(q) {
			out = append(out, it.ID)
		}
	}
	sort.Ints(out)
	return out
}

func TestRTreeSearchMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{0, 1, 5, 16, 17, 200, 1000} {
		items := randomItems(rng, n)
		tree := BuildRTree(items, 0)
		if tree.Len() != n {
			t.Fatalf("n=%d: Len = %d", n, tree.Len())
		}
		for q := 0; q < 25; q++ {
			x := rng.Float64() * 10000
			y := rng.Float64() * 10000
			query := Rect{x, y, x + rng.Float64()*500, y + rng.Float64()*500}
			got := tree.Search(query, nil)
			sort.Ints(got)
			want := linearSearch(items, query)
			if len(got) != len(want) {
				t.Fatalf("n=%d q=%d: got %d hits, want %d", n, q, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d q=%d: got %v, want %v", n, q, got, want)
				}
			}
		}
	}
}

func TestRTreeNearestMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	items := randomItems(rng, 500)
	tree := BuildRTree(items, 8)
	for q := 0; q < 30; q++ {
		p := XY{rng.Float64() * 10000, rng.Float64() * 10000}
		got := tree.Nearest(p, 5, 0)
		if len(got) != 5 {
			t.Fatalf("Nearest returned %d, want 5", len(got))
		}
		// Distances must be sorted ascending.
		for i := 1; i < len(got); i++ {
			if got[i].Distance < got[i-1].Distance {
				t.Fatalf("Nearest results unsorted: %v", got)
			}
		}
		// Compare against exhaustive k-th distance.
		dists := make([]float64, len(items))
		for i, it := range items {
			dists[i] = it.Rect.DistanceTo(p)
		}
		sort.Float64s(dists)
		if !almostEqual(got[4].Distance, dists[4], 1e-9) {
			t.Fatalf("5th nearest = %f, want %f", got[4].Distance, dists[4])
		}
	}
}

func TestRTreeNearestMaxDist(t *testing.T) {
	items := []RTreeItem{
		{Rect: Rect{0, 0, 0, 0}, ID: 1},
		{Rect: Rect{100, 0, 100, 0}, ID: 2},
		{Rect: Rect{1000, 0, 1000, 0}, ID: 3},
	}
	tree := BuildRTree(items, 0)
	got := tree.Nearest(XY{0, 0}, 10, 150)
	if len(got) != 2 || got[0].ID != 1 || got[1].ID != 2 {
		t.Fatalf("Nearest with maxDist = %v", got)
	}
}

func TestRTreeEmpty(t *testing.T) {
	tree := BuildRTree(nil, 0)
	if got := tree.Search(Rect{-1e9, -1e9, 1e9, 1e9}, nil); len(got) != 0 {
		t.Fatalf("empty tree search = %v", got)
	}
	if got := tree.Nearest(XY{0, 0}, 3, 0); got != nil {
		t.Fatalf("empty tree nearest = %v", got)
	}
	if !tree.Bounds().IsEmpty() {
		t.Fatal("empty tree bounds must be empty")
	}
}

func TestRTreeNearestKZero(t *testing.T) {
	tree := BuildRTree(randomItems(rand.New(rand.NewSource(1)), 10), 0)
	if got := tree.Nearest(XY{0, 0}, 0, 0); got != nil {
		t.Fatalf("k=0 must return nil, got %v", got)
	}
}

func TestThickLineContains(t *testing.T) {
	road := line(0, 0, 100, 0)
	thick := NewThickLine(road, 20) // half-width 10
	if !thick.Contains(XY{50, 9}) || !thick.Contains(XY{50, -10}) {
		t.Fatal("points within the buffer must be contained")
	}
	if thick.Contains(XY{50, 11}) {
		t.Fatal("points beyond the buffer must not be contained")
	}
	// End caps are round (distance to the end vertex).
	if !thick.Contains(XY{-7, 7}) || thick.Contains(XY{-8, 8}) {
		t.Fatal("round end cap misbehaves")
	}
}

func TestThickLineCrossings(t *testing.T) {
	road := line(0, 0, 100, 0)
	thick := NewThickLine(road, 20)

	// Perpendicular pass through the middle.
	traj := line(50, -40, 50, -5, 50, 5, 50, 40)
	cr := thick.Crossings(traj)
	if len(cr) != 1 {
		t.Fatalf("got %d crossings, want 1", len(cr))
	}
	if cr[0].EntryIndex != 1 || cr[0].ExitIndex != 2 {
		t.Fatalf("crossing run = [%d,%d]", cr[0].EntryIndex, cr[0].ExitIndex)
	}
	if !almostEqual(cr[0].Angle, 90, 1) {
		t.Fatalf("crossing angle = %f, want ~90", cr[0].Angle)
	}

	// Trajectory running parallel alongside the road inside the buffer:
	// angle near zero.
	traj = line(-30, 5, 20, 5, 80, 5, 130, 5)
	cr = thick.Crossings(traj)
	if len(cr) != 1 {
		t.Fatalf("parallel: got %d crossings, want 1", len(cr))
	}
	if cr[0].Angle > 5 {
		t.Fatalf("parallel angle = %f, want ~0", cr[0].Angle)
	}

	// Two separate passes produce two crossings.
	traj = line(20, -30, 20, 0, 20, 30, 80, 30, 80, 0, 80, -30)
	cr = thick.Crossings(traj)
	if len(cr) != 2 {
		t.Fatalf("two passes: got %d crossings, want 2", len(cr))
	}

	// No crossing when the trajectory stays away.
	traj = line(0, 50, 100, 50)
	if cr = thick.Crossings(traj); len(cr) != 0 {
		t.Fatalf("distant trajectory: got %d crossings", len(cr))
	}
}

func TestThickLineBounds(t *testing.T) {
	thick := NewThickLine(line(0, 0, 100, 0), 20)
	want := Rect{-10, -10, 110, 10}
	if got := thick.Bounds(); got != want {
		t.Fatalf("Bounds = %v, want %v", got, want)
	}
}
