package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func line(xy ...float64) Polyline {
	pl := make(Polyline, 0, len(xy)/2)
	for i := 0; i+1 < len(xy); i += 2 {
		pl = append(pl, XY{xy[i], xy[i+1]})
	}
	return pl
}

func TestPolylineLength(t *testing.T) {
	cases := []struct {
		pl   Polyline
		want float64
	}{
		{nil, 0},
		{line(0, 0), 0},
		{line(0, 0, 3, 4), 5},
		{line(0, 0, 1, 0, 1, 1), 2},
	}
	for i, c := range cases {
		if got := c.pl.Length(); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("case %d: Length = %f, want %f", i, got, c.want)
		}
	}
}

func TestPolylinePointAt(t *testing.T) {
	pl := line(0, 0, 10, 0, 10, 10)
	cases := []struct {
		d    float64
		want XY
	}{
		{-5, XY{0, 0}},
		{0, XY{0, 0}},
		{5, XY{5, 0}},
		{10, XY{10, 0}},
		{15, XY{10, 5}},
		{20, XY{10, 10}},
		{99, XY{10, 10}},
	}
	for _, c := range cases {
		if got := pl.PointAt(c.d); got.Dist(c.want) > 1e-12 {
			t.Errorf("PointAt(%f) = %v, want %v", c.d, got, c.want)
		}
	}
}

func TestPolylineProject(t *testing.T) {
	pl := line(0, 0, 10, 0, 10, 10)
	r := pl.Project(XY{5, 3})
	if r.Point.Dist(XY{5, 0}) > 1e-12 || !almostEqual(r.Distance, 3, 1e-12) ||
		!almostEqual(r.Along, 5, 1e-12) || r.Segment != 0 {
		t.Fatalf("Project mid = %+v", r)
	}
	r = pl.Project(XY{12, 8})
	if r.Point.Dist(XY{10, 8}) > 1e-12 || r.Segment != 1 || !almostEqual(r.Along, 18, 1e-12) {
		t.Fatalf("Project side = %+v", r)
	}
	// Beyond the end projects onto the final vertex.
	r = pl.Project(XY{10, 20})
	if r.Point.Dist(XY{10, 10}) > 1e-12 || !almostEqual(r.Distance, 10, 1e-12) {
		t.Fatalf("Project past end = %+v", r)
	}
}

func TestProjectAlongMonotoneProperty(t *testing.T) {
	// Walking along a polyline, the projection's Along must be
	// (weakly) monotone for points generated on the line itself.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		pl := randomWalkPolyline(rng, 8)
		total := pl.Length()
		prev := -1.0
		for f := 0.0; f <= 1.0; f += 0.05 {
			p := pl.PointAt(f * total)
			along := pl.Project(p).Along
			// Self-intersecting walks can project to an earlier pass;
			// only enforce when the projected point is (numerically) p.
			if pl.Project(p).Distance < 1e-9 && along < prev-1e-6 {
				// Along may legitimately jump backwards at a revisited
				// location; require the projected point to still be p.
				q := pl.PointAt(along)
				if q.Dist(p) > 1e-6 {
					t.Fatalf("trial %d: non-equivalent projection at f=%f", trial, f)
				}
			}
			prev = along
		}
	}
}

func randomWalkPolyline(rng *rand.Rand, n int) Polyline {
	pl := Polyline{{0, 0}}
	for i := 1; i < n; i++ {
		last := pl[len(pl)-1]
		pl = append(pl, XY{last.X + rng.Float64()*100 - 20, last.Y + rng.Float64()*100 - 20})
	}
	return pl
}

func TestPolylineBearingAt(t *testing.T) {
	pl := line(0, 0, 10, 0, 10, 10)
	if b := pl.BearingAt(5); !almostEqual(b, 90, 1e-9) {
		t.Errorf("BearingAt(5) = %f, want 90", b)
	}
	if b := pl.BearingAt(15); !almostEqual(b, 0, 1e-9) {
		t.Errorf("BearingAt(15) = %f, want 0", b)
	}
	if b := pl.BearingAt(1000); !almostEqual(b, 0, 1e-9) {
		t.Errorf("BearingAt(beyond) = %f, want 0", b)
	}
}

func TestPolylineResample(t *testing.T) {
	pl := line(0, 0, 10, 0)
	rs := pl.Resample(3)
	if !almostEqual(rs.Length(), pl.Length(), 1e-9) {
		t.Fatalf("resample changed length: %f", rs.Length())
	}
	for i := 1; i < len(rs); i++ {
		if d := rs[i-1].Dist(rs[i]); d > 3+1e-9 {
			t.Fatalf("gap %d too wide: %f", i, d)
		}
	}
	if rs[0] != pl[0] || rs[len(rs)-1] != pl[len(pl)-1] {
		t.Fatal("resample must keep endpoints")
	}
}

func TestPolylineSimplify(t *testing.T) {
	// Collinear interior points are removed.
	pl := line(0, 0, 1, 0.0001, 2, 0, 3, 0.0001, 4, 0)
	s := pl.Simplify(0.01)
	if len(s) != 2 {
		t.Fatalf("Simplify kept %d points, want 2", len(s))
	}
	// A genuine corner survives.
	pl = line(0, 0, 5, 0, 5, 5)
	s = pl.Simplify(0.01)
	if len(s) != 3 {
		t.Fatalf("Simplify dropped a corner: %v", s)
	}
}

func TestPolylineSlice(t *testing.T) {
	pl := line(0, 0, 10, 0, 10, 10)
	s := pl.Slice(5, 15)
	if !almostEqual(s.Length(), 10, 1e-9) {
		t.Fatalf("Slice length = %f, want 10", s.Length())
	}
	if s[0].Dist(XY{5, 0}) > 1e-9 || s[len(s)-1].Dist(XY{10, 5}) > 1e-9 {
		t.Fatalf("Slice endpoints = %v", s)
	}
	// Degenerate slice returns a single point.
	s = pl.Slice(7, 7)
	if len(s) != 1 || s[0].Dist(XY{7, 0}) > 1e-9 {
		t.Fatalf("degenerate Slice = %v", s)
	}
}

func TestPolylineReverseClone(t *testing.T) {
	pl := line(0, 0, 1, 1, 2, 0)
	rv := pl.Reverse()
	if rv[0] != pl[2] || rv[2] != pl[0] {
		t.Fatalf("Reverse = %v", rv)
	}
	cl := pl.Clone()
	cl[0] = XY{99, 99}
	if pl[0] == cl[0] {
		t.Fatal("Clone aliases the original")
	}
}

func TestSegmentsIntersect(t *testing.T) {
	p, ok := SegmentsIntersect(XY{0, 0}, XY{10, 10}, XY{0, 10}, XY{10, 0})
	if !ok || p.Dist(XY{5, 5}) > 1e-12 {
		t.Fatalf("crossing: %v %v", p, ok)
	}
	if _, ok := SegmentsIntersect(XY{0, 0}, XY{1, 0}, XY{0, 1}, XY{1, 1}); ok {
		t.Fatal("parallel non-overlapping must not intersect")
	}
	if _, ok := SegmentsIntersect(XY{0, 0}, XY{1, 0}, XY{2, 0}, XY{3, 0}); ok {
		t.Fatal("collinear disjoint must not intersect")
	}
	if _, ok := SegmentsIntersect(XY{0, 0}, XY{2, 0}, XY{1, 0}, XY{3, 0}); !ok {
		t.Fatal("collinear overlapping must intersect")
	}
	if _, ok := SegmentsIntersect(XY{0, 0}, XY{1, 1}, XY{1, 1}, XY{2, 0}); !ok {
		t.Fatal("shared endpoint must intersect")
	}
}

func TestPolylinesIntersect(t *testing.T) {
	a := line(0, 0, 10, 0)
	b := line(5, -5, 5, 5)
	if p, ok := PolylinesIntersect(a, b); !ok || p.Dist(XY{5, 0}) > 1e-12 {
		t.Fatalf("PolylinesIntersect = %v %v", p, ok)
	}
	c := line(0, 5, 10, 5)
	if _, ok := PolylinesIntersect(a, c); ok {
		t.Fatal("disjoint polylines must not intersect")
	}
}

func TestSliceWithinLengthProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(fa, fb uint8) bool {
		pl := randomWalkPolyline(rng, 6)
		total := pl.Length()
		a := float64(fa) / 255 * total
		b := float64(fb) / 255 * total
		if a > b {
			a, b = b, a
		}
		s := pl.Slice(a, b)
		// The sliced chain can never be longer than the span it covers.
		return s.Length() <= b-a+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestProjectDistanceLowerBoundProperty(t *testing.T) {
	// The projected distance is never larger than the distance to any
	// vertex of the polyline.
	rng := rand.New(rand.NewSource(13))
	f := func(px, py int16) bool {
		pl := randomWalkPolyline(rng, 7)
		p := XY{float64(px) / 100, float64(py) / 100}
		d := pl.Project(p).Distance
		for _, v := range pl {
			if d > v.Dist(p)+1e-9 {
				return false
			}
		}
		return !math.IsNaN(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
