package geo

import (
	"container/heap"
	"math"
	"sort"
	"sync"
)

// RTree is a static STR-packed (Sort-Tile-Recursive) R-tree over
// rectangles with integer payloads. It is built once from a full item
// set and then queried; this matches the pipeline's use, where the road
// network is loaded up front and probed millions of times during
// map-matching.
type RTree struct {
	fanout int
	root   *rtreeNode
	size   int
}

// RTreeItem is one indexed rectangle and its payload identifier.
type RTreeItem struct {
	Rect Rect
	ID   int
}

type rtreeNode struct {
	rect     Rect
	children []*rtreeNode // nil for leaves
	items    []RTreeItem  // nil for internal nodes
}

const defaultRTreeFanout = 16

// BuildRTree bulk-loads the items with STR packing. The item slice is
// not retained. fanout <= 1 selects the default fanout.
func BuildRTree(items []RTreeItem, fanout int) *RTree {
	if fanout <= 1 {
		fanout = defaultRTreeFanout
	}
	t := &RTree{fanout: fanout, size: len(items)}
	if len(items) == 0 {
		t.root = &rtreeNode{rect: EmptyRect()}
		return t
	}
	leaves := packLeaves(items, fanout)
	nodes := leaves
	for len(nodes) > 1 {
		nodes = packNodes(nodes, fanout)
	}
	t.root = nodes[0]
	return t
}

// Len returns the number of indexed items.
func (t *RTree) Len() int { return t.size }

// Bounds returns the bounding box of all indexed items.
func (t *RTree) Bounds() Rect { return t.root.rect }

func packLeaves(items []RTreeItem, fanout int) []*rtreeNode {
	sorted := make([]RTreeItem, len(items))
	copy(sorted, items)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].Rect.Center().X < sorted[j].Rect.Center().X
	})

	nLeaves := (len(sorted) + fanout - 1) / fanout
	nSlices := int(math.Ceil(math.Sqrt(float64(nLeaves))))
	sliceSize := nSlices * fanout

	var leaves []*rtreeNode
	for s := 0; s < len(sorted); s += sliceSize {
		end := s + sliceSize
		if end > len(sorted) {
			end = len(sorted)
		}
		slice := sorted[s:end]
		sort.Slice(slice, func(i, j int) bool {
			return slice[i].Rect.Center().Y < slice[j].Rect.Center().Y
		})
		for i := 0; i < len(slice); i += fanout {
			j := i + fanout
			if j > len(slice) {
				j = len(slice)
			}
			leaf := &rtreeNode{rect: EmptyRect(), items: append([]RTreeItem(nil), slice[i:j]...)}
			for _, it := range leaf.items {
				leaf.rect = leaf.rect.Union(it.Rect)
			}
			leaves = append(leaves, leaf)
		}
	}
	return leaves
}

func packNodes(nodes []*rtreeNode, fanout int) []*rtreeNode {
	sort.Slice(nodes, func(i, j int) bool {
		return nodes[i].rect.Center().X < nodes[j].rect.Center().X
	})
	nParents := (len(nodes) + fanout - 1) / fanout
	nSlices := int(math.Ceil(math.Sqrt(float64(nParents))))
	sliceSize := nSlices * fanout

	var parents []*rtreeNode
	for s := 0; s < len(nodes); s += sliceSize {
		end := s + sliceSize
		if end > len(nodes) {
			end = len(nodes)
		}
		slice := nodes[s:end]
		sort.Slice(slice, func(i, j int) bool {
			return slice[i].rect.Center().Y < slice[j].rect.Center().Y
		})
		for i := 0; i < len(slice); i += fanout {
			j := i + fanout
			if j > len(slice) {
				j = len(slice)
			}
			parent := &rtreeNode{rect: EmptyRect(), children: append([]*rtreeNode(nil), slice[i:j]...)}
			for _, c := range parent.children {
				parent.rect = parent.rect.Union(c.rect)
			}
			parents = append(parents, parent)
		}
	}
	return parents
}

// Search appends to dst the IDs of all items whose rectangle intersects
// query and returns the extended slice.
func (t *RTree) Search(query Rect, dst []int) []int {
	return t.root.search(query, dst)
}

func (n *rtreeNode) search(query Rect, dst []int) []int {
	if !n.rect.Intersects(query) {
		return dst
	}
	if n.items != nil {
		for _, it := range n.items {
			if it.Rect.Intersects(query) {
				dst = append(dst, it.ID)
			}
		}
		return dst
	}
	for _, c := range n.children {
		dst = c.search(query, dst)
	}
	return dst
}

// NearestResult is one item returned by Nearest, with the distance from
// the query point to the item's rectangle.
type NearestResult struct {
	ID       int
	Distance float64
}

type nnEntry struct {
	node *rtreeNode
	item RTreeItem
	dist float64
	leaf bool
}

type nnHeap []nnEntry

func (h nnHeap) Len() int            { return len(h) }
func (h nnHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h nnHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nnHeap) Push(x interface{}) { *h = append(*h, x.(nnEntry)) }
func (h *nnHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// nnHeapPool recycles neighbour-search heaps between Nearest calls;
// the matcher's candidate probes run millions of nearest-neighbour
// queries and would otherwise allocate a fresh heap each time.
var nnHeapPool = sync.Pool{New: func() interface{} { return new(nnHeap) }}

// Nearest returns up to k items ordered by the distance from p to their
// rectangles (best-first branch and bound). Items farther than maxDist
// are excluded; pass a non-positive maxDist for no limit.
func (t *RTree) Nearest(p XY, k int, maxDist float64) []NearestResult {
	if k <= 0 || t.size == 0 {
		return nil
	}
	if maxDist <= 0 {
		maxDist = math.Inf(1)
	}
	h := nnHeapPool.Get().(*nnHeap)
	defer func() {
		// Drop entry payloads before pooling so the heap does not pin
		// tree nodes of a discarded index.
		for i := range *h {
			(*h)[i] = nnEntry{}
		}
		*h = (*h)[:0]
		nnHeapPool.Put(h)
	}()
	*h = append((*h)[:0], nnEntry{node: t.root, dist: t.root.rect.DistanceTo(p)})
	var out []NearestResult
	for h.Len() > 0 && len(out) < k {
		e := heap.Pop(h).(nnEntry)
		if e.dist > maxDist {
			break
		}
		if e.leaf {
			out = append(out, NearestResult{ID: e.item.ID, Distance: e.dist})
			continue
		}
		if e.node.items != nil {
			for _, it := range e.node.items {
				heap.Push(h, nnEntry{item: it, dist: it.Rect.DistanceTo(p), leaf: true})
			}
			continue
		}
		for _, c := range e.node.children {
			heap.Push(h, nnEntry{node: c, dist: c.rect.DistanceTo(p)})
		}
	}
	return out
}
