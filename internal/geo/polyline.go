package geo

import "math"

// Polyline is an open chain of projected points. Operations assume at
// least one vertex unless stated otherwise; a polyline with a single
// vertex has zero length and behaves as a point.
type Polyline []XY

// Length returns the total chain length in metres.
func (pl Polyline) Length() float64 {
	var total float64
	for i := 1; i < len(pl); i++ {
		total += pl[i-1].Dist(pl[i])
	}
	return total
}

// Bounds returns the bounding box of the polyline.
func (pl Polyline) Bounds() Rect { return RectFromPoints(pl...) }

// Reverse returns a new polyline with the vertex order flipped.
func (pl Polyline) Reverse() Polyline {
	out := make(Polyline, len(pl))
	for i, p := range pl {
		out[len(pl)-1-i] = p
	}
	return out
}

// Clone returns a deep copy of the polyline.
func (pl Polyline) Clone() Polyline {
	out := make(Polyline, len(pl))
	copy(out, pl)
	return out
}

// PointAt returns the point at the given distance along the chain,
// clamped to the endpoints.
func (pl Polyline) PointAt(dist float64) XY {
	if len(pl) == 0 {
		return XY{}
	}
	if dist <= 0 {
		return pl[0]
	}
	var walked float64
	for i := 1; i < len(pl); i++ {
		seg := pl[i-1].Dist(pl[i])
		if walked+seg >= dist {
			if seg == 0 {
				return pl[i]
			}
			return pl[i-1].Lerp(pl[i], (dist-walked)/seg)
		}
		walked += seg
	}
	return pl[len(pl)-1]
}

// ProjectResult describes the closest point on a polyline to a query
// point.
type ProjectResult struct {
	Point    XY      // the closest point on the chain
	Distance float64 // metres from the query point to Point
	Along    float64 // metres from the chain start to Point
	Segment  int     // index of the segment containing Point (0-based)
}

// Project returns the closest point on the polyline to p.
func (pl Polyline) Project(p XY) ProjectResult {
	best := ProjectResult{Distance: math.Inf(1)}
	if len(pl) == 0 {
		return best
	}
	if len(pl) == 1 {
		return ProjectResult{Point: pl[0], Distance: pl[0].Dist(p)}
	}
	var walked float64
	for i := 1; i < len(pl); i++ {
		a, b := pl[i-1], pl[i]
		q, t := closestOnSegment(p, a, b)
		if d := q.Dist(p); d < best.Distance {
			best = ProjectResult{
				Point:    q,
				Distance: d,
				Along:    walked + t*a.Dist(b),
				Segment:  i - 1,
			}
		}
		walked += a.Dist(b)
	}
	return best
}

// DistanceTo returns the minimum distance from p to the polyline.
func (pl Polyline) DistanceTo(p XY) float64 { return pl.Project(p).Distance }

// BearingAt returns the direction of travel (degrees, 0=north) at the
// given distance along the chain. For degenerate chains it returns 0.
func (pl Polyline) BearingAt(dist float64) float64 {
	if len(pl) < 2 {
		return 0
	}
	var walked float64
	for i := 1; i < len(pl); i++ {
		seg := pl[i-1].Dist(pl[i])
		if walked+seg >= dist || i == len(pl)-1 {
			if seg == 0 {
				continue
			}
			return Bearing(pl[i-1], pl[i])
		}
		walked += seg
	}
	// All segments degenerate except possibly earlier ones; fall back to
	// the overall chord.
	return Bearing(pl[0], pl[len(pl)-1])
}

// Resample returns a polyline with points spaced at most step metres
// apart along the chain, preserving the original vertices.
func (pl Polyline) Resample(step float64) Polyline {
	if len(pl) < 2 || step <= 0 {
		return pl.Clone()
	}
	out := Polyline{pl[0]}
	for i := 1; i < len(pl); i++ {
		a, b := pl[i-1], pl[i]
		seg := a.Dist(b)
		if seg > step {
			n := int(math.Ceil(seg / step))
			for k := 1; k < n; k++ {
				out = append(out, a.Lerp(b, float64(k)/float64(n)))
			}
		}
		out = append(out, b)
	}
	return out
}

// Simplify applies Douglas–Peucker simplification with the given
// tolerance in metres, always keeping the endpoints.
func (pl Polyline) Simplify(tolerance float64) Polyline {
	if len(pl) < 3 {
		return pl.Clone()
	}
	keep := make([]bool, len(pl))
	keep[0], keep[len(pl)-1] = true, true
	simplifyRange(pl, 0, len(pl)-1, tolerance, keep)
	out := make(Polyline, 0, len(pl))
	for i, k := range keep {
		if k {
			out = append(out, pl[i])
		}
	}
	return out
}

func simplifyRange(pl Polyline, lo, hi int, tol float64, keep []bool) {
	if hi-lo < 2 {
		return
	}
	var maxDist float64
	maxIdx := -1
	for i := lo + 1; i < hi; i++ {
		q, _ := closestOnSegment(pl[i], pl[lo], pl[hi])
		if d := q.Dist(pl[i]); d > maxDist {
			maxDist, maxIdx = d, i
		}
	}
	if maxDist > tol {
		keep[maxIdx] = true
		simplifyRange(pl, lo, maxIdx, tol, keep)
		simplifyRange(pl, maxIdx, hi, tol, keep)
	}
}

// Slice returns the sub-chain between the two along-chain distances
// from <= to, including interpolated endpoints.
func (pl Polyline) Slice(from, to float64) Polyline {
	if len(pl) < 2 || to <= from {
		if len(pl) == 0 {
			return nil
		}
		return Polyline{pl.PointAt(from)}
	}
	out := Polyline{pl.PointAt(from)}
	var walked float64
	for i := 1; i < len(pl); i++ {
		seg := pl[i-1].Dist(pl[i])
		vertexAt := walked + seg
		if vertexAt > from && vertexAt < to {
			out = append(out, pl[i])
		}
		walked = vertexAt
		if walked >= to {
			break
		}
	}
	out = append(out, pl.PointAt(to))
	return out
}

// AppendSlice appends exactly the vertices Slice(from, to) returns to
// dst, without allocating an intermediate polyline.
func (pl Polyline) AppendSlice(dst Polyline, from, to float64) Polyline {
	if len(pl) < 2 || to <= from {
		if len(pl) == 0 {
			return dst
		}
		return append(dst, pl.PointAt(from))
	}
	dst = append(dst, pl.PointAt(from))
	var walked float64
	for i := 1; i < len(pl); i++ {
		seg := pl[i-1].Dist(pl[i])
		vertexAt := walked + seg
		if vertexAt > from && vertexAt < to {
			dst = append(dst, pl[i])
		}
		walked = vertexAt
		if walked >= to {
			break
		}
	}
	return append(dst, pl.PointAt(to))
}

// AppendSliceReversed appends exactly the vertices
// Slice(from, to).Reverse() returns to dst, without allocating an
// intermediate polyline.
func (pl Polyline) AppendSliceReversed(dst Polyline, from, to float64) Polyline {
	start := len(dst)
	dst = pl.AppendSlice(dst, from, to)
	for i, j := start, len(dst)-1; i < j; i, j = i+1, j-1 {
		dst[i], dst[j] = dst[j], dst[i]
	}
	return dst
}

// closestOnSegment returns the closest point to p on segment ab and the
// interpolation parameter t in [0,1].
func closestOnSegment(p, a, b XY) (XY, float64) {
	ab := b.Sub(a)
	den := ab.Dot(ab)
	if den == 0 {
		return a, 0
	}
	t := p.Sub(a).Dot(ab) / den
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return a.Lerp(b, t), t
}

// SegmentsIntersect reports whether segments ab and cd share a point and,
// if they cross properly, the intersection point.
func SegmentsIntersect(a, b, c, d XY) (XY, bool) {
	r := b.Sub(a)
	s := d.Sub(c)
	denom := r.Cross(s)
	qp := c.Sub(a)
	if denom == 0 {
		// Parallel. Treat collinear overlap as intersecting at the
		// closest endpoint for robustness.
		if qp.Cross(r) != 0 {
			return XY{}, false
		}
		rr := r.Dot(r)
		if rr == 0 {
			if a.Dist(c) == 0 {
				return a, true
			}
			return XY{}, false
		}
		t0 := qp.Dot(r) / rr
		t1 := t0 + s.Dot(r)/rr
		if t0 > t1 {
			t0, t1 = t1, t0
		}
		if t1 < 0 || t0 > 1 {
			return XY{}, false
		}
		t := math.Max(0, t0)
		return a.Lerp(b, t), true
	}
	t := qp.Cross(s) / denom
	u := qp.Cross(r) / denom
	if t < 0 || t > 1 || u < 0 || u > 1 {
		return XY{}, false
	}
	return a.Lerp(b, t), true
}

// PolylinesIntersect reports whether two chains cross and returns the
// first crossing found walking along pl.
func PolylinesIntersect(pl, other Polyline) (XY, bool) {
	for i := 1; i < len(pl); i++ {
		for j := 1; j < len(other); j++ {
			if p, ok := SegmentsIntersect(pl[i-1], pl[i], other[j-1], other[j]); ok {
				return p, true
			}
		}
	}
	return XY{}, false
}

// Line builds a polyline from interleaved x,y coordinate pairs:
// Line(x0, y0, x1, y1, ...). A trailing unpaired value is ignored.
func Line(coords ...float64) Polyline {
	pl := make(Polyline, 0, len(coords)/2)
	for i := 0; i+1 < len(coords); i += 2 {
		pl = append(pl, XY{X: coords[i], Y: coords[i+1]})
	}
	return pl
}
