package geo

import (
	"math"
	"testing"
	"testing/quick"
)

// ouluCenter is the approximate centre of the paper's study area.
var ouluCenter = Point{Lon: 25.47, Lat: 65.01}

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestHaversineKnownDistance(t *testing.T) {
	// One degree of latitude is ~111.2 km everywhere.
	a := Point{Lon: 25.47, Lat: 65.0}
	b := Point{Lon: 25.47, Lat: 66.0}
	d := Haversine(a, b)
	if !almostEqual(d, 111195, 100) {
		t.Fatalf("1 degree latitude = %f m, want ~111195", d)
	}
}

func TestHaversineZero(t *testing.T) {
	if d := Haversine(ouluCenter, ouluCenter); d != 0 {
		t.Fatalf("distance to self = %f, want 0", d)
	}
}

func TestHaversineSymmetry(t *testing.T) {
	f := func(lon1, lat1, lon2, lat2 float64) bool {
		a := Point{Lon: math.Mod(lon1, 180), Lat: math.Mod(lat1, 89)}
		b := Point{Lon: math.Mod(lon2, 180), Lat: math.Mod(lat2, 89)}
		return almostEqual(Haversine(a, b), Haversine(b, a), 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProjectionRoundTrip(t *testing.T) {
	pr := NewProjection(ouluCenter)
	f := func(dLon, dLat float64) bool {
		// Restrict to a plausible city-scale neighbourhood.
		p := Point{
			Lon: ouluCenter.Lon + math.Mod(dLon, 0.2),
			Lat: ouluCenter.Lat + math.Mod(dLat, 0.1),
		}
		back := pr.ToPoint(pr.ToXY(p))
		return almostEqual(back.Lon, p.Lon, 1e-9) && almostEqual(back.Lat, p.Lat, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProjectionMatchesHaversineAtCityScale(t *testing.T) {
	pr := NewProjection(ouluCenter)
	pts := []Point{
		{25.47, 65.01},
		{25.52, 65.02},
		{25.40, 64.99},
		{25.47, 65.06},
	}
	for i, a := range pts {
		for j, b := range pts {
			planar := pr.ToXY(a).Dist(pr.ToXY(b))
			sphere := Haversine(a, b)
			// At <10 km, the equirectangular error should stay below ~0.2 %.
			if sphere > 0 && math.Abs(planar-sphere)/sphere > 0.002 {
				t.Errorf("pts %d-%d: planar %.2f vs haversine %.2f", i, j, planar, sphere)
			}
		}
	}
}

func TestPointValid(t *testing.T) {
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{25.47, 65.01}, true},
		{Point{-180, -90}, true},
		{Point{181, 0}, false},
		{Point{0, 91}, false},
		{Point{math.NaN(), 0}, false},
	}
	for _, c := range cases {
		if got := c.p.Valid(); got != c.want {
			t.Errorf("Valid(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPointString(t *testing.T) {
	got := Point{Lon: 25.5244, Lat: 65.0252}.String()
	want := "POINT(25.5244, 65.0252)"
	if got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestBearingCardinals(t *testing.T) {
	o := XY{0, 0}
	cases := []struct {
		to   XY
		want float64
	}{
		{XY{0, 1}, 0},    // north
		{XY{1, 0}, 90},   // east
		{XY{0, -1}, 180}, // south
		{XY{-1, 0}, 270}, // west
		{XY{1, 1}, 45},
	}
	for _, c := range cases {
		if got := Bearing(o, c.to); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("Bearing to %v = %f, want %f", c.to, got, c.want)
		}
	}
}

func TestAngleDiff(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{0, 0, 0},
		{0, 180, 180},
		{350, 10, 20},
		{10, 350, 20},
		{90, 270, 180},
		{0, 540, 180},
	}
	for _, c := range cases {
		if got := AngleDiff(c.a, c.b); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("AngleDiff(%f,%f) = %f, want %f", c.a, c.b, got, c.want)
		}
	}
}

func TestAcuteAngleDiff(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{0, 180, 0},  // opposite directions, same line
		{0, 90, 90},  // perpendicular
		{10, 190, 0}, // reversed
		{45, 180, 45},
	}
	for _, c := range cases {
		if got := AcuteAngleDiff(c.a, c.b); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("AcuteAngleDiff(%f,%f) = %f, want %f", c.a, c.b, got, c.want)
		}
	}
}

func TestAngleDiffRangeProperty(t *testing.T) {
	f := func(a, b int32) bool {
		// Bearings are physically bounded; exercise a generous range.
		ba := float64(a) / 1000
		bb := float64(b) / 1000
		d := AngleDiff(ba, bb)
		q := AcuteAngleDiff(ba, bb)
		return d >= 0 && d <= 180 && q >= 0 && q <= 90
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestXYVectorOps(t *testing.T) {
	a, b := XY{3, 4}, XY{1, -2}
	if got := a.Add(b); got != (XY{4, 2}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != (XY{2, 6}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != (XY{6, 8}) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dot(b); got != -5 {
		t.Errorf("Dot = %v", got)
	}
	if got := a.Cross(b); got != -10 {
		t.Errorf("Cross = %v", got)
	}
	if got := a.Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
	if got := a.Dist(XY{0, 0}); got != 5 {
		t.Errorf("Dist = %v", got)
	}
	if got := a.Lerp(b, 0.5); got != (XY{2, 1}) {
		t.Errorf("Lerp = %v", got)
	}
}
