// Package geo provides the geometric and geodesic primitives used by the
// taxi-trace pipeline: WGS84 points, a local tangent-plane projection for
// metric computations at city scale, polylines with projection and
// interpolation operations, bounding boxes, buffered ("thick") geometries,
// and an STR-packed R-tree spatial index.
//
// All metric computations are done in a projected planar frame (type XY,
// units of metres). Projection converts between geographic coordinates and
// that frame. At city scale (tens of kilometres) the local tangent-plane
// approximation is accurate to well under a metre, which is far below GPS
// noise.
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusMeters is the mean Earth radius used for geodesic computations.
const EarthRadiusMeters = 6371008.8

// Point is a geographic coordinate in the WGS84 datum, degrees.
type Point struct {
	Lon float64 // longitude, degrees east
	Lat float64 // latitude, degrees north
}

// String renders the point in "POINT(lon, lat)" form, matching the
// EPSG:4326 presentation used in the paper's Table 1.
func (p Point) String() string {
	return fmt.Sprintf("POINT(%.4f, %.4f)", p.Lon, p.Lat)
}

// Valid reports whether the point lies within the legal WGS84 ranges.
func (p Point) Valid() bool {
	return p.Lon >= -180 && p.Lon <= 180 && p.Lat >= -90 && p.Lat <= 90 &&
		!math.IsNaN(p.Lon) && !math.IsNaN(p.Lat)
}

// XY is a point in a local projected plane, metres. X grows east, Y north.
type XY struct {
	X float64
	Y float64
}

// Add returns the vector sum a+b.
func (a XY) Add(b XY) XY { return XY{a.X + b.X, a.Y + b.Y} }

// Sub returns the vector difference a-b.
func (a XY) Sub(b XY) XY { return XY{a.X - b.X, a.Y - b.Y} }

// Scale returns the point scaled by s.
func (a XY) Scale(s float64) XY { return XY{a.X * s, a.Y * s} }

// Dot returns the dot product of a and b treated as vectors.
func (a XY) Dot(b XY) float64 { return a.X*b.X + a.Y*b.Y }

// Cross returns the z-component of the cross product of a and b.
func (a XY) Cross(b XY) float64 { return a.X*b.Y - a.Y*b.X }

// Norm returns the Euclidean length of a treated as a vector.
func (a XY) Norm() float64 { return math.Hypot(a.X, a.Y) }

// Dist returns the Euclidean distance between a and b in metres.
func (a XY) Dist(b XY) float64 { return math.Hypot(a.X-b.X, a.Y-b.Y) }

// Lerp linearly interpolates between a (t=0) and b (t=1).
func (a XY) Lerp(b XY, t float64) XY {
	return XY{a.X + (b.X-a.X)*t, a.Y + (b.Y-a.Y)*t}
}

// Haversine returns the great-circle distance between two geographic
// points in metres.
func Haversine(a, b Point) float64 {
	lat1 := a.Lat * math.Pi / 180
	lat2 := b.Lat * math.Pi / 180
	dLat := (b.Lat - a.Lat) * math.Pi / 180
	dLon := (b.Lon - a.Lon) * math.Pi / 180
	s := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * EarthRadiusMeters * math.Asin(math.Min(1, math.Sqrt(s)))
}

// Projection maps WGS84 coordinates onto a local tangent plane centred at
// Origin using an equirectangular approximation: metres east/north of the
// origin with the longitude scale fixed at the origin latitude.
type Projection struct {
	Origin Point
	cosLat float64
}

// NewProjection returns a projection centred at origin.
func NewProjection(origin Point) *Projection {
	return &Projection{Origin: origin, cosLat: math.Cos(origin.Lat * math.Pi / 180)}
}

// ToXY projects a geographic point into the local plane.
func (pr *Projection) ToXY(p Point) XY {
	return XY{
		X: (p.Lon - pr.Origin.Lon) * math.Pi / 180 * EarthRadiusMeters * pr.cosLat,
		Y: (p.Lat - pr.Origin.Lat) * math.Pi / 180 * EarthRadiusMeters,
	}
}

// ToPoint inverts the projection.
func (pr *Projection) ToPoint(xy XY) Point {
	return Point{
		Lon: pr.Origin.Lon + xy.X/(EarthRadiusMeters*pr.cosLat)*180/math.Pi,
		Lat: pr.Origin.Lat + xy.Y/EarthRadiusMeters*180/math.Pi,
	}
}

// Bearing returns the initial compass bearing from a to b in degrees
// [0, 360), where 0 is north and 90 is east.
func Bearing(a, b XY) float64 {
	deg := math.Atan2(b.X-a.X, b.Y-a.Y) * 180 / math.Pi
	if deg < 0 {
		deg += 360
	}
	return deg
}

// AngleDiff returns the absolute difference between two bearings in
// degrees, folded into [0, 180].
func AngleDiff(a, b float64) float64 {
	d := math.Mod(math.Abs(a-b), 360)
	if d > 180 {
		d = 360 - d
	}
	return d
}

// AcuteAngleDiff folds an angle difference into [0, 90], treating a line
// and its reverse as the same orientation. Used for crossing-angle tests
// where the driving direction over the gate road is irrelevant.
func AcuteAngleDiff(a, b float64) float64 {
	d := AngleDiff(a, b)
	if d > 90 {
		d = 180 - d
	}
	return d
}

// V returns the projected point (x, y). It exists so that call sites in
// other packages can construct XY values tersely with keyed semantics.
func V(x, y float64) XY { return XY{X: x, Y: y} }
