package geo

import (
	"math"
	"testing"
)

func TestDirectedHausdorff(t *testing.T) {
	a := Line(0, 0, 100, 0)
	b := Line(0, 10, 100, 10)
	if d := DirectedHausdorff(a, b, 5); !almostEqual(d, 10, 1e-9) {
		t.Fatalf("parallel lines = %f, want 10", d)
	}
	// Asymmetry: a short stub vs a long line.
	stub := Line(0, 0, 10, 0)
	long := Line(0, 0, 1000, 0)
	if d := DirectedHausdorff(stub, long, 5); d != 0 {
		t.Fatalf("stub -> long = %f, want 0", d)
	}
	if d := DirectedHausdorff(long, stub, 5); !almostEqual(d, 990, 1e-9) {
		t.Fatalf("long -> stub = %f, want 990", d)
	}
	if !math.IsInf(DirectedHausdorff(nil, long, 5), 1) {
		t.Fatal("empty input must be +Inf")
	}
}

func TestHausdorffSymmetric(t *testing.T) {
	a := Line(0, 0, 100, 0, 100, 100)
	b := Line(0, 5, 100, 5, 95, 100)
	d1 := Hausdorff(a, b, 2)
	d2 := Hausdorff(b, a, 2)
	if !almostEqual(d1, d2, 1e-9) {
		t.Fatalf("not symmetric: %f vs %f", d1, d2)
	}
	if d1 < 5 || d1 > 10 {
		t.Fatalf("hausdorff = %f out of expected band", d1)
	}
}

func TestHausdorffSamplingMatters(t *testing.T) {
	// Two V shapes sharing vertices but diverging mid-segment.
	a := Line(0, 0, 100, 100, 200, 0)
	b := Line(0, 0, 100, -100, 200, 0)
	coarse := Hausdorff(a, b, 0) // vertices only
	fine := Hausdorff(a, b, 5)
	// Resampling keeps the original vertices, so the sampled distance
	// dominates the vertex-only one.
	if fine+1e-9 < coarse {
		t.Fatalf("sampled %f below vertex-only %f", fine, coarse)
	}
	if fine < 100 {
		t.Fatalf("sampled distance %f too small for diverging Vs", fine)
	}
}

func TestDiscreteFrechet(t *testing.T) {
	a := Line(0, 0, 50, 0, 100, 0)
	b := Line(0, 10, 50, 10, 100, 10)
	if d := DiscreteFrechet(a, b); !almostEqual(d, 10, 1e-9) {
		t.Fatalf("parallel = %f, want 10", d)
	}
	// Frechet respects ordering: a reversed chain is far.
	if d := DiscreteFrechet(a, b.Reverse()); d < 90 {
		t.Fatalf("reversed = %f, should be large", d)
	}
	// Identical chains: zero.
	if d := DiscreteFrechet(a, a); d != 0 {
		t.Fatalf("self distance = %f", d)
	}
	if !math.IsInf(DiscreteFrechet(nil, a), 1) {
		t.Fatal("empty input must be +Inf")
	}
}

func TestFrechetAtLeastHausdorff(t *testing.T) {
	// Discrete Frechet over the same vertex sets dominates directed
	// vertex Hausdorff.
	a := Line(0, 0, 30, 40, 90, 10, 150, 60)
	b := Line(5, 5, 40, 35, 80, 20, 140, 70)
	f := DiscreteFrechet(a, b)
	h := math.Max(DirectedHausdorff(a, b, 0), DirectedHausdorff(b, a, 0))
	if f+1e-9 < h {
		t.Fatalf("frechet %f below hausdorff %f", f, h)
	}
}

func TestWithinHausdorff(t *testing.T) {
	a := Line(0, 0, 100, 0)
	b := Line(0, 10, 100, 10)
	if !WithinHausdorff(a, b, 10) {
		t.Fatal("10 m apart must be within 10")
	}
	if WithinHausdorff(a, b, 9) {
		t.Fatal("10 m apart must not be within 9")
	}
	// Agreement with the full metric.
	c := Line(0, 0, 50, 40, 100, 0)
	d := Line(0, 5, 50, 30, 100, 5)
	full := Hausdorff(c, d, 0)
	if WithinHausdorff(c, d, full-0.5) || !WithinHausdorff(c, d, full+0.5) {
		t.Fatalf("WithinHausdorff disagrees with Hausdorff (%f)", full)
	}
	if WithinHausdorff(nil, a, 100) {
		t.Fatal("empty chain must not be within anything")
	}
}
