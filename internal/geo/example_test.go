package geo_test

import (
	"fmt"

	"repro/internal/geo"
)

func ExampleProjection() {
	proj := geo.NewProjection(geo.Point{Lon: 25.47, Lat: 65.01})
	xy := proj.ToXY(geo.Point{Lon: 25.48, Lat: 65.02})
	fmt.Printf("%.0f m east, %.0f m north\n", xy.X, xy.Y)
	back := proj.ToPoint(xy)
	fmt.Printf("round trip: %s\n", back)
	// Output:
	// 470 m east, 1112 m north
	// round trip: POINT(25.4800, 65.0200)
}

func ExamplePolyline_Project() {
	street := geo.Line(0, 0, 100, 0, 100, 100)
	gps := geo.V(52, 7) // a noisy point near the first leg
	r := street.Project(gps)
	fmt.Printf("snapped to (%.0f, %.0f), %.0f m off, %.0f m along\n",
		r.Point.X, r.Point.Y, r.Distance, r.Along)
	// Output:
	// snapped to (52, 0), 7 m off, 52 m along
}

func ExampleThickLine() {
	// The paper's "thick geometry": widen an OD road to catch routes
	// that deviate from it.
	road := geo.NewThickLine(geo.Line(0, 0, 0, 400), 150)
	taxi := geo.Line(-60, -200, -20, 100, 150, 350)
	crossings := road.Crossings(taxi)
	fmt.Printf("%d crossing(s), angle %.0f degrees\n", len(crossings), crossings[0].Angle)
	// Output:
	// 1 crossing(s), angle 21 degrees
}

func ExampleBuildRTree() {
	items := []geo.RTreeItem{
		{Rect: geo.R(0, 0, 10, 10), ID: 1},
		{Rect: geo.R(100, 100, 120, 120), ID: 2},
		{Rect: geo.R(5, 5, 15, 15), ID: 3},
	}
	tree := geo.BuildRTree(items, 0)
	hits := tree.Search(geo.R(8, 8, 12, 12), nil)
	fmt.Println(len(hits), "items intersect the query")
	// Output:
	// 2 items intersect the query
}
