package geo

// ThickLine is a polyline artificially widened by a half-width buffer —
// the paper's "thick geometry" used to catch routes that deviate from
// the exact origin/destination road (§IV-D, Fig 2). A point is inside
// the thick line when its distance to the centre chain is at most
// HalfWidth.
type ThickLine struct {
	Center    Polyline
	HalfWidth float64

	bounds Rect
}

// NewThickLine buffers the centre line by width/2 on each side.
func NewThickLine(center Polyline, width float64) *ThickLine {
	return &ThickLine{
		Center:    center,
		HalfWidth: width / 2,
		bounds:    center.Bounds().Expand(width / 2),
	}
}

// Bounds returns the bounding box of the buffered geometry.
func (t *ThickLine) Bounds() Rect { return t.bounds }

// Contains reports whether p lies within the buffered geometry.
func (t *ThickLine) Contains(p XY) bool {
	if !t.bounds.Contains(p) {
		return false
	}
	return t.Center.DistanceTo(p) <= t.HalfWidth
}

// Crossing describes how a trajectory passes through a thick line.
type Crossing struct {
	EntryIndex int     // index of the first trajectory vertex inside
	ExitIndex  int     // index of the last consecutive vertex inside
	Angle      float64 // acute angle (degrees) between trajectory and road
	At         XY      // representative point of the crossing
	Along      float64 // metres along the centre line at the crossing
}

// Crossings returns every maximal run of consecutive trajectory vertices
// inside the thick line, with the acute crossing angle between the local
// trajectory direction and the road orientation at the crossing point.
// Runs are reported in trajectory order.
func (t *ThickLine) Crossings(traj Polyline) []Crossing {
	var out []Crossing
	i := 0
	for i < len(traj) {
		if !t.Contains(traj[i]) {
			i++
			continue
		}
		j := i
		for j+1 < len(traj) && t.Contains(traj[j+1]) {
			j++
		}
		out = append(out, t.crossingAt(traj, i, j))
		i = j + 1
	}
	return out
}

func (t *ThickLine) crossingAt(traj Polyline, i, j int) Crossing {
	mid := (i + j) / 2
	at := traj[mid]
	proj := t.Center.Project(at)

	// Local trajectory direction: from the vertex before the run to the
	// vertex after it when available, else across the run itself.
	a, b := i, j
	if i > 0 {
		a = i - 1
	}
	if j < len(traj)-1 {
		b = j + 1
	}
	var trajBearing float64
	if a != b && traj[a].Dist(traj[b]) > 0 {
		trajBearing = Bearing(traj[a], traj[b])
	}
	roadBearing := t.Center.BearingAt(proj.Along)
	return Crossing{
		EntryIndex: i,
		ExitIndex:  j,
		Angle:      AcuteAngleDiff(trajBearing, roadBearing),
		At:         at,
		Along:      proj.Along,
	}
}
