package ingest

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/trace"
)

// csvPrecisionPoints returns points whose values carry no more
// precision than the CSV interchange format (7 decimals of degree,
// 2 of speed, 1 of fuel/dist) — the fixed-point domain both binary
// framings represent exactly.
func csvPrecisionPoints() []Point {
	return []Point{
		{Car: 1, Trip: 10, Seq: 0, TimeMs: 1_700_000_000_000, Lon: 25.4651000, Lat: 65.0120999, SpeedKmh: 31.25, FuelMl: 0.4, DistM: 12.5},
		{Car: 1, Trip: 10, Seq: 1, TimeMs: 1_700_000_001_000, Lon: 25.4652345, Lat: 65.0121001, SpeedKmh: 0, FuelMl: 0, DistM: 0},
		{Car: 2, Trip: 11, Seq: 7, TimeMs: 1_700_000_002_500, Lon: -25.1234567, Lat: -0.0000001, SpeedKmh: 120.01, FuelMl: 99.9, DistM: 10000.1},
	}
}

func TestNDJSONRoundTrip(t *testing.T) {
	in := csvPrecisionPoints()
	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	var out []Point
	if err := DecodeNDJSON(&buf, func(p Point) error {
		out = append(out, p)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d points, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("point %d: %+v != %+v", i, out[i], in[i])
		}
	}
}

func TestDecodeNDJSONSkipsBlanksAndReportsLine(t *testing.T) {
	body := `{"car":1,"trip":1,"seq":0,"time_ms":1000}

{"car":2 broken`
	var n int
	err := DecodeNDJSON(strings.NewReader(body), func(Point) error { n++; return nil })
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("err = %v, want line-3 decode error", err)
	}
	if n != 1 {
		t.Fatalf("decoded %d points before the error, want 1", n)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	in := csvPrecisionPoints()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, in); err != nil {
		t.Fatal(err)
	}
	if !SniffBinary(buf.Bytes()) {
		t.Fatal("binary stream does not sniff as binary")
	}
	out, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d points, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("point %d: %+v != %+v (CSV-precision values must survive exactly)", i, out[i], in[i])
		}
	}
}

// TestBinaryQuantisationMatchesTraceFormat is the framing-parity
// check: a route point shipped through the point firehose's binary
// framing must decode to the same float64s as the same point written
// to a binary trace file — both quantise through the shared exported
// trace helpers, so neither path can drift precision-wise.
func TestBinaryQuantisationMatchesTraceFormat(t *testing.T) {
	proj := geo.NewProjection(geo.Point{Lon: 25.47, Lat: 65.01})
	rp := trace.RoutePoint{
		PointID: 3, TripID: 9,
		Pos:      proj.ToXY(geo.Point{Lon: 25.4712345678, Lat: 65.0123456789}),
		Time:     time.UnixMilli(1_700_000_123_456).UTC(),
		SpeedKmh: 33.333333, FuelMl: 0.44444, DistM: 9.87654,
	}
	carID := 5

	// Trace-format arm.
	var tb bytes.Buffer
	if err := trace.WriteBinary(&tb, []*trace.Trip{{ID: 9, CarID: carID, Points: []trace.RoutePoint{rp}}}, proj); err != nil {
		t.Fatal(err)
	}
	trips, err := trace.ReadBinary(&tb, proj)
	if err != nil {
		t.Fatal(err)
	}
	want := trips[0].Points[0]

	// Point-framing arm.
	var pb bytes.Buffer
	if err := WriteBinary(&pb, []Point{FromRoutePoint(carID, rp, proj)}); err != nil {
		t.Fatal(err)
	}
	pts, err := ReadBinary(&pb)
	if err != nil {
		t.Fatal(err)
	}
	got := pts[0].RoutePoint(proj)

	if got.Pos != want.Pos {
		t.Fatalf("position %+v != trace-format %+v", got.Pos, want.Pos)
	}
	if got.SpeedKmh != want.SpeedKmh || got.FuelMl != want.FuelMl || got.DistM != want.DistM {
		t.Fatalf("measurements (%g, %g, %g) != trace-format (%g, %g, %g)",
			got.SpeedKmh, got.FuelMl, got.DistM, want.SpeedKmh, want.FuelMl, want.DistM)
	}
	if !got.Time.Equal(want.Time) {
		t.Fatalf("time %v != trace-format %v", got.Time, want.Time)
	}
}

func TestBinaryRejectsBadStreams(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("NOTMAGIC00000000")); err == nil {
		t.Fatal("bad magic accepted")
	}

	var buf bytes.Buffer
	if err := WriteBinary(&buf, csvPrecisionPoints()[:1]); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()

	wrongVersion := append([]byte{}, b...)
	wrongVersion[8] = 99
	if _, err := ReadBinary(bytes.NewReader(wrongVersion)); err == nil {
		t.Fatal("wrong version accepted")
	}

	wrongLen := append([]byte{}, b...)
	wrongLen[binaryHeaderLen] = 77 // recLen of the first record
	if _, err := ReadBinary(bytes.NewReader(wrongLen)); err == nil {
		t.Fatal("wrong record length accepted")
	}

	truncated := b[:len(b)-5]
	if _, err := ReadBinary(bytes.NewReader(truncated)); err == nil || err == io.EOF {
		t.Fatalf("truncated record yielded %v, want a non-EOF error", err)
	}

	var w bytes.Buffer
	bw, err := NewBinaryWriter(&w)
	if err != nil {
		t.Fatal(err)
	}
	if err := bw.Write(Point{Lon: 1e30}); err == nil {
		t.Fatal("out-of-range longitude accepted")
	}
}
