package ingest

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/trace"
)

// Wire framings of the point firehose. Two encodings carry the same
// Point schema:
//
//   - NDJSON: one JSON object per line — the debuggable default for
//     POST /v1/ingest.
//   - Binary: a length-prefixed, fixed-width, little-endian framing
//     ("TAXIPNTB") quantised exactly like the TAXITRCB trip format
//     (lon/lat E7, speed centi, fuel/dist deci via the exported
//     trace quantisers), ~4x smaller than NDJSON and parsed without
//     per-event string work.
//
//	stream := header record*
//	header := magic[8]="TAXIPNTB" version:u32=1 flags:u32=0
//	record := recLen:u32=44 carID:i32 tripID:i64 seq:i32 timeMs:i64
//	          lonE7:i32 latE7:i32 speedCenti:i32 fuelDeci:i32 distDeci:i32
//
// recLen counts every byte after itself, so a reader can skip records
// it does not understand; a value framed in binary decodes to the same
// float64 the same value written to a binary trace file would (the
// differential tests rely on this).

// binaryPointMagic identifies a binary point-event stream; the HTTP
// handler sniffs it to pick the decoder.
var binaryPointMagic = [8]byte{'T', 'A', 'X', 'I', 'P', 'N', 'T', 'B'}

const (
	binaryPointVersion = 1
	binaryHeaderLen    = 16
	binaryPointLen     = 44 // car:i32 trip:i64 seq:i32 time:i64 + 5*i32
)

// SniffBinary reports whether b (the first bytes of a stream) starts a
// binary point-event stream.
func SniffBinary(b []byte) bool {
	return len(b) >= len(binaryPointMagic) && bytes.Equal(b[:len(binaryPointMagic)], binaryPointMagic[:])
}

// --- NDJSON -----------------------------------------------------------------

// WriteNDJSON encodes points one JSON object per line.
func WriteNDJSON(w io.Writer, pts []Point) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw) // Encode appends the newline
	for i := range pts {
		if err := enc.Encode(&pts[i]); err != nil {
			return fmt.Errorf("ingest: encode point: %w", err)
		}
	}
	return bw.Flush()
}

// DecodeNDJSON streams points out of an NDJSON body, calling fn for
// each decoded event; blank lines are skipped. A callback error stops
// the scan and is returned verbatim.
func DecodeNDJSON(r io.Reader, fn func(Point) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		b := bytes.TrimSpace(sc.Bytes())
		if len(b) == 0 {
			continue
		}
		var p Point
		if err := json.Unmarshal(b, &p); err != nil {
			return fmt.Errorf("ingest: line %d: %w", line, err)
		}
		if err := fn(p); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("ingest: read ndjson: %w", err)
	}
	return nil
}

// --- Binary -----------------------------------------------------------------

// BinaryWriter frames points onto one binary stream. Construct with
// NewBinaryWriter (which writes the header) and Flush when done.
type BinaryWriter struct {
	w *bufio.Writer
}

// NewBinaryWriter writes the stream header and returns the framer.
func NewBinaryWriter(w io.Writer) (*BinaryWriter, error) {
	bw := &BinaryWriter{w: bufio.NewWriter(w)}
	var head [binaryHeaderLen]byte
	copy(head[:8], binaryPointMagic[:])
	binary.LittleEndian.PutUint32(head[8:12], binaryPointVersion)
	if _, err := bw.w.Write(head[:]); err != nil {
		return nil, fmt.Errorf("ingest: write binary header: %w", err)
	}
	return bw, nil
}

// Write frames one point.
func (bw *BinaryWriter) Write(p Point) error {
	if int64(int32(p.Car)) != int64(p.Car) {
		return fmt.Errorf("ingest: car id %d overflows int32", p.Car)
	}
	if int64(int32(p.Seq)) != int64(p.Seq) {
		return fmt.Errorf("ingest: point seq %d overflows int32", p.Seq)
	}
	if p.TimeMs < -trace.MaxEventTimeMs || p.TimeMs > trace.MaxEventTimeMs {
		return fmt.Errorf("ingest: time %dms out of range", p.TimeMs)
	}
	lon, err := trace.QuantLonLat(p.Lon)
	if err != nil {
		return fmt.Errorf("ingest: lon: %w", err)
	}
	lat, err := trace.QuantLonLat(p.Lat)
	if err != nil {
		return fmt.Errorf("ingest: lat: %w", err)
	}
	speed, err := trace.QuantSpeedKmh(p.SpeedKmh)
	if err != nil {
		return fmt.Errorf("ingest: speed_kmh: %w", err)
	}
	fuel, err := trace.QuantFuelMl(p.FuelMl)
	if err != nil {
		return fmt.Errorf("ingest: fuel_ml: %w", err)
	}
	dist, err := trace.QuantDistM(p.DistM)
	if err != nil {
		return fmt.Errorf("ingest: dist_m: %w", err)
	}
	var rec [4 + binaryPointLen]byte
	binary.LittleEndian.PutUint32(rec[0:4], binaryPointLen)
	binary.LittleEndian.PutUint32(rec[4:8], uint32(int32(p.Car)))
	binary.LittleEndian.PutUint64(rec[8:16], uint64(p.Trip))
	binary.LittleEndian.PutUint32(rec[16:20], uint32(int32(p.Seq)))
	binary.LittleEndian.PutUint64(rec[20:28], uint64(p.TimeMs))
	binary.LittleEndian.PutUint32(rec[28:32], uint32(lon))
	binary.LittleEndian.PutUint32(rec[32:36], uint32(lat))
	binary.LittleEndian.PutUint32(rec[36:40], uint32(speed))
	binary.LittleEndian.PutUint32(rec[40:44], uint32(fuel))
	binary.LittleEndian.PutUint32(rec[44:48], uint32(dist))
	if _, err := bw.w.Write(rec[:]); err != nil {
		return fmt.Errorf("ingest: write point: %w", err)
	}
	return nil
}

// Flush drains the framer's buffer to the underlying writer.
func (bw *BinaryWriter) Flush() error { return bw.w.Flush() }

// WriteBinary frames a whole batch onto w.
func WriteBinary(w io.Writer, pts []Point) error {
	bw, err := NewBinaryWriter(w)
	if err != nil {
		return err
	}
	for _, p := range pts {
		if err := bw.Write(p); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// BinaryReader streams points out of a binary point-event stream.
type BinaryReader struct {
	r *bufio.Reader
}

// NewBinaryReader validates the stream header and returns the reader.
func NewBinaryReader(r io.Reader) (*BinaryReader, error) {
	br := &BinaryReader{r: bufio.NewReaderSize(r, 1<<16)}
	var head [binaryHeaderLen]byte
	if _, err := io.ReadFull(br.r, head[:]); err != nil {
		return nil, fmt.Errorf("ingest: read binary header: %w", err)
	}
	if !SniffBinary(head[:]) {
		return nil, fmt.Errorf("ingest: bad magic %q", head[:8])
	}
	if v := binary.LittleEndian.Uint32(head[8:12]); v != binaryPointVersion {
		return nil, fmt.Errorf("ingest: unsupported binary version %d", v)
	}
	return br, nil
}

// Next decodes the next point. It returns io.EOF at a clean end of
// stream.
func (br *BinaryReader) Next() (Point, error) {
	var pre [4]byte
	if _, err := io.ReadFull(br.r, pre[:]); err != nil {
		if err == io.EOF {
			return Point{}, io.EOF
		}
		return Point{}, fmt.Errorf("ingest: read record length: %w", err)
	}
	recLen := binary.LittleEndian.Uint32(pre[:])
	if recLen != binaryPointLen {
		return Point{}, fmt.Errorf("ingest: invalid record length %d (want %d)", recLen, binaryPointLen)
	}
	var body [binaryPointLen]byte
	if _, err := io.ReadFull(br.r, body[:]); err != nil {
		return Point{}, fmt.Errorf("ingest: read record body: %w", err)
	}
	ms := int64(binary.LittleEndian.Uint64(body[16:24]))
	if ms < -trace.MaxEventTimeMs || ms > trace.MaxEventTimeMs {
		return Point{}, fmt.Errorf("ingest: time %dms out of range", ms)
	}
	return Point{
		Car:      int(int32(binary.LittleEndian.Uint32(body[0:4]))),
		Trip:     int64(binary.LittleEndian.Uint64(body[4:12])),
		Seq:      int(int32(binary.LittleEndian.Uint32(body[12:16]))),
		TimeMs:   ms,
		Lon:      trace.DequantLonLat(int32(binary.LittleEndian.Uint32(body[24:28]))),
		Lat:      trace.DequantLonLat(int32(binary.LittleEndian.Uint32(body[28:32]))),
		SpeedKmh: trace.DequantSpeedKmh(int32(binary.LittleEndian.Uint32(body[32:36]))),
		FuelMl:   trace.DequantFuelMl(int32(binary.LittleEndian.Uint32(body[36:40]))),
		DistM:    trace.DequantDistM(int32(binary.LittleEndian.Uint32(body[40:44]))),
	}, nil
}

// ReadBinary decodes a whole binary stream.
func ReadBinary(r io.Reader) ([]Point, error) {
	br, err := NewBinaryReader(r)
	if err != nil {
		return nil, err
	}
	var out []Point
	for {
		p, err := br.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
}
