package ingest

import (
	"math/rand"
	"sort"

	"repro/internal/geo"
	"repro/internal/trace"
)

// Replay helpers: turn batch per-car trace files back into the point
// firehose they would have been, for the differential tests, the
// firehose client and the benchmarks.

// FleetPoints flattens per-car trips into one event stream ordered by
// event time (ties broken by car, trip, then sequence number, so the
// order is total and deterministic).
func FleetPoints(fleet map[int][]*trace.Trip, proj *geo.Projection) []Point {
	var out []Point
	cars := make([]int, 0, len(fleet))
	for car := range fleet {
		cars = append(cars, car)
	}
	sort.Ints(cars)
	for _, car := range cars {
		for _, trip := range fleet[car] {
			for _, rp := range trip.Points {
				out = append(out, FromRoutePoint(car, rp, proj))
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.TimeMs != b.TimeMs {
			return a.TimeMs < b.TimeMs
		}
		if a.Car != b.Car {
			return a.Car < b.Car
		}
		if a.Trip != b.Trip {
			return a.Trip < b.Trip
		}
		return a.Seq < b.Seq
	})
	return out
}

// ShuffleWindows permutes pts in place within consecutive windows of
// at most `window` points, modelling bounded out-of-orderness: a point
// can move at most one window away from its slot. A window also never
// spans more than capMs of event time (capMs <= 0 disables the cap):
// a fleet stream has engine-off gaps of hours between dense bursts,
// and shuffling across such a gap would manufacture disorder no real
// transmission path produces — and push points behind the watermark.
// It returns the maximum event-time span (ms) observed inside any
// window — the disorder bound the stream now carries; replay stays
// batch-equivalent whenever that span is below the engine's allowed
// lateness. The permutation is deterministic in seed.
func ShuffleWindows(pts []Point, window int, capMs int64, seed int64) (maxSpanMs int64) {
	if window <= 1 {
		return 0
	}
	rng := rand.New(rand.NewSource(seed))
	for start := 0; start < len(pts); {
		end := start + 1
		lo, hi := pts[start].TimeMs, pts[start].TimeMs
		for end < len(pts) && end-start < window {
			t := pts[end].TimeMs
			nlo, nhi := lo, hi
			if t < nlo {
				nlo = t
			}
			if t > nhi {
				nhi = t
			}
			if capMs > 0 && nhi-nlo > capMs {
				break
			}
			lo, hi = nlo, nhi
			end++
		}
		if span := hi - lo; span > maxSpanMs {
			maxSpanMs = span
		}
		w := pts[start:end]
		rng.Shuffle(len(w), func(i, j int) { w[i], w[j] = w[j], w[i] })
		start = end
	}
	return maxSpanMs
}
