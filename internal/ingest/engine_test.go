package ingest

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/tracegen"
)

// The engine tests share one pipeline: construction synthesises the
// city and road network, which dwarfs any single test's own work.
var sharedPipe struct {
	once sync.Once
	p    *core.Pipeline
	err  error
}

func testPipeline(t *testing.T) *core.Pipeline {
	t.Helper()
	sharedPipe.once.Do(func() {
		sharedPipe.p, sharedPipe.err = core.NewPipeline(core.Config{
			CitySeed: 42,
			Layout:   core.LayoutLegacy,
			Fleet: tracegen.Config{
				Seed: 42, Cars: 2, TripsPerCar: 4, GateRunFraction: 0.3,
			},
		})
	})
	if sharedPipe.err != nil {
		t.Fatal(sharedPipe.err)
	}
	return sharedPipe.p
}

// syntheticPoint builds an in-area, finite point for hand-driven
// watermark scenarios; sec is the event time in seconds.
func syntheticPoint(p *core.Pipeline, car int, trip int64, seq int, sec int64) Point {
	area := p.Config.Clean.Area
	centre := geo.XY{X: (area.MinX + area.MaxX) / 2, Y: (area.MinY + area.MaxY) / 2}
	ll := p.City.DB.Proj.ToPoint(centre)
	return Point{
		Car: car, Trip: trip, Seq: seq,
		TimeMs: sec * 1000,
		Lon:    ll.Lon, Lat: ll.Lat,
		SpeedKmh: 20, FuelMl: 0.1, DistM: 5,
	}
}

func newTestEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	if cfg.Pipeline == nil {
		cfg.Pipeline = testPipeline(t)
	}
	if cfg.WatermarkEvery == 0 {
		cfg.WatermarkEvery = 1 // recompute on every push: deterministic scenarios
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestLatePointDropped drives the watermark forward with one car and
// verifies a point below it is rejected with the typed "late" reason —
// and that the lineage ledger still conserves (in = out + dropped).
func TestLatePointDropped(t *testing.T) {
	lin := obs.NewLineage(nil)
	e := newTestEngine(t, Config{
		AllowedLateness: 5 * time.Second,
		Lineage:         lin,
	})
	p := testPipeline(t)

	// Trip 1 then trip 2 far ahead: the watermark follows the car's max.
	// (Event times start at 1s — epoch ms 0 is the invalid-time
	// sentinel the non-finite filter rejects.)
	for i := int64(1); i <= 10; i++ {
		e.Push(syntheticPoint(p, 1, 1, int(i), i))
	}
	for i := int64(0); i < 10; i++ {
		e.Push(syntheticPoint(p, 1, 2, int(i), 100+i))
	}
	if wm := e.Watermark(); wm != (109-5)*1000 {
		t.Fatalf("watermark = %d, want %d", wm, (109-5)*1000)
	}

	res := e.Push(syntheticPoint(p, 1, 1, 99, 50)) // event time 50s < watermark 104s
	if res.Admitted != 0 || res.Dropped[obs.DropLate] != 1 {
		t.Fatalf("late point result = %+v, want 1 late drop", res)
	}

	st := e.Stats()
	if st.Dropped[obs.DropLate] != 1 {
		t.Fatalf("stats late drops = %d, want 1", st.Dropped[obs.DropLate])
	}
	if err := lin.Check(); err != nil {
		t.Fatalf("lineage conservation violated: %v", err)
	}

	// A point aimed at an already-closed trip is late regardless of its
	// event time. Trip 1's bound is trip 2's first point (100s), which
	// the watermark has passed, so trip 1 must have closed.
	if st.ClosedTrips != 1 {
		t.Fatalf("closed trips = %d, want 1 (trip 1 behind the watermark)", st.ClosedTrips)
	}
	res = e.Push(syntheticPoint(p, 1, 1, 100, 200))
	if res.Dropped[obs.DropLate] != 1 {
		t.Fatalf("point for a closed trip = %+v, want a late drop", res)
	}
}

// TestDuplicatePointDroppedAtClean admits two points with the same
// (car, trip, seq, timestamp) — a device retransmission — and checks
// the trip-close cleaning drops exactly one as duplicate_id, with the
// ledger conserving across the ingest → clean handoff.
func TestDuplicatePointDroppedAtClean(t *testing.T) {
	lin := obs.NewLineage(nil)
	e := newTestEngine(t, Config{
		AllowedLateness: 5 * time.Second,
		Lineage:         lin,
	})
	p := testPipeline(t)

	for i := int64(1); i <= 10; i++ {
		e.Push(syntheticPoint(p, 1, 1, int(i), i))
	}
	e.Push(syntheticPoint(p, 1, 1, 10, 10)) // retransmission of seq 10
	e.Close()

	snap := lin.Snapshot(0)
	var ingestOut, cleanIn, dupDrops uint64
	for _, st := range snap.Stages {
		switch st.Stage {
		case "ingest":
			ingestOut = st.Out
		case "clean":
			cleanIn = st.In
			for _, r := range st.Reasons {
				if r.Reason == string(obs.DropDuplicateID) {
					dupDrops = r.N
				}
			}
		}
	}
	if ingestOut != 11 || cleanIn != 11 {
		t.Fatalf("ingest.out = %d, clean.in = %d, want 11 and 11 (cross-stage handoff)", ingestOut, cleanIn)
	}
	if dupDrops != 1 {
		t.Fatalf("duplicate_id drops = %d, want 1", dupDrops)
	}
	if err := lin.Check(); err != nil {
		t.Fatalf("lineage conservation violated: %v", err)
	}
}

// TestSilentCarTripCloses verifies the idle policy: a car that goes
// silent mid-trip stops holding the watermark back once its event-time
// silence exceeds the idle timeout, and its open trip closes without
// waiting for Close().
func TestSilentCarTripCloses(t *testing.T) {
	e := newTestEngine(t, Config{
		AllowedLateness: 5 * time.Second,
		IdleTimeout:     60 * time.Second,
	})
	p := testPipeline(t)

	// Car 1 transmits 10 points then dies mid-trip.
	for i := int64(1); i <= 10; i++ {
		e.Push(syntheticPoint(p, 1, 1, int(i), i))
	}
	// Car 2 keeps streaming one long trip. While car 1 is within the
	// idle timeout it pins the watermark at its max (10s) - lateness.
	for i := int64(1); i <= 60; i++ {
		e.Push(syntheticPoint(p, 2, 20, int(i), i))
	}
	if wm := e.Watermark(); wm != (10-5)*1000 {
		t.Fatalf("watermark = %d, want %d (pinned by the silent car)", wm, (10-5)*1000)
	}

	// Past the idle timeout the silent car is excluded: the watermark
	// jumps to car 2's frontier and car 1's orphan trip closes.
	for i := int64(61); i <= 80; i++ {
		e.Push(syntheticPoint(p, 2, 20, int(i), i))
	}
	if wm := e.Watermark(); wm != (80-5)*1000 {
		t.Fatalf("watermark = %d, want %d (silent car excluded)", wm, (80-5)*1000)
	}
	st := e.Stats()
	if st.ClosedTrips != 1 {
		t.Fatalf("closed trips = %d, want 1 (the silent car's)", st.ClosedTrips)
	}
	if st.OpenTrips != 1 {
		t.Fatalf("open trips = %d, want 1 (car 2's live trip)", st.OpenTrips)
	}

	// The dead car's tail point is still rejected, but as a resurrection
	// (newer than everything the car ever sent), not as disordered data.
	if res := e.Push(syntheticPoint(p, 1, 1, 11, 11)); res.Dropped[obs.DropIdleResumed] != 1 {
		t.Fatalf("tail point of the closed trip = %+v, want an idle_resumed drop", res)
	}
}

// TestIdleResumedCarDistinctReason is the regression test for the
// idle-car resurrection bug: a car that went silent, had its trips
// idle-flushed, and then came back used to have its comeback points
// lumped under "late" — indistinguishable from disordered data, so
// operators could not see resurrections in the drop ledger. The
// classifier: a rejected point NEWER than everything its own car sent
// is idle_resumed; anything at or below the car's own frontier stays
// late.
func TestIdleResumedCarDistinctReason(t *testing.T) {
	lin := obs.NewLineage(nil)
	e := newTestEngine(t, Config{
		AllowedLateness: 5 * time.Second,
		IdleTimeout:     60 * time.Second,
		Lineage:         lin,
	})
	p := testPipeline(t)

	// Car 1 dies mid-trip at 10s; car 2 streams on to 80s (starting
	// above car 1's watermark), so the idle timeout passes car 1 and
	// flushes its open trip.
	for i := int64(1); i <= 10; i++ {
		e.Push(syntheticPoint(p, 1, 1, int(i), i))
	}
	for i := int64(6); i <= 80; i++ {
		e.Push(syntheticPoint(p, 2, 20, int(i), i))
	}
	if st := e.Stats(); st.ClosedTrips != 1 {
		t.Fatalf("closed trips = %d, want car 1's idle-flushed trip", st.ClosedTrips)
	}

	// Resurrection against the closed trip: above the watermark, newer
	// than the car's own frontier -> idle_resumed at the closed-trip gate.
	if res := e.Push(syntheticPoint(p, 1, 1, 90, 78)); res.Dropped[obs.DropIdleResumed] != 1 {
		t.Fatalf("resumed point into closed trip = %+v, want idle_resumed", res)
	}
	// Resurrection under the watermark: a new trip whose first point is
	// below the watermark (75s) but still newer than the car's own max
	// (10s) -> idle_resumed at the watermark gate.
	if res := e.Push(syntheticPoint(p, 1, 2, 1, 20)); res.Dropped[obs.DropIdleResumed] != 1 {
		t.Fatalf("resumed point under watermark = %+v, want idle_resumed", res)
	}

	// Contrast 1: a genuinely disordered point from the LIVE car (50s,
	// below both the watermark and car 2's own 80s frontier) stays late.
	if res := e.Push(syntheticPoint(p, 2, 21, 1, 50)); res.Dropped[obs.DropLate] != 1 {
		t.Fatalf("disordered live-car point = %+v, want late", res)
	}
	// Contrast 2: a brand-new car arriving below the watermark has no
	// idle close to resume from -> late.
	if res := e.Push(syntheticPoint(p, 3, 30, 1, 5)); res.Dropped[obs.DropLate] != 1 {
		t.Fatalf("fresh car below watermark = %+v, want late", res)
	}

	// The ledger separates the two reasons and still conserves.
	st := e.Stats()
	if st.Dropped[obs.DropIdleResumed] != 2 || st.Dropped[obs.DropLate] != 2 {
		t.Fatalf("drops = %+v, want 2 idle_resumed and 2 late", st.Dropped)
	}
	var reasons map[string]uint64
	for _, stage := range lin.Snapshot(0).Stages {
		if stage.Stage == "ingest" {
			reasons = map[string]uint64{}
			for _, r := range stage.Reasons {
				reasons[r.Reason] = r.N
			}
		}
	}
	if reasons[string(obs.DropIdleResumed)] != 2 || reasons[string(obs.DropLate)] != 2 {
		t.Fatalf("ledger reasons = %+v, want 2 idle_resumed and 2 late", reasons)
	}
	if err := lin.Check(); err != nil {
		t.Fatalf("lineage conservation violated: %v", err)
	}
}

// TestConcurrentPush streams several cars from separate goroutines —
// the supported deployment shape, one HTTP body per device — and
// checks nothing is lost: every point is received, the ledger
// conserves, and Close drains every buffer. Run under -race this is
// the engine's locking proof.
func TestConcurrentPush(t *testing.T) {
	lin := obs.NewLineage(nil)
	e := newTestEngine(t, Config{
		AllowedLateness: 5 * time.Second,
		WatermarkEvery:  8,
		Lineage:         lin,
	})
	p := testPipeline(t)

	const cars, perCar = 8, 200
	var wg sync.WaitGroup
	for car := 1; car <= cars; car++ {
		wg.Add(1)
		go func(car int) {
			defer wg.Done()
			for i := 0; i < perCar; i++ {
				e.Push(syntheticPoint(p, car, int64(car*10), i, int64(i+1)))
			}
		}(car)
	}
	wg.Wait()
	e.Close()

	st := e.Stats()
	if st.Received != cars*perCar {
		t.Fatalf("received = %d, want %d", st.Received, cars*perCar)
	}
	if st.OpenTrips != 0 || st.BufferedPoints != 0 {
		t.Fatalf("stats = %+v: Close must drain every buffer", st)
	}
	if err := lin.Check(); err != nil {
		t.Fatalf("lineage conservation violated: %v", err)
	}
}

// TestAdmissionFilters checks the online non-finite and out-of-area
// drops match the cleaning stage's first two per-point filters. The
// area filter is opt-in (like clean.Config.Area), so the shared
// pipeline temporarily gets the city's study area configured.
func TestAdmissionFilters(t *testing.T) {
	p := testPipeline(t)
	oldArea := p.Config.Clean.Area
	p.Config.Clean.Area = p.City.StudyArea
	t.Cleanup(func() { p.Config.Clean.Area = oldArea })
	e := newTestEngine(t, Config{AllowedLateness: 5 * time.Second})

	bad := syntheticPoint(p, 1, 1, 0, 1)
	bad.SpeedKmh = float64(int64(1) << 62)
	bad.SpeedKmh = bad.SpeedKmh * bad.SpeedKmh * 1e300 // +Inf
	if res := e.Push(bad); res.Dropped[obs.DropNonFinite] != 1 {
		t.Fatalf("non-finite speed = %+v, want a non_finite drop", res)
	}

	zero := syntheticPoint(p, 1, 1, 0, 1)
	zero.TimeMs = 0
	if res := e.Push(zero); res.Dropped[obs.DropNonFinite] != 1 {
		t.Fatalf("zero timestamp = %+v, want a non_finite drop", res)
	}

	out := syntheticPoint(p, 1, 1, 0, 1)
	out.Lon += 10 // ~450 km east: far outside the study area
	if res := e.Push(out); res.Dropped[obs.DropOutOfArea] != 1 {
		t.Fatalf("out-of-area point = %+v, want an out_of_area drop", res)
	}

	if st := e.Stats(); st.Admitted != 0 || st.Received != 3 {
		t.Fatalf("stats = %+v, want 3 received 0 admitted", st)
	}
}
