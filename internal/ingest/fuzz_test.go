package ingest

import (
	"bytes"
	"testing"
)

// FuzzPointCodec drives arbitrary bytes through the same
// sniff-then-decode path the HTTP ingest handler uses: TAXIPNTB
// streams through the binary reader, everything else through the
// NDJSON decoder. Whatever decodes must re-encode and decode back to
// the same points — decoded values live in the codec's representable
// domain, so the round trip has no excuse to drift or fail.
func FuzzPointCodec(f *testing.F) {
	var bin bytes.Buffer
	if err := WriteBinary(&bin, csvPrecisionPoints()); err != nil {
		f.Fatal(err)
	}
	f.Add(bin.Bytes())
	var nd bytes.Buffer
	if err := WriteNDJSON(&nd, csvPrecisionPoints()); err != nil {
		f.Fatal(err)
	}
	f.Add(nd.Bytes())
	f.Add([]byte("TAXIPNTB garbage after the magic"))
	f.Add([]byte(`{"car":1,"trip":2,"seq":3,"time_ms":4}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Each codec round-trips through itself: binary values are
		// already quantised, JSON floats re-marshal exactly. (NDJSON can
		// carry values outside the binary fixed-point range, so
		// cross-codec re-encoding is allowed to fail — that path is
		// covered by the writers' own range errors.)
		var pts []Point
		var back []Point
		if SniffBinary(data) {
			out, err := ReadBinary(bytes.NewReader(data))
			if err != nil {
				return
			}
			pts = out
			var buf bytes.Buffer
			if err := WriteBinary(&buf, pts); err != nil {
				t.Fatalf("re-encoding binary-decoded points failed: %v", err)
			}
			back, err = ReadBinary(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("re-decoding failed: %v", err)
			}
		} else {
			err := DecodeNDJSON(bytes.NewReader(data), func(p Point) error {
				pts = append(pts, p)
				return nil
			})
			if err != nil {
				return
			}
			var buf bytes.Buffer
			if err := WriteNDJSON(&buf, pts); err != nil {
				t.Fatalf("re-encoding NDJSON-decoded points failed: %v", err)
			}
			err = DecodeNDJSON(bytes.NewReader(buf.Bytes()), func(p Point) error {
				back = append(back, p)
				return nil
			})
			if err != nil {
				t.Fatalf("re-decoding failed: %v", err)
			}
		}
		if len(back) != len(pts) {
			t.Fatalf("round trip lost points: %d != %d", len(back), len(pts))
		}
		for i := range pts {
			if back[i] != pts[i] {
				t.Fatalf("point %d drifted: %+v != %+v", i, back[i], pts[i])
			}
		}
	})
}
