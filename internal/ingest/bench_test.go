package ingest

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sink"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

// The ingest benchmarks replay the differential fixture's fleet — 32
// cars flattened to one event-time firehose — so throughput numbers
// describe the same workload the correctness gate verifies.
var benchFix struct {
	once sync.Once
	p    *core.Pipeline
	pts  []Point
	err  error
}

func benchFixture(b *testing.B) (*core.Pipeline, []Point) {
	b.Helper()
	benchFix.once.Do(func() {
		cfg := tracegen.Config{Seed: 42, Cars: 32, TripsPerCar: 3, GateRunFraction: 0.4}
		benchFix.p, benchFix.err = core.NewPipeline(core.Config{
			CitySeed: 42, Layout: core.LayoutLegacy, Fleet: cfg,
		})
		if benchFix.err != nil {
			return
		}
		var gen *tracegen.Generator
		gen, benchFix.err = tracegen.New(benchFix.p.City, benchFix.p.Graph, cfg)
		if benchFix.err != nil {
			return
		}
		raw := map[int][]*trace.Trip{}
		for _, tr := range gen.Fleet() {
			raw[tr.CarID] = append(raw[tr.CarID], tr)
		}
		benchFix.pts = FleetPoints(raw, benchFix.p.City.DB.Proj)
	})
	if benchFix.err != nil {
		b.Fatal(benchFix.err)
	}
	return benchFix.p, benchFix.pts
}

// benchReplay pushes pts point by point through a fresh engine + sink
// per op and reports sustained admission throughput (points/s) plus
// the p99 ingest-to-visible latency — the time from a point's push to
// the flush that made its trip queryable.
func benchReplay(b *testing.B, pts []Point) {
	p, _ := benchFixture(b)
	var p99 float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g, err := sink.GridForPipeline(p)
		if err != nil {
			b.Fatal(err)
		}
		s, err := sink.New(sink.Config{
			Grid: g, Shards: 4, PublishEvery: 1, Gates: p.Selector.GateNames(),
		})
		if err != nil {
			b.Fatal(err)
		}
		reg := obs.NewRegistry()
		e, err := New(Config{
			Pipeline:        p,
			Sink:            s,
			AllowedLateness: 30 * time.Second,
			WatermarkEvery:  256,
			Metrics:         reg,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		for _, pt := range pts {
			e.Push(pt)
		}
		e.Close()
		b.StopTimer()
		p99 = e.VisibleLatencyQuantile(0.99)
		st := e.Stats()
		if st.Admitted != uint64(len(pts)) {
			b.Fatalf("admitted %d of %d points", st.Admitted, len(pts))
		}
		b.StartTimer()
	}
	b.ReportMetric(float64(b.N)*float64(len(pts))/b.Elapsed().Seconds(), "points/s")
	b.ReportMetric(p99*1e9, "p99-visible-ns")
}

// BenchmarkIngestReplay is the headline streaming number: an ordered
// firehose and a bounded-shuffle one (the out-of-orderness buffer in
// play) through admission, watermarks, trip close and the batch
// stages into the sink.
func BenchmarkIngestReplay(b *testing.B) {
	_, pts := benchFixture(b)
	b.Run("ordered", func(b *testing.B) {
		benchReplay(b, pts)
	})
	b.Run("shuffled", func(b *testing.B) {
		shuffled := append([]Point(nil), pts...)
		ShuffleWindows(shuffled, 32, 20_000, 7)
		benchReplay(b, shuffled)
	})
}

// BenchmarkIngestDecode isolates the wire codecs: points/s through
// the NDJSON scanner vs the TAXIPNTB binary framing, no engine.
func BenchmarkIngestDecode(b *testing.B) {
	_, pts := benchFixture(b)
	var nd, bin bytes.Buffer
	if err := WriteNDJSON(&nd, pts); err != nil {
		b.Fatal(err)
	}
	if err := WriteBinary(&bin, pts); err != nil {
		b.Fatal(err)
	}
	b.Run("ndjson", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(nd.Len()))
		for i := 0; i < b.N; i++ {
			n := 0
			err := DecodeNDJSON(bytes.NewReader(nd.Bytes()), func(Point) error { n++; return nil })
			if err != nil || n != len(pts) {
				b.Fatalf("decoded %d points, err %v", n, err)
			}
		}
		b.ReportMetric(float64(b.N)*float64(len(pts))/b.Elapsed().Seconds(), "points/s")
	})
	b.Run("binary", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(bin.Len()))
		for i := 0; i < b.N; i++ {
			out, err := ReadBinary(bytes.NewReader(bin.Bytes()))
			if err != nil || len(out) != len(pts) {
				b.Fatalf("decoded %d points, err %v", len(out), err)
			}
		}
		b.ReportMetric(float64(b.N)*float64(len(pts))/b.Elapsed().Seconds(), "points/s")
	})
}
