package ingest

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clean"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/segment"
	"repro/internal/sink"
	"repro/internal/trace"
)

// Config assembles one ingest engine.
type Config struct {
	// Pipeline supplies the processing stages (cleaning configuration,
	// segmentation rules, OD selector, matcher, attribute fetcher) and
	// the city projection. Required.
	Pipeline *core.Pipeline
	// Sink receives flushed transitions; trips close into it and a new
	// epoch is published after every flush round, so live snapshots
	// advance as the watermark does. Nil runs the engine without a
	// serving layer (the differential tests read Stats instead).
	Sink *sink.Sink
	// AllowedLateness is how far behind a car's newest event time a
	// point may arrive before it is dropped as late; it bounds the
	// out-of-orderness buffer. Default 30s.
	AllowedLateness time.Duration
	// IdleTimeout is the event-time silence after which a car stops
	// holding the low watermark back (and its open trips become
	// closeable) — the "car went silent mid-trip" policy. Default
	// 10 minutes.
	IdleTimeout time.Duration
	// WatermarkEvery recomputes the watermark (and flushes newly
	// closeable trips) every N admitted points. Default 256.
	WatermarkEvery int
	// Metrics receives ingest_* instrumentation; nil disables.
	Metrics *obs.Registry
	// Lineage receives the streaming drop-reason ledger: stages
	// "ingest" and "clean" in points, "segment" and "odselect" in
	// segments, "mapmatch" in transitions, each conserving
	// in = out + Σ dropped. Nil disables.
	Lineage *obs.Lineage
	// Log receives one structured line per flush round; nil disables.
	Log *slog.Logger
	// Now is the wall-clock source for the ingest-to-visible latency
	// histogram (test hook); nil selects time.Now.
	Now func() time.Time
}

func (c Config) withDefaults() (Config, error) {
	if c.Pipeline == nil {
		return c, fmt.Errorf("ingest: Config.Pipeline is required")
	}
	if c.AllowedLateness <= 0 {
		c.AllowedLateness = 30 * time.Second
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 10 * time.Minute
	}
	if c.WatermarkEvery <= 0 {
		c.WatermarkEvery = 256
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c, nil
}

// unsetWatermark marks "no watermark yet": nothing is late before the
// first advance.
const unsetWatermark = math.MinInt64

// Engine is the event-time ingestion state machine. Construct with
// New; Push/PushBatch are safe for concurrent use.
type Engine struct {
	cfg  Config
	proj *geo.Projection
	area geo.Rect // out-of-area filter (disabled when empty), from Config.Pipeline

	// wm is the low watermark in Unix ms, read lock-free on the
	// admission path.
	wm atomic.Int64

	// mu guards the per-car buffers and the watermark bookkeeping;
	// trip processing (cleaning, segmentation, matching) always runs
	// outside it.
	mu          sync.Mutex
	cars        map[int]*carState
	globalMaxMs int64
	seenPoints  bool
	sinceAdv    int
	closing     bool
	drops       map[obs.DropReason]uint64
	received    uint64
	admitted    uint64
	closedTrips uint64
	buffered    int

	lin linHandles
	met engineMetrics

	// flushMu serialises flush rounds so two concurrent watermark
	// advances cannot interleave their sink publishes.
	flushMu sync.Mutex
}

// carState is one device's online state machine.
type carState struct {
	maxMs  int64
	open   map[int64]*tripBuf
	closed map[int64]struct{}
}

// tripBuf buffers one open trip in arrival order.
type tripBuf struct {
	id           int64
	minMs, maxMs int64
	pts          []trace.RoutePoint
	recvNs       []int64 // wall receive time per point, for visible latency
}

type linHandles struct {
	ingest, clean, segment, od, match *obs.StageLineage

	inNonFinite, inOutOfArea, inLate, inIdleResumed *obs.DropCounter
	cleanNonFinite, cleanOutOfArea, cleanDup        *obs.DropCounter
	cleanSpike                                      *obs.DropCounter
	segShort, segLong                               *obs.DropCounter
	odNoGate, odSingleGate, odOutsideCentre         *obs.DropCounter
	odPostFilter, matchDegenerate, matchUnroutable  *obs.DropCounter
}

func newLinHandles(l *obs.Lineage) linHandles {
	h := linHandles{
		ingest:  l.Stage("ingest", "points"),
		clean:   l.Stage("clean", "points"),
		segment: l.Stage("segment", "segments"),
		od:      l.Stage("odselect", "segments"),
		match:   l.Stage("mapmatch", "transitions"),
	}
	h.inNonFinite = h.ingest.Reason(obs.DropNonFinite)
	h.inOutOfArea = h.ingest.Reason(obs.DropOutOfArea)
	h.inLate = h.ingest.Reason(obs.DropLate)
	h.inIdleResumed = h.ingest.Reason(obs.DropIdleResumed)
	h.cleanNonFinite = h.clean.Reason(obs.DropNonFinite)
	h.cleanOutOfArea = h.clean.Reason(obs.DropOutOfArea)
	h.cleanDup = h.clean.Reason(obs.DropDuplicateID)
	h.cleanSpike = h.clean.Reason(obs.DropSpike)
	h.segShort = h.segment.Reason(obs.DropTooFewPoints)
	h.segLong = h.segment.Reason(obs.DropTooLong)
	h.odNoGate = h.od.Reason(obs.DropNoGate)
	h.odSingleGate = h.od.Reason(obs.DropSingleGate)
	h.odOutsideCentre = h.od.Reason(obs.DropOutsideCentre)
	h.odPostFilter = h.od.Reason(obs.DropPostFilter)
	h.matchDegenerate = h.match.Reason(obs.DropDegenerateSpan)
	h.matchUnroutable = h.match.Reason(obs.DropUnroutable)
	return h
}

type engineMetrics struct {
	received    *obs.Counter
	admitted    *obs.Counter
	tripsClosed *obs.Counter
	flushes     *obs.Counter
	watermark   *obs.Gauge
	openTrips   *obs.Gauge
	bufPoints   *obs.Gauge
	latency     *obs.Histogram
	flushTime   *obs.Histogram
}

// New builds an engine over the pipeline's stages.
func New(cfg Config) (*Engine, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	reg := cfg.Metrics
	e := &Engine{
		cfg:   cfg,
		proj:  cfg.Pipeline.City.DB.Proj,
		area:  cfg.Pipeline.Config.Clean.Area,
		cars:  map[int]*carState{},
		drops: map[obs.DropReason]uint64{},
		lin:   newLinHandles(cfg.Lineage),
		met: engineMetrics{
			received:    reg.Counter("ingest_points_received"),
			admitted:    reg.Counter("ingest_points_admitted"),
			tripsClosed: reg.Counter("ingest_trips_closed"),
			flushes:     reg.Counter("ingest_flushes"),
			watermark:   reg.Gauge("ingest_watermark_ms"),
			openTrips:   reg.Gauge("ingest_open_trips"),
			bufPoints:   reg.Gauge("ingest_buffered_points"),
			latency:     reg.Histogram("ingest_visible_latency_seconds"),
			flushTime:   reg.Histogram("ingest_flush_seconds"),
		},
	}
	e.wm.Store(unsetWatermark)
	return e, nil
}

// PushResult reports what one Push/PushBatch did.
type PushResult struct {
	Received int
	Admitted int
	// Dropped counts rejected points by reason (nil when none).
	Dropped map[obs.DropReason]int
	// WatermarkMs is the low watermark after the call (Unix ms;
	// math.MinInt64 while unset).
	WatermarkMs int64
}

// Push admits one event.
func (e *Engine) Push(p Point) PushResult {
	return e.PushBatch([]Point{p})
}

// PushBatch admits a batch of events, then advances the watermark (and
// flushes newly closed trips) if the recomputation cadence is due.
func (e *Engine) PushBatch(pts []Point) PushResult {
	res := PushResult{Received: len(pts)}
	now := e.cfg.Now().UnixNano()
	due := false

	e.mu.Lock()
	for i := range pts {
		if reason, ok := e.admitLocked(&pts[i], now); ok {
			res.Admitted++
		} else {
			if res.Dropped == nil {
				res.Dropped = map[obs.DropReason]int{}
			}
			res.Dropped[reason]++
		}
	}
	e.sinceAdv += len(pts)
	if e.sinceAdv >= e.cfg.WatermarkEvery {
		e.sinceAdv = 0
		due = true
	}
	e.mu.Unlock()

	e.met.received.Add(uint64(res.Received))
	e.met.admitted.Add(uint64(res.Admitted))
	if due {
		e.Advance()
	}
	res.WatermarkMs = e.wm.Load()
	return res
}

// admitLocked runs the online admission checks for one event and
// buffers it. The non-finite and out-of-area predicates are exactly
// the first two filters of clean.Repair, applied per point at the
// door; removing them here leaves the trip-close Repair (ordering,
// duplicates, spikes) with identical results, so streaming admission
// stays value-equivalent to batch cleaning.
func (e *Engine) admitLocked(p *Point, recvNs int64) (obs.DropReason, bool) {
	e.received++
	rp := p.RoutePoint(e.proj)
	if !finite(rp.Pos.X) || !finite(rp.Pos.Y) || !finite(rp.SpeedKmh) ||
		!finite(rp.FuelMl) || !finite(rp.DistM) || rp.Time.IsZero() {
		return e.dropLocked(p.Car, obs.DropNonFinite, e.lin.inNonFinite), false
	}
	if e.area.Area() > 0 && !e.area.Contains(rp.Pos) {
		return e.dropLocked(p.Car, obs.DropOutOfArea, e.lin.inOutOfArea), false
	}
	cs := e.cars[p.Car]
	if cs == nil {
		cs = &carState{open: map[int64]*tripBuf{}, closed: map[int64]struct{}{}}
		e.cars[p.Car] = cs
	}
	if wm := e.wm.Load(); wm != unsetWatermark && p.TimeMs < wm {
		reason, dc := e.staleReason(cs, p)
		return e.dropLocked(p.Car, reason, dc), false
	}
	if _, done := cs.closed[p.Trip]; done {
		reason, dc := e.staleReason(cs, p)
		return e.dropLocked(p.Car, reason, dc), false
	}
	tb := cs.open[p.Trip]
	if tb == nil {
		tb = &tripBuf{id: p.Trip, minMs: p.TimeMs, maxMs: p.TimeMs}
		cs.open[p.Trip] = tb
		e.met.openTrips.Add(1)
	}
	tb.pts = append(tb.pts, rp)
	tb.recvNs = append(tb.recvNs, recvNs)
	if p.TimeMs < tb.minMs {
		tb.minMs = p.TimeMs
	}
	if p.TimeMs > tb.maxMs {
		tb.maxMs = p.TimeMs
	}
	if p.TimeMs > cs.maxMs || cs.maxMs == 0 {
		cs.maxMs = p.TimeMs
	}
	if p.TimeMs > e.globalMaxMs || !e.seenPoints {
		e.globalMaxMs = p.TimeMs
	}
	e.seenPoints = true
	e.admitted++
	e.buffered++
	e.met.bufPoints.Add(1)
	e.lin.ingest.Add(1, 1)
	return "", true
}

// staleReason classifies a rejected stale point. A dormant car — one
// whose every trip has been flushed — sending a point NEWER than
// everything it ever sent is not disordered data: the car went idle,
// the watermark passed it, and it is now resuming. Those are reported
// as idle_resumed so resurrection after an idle close is visible
// separately from genuine late arrivals. A car with an open trip is
// live, and a never-admitted car (cs.maxMs == 0) has no idle close to
// resume from; both stay "late".
func (e *Engine) staleReason(cs *carState, p *Point) (obs.DropReason, *obs.DropCounter) {
	if len(cs.open) == 0 && cs.maxMs != 0 && p.TimeMs > cs.maxMs {
		return obs.DropIdleResumed, e.lin.inIdleResumed
	}
	return obs.DropLate, e.lin.inLate
}

// dropLocked counts one rejected point; the caller holds e.mu.
func (e *Engine) dropLocked(car int, reason obs.DropReason, dc *obs.DropCounter) obs.DropReason {
	e.drops[reason]++
	dc.Add(1)
	// One unit in, zero out: attributes the drop to the car in the
	// ledger's per-car table.
	e.lin.ingest.RecordCar(car, 1, 0)
	return reason
}

// closedTrip is one trip extracted for flushing.
type closedTrip struct {
	car int
	tb  *tripBuf
}

// Advance recomputes the low watermark and flushes every trip it
// closes. Push calls it on the recomputation cadence; owners may also
// call it directly (e.g. on a wall-clock tick for slow streams).
func (e *Engine) Advance() {
	e.flushMu.Lock()
	defer e.flushMu.Unlock()

	e.mu.Lock()
	closed := e.advanceLocked()
	e.mu.Unlock()

	if len(closed) > 0 {
		e.flush(closed)
	}
}

// advanceLocked recomputes the watermark from the per-car maxima,
// extracts every newly closeable trip and marks it closed; the caller
// holds e.mu and processes the returned trips outside it.
func (e *Engine) advanceLocked() []closedTrip {
	if !e.seenPoints {
		return nil
	}
	latenessMs := e.cfg.AllowedLateness.Milliseconds()
	idleMs := e.cfg.IdleTimeout.Milliseconds()

	var wm int64
	if e.closing {
		wm = math.MaxInt64
	} else {
		minActive := int64(math.MaxInt64)
		for _, cs := range e.cars {
			if len(cs.open) == 0 {
				continue // nothing pending: the car must not pin the watermark
			}
			if e.globalMaxMs-cs.maxMs > idleMs {
				continue // silent car: excluded so the watermark still advances
			}
			if cs.maxMs < minActive {
				minActive = cs.maxMs
			}
		}
		if minActive == math.MaxInt64 {
			wm = e.globalMaxMs - latenessMs
		} else {
			wm = minActive - latenessMs
		}
		if cur := e.wm.Load(); cur != unsetWatermark && wm < cur {
			wm = cur // watermarks never regress
		}
	}
	e.wm.Store(wm)
	if wm != math.MaxInt64 {
		e.met.watermark.Set(wm)
	}

	var out []closedTrip
	for car, cs := range e.cars {
		if len(cs.open) == 0 {
			continue
		}
		idle := e.closing || e.globalMaxMs-cs.maxMs > idleMs
		trips := make([]*tripBuf, 0, len(cs.open))
		for _, tb := range cs.open {
			trips = append(trips, tb)
		}
		sort.Slice(trips, func(i, j int) bool {
			if trips[i].minMs != trips[j].minMs {
				return trips[i].minMs < trips[j].minMs
			}
			return trips[i].id < trips[j].id
		})
		for i, tb := range trips {
			// A trip may close once no in-flight point can still belong
			// to it: when a newer trip of the same car has been seen, all
			// of this trip precedes that trip's first point, so the
			// watermark passing it proves the buffer is complete. With no
			// newer trip the bound falls back to the trip's own maximum —
			// taken only for idle (or closing) cars, which is the
			// documented lateness policy rather than an equivalence-safe
			// bound.
			var bound int64
			if i+1 < len(trips) {
				bound = max64(tb.maxMs, trips[i+1].minMs)
			} else if idle {
				bound = tb.maxMs
			} else {
				continue
			}
			if wm > bound {
				delete(cs.open, tb.id)
				cs.closed[tb.id] = struct{}{}
				out = append(out, closedTrip{car: car, tb: tb})
			}
		}
	}
	// Deterministic flush order (map iteration above is not).
	sort.Slice(out, func(i, j int) bool {
		if out[i].car != out[j].car {
			return out[i].car < out[j].car
		}
		return out[i].tb.minMs < out[j].tb.minMs
	})
	return out
}

// flush runs each closed trip through cleaning → segmentation → OD
// selection → map-matching, absorbs the resulting transitions into the
// sink and publishes one new epoch for the round. The caller holds
// flushMu (never e.mu): stage work here runs concurrently with
// admission.
func (e *Engine) flush(closed []closedTrip) {
	start := e.cfg.Now()
	cleanCfg := e.cfg.Pipeline.Config.Clean
	rules := e.cfg.Pipeline.Rules
	ctx := context.Background()
	absorbed := false
	for _, ct := range closed {
		trip := &trace.Trip{ID: ct.tb.id, CarID: ct.car, Points: ct.tb.pts}
		res := clean.Repair(trip, cleanCfg)
		kept := 0
		if res.Trip != nil {
			kept = len(res.Trip.Points)
		}
		e.lin.clean.RecordCar(ct.car, uint64(len(ct.tb.pts)), uint64(kept))
		e.lin.cleanNonFinite.Add(uint64(res.Drops.NonFinite))
		e.lin.cleanOutOfArea.Add(uint64(res.Drops.OutOfArea))
		e.lin.cleanDup.Add(uint64(res.Drops.DuplicateID))
		e.lin.cleanSpike.Add(uint64(res.Drops.Spike))

		var segs []*trace.Trip
		var segStats segment.Stats
		if res.Trip != nil {
			segs = segment.Split(res.Trip, rules, &segStats)
		}
		e.lin.segment.RecordCar(ct.car, uint64(segStats.RawSegments), uint64(segStats.KeptSegments))
		e.lin.segShort.Add(uint64(segStats.TooFewPoints))
		e.lin.segLong.Add(uint64(segStats.TooLong))

		var recs []*core.TransitionRecord
		if len(segs) > 0 {
			funnel, ms, matched, err := e.cfg.Pipeline.AnalyseSegments(ctx, ct.car, segs)
			if err != nil && e.cfg.Log != nil {
				e.cfg.Log.Error("ingest: trip analysis failed",
					slog.Int("car", ct.car), slog.Int64("trip", ct.tb.id), slog.String("error", err.Error()))
			}
			recs = matched
			e.lin.od.RecordCar(ct.car, uint64(funnel.TripSegments), uint64(funnel.PostFiltered))
			e.lin.odNoGate.Add(uint64(funnel.TripSegments - funnel.Filtered))
			e.lin.odSingleGate.Add(uint64(funnel.Filtered - funnel.Transitions))
			e.lin.odOutsideCentre.Add(uint64(funnel.Transitions - funnel.WithinCentre))
			e.lin.odPostFilter.Add(uint64(funnel.WithinCentre - funnel.PostFiltered))
			e.lin.match.RecordCar(ct.car, uint64(ms.Matched+ms.Degenerate+ms.Unroutable), uint64(ms.Matched))
			e.lin.matchDegenerate.Add(uint64(ms.Degenerate))
			e.lin.matchUnroutable.Add(uint64(ms.Unroutable))
		}
		if e.cfg.Sink != nil && len(recs) > 0 {
			e.cfg.Sink.AbsorbTransitions(ct.car, recs)
			absorbed = true
		}

		nowNs := e.cfg.Now().UnixNano()
		for _, r := range ct.tb.recvNs {
			e.met.latency.Observe(float64(nowNs-r) / 1e9)
		}

		e.mu.Lock()
		e.closedTrips++
		e.buffered -= len(ct.tb.pts)
		e.mu.Unlock()
		e.met.tripsClosed.Inc()
		e.met.openTrips.Add(-1)
		e.met.bufPoints.Add(-int64(len(ct.tb.pts)))
	}
	if absorbed && e.cfg.Sink != nil {
		e.cfg.Sink.Publish()
	}
	e.met.flushes.Inc()
	e.met.flushTime.Observe(e.cfg.Now().Sub(start).Seconds())
	if e.cfg.Log != nil {
		e.cfg.Log.Debug("ingest: flush round",
			slog.Int("trips", len(closed)),
			slog.Int64("watermark_ms", e.wm.Load()))
	}
}

// Close ends the stream: the watermark jumps to +infinity, every
// buffered trip flushes, each car is completed in the sink, and the
// sink (when attached) seals its final snapshot. Points pushed after
// Close are dropped as late.
func (e *Engine) Close() {
	e.flushMu.Lock()
	e.mu.Lock()
	e.closing = true
	closed := e.advanceLocked()
	carIDs := make([]int, 0, len(e.cars))
	for car := range e.cars {
		carIDs = append(carIDs, car)
	}
	sort.Ints(carIDs)
	e.mu.Unlock()

	if len(closed) > 0 {
		e.flush(closed)
	}
	e.flushMu.Unlock()

	if e.cfg.Sink != nil {
		for _, car := range carIDs {
			e.cfg.Sink.CarComplete(car)
		}
		e.cfg.Sink.Seal()
	}
}

// Watermark returns the low watermark in Unix ms (math.MinInt64 while
// unset, math.MaxInt64 once closed).
func (e *Engine) Watermark() int64 { return e.wm.Load() }

// VisibleLatencyQuantile returns the q-quantile (0..1) of the
// ingest-to-visible latency distribution in seconds — the time from a
// point's admission to the flush that made its trip queryable.
func (e *Engine) VisibleLatencyQuantile(q float64) float64 {
	return e.met.latency.Quantile(q)
}

// Stats is a point-in-time engine summary.
type Stats struct {
	Received       uint64
	Admitted       uint64
	Dropped        map[obs.DropReason]uint64
	ClosedTrips    uint64
	OpenTrips      int
	BufferedPoints int
	WatermarkMs    int64
}

// Stats snapshots the engine's counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := Stats{
		Received:       e.received,
		Admitted:       e.admitted,
		ClosedTrips:    e.closedTrips,
		BufferedPoints: e.buffered,
		WatermarkMs:    e.wm.Load(),
		Dropped:        make(map[obs.DropReason]uint64, len(e.drops)),
	}
	for r, n := range e.drops {
		s.Dropped[r] = n
	}
	for _, cs := range e.cars {
		s.OpenTrips += len(cs.open)
	}
	return s
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
