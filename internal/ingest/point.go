// Package ingest is the pipeline's event-time streaming front: a
// per-point firehose that replaces the batch assumption of whole
// per-car trace files arriving at once. Individual GPS/OBD events
// arrive out of order from many devices; per-car state machines run
// the paper's cleaning online (non-finite and out-of-area points are
// rejected at admission, ordering repair and spike/duplicate removal
// at trip close), a low watermark bounds the out-of-orderness the
// buffer absorbs, and trips the watermark passes are flushed through
// the existing segmentation → OD selection → map-matching stages into
// the serving layer's sink, so live snapshots advance as the watermark
// does.
//
// Watermark model: the low watermark is the minimum, over active cars,
// of that car's maximum seen event time minus the allowed lateness
// (cars silent for longer than the idle timeout stop holding the
// watermark back). A point below the watermark — or belonging to a
// trip that already closed — is dropped with the typed reason "late";
// everything else buffers until its trip closes. A trip closes when
// the watermark passes the first seen point of the car's next trip
// (all of the earlier trip must lie before it), or, for a car with no
// newer trip that has gone idle, when the watermark passes the trip's
// own maximum. Replaying a fleet whose event stream is in order — or
// shuffled within windows whose event-time span stays below the
// allowed lateness — therefore yields sink snapshots value-identical
// to the batch pipeline (see the differential tests).
package ingest

import (
	"time"

	"repro/internal/geo"
	"repro/internal/trace"
)

// Point is one GPS/OBD event — the wire schema of the firehose. It
// carries the same measurements as a trace.RoutePoint, with positions
// in WGS84 degrees (the interchange convention of the CSV and binary
// trace formats) and event time in Unix milliseconds.
type Point struct {
	Car      int     `json:"car"`
	Trip     int64   `json:"trip"`
	Seq      int     `json:"seq"` // device sequence number within the trip
	TimeMs   int64   `json:"time_ms"`
	Lon      float64 `json:"lon"`
	Lat      float64 `json:"lat"`
	SpeedKmh float64 `json:"speed_kmh"`
	FuelMl   float64 `json:"fuel_ml"`
	DistM    float64 `json:"dist_m"`
}

// Time returns the event time (UTC); the zero TimeMs maps to the zero
// time, mirroring RoutePoint's "zero timestamp is invalid" convention.
func (p Point) Time() time.Time {
	if p.TimeMs == 0 {
		return time.Time{}
	}
	return time.UnixMilli(p.TimeMs).UTC()
}

// RoutePoint converts the event to the pipeline's in-memory point,
// projecting the WGS84 position onto the city plane.
func (p Point) RoutePoint(proj *geo.Projection) trace.RoutePoint {
	return trace.RoutePoint{
		PointID:  p.Seq,
		TripID:   p.Trip,
		Pos:      proj.ToXY(geo.Point{Lon: p.Lon, Lat: p.Lat}),
		Time:     p.Time(),
		SpeedKmh: p.SpeedKmh,
		FuelMl:   p.FuelMl,
		DistM:    p.DistM,
	}
}

// FromRoutePoint converts one in-memory point of car's trip to the
// wire schema, projecting the position back to WGS84 — the replay
// direction used by the firehose client and the differential tests.
func FromRoutePoint(car int, rp trace.RoutePoint, proj *geo.Projection) Point {
	ll := proj.ToPoint(rp.Pos)
	var ms int64
	if !rp.Time.IsZero() {
		ms = rp.Time.UnixMilli()
	}
	return Point{
		Car:      car,
		Trip:     rp.TripID,
		Seq:      rp.PointID,
		TimeMs:   ms,
		Lon:      ll.Lon,
		Lat:      ll.Lat,
		SpeedKmh: rp.SpeedKmh,
		FuelMl:   rp.FuelMl,
		DistM:    rp.DistM,
	}
}
