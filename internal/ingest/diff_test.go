package ingest

import (
	"context"
	"math"
	"sort"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/predict"
	"repro/internal/sink"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

// feq compares floats to within accumulation-order rounding (the two
// arms fold transitions into Welford accumulators in different
// orders).
func feq(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// diffFixture builds the shared differential scenario: one pipeline, a
// 32-car simulated fleet flattened to a point firehose, and the
// canonical per-car trips REBUILT from those points — so the batch arm
// and the streaming arm process bit-identical float64 inputs (the
// WGS84 round trip through the wire schema happens exactly once, in
// the shared fixture).
type diffFixture struct {
	p     *core.Pipeline
	pts   []Point
	byCar map[int][]*trace.Trip // canonical trips, rebuilt from pts
	cars  []int
}

func newDiffFixture(t *testing.T) *diffFixture {
	t.Helper()
	p, err := core.NewPipeline(core.Config{
		CitySeed: 42,
		Layout:   core.LayoutLegacy,
		Fleet: tracegen.Config{
			Seed: 42, Cars: 32, TripsPerCar: 3, GateRunFraction: 0.4,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := tracegen.New(p.City, p.Graph, tracegen.Config{
		Seed: 42, Cars: 32, TripsPerCar: 3, GateRunFraction: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	raw := map[int][]*trace.Trip{}
	for _, tr := range gen.Fleet() {
		raw[tr.CarID] = append(raw[tr.CarID], tr)
	}
	pts := FleetPoints(raw, p.City.DB.Proj)
	if len(pts) == 0 {
		t.Fatal("fleet produced no points")
	}

	// Canonical trips: group the wire points back into per-car trips
	// (order within a trip follows the event-time sort; cleaning's
	// Repair is insensitive to that permutation since ids and
	// timestamps are unique).
	byCar := map[int][]*trace.Trip{}
	bufs := map[int]map[int64]*trace.Trip{}
	for _, pt := range pts {
		carBufs := bufs[pt.Car]
		if carBufs == nil {
			carBufs = map[int64]*trace.Trip{}
			bufs[pt.Car] = carBufs
		}
		tr := carBufs[pt.Trip]
		if tr == nil {
			tr = &trace.Trip{ID: pt.Trip, CarID: pt.Car}
			carBufs[pt.Trip] = tr
			byCar[pt.Car] = append(byCar[pt.Car], tr)
		}
		tr.Points = append(tr.Points, pt.RoutePoint(p.City.DB.Proj))
	}
	var cars []int
	for car := range byCar {
		cars = append(cars, car)
		sort.Slice(byCar[car], func(i, j int) bool { return byCar[car][i].ID < byCar[car][j].ID })
	}
	sort.Ints(cars)
	if len(cars) < 32 {
		t.Fatalf("fixture has %d cars, want 32", len(cars))
	}
	return &diffFixture{p: p, pts: pts, byCar: byCar, cars: cars}
}

func newDiffSink(t *testing.T, p *core.Pipeline) *sink.Sink {
	t.Helper()
	g, err := sink.GridForPipeline(p)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sink.New(sink.Config{
		Grid: g, Shards: 3, PublishEvery: 1, Gates: p.Selector.GateNames(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// batchSnapshot runs the canonical trips through the batch pipeline
// and seals a reference snapshot.
func (fx *diffFixture) batchSnapshot(t *testing.T) *sink.Snapshot {
	t.Helper()
	s := newDiffSink(t, fx.p)
	var res core.Result
	for _, car := range fx.cars {
		cr, err := fx.p.ProcessContext(context.Background(), car, fx.byCar[car])
		if err != nil {
			t.Fatalf("batch car %d: %v", car, err)
		}
		res.Cars = append(res.Cars, cr)
	}
	s.AbsorbResult(&res)
	return s.Seal()
}

// compareSnapshots asserts value-identity: integer counts exactly,
// floating moments to within accumulation-order rounding.
func compareSnapshots(t *testing.T, got, want *sink.Snapshot) {
	t.Helper()
	if !got.Complete {
		t.Fatal("streamed snapshot not sealed")
	}
	if got.CarsIngested != want.CarsIngested || got.CarsFailed != want.CarsFailed {
		t.Fatalf("cars = %d/%d, want %d/%d",
			got.CarsIngested, got.CarsFailed, want.CarsIngested, want.CarsFailed)
	}
	if got.Points != want.Points {
		t.Fatalf("points = %d, want %d", got.Points, want.Points)
	}
	if len(got.Cells) != len(want.Cells) {
		t.Fatalf("cells = %d, want %d", len(got.Cells), len(want.Cells))
	}
	for id, wc := range want.Cells {
		gc, ok := got.Cells[id]
		if !ok {
			t.Fatalf("cell %v missing from streamed snapshot", id)
		}
		if gc.N != wc.N {
			t.Fatalf("cell %v: n=%d want %d", id, gc.N, wc.N)
		}
		if !feq(gc.MeanKmh, wc.MeanKmh) || !feq(gc.VarKmh, wc.VarKmh) {
			t.Fatalf("cell %v: mean/var %g/%g want %g/%g", id, gc.MeanKmh, gc.VarKmh, wc.MeanKmh, wc.VarKmh)
		}
		if gc.MinKmh != wc.MinKmh || gc.MaxKmh != wc.MaxKmh {
			t.Fatalf("cell %v: extrema %g/%g want %g/%g", id, gc.MinKmh, gc.MaxKmh, wc.MinKmh, wc.MaxKmh)
		}
	}
	if len(got.OD) != len(want.OD) {
		t.Fatalf("directions = %v, want %v", got.Directions(), want.Directions())
	}
	for dir, wo := range want.OD {
		go_, ok := got.OD[dir]
		if !ok {
			t.Fatalf("direction %s missing from streamed snapshot", dir)
		}
		if go_.Trips != wo.Trips || go_.Attrs != wo.Attrs {
			t.Fatalf("%s: trips %d attrs %+v, want %d %+v", dir, go_.Trips, go_.Attrs, wo.Trips, wo.Attrs)
		}
		if !go_.TravelTimeS.Equal(wo.TravelTimeS) {
			t.Fatalf("%s: travel-time histogram differs from batch", dir)
		}
		for _, m := range []struct {
			name      string
			got, want sink.MetricStats
		}{
			{"dist", go_.DistKm, wo.DistKm},
			{"fuel", go_.FuelMl, wo.FuelMl},
			{"low", go_.LowSpeedPct, wo.LowSpeedPct},
			{"normal", go_.NormalSpeedPct, wo.NormalSpeedPct},
		} {
			if m.got.N != m.want.N || !feq(m.got.Mean, m.want.Mean) ||
				m.got.Min != m.want.Min || m.got.Max != m.want.Max {
				t.Fatalf("%s %s: %+v, want %+v", dir, m.name, m.got, m.want)
			}
		}
	}
	if len(got.EdgeProfiles) != len(want.EdgeProfiles) {
		t.Fatalf("edge profiles = %d, want %d", len(got.EdgeProfiles), len(want.EdgeProfiles))
	}
	for key, wp := range want.EdgeProfiles {
		gp, ok := got.EdgeProfiles[key]
		if !ok {
			t.Fatalf("edge profile %+v missing from streamed snapshot", key)
		}
		if gp.N != wp.N || gp.MinSPerKm != wp.MinSPerKm || gp.MaxSPerKm != wp.MaxSPerKm ||
			!feq(gp.MeanSPerKm, wp.MeanSPerKm) || !feq(gp.VarSPerKm, wp.VarSPerKm) {
			t.Fatalf("edge profile %+v: %+v, want %+v", key, gp, wp)
		}
	}
}

// streamSnapshot replays pts point by point through an engine and
// returns the sealed snapshot plus the engine and its ledger.
func (fx *diffFixture) streamSnapshot(t *testing.T, pts []Point) (*sink.Snapshot, *Engine, *obs.Lineage) {
	t.Helper()
	s := newDiffSink(t, fx.p)
	lin := obs.NewLineage(nil)
	e, err := New(Config{
		Pipeline:        fx.p,
		Sink:            s,
		AllowedLateness: 30 * time.Second,
		IdleTimeout:     5 * time.Minute,
		WatermarkEvery:  64,
		Lineage:         lin,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range pts {
		e.Push(pt)
	}
	e.Close()
	return s.Snapshot(), e, lin
}

// TestStreamedSnapshotMatchesBatch is the streaming acceptance gate:
// replaying a 32-car fleet point by point, in event-time order, must
// seal a snapshot value-identical to the batch pipeline over the same
// inputs — and the ledger must conserve at every stage and across the
// ingest → clean handoff.
func TestStreamedSnapshotMatchesBatch(t *testing.T) {
	fx := newDiffFixture(t)
	want := fx.batchSnapshot(t)
	got, e, lin := fx.streamSnapshot(t, fx.pts)

	compareSnapshots(t, got, want)

	st := e.Stats()
	if st.Received != uint64(len(fx.pts)) || st.Admitted != st.Received {
		t.Fatalf("stats = %+v: an in-order replay must admit every point", st)
	}
	if st.OpenTrips != 0 || st.BufferedPoints != 0 {
		t.Fatalf("stats = %+v: Close must drain every buffer", st)
	}
	checkLineage(t, lin, st)
	comparePredictions(t, fx.p, got, want)
}

// comparePredictions is the serving-layer differential: the streamed
// and batch snapshots must answer /v1/predict identically for every
// observed gate pair, and identically primed anomaly detectors must
// agree that neither snapshot deviates from the other.
func comparePredictions(t *testing.T, p *core.Pipeline, got, want *sink.Snapshot) {
	t.Helper()
	pr := predict.NewPredictor(p.Graph, p.Router)
	mid := func(pl geo.Polyline) geo.XY { return pl[len(pl)/2] }
	gates := map[string]geo.XY{
		"T": mid(p.City.GateT), "S": mid(p.City.GateS), "L": mid(p.City.GateL),
	}
	for dir := range want.OD {
		for _, hour := range []int{-1, 12} {
			g, gerr := pr.Predict(got, gates[dir.From], gates[dir.To], hour)
			w, werr := pr.Predict(want, gates[dir.From], gates[dir.To], hour)
			if (gerr == nil) != (werr == nil) {
				t.Fatalf("predict %s-%s h=%d: errors diverge: %v vs %v", dir.From, dir.To, hour, gerr, werr)
			}
			if gerr != nil {
				continue
			}
			if g.Edges != w.Edges || g.ObservedEdges != w.ObservedEdges ||
				!feq(g.TravelS, w.TravelS) || !feq(g.GlobalRatio, w.GlobalRatio) {
				t.Fatalf("predict %s-%s h=%d: got %+v want %+v", dir.From, dir.To, hour, g, w)
			}
		}
	}
	det := predict.NewAnomalyDetector(predict.AnomalyConfig{})
	for i := 0; i < 3; i++ {
		det.Observe(want)
	}
	if rep := det.Report(got); len(rep.Cells) != 0 || len(rep.ODs) != 0 {
		t.Fatalf("streamed snapshot anomalous against its batch twin: %+v", rep)
	}
}

// TestStreamedSnapshotMatchesBatchShuffled repeats the differential
// with bounded out-of-orderness: the firehose is permuted within
// fixed-size windows whose event-time span stays under the allowed
// lateness, so no point may be dropped and the sealed snapshot must
// still match batch exactly.
func TestStreamedSnapshotMatchesBatchShuffled(t *testing.T) {
	fx := newDiffFixture(t)
	want := fx.batchSnapshot(t)

	shuffled := append([]Point(nil), fx.pts...)
	span := ShuffleWindows(shuffled, 32, 20_000, 7)
	if span <= 0 {
		t.Fatal("shuffle produced no disorder; enlarge the window")
	}
	if span >= (30 * time.Second).Milliseconds() {
		t.Fatalf("in-window span %dms exceeds the allowed lateness; shrink the window", span)
	}

	got, e, lin := fx.streamSnapshot(t, shuffled)
	compareSnapshots(t, got, want)

	st := e.Stats()
	if st.Admitted != st.Received {
		t.Fatalf("stats = %+v: disorder below the lateness bound must not drop points", st)
	}
	checkLineage(t, lin, st)
}

// checkLineage asserts per-stage conservation and the cross-stage
// handoff invariant: after Close, every admitted point entered the
// cleaning stage.
func checkLineage(t *testing.T, lin *obs.Lineage, st Stats) {
	t.Helper()
	if err := lin.Check(); err != nil {
		t.Fatalf("lineage conservation violated: %v", err)
	}
	snap := lin.Snapshot(0)
	stages := map[string]obs.StageSnapshot{}
	for _, s := range snap.Stages {
		stages[s.Stage] = s
	}
	if in := stages["ingest"].In; in != st.Received {
		t.Fatalf("ingest.in = %d, want %d received", in, st.Received)
	}
	if out := stages["ingest"].Out; out != st.Admitted {
		t.Fatalf("ingest.out = %d, want %d admitted", out, st.Admitted)
	}
	if stages["ingest"].Out != stages["clean"].In {
		t.Fatalf("handoff broken: ingest.out = %d but clean.in = %d",
			stages["ingest"].Out, stages["clean"].In)
	}
}
