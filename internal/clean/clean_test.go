package clean

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/geo"
	"repro/internal/trace"
)

var t0 = time.Date(2012, 10, 1, 8, 0, 0, 0, time.UTC)

// straightTrip builds a clean eastbound trip with n points 100 m and
// 30 s apart, in true order.
func straightTrip(n int) *trace.Trip {
	tr := &trace.Trip{ID: 1, CarID: 1}
	for i := 0; i < n; i++ {
		tr.Points = append(tr.Points, trace.RoutePoint{
			PointID:  i + 1,
			TripID:   1,
			Pos:      geo.V(float64(i)*100, 0),
			Time:     t0.Add(time.Duration(i) * 30 * time.Second),
			SpeedKmh: 12,
			FuelMl:   float64(i) * 8,
			DistM:    float64(i) * 100,
		})
	}
	return tr
}

func TestRepairCleanTripUnchanged(t *testing.T) {
	tr := straightTrip(6)
	r := Repair(tr, Config{})
	if r.Trip == nil || r.Dropped != 0 || r.Reordered {
		t.Fatalf("clean trip mangled: %+v", r)
	}
	if r.LengthByID != r.LengthByTime {
		t.Fatalf("lengths differ on a clean trip: %f vs %f", r.LengthByID, r.LengthByTime)
	}
	for i, p := range r.Trip.Points {
		if p.Pos != tr.Points[i].Pos || p.PointID != i+1 {
			t.Fatalf("point %d changed", i)
		}
	}
}

func TestRepairDoesNotModifyInput(t *testing.T) {
	tr := straightTrip(5)
	tr.Points[1], tr.Points[3] = tr.Points[3], tr.Points[1] // shuffled arrival
	snapshot := append([]trace.RoutePoint(nil), tr.Points...)
	Repair(tr, Config{})
	for i := range snapshot {
		if tr.Points[i] != snapshot[i] {
			t.Fatal("Repair mutated its input")
		}
	}
}

func TestRepairArrivalShuffle(t *testing.T) {
	tr := straightTrip(8)
	rng := rand.New(rand.NewSource(1))
	rng.Shuffle(len(tr.Points), func(i, j int) {
		tr.Points[i], tr.Points[j] = tr.Points[j], tr.Points[i]
	})
	r := Repair(tr, Config{})
	if !r.Reordered {
		t.Fatal("shuffled trip not flagged as reordered")
	}
	for i, p := range r.Trip.Points {
		if p.Pos != (geo.V(float64(i)*100, 0)) {
			t.Fatalf("point %d at %v, want x=%d00", i, p.Pos, i)
		}
	}
}

func TestRepairPicksTimestampWhenIDsGlitched(t *testing.T) {
	tr := straightTrip(8)
	// Swap ids of points 3 and 4 (0-based 2,3): id ordering zigzags.
	tr.Points[2].PointID, tr.Points[3].PointID = tr.Points[3].PointID, tr.Points[2].PointID
	r := Repair(tr, Config{})
	if r.ChosenOrder != OrderByTime {
		t.Fatalf("chose %v, want timestamp (lenID=%f lenTime=%f)",
			r.ChosenOrder, r.LengthByID, r.LengthByTime)
	}
	if r.LengthByID <= r.LengthByTime {
		t.Fatalf("id length %f must exceed time length %f", r.LengthByID, r.LengthByTime)
	}
	// Cleaned geometry must be the straight line.
	if got := trace.PathLength(r.Trip.Points); math.Abs(got-700) > 1e-9 {
		t.Fatalf("cleaned length = %f, want 700", got)
	}
}

func TestRepairPicksIDWhenTimestampsGlitched(t *testing.T) {
	tr := straightTrip(8)
	tr.Points[4].Time, tr.Points[5].Time = tr.Points[5].Time, tr.Points[4].Time
	r := Repair(tr, Config{})
	if r.ChosenOrder != OrderByID {
		t.Fatalf("chose %v, want id", r.ChosenOrder)
	}
	if got := trace.PathLength(r.Trip.Points); math.Abs(got-700) > 1e-9 {
		t.Fatalf("cleaned length = %f, want 700", got)
	}
}

func TestRealignMonotonicity(t *testing.T) {
	tr := straightTrip(8)
	// Corrupt both timestamps (swap) and shuffle arrival.
	tr.Points[4].Time, tr.Points[5].Time = tr.Points[5].Time, tr.Points[4].Time
	tr.Points[0], tr.Points[6] = tr.Points[6], tr.Points[0]
	r := Repair(tr, Config{})
	pts := r.Trip.Points
	for i := 1; i < len(pts); i++ {
		if pts[i].PointID != pts[i-1].PointID+1 {
			t.Fatalf("ids not sequential at %d", i)
		}
		if pts[i].Time.Before(pts[i-1].Time) {
			t.Fatalf("time not monotone at %d", i)
		}
		if pts[i].FuelMl < pts[i-1].FuelMl || pts[i].DistM < pts[i-1].DistM {
			t.Fatalf("cumulative measurements not monotone at %d", i)
		}
	}
}

func TestFilterDropsInvalid(t *testing.T) {
	tr := straightTrip(6)
	tr.Points[1].Pos = geo.V(math.NaN(), 0)
	tr.Points[2].SpeedKmh = math.Inf(1)
	tr.Points[3].Time = time.Time{}
	r := Repair(tr, Config{})
	if r.Dropped != 3 {
		t.Fatalf("dropped %d, want 3", r.Dropped)
	}
	if len(r.Trip.Points) != 3 {
		t.Fatalf("kept %d, want 3", len(r.Trip.Points))
	}
}

func TestFilterDropsDuplicateIDs(t *testing.T) {
	tr := straightTrip(5)
	tr.Points[3].PointID = tr.Points[2].PointID
	r := Repair(tr, Config{})
	if r.Dropped != 1 || len(r.Trip.Points) != 4 {
		t.Fatalf("dup handling: dropped=%d kept=%d", r.Dropped, len(r.Trip.Points))
	}
}

func TestFilterDropsGPSSpike(t *testing.T) {
	tr := straightTrip(7)
	tr.Points[3].Pos = geo.V(300, 50000) // 50 km sideways in 30 s
	r := Repair(tr, Config{})
	if r.Dropped != 1 {
		t.Fatalf("spike not dropped: %+v", r)
	}
	for _, p := range r.Trip.Points {
		if p.Pos.Y > 1000 {
			t.Fatal("spike survived")
		}
	}
}

func TestFilterArea(t *testing.T) {
	tr := straightTrip(6)
	cfg := Config{Area: geo.R(-10, -10, 250, 10)}
	r := Repair(tr, cfg)
	if len(r.Trip.Points) != 3 || r.Dropped != 3 {
		t.Fatalf("area filter kept %d dropped %d", len(r.Trip.Points), r.Dropped)
	}
}

func TestRepairEmptyAndSingle(t *testing.T) {
	r := Repair(&trace.Trip{ID: 1}, Config{})
	if r.Trip != nil {
		t.Fatal("empty trip must yield nil")
	}
	tr := straightTrip(1)
	r = Repair(tr, Config{})
	if r.Trip == nil || len(r.Trip.Points) != 1 {
		t.Fatalf("single-point trip mishandled: %+v", r)
	}
}

func TestRepairAllAndTrips(t *testing.T) {
	batch := []*trace.Trip{straightTrip(5), {ID: 9}, straightTrip(3)}
	results := RepairAll(batch, Config{})
	if len(results) != 3 {
		t.Fatalf("RepairAll returned %d results, want one per trip (3)", len(results))
	}
	if results[1].Trip != nil {
		t.Fatal("empty trip must yield a nil-Trip result")
	}
	trips := Trips(results)
	if len(trips) != 2 {
		t.Fatalf("Trips = %d", len(trips))
	}
}

// TestDropStatsAttribution checks every reason is counted in its own
// bucket and that the buckets always sum to Dropped.
func TestDropStatsAttribution(t *testing.T) {
	tr := straightTrip(8)
	tr.Points[1].SpeedKmh = math.NaN()                // non_finite
	tr.Points[2].PointID = tr.Points[3].PointID       // duplicate_id
	tr.Points[4].Pos = geo.V(tr.Points[4].Pos.X, 1e7) // spike (inside area)
	tr.Points[6].Pos = geo.V(-9e5, 0)                 // out_of_area
	cfg := Config{Area: geo.R(-1e4, -1e4, 1e4, 2e7)}
	r := Repair(tr, cfg)
	want := DropStats{NonFinite: 1, OutOfArea: 1, DuplicateID: 1, Spike: 1}
	if r.Drops != want {
		t.Fatalf("Drops = %+v, want %+v", r.Drops, want)
	}
	if r.Drops.Total() != r.Dropped {
		t.Fatalf("Drops %+v does not sum to Dropped %d", r.Drops, r.Dropped)
	}
}

func TestOrderString(t *testing.T) {
	if OrderByID.String() != "id" || OrderByTime.String() != "timestamp" {
		t.Fatal("Order.String broken")
	}
}

// Property: for a monotone ground-truth trajectory, corrupting either
// ordering key on one adjacent inner pair never changes the recovered
// geometry.
func TestRepairRecoversTruePathProperty(t *testing.T) {
	f := func(seed int64, corruptIDs bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(10)
		tr := &trace.Trip{ID: 1, CarID: 1}
		// Random walk with strictly positive step so orderings are
		// distinguishable.
		x, y := 0.0, 0.0
		for i := 0; i < n; i++ {
			x += 80 + rng.Float64()*120
			y += rng.Float64()*60 - 30
			tr.Points = append(tr.Points, trace.RoutePoint{
				PointID: i + 1, TripID: 1,
				Pos:  geo.V(x, y),
				Time: t0.Add(time.Duration(i) * 25 * time.Second),
			})
		}
		want := trace.PathLength(tr.Points)
		i := 1 + rng.Intn(n-3)
		if corruptIDs {
			tr.Points[i].PointID, tr.Points[i+1].PointID = tr.Points[i+1].PointID, tr.Points[i].PointID
		} else {
			tr.Points[i].Time, tr.Points[i+1].Time = tr.Points[i+1].Time, tr.Points[i].Time
		}
		// Also shuffle arrival order.
		rng.Shuffle(len(tr.Points), func(a, b int) {
			tr.Points[a], tr.Points[b] = tr.Points[b], tr.Points[a]
		})
		r := Repair(tr, Config{MaxSpeedKmh: 1e9})
		return math.Abs(trace.PathLength(r.Trip.Points)-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestNaNConfigDoesNotDisableSpikeFilter is the regression test for the
// NaN-threshold hole: Config{MaxSpeedKmh: NaN} passed the old "<= 0"
// default check untouched, and since every "v > NaN" comparison is
// false, the GPS spike filter was silently disabled. A non-finite
// threshold must select the default, exactly like zero does.
func TestNaNConfigDoesNotDisableSpikeFilter(t *testing.T) {
	tr := straightTrip(6)
	tr.Points[3].Pos = geo.V(100000, 100000) // wild GPS spike

	ref := Repair(tr, Config{})
	if ref.Dropped != 1 {
		t.Fatalf("default config dropped %d, want 1 (the spike)", ref.Dropped)
	}
	got := Repair(tr, Config{MaxSpeedKmh: math.NaN()})
	if got.Dropped != 1 {
		t.Fatalf("NaN MaxSpeedKmh dropped %d, want 1: the spike filter was disabled", got.Dropped)
	}
	// An explicit +Inf remains a deliberate opt-out.
	off := Repair(tr, Config{MaxSpeedKmh: math.Inf(1)})
	if off.Dropped != 0 {
		t.Fatalf("+Inf MaxSpeedKmh dropped %d, want 0 (filter explicitly off)", off.Dropped)
	}
}

// TestRepairRealignmentSpikeConverges pins the concrete mechanism that
// made Repair non-idempotent: every time-adjacent pair of the arriving
// points passes the spike filter, but the id ordering wins the length
// comparison, and realignment then pairs the sorted timestamps with
// the id-ordered positions — creating an adjacency (A→C below: 45 m in
// the 1 s gap that originally separated A and B) implying > 150 km/h.
// The old single-pass Repair returned that trip; running Repair again
// dropped the new spike, more points gone. The fixpoint loop must
// converge on the first call.
func TestRepairRealignmentSpikeConverges(t *testing.T) {
	tr := &trace.Trip{ID: 1, CarID: 1}
	mk := func(id int, x, y float64, dtMs int64) trace.RoutePoint {
		return trace.RoutePoint{
			PointID: id, TripID: 1,
			Pos:  geo.V(x, y),
			Time: t0.Add(time.Duration(dtMs) * time.Millisecond),
		}
	}
	// Time order A,B,C,D (gaps 1 s, 99 s, 1 s), id order A,C,B,D.
	//   byTime path: |AB|+|BC|+|CD| = 40.3+43.0+39.7 ≈ 123 m
	//   byID path:   |AC|+|CB|+|BD| = 45.0+43.0+ 3.6 ≈  92 m  → chosen
	// Arriving time-adjacent speeds all < 150 km/h, but the realigned
	// A→C leg is 45 m over 1 s = 162 km/h.
	tr.Points = append(tr.Points,
		mk(1, 0, 0, 0),        // A
		mk(3, 20, 35, 1000),   // B
		mk(2, 45, 0, 100000),  // C
		mk(4, 23, 33, 101000), // D
	)

	r1 := Repair(tr, Config{})
	if r1.Trip == nil {
		t.Fatal("trip fully filtered")
	}
	if r1.ChosenOrder != OrderByID || !r1.Reordered {
		t.Fatalf("setup broken: order %v reordered %v", r1.ChosenOrder, r1.Reordered)
	}
	// The fixpoint must already have removed the realignment-created
	// spike: 3 of 4 points survive (single-pass code kept all 4).
	if len(r1.Trip.Points) != 3 || r1.Dropped != 1 {
		t.Fatalf("first Repair kept %d points (dropped %d), want 3 (dropped 1)",
			len(r1.Trip.Points), r1.Dropped)
	}
	r2 := Repair(r1.Trip, Config{})
	if r2.Trip == nil || len(r2.Trip.Points) != len(r1.Trip.Points) || r2.Dropped != 0 {
		t.Fatalf("Repair not idempotent: %d points -> %v (dropped %d)",
			len(r1.Trip.Points), len(r2.Trip.Points), r2.Dropped)
	}
}
