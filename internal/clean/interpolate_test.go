package clean

import (
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/trace"
)

// gapTrip drives east with one silent gap of the given duration in the
// middle.
func gapTrip(gap time.Duration) *trace.Trip {
	tr := &trace.Trip{ID: 1, CarID: 1}
	add := func(x float64, at time.Time, fuel, dist float64) {
		tr.Points = append(tr.Points, trace.RoutePoint{
			PointID: len(tr.Points) + 1, TripID: 1,
			Pos: geo.V(x, 0), Time: at, SpeedKmh: 36,
			FuelMl: fuel, DistM: dist,
		})
	}
	at := t0
	for i := 0; i < 4; i++ {
		add(float64(i)*100, at, float64(i)*10, float64(i)*100)
		at = at.Add(10 * time.Second)
	}
	// Gap: device silent, vehicle kept moving.
	at = at.Add(gap - 10*time.Second)
	for i := 4; i < 8; i++ {
		add(float64(i)*100+500, at, float64(i)*10+50, float64(i)*100+500)
		at = at.Add(10 * time.Second)
	}
	return tr
}

func TestInterpolateFillsModerateGap(t *testing.T) {
	tr := gapTrip(90 * time.Second)
	out, restored := Interpolate(tr, InterpolateConfig{})
	if restored == 0 {
		t.Fatal("90 s gap not restored")
	}
	if len(out.Points) != len(tr.Points)+restored {
		t.Fatalf("points = %d, want %d + %d", len(out.Points), len(tr.Points), restored)
	}
	// Restored points sit between the gap endpoints in every field.
	for i := 1; i < len(out.Points); i++ {
		a, b := out.Points[i-1], out.Points[i]
		if b.Time.Before(a.Time) || b.FuelMl < a.FuelMl || b.DistM < a.DistM {
			t.Fatalf("restored sequence not monotone at %d", i)
		}
		if b.Time.Sub(a.Time) > 35*time.Second {
			t.Fatalf("gap at %d still %v after restoration", i, b.Time.Sub(a.Time))
		}
		if b.PointID != a.PointID+1 {
			t.Fatalf("ids not renumbered at %d", i)
		}
	}
	// Input untouched.
	if len(tr.Points) != 8 {
		t.Fatal("Interpolate mutated its input")
	}
}

func TestInterpolateLeavesShortAndLongGaps(t *testing.T) {
	short := gapTrip(30 * time.Second)
	if _, restored := Interpolate(short, InterpolateConfig{}); restored != 0 {
		t.Fatalf("30 s gap restored (%d points)", restored)
	}
	long := gapTrip(10 * time.Minute)
	if _, restored := Interpolate(long, InterpolateConfig{}); restored != 0 {
		t.Fatalf("10 min outage restored (%d points); stops must be left for segmentation", restored)
	}
}

func TestInterpolateDegenerate(t *testing.T) {
	out, restored := Interpolate(&trace.Trip{ID: 1}, InterpolateConfig{})
	if restored != 0 || len(out.Points) != 0 {
		t.Fatal("empty trip mishandled")
	}
	single := &trace.Trip{ID: 1, Points: []trace.RoutePoint{{PointID: 1, TripID: 1, Time: t0}}}
	out, restored = Interpolate(single, InterpolateConfig{})
	if restored != 0 || len(out.Points) != 1 {
		t.Fatal("single-point trip mishandled")
	}
}

func TestInterpolatePositionsOnChord(t *testing.T) {
	tr := gapTrip(100 * time.Second)
	out, _ := Interpolate(tr, InterpolateConfig{})
	// Every restored point must lie on the straight chord of the gap.
	for _, p := range out.Points {
		if p.Pos.Y != 0 {
			t.Fatalf("restored point off the chord: %v", p.Pos)
		}
	}
}
