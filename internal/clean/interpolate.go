package clean

import (
	"sort"
	"time"

	"repro/internal/trace"
)

// InterpolateConfig tunes gap restoration.
type InterpolateConfig struct {
	// MaxGap is the longest silent interval left untouched; longer
	// gaps (up to MaxRestorable) get points interpolated at Step.
	// Default 60 s.
	MaxGap time.Duration
	// MaxRestorable bounds how long a gap may be and still be
	// restored: beyond it the gap is presumed to be a genuine stop or
	// outage and left alone for the segmentation rules. Default 150 s.
	MaxRestorable time.Duration
	// Step is the spacing of restored points. Default 20 s.
	Step time.Duration
}

func (c InterpolateConfig) withDefaults() InterpolateConfig {
	if c.MaxGap <= 0 {
		c.MaxGap = 60 * time.Second
	}
	if c.MaxRestorable <= 0 {
		c.MaxRestorable = 150 * time.Second
	}
	if c.Step <= 0 {
		c.Step = 20 * time.Second
	}
	return c
}

// Interpolate restores lost route points by linear interpolation, the
// repair approach of Jiang et al. [17] that the paper cites for sensor
// data with dropped records. It acts on a *cleaned* trip (points in
// true order) and fills only moderate gaps — long silences are left
// for the segmentation rules to classify as stops. The input is not
// modified; restored points carry interpolated position, time, speed
// and cumulative measurements, and renumbered ids.
func Interpolate(t *trace.Trip, cfg InterpolateConfig) (*trace.Trip, int) {
	cfg = cfg.withDefaults()
	if len(t.Points) < 2 {
		return t.Clone(), 0
	}
	out := t.Clone()
	restored := 0
	pts := make([]trace.RoutePoint, 0, len(out.Points))
	pts = append(pts, out.Points[0])
	for i := 1; i < len(out.Points); i++ {
		a, b := out.Points[i-1], out.Points[i]
		gap := b.Time.Sub(a.Time)
		if gap > cfg.MaxGap && gap <= cfg.MaxRestorable {
			n := int(gap / cfg.Step)
			for k := 1; k <= n; k++ {
				f := float64(k) / float64(n+1)
				pts = append(pts, trace.RoutePoint{
					TripID:   a.TripID,
					Pos:      a.Pos.Lerp(b.Pos, f),
					Time:     a.Time.Add(time.Duration(f * float64(gap))),
					SpeedKmh: a.SpeedKmh + f*(b.SpeedKmh-a.SpeedKmh),
					FuelMl:   a.FuelMl + f*(b.FuelMl-a.FuelMl),
					DistM:    a.DistM + f*(b.DistM-a.DistM),
				})
				restored++
			}
		}
		pts = append(pts, b)
	}
	sort.SliceStable(pts, func(i, j int) bool { return pts[i].Time.Before(pts[j].Time) })
	for i := range pts {
		pts[i].PointID = i + 1
	}
	out.Points = pts
	return out, restored
}
