package clean

import (
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/trace"
)

// FuzzRepair: arbitrary point metadata must never panic the cleaner,
// and the output (when any) must satisfy the monotonicity contract.
func FuzzRepair(f *testing.F) {
	f.Add(int64(1), uint8(5), false)
	f.Add(int64(99), uint8(0), true)
	f.Add(int64(-7), uint8(40), true)

	f.Fuzz(func(t *testing.T, seed int64, n uint8, scramble bool) {
		tr := &trace.Trip{ID: 1, CarID: 1}
		s := seed
		next := func() int64 {
			// xorshift; deterministic per seed, fine for fuzzing shapes.
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			return s
		}
		for i := 0; i < int(n); i++ {
			id := i + 1
			ts := t0.Add(time.Duration(i) * 10 * time.Second)
			if scramble {
				id = int(next() % 50)
				ts = t0.Add(time.Duration(next()%100000) * time.Millisecond)
			}
			tr.Points = append(tr.Points, trace.RoutePoint{
				PointID: id, TripID: 1,
				Pos:      geo.V(float64(next()%10000), float64(next()%10000)),
				Time:     ts,
				SpeedKmh: float64(next() % 200),
				FuelMl:   float64(next() % 100000),
				DistM:    float64(next() % 1000000),
			})
		}
		r := Repair(tr, Config{})
		if r.Trip == nil {
			return
		}
		pts := r.Trip.Points
		for i := 1; i < len(pts); i++ {
			if pts[i].PointID != pts[i-1].PointID+1 {
				t.Fatal("ids not sequential after repair")
			}
			if pts[i].Time.Before(pts[i-1].Time) {
				t.Fatal("time not monotone after repair")
			}
			if pts[i].FuelMl < pts[i-1].FuelMl || pts[i].DistM < pts[i-1].DistM {
				t.Fatal("cumulative measurements not monotone after repair")
			}
		}

		// Differential properties over the same input:
		//
		// Idempotence — Repair of a repaired trip is the identity.
		// Historically this failed: realignment re-assigns the sorted
		// timestamp multiset along the chosen order, which can create
		// adjacencies faster than MaxSpeedKmh that only a second pass
		// would filter. Repair now iterates to the fixpoint.
		r2 := Repair(r.Trip, Config{})
		if r2.Trip == nil {
			t.Fatal("Repair of a repaired trip dropped everything")
		}
		if r2.Dropped != 0 || r2.Reordered {
			t.Fatalf("Repair is not idempotent: second pass dropped %d, reordered %v",
				r2.Dropped, r2.Reordered)
		}
		if len(r2.Trip.Points) != len(pts) {
			t.Fatalf("Repair is not idempotent: %d -> %d points", len(pts), len(r2.Trip.Points))
		}
		for i := range pts {
			if pts[i] != r2.Trip.Points[i] {
				t.Fatalf("Repair is not idempotent: point %d changed", i)
			}
		}

		// Ordering minimality — the chosen ordering's trip length is
		// the smaller of the two candidates, the paper's §IV-B rule.
		chosenLen, otherLen := r.LengthByID, r.LengthByTime
		if r.ChosenOrder == OrderByTime {
			chosenLen, otherLen = r.LengthByTime, r.LengthByID
		}
		if chosenLen > otherLen {
			t.Fatalf("chose the longer ordering: %s %.1f m over %.1f m",
				r.ChosenOrder, chosenLen, otherLen)
		}
	})
}
