package clean

import (
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/trace"
)

// FuzzRepair: arbitrary point metadata must never panic the cleaner,
// and the output (when any) must satisfy the monotonicity contract.
func FuzzRepair(f *testing.F) {
	f.Add(int64(1), uint8(5), false)
	f.Add(int64(99), uint8(0), true)
	f.Add(int64(-7), uint8(40), true)

	f.Fuzz(func(t *testing.T, seed int64, n uint8, scramble bool) {
		tr := &trace.Trip{ID: 1, CarID: 1}
		s := seed
		next := func() int64 {
			// xorshift; deterministic per seed, fine for fuzzing shapes.
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			return s
		}
		for i := 0; i < int(n); i++ {
			id := i + 1
			ts := t0.Add(time.Duration(i) * 10 * time.Second)
			if scramble {
				id = int(next() % 50)
				ts = t0.Add(time.Duration(next()%100000) * time.Millisecond)
			}
			tr.Points = append(tr.Points, trace.RoutePoint{
				PointID: id, TripID: 1,
				Pos:      geo.V(float64(next()%10000), float64(next()%10000)),
				Time:     ts,
				SpeedKmh: float64(next() % 200),
				FuelMl:   float64(next() % 100000),
				DistM:    float64(next() % 1000000),
			})
		}
		r := Repair(tr, Config{})
		if r.Trip == nil {
			return
		}
		pts := r.Trip.Points
		for i := 1; i < len(pts); i++ {
			if pts[i].PointID != pts[i-1].PointID+1 {
				t.Fatal("ids not sequential after repair")
			}
			if pts[i].Time.Before(pts[i-1].Time) {
				t.Fatal("time not monotone after repair")
			}
			if pts[i].FuelMl < pts[i-1].FuelMl || pts[i].DistM < pts[i-1].DistM {
				t.Fatal("cumulative measurements not monotone after repair")
			}
		}
	})
}
