package clean_test

import (
	"fmt"
	"time"

	"repro/internal/clean"
	"repro/internal/geo"
	"repro/internal/trace"
)

func ExampleRepair() {
	// Points of an eastbound drive arrive with two device ids swapped:
	// sorting by id would zigzag, so the min-total-distance rule picks
	// the timestamp ordering (paper section IV-B).
	t0 := time.Date(2012, 10, 1, 8, 0, 0, 0, time.UTC)
	trip := &trace.Trip{ID: 1, CarID: 1}
	for i := 0; i < 5; i++ {
		trip.Points = append(trip.Points, trace.RoutePoint{
			PointID: i + 1, TripID: 1,
			Pos:  geo.V(float64(i)*100, 0),
			Time: t0.Add(time.Duration(i) * 30 * time.Second),
		})
	}
	trip.Points[1].PointID, trip.Points[2].PointID = trip.Points[2].PointID, trip.Points[1].PointID

	r := clean.Repair(trip, clean.Config{})
	fmt.Printf("chose %s order: %.0f m by id vs %.0f m by timestamp\n",
		r.ChosenOrder, r.LengthByID, r.LengthByTime)
	// Output:
	// chose timestamp order: 600 m by id vs 400 m by timestamp
}
