package clean

import (
	"math"
	"slices"
	"time"

	"repro/internal/trace"
)

// Columnar mirror of Repair. RepairColumns performs the same §IV-B
// repair — validity filters, dual-ordering choice by total path
// length, realignment, spike fixpoint — directly on arena-backed
// columns, using index permutations instead of copying RoutePoints and
// a reusable Scratch instead of per-trip maps and slices. Its output
// is value-identical to Repair on the materialised trip: every float
// comparison and reduction below reuses the exact expression shape of
// the row-oriented code, sorts use the same stable/unstable choices,
// and realignment truncates timestamps to milliseconds exactly like
// time.Time.UnixMilli. The differential tests in core assert the
// byte-level equivalence end to end.

// ColResult mirrors Result for a columnar repair. Trip.N == 0 means no
// points survived.
type ColResult struct {
	Trip         trace.ColTrip
	ChosenOrder  Order
	LengthByID   float64
	LengthByTime float64
	Reordered    bool
	Dropped      int       // == Drops.Total()
	Drops        DropStats // per-reason breakdown, identical to the row path's
}

// Scratch holds the reusable buffers for RepairColumns. One scratch
// serves one goroutine; the zero value is ready to use.
type Scratch struct {
	valid []int32 // surviving indices, arrival order
	byID  []int32 // surviving indices, id order (also dup-check order)
	byTM  []int32 // surviving indices, timestamp order
	bad   []bool  // per-index spike/dup mark
	ms    []int64 // realign: millisecond timestamps
	f64a  []float64
	f64b  []float64
}

func (s *Scratch) reset(n int) {
	s.valid = grow(s.valid, n)[:0]
	s.byID = grow(s.byID, n)[:0]
	s.byTM = grow(s.byTM, n)[:0]
	if cap(s.bad) < n {
		s.bad = make([]bool, n)
	}
	s.bad = s.bad[:n]
	clear(s.bad)
	s.ms = grow(s.ms, n)[:0]
	s.f64a = grow(s.f64a, n)[:0]
	s.f64b = grow(s.f64b, n)[:0]
}

func grow[T any](b []T, n int) []T {
	if cap(b) < n {
		return make([]T, 0, n)
	}
	return b[:0]
}

// subNs returns a-b as a Duration with the same saturation behaviour
// as time.Time.Sub.
func subNs(a, b int64) time.Duration {
	d := a - b
	switch {
	case a > b && d < 0:
		return time.Duration(math.MaxInt64)
	case a < b && d >= 0:
		return time.Duration(math.MinInt64)
	}
	return time.Duration(d)
}

// unixMilliOfNs truncates a unix-nanosecond timestamp to milliseconds
// exactly like time.Time.UnixMilli (floor division).
func unixMilliOfNs(ns int64) int64 {
	q := ns / int64(time.Millisecond)
	if ns%int64(time.Millisecond) != 0 && ns < 0 {
		q--
	}
	return q
}

// RepairColumns cleans one columnar trip, appending the cleaned points
// to the arena (which may be the view's own arena). The input rows are
// not modified.
func RepairColumns(v trace.ColTrip, cfg Config, a *trace.Arena, s *Scratch) ColResult {
	cfg = cfg.withDefaults()
	s.reset(v.Len())

	var drops DropStats
	filterValidCols(v, cfg, s, &drops)
	if len(s.valid) == 0 {
		return ColResult{Dropped: drops.Total(), Drops: drops}
	}

	// Candidate orderings of the surviving points. s.byTM already holds
	// the timestamp ordering from the spike filter (or is rebuilt here
	// for short trips that skipped it); removing spike points preserved
	// the relative order, which is exactly what a fresh stable sort of
	// the survivors would produce.
	s.byID = append(s.byID[:0], s.valid...)
	slices.SortStableFunc(s.byID, func(i, j int32) int {
		return int(v.PointID(int(i))) - int(v.PointID(int(j)))
	})
	if len(s.byTM) != len(s.valid) {
		s.byTM = append(s.byTM[:0], s.valid...)
		sortByTime(v, s.byTM)
	}

	lenID := pathLengthIdx(v, s.byID)
	lenTime := pathLengthIdx(v, s.byTM)
	chosen := s.byID
	order := OrderByID
	if lenTime < lenID {
		chosen = s.byTM
		order = OrderByTime
	}

	reordered := false
	for i := range s.valid {
		if v.PointID(int(s.valid[i])) != v.PointID(int(chosen[i])) {
			reordered = true
			break
		}
	}

	// Realign into fresh arena rows: positions and speeds ride with the
	// chosen sequence; ids are renumbered and the timestamp (truncated
	// to milliseconds), fuel and distance multisets are re-assigned in
	// ascending order.
	m := len(chosen)
	dst := a.Alloc(v.ID, v.CarID, m)
	s.ms = s.ms[:m]
	s.f64a = s.f64a[:m]
	s.f64b = s.f64b[:m]
	for k, idx := range chosen {
		i := int(idx)
		dst.Cols.Xs[dst.Off+k] = v.Pos(i).X
		dst.Cols.Ys[dst.Off+k] = v.Pos(i).Y
		dst.Cols.Speeds[dst.Off+k] = v.Speed(i)
		s.ms[k] = unixMilliOfNs(v.TimeNs(i))
		s.f64a[k] = v.Fuel(i)
		s.f64b[k] = v.Dist(i)
	}
	slices.Sort(s.ms)
	slices.Sort(s.f64a)
	slices.Sort(s.f64b)
	for k := 0; k < m; k++ {
		dst.Cols.PointIDs[dst.Off+k] = int32(k + 1)
		dst.Cols.TimesNs[dst.Off+k] = s.ms[k] * int64(time.Millisecond)
		dst.Cols.Fuels[dst.Off+k] = s.f64a[k]
		dst.Cols.Dists[dst.Off+k] = s.f64b[k]
	}

	res := ColResult{
		ChosenOrder:  order,
		LengthByID:   lenID,
		LengthByTime: lenTime,
		Reordered:    reordered,
	}

	// Fixpoint: realignment can create adjacencies that fail the spike
	// filter. After realignment position order is timestamp order and
	// ids are 1..m, so each re-filter pass reduces to the spike scan;
	// re-realignment after a drop reduces to renumbering (the remaining
	// sorted multisets stay sorted, and millisecond truncation is
	// idempotent). Fixpoint removals are spike drops by construction.
	for m >= 2 {
		spikes := spikeScan(dst.Sub(0, m), cfg, s.bad[:m])
		if spikes == 0 {
			break
		}
		drops.Spike += spikes
		w := 0
		for i := 0; i < m; i++ {
			if s.bad[i] {
				continue
			}
			dst.Cols.PointIDs[dst.Off+w] = int32(w + 1)
			dst.Cols.TimesNs[dst.Off+w] = dst.Cols.TimesNs[dst.Off+i]
			dst.Cols.Xs[dst.Off+w] = dst.Cols.Xs[dst.Off+i]
			dst.Cols.Ys[dst.Off+w] = dst.Cols.Ys[dst.Off+i]
			dst.Cols.Speeds[dst.Off+w] = dst.Cols.Speeds[dst.Off+i]
			dst.Cols.Fuels[dst.Off+w] = dst.Cols.Fuels[dst.Off+i]
			dst.Cols.Dists[dst.Off+w] = dst.Cols.Dists[dst.Off+i]
			w++
		}
		m = w
		if m == 0 {
			res.Dropped, res.Drops = drops.Total(), drops
			return res
		}
	}
	res.Trip = dst.Sub(0, m)
	res.Dropped, res.Drops = drops.Total(), drops
	return res
}

// filterValidCols mirrors filterValid: it fills s.valid with the
// arrival-order indices of points passing the finiteness, area,
// duplicate-id and spike filters, leaves the surviving timestamp order
// in s.byTM when the spike filter ran, and accumulates per-reason drop
// counts into drops (attributed exactly like the row path: finiteness
// before area before duplicates before spikes). Zero timestamps cannot
// occur in columnar storage (Arena.AppendTrip refuses them), so the
// IsZero test has no columnar counterpart.
func filterValidCols(v trace.ColTrip, cfg Config, s *Scratch, drops *DropStats) {
	n := v.Len()
	checkArea := cfg.Area.Area() > 0
	for i := 0; i < n; i++ {
		if !finite(v.Pos(i).X) || !finite(v.Pos(i).Y) || !finite(v.Speed(i)) ||
			!finite(v.Fuel(i)) || !finite(v.Dist(i)) {
			drops.NonFinite++
			continue
		}
		if checkArea && !cfg.Area.Contains(v.Pos(i)) {
			drops.OutOfArea++
			continue
		}
		s.valid = append(s.valid, int32(i))
	}

	// Duplicate ids: the first occurrence (in arrival order) of each id
	// among the points above wins. Detected by sorting (id, arrival)
	// instead of a per-trip map.
	if len(s.valid) > 1 {
		s.byID = append(s.byID[:0], s.valid...)
		slices.SortFunc(s.byID, func(i, j int32) int {
			a, b := v.PointID(int(i)), v.PointID(int(j))
			if a != b {
				if a < b {
					return -1
				}
				return 1
			}
			return int(i) - int(j)
		})
		dups := 0
		for k := 1; k < len(s.byID); k++ {
			if v.PointID(int(s.byID[k])) == v.PointID(int(s.byID[k-1])) {
				s.bad[s.byID[k]] = true
				dups++
			}
		}
		if dups > 0 {
			drops.DuplicateID += dups
			s.valid = compact(s.valid, s.bad)
		}
	}

	s.byTM = s.byTM[:0]
	if len(s.valid) < 2 {
		return
	}

	// Spike filter in timestamp order with anchor semantics: a point
	// whose implied speed from the last accepted point is impossible is
	// dropped, and the anchor does not advance.
	s.byTM = append(s.byTM, s.valid...)
	sortByTime(v, s.byTM)
	spikes := 0
	last := int(s.byTM[0])
	for _, pi := range s.byTM[1:] {
		p := int(pi)
		dt := subNs(v.TimeNs(p), v.TimeNs(last)).Seconds()
		if dt > 0.5 {
			vel := v.Pos(p).Dist(v.Pos(last)) / dt * 3.6
			if vel > cfg.MaxSpeedKmh {
				s.bad[p] = true
				spikes++
				continue
			}
		}
		last = p
	}
	if spikes > 0 {
		drops.Spike += spikes
		s.valid = compact(s.valid, s.bad)
		s.byTM = compact(s.byTM, s.bad)
	}
}

// spikeScan marks spike points of a realigned (position == timestamp
// ordered) view in bad and returns how many it marked.
func spikeScan(v trace.ColTrip, cfg Config, bad []bool) int {
	for i := range bad {
		bad[i] = false
	}
	drops := 0
	last := 0
	for p := 1; p < v.Len(); p++ {
		dt := subNs(v.TimeNs(p), v.TimeNs(last)).Seconds()
		if dt > 0.5 {
			vel := v.Pos(p).Dist(v.Pos(last)) / dt * 3.6
			if vel > cfg.MaxSpeedKmh {
				bad[p] = true
				drops++
				continue
			}
		}
		last = p
	}
	return drops
}

// sortByTime stable-sorts view indices by timestamp, preserving
// arrival order on ties exactly like sort.SliceStable with
// Time.Before.
func sortByTime(v trace.ColTrip, idx []int32) {
	slices.SortStableFunc(idx, func(i, j int32) int {
		a, b := v.TimeNs(int(i)), v.TimeNs(int(j))
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	})
}

// compact removes marked indices, clearing their marks, and preserves
// order.
func compact(idx []int32, bad []bool) []int32 {
	w := 0
	for _, i := range idx {
		if bad[i] {
			continue
		}
		idx[w] = i
		w++
	}
	return idx[:w]
}

// pathLengthIdx sums consecutive distances over the index sequence,
// floating-point-identical to trace.PathLength over points sorted the
// same way.
func pathLengthIdx(v trace.ColTrip, idx []int32) float64 {
	var total float64
	for k := 1; k < len(idx); k++ {
		total += v.Pos(int(idx[k-1])).Dist(v.Pos(int(idx[k])))
	}
	return total
}
